// The paper's own worked example: the Fig. 1 synthetic benchmark, built
// through the public IR API. Prints the tuple listing with the min/max ASAP
// finish columns exactly as the figure shows, then schedules it for a
// barrier MIMD and walks through where barriers land.
#include <iostream>

#include "graph/instr_dag.hpp"
#include "sched/scheduler.hpp"
#include "sim/gantt.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"

namespace {

bm::Operand T(bm::TupleId id) { return bm::Operand::tuple(id); }
bm::Operand C(std::int64_t v) { return bm::Operand::constant(v); }

/// Fig. 1 tuples. Variables i,a,b,f,d,j,c,h,e,g = 0..9; uids are the
/// paper's tuple numbers (gaps where the optimizer removed tuples).
bm::Program figure1() {
  using bm::Opcode, bm::Tuple;
  bm::Program p(10);
  p.append(Tuple::load(0, 0));                            //  0 Load i
  p.append(Tuple::load(1, 1));                            //  1 Load a
  p.append(Tuple::binary(2, Opcode::kAdd, T(0), T(1)));   //  2 Add 0,1
  p.append(Tuple::store(3, 2, T(2)));                     //  3 Store b,2
  p.append(Tuple::load(4, 3));                            //  4 Load f
  p.append(Tuple::load(24, 4));                           // 24 Load d
  p.append(Tuple::load(5, 5));                            //  5 Load j
  p.append(Tuple::load(12, 6));                           // 12 Load c
  p.append(Tuple::binary(26, Opcode::kAnd, T(4), T(5)));  // 26 And 4,24
  p.append(Tuple::binary(6, Opcode::kAdd, T(4), T(6)));   //  6 Add 4,5
  p.append(Tuple::binary(30, Opcode::kSub, T(8), T(4)));  // 30 Sub 26,4
  p.append(Tuple::binary(18, Opcode::kSub, T(9), T(0)));  // 18 Sub 6,0
  p.append(Tuple::binary(22, Opcode::kAdd, T(1), C(2)));  // 22 Add 1,#2
  p.append(Tuple::binary(38, Opcode::kAdd, T(7), T(10))); // 38 Add 12,30
  p.append(Tuple::store(19, 0, T(11)));                   // 19 Store i,18
  p.append(Tuple::store(23, 1, T(12)));                   // 23 Store a,22
  p.append(Tuple::store(27, 7, T(8)));                    // 27 Store h,26
  p.append(Tuple::store(31, 8, T(10)));                   // 31 Store e,30
  p.append(Tuple::store(39, 9, T(13)));                   // 39 Store g,38
  const char* names[] = {"i", "a", "b", "f", "d", "j", "c", "h", "e", "g"};
  for (bm::VarId v = 0; v < 10; ++v) p.set_var_name(v, names[v]);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bm::CliFlags flags(argc, argv);
  const bm::Program prog = figure1();
  const bm::TimingModel tm = bm::TimingModel::table1();
  const bm::InstrDag dag = bm::InstrDag::build(prog, tm);

  std::cout << "=== Figure 1: tuples with min/max ASAP finish times ===\n"
            << prog.to_string(dag.asap_instruction_columns());
  std::cout << "critical path (t_cr): " << dag.critical_path().to_string()
            << ", implied synchronizations: " << dag.implied_syncs() << "\n\n";

  bm::SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 4));
  bm::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1990)));
  const bm::ScheduleResult r = bm::schedule_program(dag, cfg, rng);

  std::cout << "=== Barrier MIMD schedule (" << cfg.num_procs << " PEs) ===\n"
            << r.schedule->to_string() << '\n';
  std::cout << "barriers: " << r.stats.barriers_final << " of "
            << r.stats.implied_syncs << " implied syncs ("
            << r.stats.barrier_fraction() * 100 << "%); serialized "
            << r.stats.serialized_fraction() * 100 << "%; static "
            << r.stats.static_fraction() * 100 << "%\n\n";

  struct View {
    const char* label;
    bm::SamplingMode mode;
  };
  for (const View& view : {View{"all-min draw", bm::SamplingMode::kAllMin},
                           View{"all-max draw", bm::SamplingMode::kAllMax}}) {
    bm::Rng sim_rng(7);
    const bm::ExecTrace t =
        bm::simulate(*r.schedule, {cfg.machine, view.mode}, sim_rng);
    std::cout << "=== Execution Gantt (" << view.label
              << "), completion = " << t.completion << " ===\n"
              << bm::render_gantt(*r.schedule, t, {.max_width = 72}) << '\n';
  }
  return 0;
}
