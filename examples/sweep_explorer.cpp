// sweep_explorer — interactive parameter-sweep tool over the full pipeline.
//
// Sweeps one axis (statements | variables | procs | latency | trip) while
// holding the rest fixed, and prints the fraction series — a generalized
// version of the Fig. 15/16/17 drivers for your own parameter choices.
//
//   ./sweep_explorer --axis procs --values 2,4,8,16,64 --statements 80
//   ./sweep_explorer --axis latency --values 0,2,8 --machine dbm
#include <iostream>
#include <sstream>

#include "harness/report.hpp"
#include "machine/presets.hpp"
#include "support/cli.hpp"

namespace {

std::vector<long> parse_values(const std::string& csv, long fallback) {
  if (csv.empty()) return {fallback};
  std::vector<long> out;
  std::stringstream ss(csv);
  std::string part;
  while (std::getline(ss, part, ',')) out.push_back(std::stol(part));
  if (out.empty()) out.push_back(fallback);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));
  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  cfg.machine = flags.get("machine", "sbm") == "dbm" ? MachineKind::kDBM
                                                     : MachineKind::kSBM;
  cfg.insertion = flags.get("insertion", "conservative") == "optimal"
                      ? InsertionPolicy::kOptimal
                      : InsertionPolicy::kConservative;
  cfg.barrier_latency = flags.get_int("latency", 0);

  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));

  // --preset <name> loads a shipped machine description (timing model,
  // barrier latency, default size); explicit flags still override.
  if (flags.has("preset")) {
    const MachineDescription& m = machine_preset(flags.get("preset", ""));
    opt.timing = m.timing;
    cfg.barrier_latency = m.barrier_latency;
    if (!flags.has("procs")) cfg.num_procs = m.default_procs;
    std::cout << "machine preset: " << m.name << " — " << m.summary << '\n';
  }

  const std::string axis = flags.get("axis", "procs");
  const std::vector<long> values =
      parse_values(flags.get("values", ""), static_cast<long>(cfg.num_procs));

  std::cout << "sweep over --axis " << axis << " ("
            << to_string(cfg.machine) << ", " << to_string(cfg.insertion)
            << ", " << opt.seeds << " seeds/point)\n";
  std::vector<SeriesRow> rows;
  for (long v : values) {
    if (axis == "statements")
      gen.num_statements = static_cast<std::uint32_t>(v);
    else if (axis == "variables")
      gen.num_variables = static_cast<std::uint32_t>(v);
    else if (axis == "procs")
      cfg.num_procs = static_cast<std::size_t>(v);
    else if (axis == "latency")
      cfg.barrier_latency = v;
    else {
      std::cerr << "unknown --axis " << axis
                << " (use statements|variables|procs|latency)\n";
      return 1;
    }
    rows.push_back({std::to_string(v), run_point(gen, cfg, opt)});
  }
  // --out-dir enables CSV output (sweep_explorer.csv in that directory).
  if (flags.has("out-dir")) {
    ArtifactWriter artifacts(flags.get("out-dir", "out"), "sweep_explorer");
    print_fraction_series(axis, rows, &artifacts);
  } else {
    print_fraction_series(axis, rows, nullptr);
  }
  return 0;
}
