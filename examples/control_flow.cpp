// Control flow on a barrier MIMD (§7 extension): generate a structured
// program with branches and data-dependent while loops, schedule each block
// with the paper's algorithms (rejoin barrier at every boundary), execute
// it, and compare against the lockstep worst-case bound a VLIW must
// provision — the machine class the paper's introduction says cannot run
// such programs efficiently.
#include <iostream>

#include "cfg/cfg_gen.hpp"
#include "cfg/cfg_sim.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);

  CfgGeneratorConfig gen;
  gen.block = GeneratorConfig{
      .num_statements =
          static_cast<std::uint32_t>(flags.get_int("statements", 10)),
      .num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 8)),
      .num_constants = 4,
      .const_max = 64};
  gen.max_depth = static_cast<std::uint32_t>(flags.get_int("depth", 2));
  gen.max_trip = flags.get_int("max-trip", 6);

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  const CfgProgram cfg = generate_cfg(gen, rng);
  std::cout << "=== Structured program (" << cfg.size() << " blocks, "
            << cfg.total_instructions() << " tuples) ===\n"
            << cfg.to_string() << '\n';

  SchedulerConfig sc;
  sc.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  const CfgScheduleResult sched =
      schedule_cfg(cfg, sc, TimingModel::table1(), rng);
  std::cout << "per-block scheduling: " << sched.implied_syncs
            << " implied syncs, " << sched.barriers << " barriers ("
            << TextTable::pct(sched.barrier_fraction()) << "), serialized "
            << TextTable::pct(sched.serialized_fraction()) << "\n\n";

  // Execute with random initial memory and random timing draws.
  RunningStats completion;
  CfgExecResult last;
  for (int run = 0; run < 200; ++run) {
    std::vector<std::int64_t> memory(cfg.num_vars());
    for (auto& m : memory) m = rng.uniform(-100, 100);
    last = run_cfg(sched, CfgSimConfig{}, memory, rng);
    completion.add(static_cast<double>(last.completion));
  }
  const Time vliw_bound =
      vliw_cfg_worst_case(cfg, sc.num_procs, TimingModel::table1(), 1);

  std::cout << "=== 200 executions (random memory and timing draws) ===\n";
  std::cout << "barrier MIMD completion: mean "
            << TextTable::num(completion.mean(), 1) << ", range ["
            << completion.min() << ", " << completion.max() << "]\n";
  std::cout << "blocks executed (last run): " << last.blocks_executed << '\n';
  std::cout << "VLIW lockstep worst-case bound: " << vliw_bound << " ("
            << TextTable::num(static_cast<double>(vliw_bound) /
                                  completion.mean(),
                              2)
            << "x the barrier machine's mean)\n";
  std::cout << "\nThe VLIW must provision every loop for its maximum trip "
               "count; the barrier MIMD pays only the path actually "
               "taken, block by block.\n";
  return 0;
}
