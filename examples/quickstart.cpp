// Quickstart: generate a synthetic basic block, schedule it for an 8-PE
// barrier MIMD, print the schedule, the synchronization fractions, and the
// simulated execution envelope.
//
//   ./quickstart [--seed N] [--procs N] [--statements N] [--variables N]
#include <iostream>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "harness/experiment.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  const bm::CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  bm::GeneratorConfig gen;
  gen.num_statements =
      static_cast<std::uint32_t>(flags.get_int("statements", 20));
  gen.num_variables =
      static_cast<std::uint32_t>(flags.get_int("variables", 8));

  bm::SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));

  // 1. Synthesize a benchmark (generate + optimize), as in §2.2.
  bm::Rng rng(seed);
  const bm::SynthesisResult synth = bm::synthesize_benchmark(gen, rng);
  std::cout << "=== Source block (" << synth.statements.size()
            << " statements) ===\n";
  for (const auto& s : synth.statements)
    std::cout << "  " << bm::statement_to_string(s) << '\n';

  // 2. Build the instruction DAG with Table-1 timings.
  const bm::TimingModel tm = bm::TimingModel::table1();
  const bm::InstrDag dag = bm::InstrDag::build(synth.program, tm);
  std::cout << "\n=== Optimized tuples (min/max ASAP finish) ===\n"
            << synth.program.to_string(dag.asap_instruction_columns());
  std::cout << "implied synchronizations: " << dag.implied_syncs()
            << ", critical path: " << dag.critical_path().to_string() << '\n';

  // 3. Schedule onto the barrier MIMD.
  const bm::ScheduleResult result = bm::schedule_program(dag, cfg, rng);
  std::cout << "\n=== Barrier MIMD schedule (" << cfg.num_procs
            << " PEs, SBM) ===\n"
            << result.schedule->to_string();

  const bm::ScheduleStats& st = result.stats;
  std::cout << "barriers inserted: " << st.barriers_final
            << "  (merges: " << st.merges << ", repairs: " << st.repair_barriers
            << ")\n";
  std::cout << "barrier fraction:    " << st.barrier_fraction() * 100 << "%\n"
            << "serialized fraction: " << st.serialized_fraction() * 100
            << "%\n"
            << "static fraction:     " << st.static_fraction() * 100 << "%\n";

  // 4. Execute: static envelope and a few random draws.
  std::cout << "\n=== Execution ===\n";
  std::cout << "static completion range: " << st.completion.to_string()
            << '\n';
  const bm::CompletionSummary sim =
      bm::summarize_completion(*result.schedule, cfg.machine, 10, rng);
  std::cout << "simulated: all-min " << sim.min_draw << ", all-max "
            << sim.max_draw << ", mean of 10 uniform draws " << sim.mean
            << '\n';

  // 5. Verify the schedule respects every dependence under random timing.
  std::size_t violations = 0;
  for (int r = 0; r < 100; ++r) {
    const bm::ExecTrace t = bm::simulate(
        *result.schedule, {cfg.machine, bm::SamplingMode::kUniform}, rng);
    violations += bm::find_violations(dag, t).size();
  }
  std::cout << "dependence violations over 100 random draws: " << violations
            << '\n';
  return violations == 0 ? 0 : 1;
}
