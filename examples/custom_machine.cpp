// Custom machine description: define your own per-opcode timing model (a
// slower interconnect with [1,12] loads and a pipelined constant-time
// multiplier), then compare SBM and DBM schedules across machine sizes.
#include <iostream>

#include "codegen/synthesize.hpp"
#include "harness/experiment.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);

  // A machine with remote-memory loads and a pipelined multiplier.
  TimingModel machine = TimingModel::table1();
  machine.set(Opcode::kLoad, {1, 12});   // interconnect contention
  machine.set(Opcode::kMul, {20, 20});   // pipelined: fixed latency
  machine.set(Opcode::kDiv, {24, 40});   // wider asynchronous divider
  machine.set(Opcode::kMod, {24, 40});

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 50));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 50));
  opt.timing = machine;
  opt.sim_runs = 10;

  std::cout << "Custom machine: Load " << machine.range(Opcode::kLoad).to_string()
            << ", Mul " << machine.range(Opcode::kMul).to_string() << ", Div "
            << machine.range(Opcode::kDiv).to_string() << "\n\n";

  TextTable table({"#PEs", "machine", "barrier", "serialized", "static",
                   "compl [min,max]", "merges/blk"});
  for (std::size_t procs : {2u, 4u, 8u, 16u}) {
    for (MachineKind kind : {MachineKind::kSBM, MachineKind::kDBM}) {
      SchedulerConfig cfg;
      cfg.num_procs = procs;
      cfg.machine = kind;
      const PointAggregate agg = run_point(gen, cfg, opt);
      const FractionAggregate& f = agg.fractions;
      table.add_row({std::to_string(procs), std::string(to_string(kind)),
                     TextTable::pct(f.barrier_frac.mean()),
                     TextTable::pct(f.serialized_frac.mean()),
                     TextTable::pct(f.static_frac.mean()),
                     "[" + TextTable::num(f.completion_min.mean(), 1) + "," +
                         TextTable::num(f.completion_max.mean(), 1) + "]",
                     TextTable::num(f.merges.mean(), 2)});
    }
  }
  table.render(std::cout);
  std::cout << "\nNote how the wider Load range concentrates barriers after "
               "the initial loads, and how SBM merging trades barriers for "
               "completion time.\n";
  return 0;
}
