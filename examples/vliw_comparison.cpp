// One benchmark, two machines (§6): schedule the same optimized block for a
// VLIW (lockstep, all-max times) and a barrier MIMD, show both schedules,
// and measure the barrier machine's completion distribution by simulation.
#include <iostream>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "vliw/vliw.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  const auto procs = static_cast<std::size_t>(flags.get_int("procs", 8));

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1990)));

  const SynthesisResult synth = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(synth.program, TimingModel::table1());
  std::cout << "Benchmark: " << synth.program.size() << " tuples, "
            << dag.implied_syncs() << " implied syncs, critical path "
            << dag.critical_path().to_string() << "\n\n";

  // VLIW: deterministic lockstep, every instruction at its max time.
  const VliwSchedule vliw = schedule_vliw(dag, procs);
  std::cout << "VLIW (" << procs << " units, all-max): makespan "
            << vliw.makespan << ", units used " << vliw.procs_used << '\n';

  // Barrier MIMD: asynchronous with static barrier placement.
  SchedulerConfig cfg;
  cfg.num_procs = procs;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  std::cout << "Barrier MIMD: completion range "
            << r.stats.completion.to_string() << ", "
            << r.stats.barriers_final << " barriers\n\n";

  // Empirical completion distribution over uniform draws.
  RunningStats sim;
  std::vector<double> samples;
  for (int run = 0; run < 2000; ++run) {
    const ExecTrace t =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
    sim.add(static_cast<double>(t.completion));
    samples.push_back(static_cast<double>(t.completion));
  }

  const auto v = static_cast<double>(vliw.makespan);
  TextTable table({"quantity", "time", "normalized to VLIW"});
  table.add_row({"VLIW makespan", TextTable::num(v, 0), "1.000"});
  table.add_row({"barrier all-min", std::to_string(r.stats.completion.min),
                 TextTable::num(static_cast<double>(r.stats.completion.min) / v, 3)});
  table.add_row({"barrier mean (2000 draws)", TextTable::num(sim.mean(), 1),
                 TextTable::num(sim.mean() / v, 3)});
  table.add_row({"barrier p95", TextTable::num(percentile(samples, 0.95), 1),
                 TextTable::num(percentile(samples, 0.95) / v, 3)});
  table.add_row({"barrier all-max", std::to_string(r.stats.completion.max),
                 TextTable::num(static_cast<double>(r.stats.completion.max) / v, 3)});
  table.render(std::cout);
  std::cout << "\n§6: the barrier machine's worst case tracks the VLIW while "
               "its expected time benefits from every early-finishing "
               "variable-time instruction.\n";
  return 0;
}
