// Schedule visualizer: generate (or re-seed) a benchmark, schedule it, and
// render the barrier dag plus execution Gantt charts for the extreme and a
// random draw — a quick way to *see* how static barrier placement works.
#include <iostream>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/gantt.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 25));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 8));
  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 6));
  cfg.machine = flags.get("machine", "sbm") == "dbm" ? MachineKind::kDBM
                                                     : MachineKind::kSBM;

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  const SynthesisResult synth = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(synth.program, TimingModel::table1());
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  const Schedule& sched = *r.schedule;

  std::cout << "=== Streams (" << to_string(cfg.machine) << ", "
            << cfg.num_procs << " PEs) ===\n"
            << sched.to_string() << '\n';

  std::cout << "=== Barrier dag ===\n";
  const BarrierDag& bd = sched.barrier_dag();
  for (BarrierId b : bd.barrier_ids()) {
    std::cout << "B" << b << " fires " << bd.fire_range(b).to_string()
              << " mask ";
    if (sched.barrier_alive(b))
      std::cout << sched.barrier_mask(b).to_string();
    std::cout << "  succs:";
    for (BarrierId s : bd.barrier_ids())
      if (s != b && bd.has_edge(b, s))
        std::cout << " B" << s << bd.edge_range(b, s).to_string();
    std::cout << '\n';
  }

  struct View {
    const char* name;
    SamplingMode mode;
  };
  for (const View& view : {View{"all-min", SamplingMode::kAllMin},
                           View{"all-max", SamplingMode::kAllMax},
                           View{"random draw", SamplingMode::kUniform}}) {
    const ExecTrace t = simulate(sched, {cfg.machine, view.mode}, rng);
    std::cout << "\n=== " << view.name << " execution (completion "
              << t.completion << ") ===\n"
              << render_gantt(sched, t, {.max_width = 90});
    const auto violations = find_violations(dag, t);
    std::cout << "dependence violations: " << violations.size() << '\n';
  }
  return 0;
}
