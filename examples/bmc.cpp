// bmc — the barrier-MIMD compiler driver for the paper's simple language.
//
// Reads a basic block of assignment statements from a file (or stdin),
// compiles it (emit + optimize), schedules it for a barrier MIMD, and
// prints the tuple listing, schedule, synchronization fractions, and an
// execution Gantt. The closest thing to "running the paper's compiler" on
// your own input.
//
//   echo 'b = a + c; d = b * b; a = d % 7;' | ./bmc
//   ./bmc kernel.bm --procs 4 --machine dbm
#include <fstream>
#include <iostream>
#include <sstream>

#include "barrier/dot.hpp"
#include "codegen/emitter.hpp"
#include "codegen/parser.hpp"
#include "graph/instr_dag.hpp"
#include "opt/passes.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"
#include "sim/gantt.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);

  std::string source;
  if (!flags.positional().empty()) {
    std::ifstream in(flags.positional().front());
    if (!in) {
      std::cerr << "bmc: cannot open " << flags.positional().front() << '\n';
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  }

  try {
    const ParsedBlock parsed = parse_statements(source);
    Program prog = emit_tuples(parsed.statements, parsed.num_vars);
    for (VarId v = 0; v < parsed.num_vars; ++v)
      prog.set_var_name(v, parsed.var_names[v]);
    const OptStats opt_stats = optimize(prog);

    const TimingModel tm = TimingModel::table1();
    const InstrDag dag = InstrDag::build(prog, tm);
    std::cout << "=== " << parsed.statements.size() << " statements → "
              << prog.size() << " tuples (removed " << opt_stats.total_removed()
              << ": " << opt_stats.folded << " folded, " << opt_stats.cse
              << " CSE, " << opt_stats.dead << " dead) ===\n"
              << prog.to_string(dag.asap_instruction_columns());
    std::cout << "critical path " << dag.critical_path().to_string() << ", "
              << dag.implied_syncs() << " implied syncs\n\n";

    SchedulerConfig cfg;
    cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
    cfg.machine = flags.get("machine", "sbm") == "dbm" ? MachineKind::kDBM
                                                       : MachineKind::kSBM;
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1990)));
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    std::cout << "=== " << to_string(cfg.machine) << " schedule ("
              << cfg.num_procs << " PEs) ===\n"
              << r.schedule->to_string();
    std::cout << "barrier " << r.stats.barrier_fraction() * 100
              << "% / serialized " << r.stats.serialized_fraction() * 100
              << "% / static " << r.stats.static_fraction() * 100
              << "%; completion " << r.stats.completion.to_string() << "\n\n";

    if (flags.get_bool("gantt", true)) {
      const ExecTrace t =
          simulate(*r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
      std::cout << "=== one random execution (completion " << t.completion
                << ") ===\n"
                << render_gantt(*r.schedule, t, {.max_width = 90});
    }
    if (flags.has("emit-schedule"))
      std::cout << "\n=== serialized schedule ===\n"
                << schedule_to_text(*r.schedule);
    if (flags.has("emit-dot"))
      std::cout << "\n=== instruction DAG (graphviz) ===\n"
                << instr_dag_to_dot(dag, prog)
                << "\n=== barrier dag (graphviz) ===\n"
                << barrier_dag_to_dot(r.schedule->barrier_dag());
  } catch (const Error& e) {
    std::cerr << "bmc: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
