file(REMOVE_RECURSE
  "CMakeFiles/bm_barrier.dir/barrier_dag.cpp.o"
  "CMakeFiles/bm_barrier.dir/barrier_dag.cpp.o.d"
  "CMakeFiles/bm_barrier.dir/dot.cpp.o"
  "CMakeFiles/bm_barrier.dir/dot.cpp.o.d"
  "libbm_barrier.a"
  "libbm_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
