# Empty compiler generated dependencies file for bm_barrier.
# This may be replaced when dependencies are built.
