file(REMOVE_RECURSE
  "libbm_barrier.a"
)
