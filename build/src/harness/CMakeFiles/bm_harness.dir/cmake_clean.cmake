file(REMOVE_RECURSE
  "CMakeFiles/bm_harness.dir/experiment.cpp.o"
  "CMakeFiles/bm_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/bm_harness.dir/report.cpp.o"
  "CMakeFiles/bm_harness.dir/report.cpp.o.d"
  "libbm_harness.a"
  "libbm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
