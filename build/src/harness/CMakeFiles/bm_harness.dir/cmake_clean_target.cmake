file(REMOVE_RECURSE
  "libbm_harness.a"
)
