# Empty compiler generated dependencies file for bm_harness.
# This may be replaced when dependencies are built.
