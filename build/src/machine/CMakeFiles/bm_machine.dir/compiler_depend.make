# Empty compiler generated dependencies file for bm_machine.
# This may be replaced when dependencies are built.
