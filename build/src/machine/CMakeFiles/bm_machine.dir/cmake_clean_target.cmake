file(REMOVE_RECURSE
  "libbm_machine.a"
)
