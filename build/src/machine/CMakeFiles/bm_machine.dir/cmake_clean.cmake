file(REMOVE_RECURSE
  "CMakeFiles/bm_machine.dir/presets.cpp.o"
  "CMakeFiles/bm_machine.dir/presets.cpp.o.d"
  "libbm_machine.a"
  "libbm_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
