file(REMOVE_RECURSE
  "CMakeFiles/bm_cfg.dir/cfg_gen.cpp.o"
  "CMakeFiles/bm_cfg.dir/cfg_gen.cpp.o.d"
  "CMakeFiles/bm_cfg.dir/cfg_ir.cpp.o"
  "CMakeFiles/bm_cfg.dir/cfg_ir.cpp.o.d"
  "CMakeFiles/bm_cfg.dir/cfg_sched.cpp.o"
  "CMakeFiles/bm_cfg.dir/cfg_sched.cpp.o.d"
  "CMakeFiles/bm_cfg.dir/cfg_sim.cpp.o"
  "CMakeFiles/bm_cfg.dir/cfg_sim.cpp.o.d"
  "libbm_cfg.a"
  "libbm_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
