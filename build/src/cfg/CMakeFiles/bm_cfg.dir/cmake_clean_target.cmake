file(REMOVE_RECURSE
  "libbm_cfg.a"
)
