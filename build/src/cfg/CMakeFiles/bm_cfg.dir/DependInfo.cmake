
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/cfg_gen.cpp" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_gen.cpp.o" "gcc" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_gen.cpp.o.d"
  "/root/repo/src/cfg/cfg_ir.cpp" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_ir.cpp.o" "gcc" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_ir.cpp.o.d"
  "/root/repo/src/cfg/cfg_sched.cpp" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_sched.cpp.o" "gcc" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_sched.cpp.o.d"
  "/root/repo/src/cfg/cfg_sim.cpp" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_sim.cpp.o" "gcc" "src/cfg/CMakeFiles/bm_cfg.dir/cfg_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/bm_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/bm_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vliw/CMakeFiles/bm_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/bm_barrier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bm_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
