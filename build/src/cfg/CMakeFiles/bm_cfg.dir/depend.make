# Empty dependencies file for bm_cfg.
# This may be replaced when dependencies are built.
