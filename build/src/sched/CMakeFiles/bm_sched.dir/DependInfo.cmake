
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/insertion.cpp" "src/sched/CMakeFiles/bm_sched.dir/insertion.cpp.o" "gcc" "src/sched/CMakeFiles/bm_sched.dir/insertion.cpp.o.d"
  "/root/repo/src/sched/labels.cpp" "src/sched/CMakeFiles/bm_sched.dir/labels.cpp.o" "gcc" "src/sched/CMakeFiles/bm_sched.dir/labels.cpp.o.d"
  "/root/repo/src/sched/policies.cpp" "src/sched/CMakeFiles/bm_sched.dir/policies.cpp.o" "gcc" "src/sched/CMakeFiles/bm_sched.dir/policies.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/bm_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/bm_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/bm_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/bm_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/serialize.cpp" "src/sched/CMakeFiles/bm_sched.dir/serialize.cpp.o" "gcc" "src/sched/CMakeFiles/bm_sched.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/barrier/CMakeFiles/bm_barrier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
