file(REMOVE_RECURSE
  "CMakeFiles/bm_sched.dir/insertion.cpp.o"
  "CMakeFiles/bm_sched.dir/insertion.cpp.o.d"
  "CMakeFiles/bm_sched.dir/labels.cpp.o"
  "CMakeFiles/bm_sched.dir/labels.cpp.o.d"
  "CMakeFiles/bm_sched.dir/policies.cpp.o"
  "CMakeFiles/bm_sched.dir/policies.cpp.o.d"
  "CMakeFiles/bm_sched.dir/schedule.cpp.o"
  "CMakeFiles/bm_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/bm_sched.dir/scheduler.cpp.o"
  "CMakeFiles/bm_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/bm_sched.dir/serialize.cpp.o"
  "CMakeFiles/bm_sched.dir/serialize.cpp.o.d"
  "libbm_sched.a"
  "libbm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
