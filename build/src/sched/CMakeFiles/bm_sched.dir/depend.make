# Empty dependencies file for bm_sched.
# This may be replaced when dependencies are built.
