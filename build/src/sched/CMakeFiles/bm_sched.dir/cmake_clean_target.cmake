file(REMOVE_RECURSE
  "libbm_sched.a"
)
