file(REMOVE_RECURSE
  "libbm_graph.a"
)
