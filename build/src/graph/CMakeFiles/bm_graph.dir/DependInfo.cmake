
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/bm_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/bm_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/dominators.cpp" "src/graph/CMakeFiles/bm_graph.dir/dominators.cpp.o" "gcc" "src/graph/CMakeFiles/bm_graph.dir/dominators.cpp.o.d"
  "/root/repo/src/graph/instr_dag.cpp" "src/graph/CMakeFiles/bm_graph.dir/instr_dag.cpp.o" "gcc" "src/graph/CMakeFiles/bm_graph.dir/instr_dag.cpp.o.d"
  "/root/repo/src/graph/paths.cpp" "src/graph/CMakeFiles/bm_graph.dir/paths.cpp.o" "gcc" "src/graph/CMakeFiles/bm_graph.dir/paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/bm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
