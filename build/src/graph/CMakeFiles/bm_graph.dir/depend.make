# Empty dependencies file for bm_graph.
# This may be replaced when dependencies are built.
