file(REMOVE_RECURSE
  "CMakeFiles/bm_graph.dir/digraph.cpp.o"
  "CMakeFiles/bm_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/bm_graph.dir/dominators.cpp.o"
  "CMakeFiles/bm_graph.dir/dominators.cpp.o.d"
  "CMakeFiles/bm_graph.dir/instr_dag.cpp.o"
  "CMakeFiles/bm_graph.dir/instr_dag.cpp.o.d"
  "CMakeFiles/bm_graph.dir/paths.cpp.o"
  "CMakeFiles/bm_graph.dir/paths.cpp.o.d"
  "libbm_graph.a"
  "libbm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
