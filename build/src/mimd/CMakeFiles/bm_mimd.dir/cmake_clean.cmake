file(REMOVE_RECURSE
  "CMakeFiles/bm_mimd.dir/directed.cpp.o"
  "CMakeFiles/bm_mimd.dir/directed.cpp.o.d"
  "CMakeFiles/bm_mimd.dir/reduce.cpp.o"
  "CMakeFiles/bm_mimd.dir/reduce.cpp.o.d"
  "libbm_mimd.a"
  "libbm_mimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_mimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
