# Empty compiler generated dependencies file for bm_mimd.
# This may be replaced when dependencies are built.
