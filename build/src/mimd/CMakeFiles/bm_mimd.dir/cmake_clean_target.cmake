file(REMOVE_RECURSE
  "libbm_mimd.a"
)
