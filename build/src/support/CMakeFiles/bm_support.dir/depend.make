# Empty dependencies file for bm_support.
# This may be replaced when dependencies are built.
