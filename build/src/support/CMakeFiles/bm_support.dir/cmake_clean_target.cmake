file(REMOVE_RECURSE
  "libbm_support.a"
)
