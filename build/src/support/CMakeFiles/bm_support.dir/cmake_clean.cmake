file(REMOVE_RECURSE
  "CMakeFiles/bm_support.dir/bitset.cpp.o"
  "CMakeFiles/bm_support.dir/bitset.cpp.o.d"
  "CMakeFiles/bm_support.dir/cli.cpp.o"
  "CMakeFiles/bm_support.dir/cli.cpp.o.d"
  "CMakeFiles/bm_support.dir/rng.cpp.o"
  "CMakeFiles/bm_support.dir/rng.cpp.o.d"
  "CMakeFiles/bm_support.dir/stats.cpp.o"
  "CMakeFiles/bm_support.dir/stats.cpp.o.d"
  "CMakeFiles/bm_support.dir/table.cpp.o"
  "CMakeFiles/bm_support.dir/table.cpp.o.d"
  "libbm_support.a"
  "libbm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
