
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vliw/vliw.cpp" "src/vliw/CMakeFiles/bm_vliw.dir/vliw.cpp.o" "gcc" "src/vliw/CMakeFiles/bm_vliw.dir/vliw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/bm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/bm_barrier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
