file(REMOVE_RECURSE
  "CMakeFiles/bm_vliw.dir/vliw.cpp.o"
  "CMakeFiles/bm_vliw.dir/vliw.cpp.o.d"
  "libbm_vliw.a"
  "libbm_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
