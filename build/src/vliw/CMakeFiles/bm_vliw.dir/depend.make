# Empty dependencies file for bm_vliw.
# This may be replaced when dependencies are built.
