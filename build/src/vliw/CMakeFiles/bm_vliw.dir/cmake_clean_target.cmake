file(REMOVE_RECURSE
  "libbm_vliw.a"
)
