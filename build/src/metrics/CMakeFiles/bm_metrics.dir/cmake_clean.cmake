file(REMOVE_RECURSE
  "CMakeFiles/bm_metrics.dir/aggregate.cpp.o"
  "CMakeFiles/bm_metrics.dir/aggregate.cpp.o.d"
  "libbm_metrics.a"
  "libbm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
