# Empty dependencies file for bm_metrics.
# This may be replaced when dependencies are built.
