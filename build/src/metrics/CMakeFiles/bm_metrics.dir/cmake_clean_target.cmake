file(REMOVE_RECURSE
  "libbm_metrics.a"
)
