# Empty compiler generated dependencies file for bm_codegen.
# This may be replaced when dependencies are built.
