file(REMOVE_RECURSE
  "CMakeFiles/bm_codegen.dir/emitter.cpp.o"
  "CMakeFiles/bm_codegen.dir/emitter.cpp.o.d"
  "CMakeFiles/bm_codegen.dir/generator.cpp.o"
  "CMakeFiles/bm_codegen.dir/generator.cpp.o.d"
  "CMakeFiles/bm_codegen.dir/parser.cpp.o"
  "CMakeFiles/bm_codegen.dir/parser.cpp.o.d"
  "CMakeFiles/bm_codegen.dir/statement.cpp.o"
  "CMakeFiles/bm_codegen.dir/statement.cpp.o.d"
  "CMakeFiles/bm_codegen.dir/synthesize.cpp.o"
  "CMakeFiles/bm_codegen.dir/synthesize.cpp.o.d"
  "libbm_codegen.a"
  "libbm_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
