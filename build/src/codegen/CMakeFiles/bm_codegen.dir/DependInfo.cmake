
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/emitter.cpp" "src/codegen/CMakeFiles/bm_codegen.dir/emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/bm_codegen.dir/emitter.cpp.o.d"
  "/root/repo/src/codegen/generator.cpp" "src/codegen/CMakeFiles/bm_codegen.dir/generator.cpp.o" "gcc" "src/codegen/CMakeFiles/bm_codegen.dir/generator.cpp.o.d"
  "/root/repo/src/codegen/parser.cpp" "src/codegen/CMakeFiles/bm_codegen.dir/parser.cpp.o" "gcc" "src/codegen/CMakeFiles/bm_codegen.dir/parser.cpp.o.d"
  "/root/repo/src/codegen/statement.cpp" "src/codegen/CMakeFiles/bm_codegen.dir/statement.cpp.o" "gcc" "src/codegen/CMakeFiles/bm_codegen.dir/statement.cpp.o.d"
  "/root/repo/src/codegen/synthesize.cpp" "src/codegen/CMakeFiles/bm_codegen.dir/synthesize.cpp.o" "gcc" "src/codegen/CMakeFiles/bm_codegen.dir/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/bm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/bm_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
