file(REMOVE_RECURSE
  "libbm_codegen.a"
)
