# Empty compiler generated dependencies file for bm_ir.
# This may be replaced when dependencies are built.
