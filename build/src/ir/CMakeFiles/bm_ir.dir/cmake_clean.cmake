file(REMOVE_RECURSE
  "CMakeFiles/bm_ir.dir/interp.cpp.o"
  "CMakeFiles/bm_ir.dir/interp.cpp.o.d"
  "CMakeFiles/bm_ir.dir/opcode.cpp.o"
  "CMakeFiles/bm_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/bm_ir.dir/program.cpp.o"
  "CMakeFiles/bm_ir.dir/program.cpp.o.d"
  "CMakeFiles/bm_ir.dir/timing.cpp.o"
  "CMakeFiles/bm_ir.dir/timing.cpp.o.d"
  "CMakeFiles/bm_ir.dir/tuple.cpp.o"
  "CMakeFiles/bm_ir.dir/tuple.cpp.o.d"
  "libbm_ir.a"
  "libbm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
