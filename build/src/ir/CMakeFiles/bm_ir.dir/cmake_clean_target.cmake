file(REMOVE_RECURSE
  "libbm_ir.a"
)
