file(REMOVE_RECURSE
  "CMakeFiles/bm_opt.dir/passes.cpp.o"
  "CMakeFiles/bm_opt.dir/passes.cpp.o.d"
  "libbm_opt.a"
  "libbm_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
