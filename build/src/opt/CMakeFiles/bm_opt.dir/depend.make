# Empty dependencies file for bm_opt.
# This may be replaced when dependencies are built.
