file(REMOVE_RECURSE
  "libbm_opt.a"
)
