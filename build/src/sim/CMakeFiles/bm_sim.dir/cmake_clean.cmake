file(REMOVE_RECURSE
  "CMakeFiles/bm_sim.dir/analysis.cpp.o"
  "CMakeFiles/bm_sim.dir/analysis.cpp.o.d"
  "CMakeFiles/bm_sim.dir/gantt.cpp.o"
  "CMakeFiles/bm_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/bm_sim.dir/sampler.cpp.o"
  "CMakeFiles/bm_sim.dir/sampler.cpp.o.d"
  "CMakeFiles/bm_sim.dir/simulator.cpp.o"
  "CMakeFiles/bm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/bm_sim.dir/trace.cpp.o"
  "CMakeFiles/bm_sim.dir/trace.cpp.o.d"
  "libbm_sim.a"
  "libbm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
