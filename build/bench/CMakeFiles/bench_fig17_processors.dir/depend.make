# Empty dependencies file for bench_fig17_processors.
# This may be replaced when dependencies are built.
