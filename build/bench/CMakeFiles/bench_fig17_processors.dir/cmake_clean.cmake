file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_processors.dir/bench_fig17_processors.cpp.o"
  "CMakeFiles/bench_fig17_processors.dir/bench_fig17_processors.cpp.o.d"
  "bench_fig17_processors"
  "bench_fig17_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
