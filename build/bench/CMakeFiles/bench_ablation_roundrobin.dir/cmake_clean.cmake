file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_roundrobin.dir/bench_ablation_roundrobin.cpp.o"
  "CMakeFiles/bench_ablation_roundrobin.dir/bench_ablation_roundrobin.cpp.o.d"
  "bench_ablation_roundrobin"
  "bench_ablation_roundrobin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_roundrobin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
