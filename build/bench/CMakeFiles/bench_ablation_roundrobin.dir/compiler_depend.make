# Empty compiler generated dependencies file for bench_ablation_roundrobin.
# This may be replaced when dependencies are built.
