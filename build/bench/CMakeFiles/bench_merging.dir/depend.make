# Empty dependencies file for bench_merging.
# This may be replaced when dependencies are built.
