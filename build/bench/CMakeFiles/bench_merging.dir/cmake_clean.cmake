file(REMOVE_RECURSE
  "CMakeFiles/bench_merging.dir/bench_merging.cpp.o"
  "CMakeFiles/bench_merging.dir/bench_merging.cpp.o.d"
  "bench_merging"
  "bench_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
