# Empty dependencies file for bench_fig15_statements.
# This may be replaced when dependencies are built.
