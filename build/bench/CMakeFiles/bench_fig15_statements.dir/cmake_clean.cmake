file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_statements.dir/bench_fig15_statements.cpp.o"
  "CMakeFiles/bench_fig15_statements.dir/bench_fig15_statements.cpp.o.d"
  "bench_fig15_statements"
  "bench_fig15_statements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_statements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
