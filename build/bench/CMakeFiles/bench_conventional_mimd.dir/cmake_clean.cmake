file(REMOVE_RECURSE
  "CMakeFiles/bench_conventional_mimd.dir/bench_conventional_mimd.cpp.o"
  "CMakeFiles/bench_conventional_mimd.dir/bench_conventional_mimd.cpp.o.d"
  "bench_conventional_mimd"
  "bench_conventional_mimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conventional_mimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
