# Empty compiler generated dependencies file for bench_conventional_mimd.
# This may be replaced when dependencies are built.
