file(REMOVE_RECURSE
  "CMakeFiles/bench_insertion_compare.dir/bench_insertion_compare.cpp.o"
  "CMakeFiles/bench_insertion_compare.dir/bench_insertion_compare.cpp.o.d"
  "bench_insertion_compare"
  "bench_insertion_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insertion_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
