# Empty dependencies file for bench_insertion_compare.
# This may be replaced when dependencies are built.
