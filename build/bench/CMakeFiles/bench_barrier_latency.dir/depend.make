# Empty dependencies file for bench_barrier_latency.
# This may be replaced when dependencies are built.
