file(REMOVE_RECURSE
  "CMakeFiles/bench_barrier_latency.dir/bench_barrier_latency.cpp.o"
  "CMakeFiles/bench_barrier_latency.dir/bench_barrier_latency.cpp.o.d"
  "bench_barrier_latency"
  "bench_barrier_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_barrier_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
