# Empty dependencies file for bench_ablation_lookahead.
# This may be replaced when dependencies are built.
