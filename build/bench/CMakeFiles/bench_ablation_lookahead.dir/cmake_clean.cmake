file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lookahead.dir/bench_ablation_lookahead.cpp.o"
  "CMakeFiles/bench_ablation_lookahead.dir/bench_ablation_lookahead.cpp.o.d"
  "bench_ablation_lookahead"
  "bench_ablation_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
