file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timing_variation.dir/bench_ablation_timing_variation.cpp.o"
  "CMakeFiles/bench_ablation_timing_variation.dir/bench_ablation_timing_variation.cpp.o.d"
  "bench_ablation_timing_variation"
  "bench_ablation_timing_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timing_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
