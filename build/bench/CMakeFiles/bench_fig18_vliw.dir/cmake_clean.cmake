file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_vliw.dir/bench_fig18_vliw.cpp.o"
  "CMakeFiles/bench_fig18_vliw.dir/bench_fig18_vliw.cpp.o.d"
  "bench_fig18_vliw"
  "bench_fig18_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
