
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_ordering.cpp" "bench/CMakeFiles/bench_ablation_ordering.dir/bench_ablation_ordering.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_ordering.dir/bench_ablation_ordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/bm_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/bm_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/bm_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/bm_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mimd/CMakeFiles/bm_mimd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vliw/CMakeFiles/bm_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/bm_barrier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
