# Empty dependencies file for bench_control_flow.
# This may be replaced when dependencies are built.
