file(REMOVE_RECURSE
  "CMakeFiles/bench_control_flow.dir/bench_control_flow.cpp.o"
  "CMakeFiles/bench_control_flow.dir/bench_control_flow.cpp.o.d"
  "bench_control_flow"
  "bench_control_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
