# Empty dependencies file for bench_table1_instruction_mix.
# This may be replaced when dependencies are built.
