file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_instruction_mix.dir/bench_table1_instruction_mix.cpp.o"
  "CMakeFiles/bench_table1_instruction_mix.dir/bench_table1_instruction_mix.cpp.o.d"
  "bench_table1_instruction_mix"
  "bench_table1_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
