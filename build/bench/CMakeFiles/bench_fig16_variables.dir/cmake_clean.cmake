file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_variables.dir/bench_fig16_variables.cpp.o"
  "CMakeFiles/bench_fig16_variables.dir/bench_fig16_variables.cpp.o.d"
  "bench_fig16_variables"
  "bench_fig16_variables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_variables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
