file(REMOVE_RECURSE
  "CMakeFiles/schedule_visualizer.dir/schedule_visualizer.cpp.o"
  "CMakeFiles/schedule_visualizer.dir/schedule_visualizer.cpp.o.d"
  "schedule_visualizer"
  "schedule_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
