# Empty dependencies file for bmc.
# This may be replaced when dependencies are built.
