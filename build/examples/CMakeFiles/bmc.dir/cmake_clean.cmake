file(REMOVE_RECURSE
  "CMakeFiles/bmc.dir/bmc.cpp.o"
  "CMakeFiles/bmc.dir/bmc.cpp.o.d"
  "bmc"
  "bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
