# Empty compiler generated dependencies file for vliw_comparison.
# This may be replaced when dependencies are built.
