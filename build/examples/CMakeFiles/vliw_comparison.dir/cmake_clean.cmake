file(REMOVE_RECURSE
  "CMakeFiles/vliw_comparison.dir/vliw_comparison.cpp.o"
  "CMakeFiles/vliw_comparison.dir/vliw_comparison.cpp.o.d"
  "vliw_comparison"
  "vliw_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
