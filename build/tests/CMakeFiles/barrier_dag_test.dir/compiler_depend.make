# Empty compiler generated dependencies file for barrier_dag_test.
# This may be replaced when dependencies are built.
