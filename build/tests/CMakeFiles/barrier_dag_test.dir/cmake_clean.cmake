file(REMOVE_RECURSE
  "CMakeFiles/barrier_dag_test.dir/barrier_dag_test.cpp.o"
  "CMakeFiles/barrier_dag_test.dir/barrier_dag_test.cpp.o.d"
  "barrier_dag_test"
  "barrier_dag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
