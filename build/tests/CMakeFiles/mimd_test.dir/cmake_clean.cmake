file(REMOVE_RECURSE
  "CMakeFiles/mimd_test.dir/mimd_test.cpp.o"
  "CMakeFiles/mimd_test.dir/mimd_test.cpp.o.d"
  "mimd_test"
  "mimd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
