# Empty dependencies file for mimd_test.
# This may be replaced when dependencies are built.
