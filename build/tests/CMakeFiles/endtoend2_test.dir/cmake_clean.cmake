file(REMOVE_RECURSE
  "CMakeFiles/endtoend2_test.dir/endtoend2_test.cpp.o"
  "CMakeFiles/endtoend2_test.dir/endtoend2_test.cpp.o.d"
  "endtoend2_test"
  "endtoend2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
