# Empty dependencies file for endtoend2_test.
# This may be replaced when dependencies are built.
