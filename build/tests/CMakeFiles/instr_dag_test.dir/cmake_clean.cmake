file(REMOVE_RECURSE
  "CMakeFiles/instr_dag_test.dir/instr_dag_test.cpp.o"
  "CMakeFiles/instr_dag_test.dir/instr_dag_test.cpp.o.d"
  "instr_dag_test"
  "instr_dag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instr_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
