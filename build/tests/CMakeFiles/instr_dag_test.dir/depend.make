# Empty dependencies file for instr_dag_test.
# This may be replaced when dependencies are built.
