#include <gtest/gtest.h>

#include "codegen/emitter.hpp"
#include "codegen/parser.hpp"
#include "opt/passes.hpp"
#include "support/assert.hpp"
#include "test_util.hpp"

namespace bm {
namespace {

TEST(Parser, ParsesSimpleBlock) {
  const ParsedBlock p = parse_statements("b = a + c; d = b * 17;");
  ASSERT_EQ(p.statements.size(), 2u);
  EXPECT_EQ(p.num_vars, 4u);
  EXPECT_EQ(p.var_names, (std::vector<std::string>{"b", "a", "c", "d"}));
  EXPECT_EQ(p.statements[0].op, Opcode::kAdd);
  EXPECT_EQ(p.statements[1].op, Opcode::kMul);
  EXPECT_TRUE(p.statements[1].b.kind == StmtOperand::Kind::kConst);
  EXPECT_EQ(p.statements[1].b.value, 17);
}

TEST(Parser, AllOperators) {
  const ParsedBlock p = parse_statements(
      "a = b + c; a = b - c; a = b * c; a = b / c; a = b % c; a = b & c;"
      "a = b | c;");
  const std::vector<Opcode> expected = {Opcode::kAdd, Opcode::kSub,
                                        Opcode::kMul, Opcode::kDiv,
                                        Opcode::kMod, Opcode::kAnd,
                                        Opcode::kOr};
  ASSERT_EQ(p.statements.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(p.statements[i].op, expected[i]);
}

TEST(Parser, CommentsAndWhitespace) {
  const ParsedBlock p = parse_statements(
      "# leading comment\n"
      "  x = y + 1;   # trailing comment\n"
      "\n"
      "  z = x - 2;\n");
  EXPECT_EQ(p.statements.size(), 2u);
  EXPECT_EQ(p.var_names[0], "x");
}

TEST(Parser, NegativeLiterals) {
  const ParsedBlock p = parse_statements("a = b + -5;");
  EXPECT_EQ(p.statements[0].b.value, -5);
}

TEST(Parser, MultiCharacterIdentifiers) {
  const ParsedBlock p = parse_statements("total = count_1 * price;");
  EXPECT_EQ(p.var_names,
            (std::vector<std::string>{"total", "count_1", "price"}));
}

TEST(Parser, ReportsErrorsWithLineNumbers) {
  try {
    parse_statements("a = b + c;\nd = e ^ f;");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_statements(""), Error);
  EXPECT_THROW(parse_statements("a = b +;"), Error);
  EXPECT_THROW(parse_statements("a = b + c"), Error);   // missing ';'
  EXPECT_THROW(parse_statements("1a = b + c;"), Error); // bad identifier
  EXPECT_THROW(parse_statements("= b + c;"), Error);
}

TEST(Parser, RoundTripSemanticsThroughPipeline) {
  const std::string source =
      "sum = x + y; prod = sum * sum; x = prod % 13; out = x | 1;";
  const ParsedBlock p = parse_statements(source);
  Program prog = emit_tuples(p.statements, p.num_vars);
  Program optimized = prog;
  optimize(optimized);
  const std::vector<std::int64_t> memory = {0, 7, 8, 0, 0};  // x=7 hmm: ids
  EXPECT_EQ(test::eval_program(prog, memory),
            test::eval_program(optimized, memory));
}

}  // namespace
}  // namespace bm
