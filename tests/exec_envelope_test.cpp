// Property tests for the predicted [min,max] envelopes and the measured
// native timeline. Wall-clock on a shared CI box proves nothing, so these
// assert *structure* only:
//
//   - predicted fire ranges are internally consistent (min <= max) and
//     monotone along barrier-dag order — a successor barrier is never
//     predicted to fire before a predecessor;
//   - predictions are monotone under added work: within a PE stream, the
//     next barrier's predicted fire is at least the previous one's plus
//     the model time of the segment between them;
//   - the measured timeline respects every ordering the prediction
//     implies: barrier k's measured fire never precedes a barrier-dag
//     predecessor's, and a PE never finishes before its last barrier.
//
// Real timing *comparison* (scaled envelope vs measured ns) is
// deliberately only in `bmexec calibrate` output, never asserted here.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "codegen/synthesize.hpp"
#include "exec/lower.hpp"
#include "exec/runtime.hpp"
#include "harness/experiment.hpp"
#include "sched/scheduler.hpp"

namespace bm {
namespace {

struct Built {
  Program prog{0};
  std::optional<InstrDag> dag;
  ScheduleResult sr;
};

std::unique_ptr<Built> build_case(InsertionPolicy insertion, MachineKind mk,
                                  std::size_t index, long barrier_latency) {
  GeneratorConfig gen;
  SchedulerConfig sc;
  sc.insertion = insertion;
  sc.machine = mk;
  sc.barrier_latency = barrier_latency;

  auto b = std::make_unique<Built>();
  Rng rng = benchmark_rng(1990, index);
  SynthesisResult synth = synthesize_benchmark(gen, rng);
  b->prog = std::move(synth.program);
  b->dag.emplace(InstrDag::build(b->prog, TimingModel::table1()));
  b->sr = schedule_program(*b->dag, sc, rng);
  return b;
}

TEST(ExecEnvelopeTest, PredictedRangesAreConsistentAndDagMonotone) {
  const std::unique_ptr<Built> b =
      build_case(InsertionPolicy::kConservative, MachineKind::kSBM, 2, 0);
  const Schedule& sched = *b->sr.schedule;
  const exec::LoweredProgram lp = exec::lower(b->prog, sched);

  for (const exec::LoweredBarrier& lb : lp.barriers)
    EXPECT_LE(lb.predicted_fire.min, lb.predicted_fire.max)
        << "barrier " << lb.schedule_id;
  for (std::size_t p = 0; p < lp.pe_envelope.size(); ++p)
    EXPECT_LE(lp.pe_envelope[p].min, lp.pe_envelope[p].max) << "pe " << p;

  // Along every barrier-dag path, predicted fire is pointwise monotone.
  const BarrierDag& bdag = sched.barrier_dag();
  for (const exec::LoweredBarrier& u : lp.barriers) {
    for (const exec::LoweredBarrier& v : lp.barriers) {
      if (u.schedule_id == v.schedule_id) continue;
      if (!bdag.path_exists(u.schedule_id, v.schedule_id)) continue;
      EXPECT_LE(u.predicted_fire.min, v.predicted_fire.min)
          << "b" << u.schedule_id << " ->* b" << v.schedule_id;
      EXPECT_LE(u.predicted_fire.max, v.predicted_fire.max)
          << "b" << u.schedule_id << " ->* b" << v.schedule_id;
    }
  }

  // Completion dominates every PE's envelope.
  const TimeRange done = sched.completion();
  for (std::size_t p = 0; p < lp.pe_envelope.size(); ++p) {
    EXPECT_GE(done.min, lp.pe_envelope[p].min) << "pe " << p;
    EXPECT_GE(done.max, lp.pe_envelope[p].max) << "pe " << p;
  }
}

// Monotone under added work: walking a PE stream, each barrier's predicted
// fire is at least the previous barrier's plus the model time of the ops
// between them (the §4.2 arrival bound from this participant alone — the
// true fire is a max over all participants, so >= holds a fortiori).
TEST(ExecEnvelopeTest, PredictionsMonotoneUnderSegmentWork) {
  for (const long latency : {0L, 7L}) {
    const std::unique_ptr<Built> b =
        build_case(InsertionPolicy::kOptimal, MachineKind::kSBM, 5, latency);
    const exec::LoweredProgram lp = exec::lower(b->prog, *b->sr.schedule);
    const InstrDag& dag = *b->dag;

    for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
      const exec::PeStream& pe = lp.pes[p];
      TimeRange prev{0, 0};  // the initial barrier fires at t=0
      Time seg_min = 0, seg_max = 0;
      for (const exec::LoweredStep& step : pe.steps) {
        if (step.kind == exec::LoweredStep::Kind::kSegment) {
          for (std::uint32_t i = step.a; i < step.b; ++i) {
            const TimeRange& t = dag.time(pe.ops[i].dst);
            seg_min += t.min;
            seg_max += t.max;
          }
          continue;
        }
        const TimeRange fire = lp.barriers[step.a].predicted_fire;
        EXPECT_GE(fire.min, prev.min + seg_min)
            << "pe " << p << " barrier b" << lp.barriers[step.a].schedule_id
            << " latency " << latency;
        EXPECT_GE(fire.max, prev.max + seg_max)
            << "pe " << p << " barrier b" << lp.barriers[step.a].schedule_id
            << " latency " << latency;
        prev = fire;
        seg_min = seg_max = 0;
      }
      // The PE's completion envelope covers its last barrier plus tail.
      EXPECT_GE(lp.pe_envelope[p].min, prev.min + seg_min) << "pe " << p;
      EXPECT_GE(lp.pe_envelope[p].max, prev.max + seg_max) << "pe " << p;
    }
  }
}

// Measured timeline: every ordering the prediction implies must hold on
// silicon — across both primitives and both thread mappings.
TEST(ExecEnvelopeTest, MeasuredTimelineRespectsPredictedOrder) {
  const std::unique_ptr<Built> b =
      build_case(InsertionPolicy::kConservative, MachineKind::kDBM, 9, 0);
  const Schedule& sched = *b->sr.schedule;
  const exec::LoweredProgram lp = exec::lower(b->prog, sched);
  const BarrierDag& bdag = sched.barrier_dag();

  for (const exec::BarrierKind kind : exec::kAllBarrierKinds) {
    for (const std::uint32_t threads : {0u, 2u}) {
      exec::ExecOptions opts;
      opts.barrier = kind;
      opts.threads = threads;
      opts.spin_iters = 32;
      opts.timeline = true;
      const exec::ExecResult r = exec::execute(lp, opts);
      ASSERT_EQ(r.barrier_fire_ns.size(), lp.barriers.size());
      ASSERT_EQ(r.pe_finish_ns.size(), lp.num_procs);

      // Barrier k never fires before a barrier-dag predecessor.
      for (std::size_t u = 0; u < lp.barriers.size(); ++u)
        for (std::size_t v = 0; v < lp.barriers.size(); ++v) {
          if (u == v) continue;
          if (!bdag.path_exists(lp.barriers[u].schedule_id,
                                lp.barriers[v].schedule_id))
            continue;
          EXPECT_LE(r.barrier_fire_ns[u], r.barrier_fire_ns[v])
              << exec::barrier_kind_name(kind) << " threads " << threads
              << ": b" << lp.barriers[u].schedule_id << " ->* b"
              << lp.barriers[v].schedule_id;
        }

      // A PE never finishes before the fire of its last barrier, and its
      // stream's fires are measured in stream order.
      for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
        std::uint64_t prev_fire = 0;
        for (const exec::LoweredStep& step : lp.pes[p].steps) {
          if (step.kind != exec::LoweredStep::Kind::kBarrier) continue;
          const std::uint64_t f = r.barrier_fire_ns[step.a];
          EXPECT_GE(f, prev_fire)
              << exec::barrier_kind_name(kind) << " threads " << threads
              << " pe " << p;
          prev_fire = f;
        }
        EXPECT_GE(r.pe_finish_ns[p], prev_fire)
            << exec::barrier_kind_name(kind) << " threads " << threads
            << " pe " << p;
      }
    }
  }
}

}  // namespace
}  // namespace bm
