// The parallel experiment harness: ThreadPool behavior, --jobs parsing, and
// the bit-reproducibility contract — run_point with N workers must produce
// output identical to the serial run, for any N.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "harness/experiment.hpp"
#include "support/cli.hpp"
#include "support/thread_pool.hpp"

namespace bm {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  ThreadPool pool(8);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) throw Error("boom");
                                 }),
               Error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ParallelForJobsInlineWhenSerial) {
  // jobs <= 1 must run on the calling thread (no pool spin-up).
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  parallel_for_jobs(1, 16, [&](std::size_t) {
    same_thread = same_thread && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPool, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(Cli, JobsFlagParsing) {
  {
    const char* argv[] = {"prog"};
    EXPECT_EQ(CliFlags(1, argv).get_jobs(), 1u);
  }
  {
    const char* argv[] = {"prog", "--jobs", "7"};
    EXPECT_EQ(CliFlags(3, argv).get_jobs(), 7u);
  }
  {
    const char* argv[] = {"prog", "--jobs=auto"};
    EXPECT_EQ(CliFlags(2, argv).get_jobs(), ThreadPool::default_jobs());
  }
  {
    const char* argv[] = {"prog", "--jobs", "0"};
    EXPECT_EQ(CliFlags(3, argv).get_jobs(), ThreadPool::default_jobs());
  }
  {
    const char* argv[] = {"prog", "--jobs", "-2"};
    EXPECT_THROW(CliFlags(3, argv).get_jobs(), Error);
  }
}

// --- run_point determinism ---------------------------------------------------

void expect_identical(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());        // exact, not near: bit-identical
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_identical(const PointAggregate& a, const PointAggregate& b) {
  const FractionAggregate& fa = a.fractions;
  const FractionAggregate& fb = b.fractions;
  expect_identical(fa.barrier_frac, fb.barrier_frac);
  expect_identical(fa.serialized_frac, fb.serialized_frac);
  expect_identical(fa.static_frac, fb.static_frac);
  expect_identical(fa.no_runtime_frac, fb.no_runtime_frac);
  expect_identical(fa.implied_syncs, fb.implied_syncs);
  expect_identical(fa.barriers, fb.barriers);
  expect_identical(fa.barriers_inserted, fb.barriers_inserted);
  expect_identical(fa.merges, fb.merges);
  expect_identical(fa.repairs, fb.repairs);
  expect_identical(fa.procs_used, fb.procs_used);
  expect_identical(fa.completion_min, fb.completion_min);
  expect_identical(fa.completion_max, fb.completion_max);
  expect_identical(fa.cross_resolved_frac, fb.cross_resolved_frac);
  expect_identical(fa.timing_avoidance_frac, fb.timing_avoidance_frac);
  expect_identical(a.program_size, b.program_size);
  expect_identical(a.vliw_makespan, b.vliw_makespan);
  expect_identical(a.norm_min, b.norm_min);
  expect_identical(a.norm_max, b.norm_max);
  expect_identical(a.norm_mean, b.norm_mean);
  EXPECT_EQ(a.violation_count, b.violation_count);
}

TEST(ParallelHarness, JobsProduceBitIdenticalAggregates) {
  GeneratorConfig gen{.num_statements = 20, .num_variables = 6,
                      .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  cfg.num_procs = 4;
  RunOptions serial;
  serial.seeds = 12;
  serial.base_seed = 77;
  serial.jobs = 1;
  const PointAggregate ref = run_point(gen, cfg, serial);

  for (std::size_t jobs : {2u, 3u, 8u}) {
    RunOptions opt = serial;
    opt.jobs = jobs;
    expect_identical(ref, run_point(gen, cfg, opt));
  }
}

TEST(ParallelHarness, JobsIdenticalWithSimulationAndVliw) {
  GeneratorConfig gen{.num_statements = 15, .num_variables = 5,
                      .num_constants = 3, .const_max = 32};
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  cfg.insertion = InsertionPolicy::kOptimal;
  RunOptions serial;
  serial.seeds = 8;
  serial.base_seed = 1990;
  serial.with_vliw = true;
  serial.sim_runs = 3;
  serial.validate_draws = true;
  const PointAggregate ref = run_point(gen, cfg, serial);

  RunOptions opt = serial;
  opt.jobs = 8;
  expect_identical(ref, run_point(gen, cfg, opt));

  opt.jobs = 0;  // auto: hardware concurrency, still identical
  expect_identical(ref, run_point(gen, cfg, opt));
}

TEST(ParallelHarness, HookSeesSeedsInOrderUnderParallelism) {
  GeneratorConfig gen{.num_statements = 10, .num_variables = 4,
                      .num_constants = 3, .const_max = 32};
  SchedulerConfig cfg;
  RunOptions opt;
  opt.seeds = 9;
  opt.jobs = 4;
  std::vector<std::size_t> seen;
  run_point(gen, cfg, opt,
            [&](const BenchmarkOutcome& o) { seen.push_back(o.seed_index); });
  ASSERT_EQ(seen.size(), 9u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace bm
