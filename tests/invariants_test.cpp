// Deep invariant checks: exact agreement between the static barrier-dag
// analysis and the simulators under extreme draws, schedule-mutation
// fuzzing, and whole-space scheduler accounting invariants.
#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

TEST(FireRanges, ExtremeDrawsRealizeExactBounds) {
  // In the all-min draw every barrier fires exactly at B_min; in the
  // all-max draw exactly at B_max (the static fire range is achieved, not
  // just bounded).
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 3 + 11);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const BarrierDag& bd = r.schedule->barrier_dag();
    const ExecTrace lo =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMin}, rng);
    const ExecTrace hi =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMax}, rng);
    for (BarrierId b = 0; b < r.schedule->barrier_id_bound(); ++b) {
      if (!r.schedule->barrier_alive(b)) continue;
      EXPECT_EQ(lo.barrier_fire[b], bd.fire_range(b).min) << "barrier " << b;
      EXPECT_EQ(hi.barrier_fire[b], bd.fire_range(b).max) << "barrier " << b;
    }
  }
}

TEST(FireRanges, PsiMaxAgreesWithPathEnumeration) {
  const GeneratorConfig gen{.num_statements = 50, .num_variables = 12,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  Rng rng(99);
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  const BarrierDag& bd = r.schedule->barrier_dag();
  for (BarrierId u : bd.barrier_ids()) {
    for (BarrierId v : bd.barrier_ids()) {
      if (!bd.path_exists(u, v)) continue;
      auto paths = bd.max_paths(u, v);
      std::vector<BarrierId> path;
      Time len = 0;
      ASSERT_TRUE(paths.next(path, len));
      EXPECT_EQ(len, bd.psi_max(u, v)) << "B" << u << "→B" << v;
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      // ψ_min never exceeds ψ_max, and ψ*_min with no forcing equals ψ_min.
      EXPECT_LE(bd.psi_min(u, v), bd.psi_max(u, v));
      EXPECT_EQ(bd.psi_min_star(u, v, {}), bd.psi_min(u, v));
    }
  }
}

TEST(ScheduleFuzz, RandomFeasibleMutationsKeepInvariants) {
  // Random append/insert sequences (inserting only where order_feasible
  // approves) must never throw, never lose an instruction, and always
  // produce an acyclic barrier dag with consistent positions.
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const GeneratorConfig gen{.num_statements = 20, .num_variables = 6,
                              .num_constants = 3, .const_max = 32};
    Rng grng(rng.next());
    const SynthesisResult s = synthesize_benchmark(gen, grng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const std::size_t procs = 3 + rng.index(4);
    Schedule sched(dag, procs);

    // Place instructions in dependence order on random processors.
    for (NodeId n = 0; n < dag.num_instructions(); ++n)
      sched.append_instr(static_cast<ProcId>(rng.index(procs)), n);

    // Random barrier insertions at random positions, gated on feasibility.
    std::size_t inserted = 0;
    for (int k = 0; k < 15; ++k) {
      const auto p1 = static_cast<ProcId>(rng.index(procs));
      auto p2 = static_cast<ProcId>(rng.index(procs));
      if (p1 == p2) p2 = static_cast<ProcId>((p2 + 1) % procs);
      const std::vector<Schedule::Loc> at = {
          {p1, static_cast<std::uint32_t>(
                   rng.index(sched.stream(p1).size() + 1))},
          {p2, static_cast<std::uint32_t>(
                   rng.index(sched.stream(p2).size() + 1))}};
      if (!sched.order_feasible(at)) continue;
      sched.insert_barrier(at);
      ++inserted;
    }
    // Invariants.
    EXPECT_NO_THROW(sched.barrier_dag());
    EXPECT_TRUE(sched.order_feasible({}));
    std::size_t placed = 0;
    for (ProcId p = 0; p < procs; ++p) {
      const auto& stream = sched.stream(p);
      for (std::uint32_t pos = 0; pos < stream.size(); ++pos) {
        if (stream[pos].is_barrier) continue;
        ++placed;
        EXPECT_EQ(sched.loc(stream[pos].id).proc, p);
        EXPECT_EQ(sched.loc(stream[pos].id).pos, pos);
      }
    }
    EXPECT_EQ(placed, dag.num_instructions());
    // Merging after the fact keeps everything consistent too.
    sched.merge_overlapping_all();
    EXPECT_TRUE(sched.order_feasible({}));
    EXPECT_NO_THROW(sched.completion());
    (void)inserted;
  }
}

struct PolicyPoint {
  MachineKind machine;
  InsertionPolicy insertion;
  OrderingPolicy ordering;
  AssignmentPolicy assignment;
};

class AllPolicies : public ::testing::TestWithParam<int> {};

TEST_P(AllPolicies, AccountingInvariantsHoldEverywhere) {
  // Cross product of every policy knob: the §3.1 accounting identities must
  // hold regardless of configuration.
  const int index = GetParam();
  const PolicyPoint pt{
      (index & 1) ? MachineKind::kDBM : MachineKind::kSBM,
      (index & 2) ? InsertionPolicy::kOptimal : InsertionPolicy::kConservative,
      (index & 4) ? OrderingPolicy::kMinThenMax : OrderingPolicy::kMaxThenMin,
      (index & 8) ? AssignmentPolicy::kRoundRobin
                  : ((index & 16) ? AssignmentPolicy::kLookahead
                                  : AssignmentPolicy::kListSerialize)};
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  cfg.machine = pt.machine;
  cfg.insertion = pt.insertion;
  cfg.ordering = pt.ordering;
  cfg.assignment = pt.assignment;
  cfg.num_procs = 6;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed * 7 + static_cast<std::uint64_t>(index) * 131 + 1);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const ScheduleStats& st = r.stats;
    EXPECT_EQ(st.serialized_edges + st.cross_edges, st.implied_syncs);
    EXPECT_NEAR(st.barrier_fraction() + st.serialized_fraction() +
                    st.static_fraction(),
                st.implied_syncs ? 1.0 : 0.0, 1e-12);
    EXPECT_LE(st.barriers_final, st.barriers_inserted + st.repair_barriers);
    EXPECT_LE(st.procs_used, cfg.num_procs);
    EXPECT_GE(st.completion.min, st.critical_path.min);
    EXPECT_GE(st.completion.max, st.critical_path.max);
    if (pt.machine == MachineKind::kDBM) {
      EXPECT_EQ(st.merges, 0u);
    }
    // And the schedule executes soundly.
    const ExecTrace t =
        simulate(*r.schedule, {pt.machine, SamplingMode::kBimodal}, rng);
    EXPECT_TRUE(find_violations(dag, t).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(PolicyCrossProduct, AllPolicies,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace bm
