#include <gtest/gtest.h>

#include "sched/insertion.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

/// Timing model with handy fixed/controllable ranges per opcode:
/// And/Or [1,1], Add/Mul [2,2], Sub [4,6], Load [5,7], Store [1,1].
TimingModel designer_timing() {
  TimingModel tm;
  tm.set(Opcode::kLoad, {5, 7});
  tm.set(Opcode::kStore, {1, 1});
  tm.set(Opcode::kAdd, {2, 2});
  tm.set(Opcode::kSub, {4, 6});
  tm.set(Opcode::kAnd, {1, 1});
  tm.set(Opcode::kOr, {1, 1});
  tm.set(Opcode::kMul, {2, 2});
  tm.set(Opcode::kDiv, {3, 30});
  tm.set(Opcode::kMod, {3, 3});
  return tm;
}

TEST(Insertion, SerializedPairNeedsNothing) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, T(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(0, 1);
  EXPECT_TRUE(sync_satisfied(sched, 0, 1, InsertionPolicy::kConservative));
  const SyncOutcome o =
      ensure_sync(sched, 0, 1, InsertionPolicy::kConservative, false);
  EXPECT_EQ(o.kind, SyncOutcome::Kind::kSerialized);
  EXPECT_EQ(sched.inserted_barrier_count(), 0u);
}

TEST(Insertion, ExistingBarrierChainSatisfiesByPath) {
  Program p(2);
  p.append(Tuple::load(0, 0));                                  // producer
  p.append(Tuple::binary(1, Opcode::kAdd, T(0), C(1)));         // consumer
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.insert_barrier({{0, 1}, {1, 0}});
  sched.append_instr(1, 1);
  const SyncOutcome o =
      ensure_sync(sched, 0, 1, InsertionPolicy::kConservative, false);
  EXPECT_EQ(o.kind, SyncOutcome::Kind::kPathSatisfied);
  EXPECT_EQ(sched.inserted_barrier_count(), 1u);  // only the pre-existing one
}

TEST(Insertion, InitialBarrierTimingSatisfiesDeterministicCase) {
  // Producer And [1,1] at P0 start; consumer on P1 after two And's
  // (δ_min(i⁻)=2 ≥ T_max(g)=1): resolved purely by static timing.
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAnd, C(1), C(1)));  // producer, P0
  p.append(Tuple::binary(1, Opcode::kAnd, C(2), C(2)));  // filler, P1
  p.append(Tuple::binary(2, Opcode::kAnd, C(3), C(3)));  // filler, P1
  p.append(Tuple::binary(3, Opcode::kOr, T(0), C(0)));   // consumer, P1
  const InstrDag dag = InstrDag::build(p, designer_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.append_instr(1, 2);
  sched.append_instr(1, 3);
  const SyncOutcome o =
      ensure_sync(sched, 0, 3, InsertionPolicy::kConservative, false);
  EXPECT_EQ(o.kind, SyncOutcome::Kind::kTimingSatisfied);
  EXPECT_EQ(sched.inserted_barrier_count(), 0u);
}

TEST(Insertion, VariableTimeProducerForcesBarrier) {
  // Load [5,7] producer; consumer immediately on the other processor:
  // T_min(i⁻)=0 < T_max(g)=7 → barrier required.
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  const InstrDag dag = InstrDag::build(p, designer_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  EXPECT_FALSE(sync_satisfied(sched, 0, 1, InsertionPolicy::kConservative));
  EXPECT_FALSE(sync_satisfied(sched, 0, 1, InsertionPolicy::kOptimal));
  const SyncOutcome o =
      ensure_sync(sched, 0, 1, InsertionPolicy::kConservative, false);
  ASSERT_EQ(o.kind, SyncOutcome::Kind::kBarrierInserted);
  // Placement: right after the producer on P0, right before the consumer
  // on P1.
  EXPECT_TRUE(sched.stream(0)[1].is_barrier);
  EXPECT_TRUE(sched.stream(1)[0].is_barrier);
  EXPECT_EQ(sched.loc(1).pos, 1u);
  // And the pair is now path-satisfied.
  EXPECT_TRUE(sync_satisfied(sched, 0, 1, InsertionPolicy::kConservative));
}

TEST(Insertion, GPlusPlacementLetsProducerSideRunLonger) {
  // P0: g=Load[5,7] then three Add's (max windows end at 9, 11, 13).
  // P1: i⁻=Div[3,30] then the consumer. δ_min(i⁻)=3 < T_max(g)=7 → barrier;
  // T_max(i⁻)=30 exceeds every P0 window → barrier at P0 segment end.
  Program p(1);
  p.append(Tuple::load(0, 0));                           // g [5,7]
  p.append(Tuple::binary(1, Opcode::kAdd, C(2), C(2)));
  p.append(Tuple::binary(2, Opcode::kAdd, C(3), C(3)));
  p.append(Tuple::binary(3, Opcode::kAdd, C(4), C(4)));
  p.append(Tuple::binary(4, Opcode::kDiv, C(9), C(2)));  // i⁻ [3,30]
  p.append(Tuple::binary(5, Opcode::kOr, T(0), C(0)));   // consumer of g
  const InstrDag dag = InstrDag::build(p, designer_timing());
  Schedule sched(dag, 2);
  for (NodeId n = 0; n <= 3; ++n) sched.append_instr(0, n);
  sched.append_instr(1, 4);
  sched.append_instr(1, 5);
  const SyncOutcome o =
      ensure_sync(sched, 0, 5, InsertionPolicy::kConservative, false);
  ASSERT_EQ(o.kind, SyncOutcome::Kind::kBarrierInserted);
  EXPECT_TRUE(sched.stream(0)[4].is_barrier);  // after all of P0's code
  EXPECT_TRUE(sched.stream(1)[1].is_barrier);  // just before the consumer
}

TEST(Insertion, GPlusStopsAtCoveringWindow) {
  // P0: g=Sub[4,6] then Add's with max windows ending at 8, 10, 12.
  // P1: i⁻=Load[5,7]: δ_min=5 < T_max(g)=6 → barrier; T_max(i⁻)=7 falls in
  // the first Add's window (6..8] → barrier right after that g⁺ (pos 2).
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kSub, C(9), C(1)));  // g [4,6]
  p.append(Tuple::binary(1, Opcode::kAdd, C(2), C(2)));
  p.append(Tuple::binary(2, Opcode::kAdd, C(3), C(3)));
  p.append(Tuple::binary(3, Opcode::kAdd, C(4), C(4)));
  p.append(Tuple::load(4, 0));                           // i⁻ [5,7]
  p.append(Tuple::binary(5, Opcode::kOr, T(0), C(0)));   // consumer
  const InstrDag dag = InstrDag::build(p, designer_timing());
  Schedule sched(dag, 2);
  for (NodeId n = 0; n <= 3; ++n) sched.append_instr(0, n);
  sched.append_instr(1, 4);
  sched.append_instr(1, 5);
  const SyncOutcome o =
      ensure_sync(sched, 0, 5, InsertionPolicy::kConservative, false);
  ASSERT_EQ(o.kind, SyncOutcome::Kind::kBarrierInserted);
  EXPECT_FALSE(sched.stream(0)[1].is_barrier);
  EXPECT_TRUE(sched.stream(0)[2].is_barrier);  // after g and one g⁺
}

/// The Fig. 13 structure: the conservative algorithm inserts a barrier that
/// the optimal algorithm proves unnecessary, because the consumer's longest
/// min-path overlaps the producer's longest max-path on edge (u,y).
struct Fig13 {
  Fig13() : prog(make_prog()),
            dag(InstrDag::build(prog, designer_timing())),
            sched(dag, 3) {
    sched.append_instr(0, 0);  // P0 u→y code: Load [5,7]
    sched.append_instr(1, 1);  // P1 u→y code: Sub [4,6]
    y = sched.insert_barrier({{0, 1}, {1, 1}});
    sched.append_instr(0, 4);  // g = Mul [2,2] on P0 after y
    sched.append_instr(1, 2);  // P1 y→z code: Add [2,2]
    sched.append_instr(2, 3);  // P2 u→z code: And [1,1]
    z = sched.insert_barrier({{1, 3}, {2, 1}});
    sched.append_instr(2, 5);  // i⁻ = And [1,1]
    sched.append_instr(2, 6);  // i = Or consumes g
  }

  static Program make_prog() {
    Program p(1);
    p.append(Tuple::load(0, 0));                            // 0: [5,7]
    p.append(Tuple::binary(1, Opcode::kSub, C(9), C(1)));   // 1: [4,6]
    p.append(Tuple::binary(2, Opcode::kAdd, C(1), C(1)));   // 2: [2,2]
    p.append(Tuple::binary(3, Opcode::kAnd, C(1), C(1)));   // 3: [1,1]
    p.append(Tuple::binary(4, Opcode::kMul, C(2), C(2)));   // 4: g [2,2]
    p.append(Tuple::binary(5, Opcode::kAnd, C(1), C(0)));   // 5: i⁻ [1,1]
    p.append(Tuple::binary(6, Opcode::kOr, T(4), C(0)));    // 6: i
    return p;
  }

  Program prog;
  InstrDag dag;
  Schedule sched;
  BarrierId y = kInvalidBarrier, z = kInvalidBarrier;
};

TEST(Insertion, Fig13ConservativeInsertsUnnecessaryBarrier) {
  Fig13 f;
  // Sanity: the barrier dag matches the figure's timing structure.
  const BarrierDag& bd = f.sched.barrier_dag();
  EXPECT_EQ(bd.edge_range(Schedule::kInitialBarrier, f.y), (TimeRange{5, 7}));
  EXPECT_EQ(bd.edge_range(f.y, f.z), (TimeRange{2, 2}));
  EXPECT_EQ(bd.edge_range(Schedule::kInitialBarrier, f.z), (TimeRange{1, 1}));

  EXPECT_FALSE(
      sync_satisfied(f.sched, 4, 6, InsertionPolicy::kConservative));
  EXPECT_TRUE(sync_satisfied(f.sched, 4, 6, InsertionPolicy::kOptimal));
}

TEST(Insertion, Fig13OptimalDecisionIsSoundUnderSimulation) {
  Fig13 f;
  // The optimal algorithm leaves the pair unsynchronized; verify no draw
  // can violate the dependence (g finishes before i starts).
  Rng rng(7);
  for (int run = 0; run < 300; ++run) {
    const ExecTrace t = simulate(
        f.sched, {MachineKind::kDBM, SamplingMode::kUniform}, rng);
    EXPECT_GE(t.start[6], t.finish[4]);
  }
  for (SamplingMode mode : {SamplingMode::kAllMin, SamplingMode::kAllMax,
                            SamplingMode::kBimodal}) {
    const ExecTrace t = simulate(f.sched, {MachineKind::kDBM, mode}, rng);
    EXPECT_GE(t.start[6], t.finish[4]);
  }
}

TEST(Insertion, OptimalNeverInsertsWhereConservativeDoesNot) {
  // On simple two-processor cases the two algorithms agree whenever the
  // conservative one is already satisfied.
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAnd, C(1), C(1)));
  p.append(Tuple::binary(1, Opcode::kAnd, C(2), C(2)));
  p.append(Tuple::binary(2, Opcode::kOr, T(0), C(0)));
  const InstrDag dag = InstrDag::build(p, designer_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.append_instr(1, 2);
  ASSERT_TRUE(sync_satisfied(sched, 0, 2, InsertionPolicy::kConservative));
  EXPECT_TRUE(sync_satisfied(sched, 0, 2, InsertionPolicy::kOptimal));
}

TEST(Insertion, MergeCombinesOverlappingBarrierOnInsert) {
  // Four processors; an existing unordered barrier overlapping the new one
  // gets merged when merge_barriers is enabled (SBM mode).
  Program p(2);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  p.append(Tuple::load(2, 1));
  p.append(Tuple::binary(3, Opcode::kOr, T(2), C(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 4);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.append_instr(2, 2);
  sched.append_instr(3, 3);
  const SyncOutcome o1 =
      ensure_sync(sched, 0, 1, InsertionPolicy::kConservative, true);
  ASSERT_EQ(o1.kind, SyncOutcome::Kind::kBarrierInserted);
  EXPECT_EQ(o1.merges, 0u);
  const SyncOutcome o2 =
      ensure_sync(sched, 2, 3, InsertionPolicy::kConservative, true);
  ASSERT_EQ(o2.kind, SyncOutcome::Kind::kBarrierInserted);
  EXPECT_EQ(o2.merges, 1u);
  EXPECT_EQ(sched.inserted_barrier_count(), 1u);
  EXPECT_EQ(sched.barrier_mask(o2.barrier).count(), 4u);
}

}  // namespace
}  // namespace bm
