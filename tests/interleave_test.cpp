// Model-checking the serving core's lock-free protocols with the
// ix::Explorer, plus the mutation selftest the harness itself is judged
// by: every seeded race below (dropped fence, widened and narrowed
// critical sections, CAS/exchange downgraded to load+store, acquire
// downgraded to relaxed, publish/reset reorder) must be caught, and the
// corresponding correct protocol must verify clean over the *exhaustive*
// interleaving space (Result::ok() demands completeness, not absence of
// luck).
//
// Models re-state the production protocols in miniature:
//   - WindowedLatencyHistogram slot rotation (obs/latency.hpp): claim via
//     CAS to a sentinel, reset, release-publish; observers spin on the
//     sentinel.
//   - ScheduleCache hit-vs-evict (serve/cache.cpp): mutex-guarded payload
//     and validity bit.
//   - CancelToken skip-at-dequeue (support/thread_pool.cpp): release
//     store of the cancel flag, acquire check before touching the reason.
//   - Exactly-once response teardown (serve/core.cpp PendingReq):
//     exchange on an answered flag arbitrates worker vs teardown.
#include "support/interleave.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

namespace bm {
namespace {

namespace mo {
constexpr ix::MemOrder kRelaxed = ix::MemOrder::kRelaxed;
constexpr ix::MemOrder kAcquire = ix::MemOrder::kAcquire;
constexpr ix::MemOrder kRelease = ix::MemOrder::kRelease;
constexpr ix::MemOrder kAcqRel = ix::MemOrder::kAcqRel;
}  // namespace mo

ix::Result run(const std::function<void(ix::Env&)>& program,
               bool sleep_sets = true) {
  ix::Options opts;
  opts.sleep_sets = sleep_sets;
  return ix::explore(opts, program);
}

std::string describe(const ix::Result& r) {
  if (!r.violation) return "no violation";
  std::string out = std::string(violation_kind_name(r.violation->kind)) +
                    ": " + r.violation->message;
  for (const std::string& e : r.violation->trace) out += "\n  " + e;
  return out;
}

// -- basic semantics ---------------------------------------------------------

TEST(InterleaveTest, AtomicIncrementIsExact) {
  const ix::Result r = run([](ix::Env& env) {
    auto c = std::make_shared<ix::Cell<std::uint64_t>>("c", 0);
    for (int i = 0; i < 2; ++i)
      env.thread([c] { c->fetch_add(1, mo::kRelaxed); });
    env.invariant("count == 2", [c] { return c->peek() == 2; });
  });
  EXPECT_TRUE(r.ok()) << describe(r);
  EXPECT_GT(r.executions, 1);
}

TEST(InterleaveTest, LostUpdateIsFound) {
  // fetch_add downgraded to load+store: the classic lost update.
  const ix::Result r = run([](ix::Env& env) {
    auto c = std::make_shared<ix::Cell<std::uint64_t>>("c", 0);
    for (int i = 0; i < 2; ++i)
      env.thread([c] {
        const std::uint64_t v = c->load(mo::kRelaxed);
        c->store(v + 1, mo::kRelaxed);
      });
    env.invariant("count == 2", [c] { return c->peek() == 2; });
  });
  ASSERT_TRUE(r.violation.has_value()) << "lost update not found";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kInvariant);
}

TEST(InterleaveTest, RelaxedMessagePassingShowsStaleRead) {
  // Weak-memory sanity: even when the producer is scheduled to completion
  // first, a relaxed flag does not force the consumer to see the payload
  // cell's newest value — the load-value branching must surface the stale
  // read that real hardware is allowed to produce.
  const ix::Result r = run([](ix::Env& env) {
    auto x = std::make_shared<ix::Cell<std::uint64_t>>("x", 0);
    auto f = std::make_shared<ix::Cell<std::uint64_t>>("f", 0);
    env.thread([x, f] {
      x->store(1, mo::kRelaxed);
      f->store(1, mo::kRelaxed);
    });
    env.thread([x, f] {
      if (f->load(mo::kRelaxed) == 1)
        ix::check(x->load(mo::kRelaxed) == 1, "stale read of x after flag");
    });
  });
  ASSERT_TRUE(r.violation.has_value())
      << "relaxed message passing unexpectedly verified clean";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kCheck);
}

TEST(InterleaveTest, ReleaseAcquireMessagePassingIsClean) {
  const ix::Result r = run([](ix::Env& env) {
    auto x = std::make_shared<ix::Cell<std::uint64_t>>("x", 0);
    auto f = std::make_shared<ix::Cell<std::uint64_t>>("f", 0);
    env.thread([x, f] {
      x->store(1, mo::kRelaxed);
      f->store(1, mo::kRelease);
    });
    env.thread([x, f] {
      if (f->load(mo::kAcquire) == 1)
        ix::check(x->load(mo::kRelaxed) == 1, "stale read of x after flag");
    });
  });
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(InterleaveTest, AbbaDeadlockIsFound) {
  const ix::Result r = run([](ix::Env& env) {
    auto a = std::make_shared<ix::Mutex>("a");
    auto b = std::make_shared<ix::Mutex>("b");
    env.thread([a, b] {
      a->lock();
      b->lock();
      b->unlock();
      a->unlock();
    });
    env.thread([a, b] {
      b->lock();
      a->lock();
      a->unlock();
      b->unlock();
    });
  });
  ASSERT_TRUE(r.violation.has_value()) << "ABBA deadlock not found";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kDeadlock);
}

// -- fence semantics (seeded mutant: dropped release fence) ------------------

void fence_mp_model(ix::Env& env, bool drop_release_fence) {
  struct St {
    ix::Plain<std::uint64_t> data{"data", 0};
    ix::Cell<std::uint64_t> flag{"flag", 0};
  };
  auto st = std::make_shared<St>();
  env.thread([st, drop_release_fence] {
    st->data.write(1);
    if (!drop_release_fence) ix::fence(mo::kRelease);
    st->flag.store(1, mo::kRelaxed);
  });
  env.thread([st] {
    if (st->flag.load(mo::kRelaxed) == 1) {
      ix::fence(mo::kAcquire);
      ix::check(st->data.read() == 1, "fence MP: stale payload");
    }
  });
}

TEST(InterleaveTest, FencedMessagePassingIsClean) {
  const ix::Result r =
      run([](ix::Env& env) { fence_mp_model(env, false); });
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(InterleaveMutantTest, DroppedReleaseFenceIsCaught) {
  const ix::Result r =
      run([](ix::Env& env) { fence_mp_model(env, true); });
  ASSERT_TRUE(r.violation.has_value()) << "dropped fence escaped";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kDataRace);
}

// -- WindowedLatencyHistogram slot rotation ----------------------------------

// Mirrors obs/latency.hpp WindowedLatencyHistogram::observe: both threads
// carry an observation for the NEW epoch; the slot still holds the OLD
// epoch's tally (5). Every interleaving must end with exactly the two new
// observations in the slot.
struct WinSt {
  static constexpr std::uint64_t kOld = 1, kNew = 2, kClaiming = 99;
  ix::Cell<std::uint64_t> epoch{"slot.epoch", kOld};
  ix::Cell<std::uint64_t> count{"slot.count", 5};
};

enum class WinMutant { kNone, kPlainStoreClaim, kPublishBeforeReset };

void win_observe(const std::shared_ptr<WinSt>& st, WinMutant mutant) {
  std::uint64_t e = st->epoch.load(mo::kAcquire);
  while (e != WinSt::kNew) {
    if (e == WinSt::kClaiming) {
      st->epoch.await_eq(WinSt::kNew);  // models the bounded spin
      break;
    }
    if (mutant == WinMutant::kPlainStoreClaim) {
      // Seeded race: claim by check-then-store instead of CAS — two
      // observers can both win and the second reset wipes the first
      // observation.
      st->epoch.store(WinSt::kClaiming, mo::kRelaxed);
      st->count.store(0, mo::kRelaxed);
      st->epoch.store(WinSt::kNew, mo::kRelease);
      break;
    }
    if (st->epoch.compare_exchange(e, WinSt::kClaiming, mo::kAcquire)) {
      if (mutant == WinMutant::kPublishBeforeReset) {
        // Seeded race: epoch published while the slot still holds the old
        // tally — a concurrent observation lands and is then reset away.
        st->epoch.store(WinSt::kNew, mo::kRelease);
        st->count.store(0, mo::kRelaxed);
      } else {
        st->count.store(0, mo::kRelaxed);
        st->epoch.store(WinSt::kNew, mo::kRelease);
      }
      break;
    }
  }
  st->count.fetch_add(1, mo::kRelaxed);
}

void win_model(ix::Env& env, WinMutant mutant) {
  auto st = std::make_shared<WinSt>();
  for (int i = 0; i < 2; ++i)
    env.thread([st, mutant] { win_observe(st, mutant); });
  env.invariant("slot holds exactly the two new-epoch observations",
                [st] { return st->count.peek() == 2; });
  env.invariant("epoch published",
                [st] { return st->epoch.peek() == WinSt::kNew; });
}

TEST(InterleaveTest, WindowRotationIsLossFree) {
  const ix::Result r =
      run([](ix::Env& env) { win_model(env, WinMutant::kNone); });
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(InterleaveMutantTest, WindowPlainStoreClaimIsCaught) {
  const ix::Result r = run(
      [](ix::Env& env) { win_model(env, WinMutant::kPlainStoreClaim); });
  ASSERT_TRUE(r.violation.has_value()) << "plain-store claim escaped";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kInvariant);
}

TEST(InterleaveMutantTest, WindowPublishBeforeResetIsCaught) {
  const ix::Result r = run([](ix::Env& env) {
    win_model(env, WinMutant::kPublishBeforeReset);
  });
  ASSERT_TRUE(r.violation.has_value()) << "publish-before-reset escaped";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kInvariant);
}

// -- ScheduleCache hit vs evict ----------------------------------------------

// Mirrors serve/cache.cpp: an entry's payload may only be touched while
// the cache mutex proves it is still resident. The narrowed-critical-
// section mutant re-seeds the exact bug PR 8 fixed in ServeCore::handle
// (validity checked under the lock, payload read after release); the
// widened mutant drags a second lock into the section in the opposite
// order of the stats path.
struct CacheSt {
  ix::Mutex mu{"cache.mu"};
  ix::Mutex stats_mu{"cache.stats_mu"};
  ix::Plain<std::uint64_t> valid{"entry.valid", 1};
  ix::Plain<std::uint64_t> payload{"entry.payload", 42};
};

enum class CacheMutant { kNone, kNarrowedSection, kWidenedSection };

void cache_model(ix::Env& env, CacheMutant mutant) {
  auto st = std::make_shared<CacheSt>();
  env.thread([st, mutant] {  // lookup / hit path
    switch (mutant) {
      case CacheMutant::kNone: {
        st->mu.lock();
        const bool hit = st->valid.read() == 1;
        const std::uint64_t v = hit ? st->payload.read() : 42;
        st->mu.unlock();
        ix::check(v == 42, "hit observed evicted payload");
        break;
      }
      case CacheMutant::kNarrowedSection: {
        // Seeded race: residency checked under the lock, payload read
        // after releasing it.
        st->mu.lock();
        const bool hit = st->valid.read() == 1;
        st->mu.unlock();
        if (hit) ix::check(st->payload.read() == 42, "evicted payload");
        break;
      }
      case CacheMutant::kWidenedSection: {
        // Seeded deadlock: stats lock pulled inside the cache section,
        // opposite to the eviction path's order.
        st->mu.lock();
        st->stats_mu.lock();
        const bool hit = st->valid.read() == 1;
        const std::uint64_t v = hit ? st->payload.read() : 42;
        st->stats_mu.unlock();
        st->mu.unlock();
        ix::check(v == 42, "hit observed evicted payload");
        break;
      }
    }
  });
  env.thread([st, mutant] {  // eviction path
    if (mutant == CacheMutant::kWidenedSection) {
      st->stats_mu.lock();
      st->mu.lock();
      st->valid.write(0);
      st->payload.write(0);
      st->mu.unlock();
      st->stats_mu.unlock();
    } else {
      st->mu.lock();
      st->valid.write(0);
      st->payload.write(0);
      st->mu.unlock();
    }
  });
  env.invariant("entry evicted", [st] { return st->valid.peek() == 0; });
}

TEST(InterleaveTest, CacheHitVsEvictIsClean) {
  const ix::Result r =
      run([](ix::Env& env) { cache_model(env, CacheMutant::kNone); });
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(InterleaveMutantTest, CacheNarrowedCriticalSectionIsCaught) {
  const ix::Result r = run([](ix::Env& env) {
    cache_model(env, CacheMutant::kNarrowedSection);
  });
  ASSERT_TRUE(r.violation.has_value()) << "narrowed section escaped";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kDataRace);
}

TEST(InterleaveMutantTest, CacheWidenedCriticalSectionDeadlocks) {
  const ix::Result r = run([](ix::Env& env) {
    cache_model(env, CacheMutant::kWidenedSection);
  });
  ASSERT_TRUE(r.violation.has_value()) << "widened section escaped";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kDeadlock);
}

// -- CancelToken skip-at-dequeue ---------------------------------------------

// Mirrors support/thread_pool.cpp CancelToken: cancel() release-stores the
// flag after writing the reason; the dequeue path may only read the
// reason after an acquire load observes the flag.
void cancel_model(ix::Env& env, bool relaxed_check) {
  struct St {
    ix::Cell<std::uint64_t> cancelled{"cancelled", 0};
    ix::Plain<std::uint64_t> reason{"reason", 0};
  };
  auto st = std::make_shared<St>();
  env.thread([st] {  // canceller
    st->reason.write(4);
    st->cancelled.store(1, mo::kRelease);
  });
  env.thread([st, relaxed_check] {  // dequeue
    const auto order = relaxed_check ? mo::kRelaxed : mo::kAcquire;
    if (st->cancelled.load(order) == 1)
      ix::check(st->reason.read() == 4, "cancel reason not visible");
  });
}

TEST(InterleaveTest, CancelAtDequeueIsClean) {
  const ix::Result r =
      run([](ix::Env& env) { cancel_model(env, false); });
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(InterleaveMutantTest, CancelRelaxedCheckIsCaught) {
  // Seeded race: acquire downgraded to relaxed on the dequeue-side check.
  const ix::Result r =
      run([](ix::Env& env) { cancel_model(env, true); });
  ASSERT_TRUE(r.violation.has_value()) << "relaxed downgrade escaped";
  EXPECT_EQ(r.violation->kind, ix::Violation::Kind::kDataRace);
}

// -- exactly-once response teardown ------------------------------------------

// Mirrors serve/core.cpp PendingReq: worker completion and connection
// teardown race to answer; an atomic exchange arbitrates so exactly one
// side delivers (and writes the response slot).
void teardown_model(ix::Env& env, bool downgrade_exchange) {
  struct St {
    ix::Cell<std::uint64_t> answered{"answered", 0};
    ix::Cell<std::uint64_t> delivered{"delivered", 0};
    ix::Plain<std::uint64_t> resp{"resp", 0};
  };
  auto st = std::make_shared<St>();
  auto answer = [st, downgrade_exchange](std::uint64_t status) {
    if (downgrade_exchange) {
      // Seeded race: exchange split into load + store — both sides can
      // win the claim and double-answer.
      if (st->answered.load(mo::kAcquire) == 0) {
        st->answered.store(1, mo::kRelease);
        st->resp.write(status);
        st->delivered.fetch_add(1, mo::kRelaxed);
      }
    } else {
      if (st->answered.exchange(1, mo::kAcqRel) == 0) {
        st->resp.write(status);
        st->delivered.fetch_add(1, mo::kRelaxed);
      }
    }
  };
  env.thread([answer] { answer(7); });   // worker: status=ok
  env.thread([answer] { answer(9); });   // teardown: status=cancelled
  env.invariant("answered exactly once",
                [st] { return st->delivered.peek() == 1; });
}

TEST(InterleaveTest, TeardownAnswersExactlyOnce) {
  const ix::Result r =
      run([](ix::Env& env) { teardown_model(env, false); });
  EXPECT_TRUE(r.ok()) << describe(r);
}

TEST(InterleaveMutantTest, TeardownSplitExchangeIsCaught) {
  const ix::Result r =
      run([](ix::Env& env) { teardown_model(env, true); });
  ASSERT_TRUE(r.violation.has_value()) << "split exchange escaped";
  // Depending on which interleaving the DFS reaches first this surfaces
  // as the resp-slot data race or the double-delivery invariant; both are
  // the same seeded bug.
  EXPECT_TRUE(r.violation->kind == ix::Violation::Kind::kDataRace ||
              r.violation->kind == ix::Violation::Kind::kInvariant)
      << describe(r);
}

// -- native barrier sense reversal (exec/barrier.hpp CentralBarrier) ---------

// Miniature of CentralBarrier::arrive/wait: two participants, two
// consecutive phases, plain data handed across each crossing exactly the
// way the native runtime hands the lowered memory/value arrays across
// barriers — no ordering but the barrier itself. A protocol hole is a
// FastTrack race, a wrong sum, or a deadlocked phase.
struct BarSt {
  static constexpr std::uint64_t kN = 2;
  ix::Cell<std::uint64_t> remaining{"bar.remaining", kN};
  ix::Cell<std::uint64_t> sense{"bar.sense", 0};
  ix::Plain<std::uint64_t> cell0{"cell0", 0};
  ix::Plain<std::uint64_t> cell1{"cell1", 0};
  ix::Plain<std::uint64_t> sum0{"sum0", 0};  ///< thread 0's post-phase-0 read
  ix::Plain<std::uint64_t> sum1{"sum1", 0};
};

enum class BarMutant { kNone, kDroppedSense, kResetAfterRelease };

void bar_cross(const std::shared_ptr<BarSt>& st, BarMutant mutant) {
  const std::uint64_t target =
      mutant == BarMutant::kDroppedSense
          // Seeded bug: wait on a fixed flag value instead of the reversed
          // sense — phase 2's waiters see phase 1's stale release and sail
          // through before everyone arrived.
          ? 1
          : 1 - st->sense.load(mo::kRelaxed);
  const std::uint64_t left =
      st->remaining.fetch_add(~std::uint64_t{0}, mo::kAcqRel);  // -1
  if (left == 1) {  // phase winner: reset, then publish the new sense
    if (mutant == BarMutant::kResetAfterRelease) {
      // Seeded bug: sense published while the counter still reads 0 — a
      // fast re-arrival decrements the unreset counter.
      st->sense.store(target, mo::kRelease);
      st->remaining.store(BarSt::kN, mo::kRelaxed);
    } else {
      st->remaining.store(BarSt::kN, mo::kRelaxed);
      st->sense.store(target, mo::kRelease);
    }
  } else {
    st->sense.await_eq(target);  // models Barrier::wait's bounded spin
  }
}

void bar_model(ix::Env& env, BarMutant mutant) {
  auto st = std::make_shared<BarSt>();
  for (std::uint64_t i = 0; i < BarSt::kN; ++i) {
    env.thread([st, mutant, i] {
      ix::Plain<std::uint64_t>& mine = i == 0 ? st->cell0 : st->cell1;
      ix::Plain<std::uint64_t>& sum = i == 0 ? st->sum0 : st->sum1;
      mine.write(i + 1);             // phase-0 value
      bar_cross(st, mutant);         // crossing 1
      sum.write(st->cell0.read() + st->cell1.read());
      bar_cross(st, mutant);         // crossing 2 (read barrier)
      mine.write(10 * (i + 1));      // phase-1 value; races with the
    });                              // peer's reads if crossing 2 is broken
  }
  env.invariant("both threads summed the phase-0 cells", [st] {
    return st->sum0.peek() == 3 && st->sum1.peek() == 3;
  });
  env.invariant("phase-1 writes landed", [st] {
    return st->cell0.peek() == 10 && st->cell1.peek() == 20;
  });
  env.invariant("counter reset for the next phase",
                [st] { return st->remaining.peek() == BarSt::kN; });
}

TEST(InterleaveTest, SenseReversingBarrierIsClean) {
  const ix::Result r =
      run([](ix::Env& env) { bar_model(env, BarMutant::kNone); });
  EXPECT_TRUE(r.ok()) << describe(r);
  EXPECT_TRUE(r.complete) << "barrier model space must be fully explored";
}

TEST(InterleaveMutantTest, BarrierDroppedSenseIsCaught) {
  const ix::Result r =
      run([](ix::Env& env) { bar_model(env, BarMutant::kDroppedSense); });
  ASSERT_TRUE(r.violation.has_value()) << "dropped sense reversal escaped";
}

TEST(InterleaveMutantTest, BarrierResetAfterReleaseIsCaught) {
  const ix::Result r = run(
      [](ix::Env& env) { bar_model(env, BarMutant::kResetAfterRelease); });
  ASSERT_TRUE(r.violation.has_value()) << "reset/publish reorder escaped";
}

// -- reduction cross-check ---------------------------------------------------

TEST(InterleaveTest, SleepSetsPreserveVerdicts) {
  // Sleep sets must change only the execution count, never the verdict:
  // clean protocols stay clean, seeded bugs stay caught.
  const ix::Result clean_on =
      run([](ix::Env& env) { win_model(env, WinMutant::kNone); }, true);
  const ix::Result clean_off =
      run([](ix::Env& env) { win_model(env, WinMutant::kNone); }, false);
  EXPECT_TRUE(clean_on.ok()) << describe(clean_on);
  EXPECT_TRUE(clean_off.ok()) << describe(clean_off);
  EXPECT_LE(clean_on.executions, clean_off.executions);

  const ix::Result bug_on = run(
      [](ix::Env& env) { win_model(env, WinMutant::kPlainStoreClaim); },
      true);
  const ix::Result bug_off = run(
      [](ix::Env& env) { win_model(env, WinMutant::kPlainStoreClaim); },
      false);
  EXPECT_TRUE(bug_on.violation.has_value());
  EXPECT_TRUE(bug_off.violation.has_value());
}

TEST(InterleaveTest, ViolationCarriesTrace) {
  const ix::Result r = run([](ix::Env& env) {
    cache_model(env, CacheMutant::kNarrowedSection);
  });
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_FALSE(r.violation->trace.empty())
      << "violations must carry the failing execution's event log";
}

}  // namespace
}  // namespace bm
