// RNG stream stability: golden vectors pin the exact draw sequences of
// support/rng (xoshiro256** seeded via SplitMix64) and the harness's
// per-benchmark stream derivation. Every experiment artifact, the golden
// schedule corpus, and the committed figure CSVs depend on these sequences
// bit-for-bit — any change here silently invalidates all of them, so it must
// be a deliberate, corpus-regenerating event, not an accident.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "harness/experiment.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

std::vector<std::uint64_t> draw_next(Rng rng, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next();
  return out;
}

TEST(RngGoldenTest, RawStreams) {
  using V = std::vector<std::uint64_t>;
  EXPECT_EQ(draw_next(Rng(0), 8),
            (V{11091344671253066420ull, 13793997310169335082ull,
               1900383378846508768ull, 7684712102626143532ull,
               13521403990117723737ull, 18442103541295991498ull,
               7788427924976520344ull, 9881088229871127103ull}));
  EXPECT_EQ(draw_next(Rng(1), 8),
            (V{12966619160104079557ull, 9600361134598540522ull,
               10590380919521690900ull, 7218738570589545383ull,
               12860671823995680371ull, 2648436617965840162ull,
               1310552918490157286ull, 7031611932980406429ull}));
  EXPECT_EQ(draw_next(Rng(42), 8),
            (V{1546998764402558742ull, 6990951692964543102ull,
               12544586762248559009ull, 17057574109182124193ull,
               18295552978065317476ull, 14199186830065750584ull,
               13267978908934200754ull, 15679888225317814407ull}));
  // The default seed (golden ratio constant).
  EXPECT_EQ(draw_next(Rng(), 8),
            (V{4768932952251265552ull, 16168679545894742312ull,
               6487188721686299062ull, 86499648889209533ull,
               16455235402234500827ull, 4306002562074487087ull,
               6917561557383370982ull, 11578438031395272546ull}));
}

TEST(RngGoldenTest, SplitMix64Sequence) {
  std::uint64_t state = 12345;
  const std::array<std::uint64_t, 6> expected{
      2454886589211414944ull, 3778200017661327597ull, 2205171434679333405ull,
      3248800117070709450ull, 9350289611492784363ull, 6217189988962137646ull};
  for (std::uint64_t want : expected) EXPECT_EQ(split_mix64(state), want);
}

TEST(RngGoldenTest, UniformIntegers) {
  Rng rng(7);
  const std::array<std::int64_t, 16> expected{94, 74, 38, 64, 64, 21, 16, 96,
                                              8,  19, 3,  96, 97, 51, 30, 83};
  for (std::int64_t want : expected) EXPECT_EQ(rng.uniform(0, 99), want);
}

TEST(RngGoldenTest, Uniform01ExactDoubles) {
  Rng rng(3);
  // 53-bit mantissa draws; exact double equality is intentional.
  EXPECT_EQ(rng.uniform01(), 0.69063829511778796);
  EXPECT_EQ(rng.uniform01(), 0.6405810067354607);
  EXPECT_EQ(rng.uniform01(), 0.21826237328256315);
  EXPECT_EQ(rng.uniform01(), 0.53396162650045376);
}

TEST(RngGoldenTest, IndexChanceWeighted) {
  Rng idx(11);
  const std::array<std::size_t, 12> want_idx{5, 1, 9, 0, 0, 5, 7, 5, 5, 1, 9, 4};
  for (std::size_t want : want_idx) EXPECT_EQ(idx.index(10), want);

  Rng ch(13);
  const std::array<bool, 16> want_ch{true,  false, false, true, false, false,
                                     true,  false, false, false, false, false,
                                     false, true,  true,  false};
  for (bool want : want_ch) EXPECT_EQ(ch.chance(0.3), want);

  Rng wt(17);
  const std::array<double, 4> weights{1.0, 2.0, 3.0, 4.0};
  const std::array<std::size_t, 12> want_wt{3, 3, 3, 3, 3, 3, 3, 3, 2, 3, 0, 3};
  for (std::size_t want : want_wt) EXPECT_EQ(wt.weighted(weights), want);
}

TEST(RngGoldenTest, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  EXPECT_EQ(draw_next(parent, 4),
            (std::vector<std::uint64_t>{
                9531689329179025993ull, 14471912560152521095ull,
                9295126279674440255ull, 14917173486637513096ull}));
  EXPECT_EQ(draw_next(child, 4),
            (std::vector<std::uint64_t>{
                18340469436663551497ull, 6828430683535990998ull,
                14608069944617803966ull, 18440534448503883835ull}));
}

TEST(RngGoldenTest, BenchmarkStreamDerivation) {
  // The (base_seed, index) -> stream map run_point fans out over. Seed 1990
  // is the default base seed of every experiment.
  EXPECT_EQ(draw_next(benchmark_rng(1990, 0), 3),
            (std::vector<std::uint64_t>{11430255064959890396ull,
                                        187501975355642564ull,
                                        4659642176651710987ull}));
  EXPECT_EQ(draw_next(benchmark_rng(1990, 1), 3),
            (std::vector<std::uint64_t>{14705764915965891297ull,
                                        7611556354604426313ull,
                                        17150649722603642866ull}));
  EXPECT_EQ(draw_next(benchmark_rng(1990, 2), 3),
            (std::vector<std::uint64_t>{5404891414047624669ull,
                                        17280915383685305741ull,
                                        1945041184784591419ull}));
  EXPECT_EQ(draw_next(benchmark_rng(1990, 99), 3),
            (std::vector<std::uint64_t>{3272176808581893000ull,
                                        3214371906611051910ull,
                                        15674196516837734410ull}));
}

}  // namespace
}  // namespace bm
