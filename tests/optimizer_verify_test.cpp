// Regression net for the optimizer/scheduler pipeline: for 50 random
// blocks, schedule both the unoptimized and the optimized tuple program and
// require the static verifier to prove each schedule race-free. A rewrite
// that silently breaks a dependence (or a scheduler change that mishandles
// the optimizer's output shape) surfaces here as a verifier error with a
// concrete witness instead of as a flaky simulation failure.
#include <gtest/gtest.h>

#include <string>

#include "codegen/emitter.hpp"
#include "codegen/generator.hpp"
#include "graph/instr_dag.hpp"
#include "opt/passes.hpp"
#include "sched/scheduler.hpp"
#include "verify/verify.hpp"

namespace bm {
namespace {

void expect_verifies_clean(const Program& prog, std::uint64_t seed,
                           InsertionPolicy policy, MachineKind machine,
                           const char* label) {
  const InstrDag dag = InstrDag::build(prog, TimingModel::table1());
  SchedulerConfig sc;
  sc.num_procs = 4;
  sc.insertion = policy;
  sc.machine = machine;
  Rng rng(seed);
  const ScheduleResult sr = schedule_program(dag, sc, rng);
  const VerifyReport report = verify_schedule(dag, *sr.schedule);
  EXPECT_TRUE(report.clean()) << label << ": " << report.to_text();
  EXPECT_EQ(report.stats().races, 0u) << label;
  EXPECT_EQ(report.stats().cache_mismatches, 0u) << label;
}

TEST(OptimizerVerify, PreAndPostOptimizationSchedulesVerifyClean) {
  const GeneratorConfig gen;
  std::uint64_t seq = 0x0B71;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(split_mix64(seq));
    const StatementList stmts = StatementGenerator(gen).generate(rng);
    const Program pre = emit_tuples(stmts, gen.num_variables);
    Program post = pre;
    optimize(post);

    // Alternate policy and machine across seeds so all four pipeline
    // combinations stay covered without quadrupling the runtime.
    const InsertionPolicy policy = (seed % 2 == 0)
                                       ? InsertionPolicy::kOptimal
                                       : InsertionPolicy::kConservative;
    const MachineKind machine =
        ((seed / 2) % 2 == 0) ? MachineKind::kSBM : MachineKind::kDBM;
    expect_verifies_clean(pre, seed, policy, machine, "pre-optimization");
    expect_verifies_clean(post, seed, policy, machine, "post-optimization");
    EXPECT_LE(post.size(), pre.size());
  }
}

}  // namespace
}  // namespace bm
