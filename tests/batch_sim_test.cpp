// Bit-identity tests for the seed-batched lockstep simulator: every lane of
// a batched run must reproduce the serial simulator exactly — same traces,
// same completions, same rng consumption — across sampling modes, machine
// models, batch widths, and ragged tails.
#include <gtest/gtest.h>

#include <vector>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "sched/scheduler.hpp"
#include "sim/batch_sim.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

constexpr SamplingMode kAllModes[] = {SamplingMode::kUniform,
                                      SamplingMode::kBimodal,
                                      SamplingMode::kAllMin,
                                      SamplingMode::kAllMax};
constexpr MachineKind kBothMachines[] = {MachineKind::kSBM, MachineKind::kDBM};

/// A synthesized benchmark scheduled for `machine`: big enough to have many
/// barriers and cross-PE edges, deterministic for a fixed seed. Timing
/// variation keeps min < max so the four sampling modes genuinely diverge.
struct Bench {
  SynthesisResult syn;
  InstrDag dag;
  ScheduleResult result;

  explicit Bench(MachineKind machine, std::uint64_t seed = 42) {
    Rng rng(seed);
    const GeneratorConfig gen{
        .num_statements = 60, .num_variables = 10, .num_constants = 4};
    syn = synthesize_benchmark(gen, rng);
    dag = InstrDag::build(syn.program, TimingModel::table1_with_variation(0.5));
    SchedulerConfig cfg;
    cfg.machine = machine;
    result = schedule_program(dag, cfg, rng);
  }

  const Schedule& sched() const { return *result.schedule; }
};

/// Expects lane `w` of `bt` to equal the serial trace `t` element-for-element
/// (starts, finishes, fire times including kNotExecuted slots, completion).
void expect_lane_equals_serial(const BatchExecTrace& bt, std::size_t w,
                               const ExecTrace& t, const Schedule& sched) {
  const std::size_t n = sched.instr_dag().num_instructions();
  ASSERT_EQ(bt.start.size(), n * bt.width);
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_EQ(bt.start_row(i)[w], t.start[i]) << "start i=" << i << " w=" << w;
    EXPECT_EQ(bt.finish_row(i)[w], t.finish[i])
        << "finish i=" << i << " w=" << w;
  }
  for (BarrierId b = 0; b < sched.barrier_id_bound(); ++b)
    EXPECT_EQ(bt.fire_row(b)[w], t.barrier_fire[b])
        << "fire b=" << b << " w=" << w;
  EXPECT_EQ(bt.completion[w], t.completion) << "completion w=" << w;
}

TEST(BatchSim, LockstepLanesBitIdenticalToSerial) {
  for (MachineKind machine : kBothMachines) {
    const Bench bench(machine);
    for (SamplingMode mode : kAllModes) {
      const SimConfig config{machine, mode};
      constexpr std::size_t kW = 8;

      // W independent streams, lane w seeded like serial run w.
      std::vector<Rng> rngs;
      for (std::size_t w = 0; w < kW; ++w) rngs.emplace_back(100 + w);
      BatchExecTrace bt;
      batch_simulate_into(bench.sched(), config, rngs, bt);
      ASSERT_EQ(bt.width, kW);

      for (std::size_t w = 0; w < kW; ++w) {
        Rng serial_rng(100 + w);
        ExecTrace t;
        simulate_into(bench.sched(), config, serial_rng, t);
        expect_lane_equals_serial(bt, w, t, bench.sched());
        // Lockstep advancement must leave each stream exactly where its
        // serial counterpart ends.
        EXPECT_EQ(rngs[w].next(), serial_rng.next())
            << "rng state diverged, lane " << w;
      }
    }
  }
}

TEST(BatchSim, RunsIntoMatchesSequentialSerialDraws) {
  for (MachineKind machine : kBothMachines) {
    const Bench bench(machine);
    for (SamplingMode mode : kAllModes) {
      const SimConfig config{machine, mode};
      constexpr std::size_t kLanes = 5;  // deliberately not a SIMD width

      Rng batch_rng(7);
      BatchExecTrace bt;
      batch_simulate_runs_into(bench.sched(), config, kLanes, batch_rng, bt);
      ASSERT_EQ(bt.width, kLanes);

      // One serial stream: run w consumes the draws lane w must have seen.
      Rng serial_rng(7);
      for (std::size_t w = 0; w < kLanes; ++w) {
        ExecTrace t;
        simulate_into(bench.sched(), config, serial_rng, t);
        expect_lane_equals_serial(bt, w, t, bench.sched());
      }
      EXPECT_EQ(batch_rng.next(), serial_rng.next()) << "rng state diverged";
    }
  }
}

TEST(BatchSim, SummaryInvariantAcrossBatchWidthsAndRaggedTails) {
  for (MachineKind machine : kBothMachines) {
    const Bench bench(machine);
    // 13 runs: ragged against every width below (13 = 8+5 = 3*4+1 = ...).
    constexpr std::size_t kRuns = 13;
    Rng ref_rng(9);
    const CompletionSummary ref = summarize_completion(
        bench.sched(), machine, kRuns, ref_rng, /*batch_width=*/1);
    const std::uint64_t ref_next = ref_rng.next();
    for (std::size_t width : {3UL, 4UL, 8UL, 16UL}) {
      Rng rng(9);
      const CompletionSummary s =
          summarize_completion(bench.sched(), machine, kRuns, rng, width);
      EXPECT_EQ(s.min_draw, ref.min_draw) << "width " << width;
      EXPECT_EQ(s.max_draw, ref.max_draw) << "width " << width;
      // The mean folds lane completions in run order for every width, so
      // the doubles are bit-identical, not merely close.
      EXPECT_EQ(s.mean, ref.mean) << "width " << width;
      EXPECT_EQ(rng.next(), ref_next) << "rng state, width " << width;
    }
  }
}

TEST(BatchSim, SingleLaneBatchDegeneratesToSerial) {
  const Bench bench(MachineKind::kSBM);
  const SimConfig config{MachineKind::kSBM, SamplingMode::kUniform};
  std::vector<Rng> rngs;
  rngs.emplace_back(3);
  BatchExecTrace bt;
  batch_simulate_into(bench.sched(), config, rngs, bt);
  ASSERT_EQ(bt.width, 1u);
  Rng serial_rng(3);
  ExecTrace t;
  simulate_into(bench.sched(), config, serial_rng, t);
  expect_lane_equals_serial(bt, 0, t, bench.sched());
}

}  // namespace
}  // namespace bm
