#include <gtest/gtest.h>

#include "ir/opcode.hpp"
#include "ir/program.hpp"
#include "ir/timing.hpp"
#include "ir/tuple.hpp"
#include "support/assert.hpp"

namespace bm {
namespace {

// ------------------------------------------------------------- Opcode ------

TEST(Opcode, NamesMatchPaper) {
  EXPECT_EQ(opcode_name(Opcode::kLoad), "Load");
  EXPECT_EQ(opcode_name(Opcode::kMod), "Mod");
  EXPECT_EQ(all_opcodes().size(), kNumOpcodes);
}

TEST(Opcode, BinaryClassification) {
  EXPECT_FALSE(is_binary_op(Opcode::kLoad));
  EXPECT_FALSE(is_binary_op(Opcode::kStore));
  for (Opcode op : {Opcode::kAdd, Opcode::kSub, Opcode::kAnd, Opcode::kOr,
                    Opcode::kMul, Opcode::kDiv, Opcode::kMod})
    EXPECT_TRUE(is_binary_op(op));
}

TEST(Opcode, Table1FrequenciesSumTo100) {
  double total = 0;
  for (Opcode op : all_opcodes()) total += opcode_frequency_percent(op);
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(opcode_frequency_percent(Opcode::kAdd), 45.8);
  EXPECT_DOUBLE_EQ(opcode_frequency_percent(Opcode::kMod), 1.2);
}

TEST(Opcode, FoldBinary) {
  EXPECT_EQ(fold_binary(Opcode::kAdd, 3, 4), 7);
  EXPECT_EQ(fold_binary(Opcode::kSub, 3, 4), -1);
  EXPECT_EQ(fold_binary(Opcode::kAnd, 6, 3), 2);
  EXPECT_EQ(fold_binary(Opcode::kOr, 6, 3), 7);
  EXPECT_EQ(fold_binary(Opcode::kMul, 6, 3), 18);
  EXPECT_EQ(fold_binary(Opcode::kDiv, 7, 2), 3);
  EXPECT_EQ(fold_binary(Opcode::kMod, 7, 2), 1);
  EXPECT_EQ(fold_binary(Opcode::kDiv, 7, 0), 0);  // defined-to-zero
  EXPECT_EQ(fold_binary(Opcode::kMod, 7, 0), 0);
  EXPECT_THROW(fold_binary(Opcode::kLoad, 1, 2), Error);
}

TEST(Opcode, Commutativity) {
  EXPECT_TRUE(is_commutative(Opcode::kAdd));
  EXPECT_TRUE(is_commutative(Opcode::kMul));
  EXPECT_TRUE(is_commutative(Opcode::kAnd));
  EXPECT_TRUE(is_commutative(Opcode::kOr));
  EXPECT_FALSE(is_commutative(Opcode::kSub));
  EXPECT_FALSE(is_commutative(Opcode::kDiv));
  EXPECT_FALSE(is_commutative(Opcode::kMod));
}

// ----------------------------------------------------------- TimeRange -----

TEST(TimeRange, SequentialComposition) {
  const TimeRange a{1, 4}, b{16, 24};
  EXPECT_EQ(a + b, (TimeRange{17, 28}));
  TimeRange c = a;
  c += b;
  EXPECT_EQ(c, (TimeRange{17, 28}));
}

TEST(TimeRange, JoinMaxIsBarrierRule) {
  // Fig. 13: two processors between the same barriers with [4,4] and [5,7]
  // give the edge [5,7] — max of mins AND max of maxes.
  EXPECT_EQ((TimeRange{4, 4}).join_max({5, 7}), (TimeRange{5, 7}));
  EXPECT_EQ((TimeRange{1, 10}).join_max({5, 7}), (TimeRange{5, 10}));
}

TEST(TimeRange, Overlaps) {
  EXPECT_TRUE((TimeRange{1, 5}).overlaps({5, 9}));
  EXPECT_FALSE((TimeRange{1, 4}).overlaps({5, 9}));
  EXPECT_TRUE((TimeRange{0, 100}).overlaps({50, 60}));
}

TEST(TimeRange, ContainsAndWidth) {
  const TimeRange r{3, 7};
  EXPECT_TRUE(r.contains(3));
  EXPECT_TRUE(r.contains(7));
  EXPECT_FALSE(r.contains(8));
  EXPECT_EQ(r.width(), 4);
  EXPECT_FALSE(r.is_fixed());
  EXPECT_TRUE(TimeRange::fixed(5).is_fixed());
  EXPECT_EQ(r.to_string(), "[3,7]");
}

// ---------------------------------------------------------- TimingModel ----

TEST(TimingModel, Table1MatchesPaper) {
  const TimingModel tm = TimingModel::table1();
  EXPECT_EQ(tm.range(Opcode::kLoad), (TimeRange{1, 4}));
  EXPECT_EQ(tm.range(Opcode::kStore), (TimeRange{1, 1}));
  EXPECT_EQ(tm.range(Opcode::kAdd), (TimeRange{1, 1}));
  EXPECT_EQ(tm.range(Opcode::kSub), (TimeRange{1, 1}));
  EXPECT_EQ(tm.range(Opcode::kAnd), (TimeRange{1, 1}));
  EXPECT_EQ(tm.range(Opcode::kOr), (TimeRange{1, 1}));
  EXPECT_EQ(tm.range(Opcode::kMul), (TimeRange{16, 24}));
  EXPECT_EQ(tm.range(Opcode::kDiv), (TimeRange{24, 32}));
  EXPECT_EQ(tm.range(Opcode::kMod), (TimeRange{24, 32}));
  EXPECT_FALSE(tm.is_deterministic());
}

TEST(TimingModel, VariationScalesWidths) {
  const TimingModel tm = TimingModel::table1_with_variation(3.0);
  EXPECT_EQ(tm.range(Opcode::kLoad), (TimeRange{1, 10}));   // width 3 -> 9
  EXPECT_EQ(tm.range(Opcode::kMul), (TimeRange{16, 40}));   // width 8 -> 24
  EXPECT_EQ(tm.range(Opcode::kAdd), (TimeRange{1, 1}));     // fixed stays
  const TimingModel zero = TimingModel::table1_with_variation(0.0);
  EXPECT_TRUE(zero.is_deterministic());
  EXPECT_EQ(zero.range(Opcode::kLoad), (TimeRange{1, 1}));
}

TEST(TimingModel, AllMaxIsVliwAssumption) {
  const TimingModel tm = TimingModel::table1_all_max();
  EXPECT_TRUE(tm.is_deterministic());
  EXPECT_EQ(tm.range(Opcode::kLoad), (TimeRange{4, 4}));
  EXPECT_EQ(tm.range(Opcode::kDiv), (TimeRange{32, 32}));
}

TEST(TimingModel, RejectsInvalidRange) {
  TimingModel tm;
  EXPECT_THROW(tm.set(Opcode::kAdd, TimeRange{5, 2}), Error);
  EXPECT_THROW(tm.set(Opcode::kAdd, TimeRange{-1, 2}), Error);
  EXPECT_THROW(TimingModel::table1_with_variation(-1.0), Error);
}

// -------------------------------------------------------------- Tuple ------

TEST(Tuple, Factories) {
  const Tuple l = Tuple::load(5, 2);
  EXPECT_TRUE(l.is_load());
  EXPECT_EQ(l.var, 2u);
  EXPECT_EQ(l.operand_count(), 0);

  const Tuple s = Tuple::store(6, 1, Operand::tuple(0));
  EXPECT_TRUE(s.is_store());
  EXPECT_EQ(s.operand_count(), 1);
  EXPECT_EQ(s.operand(0).tuple_id(), 0u);

  const Tuple b =
      Tuple::binary(7, Opcode::kAdd, Operand::tuple(0), Operand::constant(3));
  EXPECT_TRUE(b.is_binary());
  EXPECT_EQ(b.operand_count(), 2);
  EXPECT_EQ(b.operand(1).const_value(), 3);
  EXPECT_THROW(Tuple::binary(8, Opcode::kLoad, {}, {}), Error);
}

TEST(Tuple, OperandKindChecks) {
  const Operand c = Operand::constant(9);
  EXPECT_THROW(c.tuple_id(), Error);
  const Operand t = Operand::tuple(3);
  EXPECT_THROW(t.const_value(), Error);
  const Tuple b = Tuple::binary(0, Opcode::kAdd, c, t);
  EXPECT_THROW(b.operand(2), Error);
}

TEST(Tuple, VarNames) {
  EXPECT_EQ(var_name(0), "a");
  EXPECT_EQ(var_name(25), "z");
  EXPECT_EQ(var_name(26), "v26");
}

TEST(Tuple, ToString) {
  EXPECT_EQ(tuple_to_string(Tuple::load(0, 3)), "Load d");
  EXPECT_EQ(tuple_to_string(Tuple::store(1, 6, Operand::tuple(38))),
            "Store g,38");
  EXPECT_EQ(tuple_to_string(Tuple::binary(2, Opcode::kAdd, Operand::tuple(12),
                                          Operand::tuple(30))),
            "Add 12,30");
  EXPECT_EQ(tuple_to_string(Tuple::binary(3, Opcode::kSub, Operand::tuple(4),
                                          Operand::constant(7))),
            "Sub 4,#7");
}

// ------------------------------------------------------------- Program -----

TEST(Program, AppendChecksReferences) {
  Program p(2);
  const TupleId a = p.append(Tuple::load(0, 0));
  EXPECT_EQ(a, 0u);
  // Forward reference rejected.
  EXPECT_THROW(
      p.append(Tuple::binary(1, Opcode::kAdd, Operand::tuple(5), Operand::tuple(0))),
      Error);
  // Out-of-range variable rejected.
  EXPECT_THROW(p.append(Tuple::load(2, 2)), Error);
}

TEST(Program, ValidateCatchesCorruption) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  std::vector<Tuple> bad = p.tuples();
  bad.push_back(Tuple::store(1, 0, Operand::tuple(7)));
  p.replace_all(std::move(bad));
  EXPECT_THROW(p.validate(), Error);
}

TEST(Program, SerialTimeSumsRanges) {
  Program p(1);
  p.append(Tuple::load(0, 0));                                      // [1,4]
  p.append(Tuple::binary(1, Opcode::kMul, Operand::tuple(0),
                         Operand::tuple(0)));                       // [16,24]
  p.append(Tuple::store(2, 0, Operand::tuple(1)));                  // [1,1]
  EXPECT_EQ(p.serial_time(TimingModel::table1()), (TimeRange{18, 29}));
}

TEST(Program, ListingShowsUidsWithGaps) {
  Program p(2);
  Tuple l = Tuple::load(0, 0);
  p.append(l);
  Tuple add = Tuple::binary(7, Opcode::kAdd, Operand::tuple(0),
                            Operand::constant(1));
  p.append(add);
  Tuple st = Tuple::store(9, 1, Operand::tuple(1));
  p.append(st);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("   7  Add 0,#1"), std::string::npos);
  // Store's operand is rendered by uid (7), not dense index (1).
  EXPECT_NE(s.find("   9  Store b,7"), std::string::npos);
}

}  // namespace
}  // namespace bm
