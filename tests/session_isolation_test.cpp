// Session isolation (serve/session.hpp): two SchedulerSessions configured
// with different machines/policies, with their requests interleaved — on
// one thread and on two concurrent threads — must produce results
// byte-identical to running the same requests through the direct pipeline
// functions in isolation. No hidden shared state (scratch arenas, rng,
// traces) may leak between sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"
#include "serve/session.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

using serve::BenchmarkRequest;
using serve::BenchmarkResult;
using serve::SchedulerSession;

BenchmarkRequest request_for(std::size_t index, MachineKind machine,
                             InsertionPolicy insertion) {
  BenchmarkRequest req;
  req.index = index;
  req.sched.machine = machine;
  req.sched.insertion = insertion;
  req.sched.num_procs = machine == MachineKind::kSBM ? 8 : 12;
  req.verify = true;
  req.sim_runs = 8;
  req.validate_draws = true;
  return req;
}

/// The oracle: the pipeline run through the free functions, fresh state,
/// nothing shared — the behavior a request would see in its own process.
std::string oracle_schedule(const BenchmarkRequest& req) {
  Rng rng = benchmark_rng(req.base_seed, req.index);
  const SynthesisResult synth = synthesize_benchmark(req.gen, rng);
  const InstrDag dag = InstrDag::build(synth.program, req.timing);
  const ScheduleResult scheduled = schedule_program(dag, req.sched, rng);
  return schedule_to_text(*scheduled.schedule);
}

std::string session_schedule(SchedulerSession& session,
                             const BenchmarkRequest& req) {
  Rng rng = benchmark_rng(req.base_seed, req.index);
  const SynthesisResult synth = session.synthesize(req.gen, rng);
  const InstrDag dag = session.build_dag(synth.program, req.timing);
  const ScheduleResult scheduled = session.schedule(dag, req.sched, rng);
  return schedule_to_text(*scheduled.schedule);
}

std::string outcome_key(const BenchmarkResult& r) {
  return std::to_string(r.program_size) + "|" +
         std::to_string(r.stats.barriers_final) + "|" +
         std::to_string(r.stats.implied_syncs) + "|" +
         std::to_string(r.stats.completion.min) + "," +
         std::to_string(r.stats.completion.max) + "|" +
         std::to_string(r.barrier_completion.min_draw) + "," +
         std::to_string(r.barrier_completion.max_draw) + "," +
         std::to_string(r.barrier_completion.mean) + "|" +
         std::to_string(r.violations) + "|" +
         std::to_string(r.verify_errors);
}

TEST(SessionIsolation, InterleavedSessionsMatchSerialOracle) {
  // Session A: SBM/conservative. Session B: DBM/optimal. Strictly
  // alternating requests on one thread.
  SchedulerSession a, b;
  for (std::size_t i = 0; i < 6; ++i) {
    const BenchmarkRequest ra =
        request_for(i, MachineKind::kSBM, InsertionPolicy::kConservative);
    const BenchmarkRequest rb =
        request_for(i, MachineKind::kDBM, InsertionPolicy::kOptimal);
    EXPECT_EQ(session_schedule(a, ra), oracle_schedule(ra)) << "A seed " << i;
    EXPECT_EQ(session_schedule(b, rb), oracle_schedule(rb)) << "B seed " << i;
  }
}

TEST(SessionIsolation, RunBenchmarkMatchesAcrossInterleaving) {
  // Full run_benchmark (verify + sim + draw validation): interleaved
  // sessions vs fresh one-request sessions.
  SchedulerSession a, b;
  for (std::size_t i = 0; i < 4; ++i) {
    const BenchmarkRequest ra =
        request_for(i, MachineKind::kSBM, InsertionPolicy::kOptimal);
    const BenchmarkRequest rb =
        request_for(i, MachineKind::kDBM, InsertionPolicy::kConservative);
    const BenchmarkResult out_a = a.run_benchmark(ra);
    const BenchmarkResult out_b = b.run_benchmark(rb);

    SchedulerSession fresh_a, fresh_b;
    EXPECT_EQ(outcome_key(out_a), outcome_key(fresh_a.run_benchmark(ra)))
        << "A seed " << i;
    EXPECT_EQ(outcome_key(out_b), outcome_key(fresh_b.run_benchmark(rb)))
        << "B seed " << i;
  }
}

TEST(SessionIsolation, ConcurrentSessionsMatchSerialOracle) {
  // The same interleaving, but genuinely concurrent: one thread per
  // session, each hammering its own session. Every result must equal the
  // serial oracle — sessions share no mutable state.
  constexpr std::size_t kSeeds = 8;
  std::vector<std::string> got_a(kSeeds), got_b(kSeeds);
  std::thread ta([&] {
    SchedulerSession s;
    for (std::size_t i = 0; i < kSeeds; ++i)
      got_a[i] = session_schedule(
          s, request_for(i, MachineKind::kSBM, InsertionPolicy::kOptimal));
  });
  std::thread tb([&] {
    SchedulerSession s;
    for (std::size_t i = 0; i < kSeeds; ++i)
      got_b[i] = session_schedule(
          s, request_for(i, MachineKind::kDBM, InsertionPolicy::kOptimal));
  });
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(got_a[i],
              oracle_schedule(request_for(i, MachineKind::kSBM,
                                          InsertionPolicy::kOptimal)))
        << "A seed " << i;
    EXPECT_EQ(got_b[i],
              oracle_schedule(request_for(i, MachineKind::kDBM,
                                          InsertionPolicy::kOptimal)))
        << "B seed " << i;
  }
}

TEST(SessionIsolation, ThreadSharedModeMatchesOwnedMode) {
  // Arena mode is a memory-placement choice, never a behavior choice.
  SchedulerSession owned(SchedulerSession::ArenaMode::kOwned);
  SchedulerSession shared(SchedulerSession::ArenaMode::kThreadShared);
  for (std::size_t i = 0; i < 4; ++i) {
    const BenchmarkRequest req =
        request_for(i, MachineKind::kSBM, InsertionPolicy::kConservative);
    EXPECT_EQ(outcome_key(owned.run_benchmark(req)),
              outcome_key(shared.run_benchmark(req)))
        << "seed " << i;
  }
}

TEST(SessionIsolation, ConcurrentUseOfOneSessionIsRejected) {
  SchedulerSession session;
  // Simulate a second caller arriving mid-request via the pre-verify hook:
  // simplest deterministic overlap is re-entering from the same thread.
  GeneratorConfig gen;
  Rng rng = benchmark_rng(1990, 0);
  const SynthesisResult synth = session.synthesize(gen, rng);
  // A nested call *during* another call must throw; sequential calls work.
  // (Exercised via a worker thread blocked at a gate inside run_benchmark
  // would need a hook; the cheap deterministic variant: two threads racing
  // many times — every loser must observe bm::Error, never corruption.)
  std::atomic<int> errors{0};
  std::atomic<int> oks{0};
  auto hammer = [&] {
    for (int k = 0; k < 25; ++k) {
      try {
        BenchmarkRequest req;
        req.index = static_cast<std::size_t>(k % 3);
        (void)session.run_benchmark(req);
        ++oks;
      } catch (const Error&) {
        ++errors;
      }
    }
  };
  std::thread t1(hammer), t2(hammer);
  t1.join();
  t2.join();
  EXPECT_EQ(oks.load() + errors.load(), 50);
  EXPECT_GT(oks.load(), 0);
  (void)synth;
}

}  // namespace
}  // namespace bm
