#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

TimingModel wide_timing() {
  TimingModel tm = TimingModel::table1();
  tm.set(Opcode::kLoad, {1, 50});
  tm.set(Opcode::kAdd, {2, 2});
  return tm;
}

TEST(Sampler, ModesRespectRange) {
  Rng rng(1);
  const TimeRange r{3, 9};
  EXPECT_EQ(sample_time(r, SamplingMode::kAllMin, rng), 3);
  EXPECT_EQ(sample_time(r, SamplingMode::kAllMax, rng), 9);
  for (int i = 0; i < 200; ++i) {
    const Time u = sample_time(r, SamplingMode::kUniform, rng);
    EXPECT_GE(u, 3);
    EXPECT_LE(u, 9);
    const Time b = sample_time(r, SamplingMode::kBimodal, rng);
    EXPECT_TRUE(b == 3 || b == 9);
  }
}

TEST(Simulator, RecordsInstructionTimes) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, T(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 1);
  sched.append_instr(0, 0);
  sched.append_instr(0, 1);
  Rng rng(2);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(t.start[0], 0);
  EXPECT_EQ(t.finish[0], 4);
  EXPECT_EQ(t.start[1], 4);
  EXPECT_EQ(t.finish[1], 5);
  EXPECT_EQ(t.completion, 5);
}

TEST(Simulator, BarrierFiresAtLastArrival) {
  Program p(2);
  p.append(Tuple::load(0, 0));                          // [1,50] wide
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1))); // [2,2]
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  const BarrierId b = sched.insert_barrier({{0, 1}, {1, 1}});
  Rng rng(3);
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    const ExecTrace t = simulate(sched, {mk, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(t.barrier_fire[b], 50);  // waits for the slow load
    EXPECT_EQ(t.barrier_fire[Schedule::kInitialBarrier], 0);
  }
}

TEST(Simulator, SimultaneousResumeAfterBarrier) {
  Program p(2);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(2, Opcode::kAdd, C(2), C(2)));
  p.append(Tuple::binary(3, Opcode::kAdd, C(3), C(3)));
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.insert_barrier({{0, 1}, {1, 1}});
  sched.append_instr(0, 2);
  sched.append_instr(1, 3);
  Rng rng(4);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(t.start[2], t.start[3]);  // both resume on the fire instant
}

TEST(Simulator, SbmQueueDelaysOutOfOrderBarrier) {
  // Barrier A {P0,P1} statically earlier (min fire 1) but slow at runtime;
  // barrier B {P2,P3} statically later (min fire 2) but fast. The SBM FIFO
  // holds B behind A; the DBM fires B immediately.
  Program p(4);
  p.append(Tuple::load(0, 0));                           // P0: [1,50]
  p.append(Tuple::load(1, 1));                           // P1: [1,50]
  p.append(Tuple::binary(2, Opcode::kAdd, C(1), C(1)));  // P2: [2,2]
  p.append(Tuple::binary(3, Opcode::kAdd, C(2), C(2)));  // P3: [2,2]
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 4);
  for (NodeId n = 0; n < 4; ++n)
    sched.append_instr(static_cast<ProcId>(n), n);
  const BarrierId a = sched.insert_barrier({{0, 1}, {1, 1}});
  const BarrierId b = sched.insert_barrier({{2, 1}, {3, 1}});
  Rng rng(5);
  const ExecTrace sbm =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(sbm.barrier_fire[a], 50);
  EXPECT_EQ(sbm.barrier_fire[b], 50);  // delayed behind the queue top
  const ExecTrace dbm =
      simulate(sched, {MachineKind::kDBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(dbm.barrier_fire[a], 50);
  EXPECT_EQ(dbm.barrier_fire[b], 2);   // associative match fires it at once
  EXPECT_LE(dbm.completion, sbm.completion);
}

TEST(Simulator, ViolationDetectionCatchesBadSchedule) {
  // Producer Load on P0, consumer immediately on P1 with no barrier: under
  // the all-max draw the consumer starts before the producer finishes.
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  Rng rng(6);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  const auto violations = find_violations(dag, t);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], (std::pair<NodeId, NodeId>{0, 1}));
}

TEST(Simulator, StaticCompletionRangeMatchesExtremeDraws) {
  Rng seeds(7);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    SchedulerConfig cfg;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const ExecTrace lo =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMin}, rng);
    const ExecTrace hi =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(lo.completion, r.stats.completion.min);
    EXPECT_EQ(hi.completion, r.stats.completion.max);
  }
}

TEST(Simulator, UniformDrawsStayInsideEnvelope) {
  Rng seeds(8);
  const GeneratorConfig gen{.num_statements = 25, .num_variables = 6,
                            .num_constants = 4, .const_max = 64};
  Rng rng(seeds.next());
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  for (int run = 0; run < 50; ++run) {
    const ExecTrace t =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
    EXPECT_GE(t.completion, r.stats.completion.min);
    EXPECT_LE(t.completion, r.stats.completion.max);
  }
}

TEST(Simulator, CompletionSummaryEnvelopesMean) {
  Rng rng(9);
  const GeneratorConfig gen{.num_statements = 25, .num_variables = 6,
                            .num_constants = 4, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  const CompletionSummary cs =
      summarize_completion(*r.schedule, cfg.machine, 20, rng);
  EXPECT_LE(cs.min_draw, cs.max_draw);
  EXPECT_GE(cs.mean, static_cast<double>(cs.min_draw));
  EXPECT_LE(cs.mean, static_cast<double>(cs.max_draw));
}

TEST(Simulator, BarrierLatencyDelaysRelease) {
  Program p(2);
  p.append(Tuple::load(0, 0));                          // [1,50] wide
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1))); // [2,2]
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 2, /*barrier_latency=*/5);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  const BarrierId b = sched.insert_barrier({{0, 1}, {1, 1}});
  // Static analysis accounts for the latency: the edge joins [1,50] and
  // [2,2] into [2,50], plus 5 cycles of release latency.
  EXPECT_EQ(sched.barrier_dag().fire_range(b), (TimeRange{7, 55}));
  // ...and so do both simulators.
  Rng rng(3);
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    const ExecTrace t = simulate(sched, {mk, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(t.barrier_fire[b], 55);
  }
}

TEST(Simulator, LatencyPreservesEnvelopeAndSoundness) {
  Rng seeds(21);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    SchedulerConfig cfg;
    cfg.barrier_latency = 3;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const ExecTrace lo =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMin}, rng);
    const ExecTrace hi =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(lo.completion, r.stats.completion.min);
    EXPECT_EQ(hi.completion, r.stats.completion.max);
    for (int run = 0; run < 10; ++run) {
      const ExecTrace t =
          simulate(*r.schedule, {cfg.machine, SamplingMode::kBimodal}, rng);
      EXPECT_TRUE(find_violations(dag, t).empty());
    }
  }
}

TEST(Simulator, SinglePeNeedsNoBarriers) {
  // One PE: program order alone satisfies every dependence, so the
  // scheduler must insert nothing and both machine models must replay the
  // stream back-to-back with no violations.
  Rng rng(11);
  const GeneratorConfig gen{.num_statements = 20, .num_variables = 6,
                            .num_constants = 4, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  cfg.num_procs = 1;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  EXPECT_EQ(r.schedule->inserted_barrier_count(), 0u);
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    const ExecTrace t =
        simulate(*r.schedule, {mk, SamplingMode::kAllMax}, rng);
    EXPECT_TRUE(find_violations(dag, t).empty());
    // Back-to-back: the stream's total work equals the completion time.
    Time sum = 0;
    for (const ScheduleEntry& e : r.schedule->stream(0))
      if (!e.is_barrier) sum += dag.time(e.id).max;
    EXPECT_EQ(t.completion, sum);
  }
}

TEST(Simulator, ZeroVarianceTableCollapsesEnvelope) {
  // Degenerate timing: every range is a point. All sampling modes must
  // produce the same trace, and the static envelope collapses to it.
  TimingModel tm = TimingModel::table1();
  tm.set(Opcode::kLoad, {4, 4});
  tm.set(Opcode::kAdd, {2, 2});
  Program p(2);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(2, Opcode::kAdd, T(0), T(1)));
  const InstrDag dag = InstrDag::build(p, tm);
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.insert_barrier({{0, 1}, {1, 1}});
  sched.append_instr(1, 2);
  Rng rng(12);
  const Time ref =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMin}, rng)
          .completion;
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    for (SamplingMode sm : {SamplingMode::kAllMin, SamplingMode::kAllMax,
                            SamplingMode::kUniform, SamplingMode::kBimodal}) {
      EXPECT_EQ(simulate(sched, {mk, sm}, rng).completion, ref);
    }
  }
  const CompletionSummary cs =
      summarize_completion(sched, MachineKind::kSBM, 8, rng);
  EXPECT_EQ(cs.min_draw, ref);
  EXPECT_EQ(cs.max_draw, ref);
  EXPECT_EQ(cs.mean, static_cast<double>(ref));
}

TEST(Simulator, FullMaskBarrierSynchronizesEveryProc) {
  // A barrier whose mask covers all PEs: fires at the slowest arrival and
  // every PE resumes on that instant.
  TimingModel tm = wide_timing();
  Program p(8);
  for (std::int64_t i = 0; i < 4; ++i)
    p.append(Tuple::binary(static_cast<TupleId>(i), Opcode::kAdd, C(i), C(1)));
  p.append(Tuple::load(4, 0));  // the slow straggler, [1,50]
  for (std::int64_t i = 5; i < 9; ++i)
    p.append(Tuple::binary(static_cast<TupleId>(i), Opcode::kAdd, C(i), C(1)));
  const InstrDag dag = InstrDag::build(p, tm);
  Schedule sched(dag, 4);
  for (ProcId pr = 0; pr < 3; ++pr) sched.append_instr(pr, pr);
  sched.append_instr(3, 4);  // straggler on P3
  const BarrierId b =
      sched.insert_barrier({{0, 1}, {1, 1}, {2, 1}, {3, 1}});
  for (ProcId pr = 0; pr < 4; ++pr)
    sched.append_instr(pr, static_cast<NodeId>(5 + pr));
  EXPECT_EQ(sched.barrier_mask(b).count(), 4u);
  Rng rng(13);
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    const ExecTrace t = simulate(sched, {mk, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(t.barrier_fire[b], 50);
    for (NodeId n = 5; n < 9; ++n) EXPECT_EQ(t.start[n], 50);
  }
}

TEST(Simulator, SingletonMaskBarrierFiresOnArrival) {
  // Degenerate mask of one PE: the barrier is a self-sync and must fire
  // the moment its only participant arrives, on both machines, without
  // stalling the other stream.
  Program p(2);
  p.append(Tuple::load(0, 0));                           // P0: [1,50]
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1)));  // P1: [2,2]
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  const BarrierId b = sched.insert_barrier({{1, 1}});
  EXPECT_EQ(sched.barrier_mask(b).count(), 1u);
  Rng rng(14);
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    const ExecTrace t = simulate(sched, {mk, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(t.barrier_fire[b], 2);   // P1's arrival, not P0's
    EXPECT_EQ(t.completion, 50);       // P0 never waits on it
  }
}

TEST(Simulator, SbmFifoTieBreaksByBarrierId) {
  // FIFO boundary: two unordered barriers with the SAME static min fire
  // time. The linear extension breaks the tie by id, so the lower-id
  // barrier loads first and the higher-id one is held behind it even when
  // its own participants arrive earlier. The DBM has no queue and fires
  // each on arrival.
  TimingModel tm = TimingModel::table1();
  tm.set(Opcode::kLoad, {1, 50});
  tm.set(Opcode::kOr, {1, 2});  // same min as the load -> fire-min tie
  Program p(4);
  p.append(Tuple::load(0, 0));                          // P0: [1,50]
  p.append(Tuple::load(1, 1));                          // P1: [1,50]
  p.append(Tuple::binary(2, Opcode::kOr, C(1), C(1)));  // P2: [1,2]
  p.append(Tuple::binary(3, Opcode::kOr, C(2), C(2)));  // P3: [1,2]
  const InstrDag dag = InstrDag::build(p, tm);
  Schedule sched(dag, 4);
  for (NodeId n = 0; n < 4; ++n)
    sched.append_instr(static_cast<ProcId>(n), n);
  const BarrierId a = sched.insert_barrier({{0, 1}, {1, 1}});
  const BarrierId b = sched.insert_barrier({{2, 1}, {3, 1}});
  ASSERT_LT(a, b);
  EXPECT_EQ(sched.barrier_dag().fire_range(a).min,
            sched.barrier_dag().fire_range(b).min);
  Rng rng(15);
  const ExecTrace sbm =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(sbm.barrier_fire[a], 50);
  EXPECT_EQ(sbm.barrier_fire[b], 50);  // held behind the tied queue head
  const ExecTrace dbm =
      simulate(sched, {MachineKind::kDBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(dbm.barrier_fire[b], 2);
}

TEST(Simulator, EmptyScheduleCompletesAtZero) {
  Program p(0);
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 4);
  Rng rng(10);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kUniform}, rng);
  EXPECT_EQ(t.completion, 0);
}

}  // namespace
}  // namespace bm
