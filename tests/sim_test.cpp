#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

TimingModel wide_timing() {
  TimingModel tm = TimingModel::table1();
  tm.set(Opcode::kLoad, {1, 50});
  tm.set(Opcode::kAdd, {2, 2});
  return tm;
}

TEST(Sampler, ModesRespectRange) {
  Rng rng(1);
  const TimeRange r{3, 9};
  EXPECT_EQ(sample_time(r, SamplingMode::kAllMin, rng), 3);
  EXPECT_EQ(sample_time(r, SamplingMode::kAllMax, rng), 9);
  for (int i = 0; i < 200; ++i) {
    const Time u = sample_time(r, SamplingMode::kUniform, rng);
    EXPECT_GE(u, 3);
    EXPECT_LE(u, 9);
    const Time b = sample_time(r, SamplingMode::kBimodal, rng);
    EXPECT_TRUE(b == 3 || b == 9);
  }
}

TEST(Simulator, RecordsInstructionTimes) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, T(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 1);
  sched.append_instr(0, 0);
  sched.append_instr(0, 1);
  Rng rng(2);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(t.start[0], 0);
  EXPECT_EQ(t.finish[0], 4);
  EXPECT_EQ(t.start[1], 4);
  EXPECT_EQ(t.finish[1], 5);
  EXPECT_EQ(t.completion, 5);
}

TEST(Simulator, BarrierFiresAtLastArrival) {
  Program p(2);
  p.append(Tuple::load(0, 0));                          // [1,50] wide
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1))); // [2,2]
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  const BarrierId b = sched.insert_barrier({{0, 1}, {1, 1}});
  Rng rng(3);
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    const ExecTrace t = simulate(sched, {mk, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(t.barrier_fire[b], 50);  // waits for the slow load
    EXPECT_EQ(t.barrier_fire[Schedule::kInitialBarrier], 0);
  }
}

TEST(Simulator, SimultaneousResumeAfterBarrier) {
  Program p(2);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(2, Opcode::kAdd, C(2), C(2)));
  p.append(Tuple::binary(3, Opcode::kAdd, C(3), C(3)));
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.insert_barrier({{0, 1}, {1, 1}});
  sched.append_instr(0, 2);
  sched.append_instr(1, 3);
  Rng rng(4);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(t.start[2], t.start[3]);  // both resume on the fire instant
}

TEST(Simulator, SbmQueueDelaysOutOfOrderBarrier) {
  // Barrier A {P0,P1} statically earlier (min fire 1) but slow at runtime;
  // barrier B {P2,P3} statically later (min fire 2) but fast. The SBM FIFO
  // holds B behind A; the DBM fires B immediately.
  Program p(4);
  p.append(Tuple::load(0, 0));                           // P0: [1,50]
  p.append(Tuple::load(1, 1));                           // P1: [1,50]
  p.append(Tuple::binary(2, Opcode::kAdd, C(1), C(1)));  // P2: [2,2]
  p.append(Tuple::binary(3, Opcode::kAdd, C(2), C(2)));  // P3: [2,2]
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 4);
  for (NodeId n = 0; n < 4; ++n)
    sched.append_instr(static_cast<ProcId>(n), n);
  const BarrierId a = sched.insert_barrier({{0, 1}, {1, 1}});
  const BarrierId b = sched.insert_barrier({{2, 1}, {3, 1}});
  Rng rng(5);
  const ExecTrace sbm =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(sbm.barrier_fire[a], 50);
  EXPECT_EQ(sbm.barrier_fire[b], 50);  // delayed behind the queue top
  const ExecTrace dbm =
      simulate(sched, {MachineKind::kDBM, SamplingMode::kAllMax}, rng);
  EXPECT_EQ(dbm.barrier_fire[a], 50);
  EXPECT_EQ(dbm.barrier_fire[b], 2);   // associative match fires it at once
  EXPECT_LE(dbm.completion, sbm.completion);
}

TEST(Simulator, ViolationDetectionCatchesBadSchedule) {
  // Producer Load on P0, consumer immediately on P1 with no barrier: under
  // the all-max draw the consumer starts before the producer finishes.
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  Rng rng(6);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  const auto violations = find_violations(dag, t);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], (std::pair<NodeId, NodeId>{0, 1}));
}

TEST(Simulator, StaticCompletionRangeMatchesExtremeDraws) {
  Rng seeds(7);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    SchedulerConfig cfg;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const ExecTrace lo =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMin}, rng);
    const ExecTrace hi =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(lo.completion, r.stats.completion.min);
    EXPECT_EQ(hi.completion, r.stats.completion.max);
  }
}

TEST(Simulator, UniformDrawsStayInsideEnvelope) {
  Rng seeds(8);
  const GeneratorConfig gen{.num_statements = 25, .num_variables = 6,
                            .num_constants = 4, .const_max = 64};
  Rng rng(seeds.next());
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  for (int run = 0; run < 50; ++run) {
    const ExecTrace t =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
    EXPECT_GE(t.completion, r.stats.completion.min);
    EXPECT_LE(t.completion, r.stats.completion.max);
  }
}

TEST(Simulator, CompletionSummaryEnvelopesMean) {
  Rng rng(9);
  const GeneratorConfig gen{.num_statements = 25, .num_variables = 6,
                            .num_constants = 4, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  const CompletionSummary cs =
      summarize_completion(*r.schedule, cfg.machine, 20, rng);
  EXPECT_LE(cs.min_draw, cs.max_draw);
  EXPECT_GE(cs.mean, static_cast<double>(cs.min_draw));
  EXPECT_LE(cs.mean, static_cast<double>(cs.max_draw));
}

TEST(Simulator, BarrierLatencyDelaysRelease) {
  Program p(2);
  p.append(Tuple::load(0, 0));                          // [1,50] wide
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1))); // [2,2]
  const InstrDag dag = InstrDag::build(p, wide_timing());
  Schedule sched(dag, 2, /*barrier_latency=*/5);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  const BarrierId b = sched.insert_barrier({{0, 1}, {1, 1}});
  // Static analysis accounts for the latency: the edge joins [1,50] and
  // [2,2] into [2,50], plus 5 cycles of release latency.
  EXPECT_EQ(sched.barrier_dag().fire_range(b), (TimeRange{7, 55}));
  // ...and so do both simulators.
  Rng rng(3);
  for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
    const ExecTrace t = simulate(sched, {mk, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(t.barrier_fire[b], 55);
  }
}

TEST(Simulator, LatencyPreservesEnvelopeAndSoundness) {
  Rng seeds(21);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    SchedulerConfig cfg;
    cfg.barrier_latency = 3;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const ExecTrace lo =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMin}, rng);
    const ExecTrace hi =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kAllMax}, rng);
    EXPECT_EQ(lo.completion, r.stats.completion.min);
    EXPECT_EQ(hi.completion, r.stats.completion.max);
    for (int run = 0; run < 10; ++run) {
      const ExecTrace t =
          simulate(*r.schedule, {cfg.machine, SamplingMode::kBimodal}, rng);
      EXPECT_TRUE(find_violations(dag, t).empty());
    }
  }
}

TEST(Simulator, EmptyScheduleCompletesAtZero) {
  Program p(0);
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 4);
  Rng rng(10);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kUniform}, rng);
  EXPECT_EQ(t.completion, 0);
}

}  // namespace
}  // namespace bm
