#include <algorithm>
#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "graph/dominators.hpp"
#include "graph/paths.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

/// Random DAG: edges only from lower to higher node ids.
Digraph random_dag(std::size_t n, double edge_prob, Rng& rng) {
  Digraph g(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b)
      if (rng.chance(edge_prob)) g.add_edge(a, b);
  return g;
}

/// Exhaustive longest distance from src via DFS (exponential; small graphs).
Time brute_longest_from(const Digraph& g, NodeId src, NodeId dst,
                        const EdgeWeightFn& w) {
  if (src == dst) return 0;
  Time best = kUnreachable;
  for (NodeId s : g.succs(src)) {
    const Time rest = brute_longest_from(g, s, dst, w);
    if (rest != kUnreachable) best = std::max(best, w(src, s) + rest);
  }
  return best;
}

/// All src→dst paths via DFS.
void brute_paths(const Digraph& g, NodeId at, NodeId dst, Path& cur,
                 std::vector<Path>& out) {
  cur.push_back(at);
  if (at == dst)
    out.push_back(cur);
  else
    for (NodeId s : g.succs(at)) brute_paths(g, s, dst, cur, out);
  cur.pop_back();
}

// ------------------------------------------------------------- Digraph -----

TEST(Digraph, AddNodesAndEdges) {
  Digraph g(2);
  EXPECT_EQ(g.size(), 2u);
  const NodeId n = g.add_node();
  EXPECT_EQ(n, 2u);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 0));
  EXPECT_EQ(g.succs(0).size(), 1u);
  EXPECT_EQ(g.preds(2).size(), 1u);
}

TEST(Digraph, CoalescesParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, RejectsSelfEdgeAndOutOfRange) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), Error);
  EXPECT_THROW(g.add_edge(0, 5), Error);
}

TEST(Digraph, TopoOrderRespectsEdges) {
  Rng rng(8);
  const Digraph g = random_dag(20, 0.2, rng);
  const std::vector<NodeId> order = topo_order(g);
  std::vector<std::size_t> pos(g.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId a = 0; a < g.size(); ++a)
    for (NodeId b : g.succs(a)) EXPECT_LT(pos[a], pos[b]);
}

TEST(Digraph, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(is_dag(g));
  g.add_edge(2, 0);
  EXPECT_FALSE(is_dag(g));
  EXPECT_THROW(topo_order(g), Error);
}

// ------------------------------------------------------- Longest paths -----

TEST(LongestPath, MatchesBruteForceOnRandomDags) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = random_dag(9, 0.35, rng);
    std::vector<std::vector<Time>> w(g.size(), std::vector<Time>(g.size(), 0));
    for (NodeId a = 0; a < g.size(); ++a)
      for (NodeId b : g.succs(a)) w[a][b] = rng.uniform(0, 9);
    const EdgeWeightFn wf = [&](NodeId a, NodeId b) { return w[a][b]; };
    const std::vector<Time> from0 = longest_from(g, 0, wf);
    const std::vector<Time> to_last =
        longest_to(g, static_cast<NodeId>(g.size() - 1), wf);
    for (NodeId n = 0; n < g.size(); ++n) {
      EXPECT_EQ(from0[n], brute_longest_from(g, 0, n, wf));
      EXPECT_EQ(to_last[n],
                brute_longest_from(g, n, static_cast<NodeId>(g.size() - 1), wf));
    }
  }
}

TEST(LongestPath, UnreachableIsSentinel) {
  Digraph g(3);
  g.add_edge(0, 1);
  const auto d = longest_from(g, 0, [](NodeId, NodeId) { return 1; });
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(LongestPath, PicksLongerOfTwoRoutes) {
  // 0→1→3 (1+1) vs 0→2→3 (5+5).
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const EdgeWeightFn w = [](NodeId a, NodeId) { return a == 0 ? 5 : 5; };
  const EdgeWeightFn w2 = [](NodeId, NodeId b) {
    return (b == 2 || b == 3) ? 5 : 1;
  };
  (void)w;
  const auto d = longest_from(g, 0, w2);
  EXPECT_EQ(d[3], 10);
}

// ------------------------------------------------------ PathEnumerator -----

TEST(PathEnumerator, EnumeratesAllPathsInDescendingOrder) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = random_dag(8, 0.4, rng);
    std::vector<std::vector<Time>> w(g.size(), std::vector<Time>(g.size(), 0));
    for (NodeId a = 0; a < g.size(); ++a)
      for (NodeId b : g.succs(a)) w[a][b] = rng.uniform(0, 9);
    const EdgeWeightFn wf = [&](NodeId a, NodeId b) { return w[a][b]; };

    const NodeId from = 0, to = static_cast<NodeId>(g.size() - 1);
    std::vector<Path> expected;
    Path scratch;
    brute_paths(g, from, to, scratch, expected);

    PathEnumerator en(g, from, to, wf);
    Path p;
    Time len = 0, prev = std::numeric_limits<Time>::max();
    std::set<Path> seen;
    std::size_t count = 0;
    while (en.next(p, len)) {
      ++count;
      EXPECT_LE(len, prev) << "paths must come in non-increasing length";
      prev = len;
      // Length reported matches the path's actual weight.
      Time actual = 0;
      for (std::size_t i = 0; i + 1 < p.size(); ++i) actual += wf(p[i], p[i + 1]);
      EXPECT_EQ(actual, len);
      EXPECT_TRUE(seen.insert(p).second) << "duplicate path";
    }
    EXPECT_EQ(count, expected.size());
  }
}

TEST(PathEnumerator, TrivialSelfPath) {
  Digraph g(2);
  g.add_edge(0, 1);
  PathEnumerator en(g, 0, 0, [](NodeId, NodeId) { return 1; });
  Path p;
  Time len;
  ASSERT_TRUE(en.next(p, len));
  EXPECT_EQ(p, Path{0});
  EXPECT_EQ(len, 0);
  EXPECT_FALSE(en.next(p, len));
}

TEST(PathEnumerator, NoPathYieldsNothing) {
  Digraph g(2);
  PathEnumerator en(g, 0, 1, [](NodeId, NodeId) { return 1; });
  Path p;
  Time len;
  EXPECT_FALSE(en.next(p, len));
}

// ---------------------------------------------------------- Dominators -----

/// Brute-force dominance: a dom b iff removing a disconnects b from root
/// (or a == b).
bool brute_dominates(const Digraph& g, NodeId root, NodeId a, NodeId b) {
  if (a == b) return true;
  if (b == root) return false;
  std::vector<bool> visited(g.size(), false);
  std::function<void(NodeId)> dfs = [&](NodeId n) {
    if (visited[n] || n == a) return;
    visited[n] = true;
    for (NodeId s : g.succs(n)) dfs(s);
  };
  dfs(root);
  return !visited[b];
}

TEST(Dominators, MatchesBruteForceOnRandomDags) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    Digraph g = random_dag(10, 0.3, rng);
    // Make everything reachable from 0.
    for (NodeId n = 1; n < g.size(); ++n)
      if (g.preds(n).empty()) g.add_edge(0, n);
    const DominatorTree dom(g, 0);
    for (NodeId a = 0; a < g.size(); ++a)
      for (NodeId b = 0; b < g.size(); ++b)
        EXPECT_EQ(dom.dominates(a, b), brute_dominates(g, 0, a, b))
            << "a=" << a << " b=" << b;
  }
}

TEST(Dominators, DiamondHasRootAsCommonDominator) {
  //   0 → 1 → 3,  0 → 2 → 3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const DominatorTree dom(g, 0);
  EXPECT_EQ(dom.idom(3), 0u);  // neither branch dominates the join
  EXPECT_EQ(dom.common_dominator(1, 2), 0u);
  EXPECT_EQ(dom.common_dominator(1, 3), 0u);
  EXPECT_EQ(dom.common_dominator(3, 3), 3u);
  EXPECT_EQ(dom.depth(0), 0u);
  EXPECT_EQ(dom.depth(3), 1u);
}

TEST(Dominators, ChainDominatesTransitively) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const DominatorTree dom(g, 0);
  EXPECT_TRUE(dom.dominates(1, 3));
  EXPECT_TRUE(dom.dominates(0, 3));
  EXPECT_FALSE(dom.dominates(3, 1));
  EXPECT_EQ(dom.common_dominator(2, 3), 2u);
  EXPECT_EQ(dom.depth(3), 3u);
}

TEST(Dominators, UnreachableNodesReported) {
  Digraph g(3);
  g.add_edge(0, 1);
  const DominatorTree dom(g, 0);
  EXPECT_TRUE(dom.reachable(1));
  EXPECT_FALSE(dom.reachable(2));
  EXPECT_THROW(dom.dominates(0, 2), Error);
  EXPECT_THROW(dom.depth(2), Error);
}

}  // namespace
}  // namespace bm
