// Lock-hierarchy checker: the accept path (increasing-level nesting,
// out-of-order release, cv waits keeping the held stack exact, edge
// recording) and the abort path (inversion, relock, foreign release) via
// death tests. All checking-specific assertions are compiled out together
// with the checker in Release builds.
#include "support/ordered_mutex.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>

namespace bm {
namespace {

TEST(OrderedMutexTest, IncreasingLevelsNest) {
  OrderedMutex low(LockLevel::kTestLow, "test.low");
  OrderedMutex mid(LockLevel::kTestMid, "test.mid");
  OrderedMutex high(LockLevel::kTestHigh, "test.high");

  OrderedLock l1(low);
  OrderedLock l2(mid);
  OrderedLock l3(high);
#if BM_LOCK_ORDER_CHECK
  EXPECT_EQ(lock_order_held_depth(), 3u);
#endif
  l3.unlock();
  l2.unlock();
  l1.unlock();
#if BM_LOCK_ORDER_CHECK
  EXPECT_EQ(lock_order_held_depth(), 0u);
#endif
}

TEST(OrderedMutexTest, OutOfOrderReleaseIsLegal) {
  OrderedMutex low(LockLevel::kTestLow, "test.low2");
  OrderedMutex high(LockLevel::kTestHigh, "test.high2");
  OrderedLock l1(low);
  OrderedLock l2(high);
  l1.unlock();  // release the bottom of the stack first
#if BM_LOCK_ORDER_CHECK
  EXPECT_EQ(lock_order_held_depth(), 1u);
#endif
  l2.unlock();
}

TEST(OrderedMutexTest, TryLockParticipates) {
  OrderedMutex low(LockLevel::kTestLow, "test.low3");
  ASSERT_TRUE(low.try_lock());
#if BM_LOCK_ORDER_CHECK
  EXPECT_EQ(lock_order_held_depth(), 1u);
#endif
  low.unlock();

  // Contended try_lock fails without touching the held stack.
  OrderedLock held(low);
  std::thread other([&] {
    EXPECT_FALSE(low.try_lock());
#if BM_LOCK_ORDER_CHECK
    EXPECT_EQ(lock_order_held_depth(), 0u);
#endif
  });
  other.join();
}

#if BM_LOCK_ORDER_CHECK
TEST(OrderedMutexTest, NestedAcquisitionRecordsEdge) {
  OrderedMutex low(LockLevel::kTestLow, "test.edge.low");
  OrderedMutex mid(LockLevel::kTestMid, "test.edge.mid");
  {
    OrderedLock l1(low);
    OrderedLock l2(mid);
  }
  bool found = false;
  for (std::size_t i = 0; i < lock_order_edge_count(); ++i) {
    const LockOrderEdge e = lock_order_edge(i);
    if (e.from_level == static_cast<std::uint16_t>(LockLevel::kTestLow) &&
        e.to_level == static_cast<std::uint16_t>(LockLevel::kTestMid))
      found = true;
  }
  EXPECT_TRUE(found);
}
#endif

TEST(OrderedMutexTest, ConditionVariableWaitKeepsStackExact) {
  OrderedMutex mu(LockLevel::kTestMid, "test.cv.mu");
  std::condition_variable_any cv;
  bool ready = false;

  std::thread waiter([&] {
    OrderedLock lock(mu);
    cv.wait(lock, [&] { return ready; });
#if BM_LOCK_ORDER_CHECK
    // Woken with the lock re-held: depth must be exactly one.
    EXPECT_EQ(lock_order_held_depth(), 1u);
#endif
  });

  {
    OrderedLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
#if BM_LOCK_ORDER_CHECK
  EXPECT_EQ(lock_order_held_depth(), 0u);
#endif
}

#if BM_LOCK_ORDER_CHECK

TEST(OrderedMutexDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        OrderedMutex low(LockLevel::kTestLow, "death.low");
        OrderedMutex high(LockLevel::kTestHigh, "death.high");
        OrderedLock l1(high);
        OrderedLock l2(low);  // holding 1020, acquiring 1000: inversion
      },
      "LOCK ORDER VIOLATION.*holding an equal-or-higher level");
}

TEST(OrderedMutexDeathTest, SameLevelAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        OrderedMutex a(LockLevel::kTestMid, "death.a");
        OrderedMutex b(LockLevel::kTestMid, "death.b");
        OrderedLock l1(a);
        OrderedLock l2(b);  // two mutexes of one level held together
      },
      "LOCK ORDER VIOLATION");
}

TEST(OrderedMutexDeathTest, RelockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        OrderedMutex mu(LockLevel::kTestLow, "death.relock");
        mu.lock();
        mu.lock();
      },
      "LOCK ORDER VIOLATION.*relocking a mutex already held");
}

TEST(OrderedMutexDeathTest, ForeignReleaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        OrderedMutex mu(LockLevel::kTestLow, "death.release");
        mu.unlock();
      },
      "LOCK ORDER VIOLATION.*releasing a mutex this thread does not hold");
}

TEST(OrderedMutexDeathTest, InversionWitnessNamesOppositeOrder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        OrderedMutex low(LockLevel::kTestLow, "witness.low");
        OrderedMutex high(LockLevel::kTestHigh, "witness.high");
        {
          OrderedLock l1(low);
          OrderedLock l2(high);  // records low -> high
        }
        OrderedLock l1(high);
        OrderedLock l2(low);  // inversion: witness must cite low -> high
      },
      "cycle witness: 'witness.low' -> 'witness.high'");
}

#endif  // BM_LOCK_ORDER_CHECK

}  // namespace
}  // namespace bm
