// CliFlags schema validation and parse edge cases: unknown flags must be
// rejected (a misspelled --sseeds silently running the default is a
// reproducibility footgun), and a negative value after a flag (--delta -3)
// must parse as that flag's value, not as a bare bool.
#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/cli.hpp"

namespace bm {
namespace {

const std::vector<FlagSpec> kSchema = {
    {"seeds", FlagType::kInt, "100", "benchmarks per point"},
    {"delta", FlagType::kInt, "0", "signed offset"},
    {"ratio", FlagType::kDouble, "0.5", "a fraction"},
    {"validate", FlagType::kBool, "false", "check draws"},
    {"jobs", FlagType::kString, "1", "worker count or auto"},
};

TEST(CliFlags, UnknownFlagRejected) {
  const CliFlags flags({"--sseeds", "10"});
  // Without validation the typo would silently fall back to the default.
  EXPECT_EQ(flags.get_int("seeds", 100), 100);
  try {
    flags.validate(kSchema);
    FAIL() << "expected bm::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sseeds"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--seeds"), std::string::npos)
        << "error should list the accepted flags: " << msg;
  }
}

TEST(CliFlags, KnownFlagsValidate) {
  const CliFlags flags(
      {"--seeds", "10", "--ratio=0.25", "--validate", "--jobs", "auto"});
  EXPECT_NO_THROW(flags.validate(kSchema));
  EXPECT_EQ(flags.get_int("seeds", 0), 10);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0), 0.25);
  EXPECT_TRUE(flags.get_bool("validate", false));
}

TEST(CliFlags, ExtraSchemaAccepted) {
  const CliFlags flags({"--all"});
  EXPECT_THROW(flags.validate(kSchema), Error);
  EXPECT_NO_THROW(
      flags.validate(kSchema, {{"all", FlagType::kBool, "false", ""}}));
}

TEST(CliFlags, NegativeValueIsAValueNotABareBool) {
  const CliFlags flags({"--delta", "-3", "--seeds", "7"});
  EXPECT_EQ(flags.get_int("delta", 0), -3);
  EXPECT_EQ(flags.get_int("seeds", 0), 7);
  EXPECT_NO_THROW(flags.validate(kSchema));

  const CliFlags eq({"--delta=-3"});
  EXPECT_EQ(eq.get_int("delta", 0), -3);

  const CliFlags neg_double({"--ratio", "-0.75"});
  EXPECT_DOUBLE_EQ(neg_double.get_double("ratio", 0), -0.75);
  EXPECT_NO_THROW(neg_double.validate(kSchema));
}

TEST(CliFlags, FlagFollowedByFlagIsBareBool) {
  const CliFlags flags({"--validate", "--seeds", "4"});
  EXPECT_TRUE(flags.get_bool("validate", false));
  EXPECT_EQ(flags.get_int("seeds", 0), 4);
}

TEST(CliFlags, NonNumericDashTokenIsNotConsumedAsValue) {
  // "-v" is flag-like, so --validate stays a bare bool and "-v" falls
  // through (single-dash tokens are not long flags).
  const CliFlags flags({"--validate", "-v"});
  EXPECT_TRUE(flags.get_bool("validate", false));
}

TEST(CliFlags, TypeMismatchesRejected) {
  EXPECT_THROW(CliFlags({"--seeds", "ten"}).validate(kSchema), Error);
  EXPECT_THROW(CliFlags({"--ratio", "fast"}).validate(kSchema), Error);
  EXPECT_THROW(CliFlags({"--validate", "maybe"}).validate(kSchema), Error);
  EXPECT_NO_THROW(CliFlags({"--validate", "yes"}).validate(kSchema));
}

TEST(CliFlags, PositionalsPreserved) {
  const CliFlags flags({"run", "fig15", "--seeds", "2"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "fig15");
  EXPECT_NO_THROW(flags.validate(kSchema));
}

}  // namespace
}  // namespace bm
