#include <gtest/gtest.h>

#include "barrier/barrier_dag.hpp"

namespace bm {
namespace {

BarrierChainInput chain(std::vector<BarrierId> barriers,
                        std::vector<TimeRange> segments) {
  return BarrierChainInput{std::move(barriers), std::move(segments)};
}

TEST(BarrierDag, Fig13EdgeAggregation) {
  // Two processors both run from barrier 0 to barrier 1; code [4,4] on one
  // and [5,7] on the other. Edge min is 5 (max of the mins — nobody passes
  // until all arrive), edge max is 7.
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1}, {{4, 4}}),
      chain({0, 1}, {{5, 7}}),
  };
  const BarrierDag dag(2, 0, chains);
  EXPECT_EQ(dag.edge_range(0, 1), (TimeRange{5, 7}));
  EXPECT_EQ(dag.fire_range(1), (TimeRange{5, 7}));
}

TEST(BarrierDag, FireRangesAccumulateAlongChains) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 2}, {{1, 4}, {2, 3}}),
  };
  const BarrierDag dag(3, 0, chains);
  EXPECT_EQ(dag.fire_range(0), (TimeRange{0, 0}));
  EXPECT_EQ(dag.fire_range(1), (TimeRange{1, 4}));
  EXPECT_EQ(dag.fire_range(2), (TimeRange{3, 7}));
}

TEST(BarrierDag, FireRangeTakesLongestIncomingPath) {
  // Diamond: 0→1→3 and 0→2→3 with different weights.
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 3}, {{1, 1}, {1, 1}}),
      chain({0, 2, 3}, {{5, 6}, {2, 2}}),
  };
  const BarrierDag dag(4, 0, chains);
  EXPECT_EQ(dag.fire_range(3), (TimeRange{7, 8}));
}

TEST(BarrierDag, PathExistsAndOrdered) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 3}, {{1, 1}, {1, 1}}),
      chain({0, 2}, {{1, 1}}),
  };
  const BarrierDag dag(4, 0, chains);
  EXPECT_TRUE(dag.path_exists(0, 3));
  EXPECT_TRUE(dag.path_exists(1, 3));
  EXPECT_TRUE(dag.path_exists(1, 1));  // reflexive
  EXPECT_FALSE(dag.path_exists(3, 1));
  EXPECT_FALSE(dag.path_exists(1, 2));
  EXPECT_TRUE(dag.ordered(0, 3));
  EXPECT_FALSE(dag.ordered(1, 2));
}

TEST(BarrierDag, CommonDominatorOfDiamond) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 3}, {{1, 1}, {1, 1}}),
      chain({0, 2, 3}, {{1, 1}, {1, 1}}),
  };
  const BarrierDag dag(4, 0, chains);
  EXPECT_EQ(dag.common_dominator(1, 2), 0u);
  EXPECT_EQ(dag.common_dominator(1, 3), 0u);
  EXPECT_EQ(dag.common_dominator(3, 3), 3u);
  EXPECT_EQ(dag.common_dominator(0, 3), 0u);
}

TEST(BarrierDag, PsiQueries) {
  // 0→1 [2,10]; 1→2 [3,5]; 0→2 direct [4,20].
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 2}, {{2, 10}, {3, 5}}),
      chain({0, 2}, {{4, 20}}),
  };
  const BarrierDag dag(3, 0, chains);
  EXPECT_EQ(dag.psi_max(0, 2), 20);      // direct edge wins on max
  EXPECT_EQ(dag.psi_min(0, 2), 5);       // 2+3 via barrier 1 wins on min
  EXPECT_EQ(dag.psi_max(0, 0), 0);
  EXPECT_EQ(dag.psi_min(2, 1), kUnreachable);
}

TEST(BarrierDag, PsiMinStarForcesOverlapEdgesToMax) {
  // ψ*_min from 0 to 2 with edge (0,1) forced to max: 10+3 = 13 beats the
  // direct [4,20] edge's min of 4.
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 2}, {{2, 10}, {3, 5}}),
      chain({0, 2}, {{4, 20}}),
  };
  const BarrierDag dag(3, 0, chains);
  const std::vector<std::pair<BarrierId, BarrierId>> forced = {{0, 1}};
  EXPECT_EQ(dag.psi_min_star(0, 2, forced), 13);
  EXPECT_EQ(dag.psi_min_star(0, 2, {}), 5);  // no forcing = ψ_min
}

TEST(BarrierDag, MaxPathsEnumeratesDescending) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 3}, {{1, 2}, {1, 3}}),
      chain({0, 2, 3}, {{1, 9}, {1, 1}}),
      chain({0, 3}, {{1, 1}}),
  };
  const BarrierDag dag(4, 0, chains);
  auto paths = dag.max_paths(0, 3);
  std::vector<BarrierId> p;
  Time len = 0;
  ASSERT_TRUE(paths.next(p, len));
  EXPECT_EQ(p, (std::vector<BarrierId>{0, 2, 3}));
  EXPECT_EQ(len, 10);
  ASSERT_TRUE(paths.next(p, len));
  EXPECT_EQ(p, (std::vector<BarrierId>{0, 1, 3}));
  EXPECT_EQ(len, 5);
  ASSERT_TRUE(paths.next(p, len));
  EXPECT_EQ(p, (std::vector<BarrierId>{0, 3}));
  EXPECT_EQ(len, 1);
  EXPECT_FALSE(paths.next(p, len));
}

TEST(BarrierDag, LinearExtensionIsTopological) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 2, 1}, {{1, 1}, {1, 1}}),  // note: id order != topo order
      chain({0, 3}, {{5, 5}}),
  };
  const BarrierDag dag(4, 0, chains);
  const std::vector<BarrierId> ext = dag.linear_extension();
  ASSERT_EQ(ext.size(), 4u);
  EXPECT_EQ(ext.front(), 0u);
  std::map<BarrierId, std::size_t> pos;
  for (std::size_t i = 0; i < ext.size(); ++i) pos[ext[i]] = i;
  EXPECT_LT(pos[2], pos[1]);  // chain order respected
  // Earliest-min-fire first: barrier 2 (fires [1,1]) before 3 ([5,5]).
  EXPECT_LT(pos[2], pos[3]);
}

TEST(BarrierDag, Fig9And10BarrierEmbedding) {
  // The §3.1 worked example: five processors, barrier 0 across all of them,
  // then b1 {P0,P1}, b2 {P2,P3,P4}, b3 {P1,P2}, b4 {P0,P1,P2} with the
  // orderings the text derives: b2 <_b b3 (via P2), b3 <_b b4 (via P1/P2),
  // hence b2 <_b b4 by transitivity; b1 and b2 are unordered.
  const TimeRange t{1, 2};
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 4}, {t, t}),        // P0: b0, b1, b4
      chain({0, 1, 3, 4}, {t, t, t}),  // P1: b0, b1, b3, b4
      chain({0, 2, 3, 4}, {t, t, t}),  // P2: b0, b2, b3, b4
      chain({0, 2}, {t}),              // P3: b0, b2
      chain({0, 2}, {t}),              // P4: b0, b2
  };
  const BarrierDag dag(5, 0, chains);
  EXPECT_TRUE(dag.path_exists(2, 3));  // b2 <_b b3
  EXPECT_TRUE(dag.path_exists(3, 4));  // b3 <_b b4
  EXPECT_TRUE(dag.path_exists(2, 4));  // transitivity
  EXPECT_FALSE(dag.ordered(1, 2));     // concurrent barriers
  // b0 is the initial barrier: it dominates everything.
  for (BarrierId b = 1; b < 5; ++b)
    EXPECT_EQ(dag.common_dominator(0, b), 0u);
  EXPECT_EQ(dag.common_dominator(1, 2), 0u);
  // Irreflexivity of <_b is modeled by path_exists being reflexive but the
  // ordering edges being acyclic: no proper cycle exists.
  EXPECT_FALSE(dag.path_exists(4, 2));
  EXPECT_FALSE(dag.path_exists(3, 2));
}

TEST(BarrierDag, LatencyShiftsAllTimingQueries) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 2}, {{2, 10}, {3, 5}}),
      chain({0, 2}, {{4, 20}}),
  };
  const BarrierDag plain(3, 0, chains);
  const BarrierDag lat(3, 0, chains, /*barrier_latency=*/5);
  EXPECT_EQ(lat.barrier_latency(), 5);
  EXPECT_EQ(lat.fire_range(1).min, plain.fire_range(1).min + 5);
  EXPECT_EQ(lat.fire_range(2).max, 10 + 5 + 5 + 5);  // via b1, two hops
  EXPECT_EQ(lat.psi_max(0, 2), plain.psi_max(0, 2) + 5);  // direct edge
  EXPECT_EQ(lat.psi_min(0, 2), 2 + 5 + 3 + 5);  // two-hop min path
}

TEST(BarrierDag, UnknownBarrierRejected) {
  const std::vector<BarrierChainInput> chains = {chain({0, 1}, {{1, 1}})};
  const BarrierDag dag(3, 0, chains);
  EXPECT_FALSE(dag.known(2));
  EXPECT_TRUE(dag.known(1));
  EXPECT_THROW(dag.fire_range(2), Error);
  EXPECT_THROW(dag.path_exists(0, 2), Error);
}

TEST(BarrierDag, ChainMustStartAtInitial) {
  const std::vector<BarrierChainInput> chains = {chain({1, 0}, {{1, 1}})};
  EXPECT_THROW(BarrierDag(2, 0, chains), Error);
}

TEST(BarrierDag, CyclicOrderingRejected) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 2}, {{1, 1}, {1, 1}}),
      chain({0, 2, 1}, {{1, 1}, {1, 1}}),
  };
  EXPECT_THROW(BarrierDag(3, 0, chains), Error);
}

TEST(BarrierDag, SegmentCountMismatchRejected) {
  const std::vector<BarrierChainInput> chains = {chain({0, 1}, {})};
  EXPECT_THROW(BarrierDag(2, 0, chains), Error);
}

TEST(BarrierDag, EdgeQueriesValidateExistence) {
  const std::vector<BarrierChainInput> chains = {
      chain({0, 1, 2}, {{1, 1}, {1, 1}})};
  const BarrierDag dag(3, 0, chains);
  EXPECT_TRUE(dag.has_edge(0, 1));
  EXPECT_FALSE(dag.has_edge(0, 2));
  EXPECT_THROW(dag.edge_range(0, 2), Error);
}

}  // namespace
}  // namespace bm
