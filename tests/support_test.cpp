#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/bitset.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace bm {
namespace {

// ---------------------------------------------------------------- Rng ------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(2, 1), Error);
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::array<int, 4> seen{};
  for (int i = 0; i < 1000; ++i) ++seen[static_cast<std::size_t>(rng.uniform(0, 3))];
  for (int count : seen) EXPECT_GT(count, 150);  // ~250 expected each
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(17);
  const std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += (rng.weighted(w) == 1);
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedSkipsZeroWeight) {
  Rng rng(17);
  const std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted(w), 1u);
}

TEST(Rng, WeightedRejectsBadInput) {
  Rng rng(17);
  const std::vector<double> empty;
  EXPECT_THROW(rng.weighted(empty), Error);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted(zero), Error);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.weighted(negative), Error);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, IndexRequiresNonEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), Error);
  EXPECT_EQ(rng.index(1), 0u);
}

// ------------------------------------------------------------ DynBitset ----

TEST(DynBitset, SetTestReset) {
  DynBitset b(130);
  EXPECT_FALSE(b.test(129));
  b.set(129);
  EXPECT_TRUE(b.test(129));
  b.reset(129);
  EXPECT_FALSE(b.test(129));
}

TEST(DynBitset, CountAndAny) {
  DynBitset b(70);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(69);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.any());
}

TEST(DynBitset, SetAllMasksTailBits) {
  DynBitset b(70, true);
  EXPECT_EQ(b.count(), 70u);
}

TEST(DynBitset, SubsetAndIntersect) {
  DynBitset a(10), b(10);
  a.set(2);
  b.set(2);
  b.set(5);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  a.clear();
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.is_subset_of(b));  // empty set
}

TEST(DynBitset, SetAlgebra) {
  DynBitset a(8), b(8);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  DynBitset u = a | b;
  EXPECT_EQ(u.to_indices(), (std::vector<std::size_t>{1, 2, 3}));
  DynBitset i = a & b;
  EXPECT_EQ(i.to_indices(), (std::vector<std::size_t>{2}));
  a -= b;
  EXPECT_EQ(a.to_indices(), (std::vector<std::size_t>{1}));
}

TEST(DynBitset, DomainMismatchThrows) {
  DynBitset a(8), b(9);
  EXPECT_THROW(a.is_subset_of(b), Error);
  EXPECT_THROW(a |= b, Error);
}

TEST(DynBitset, OutOfRangeThrows) {
  DynBitset a(8);
  EXPECT_THROW(a.test(8), Error);
  EXPECT_THROW(a.set(8), Error);
}

TEST(DynBitset, ForEachAscending) {
  DynBitset b(128);
  b.set(3);
  b.set(64);
  b.set(127);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 64, 127}));
  EXPECT_EQ(b.to_string(), "{3,64,127}");
}

TEST(DynBitset, Equality) {
  DynBitset a(8), b(8);
  a.set(3);
  EXPECT_FALSE(a == b);
  b.set(3);
  EXPECT_TRUE(a == b);
}

// ------------------------------------------------------------- Stats -------

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 70; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
}

TEST(Correlation, PerfectAndDegenerate) {
  EXPECT_DOUBLE_EQ(correlation({1, 2, 3}, {2, 4, 6}), 1.0);
  EXPECT_DOUBLE_EQ(correlation({1, 2, 3}, {6, 4, 2}), -1.0);
  EXPECT_DOUBLE_EQ(correlation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(correlation({1.0}, {2.0}), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(25.0);  // clamps to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

// ------------------------------------------------------------- Table -------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
}

TEST(TextTable, RowWidthChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
}

TEST(CsvWriter, QuotesSpecialFields) {
  const std::string path = ::testing::TempDir() + "bm_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, QuotesEmbeddedLineBreaks) {
  // RFC 4180: LF *and* bare CR inside a field must be quoted, or the field
  // splits into two records in downstream readers.
  const std::string path = ::testing::TempDir() + "bm_csv_crlf_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"plain", "line\nfeed", "carriage\rreturn", "both\r\nends"});
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(),
            "plain,\"line\nfeed\",\"carriage\rreturn\",\"both\r\nends\"\n");
  std::remove(path.c_str());
}

// --------------------------------------------------------------- CLI -------

TEST(CliFlags, ParsesAllForms) {
  const char* argv[] = {"prog", "--a=1", "--b", "2", "pos", "--flag"};
  CliFlags f(6, argv);
  EXPECT_EQ(f.get_int("a", 0), 1);
  EXPECT_EQ(f.get_int("b", 0), 2);
  EXPECT_TRUE(f.get_bool("flag", false));
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"pos"}));
}

TEST(CliFlags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliFlags f(1, argv);
  EXPECT_EQ(f.get("missing", "d"), "d");
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(f.has("missing"));
}

TEST(CliFlags, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc", "--x=1.2.3", "--b=maybe"};
  CliFlags f(4, argv);
  EXPECT_THROW(f.get_int("n", 0), Error);
  EXPECT_THROW(f.get_double("x", 0), Error);
  EXPECT_THROW(f.get_bool("b", false), Error);
}

}  // namespace
}  // namespace bm
