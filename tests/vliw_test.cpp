#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "vliw/vliw.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

TEST(Vliw, ChainRunsSerially) {
  // Load [max 4] + 3 dependent Adds + Store = 4+1+1+1+1 = 8.
  Program p(1);
  TupleId cur = p.append(Tuple::load(0, 0));
  for (int i = 0; i < 3; ++i)
    cur = p.append(Tuple::binary(static_cast<std::uint32_t>(i + 1),
                                 Opcode::kAdd, T(cur), C(1)));
  p.append(Tuple::store(9, 0, T(cur)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  const VliwSchedule v = schedule_vliw(dag, 4);
  EXPECT_EQ(v.makespan, 8);
  EXPECT_EQ(v.procs_used, 1u);
}

TEST(Vliw, IndependentWorkRunsInParallel) {
  Program p(4);
  for (std::uint32_t i = 0; i < 4; ++i) p.append(Tuple::load(i, i));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  EXPECT_EQ(schedule_vliw(dag, 4).makespan, 4);   // all at once (max time)
  EXPECT_EQ(schedule_vliw(dag, 1).makespan, 16);  // fully serial
  EXPECT_EQ(schedule_vliw(dag, 2).makespan, 8);
}

TEST(Vliw, RespectsDependences) {
  Rng rng(21);
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 10; ++trial) {
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const VliwSchedule v = schedule_vliw(dag, 8);
    for (const auto& [g, i] : dag.sync_edges())
      EXPECT_GE(v.slots[i].start, v.slots[g].finish);
    // Slots on one unit never overlap.
    for (NodeId a = 0; a < v.slots.size(); ++a) {
      for (NodeId b = a + 1; b < v.slots.size(); ++b) {
        if (v.slots[a].proc != v.slots[b].proc) continue;
        EXPECT_TRUE(v.slots[a].finish <= v.slots[b].start ||
                    v.slots[b].finish <= v.slots[a].start);
      }
    }
  }
}

TEST(Vliw, MakespanBoundedByCriticalPathAndSerialTime) {
  Rng rng(33);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 10; ++trial) {
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const VliwSchedule v = schedule_vliw(dag, 8);
    EXPECT_GE(v.makespan, dag.critical_path().max);
    EXPECT_LE(v.makespan, s.program.serial_time(TimingModel::table1()).max);
  }
}

TEST(Vliw, MoreUnitsNeverHurt) {
  Rng rng(44);
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 5; ++trial) {
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    Time prev = std::numeric_limits<Time>::max();
    for (std::size_t procs : {1u, 2u, 4u, 8u, 16u}) {
      const Time m = schedule_vliw(dag, procs).makespan;
      EXPECT_LE(m, prev);
      prev = m;
    }
  }
}

TEST(Vliw, DeterministicAcrossCalls) {
  Rng rng(50);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  EXPECT_EQ(schedule_vliw(dag, 8).makespan, schedule_vliw(dag, 8).makespan);
}

}  // namespace
}  // namespace bm
