// Unit and stress tests for the native barrier primitives
// (exec/barrier.hpp): phase reuse across many rounds, ragged arrival
// orders, oversubscribed hammering, the split arrive/poll interface the
// cooperative runtime depends on, and the TreeBarrier shape. The whole
// file is in the check.sh --tsan leg: the sense-reversing release/acquire
// chains are exactly what TSan certifies here — every cross-thread access
// below is ordered only by the barrier under test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "exec/barrier.hpp"
#include "support/assert.hpp"

namespace bm::exec {
namespace {

bool slow_enabled() { return std::getenv("BM_EXEC_SLOW") != nullptr; }

class BarrierKindTest : public ::testing::TestWithParam<BarrierKind> {};

// Phase reuse with plain (non-atomic) data handed across the barrier:
// every thread writes its cell, syncs, reads everyone's cells, syncs
// again before overwriting. Only the barrier orders these accesses — a
// broken sense reversal shows up as a wrong sum (or a TSan race).
TEST_P(BarrierKindTest, ReuseAcrossManyPhasesHandsOffValues) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPhases = 200;
  const std::unique_ptr<Barrier> bar = make_barrier(GetParam(), kThreads, 32);

  std::vector<std::uint64_t> cells(kThreads, 0);
  std::atomic<std::uint64_t> bad_sums{0};
  std::vector<std::thread> threads;
  for (std::uint32_t slot = 0; slot < kThreads; ++slot) {
    threads.emplace_back([&, slot] {
      for (std::uint64_t phase = 0; phase < kPhases; ++phase) {
        cells[slot] = phase * kThreads + slot;
        bar->arrive_and_wait(slot);
        std::uint64_t sum = 0;
        for (std::uint32_t i = 0; i < kThreads; ++i) sum += cells[i];
        const std::uint64_t want =
            phase * kThreads * kThreads + kThreads * (kThreads - 1) / 2;
        if (sum != want) bad_sums.fetch_add(1, std::memory_order_relaxed);
        bar->arrive_and_wait(slot);  // read barrier before the next write
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad_sums.load(), 0u);
}

// Ragged arrivals: each thread delays a pseudo-random, slot-dependent
// amount before arriving, so arrival order differs phase to phase. The
// relaxed counter is readable between the two barriers of a phase only
// because the barrier carries happens-before from all increments.
TEST_P(BarrierKindTest, RaggedArrivalOrdersStayExact) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint64_t kPhases = 60;
  const std::unique_ptr<Barrier> bar = make_barrier(GetParam(), kThreads, 16);

  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bad_reads{0};
  std::vector<std::thread> threads;
  for (std::uint32_t slot = 0; slot < kThreads; ++slot) {
    threads.emplace_back([&, slot] {
      std::uint64_t lcg = 0x9E3779B97F4A7C15ull ^ slot;
      for (std::uint64_t phase = 0; phase < kPhases; ++phase) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        if ((lcg >> 33) % 3 == 0)
          std::this_thread::sleep_for(
              std::chrono::microseconds((lcg >> 40) % 200));
        // mo: the barrier below publishes this increment to every reader.
        count.fetch_add(1, std::memory_order_relaxed);
        bar->arrive_and_wait(slot);
        // mo: happens-after all kThreads increments via the barrier.
        if (count.load(std::memory_order_relaxed) != kThreads * (phase + 1))
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        bar->arrive_and_wait(slot);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_EQ(count.load(), kThreads * kPhases);
}

// The split interface must let ONE thread drive every slot: arrive() all
// participants without blocking, then observe the phase released. The
// cooperative runtime's no-deadlock argument under oversubscription rests
// on exactly this.
TEST_P(BarrierKindTest, SplitInterfaceMultiplexesFromOneThread) {
  constexpr std::uint32_t kSlots = 5;
  const std::unique_ptr<Barrier> bar = make_barrier(GetParam(), kSlots, 8);
  for (int phase = 0; phase < 3; ++phase) {
    std::vector<Barrier::Ticket> tickets;
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      if (s > 0) {  // phase not released while arrivals are outstanding
        EXPECT_FALSE(bar->poll(tickets[0])) << "phase " << phase;
      }
      tickets.push_back(bar->arrive(s));
    }
    for (const Barrier::Ticket t : tickets)
      EXPECT_TRUE(bar->poll(t)) << "phase " << phase;
  }
}

// Oversubscribed hammering: many more waiters than this box has cores,
// spin_iters=0 so every wait goes straight to the yield path. Tier-1 runs
// a moderate shape; the 64-way version is in the slow label.
void hammer(BarrierKind kind, std::uint32_t nthreads, std::uint64_t phases) {
  const std::unique_ptr<Barrier> bar = make_barrier(kind, nthreads, 0);
  std::atomic<std::uint64_t> count{0};
  std::vector<std::thread> threads;
  for (std::uint32_t slot = 0; slot < nthreads; ++slot) {
    threads.emplace_back([&, slot] {
      WaitStats stats;
      for (std::uint64_t phase = 0; phase < phases; ++phase) {
        // mo: published by the barrier, checked after the join.
        count.fetch_add(1, std::memory_order_relaxed);
        const Barrier::Ticket t = bar->arrive(slot);
        bar->wait(t, &stats);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(count.load(), std::uint64_t{nthreads} * phases);
}

TEST_P(BarrierKindTest, HammerEightWay) { hammer(GetParam(), 8, 50); }

TEST_P(BarrierKindTest, HammerSixtyFourWaySlow) {
  if (!slow_enabled())
    GTEST_SKIP() << "set BM_EXEC_SLOW=1 (or run check.sh --exec-smoke)";
  hammer(GetParam(), 64, 100);
}

// wait() accounts its spinning: with one participant held back, the
// waiter must record spin iterations (and yields once the bound runs out).
TEST_P(BarrierKindTest, WaitStatsAccumulate) {
  const std::unique_ptr<Barrier> bar = make_barrier(GetParam(), 2, 4);
  WaitStats stats;
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    bar->arrive(1);
  });
  bar->arrive_and_wait(0, &stats);
  late.join();
  EXPECT_GT(stats.spins + stats.yields, 0u);
}

// The fire sink observes the release instant: set, it is written exactly
// at phase release with a plausible steady-clock reading.
TEST_P(BarrierKindTest, FireSinkRecordsReleaseInstant) {
  const std::unique_ptr<Barrier> bar = make_barrier(GetParam(), 3, 16);
  std::atomic<std::uint64_t> fire{0};
  bar->set_fire_ns_sink(&fire);
  const std::uint64_t before = steady_now_ns();
  std::vector<std::thread> threads;
  for (std::uint32_t slot = 0; slot < 3; ++slot)
    threads.emplace_back([&, slot] { bar->arrive_and_wait(slot); });
  for (std::thread& t : threads) t.join();
  const std::uint64_t after = steady_now_ns();
  // mo: threads joined; post-mortem read.
  const std::uint64_t f = fire.load(std::memory_order_relaxed);
  EXPECT_GE(f, before);
  EXPECT_LE(f, after);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BarrierKindTest,
                         ::testing::ValuesIn(kAllBarrierKinds),
                         [](const ::testing::TestParamInfo<BarrierKind>& i) {
                           return std::string(barrier_kind_name(i.param));
                         });

// -- shape and naming --------------------------------------------------------

TEST(TreeBarrierTest, NodeCountMatchesArityFourTree) {
  const auto nodes = [](std::uint32_t n) {
    TreeBarrier b(n, 0);
    return b.node_count();
  };
  EXPECT_EQ(nodes(1), 1u);
  EXPECT_EQ(nodes(4), 1u);
  EXPECT_EQ(nodes(5), 3u);   // 2 leaves + root
  EXPECT_EQ(nodes(16), 5u);  // 4 leaves + root
  EXPECT_EQ(nodes(17), 8u);  // 5 leaves + 2 mid + root
  EXPECT_EQ(nodes(64), 21u);
}

TEST(BarrierNamesTest, RoundTripAndReject) {
  for (const BarrierKind k : kAllBarrierKinds)
    EXPECT_EQ(barrier_kind_from_name(barrier_kind_name(k)), k);
  EXPECT_THROW(barrier_kind_from_name("bogus"), Error);
}

}  // namespace
}  // namespace bm::exec
