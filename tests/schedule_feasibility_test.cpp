// Differential test for Schedule::order_feasible: the reachability fast
// path (merge / virtual-barrier probes on an acyclic schedule) must agree
// with order_feasible_ref, the full-graph Kahn oracle, on every probe. The
// corpus is real scheduler output — the only states the fast path's
// acyclicity precondition holds for — probed exhaustively over merge pairs
// and randomly over splice locations, including after remove_barrier
// (which exercises the barrier-position index rebuild).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "sched/scheduler.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

struct Bench {
  explicit Bench(MachineKind machine, std::uint64_t seed) {
    Rng rng(seed);
    GeneratorConfig gen{
        .num_statements = 60, .num_variables = 10, .num_constants = 4};
    syn = synthesize_benchmark(gen, rng);
    dag = InstrDag::build(syn.program, TimingModel::table1_with_variation(0.5));
    SchedulerConfig cfg{.num_procs = 8, .machine = machine};
    result = schedule_program(dag, cfg, rng);
  }
  SynthesisResult syn;
  InstrDag dag;
  ScheduleResult result;
  Schedule& sched() { return *result.schedule; }
};

/// Probes every alive merge pair and `splices` random two-sided virtual
/// barriers, comparing fast path vs oracle; tallies both verdicts so the
/// caller can assert the corpus was not vacuous.
void probe_all(const Schedule& s, Rng& rng, int splices, int& feasible,
               int& infeasible) {
  const auto bound = static_cast<BarrierId>(s.barrier_id_bound());
  for (BarrierId a = 1; a < bound; ++a) {
    if (!s.barrier_alive(a)) continue;
    for (BarrierId b = a + 1; b < bound; ++b) {
      if (!s.barrier_alive(b)) continue;
      if (s.barrier_mask(a).intersects(s.barrier_mask(b))) continue;
      const bool fast = s.order_feasible({}, a, b);
      ASSERT_EQ(fast, s.order_feasible_ref({}, a, b))
          << "merge probe (" << a << ", " << b << ") diverged";
      (fast ? feasible : infeasible) += 1;
    }
  }
  const auto procs = static_cast<ProcId>(s.num_procs());
  for (int t = 0; t < splices; ++t) {
    const auto p0 = static_cast<ProcId>(rng.next() % procs);
    auto p1 = static_cast<ProcId>(rng.next() % procs);
    if (p1 == p0) p1 = (p1 + 1) % procs;
    const std::vector<Schedule::Loc> locs{
        {p0, static_cast<std::uint32_t>(rng.next() %
                                        (s.stream(p0).size() + 1))},
        {p1, static_cast<std::uint32_t>(rng.next() %
                                        (s.stream(p1).size() + 1))}};
    const bool fast = s.order_feasible(locs);
    ASSERT_EQ(fast, s.order_feasible_ref(locs))
        << "splice probe (" << locs[0].proc << "@" << locs[0].pos << ", "
        << locs[1].proc << "@" << locs[1].pos << ") diverged";
    (fast ? feasible : infeasible) += 1;
  }
}

TEST(ScheduleFeasibility, FastPathMatchesKahnOracleOnSchedulerOutput) {
  int feasible = 0, infeasible = 0;
  Rng probe_rng(2026);
  for (const MachineKind machine : {MachineKind::kSBM, MachineKind::kDBM}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      Bench bench(machine, seed);
      probe_all(bench.sched(), probe_rng, 200, feasible, infeasible);
    }
  }
  // The corpus must exercise both verdicts, or the equivalence is vacuous.
  EXPECT_GT(feasible, 0);
  EXPECT_GT(infeasible, 0);
}

TEST(ScheduleFeasibility, FastPathMatchesOracleAfterBarrierRemoval) {
  int feasible = 0, infeasible = 0;
  Rng probe_rng(1990);
  Bench bench(MachineKind::kSBM, 7);
  Schedule& s = bench.sched();
  // Drop the first removable barrier: remove_barrier rebuilds the
  // barrier-position index the fast path walks, and deleting constraints
  // can only keep the graph acyclic, so the precondition still holds.
  for (BarrierId b = 1; b < s.barrier_id_bound(); ++b) {
    if (!s.barrier_alive(b)) continue;
    s.remove_barrier(b);
    break;
  }
  probe_all(s, probe_rng, 200, feasible, infeasible);
  EXPECT_GT(feasible + infeasible, 0);
}

}  // namespace
}  // namespace bm
