// Consistency of the memoized BarrierDag ψ-query caches: warm (cached)
// answers must equal both cold answers and an independent reference
// longest-path computed from the dag's public edge accessors — including
// across randomized barrier insert/merge sequences on a live Schedule,
// which is exactly when the cache is invalidated and rebuilt.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "barrier/barrier_dag.hpp"
#include "sched/schedule.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

/// Reference ψ: longest u→v path recomputed from scratch with a DP over
/// linear_extension() (a topological order) and the public edge accessors.
/// Deliberately shares no code with BarrierDag::psi_from.
Time ref_psi(const BarrierDag& bd, BarrierId u, BarrierId v, bool use_max) {
  const std::vector<BarrierId> order = bd.linear_extension();
  std::map<BarrierId, Time> dist;
  for (BarrierId b : order) dist[b] = (b == u ? 0 : kUnreachable);
  for (BarrierId a : order) {
    if (dist[a] == kUnreachable) continue;
    for (BarrierId b : order) {
      if (a == b || !bd.has_edge(a, b)) continue;
      const TimeRange r = bd.edge_range(a, b);
      const Time w = (use_max ? r.max : r.min) + bd.barrier_latency();
      dist[b] = std::max(dist[b], dist[a] + w);
    }
  }
  return dist[v];
}

void check_all_pairs(const BarrierDag& bd) {
  const std::vector<BarrierId>& ids = bd.barrier_ids();
  for (BarrierId u : ids) {
    for (BarrierId v : ids) {
      const Time cold_max = bd.psi_max(u, v);
      const Time cold_min = bd.psi_min(u, v);
      EXPECT_EQ(cold_max, ref_psi(bd, u, v, true)) << u << "->" << v;
      EXPECT_EQ(cold_min, ref_psi(bd, u, v, false)) << u << "->" << v;
      // Second round hits the memo; must not drift.
      EXPECT_EQ(bd.psi_max(u, v), cold_max);
      EXPECT_EQ(bd.psi_min(u, v), cold_min);
      // ψ*_min with no forced edges is plain ψ_min through the same cache.
      EXPECT_EQ(bd.psi_min_star(u, v, {}), cold_min);
    }
  }
  // Fire ranges were computed through the same sweeps at construction.
  for (BarrierId b : ids) {
    EXPECT_EQ(bd.fire_range(b).min, ref_psi(bd, bd.initial(), b, false));
    EXPECT_EQ(bd.fire_range(b).max, ref_psi(bd, bd.initial(), b, true));
  }
}

TEST(BarrierCache, RandomChainDagsMatchReference) {
  Rng rng(2026);
  for (int trial = 0; trial < 30; ++trial) {
    // Random layered chains over a shared barrier pool: chains visit ids in
    // increasing order, so the union is always acyclic.
    const std::size_t num_barriers = 2 + rng.index(8);
    const std::size_t num_chains = 1 + rng.index(5);
    std::vector<BarrierChainInput> chains(num_chains);
    for (BarrierChainInput& chain : chains) {
      chain.barriers.push_back(0);
      for (BarrierId b = 1; b < num_barriers; ++b) {
        if (!rng.chance(0.6)) continue;
        const Time lo = rng.uniform(0, 12);
        chain.barriers.push_back(b);
        chain.segments.push_back({lo, lo + rng.uniform(0, 9)});
      }
    }
    const Time latency = rng.chance(0.5) ? rng.uniform(1, 5) : 0;
    const BarrierDag bd(num_barriers, 0, chains, latency);
    check_all_pairs(bd);
  }
}

TEST(BarrierCache, ConsistentAcrossRandomInsertMergeSequences) {
  Rng rng(41);
  for (int trial = 0; trial < 6; ++trial) {
    // Independent loads: no dependence edges, so any barrier placement that
    // keeps the joint order acyclic is legal.
    const std::uint32_t n = 24;
    Program prog(n);
    for (std::uint32_t i = 0; i < n; ++i) prog.append(Tuple::load(i, i));
    const InstrDag dag = InstrDag::build(prog, TimingModel::table1());
    const std::size_t procs = 3 + rng.index(3);
    Schedule sched(dag, procs);
    for (std::uint32_t i = 0; i < n; ++i)
      sched.append_instr(static_cast<ProcId>(i % procs), i);

    for (int step = 0; step < 12; ++step) {
      // Random multi-processor barrier at random feasible positions.
      std::vector<Schedule::Loc> locs;
      for (ProcId p = 0; p < procs; ++p) {
        if (!rng.chance(0.7)) continue;
        const auto size =
            static_cast<std::uint32_t>(sched.stream(p).size());
        locs.push_back({p, static_cast<std::uint32_t>(rng.index(size + 1))});
      }
      if (locs.size() < 2 || !sched.order_feasible(locs)) continue;
      sched.insert_barrier(locs);
      if (rng.chance(0.4)) sched.merge_overlapping_all();
      check_all_pairs(sched.barrier_dag());
    }
  }
}

}  // namespace
}  // namespace bm
