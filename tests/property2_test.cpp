// Second property suite: cross-cutting invariants added with the extension
// modules (parser round-trips, SBM/DBM equivalence after merging, barrier
// latency, control flow under every machine model).
#include <gtest/gtest.h>

#include "cfg/cfg_gen.hpp"
#include "cfg/cfg_sim.hpp"
#include "codegen/parser.hpp"
#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace bm {
namespace {

TEST(ParserRoundTrip, PrintedStatementsReparseIdentically) {
  // statement_to_string emits exactly the grammar parse_statements accepts;
  // fuzz the loop over random generated blocks.
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 12,
                            .num_constants = 5, .const_max = 99};
  const StatementGenerator sg(gen);
  Rng rng(2718);
  for (int trial = 0; trial < 30; ++trial) {
    const StatementList original = sg.generate(rng);
    std::string source;
    for (const Assign& s : original) source += statement_to_string(s) + "\n";
    const ParsedBlock parsed = parse_statements(source);
    ASSERT_EQ(parsed.statements.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(parsed.statements[i].op, original[i].op);
      // Variable ids may be renumbered (first-appearance order); compare
      // through the name table.
      const Assign& a = original[i];
      const Assign& b = parsed.statements[i];
      EXPECT_EQ(parsed.var_names.at(b.lhs), var_name(a.lhs));
      auto same_operand = [&](const StmtOperand& x, const StmtOperand& y) {
        if (x.is_var() != y.is_var()) return false;
        if (!x.is_var()) return x.value == y.value;
        return parsed.var_names.at(y.var) == var_name(x.var);
      };
      EXPECT_TRUE(same_operand(a.a, b.a)) << "stmt " << i;
      EXPECT_TRUE(same_operand(a.b, b.b)) << "stmt " << i;
    }
  }
}

TEST(MachineEquivalence, SbmFireTimesMatchDbmAfterGlobalMerging) {
  // After the global merge fixpoint, every unordered barrier pair has
  // disjoint fire ranges, so the SBM's FIFO never delays a barrier beyond
  // the dag semantics — running the *same merged schedule* on both machine
  // models must produce identical traces for identical draws.
  const GeneratorConfig gen{.num_statements = 50, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  cfg.machine = MachineKind::kSBM;  // merging on
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed * 911 + 3);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    for (int run = 0; run < 5; ++run) {
      const std::uint64_t draw_seed = rng.next();
      Rng r1(draw_seed), r2(draw_seed);
      const ExecTrace a =
          simulate(*r.schedule, {MachineKind::kSBM, SamplingMode::kUniform}, r1);
      const ExecTrace b =
          simulate(*r.schedule, {MachineKind::kDBM, SamplingMode::kUniform}, r2);
      EXPECT_EQ(a.completion, b.completion) << "seed " << seed;
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.barrier_fire, b.barrier_fire);
    }
  }
}

class LatencySoundness : public ::testing::TestWithParam<long> {};

TEST_P(LatencySoundness, NoViolationsAtAnyLatency) {
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  cfg.barrier_latency = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed * 17 + 2);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    for (SamplingMode mode : {SamplingMode::kUniform, SamplingMode::kBimodal,
                              SamplingMode::kAllMax}) {
      const ExecTrace t = simulate(*r.schedule, {cfg.machine, mode}, rng);
      EXPECT_TRUE(find_violations(dag, t).empty());
      EXPECT_LE(t.completion, r.stats.completion.max);
      EXPECT_GE(t.completion, r.stats.completion.min);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Latencies, LatencySoundness,
                         ::testing::Values(0L, 1L, 3L, 10L));

TEST(CfgProperty, SemanticsInvariantUnderMachineAndLatency) {
  CfgGeneratorConfig gen;
  gen.block = GeneratorConfig{.num_statements = 8, .num_variables = 6,
                              .num_constants = 3, .const_max = 32};
  gen.max_depth = 2;
  gen.seq_length = 2;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed * 97 + 5);
    const CfgProgram cfg = generate_cfg(gen, rng);
    std::vector<std::int64_t> memory(cfg.num_vars());
    for (auto& m : memory) m = rng.uniform(-40, 40);
    const CfgExecResult expect = interpret_cfg(cfg, memory);
    for (MachineKind mk : {MachineKind::kSBM, MachineKind::kDBM}) {
      for (long latency : {0L, 4L}) {
        SchedulerConfig sc;
        sc.machine = mk;
        sc.barrier_latency = latency;
        Rng srng(seed);
        const CfgScheduleResult s =
            schedule_cfg(cfg, sc, TimingModel::table1(), srng);
        CfgSimConfig sim;
        sim.machine = mk;
        const CfgExecResult got = run_cfg(s, sim, memory, srng);
        EXPECT_EQ(got.memory, expect.memory)
            << "seed " << seed << " " << to_string(mk) << " L" << latency;
        EXPECT_EQ(got.block_counts, expect.block_counts);
      }
    }
  }
}

TEST(CfgProperty, HigherLatencySlowsControlHeavyPrograms) {
  CfgGeneratorConfig gen;
  gen.block = GeneratorConfig{.num_statements = 6, .num_variables = 6,
                              .num_constants = 3, .const_max = 32};
  gen.loop_prob = 0.5;
  Rng rng(42);
  const CfgProgram cfg = generate_cfg(gen, rng);
  Time prev = -1;
  for (long latency : {0L, 4L, 16L}) {
    SchedulerConfig sc;
    sc.barrier_latency = latency;
    Rng srng(1), xrng(2);
    const CfgScheduleResult s =
        schedule_cfg(cfg, sc, TimingModel::table1(), srng);
    CfgSimConfig sim;
    sim.sampling = SamplingMode::kAllMax;
    const Time t = run_cfg(s, sim, {}, xrng).completion;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace bm
