// Regression corpus: exact seeds that exposed soundness bugs during
// development. Each must schedule cleanly and execute with zero dependence
// violations forever after.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

void expect_sound(const GeneratorConfig& gen, const SchedulerConfig& cfg,
                  Rng rng, const char* label) {
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  ScheduleResult r;
  ASSERT_NO_THROW(r = schedule_program(dag, cfg, rng)) << label;
  for (SamplingMode mode : {SamplingMode::kAllMin, SamplingMode::kAllMax,
                            SamplingMode::kBimodal, SamplingMode::kUniform}) {
    const ExecTrace t = simulate(*r.schedule, {cfg.machine, mode}, rng);
    EXPECT_TRUE(find_violations(dag, t).empty()) << label;
  }
}

TEST(Regression, MergeInducedInversionSeed176) {
  // SBM merging created a dependence inversion that the repair sweep could
  // not fix (cyclic barrier order) before the order-feasibility guard.
  GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                      .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  expect_sound(gen, cfg, Rng(777 + 176), "seed 777+176");
}

TEST(Regression, InsertionInducedInversionSeeds629And704) {
  // Barrier insertion itself created inversions for other edges (one-sided
  // positional case the pairwise guard missed) in the Fig. 14 sweep.
  GeneratorConfig gen{.num_statements = 70, .num_variables = 15,
                      .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  expect_sound(gen, cfg, benchmark_rng(1990, 629), "fig14 seed 629");
  expect_sound(gen, cfg, benchmark_rng(1990, 704), "fig14 seed 704");
}

TEST(Regression, RecursionNonConvergenceStressSeeds) {
  // Multi-edge requirement cycles defeated the protect-the-blocker
  // recursion until the joint order-feasibility invariant replaced it.
  // (Original failures: 100-statement blocks in the stress sweep.)
  GeneratorConfig gen{.num_statements = 100, .num_variables = 12,
                      .num_constants = 4, .const_max = 64};
  for (auto machine : {MachineKind::kSBM, MachineKind::kDBM}) {
    for (std::size_t procs : {8u, 32u}) {
      SchedulerConfig cfg;
      cfg.machine = machine;
      cfg.num_procs = procs;
      for (std::size_t i = 0; i < 30; ++i)
        expect_sound(gen, cfg, benchmark_rng(31337 + 100 * 7 + procs, i),
                     "stress");
    }
  }
}

TEST(Regression, TwoVariableBlocksSurviveOptimization) {
  // Early generator versions collapsed low-variable blocks to nothing
  // (constant-dominated operand pool + algebraic identities).
  GeneratorConfig gen{.num_statements = 60, .num_variables = 2,
                      .num_constants = 4, .const_max = 64};
  RunningStats syncs;
  for (std::size_t i = 0; i < 20; ++i) {
    Rng rng = benchmark_rng(55, i);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    syncs.add(static_cast<double>(dag.implied_syncs()));
  }
  EXPECT_GT(syncs.mean(), 15.0);
}

}  // namespace
}  // namespace bm
