// End-to-end coverage for the experiment registry: every registered
// experiment must complete at --seeds 2 --jobs 2, write CSV + JSON
// artifacts that parse, and produce byte-identical artifacts for
// --jobs 1 vs --jobs 2 (seed fan-out must not leak into results).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace bm {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal JSON validity checker (values, objects, arrays, strings with
// escapes, numbers incl. exponents, literals). Parse-only: the artifact
// contract is "machine-readable", not any particular schema.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Runs `exp` into `dir` with the table output swallowed (the registry
// sweep prints ~17 experiments' worth of tables otherwise).
void run_quiet(const Experiment& exp, const std::string& jobs,
               const fs::path& dir) {
  const CliFlags flags(
      {"--seeds", "2", "--jobs", jobs, "--out-dir", dir.string()});
  flags.validate(exp.flags);
  std::ostringstream sink;
  // The table renderers write to std::cout; swallow that as well.
  std::streambuf* saved = std::cout.rdbuf(sink.rdbuf());
  try {
    run_experiment(exp, flags, dir.string(), sink);
  } catch (...) {
    std::cout.rdbuf(saved);
    throw;
  }
  std::cout.rdbuf(saved);
  EXPECT_FALSE(sink.str().empty()) << exp.name << ": no banner output";
}

// Pulls the numeric value of `"key": <number>` out of a manifest, or `def`
// when the key is absent. Good enough for the flat metrics block the
// ArtifactWriter emits (keys are unique across the file).
double manifest_metric(const std::string& json, const std::string& key,
                       double def) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return def;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

fs::path temp_root() {
  const fs::path root =
      fs::temp_directory_path() / "bm_exp_registry_test";
  fs::remove_all(root);
  fs::create_directories(root);
  return root;
}

TEST(ExperimentRegistry, HasAllExperiments) {
  const auto all = ExperimentRegistry::instance().all();
  EXPECT_GE(all.size(), 17u);
  std::set<std::string> names;
  for (const Experiment* e : all) {
    EXPECT_TRUE(names.insert(e->name).second) << "duplicate " << e->name;
    EXPECT_FALSE(e->title.empty()) << e->name;
    EXPECT_FALSE(e->paper_ref.empty()) << e->name;
    EXPECT_FALSE(e->expected.empty()) << e->name;
    EXPECT_TRUE(static_cast<bool>(e->run)) << e->name;
    // Every experiment carries the common flags so bmrun's shared
    // binding layer (seeds/jobs/out-dir) works uniformly.
    for (const char* f : {"seeds", "base-seed", "jobs", "out-dir"})
      EXPECT_NO_THROW(e->flag(f)) << e->name << " missing --" << f;
  }
  EXPECT_TRUE(names.count("fig14"));
  EXPECT_TRUE(names.count("table1"));
  EXPECT_TRUE(names.count("headline"));
}

TEST(ExperimentRegistry, FindAndSortedNames) {
  auto& reg = ExperimentRegistry::instance();
  EXPECT_NE(reg.find("fig15"), nullptr);
  EXPECT_EQ(reg.find("fig99"), nullptr);
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ExperimentRegistry, ClosestNameSuggestsNearMisses) {
  auto& reg = ExperimentRegistry::instance();
  EXPECT_EQ(reg.closest_name("headlin"), "headline");
  EXPECT_EQ(reg.closest_name("tabel1"), "table1");
  EXPECT_EQ(reg.closest_name("insertion-compare"), "insertion_compare");
  // Distance ties resolve to the lexicographically smallest candidate.
  EXPECT_EQ(reg.closest_name("fig19"), "fig14");
  // Exact names are their own best match.
  EXPECT_EQ(reg.closest_name("fig15"), "fig15");
}

TEST(ExperimentRegistry, DuplicateNameRejected) {
  Experiment dup;
  dup.name = "fig14";
  EXPECT_THROW(ExperimentRegistry::instance().add(dup), Error);
}

// Every registered experiment must survive `--verify`: the static race
// detector re-derives the safety of every schedule the run produces, and a
// single verifier error aborts run_point with a hard failure. This is the
// registry-wide soundness net for the scheduler (both insertion policies
// are exercised — insertion_compare and the ablations run each policy, and
// the harness verifies every schedule they produce).
TEST(ExperimentRegistry, EveryExperimentPassesVerification) {
  const fs::path root = temp_root();
  for (const Experiment* exp : ExperimentRegistry::instance().all()) {
    SCOPED_TRACE(exp->name);
    const fs::path dir = root / exp->name / "verify";
    const CliFlags flags({"--seeds", "2", "--verify", "true", "--out-dir",
                          dir.string()});
    ASSERT_NO_THROW(
        flags.validate(exp->flags, {bool_flag("verify", false, "")}));
    std::ostringstream sink;
    std::streambuf* saved = std::cout.rdbuf(sink.rdbuf());
    try {
      run_experiment(*exp, flags, dir.string(), sink);
    } catch (...) {
      std::cout.rdbuf(saved);
      FAIL() << exp->name << ": --verify run threw (schedule failed "
             << "verification)";
    }
    std::cout.rdbuf(saved);
#if BM_OBS_ENABLED
    const std::string json = slurp(dir / (exp->name + ".json"));
    const double verified = manifest_metric(json, "obs.verify.schedules", 0);
    if (verified > 0) {
      // Zero-valued counters are dropped from the manifest delta, so an
      // absent key means zero races/errors — which is exactly the pass.
      EXPECT_EQ(manifest_metric(json, "obs.verify.races", 0), 0)
          << exp->name;
      EXPECT_EQ(manifest_metric(json, "obs.verify.errors", 0), 0)
          << exp->name;
      EXPECT_GT(manifest_metric(json, "obs.verify.edges_checked", 0), 0)
          << exp->name;
    }
#endif
  }
  fs::remove_all(root);
}

// The heavyweight sweep: run everything, check artifacts, compare jobs.
TEST(ExperimentRegistry, EveryExperimentRunsAndArtifactsAreDeterministic) {
  const fs::path root = temp_root();
  for (const Experiment* exp : ExperimentRegistry::instance().all()) {
    SCOPED_TRACE(exp->name);
    const fs::path dir_a = root / exp->name / "jobs2";
    const fs::path dir_b = root / exp->name / "jobs1";
    ASSERT_NO_THROW(run_quiet(*exp, "2", dir_a));

    // (b) CSV + JSON artifacts exist and parse.
    const std::string stem =
        exp->csv_stem.empty() ? exp->name : exp->csv_stem;
    EXPECT_TRUE(fs::exists(dir_a / (stem + ".csv")))
        << "missing " << stem << ".csv";
    const fs::path json = dir_a / (exp->name + ".json");
    ASSERT_TRUE(fs::exists(json));
    const std::string json_text = slurp(json);
    EXPECT_TRUE(JsonChecker(json_text).valid())
        << exp->name << ".json is not valid JSON:\n" << json_text;
    EXPECT_NE(json_text.find("\"experiment\": \"" + exp->name + "\""),
              std::string::npos);

#if BM_OBS_ENABLED
    // (b') The metrics block carries the run's observability counters.
    EXPECT_NE(json_text.find("\"obs."), std::string::npos)
        << exp->name << ": manifest has no obs.* metrics";
    // Counter identity: every inserted barrier was placed by exactly one
    // insertion policy (repair barriers are counted as conservative-path
    // inserts by the repair sweep's policy tag).
    const double schedules =
        manifest_metric(json_text, "obs.sched.schedules", 0);
    if (schedules > 0) {
      const double conservative =
          manifest_metric(json_text, "obs.sched.insert.conservative", 0);
      const double optimal =
          manifest_metric(json_text, "obs.sched.insert.optimal", 0);
      const double inserted =
          manifest_metric(json_text, "obs.sched.barriers_inserted", 0);
      EXPECT_EQ(conservative + optimal, inserted)
          << exp->name << ": insertion-policy counters do not add up";
    }
    if (exp->name == "insertion_compare") {
      // §4.4: the conservative algorithm may only over-synchronize, so on
      // the same (seeded, deterministic) workload it inserts at least as
      // many barriers as the optimal algorithm.
      const double conservative =
          manifest_metric(json_text, "obs.sched.insert.conservative", -1);
      const double optimal =
          manifest_metric(json_text, "obs.sched.insert.optimal", -1);
      EXPECT_GT(conservative, 0);
      EXPECT_GT(optimal, 0);
      EXPECT_GE(conservative, optimal);
    }
    if (exp->name == "fig18") {
      // The simulator ran and attributed stall time to fired barriers.
      EXPECT_GT(manifest_metric(json_text, "obs.sim.runs", 0), 0);
      EXPECT_GT(manifest_metric(json_text, "obs.sim.barriers_fired", 0), 0);
      EXPECT_EQ(
          manifest_metric(json_text, "obs.sim.barrier_stall.sum", -1),
          manifest_metric(json_text, "obs.sim.stall_cycles", -2))
          << "histogram sum and stall-cycle counter disagree";
    }
#endif

    // Every CSV in the dir: header plus at least one data row, with a
    // consistent column count.
    for (const auto& entry : fs::directory_iterator(dir_a)) {
      if (entry.path().extension() != ".csv") continue;
      std::ifstream in(entry.path());
      std::string line;
      std::size_t cols = 0, rows = 0;
      while (std::getline(in, line)) {
        const std::size_t n =
            static_cast<std::size_t>(
                std::count(line.begin(), line.end(), ',')) + 1;
        if (rows == 0)
          cols = n;
        else
          EXPECT_EQ(n, cols) << entry.path() << " row " << rows;
        ++rows;
      }
      EXPECT_GE(rows, 2u) << entry.path() << ": header only";
    }

    // (c) --jobs 1 must reproduce --jobs 2 byte for byte.
    ASSERT_NO_THROW(run_quiet(*exp, "1", dir_b));
    std::map<std::string, fs::path> files_a, files_b;
    for (const auto& e : fs::directory_iterator(dir_a))
      files_a[e.path().filename().string()] = e.path();
    for (const auto& e : fs::directory_iterator(dir_b))
      files_b[e.path().filename().string()] = e.path();
    ASSERT_EQ(files_a.size(), files_b.size());
    for (const auto& [name, path_a] : files_a) {
      ASSERT_TRUE(files_b.count(name)) << name << " only under jobs2";
      EXPECT_EQ(slurp(path_a), slurp(files_b[name]))
          << name << " differs between --jobs 1 and --jobs 2";
    }
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace bm
