#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "mimd/directed.hpp"
#include "mimd/reduce.hpp"
#include "sched/scheduler.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

TEST(DirectedSync, SerialStreamRunsBackToBack) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, T(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(0, 1);
  Rng rng(1);
  DirectedSyncConfig cfg;
  cfg.sampling = SamplingMode::kAllMax;
  const DirectedSyncResult r = simulate_directed(sched, cfg, rng);
  EXPECT_EQ(r.runtime_syncs, 0u);  // same processor: program order suffices
  EXPECT_EQ(r.trace.completion, 5);
}

TEST(DirectedSync, CrossEdgeCostsPostAndLatency) {
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAdd, C(1), C(1)));  // producer [1,1]
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));   // consumer [1,1]
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  Rng rng(2);
  DirectedSyncConfig cfg;
  cfg.post_cost = 2;
  cfg.latency = {3, 3};
  cfg.sampling = SamplingMode::kAllMax;
  const DirectedSyncResult r = simulate_directed(sched, cfg, rng);
  EXPECT_EQ(r.runtime_syncs, 1u);
  // Producer: 1 cycle op + 2 post; signal lands at 3+3=6; consumer 6..7.
  EXPECT_EQ(r.trace.start[1], 6);
  EXPECT_EQ(r.trace.completion, 7);
}

TEST(DirectedSync, OnePostPerConsumerProcessor) {
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  p.append(Tuple::binary(2, Opcode::kOr, T(0), C(1)));
  p.append(Tuple::binary(3, Opcode::kOr, T(0), C(2)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 3);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.append_instr(1, 2);  // two consumers on P1: one post
  sched.append_instr(2, 3);  // one consumer on P2: another post
  Rng rng(3);
  const DirectedSyncResult r = simulate_directed(sched, DirectedSyncConfig{}, rng);
  EXPECT_EQ(r.runtime_syncs, 2u);
}

TEST(DirectedSync, RespectsAllDependences) {
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 3 + 1);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    for (int run = 0; run < 5; ++run) {
      const DirectedSyncResult d =
          simulate_directed(*r.schedule, DirectedSyncConfig{}, rng);
      EXPECT_TRUE(find_violations(dag, d.trace).empty()) << "seed " << seed;
      EXPECT_EQ(d.runtime_syncs > 0, r.stats.cross_edges > 0);
    }
  }
}

TEST(DirectedSync, HigherLatencySlowsCompletion) {
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  Rng rng(77);
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  DirectedSyncConfig fast, slow;
  fast.latency = {1, 1};
  fast.sampling = SamplingMode::kAllMax;
  slow.latency = {30, 30};
  slow.sampling = SamplingMode::kAllMax;
  Rng r1(1), r2(1);
  const Time t_fast = simulate_directed(*r.schedule, fast, r1).trace.completion;
  const Time t_slow = simulate_directed(*r.schedule, slow, r2).trace.completion;
  EXPECT_LT(t_fast, t_slow);
}

TEST(SyncReduction, ElidesTransitivelyImpliedEdge) {
  // t0 on P0, t1 = f(t0) on P1, t2 = g(t0, t1) on P2: the edge t0→t2 is
  // implied by t0→t1→t2 and must be elided; the other two stay.
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  p.append(Tuple::binary(2, Opcode::kAdd, T(0), T(1)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 3);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.append_instr(2, 2);
  const SyncReduction r = reduce_directed_syncs(sched);
  EXPECT_EQ(r.total_cross_edges, 3u);
  EXPECT_EQ(r.elided, 1u);
  EXPECT_EQ(r.retained, 2u);
  EXPECT_DOUBLE_EQ(r.elision_fraction(), 1.0 / 3.0);
  for (const auto& [g, i] : r.kept) EXPECT_FALSE(g == 0 && i == 2);
}

TEST(SyncReduction, ProgramOrderImpliesSameChainConsumers) {
  // Producer on P0; two consumers in order on P1: the second consumer's
  // sync is implied by the first's plus P1 program order.
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  p.append(Tuple::binary(2, Opcode::kOr, T(0), C(1)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.append_instr(1, 2);
  const SyncReduction r = reduce_directed_syncs(sched);
  EXPECT_EQ(r.total_cross_edges, 2u);
  EXPECT_EQ(r.retained, 1u);
}

TEST(SyncReduction, ReducedSetStillOrdersEverything) {
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 5 + 3);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const SyncReduction red = reduce_directed_syncs(*r.schedule);
    EXPECT_EQ(red.retained + red.elided, red.total_cross_edges);
    // Executing with only the retained syncs must respect every dependence.
    for (int run = 0; run < 5; ++run) {
      const DirectedSyncResult d = simulate_directed(
          *r.schedule, DirectedSyncConfig{}, rng, red.kept);
      EXPECT_TRUE(find_violations(dag, d.trace).empty()) << "seed " << seed;
      EXPECT_EQ(d.runtime_syncs > 0, red.retained > 0);
    }
  }
}

TEST(SyncReduction, NeverElidesOnTwoIsolatedProcessors) {
  // One producer, one consumer, nothing else: the only sync must stay.
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(1, Opcode::kOr, T(0), C(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  const SyncReduction r = reduce_directed_syncs(sched);
  EXPECT_EQ(r.retained, 1u);
  EXPECT_EQ(r.elided, 0u);
}

TEST(DirectedSync, RejectsBadConfig) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 1);
  sched.append_instr(0, 0);
  Rng rng(4);
  DirectedSyncConfig bad;
  bad.post_cost = -1;
  EXPECT_THROW(simulate_directed(sched, bad, rng), Error);
  bad = DirectedSyncConfig{};
  bad.latency = {5, 2};
  EXPECT_THROW(simulate_directed(sched, bad, rng), Error);
}

}  // namespace
}  // namespace bm
