// Shape checks for the extension experiments (conventional-MIMD three-way
// comparison, barrier latency, control flow) — scaled-down versions of the
// corresponding bench binaries.
#include <gtest/gtest.h>

#include "barrier/dot.hpp"
#include "cfg/cfg_gen.hpp"
#include "cfg/cfg_sim.hpp"
#include "harness/experiment.hpp"
#include "mimd/directed.hpp"
#include "mimd/reduce.hpp"

namespace bm {
namespace {

GeneratorConfig gen60() {
  return GeneratorConfig{.num_statements = 60, .num_variables = 10,
                         .num_constants = 4, .const_max = 64};
}

TEST(EndToEnd2, ThreeWaySyncComparisonOrdering) {
  // §3: directed syncs > Shaffer-reduced syncs > barriers (timing-based).
  SchedulerConfig cfg;
  RunningStats full, reduced, barriers;
  for (std::size_t i = 0; i < 25; ++i) {
    Rng rng = benchmark_rng(7, i);
    const SynthesisResult s = synthesize_benchmark(gen60(), rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const SyncReduction red = reduce_directed_syncs(*r.schedule);
    full.add(static_cast<double>(red.total_cross_edges));
    reduced.add(static_cast<double>(red.retained));
    barriers.add(static_cast<double>(r.stats.barriers_final));
  }
  EXPECT_GT(full.mean(), reduced.mean());
  EXPECT_GT(reduced.mean(), barriers.mean());
}

TEST(EndToEnd2, LatencyRaisesCompletionNotFractions) {
  SchedulerConfig base;
  SchedulerConfig slow = base;
  slow.barrier_latency = 8;
  RunOptions opt;
  opt.seeds = 20;
  const PointAggregate a = run_point(gen60(), base, opt);
  const PointAggregate b = run_point(gen60(), slow, opt);
  EXPECT_GT(b.fractions.completion_max.mean(),
            a.fractions.completion_max.mean() * 1.5);
  // Fractions move only slightly (latency delays both sides of each check).
  EXPECT_NEAR(b.fractions.barrier_frac.mean(),
              a.fractions.barrier_frac.mean(), 0.08);
  EXPECT_NEAR(b.fractions.serialized_frac.mean(),
              a.fractions.serialized_frac.mean(), 0.05);
}

TEST(EndToEnd2, ControlFlowLockstepBoundExceedsActualMean) {
  CfgGeneratorConfig gen;
  gen.block = GeneratorConfig{.num_statements = 10, .num_variables = 8,
                              .num_constants = 4, .const_max = 64};
  gen.max_trip = 8;
  SchedulerConfig sc;
  double bound_total = 0, actual_total = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    Rng rng = benchmark_rng(11, i);
    const CfgProgram cfg = generate_cfg(gen, rng);
    const CfgScheduleResult s =
        schedule_cfg(cfg, sc, TimingModel::table1(), rng);
    bound_total += static_cast<double>(
        vliw_cfg_worst_case(cfg, sc.num_procs, TimingModel::table1(), 1));
    std::vector<std::int64_t> memory(cfg.num_vars());
    for (auto& m : memory) m = rng.uniform(-100, 100);
    actual_total +=
        static_cast<double>(run_cfg(s, CfgSimConfig{}, memory, rng).completion);
  }
  EXPECT_GT(bound_total, actual_total * 1.2);
}

TEST(EndToEnd2, VliwSchedulesAreMostlyCriticalPathOptimal) {
  // §6: "an optimal schedule (completion time equal to the critical path
  // time) was determined for almost all the synthetic benchmarks".
  std::size_t optimal = 0, total = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    Rng rng = benchmark_rng(13, i);
    const SynthesisResult s = synthesize_benchmark(gen60(), rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const VliwSchedule v = schedule_vliw(dag, 16);
    optimal += (v.makespan == dag.critical_path().max);
    ++total;
  }
  EXPECT_GT(static_cast<double>(optimal) / static_cast<double>(total), 0.8);
}

TEST(EndToEnd2, DotExportsAreWellFormed) {
  Rng rng(5);
  const SynthesisResult s = synthesize_benchmark(gen60(), rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  const ScheduleResult r = schedule_program(dag, cfg, rng);

  const std::string instr_dot = instr_dag_to_dot(dag, s.program);
  EXPECT_NE(instr_dot.find("digraph instr_dag {"), std::string::npos);
  EXPECT_NE(instr_dot.find("entry ->"), std::string::npos);
  EXPECT_NE(instr_dot.find("-> exit"), std::string::npos);
  EXPECT_EQ(instr_dot.back(), '\n');

  const std::string barrier_dot =
      barrier_dag_to_dot(r.schedule->barrier_dag());
  EXPECT_NE(barrier_dot.find("digraph barrier_dag {"), std::string::npos);
  EXPECT_NE(barrier_dot.find("b0 [label=\"B0"), std::string::npos);
  // One edge label per dag edge, each carrying a time range.
  EXPECT_NE(barrier_dot.find("fires [0,0]"), std::string::npos);
}

}  // namespace
}  // namespace bm
