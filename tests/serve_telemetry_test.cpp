// Live serving telemetry (serve/telemetry.hpp + the ServeCore wiring):
//  - the `stats v1` verb answers a parseable JSON snapshot whose totals
//    partition received = ok + rejected + cancelled + errors + inflight;
//  - counters are monotonic across polls;
//  - latency quantiles, per-phase breakdowns, and the cache hit ratio are
//    internally consistent (BM_OBS builds);
//  - the JSONL access log gets exactly one parseable line per answered
//    request under concurrent load, and rotates by size;
//  - requests over the slow threshold emit standalone Perfetto traces,
//    bounded by slow_trace_max.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "serve/core.hpp"
#include "support/json.hpp"

namespace bm {
namespace {

namespace fs = std::filesystem;
using namespace bm::serve;

Request synth_request(std::uint64_t id, std::size_t index) {
  Request req;
  req.id = id;
  req.verb = Verb::kSynth;
  req.base_seed = 1990;
  req.index = index;
  return req;
}

json::Value stats_snapshot(ServeCore& core) {
  Request req;
  req.id = 999999;
  req.verb = Verb::kStats;
  const Response resp = core.handle(req);
  EXPECT_EQ(resp.status, Status::kOk);
  return json::parse(resp.body);
}

/// RAII scratch directory under the system temp root.
struct TempDir {
  fs::path path;
  TempDir() : path(fs::temp_directory_path() /
                   ("bm_serve_telemetry_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter()++))) {
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::vector<json::Value> read_jsonl(const fs::path& p) {
  std::ifstream in(p);
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(json::parse(line));
  return lines;
}

TEST(ServeTelemetry, StatsV1ParsesAndTotalsPartition) {
  CoreConfig cfg;
  cfg.workers = 2;
  ServeCore core(cfg);
  for (std::size_t i = 0; i < 12; ++i)
    ASSERT_EQ(core.handle(synth_request(i + 1, i % 3)).status, Status::kOk);

  const json::Value snap = stats_snapshot(core);
  EXPECT_EQ(snap.str("", "stats"), "v1");
  EXPECT_GT(snap.num(0, "uptime_us"), 0.0);
  EXPECT_EQ(snap.num(-1, "workers"), 2.0);

  // The stats request itself is inflight while it computes the snapshot.
  const double received = snap.num(-1, "totals", "received");
  const double resolved =
      snap.num(-1, "totals", "ok") + snap.num(-1, "totals", "rejected") +
      snap.num(-1, "totals", "cancelled") + snap.num(-1, "totals", "errors");
  EXPECT_EQ(received, resolved + snap.num(-1, "inflight"));
  EXPECT_EQ(received, 13.0);  // 12 synth + this stats poll

  // 3 distinct seeds cold, 9 hits.
  EXPECT_EQ(snap.num(-1, "cache", "misses"), 3.0);
  EXPECT_EQ(snap.num(-1, "cache", "hits"), 9.0);
  EXPECT_NEAR(snap.num(-1, "cache", "hit_ratio"), 0.75, 1e-9);

#if BM_OBS_ENABLED
  // 12 answered requests before this poll (the poll is still inflight).
  EXPECT_EQ(snap.num(-1, "latency", "count"), 12.0);
  const double p50 = snap.num(-1, "latency", "p50_us");
  const double p99 = snap.num(-1, "latency", "p99_us");
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, snap.num(-1, "latency", "max_us"));
  // Phase histograms saw the scheduling stages.
  EXPECT_EQ(snap.num(-1, "phases", "cold_schedule", "count"), 12.0);
  EXPECT_EQ(snap.num(-1, "phases", "cache_lookup", "count"), 12.0);
  EXPECT_GT(snap.num(-1, "window", "quantiles", "count"), 0.0);
#endif
}

TEST(ServeTelemetry, CountersMonotonicAcrossPolls) {
  CoreConfig cfg;
  cfg.workers = 2;
  ServeCore core(cfg);

  double last_received = -1, last_ok = -1;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < 5; ++i)
      core.handle(synth_request(100 * round + i, i % 2));
    const json::Value snap = stats_snapshot(core);
    EXPECT_GT(snap.num(-1, "totals", "received"), last_received);
    EXPECT_GT(snap.num(-1, "totals", "ok"), last_ok);
    last_received = snap.num(-1, "totals", "received");
    last_ok = snap.num(-1, "totals", "ok");
  }
}

TEST(ServeTelemetry, AccessLogOneParseableLinePerRequestUnderLoad) {
  TempDir dir;
  const fs::path log = dir.path / "access.jsonl";
  constexpr std::size_t kRequests = 64;
  {
    CoreConfig cfg;
    cfg.workers = 4;
    cfg.telemetry.access_log_path = log.string();
    ServeCore core(cfg);
    std::vector<CancelToken> tokens;
    for (std::size_t i = 0; i < kRequests; ++i)
      tokens.push_back(core.submit(synth_request(i + 1, i % 4),
                                   [](const Response&) {}));
    core.drain();
  }

  const std::vector<json::Value> lines = read_jsonl(log);
  ASSERT_EQ(lines.size(), kRequests);
  std::set<std::uint64_t> rids;
  for (const json::Value& l : lines) {
    EXPECT_EQ(l.str("", "status"), "ok");
    EXPECT_EQ(l.str("", "verb"), "synth");
    EXPECT_GT(l.num(0, "rid"), 0.0);
    rids.insert(static_cast<std::uint64_t>(l.num(0, "rid")));
    const std::string cache = l.str("", "cache");
    EXPECT_TRUE(cache == "hit" || cache == "miss") << cache;
    EXPECT_EQ(l.str("", "fp").size(), 8u);
  }
  EXPECT_EQ(rids.size(), kRequests);  // rids are unique and monotonic
}

TEST(ServeTelemetry, AccessLogRotatesBySize) {
  TempDir dir;
  const fs::path log = dir.path / "access.jsonl";
  CoreConfig cfg;
  cfg.workers = 2;
  cfg.telemetry.access_log_path = log.string();
  cfg.telemetry.access_log_rotate_bytes = 512;  // a few lines per generation
  ServeCore core(cfg);
  for (std::size_t i = 0; i < 20; ++i)
    core.handle(synth_request(i + 1, i % 2));

  EXPECT_TRUE(fs::exists(log));
  EXPECT_TRUE(fs::exists(dir.path / "access.jsonl.1"));
  const json::Value snap = stats_snapshot(core);
  EXPECT_GT(snap.num(0, "access_log", "rotations"), 0.0);
  EXPECT_TRUE(snap.find("access_log", "enabled") != nullptr);
  // Current generation stays under the bound (one line of slack).
  EXPECT_LE(fs::file_size(log), 512u + 400u);
}

TEST(ServeTelemetry, SlowTracesEmittedAndBounded) {
  TempDir dir;
  CoreConfig cfg;
  cfg.workers = 2;
  cfg.telemetry.slow_trace_us = 1;  // every request is "slow"
  cfg.telemetry.slow_trace_dir = dir.path.string();
  cfg.telemetry.slow_trace_max = 3;
  ServeCore core(cfg);
  for (std::size_t i = 0; i < 10; ++i)
    core.handle(synth_request(i + 1, i % 2));

  std::size_t traces = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    ++traces;
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    const json::Value doc = json::parse(ss.str());
    const json::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->is_array());
    // Parent request span + at least one phase span + metadata.
    EXPECT_GE(events->items.size(), 4u);
    bool saw_request_span = false;
    for (const json::Value& e : events->items)
      if (e.str("", "name").rfind("request ", 0) == 0) saw_request_span = true;
    EXPECT_TRUE(saw_request_span);
  }
  EXPECT_EQ(traces, 3u);

  const json::Value snap = stats_snapshot(core);
  EXPECT_EQ(snap.num(0, "slow_traces", "emitted"), 3.0);
  EXPECT_EQ(snap.num(0, "slow_traces", "suppressed"), 7.0);
}

TEST(ServeTelemetry, RejectionsReachTheAccessLog) {
  TempDir dir;
  const fs::path log = dir.path / "access.jsonl";
  CoreConfig cfg;
  cfg.workers = 1;
  cfg.telemetry.access_log_path = log.string();
  ServeCore core(cfg);
  core.drain();  // draining core rejects all submits
  Response seen;
  core.submit(synth_request(7, 0), [&](const Response& r) { seen = r; });
  EXPECT_EQ(seen.status, Status::kRejected);

  const std::vector<json::Value> lines = read_jsonl(log);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].str("", "status"), "rejected");
  EXPECT_EQ(lines[0].num(0, "id"), 7.0);
}

}  // namespace
}  // namespace bm
