// Golden-parity corpus: serialized schedules for a grid of seeds across both
// insertion policies and both machine models, byte-compared against committed
// reference files in tests/golden/. The scheduler is deterministic given
// (generator config, scheduler config, seed), so any refactor of the hot path
// — graph layout, ready-set ordering, scratch reuse — must reproduce these
// files exactly. A mismatch means observable scheduling behavior changed.
//
// Regeneration (after an *intentional* behavior change):
//   BM_GOLDEN_REGEN=1 ./build/golden_parity_test
// then commit the rewritten tests/golden/*.txt with the change that caused
// them. scripts/check.sh prints this recipe when the test fails.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/synthesize.hpp"
#include "harness/experiment.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"

namespace bm {
namespace {

constexpr std::uint64_t kBaseSeed = 1990;  // the experiments' default
constexpr std::size_t kSeedsPerCombo = 25;

struct Combo {
  const char* name;
  InsertionPolicy insertion;
  MachineKind machine;
};

constexpr Combo kCombos[] = {
    {"conservative_sbm", InsertionPolicy::kConservative, MachineKind::kSBM},
    {"conservative_dbm", InsertionPolicy::kConservative, MachineKind::kDBM},
    {"optimal_sbm", InsertionPolicy::kOptimal, MachineKind::kSBM},
    {"optimal_dbm", InsertionPolicy::kOptimal, MachineKind::kDBM},
};

std::string golden_path(const Combo& c) {
  return std::string(BM_GOLDEN_DIR) + "/" + c.name + ".txt";
}

/// Reproduces the exact per-seed pipeline of harness run_seed: one rng
/// stream per (base_seed, index), synthesis and scheduling drawing from it
/// in order.
std::string corpus_for(const Combo& c) {
  GeneratorConfig gen;  // defaults == the headline experiment block shape
  SchedulerConfig sc;
  sc.insertion = c.insertion;
  sc.machine = c.machine;

  std::ostringstream os;
  os << "golden schedules v1 combo=" << c.name << " base_seed=" << kBaseSeed
     << " seeds=" << kSeedsPerCombo << "\n";
  for (std::size_t i = 0; i < kSeedsPerCombo; ++i) {
    Rng rng = benchmark_rng(kBaseSeed, i);
    const SynthesisResult synth = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(synth.program, TimingModel::table1());
    const ScheduleResult scheduled = schedule_program(dag, sc, rng);
    os << "=== seed " << i << " size " << synth.program.size() << "\n"
       << schedule_to_text(*scheduled.schedule);
  }
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class GoldenParityTest : public ::testing::TestWithParam<Combo> {};

TEST_P(GoldenParityTest, SchedulesMatchCommittedCorpus) {
  const Combo& c = GetParam();
  const std::string current = corpus_for(c);
  const std::string path = golden_path(c);

  if (std::getenv("BM_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << current;
    GTEST_SKIP() << "regenerated " << path;
  }

  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << path
      << " — regenerate with: BM_GOLDEN_REGEN=1 ./golden_parity_test";
  // Byte equality; on mismatch report the first differing line, not the
  // (large) full corpus.
  if (current != expected) {
    std::istringstream a(expected), b(current);
    std::string la, lb;
    std::size_t line = 0;
    while (std::getline(a, la) && std::getline(b, lb)) {
      ++line;
      ASSERT_EQ(la, lb) << c.name << ": first divergence at line " << line
                        << " of " << path;
    }
    FAIL() << c.name << ": corpus length changed (" << expected.size()
           << " -> " << current.size() << " bytes) in " << path;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, GoldenParityTest,
                         ::testing::ValuesIn(kCombos),
                         [](const ::testing::TestParamInfo<Combo>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace bm
