// Tests for the standalone static schedule verifier (src/verify): clean
// scheduler output must verify clean under every policy/machine/latency
// combination, injected damage must be flagged with a concrete witness, the
// structural lints must fire on hand-built pathological schedules, and the
// mutation self-test must meet the sensitivity bar.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codegen/emitter.hpp"
#include "codegen/parser.hpp"
#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "obs/obs.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"
#include "verify/selftest.hpp"
#include "verify/verify.hpp"

namespace bm {
namespace {

InstrDag dag_from_source(const std::string& src) {
  const ParsedBlock block = parse_statements(src);
  return InstrDag::build(emit_tuples(block.statements, block.num_vars),
                         TimingModel::table1());
}

ScheduleResult make_schedule(std::uint64_t seed, const InstrDag& dag,
                             InsertionPolicy policy, MachineKind machine,
                             Time latency) {
  SchedulerConfig sc;
  sc.num_procs = 4;
  sc.insertion = policy;
  sc.machine = machine;
  sc.barrier_latency = latency;
  Rng rng(seed);
  return schedule_program(dag, sc, rng);
}

const VerifyDiagnostic* find_code(const VerifyReport& report,
                                  const char* code) {
  for (const VerifyDiagnostic& d : report.diagnostics())
    if (d.code == code) return &d;
  return nullptr;
}

TEST(Verifier, CleanAcrossPoliciesMachinesAndLatencies) {
  const GeneratorConfig gen;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const InsertionPolicy policy :
         {InsertionPolicy::kConservative, InsertionPolicy::kOptimal}) {
      for (const MachineKind machine : {MachineKind::kSBM, MachineKind::kDBM}) {
        for (const Time latency : {Time{0}, Time{3}}) {
          Rng rng(seed);
          const SynthesisResult synth = synthesize_benchmark(gen, rng);
          const InstrDag dag =
              InstrDag::build(synth.program, TimingModel::table1());
          const ScheduleResult sr =
              make_schedule(seed * 7 + latency, dag, policy, machine, latency);
          const VerifyReport report = verify_schedule(dag, *sr.schedule);
          SCOPED_TRACE("seed " + std::to_string(seed) + " policy " +
                       (policy == InsertionPolicy::kOptimal ? "optimal"
                                                            : "conservative") +
                       (machine == MachineKind::kDBM ? " DBM" : " SBM") +
                       " latency " + std::to_string(latency));
          EXPECT_TRUE(report.clean()) << report.to_text();
          const VerifyStats& st = report.stats();
          EXPECT_GT(st.edges_checked, 0u);
          // Every edge lands in exactly one proof bucket (or races).
          EXPECT_EQ(st.proved_serialized + st.proved_path + st.proved_timing +
                        st.proved_timing_refined + st.races,
                    st.edges_checked);
          EXPECT_EQ(st.races, 0u);
          // The lazily cached BarrierDag agrees with the fresh re-derivation.
          EXPECT_EQ(st.cache_mismatches, 0u);
          EXPECT_GT(st.barriers_checked, 0u);
        }
      }
    }
  }
}

TEST(Verifier, DroppedBarrierYieldsRaceWithConcreteWitness) {
  // Scan seeds until deleting some barrier makes the verifier report a
  // race; the self-test shows nearly every seed has such a barrier.
  const GeneratorConfig gen;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
    Rng rng(seed);
    const SynthesisResult synth = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(synth.program, TimingModel::table1());
    const ScheduleResult sr = make_schedule(
        seed, dag, InsertionPolicy::kConservative, MachineKind::kSBM, 0);
    // Canonicalize ids through a text round-trip so fresh mutant copies can
    // be made per victim.
    const std::string text = schedule_to_text(*sr.schedule);
    const Schedule canon = schedule_from_text(dag, text);
    ASSERT_TRUE(verify_schedule(dag, canon).clean());
    for (BarrierId b = 1; b < canon.barrier_id_bound() && !found; ++b) {
      if (!canon.barrier_alive(b)) continue;
      if (canon.final_barrier() && *canon.final_barrier() == b) continue;
      Schedule mutant = schedule_from_text(dag, text);
      mutant.remove_barrier(b);
      const VerifyReport report = verify_schedule(dag, mutant);
      const VerifyDiagnostic* race = find_code(report, verify_code::kRace);
      if (race == nullptr) continue;
      found = true;
      EXPECT_FALSE(report.clean());
      EXPECT_GT(report.stats().races, 0u);
      ASSERT_TRUE(race->witness.has_value());
      const RaceWitness& w = *race->witness;
      // The witness names a real cross-processor dependence edge...
      EXPECT_NE(w.producer, w.consumer);
      EXPECT_NE(w.producer_proc, w.consumer_proc);
      bool is_sync_edge = false;
      for (const auto& [u, v] : dag.sync_edges())
        if (u == w.producer && v == w.consumer) is_sync_edge = true;
      EXPECT_TRUE(is_sync_edge);
      // ...with genuinely overlapping absolute intervals: an execution
      // instant where the consumer may start before the producer retires.
      EXPECT_LT(w.consumer_start.min, w.producer_finish.max);
      EXPECT_EQ(w.overlap.min, w.consumer_start.min);
      EXPECT_EQ(w.overlap.max, w.producer_finish.max);
      // The witness renders into both report formats.
      EXPECT_NE(report.to_text().find("witness"), std::string::npos);
      const std::string json = report.to_json();
      for (const char* key :
           {"\"producer\"", "\"consumer\"", "\"producer_proc\"",
            "\"consumer_proc\"", "\"producer_finish\"", "\"consumer_start\"",
            "\"overlap\"", "\"BV101\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
  }
  EXPECT_TRUE(found) << "no seed produced a detectable race within the scan";
}

TEST(Verifier, SameProcessorInversionFlagged) {
  const InstrDag dag = dag_from_source("b = a + a;\nc = b + b;\n");
  ASSERT_FALSE(dag.sync_edges().empty());
  const auto [producer, consumer] = dag.sync_edges().front();

  // Correct order first: program order on one processor proves every edge.
  Schedule good(dag, 2);
  for (NodeId n = 0; n < dag.num_instructions(); ++n)
    good.append_instr(0, n);
  EXPECT_TRUE(verify_schedule(dag, good).clean());

  // Consumer placed before its producer on the same stream.
  Schedule bad(dag, 2);
  bad.append_instr(0, consumer);
  bad.append_instr(0, producer);
  for (NodeId n = 0; n < dag.num_instructions(); ++n)
    if (n != producer && n != consumer) bad.append_instr(0, n);
  const VerifyReport report = verify_schedule(dag, bad);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(find_code(report, verify_code::kSamePeOrder), nullptr)
      << report.to_text();
}

TEST(Verifier, UnplacedInstructionFlagged) {
  const InstrDag dag = dag_from_source("b = a + a;\nc = b + b;\n");
  Schedule sched(dag, 2);
  for (NodeId n = 0; n + 1 < dag.num_instructions(); ++n)
    sched.append_instr(0, n);
  const VerifyReport report = verify_schedule(dag, sched);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(find_code(report, verify_code::kUnplaced), nullptr)
      << report.to_text();
}

TEST(Verifier, BarrierCycleFlagged) {
  // Two independent statements; the crossing barrier pair B1/B2 orders
  // B1 before B2 on P0 and B2 before B1 on P1 — a cycle no draw can fire.
  const InstrDag dag = dag_from_source("b = a + a;\nd = c + c;\n");
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.insert_barrier({{0, 0}, {1, 0}});
  sched.insert_barrier({{0, 1}, {1, 0}});
  const VerifyReport report = verify_schedule(dag, sched);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(find_code(report, verify_code::kCycle), nullptr)
      << report.to_text();
}

TEST(Verifier, RedundantBarrierWarnedButClean) {
  // Generated schedules routinely contain transitively redundant barriers;
  // find one and check it is a warning (never an error) with the barrier id
  // attached for tooling.
  const GeneratorConfig gen;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 30 && !found; ++seed) {
    Rng rng(seed);
    const SynthesisResult synth = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(synth.program, TimingModel::table1());
    const ScheduleResult sr = make_schedule(
        seed, dag, InsertionPolicy::kConservative, MachineKind::kSBM, 0);
    const VerifyReport report = verify_schedule(dag, *sr.schedule);
    const VerifyDiagnostic* d =
        find_code(report, verify_code::kRedundantBarrier);
    if (d == nullptr) continue;
    found = true;
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(d->severity, VerifySeverity::kWarning);
    ASSERT_TRUE(d->barrier.has_value());
    EXPECT_TRUE(sr.schedule->barrier_alive(*d->barrier));
    EXPECT_GT(report.stats().redundant_barriers, 0u);
  }
  EXPECT_TRUE(found) << "no seed produced a redundant barrier within the scan";
}

TEST(Verifier, MutationSelftestMeetsSensitivityBar) {
  MutationConfig cfg;
  cfg.mutations = 200;
  const MutationReport report = run_mutation_selftest(cfg);
  EXPECT_EQ(report.attempted, 200u);
  // Acceptance bar: >= 95% of the injected mutations flagged, zero misses
  // (an unflagged mutant that simulation shows racing is a soundness bug),
  // and every unmutated scheduler output verified clean.
  EXPECT_GE(report.flagged_fraction(), 0.95) << report.to_text();
  EXPECT_EQ(report.missed, 0u) << report.to_text();
  EXPECT_EQ(report.baseline_dirty, 0u) << report.to_text();
  EXPECT_EQ(report.sensitivity(), 1.0);
  EXPECT_EQ(report.deleted + report.shifted, report.attempted);
  EXPECT_GT(report.shifted, 0u);  // both mutation kinds exercised
}

TEST(Verifier, SelftestIsDeterministic) {
  MutationConfig cfg;
  cfg.mutations = 25;
  const MutationReport a = run_mutation_selftest(cfg);
  const MutationReport b = run_mutation_selftest(cfg);
  EXPECT_EQ(a.to_json(), b.to_json());
}

#if BM_OBS_ENABLED
TEST(Verifier, ObservabilityCounters) {
  const GeneratorConfig gen;
  Rng rng(3);
  const SynthesisResult synth = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(synth.program, TimingModel::table1());
  const ScheduleResult sr = make_schedule(
      3, dag, InsertionPolicy::kConservative, MachineKind::kSBM, 0);

  const obs::Snapshot before = obs::snapshot();
  const VerifyReport report = verify_schedule(dag, *sr.schedule);
  const obs::Snapshot used = obs::delta(before, obs::snapshot());
  ASSERT_TRUE(report.clean());

  auto counter = [&](const std::string& key) -> double {
    for (const obs::Snapshot::Entry& e : used.entries)
      if (e.key == key) return e.value;
    return 0;
  };
  EXPECT_EQ(counter("verify.schedules"), 1);
  EXPECT_EQ(counter("verify.edges_checked"),
            static_cast<double>(report.stats().edges_checked));
  EXPECT_EQ(counter("verify.races"), 0);
  EXPECT_EQ(counter("verify.errors"), 0);
}
#endif

}  // namespace
}  // namespace bm
