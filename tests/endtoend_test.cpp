// Scaled-down replicas of the paper's experiments (§5, §6): these assert the
// qualitative *shape* of every reported trend with enough seeds to be
// stable, while the bench binaries regenerate the full figures.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace bm {
namespace {

RunOptions quick(std::size_t seeds) {
  RunOptions opt;
  opt.seeds = seeds;
  opt.base_seed = 2026;
  return opt;
}

GeneratorConfig gen(std::uint32_t stmts, std::uint32_t vars) {
  return GeneratorConfig{.num_statements = stmts, .num_variables = vars,
                         .num_constants = 4, .const_max = 64};
}

TEST(EndToEnd, HeadlineFractionRanges) {
  // §5: barrier 3–23%, serialized 50–90%, static 8–40% (generous margins
  // for the reduced seed count), and ≥77% without runtime synchronization.
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  const PointAggregate agg = run_point(gen(40, 10), cfg, quick(30));
  EXPECT_GE(agg.fractions.barrier_frac.mean(), 0.02);
  EXPECT_LE(agg.fractions.barrier_frac.mean(), 0.25);
  EXPECT_GE(agg.fractions.serialized_frac.mean(), 0.45);
  EXPECT_LE(agg.fractions.serialized_frac.mean(), 0.92);
  EXPECT_GE(agg.fractions.static_frac.mean(), 0.05);
  EXPECT_LE(agg.fractions.static_frac.mean(), 0.45);
  EXPECT_GE(agg.fractions.no_runtime_frac.mean(), 0.75);
}

TEST(EndToEnd, Fig15BarrierFractionFallsWithBlockSize) {
  // 8 PEs, 15 variables; the barrier fraction drops sharply from 5 to 20
  // statements (load-dominated small blocks need barriers right away).
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  const PointAggregate at5 = run_point(gen(5, 15), cfg, quick(40));
  const PointAggregate at20 = run_point(gen(20, 15), cfg, quick(40));
  EXPECT_GT(at5.fractions.barrier_frac.mean(),
            at20.fractions.barrier_frac.mean());
}

TEST(EndToEnd, Fig15SerializationFallsWithBlockSize) {
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  const PointAggregate small = run_point(gen(10, 15), cfg, quick(40));
  const PointAggregate large = run_point(gen(60, 15), cfg, quick(40));
  EXPECT_GT(small.fractions.serialized_frac.mean(),
            large.fractions.serialized_frac.mean());
}

TEST(EndToEnd, Fig16SerializationFallsWithVariables) {
  // 8 PEs, 60 statements: more variables = wider parallelism = fewer
  // serialization opportunities.
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  const PointAggregate narrow = run_point(gen(60, 3), cfg, quick(30));
  const PointAggregate wide = run_point(gen(60, 14), cfg, quick(30));
  EXPECT_GT(narrow.fractions.serialized_frac.mean(),
            wide.fractions.serialized_frac.mean());
}

TEST(EndToEnd, Fig17BarrierFractionStabilizesBeyondParallelismWidth) {
  // 100 statements, 10 variables: the barrier fraction grows from 2 PEs
  // toward the parallelism width, then flattens.
  SchedulerConfig cfg;
  cfg.num_procs = 2;
  const PointAggregate pe2 = run_point(gen(100, 10), cfg, quick(20));
  cfg.num_procs = 8;
  const PointAggregate pe8 = run_point(gen(100, 10), cfg, quick(20));
  cfg.num_procs = 64;
  const PointAggregate pe64 = run_point(gen(100, 10), cfg, quick(20));
  EXPECT_LT(pe2.fractions.barrier_frac.mean(),
            pe8.fractions.barrier_frac.mean());
  // Flat region: within a couple of barrier-fraction points.
  EXPECT_NEAR(pe8.fractions.barrier_frac.mean(),
              pe64.fractions.barrier_frac.mean(), 0.05);
}

TEST(EndToEnd, Fig18BarrierMinBeatsVliwAndMaxIsClose) {
  // §6 (60 statements, 10 variables): barrier-MIMD best case clearly under
  // the VLIW time; worst case near it.
  RunOptions opt = quick(25);
  opt.with_vliw = true;
  opt.sim_runs = 3;
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  const PointAggregate agg = run_point(gen(60, 10), cfg, opt);
  EXPECT_LT(agg.norm_min.mean(), 0.92);   // paper: ≈0.75
  EXPECT_GT(agg.norm_min.mean(), 0.5);
  EXPECT_GT(agg.norm_max.mean(), 0.9);    // "nearly identical"
  EXPECT_LT(agg.norm_max.mean(), 1.35);
  // Mean lies between the extremes.
  EXPECT_GE(agg.norm_mean.mean(), agg.norm_min.mean());
  EXPECT_LE(agg.norm_mean.mean(), agg.norm_max.mean());
}

TEST(EndToEnd, MergingReducesBarriersOnSbm) {
  // §4.4.3 (10 variables, 80 statements): SBM merging leaves fewer barriers
  // than the DBM schedule, at equal or higher completion time.
  RunOptions opt = quick(25);
  SchedulerConfig sbm;
  sbm.num_procs = 8;
  sbm.machine = MachineKind::kSBM;
  SchedulerConfig dbm = sbm;
  dbm.machine = MachineKind::kDBM;
  const PointAggregate s = run_point(gen(80, 10), sbm, opt);
  const PointAggregate d = run_point(gen(80, 10), dbm, opt);
  EXPECT_LT(s.fractions.barriers.mean(), d.fractions.barriers.mean());
  EXPECT_GE(s.fractions.completion_max.mean(),
            d.fractions.completion_max.mean() * 0.98);
}

TEST(EndToEnd, RoundRobinAblationMatchesSection54) {
  // Round-robin: serialization collapses, barrier fraction rises steeply,
  // execution time worsens.
  RunOptions opt = quick(20);
  SchedulerConfig list;
  list.num_procs = 8;
  SchedulerConfig rr = list;
  rr.assignment = AssignmentPolicy::kRoundRobin;
  const PointAggregate l = run_point(gen(40, 10), list, opt);
  const PointAggregate r = run_point(gen(40, 10), rr, opt);
  EXPECT_LT(r.fractions.serialized_frac.mean(),
            l.fractions.serialized_frac.mean() * 0.5);
  EXPECT_GT(r.fractions.barrier_frac.mean(),
            l.fractions.barrier_frac.mean());
  EXPECT_GE(r.fractions.completion_max.mean(),
            l.fractions.completion_max.mean());
}

TEST(EndToEnd, OrderingAblationHasSmallEffect) {
  // §5.4: swapping the height keys changes completion times only slightly.
  RunOptions opt = quick(25);
  SchedulerConfig maxfirst;
  maxfirst.num_procs = 8;
  SchedulerConfig minfirst = maxfirst;
  minfirst.ordering = OrderingPolicy::kMinThenMax;
  const PointAggregate a = run_point(gen(40, 10), maxfirst, opt);
  const PointAggregate b = run_point(gen(40, 10), minfirst, opt);
  EXPECT_NEAR(b.fractions.completion_max.mean(),
              a.fractions.completion_max.mean(),
              a.fractions.completion_max.mean() * 0.15);
}

TEST(EndToEnd, TimingVariationAblationBarrierFractionInsensitive) {
  // §5.4: enlarged instruction timing variation raises the barrier fraction
  // only slightly.
  RunOptions base = quick(20);
  RunOptions wide = base;
  wide.timing = TimingModel::table1_with_variation(4.0);
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  const PointAggregate a = run_point(gen(40, 10), cfg, base);
  const PointAggregate b = run_point(gen(40, 10), cfg, wide);
  EXPECT_GE(b.fractions.barrier_frac.mean(),
            a.fractions.barrier_frac.mean() * 0.8);
  EXPECT_LE(b.fractions.barrier_frac.mean(),
            a.fractions.barrier_frac.mean() + 0.15);
}

TEST(EndToEnd, OptimalInsertionNeverMoreBarriers) {
  // §4.4.2: the optimal check is strictly more permissive, so averaged over
  // benchmarks it cannot insert more barriers than the conservative one.
  RunOptions opt = quick(20);
  SchedulerConfig cons;
  cons.num_procs = 8;
  SchedulerConfig optm = cons;
  optm.insertion = InsertionPolicy::kOptimal;
  const PointAggregate c = run_point(gen(40, 10), cons, opt);
  const PointAggregate o = run_point(gen(40, 10), optm, opt);
  EXPECT_LE(o.fractions.barriers_inserted.mean(),
            c.fractions.barriers_inserted.mean() + 1e-9);
}

TEST(EndToEnd, CrossEdgeResolutionMatchesTwentyEightPercentEffect) {
  // §3: "about 28% of the time" an earlier barrier's timing lets the
  // compiler avoid inserting a further barrier — measured as
  // timing-satisfied / (timing-satisfied + inserted).
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  const PointAggregate agg = run_point(gen(60, 10), cfg, quick(30));
  EXPECT_NEAR(agg.fractions.timing_avoidance_frac.mean(), 0.28, 0.08);
  EXPECT_GT(agg.fractions.cross_resolved_frac.mean(), 0.10);
  EXPECT_LT(agg.fractions.cross_resolved_frac.mean(), 0.80);
}

}  // namespace
}  // namespace bm
