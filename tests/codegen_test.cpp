#include <map>

#include <gtest/gtest.h>

#include "codegen/emitter.hpp"
#include "codegen/generator.hpp"
#include "codegen/synthesize.hpp"
#include "support/assert.hpp"
#include "test_util.hpp"

namespace bm {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.num_statements = 30;
  cfg.num_variables = 6;
  cfg.num_constants = 3;
  return cfg;
}

// ----------------------------------------------------------- Generator -----

TEST(Generator, ConfigValidation) {
  GeneratorConfig cfg;
  cfg.num_statements = 0;
  EXPECT_THROW(StatementGenerator{cfg}, Error);
  cfg = GeneratorConfig{};
  cfg.num_variables = 0;
  EXPECT_THROW(StatementGenerator{cfg}, Error);
  cfg = GeneratorConfig{};
  cfg.const_max = 0;
  EXPECT_THROW(StatementGenerator{cfg}, Error);
}

TEST(Generator, DeterministicForSameSeed) {
  const StatementGenerator gen(small_config());
  Rng a(42), b(42);
  const StatementList s1 = gen.generate(a);
  const StatementList s2 = gen.generate(b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].lhs, s2[i].lhs);
    EXPECT_EQ(s1[i].op, s2[i].op);
    EXPECT_EQ(s1[i].a, s2[i].a);
    EXPECT_EQ(s1[i].b, s2[i].b);
  }
}

TEST(Generator, RespectsParameterBounds) {
  const StatementGenerator gen(small_config());
  Rng rng(7);
  const StatementList stmts = gen.generate(rng);
  EXPECT_EQ(stmts.size(), 30u);
  for (const Assign& s : stmts) {
    EXPECT_LT(s.lhs, 6u);
    EXPECT_TRUE(is_binary_op(s.op));
    for (const StmtOperand& o : {s.a, s.b}) {
      if (o.is_var()) {
        EXPECT_LT(o.var, 6u);
      } else {
        EXPECT_GE(o.value, 1);
        EXPECT_LE(o.value, small_config().const_max);
      }
    }
  }
}

TEST(Generator, OperationMixFollowsTable1) {
  GeneratorConfig cfg = small_config();
  cfg.num_statements = 60;
  const StatementGenerator gen(cfg);
  Rng rng(123);
  std::map<Opcode, std::size_t> counts;
  std::size_t total = 0;
  for (int b = 0; b < 400; ++b) {
    for (const Assign& s : gen.generate(rng)) {
      ++counts[s.op];
      ++total;
    }
  }
  for (Opcode op : all_opcodes()) {
    if (!is_binary_op(op)) continue;
    const double expected = opcode_frequency_percent(op) / 100.0;
    const double observed =
        static_cast<double>(counts[op]) / static_cast<double>(total);
    EXPECT_NEAR(observed, expected, 0.01)
        << "opcode " << opcode_name(op) << " off Table 1 frequency";
  }
}

TEST(Generator, ConstantPoolIsFixedPerBenchmark) {
  GeneratorConfig cfg = small_config();
  cfg.num_constants = 1;  // exactly one literal available
  cfg.num_statements = 40;
  const StatementGenerator gen(cfg);
  Rng rng(5);
  const StatementList stmts = gen.generate(rng);
  std::int64_t seen = -1;
  for (const Assign& s : stmts)
    for (const StmtOperand& o : {s.a, s.b})
      if (!o.is_var()) {
        if (seen < 0) seen = o.value;
        EXPECT_EQ(o.value, seen);
      }
  EXPECT_GE(seen, 1);
}

TEST(Generator, StatementToString) {
  Assign s;
  s.lhs = 0;
  s.op = Opcode::kMul;
  s.a = StmtOperand::variable(1);
  s.b = StmtOperand::constant(7);
  EXPECT_EQ(statement_to_string(s), "a = b * 7;");
}

// ------------------------------------------------------------- Emitter -----

StatementList two_statements() {
  // b = a + a;  c = b - a;
  Assign s1{1, Opcode::kAdd, StmtOperand::variable(0), StmtOperand::variable(0)};
  Assign s2{2, Opcode::kSub, StmtOperand::variable(1), StmtOperand::variable(0)};
  return {s1, s2};
}

TEST(Emitter, LoadOnFirstUseOnly) {
  const Program p = emit_tuples(two_statements(), 3);
  // Expected: Load a; Add; Store b; Sub(Add result, Load a); Store c.
  std::size_t loads = 0;
  for (const Tuple& t : p.tuples()) loads += t.is_load();
  EXPECT_EQ(loads, 1u);  // `a` loaded once; b,c never loaded (forwarded)
  EXPECT_EQ(p.size(), 5u);
}

TEST(Emitter, ForwardsAssignedValues) {
  const Program p = emit_tuples(two_statements(), 3);
  // The Sub must consume the Add's tuple, not a load of b.
  const Tuple& sub = p[3];
  ASSERT_EQ(sub.op, Opcode::kSub);
  EXPECT_TRUE(sub.lhs.is_tuple());
  EXPECT_EQ(p[sub.lhs.tuple_id()].op, Opcode::kAdd);
}

TEST(Emitter, StorePerAssignment) {
  const Program p = emit_tuples(two_statements(), 3);
  std::size_t stores = 0;
  for (const Tuple& t : p.tuples()) stores += t.is_store();
  EXPECT_EQ(stores, 2u);
}

TEST(Emitter, ConstantsAreImmediates) {
  Assign s{0, Opcode::kAdd, StmtOperand::constant(3), StmtOperand::constant(4)};
  const Program p = emit_tuples({s}, 1);
  ASSERT_EQ(p.size(), 2u);  // Add #3,#4 ; Store a
  EXPECT_TRUE(p[0].lhs.is_const());
  EXPECT_TRUE(p[0].rhs.is_const());
}

TEST(Emitter, UidsAreEmissionOrder) {
  const Program p = emit_tuples(two_statements(), 3);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_EQ(p[i].uid, i);  // no optimization yet, so dense == uid
}

TEST(Emitter, RejectsUnknownVariable) {
  Assign s{5, Opcode::kAdd, StmtOperand::variable(0), StmtOperand::variable(0)};
  EXPECT_THROW(emit_tuples({s}, 2), Error);
}

TEST(Emitter, PreservesSourceSemantics) {
  const StatementGenerator gen(small_config());
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const StatementList stmts = gen.generate(rng);
    const Program prog = emit_tuples(stmts, small_config().num_variables);
    std::vector<std::int64_t> memory(small_config().num_variables);
    for (auto& m : memory) m = rng.uniform(-100, 100);
    EXPECT_EQ(test::eval_statements(stmts, small_config().num_variables, memory),
              test::eval_program(prog, memory));
  }
}

// ---------------------------------------------------------- Synthesize -----

TEST(Synthesize, ProducesValidOptimizedProgram) {
  Rng rng(99);
  const SynthesisResult r = synthesize_benchmark(small_config(), rng);
  EXPECT_EQ(r.statements.size(), 30u);
  EXPECT_NO_THROW(r.program.validate());
  EXPECT_GT(r.program.size(), 0u);
}

TEST(Synthesize, OptimizationPreservesSemantics) {
  const GeneratorConfig cfg = small_config();
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    const SynthesisResult r = synthesize_benchmark(cfg, rng);
    std::vector<std::int64_t> memory(cfg.num_variables);
    for (auto& m : memory) m = rng.uniform(-100, 100);
    EXPECT_EQ(test::eval_statements(r.statements, cfg.num_variables, memory),
              test::eval_program(r.program, memory));
  }
}

TEST(Synthesize, AtMostOneLoadAndStorePerVariable) {
  Rng rng(13);
  const SynthesisResult r = synthesize_benchmark(small_config(), rng);
  std::map<VarId, int> loads, stores;
  for (const Tuple& t : r.program.tuples()) {
    if (t.is_load()) ++loads[t.var];
    if (t.is_store()) ++stores[t.var];
  }
  for (const auto& [var, n] : loads) EXPECT_LE(n, 1) << var_name(var);
  for (const auto& [var, n] : stores) EXPECT_LE(n, 1) << var_name(var);
}

}  // namespace
}  // namespace bm
