#include <gtest/gtest.h>

#include "codegen/emitter.hpp"
#include "codegen/generator.hpp"
#include "opt/passes.hpp"
#include "test_util.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

// -------------------------------------------------------- Constant fold ----

TEST(ConstFold, FoldsAndPropagates) {
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAdd, C(3), C(4)));   // -> 7
  p.append(Tuple::binary(1, Opcode::kMul, T(0), C(2)));   // -> 14
  p.append(Tuple::store(2, 0, T(1)));
  const OptStats s = optimize(p);
  EXPECT_EQ(s.folded, 2u);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_TRUE(p[0].is_store());
  EXPECT_EQ(p[0].lhs.const_value(), 14);
}

TEST(ConstFold, DivModByZeroFoldToZero) {
  Program p(2);
  p.append(Tuple::binary(0, Opcode::kDiv, C(5), C(0)));
  p.append(Tuple::store(1, 0, T(0)));
  p.append(Tuple::binary(2, Opcode::kMod, C(5), C(0)));
  p.append(Tuple::store(3, 1, T(2)));
  optimize(p);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].lhs.const_value(), 0);
  EXPECT_EQ(p[1].lhs.const_value(), 0);
}

// ----------------------------------------------------------- Algebraic -----

struct IdentityCase {
  Opcode op;
  Operand lhs, rhs;
  // Expected replacement: either the load's value (kLoad marker) or a const.
  bool expect_load;
  std::int64_t expect_const;
};

class AlgebraicTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(AlgebraicTest, SimplifiesToOperandOrConstant) {
  const IdentityCase& c = GetParam();
  Program p(2);
  p.append(Tuple::load(0, 0));                       // t0 = Load a
  p.append(Tuple::binary(1, c.op, c.lhs, c.rhs));    // t1 = op
  p.append(Tuple::store(2, 1, T(1)));                // b = t1
  optimize(p, {.algebraic = true});
  // The binary op must be gone; the store receives the simplified value.
  for (const Tuple& t : p.tuples()) EXPECT_FALSE(t.is_binary());
  const Tuple& store = p[p.size() - 1];
  ASSERT_TRUE(store.is_store());
  if (c.expect_load) {
    ASSERT_TRUE(store.lhs.is_tuple());
    EXPECT_TRUE(p[store.lhs.tuple_id()].is_load());
  } else {
    ASSERT_TRUE(store.lhs.is_const());
    EXPECT_EQ(store.lhs.const_value(), c.expect_const);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Identities, AlgebraicTest,
    ::testing::Values(
        IdentityCase{Opcode::kAdd, T(0), C(0), true, 0},   // x+0 -> x
        IdentityCase{Opcode::kAdd, C(0), T(0), true, 0},   // 0+x -> x
        IdentityCase{Opcode::kSub, T(0), C(0), true, 0},   // x-0 -> x
        IdentityCase{Opcode::kSub, T(0), T(0), false, 0},  // x-x -> 0
        IdentityCase{Opcode::kMul, T(0), C(1), true, 0},   // x*1 -> x
        IdentityCase{Opcode::kMul, C(1), T(0), true, 0},   // 1*x -> x
        IdentityCase{Opcode::kMul, T(0), C(0), false, 0},  // x*0 -> 0
        IdentityCase{Opcode::kMul, C(0), T(0), false, 0},  // 0*x -> 0
        IdentityCase{Opcode::kDiv, T(0), C(1), true, 0},   // x/1 -> x
        IdentityCase{Opcode::kDiv, C(0), T(0), false, 0},  // 0/x -> 0
        IdentityCase{Opcode::kMod, T(0), C(1), false, 0},  // x%1 -> 0
        IdentityCase{Opcode::kMod, C(0), T(0), false, 0},  // 0%x -> 0
        IdentityCase{Opcode::kAnd, T(0), T(0), true, 0},   // x&x -> x
        IdentityCase{Opcode::kAnd, T(0), C(0), false, 0},  // x&0 -> 0
        IdentityCase{Opcode::kAnd, C(0), T(0), false, 0},  // 0&x -> 0
        IdentityCase{Opcode::kOr, T(0), T(0), true, 0},    // x|x -> x
        IdentityCase{Opcode::kOr, T(0), C(0), true, 0},    // x|0 -> x
        IdentityCase{Opcode::kOr, C(0), T(0), true, 0}));  // 0|x -> x

// ----------------------------------------------------------------- CSE -----

TEST(Cse, RemovesDuplicateExpression) {
  Program p(3);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::load(1, 1));
  p.append(Tuple::binary(2, Opcode::kAdd, T(0), T(1)));
  p.append(Tuple::binary(3, Opcode::kAdd, T(0), T(1)));  // duplicate
  p.append(Tuple::store(4, 2, T(3)));
  const OptStats s = optimize(p);
  EXPECT_EQ(s.cse, 1u);
  std::size_t adds = 0;
  for (const Tuple& t : p.tuples()) adds += (t.op == Opcode::kAdd);
  EXPECT_EQ(adds, 1u);
}

TEST(Cse, CanonicalizesCommutativeOperands) {
  Program p(3);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::load(1, 1));
  p.append(Tuple::binary(2, Opcode::kAdd, T(0), T(1)));
  p.append(Tuple::binary(3, Opcode::kAdd, T(1), T(0)));  // swapped operands
  p.append(Tuple::store(4, 2, T(3)));
  EXPECT_EQ(optimize(p).cse, 1u);
}

TEST(Cse, DoesNotMergeNonCommutativeSwap) {
  Program p(3);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::load(1, 1));
  p.append(Tuple::binary(2, Opcode::kSub, T(0), T(1)));
  p.append(Tuple::binary(3, Opcode::kSub, T(1), T(0)));
  p.append(Tuple::store(4, 2, T(2)));
  p.append(Tuple::store(5, 1, T(3)));
  EXPECT_EQ(optimize(p).cse, 0u);
}

TEST(Cse, MergesDuplicateLoads) {
  Program p(2);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::load(1, 0));  // same variable, no intervening store
  p.append(Tuple::binary(2, Opcode::kAdd, T(0), T(1)));
  p.append(Tuple::store(3, 1, T(2)));
  optimize(p);
  std::size_t loads = 0;
  for (const Tuple& t : p.tuples()) loads += t.is_load();
  EXPECT_EQ(loads, 1u);
}

// ----------------------------------------------------------------- DCE -----

TEST(Dce, RemovesSupersededStore) {
  Program p(1);
  p.append(Tuple::binary(0, Opcode::kAdd, C(1), C(2)));
  p.append(Tuple::store(1, 0, T(0)));   // dead: overwritten below
  p.append(Tuple::binary(2, Opcode::kAdd, C(5), C(6)));
  p.append(Tuple::store(3, 0, T(2)));
  optimize(p);
  std::size_t stores = 0;
  for (const Tuple& t : p.tuples()) stores += t.is_store();
  EXPECT_EQ(stores, 1u);
  EXPECT_EQ(p[p.size() - 1].lhs.const_value(), 11);
}

TEST(Dce, RemovesUnusedLoadChain) {
  Program p(3);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kMul, T(0), T(0)));  // result unused
  p.append(Tuple::binary(2, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::store(3, 1, T(2)));
  optimize(p);
  ASSERT_EQ(p.size(), 1u);  // only the store of the folded constant remains
  EXPECT_TRUE(p[0].is_store());
}

TEST(Dce, KeepsLastStorePerVariable) {
  Program p(2);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 1, T(0)));
  const std::size_t removed = dead_code_eliminate(p);
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(p.size(), 2u);
}

// ------------------------------------------------------------ Pipeline -----

TEST(Optimize, IsIdempotent) {
  const GeneratorConfig cfg{.num_statements = 40, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  const StatementGenerator gen(cfg);
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    Program p = emit_tuples(gen.generate(rng), cfg.num_variables);
    optimize(p);
    const std::size_t size_after_first = p.size();
    const OptStats second = optimize(p);
    EXPECT_EQ(second.total_removed(), 0u);
    EXPECT_EQ(p.size(), size_after_first);
  }
}

TEST(Optimize, NeverGrowsProgram) {
  const GeneratorConfig cfg{.num_statements = 50, .num_variables = 10,
                            .num_constants = 5, .const_max = 64};
  const StatementGenerator gen(cfg);
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    Program p = emit_tuples(gen.generate(rng), cfg.num_variables);
    const std::size_t before = p.size();
    optimize(p);
    EXPECT_LE(p.size(), before);
  }
}

TEST(Optimize, PreservesSemanticsOnRandomBlocks) {
  const GeneratorConfig cfg{.num_statements = 35, .num_variables = 7,
                            .num_constants = 4, .const_max = 32};
  const StatementGenerator gen(cfg);
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    const StatementList stmts = gen.generate(rng);
    Program unoptimized = emit_tuples(stmts, cfg.num_variables);
    Program optimized = unoptimized;
    optimize(optimized);
    std::vector<std::int64_t> memory(cfg.num_variables);
    for (auto& m : memory) m = rng.uniform(-50, 50);
    EXPECT_EQ(test::eval_program(unoptimized, memory),
              test::eval_program(optimized, memory));
  }
}

}  // namespace
}  // namespace bm
