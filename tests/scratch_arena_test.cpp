// Pooled-scratch accounting: after a warmup pass, the per-seed scheduling
// pipeline must run entirely out of the thread-local arenas — zero pool
// misses and zero capacity growth, i.e. no heap allocation for scratch
// buffers inside the seed loop. The `mem.scratch.*` obs counters are the
// witness (see support/scratch.hpp).
#include <gtest/gtest.h>

#include <array>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "harness/experiment.hpp"
#include "obs/obs.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/scratch.hpp"

namespace bm {
namespace {

#if BM_OBS_ENABLED

double scratch_misses() { return obs::snapshot().get("mem.scratch.miss"); }
double scratch_grows() { return obs::snapshot().get("mem.scratch.grow"); }

PointAggregate run_seeds(std::size_t seeds, std::uint64_t base_seed,
                         InsertionPolicy insertion, MachineKind machine) {
  GeneratorConfig gen;
  SchedulerConfig sc;
  sc.insertion = insertion;
  sc.machine = machine;
  RunOptions opt;
  opt.seeds = seeds;
  opt.base_seed = base_seed;
  opt.jobs = 1;  // single worker: one pool, exact steady-state accounting
  opt.sim_runs = 2;
  return run_point(gen, sc, opt);
}

TEST(ScratchArenaTest, SteadyStateSeedLoopAllocatesNothing) {
  // Warmup: first seeds populate the pools (misses expected) and stretch
  // every buffer to the workload's high-water capacity (growth expected).
  run_seeds(10, 1990, InsertionPolicy::kConservative, MachineKind::kSBM);
  run_seeds(5, 1990, InsertionPolicy::kOptimal, MachineKind::kDBM);
  const double miss_before = scratch_misses();
  const double grow_before = scratch_grows();

  // The pools must actually be in play, or "zero new misses" is vacuous.
  ASSERT_GT(miss_before, 0) << "scheduling pipeline never used ScratchVec — "
                               "did the hot path stop pooling its buffers?";

  // Steady state: *different* seeds (fresh programs, fresh schedules),
  // same-shaped workload. Every scratch checkout must be served from the
  // warm pool without growing.
  run_seeds(25, 2718, InsertionPolicy::kConservative, MachineKind::kSBM);
  run_seeds(10, 3141, InsertionPolicy::kOptimal, MachineKind::kDBM);

  EXPECT_EQ(scratch_misses() - miss_before, 0)
      << "a seed-loop code path allocated a scratch buffer per call";
  EXPECT_EQ(scratch_grows() - grow_before, 0)
      << "a pooled buffer regrew inside the steady-state seed loop";
}

// The batch-simulation bookkeeping counters live under the same "mem."
// prefix as the scratch-pool counters, because both depend on machine
// configuration rather than on the workload: mem.batch.runs counts batch
// dispatches, which varies with the batch width, so it must never reach an
// experiment manifest (run_experiment drops every "mem."-prefixed key).
// Manifest-visible totals like sim.runs must stay width-invariant.
TEST(ScratchArenaTest, BatchCountersTrackDispatchesAndStayOffManifests) {
  GeneratorConfig gen;
  gen.num_statements = 30;
  SchedulerConfig sc;
  Rng rng(77);
  const SynthesisResult syn = synthesize_benchmark(gen, rng);
  const InstrDag dag = InstrDag::build(syn.program, TimingModel::table1());
  const ScheduleResult r = schedule_program(dag, sc, rng);

  const auto counters_after = [&](std::size_t runs, std::size_t width) {
    const obs::Snapshot before = obs::snapshot();
    Rng sim_rng(5);
    summarize_completion(*r.schedule, sc.machine, runs, sim_rng, width);
    const obs::Snapshot d = obs::delta(before, obs::snapshot());
    return std::array<double, 3>{d.get("mem.batch.runs"),
                                 d.get("mem.batch.lanes"),
                                 d.get("sim.runs")};
  };

  // Width 1: every run is its own dispatch. Width 8 over 12 runs: two
  // dispatches (8 + a ragged 4). Total lanes and sim.runs (12 uniform
  // + 2 min/max draws) are identical — the manifest-visible counter does
  // not leak the batch width.
  const auto narrow = counters_after(12, 1);
  const auto batched = counters_after(12, 8);
  EXPECT_EQ(narrow[0], 12);
  EXPECT_EQ(batched[0], 2);
  EXPECT_EQ(narrow[1], 12);
  EXPECT_EQ(batched[1], 12);
  EXPECT_EQ(narrow[2], 14);
  EXPECT_EQ(batched[2], 14);
}

#else  // BM_OBS_ENABLED

TEST(ScratchArenaTest, SkippedWithoutObs) {
  GTEST_SKIP() << "scratch accounting requires BM_OBS=ON";
}

#endif  // BM_OBS_ENABLED

}  // namespace
}  // namespace bm
