#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

struct RoundTrip {
  RoundTrip() {
    const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                              .num_constants = 4, .const_max = 64};
    Rng rng(11);
    synth = synthesize_benchmark(gen, rng);
    dag = std::make_unique<InstrDag>(
        InstrDag::build(synth.program, TimingModel::table1()));
    SchedulerConfig cfg;
    result = schedule_program(*dag, cfg, rng);
  }
  SynthesisResult synth;
  std::unique_ptr<InstrDag> dag;
  ScheduleResult result;
};

TEST(Serialize, RoundTripPreservesStreams) {
  RoundTrip rt;
  const std::string text = schedule_to_text(*rt.result.schedule);
  const Schedule restored = schedule_from_text(*rt.dag, text);
  ASSERT_EQ(restored.num_procs(), rt.result.schedule->num_procs());
  // Stream shapes are identical (barrier ids may be renumbered densely).
  for (ProcId p = 0; p < restored.num_procs(); ++p) {
    const auto& a = rt.result.schedule->stream(p);
    const auto& b = restored.stream(p);
    ASSERT_EQ(a.size(), b.size()) << "P" << p;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].is_barrier, b[k].is_barrier);
      if (!a[k].is_barrier) {
        EXPECT_EQ(a[k].id, b[k].id);
      }
    }
  }
  EXPECT_EQ(restored.inserted_barrier_count(),
            rt.result.schedule->inserted_barrier_count());
  EXPECT_EQ(restored.final_barrier().has_value(),
            rt.result.schedule->final_barrier().has_value());
}

TEST(Serialize, RoundTripPreservesExecutionSemantics) {
  RoundTrip rt;
  const Schedule restored =
      schedule_from_text(*rt.dag, schedule_to_text(*rt.result.schedule));
  // Identical completion envelope and identical deterministic executions.
  EXPECT_EQ(restored.completion(), rt.result.schedule->completion());
  for (SamplingMode mode : {SamplingMode::kAllMin, SamplingMode::kAllMax}) {
    Rng r1(5), r2(5);
    const ExecTrace a = simulate(*rt.result.schedule, {MachineKind::kSBM, mode}, r1);
    const ExecTrace b = simulate(restored, {MachineKind::kSBM, mode}, r2);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.finish, b.finish);
  }
}

TEST(Serialize, PreservesBarrierLatency) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, Operand::tuple(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2, /*barrier_latency=*/7);
  sched.append_instr(0, 0);
  sched.append_instr(0, 1);
  const Schedule restored = schedule_from_text(dag, schedule_to_text(sched));
  EXPECT_EQ(restored.barrier_latency(), 7);
}

TEST(Serialize, SecondRoundTripIsIdentity) {
  RoundTrip rt;
  const std::string once = schedule_to_text(*rt.result.schedule);
  const std::string twice =
      schedule_to_text(schedule_from_text(*rt.dag, once));
  EXPECT_EQ(schedule_to_text(schedule_from_text(*rt.dag, twice)), twice);
}

TEST(Serialize, RejectsMalformedInput) {
  RoundTrip rt;
  EXPECT_THROW(schedule_from_text(*rt.dag, "nonsense"), Error);
  EXPECT_THROW(schedule_from_text(*rt.dag, "schedule v1\nprocs x"), Error);
  // Wrong instruction count.
  EXPECT_THROW(
      schedule_from_text(*rt.dag,
                         "schedule v1\nprocs 2 instrs 1 barriers 0\nP0: n0\nP1:\n"),
      Error);
}

TEST(Serialize, RejectsInconsistentMask) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  // Barrier declared across {0,1} but present only in P0's stream.
  const std::string text =
      "schedule v1\nprocs 2 instrs 1 barriers 1\nbarrier 1 mask 0,1\n"
      "P0: n0 B1\nP1:\n";
  EXPECT_THROW(schedule_from_text(dag, text), Error);
}

TEST(Serialize, RejectsUndeclaredStreamBarrier) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  const std::string text =
      "schedule v1\nprocs 2 instrs 1 barriers 0\nP0: n0 B9\nP1:\n";
  EXPECT_THROW(schedule_from_text(dag, text), Error);
}

}  // namespace
}  // namespace bm
