#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace bm {
namespace {

GeneratorConfig gen_config() {
  return GeneratorConfig{.num_statements = 25, .num_variables = 8,
                         .num_constants = 4, .const_max = 64};
}

TEST(Harness, BenchmarkRngStreamsAreIndependent) {
  Rng a = benchmark_rng(1990, 0);
  Rng b = benchmark_rng(1990, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Harness, BenchmarkRngReproducible) {
  Rng a = benchmark_rng(7, 3);
  Rng b = benchmark_rng(7, 3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Harness, RunPointIsReproducible) {
  RunOptions opt;
  opt.seeds = 8;
  SchedulerConfig cfg;
  const PointAggregate a = run_point(gen_config(), cfg, opt);
  const PointAggregate b = run_point(gen_config(), cfg, opt);
  EXPECT_DOUBLE_EQ(a.fractions.barrier_frac.mean(),
                   b.fractions.barrier_frac.mean());
  EXPECT_DOUBLE_EQ(a.fractions.completion_max.mean(),
                   b.fractions.completion_max.mean());
}

TEST(Harness, HookSeesEveryBenchmark) {
  RunOptions opt;
  opt.seeds = 5;
  SchedulerConfig cfg;
  std::vector<std::size_t> seen;
  run_point(gen_config(), cfg, opt,
            [&](const BenchmarkOutcome& o) { seen.push_back(o.seed_index); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Harness, FractionsAreWellFormed) {
  RunOptions opt;
  opt.seeds = 10;
  SchedulerConfig cfg;
  const PointAggregate agg = run_point(gen_config(), cfg, opt);
  EXPECT_EQ(agg.fractions.barrier_frac.count(), 10u);
  EXPECT_GE(agg.fractions.barrier_frac.mean(), 0.0);
  EXPECT_LE(agg.fractions.barrier_frac.max(), 1.0);
  EXPECT_GE(agg.fractions.serialized_frac.min(), 0.0);
  EXPECT_LE(agg.fractions.serialized_frac.max(), 1.0);
  EXPECT_GT(agg.fractions.implied_syncs.mean(), 0.0);
  EXPECT_GT(agg.program_size.mean(), 0.0);
}

TEST(Harness, VliwAndSimulationOutputs) {
  RunOptions opt;
  opt.seeds = 5;
  opt.with_vliw = true;
  opt.sim_runs = 5;
  opt.validate_draws = true;
  SchedulerConfig cfg;
  const PointAggregate agg = run_point(gen_config(), cfg, opt);
  EXPECT_EQ(agg.violation_count, 0u);
  EXPECT_EQ(agg.vliw_makespan.count(), 5u);
  EXPECT_GT(agg.vliw_makespan.mean(), 0.0);
  EXPECT_EQ(agg.norm_min.count(), 5u);
  // All-min completion can't exceed all-max completion, normalized or not.
  EXPECT_LE(agg.norm_min.mean(), agg.norm_max.mean());
  // Simulated mean sits inside the envelope.
  EXPECT_GE(agg.norm_mean.mean(), agg.norm_min.mean() - 1e-9);
  EXPECT_LE(agg.norm_mean.mean(), agg.norm_max.mean() + 1e-9);
}

TEST(Harness, CustomTimingModelFlowsThrough) {
  RunOptions opt;
  opt.seeds = 5;
  opt.timing = TimingModel::table1_with_variation(0.0);  // fully fixed times
  SchedulerConfig cfg;
  const PointAggregate agg = run_point(gen_config(), cfg, opt);
  // Deterministic instruction times: completion range collapses.
  EXPECT_DOUBLE_EQ(agg.fractions.completion_min.mean(),
                   agg.fractions.completion_max.mean());
}

TEST(Metrics, AggregateAccumulatesSchedulerStats) {
  ScheduleStats s;
  s.implied_syncs = 10;
  s.serialized_edges = 6;
  s.cross_edges = 4;
  s.barriers_final = 1;
  s.cross_path_satisfied = 2;
  s.cross_timing_satisfied = 1;
  s.completion = {10, 20};
  FractionAggregate agg;
  agg.add(s);
  agg.add(s);
  EXPECT_EQ(agg.barrier_frac.count(), 2u);
  EXPECT_DOUBLE_EQ(agg.barrier_frac.mean(), 0.1);
  EXPECT_DOUBLE_EQ(agg.serialized_frac.mean(), 0.6);
  EXPECT_DOUBLE_EQ(agg.static_frac.mean(), 0.3);
  EXPECT_DOUBLE_EQ(agg.no_runtime_frac.mean(), 0.9);
  EXPECT_DOUBLE_EQ(agg.cross_resolved_frac.mean(), 0.75);
  EXPECT_DOUBLE_EQ(agg.completion_min.mean(), 10.0);
  EXPECT_DOUBLE_EQ(agg.completion_max.mean(), 20.0);
}

TEST(Metrics, ZeroImpliedSyncsYieldZeroFractions) {
  ScheduleStats s;
  EXPECT_EQ(s.barrier_fraction(), 0.0);
  EXPECT_EQ(s.serialized_fraction(), 0.0);
  EXPECT_EQ(s.static_fraction(), 0.0);
  FractionAggregate agg;
  agg.add(s);  // cross_edges == 0: cross_resolved skipped
  EXPECT_EQ(agg.cross_resolved_frac.count(), 0u);
}

}  // namespace
}  // namespace bm
