// TSan-targeted stress tests for the serving core's shared structures.
// These are the racy schedules the model checker (tests/interleave_test.cpp)
// proves correct on small programs, scaled up to real threads so that a
// regression shows up as a ThreadSanitizer report in the tsan CI job and,
// with luck, as an assertion failure in the plain job:
//  - ScheduleCache: lookups racing inserts with a capacity small enough
//    that every insert evicts — a hit must never observe a half-built or
//    half-destroyed entry, and the stats partition must stay exact;
//  - ServeCore: stats_json()/stats() snapshots hammered concurrently with
//    drain() while workers finish a gated backlog — the final partition
//    invariant received == completed+rejected+cancelled+errors must hold
//    and queued must reach zero.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/core.hpp"

namespace bm {
namespace {

using namespace bm::serve;

// ---------------------------------------------------------------------------
// ScheduleCache: eviction-during-hit.

std::string canon_bytes(std::uint64_t key) {
  return "prog-" + std::to_string(key);
}

// No `n<id>` tokens: rewrite_schedule_ids passes the text through, so the
// test needs no canonical permutation plumbing.
std::string payload(std::uint64_t key, int version) {
  return "payload-" + std::to_string(key) + "-v" + std::to_string(version);
}

TEST(ConcurrencyStress, CacheEvictionRacesHits) {
  // Capacity 3 with 8 hot keys: most inserts evict, so lookups constantly
  // race entry destruction and LRU splicing.
  constexpr std::size_t kCapacity = 3;
  constexpr std::uint64_t kKeys = 8;
  constexpr int kItersPerThread = 4000;
  ScheduleCache cache(kCapacity, 1u << 20);

  ScheduleStats stats;
  for (std::uint64_t k = 0; k < kKeys; ++k)
    cache.insert(k, /*config_digest=*/7, canon_bytes(k), payload(k, 0), stats);

  std::atomic<std::uint64_t> lookups{0};
  std::atomic<int> bad{0};

  auto reader = [&](unsigned seed) {
    std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
    for (int i = 0; i < kItersPerThread; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const std::uint64_t k = x % kKeys;
      const std::string bytes = canon_bytes(k);
      const ScheduleCache::Hit hit = cache.lookup(k, 7, bytes, {});
      lookups.fetch_add(1, std::memory_order_relaxed);  // mo: test tally
      if (hit.found) {
        // Whatever version won the insert race, the payload must belong
        // to this key — a torn or cross-key read is corruption.
        const std::string want = "payload-" + std::to_string(k) + "-v";
        if (hit.schedule_text.compare(0, want.size(), want) != 0)
          bad.fetch_add(1, std::memory_order_relaxed);  // mo: test tally
      }
    }
  };
  auto writer = [&](unsigned seed) {
    std::uint64_t x = seed * 0xD1B54A32D192ED03ull + 1;
    for (int i = 0; i < kItersPerThread; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const std::uint64_t k = x % kKeys;
      cache.insert(k, 7, canon_bytes(k), payload(k, i), stats);
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(reader, 1u);
  threads.emplace_back(reader, 2u);
  threads.emplace_back(writer, 3u);
  threads.emplace_back(writer, 4u);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(bad.load(), 0) << "hit returned a payload from the wrong key";
  const CacheStats cs = cache.stats();
  EXPECT_LE(cs.entries, kCapacity);
  EXPECT_EQ(cs.hits + cs.misses,
            lookups.load())  // collisions are a subset of misses
      << "every lookup must be classified exactly once";
  EXPECT_EQ(cs.collisions, 0u) << "keys and bytes agree by construction";
  EXPECT_GE(cs.insertions, kKeys);
  EXPECT_GT(cs.evictions, 0u) << "capacity 3 with 8 keys must evict";
}

// ---------------------------------------------------------------------------
// ServeCore: stats snapshots racing drain().

TEST(ConcurrencyStress, StatsSnapshotDuringDrain) {
  constexpr std::uint64_t kRequests = 48;

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool released = false;

  CoreConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = kRequests;  // admit everything we submit
  cfg.pre_handle = [&](const Request&) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return released; });
  };
  ServeCore core(cfg);

  std::atomic<std::uint64_t> answered{0};
  std::vector<CancelToken> tokens;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    Request req;
    req.id = i;
    req.verb = Verb::kPing;
    tokens.push_back(core.submit(req, [&](const Response&) {
      answered.fetch_add(1, std::memory_order_relaxed);  // mo: test tally
    }));
  }

  // Cancel a slice of the backlog so drain() has every outcome class to
  // account for while the snapshots run.
  for (std::size_t i = 0; i < tokens.size(); i += 5) tokens[i].cancel();

  std::atomic<bool> stop_snapshots{false};
  std::thread snapshotter([&] {
    while (!stop_snapshots.load(std::memory_order_relaxed)) {  // mo: test flag
      const std::string json = core.stats_json();
      EXPECT_NE(json.find("\"received\""), std::string::npos);
      const CoreStats s = core.stats();
      // A mid-flight snapshot must still be internally consistent: nothing
      // is counted twice and nothing is dropped.
      EXPECT_EQ(s.received,
                s.completed + s.rejected + s.cancelled + s.errors + s.queued);
    }
  });

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    released = true;
  }
  gate_cv.notify_all();

  core.drain();
  stop_snapshots.store(true, std::memory_order_relaxed);  // mo: test flag
  snapshotter.join();

  EXPECT_EQ(answered.load(), kRequests) << "every admitted request answered";
  const CoreStats s = core.stats();
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.received, kRequests);
  EXPECT_EQ(s.received, s.completed + s.rejected + s.cancelled + s.errors);
  EXPECT_GT(s.completed, 0u);

  // Post-drain submissions reject immediately, on the caller.
  Request late;
  late.id = kRequests + 1;
  late.verb = Verb::kPing;
  bool late_rejected = false;
  core.submit(late, [&](const Response& r) {
    late_rejected = (r.status == Status::kRejected);
  });
  EXPECT_TRUE(late_rejected);
}

}  // namespace
}  // namespace bm
