// The observability core: sharded counter aggregation across pool threads
// (including shards retired by exited threads), snapshot/delta semantics,
// histograms, gauges, and the Chrome-trace JSON writer. Metric state is
// process-global, so every test uses its own metric names and asserts on
// before/after deltas, never absolute values.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace bm {
namespace {

double counter_delta(const obs::Snapshot& before, const obs::Snapshot& after,
                     std::string_view key) {
  return after.get(key, 0) - before.get(key, 0);
}

TEST(Metrics, CounterAggregatesAcrossPoolThreads) {
  const obs::Counter c = obs::counter("test.shard_sum");
  const obs::Snapshot before = obs::snapshot();

  ThreadPool pool(4);
  pool.parallel_for(1000, [&c](std::size_t i) { c.add(i % 3 + 1); });
  // sum over i in [0,1000) of (i % 3 + 1): 334*1 + 333*2 + 333*3 = 1999.
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.shard_sum"), 1999.0);
}

TEST(Metrics, RetiredThreadShardsFoldIntoSnapshot) {
  const obs::Counter c = obs::counter("test.retired");
  const obs::Snapshot before = obs::snapshot();
  {
    ThreadPool pool(3);
    pool.parallel_for(30, [&c](std::size_t) { c.add(2); });
  }  // workers join here; their shards retire into the global totals
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.retired"), 60.0);
}

TEST(Metrics, CounterByNameSharesOneSlot) {
  const obs::Counter a = obs::counter("test.same_name");
  const obs::Counter b = obs::counter("test.same_name");
  const obs::Snapshot before = obs::snapshot();
  a.add(1);
  b.add(2);
  EXPECT_EQ(counter_delta(before, obs::snapshot(), "test.same_name"), 3.0);
}

TEST(Metrics, HistogramExportsCountAndSum) {
  const obs::Histogram h = obs::histogram("test.hist");
  const obs::Snapshot before = obs::snapshot();
  h.observe(5);
  h.observe(7);
  h.observe(0);
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.hist.count"), 3.0);
  EXPECT_EQ(counter_delta(before, after, "test.hist.sum"), 12.0);
}

TEST(Metrics, HistogramBucketsExposeFullDistribution) {
  const obs::Histogram h = obs::histogram("test.bucket_hist");
  ThreadPool pool(4);
  // 1..400 from four threads: stresses the shard merge underneath.
  pool.parallel_for(400, [&h](std::size_t i) { h.observe(i + 1); });

  const obs::LatencyBuckets b = obs::histogram_buckets("test.bucket_hist");
  EXPECT_EQ(b.count, 400u);
  EXPECT_EQ(b.sum, 400u * 401u / 2);
  EXPECT_EQ(b.max, 400u);
  // Quantiles come out of the bucketed distribution: within one log bucket
  // (≤25%) of the exact order statistics.
  EXPECT_GE(b.quantile(0.50), 200u);
  EXPECT_LE(b.quantile(0.50), 250u);
  EXPECT_GE(b.quantile(0.99), 396u);
  EXPECT_LE(b.quantile(0.99), 400u);
}

TEST(Metrics, HistogramBucketsUnknownNameIsEmpty) {
  const obs::LatencyBuckets b =
      obs::histogram_buckets("test.never_registered_hist");
  EXPECT_EQ(b.count, 0u);
  EXPECT_EQ(b.quantile(0.99), 0u);
}

TEST(Latency, BucketBoundsTileTheAxis) {
  for (const std::uint64_t v :
       {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull, 123456ull,
        1ull << 40, ~0ull}) {
    const std::size_t b = obs::latency_bucket(v);
    ASSERT_LT(b, obs::kLatencyBuckets);
    EXPECT_LE(obs::latency_bucket_lower(b), v);
    EXPECT_GE(obs::latency_bucket_upper(b), v);
  }
  for (std::size_t b = 0; b + 1 < obs::kLatencyBuckets; ++b)
    EXPECT_EQ(obs::latency_bucket_lower(b + 1),
              obs::latency_bucket_upper(b) + 1);
  // Above the exact range, relative width stays ≤ 25% of the lower bound.
  for (std::size_t b = 16; b + 1 < obs::kLatencyBuckets; ++b)
    EXPECT_LE(obs::latency_bucket_upper(b) - obs::latency_bucket_lower(b) + 1,
              obs::latency_bucket_lower(b) / 4);
}

TEST(Latency, QuantileWithinOneBucketOfSortedExact) {
  // Deterministic LCG stream with a heavy tail — the shape bmload sees.
  std::vector<std::uint64_t> vals;
  obs::LatencyBuckets h;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t v = (x >> 33) % 3000;
    if (i % 100 == 0) v *= 50;  // outliers
    vals.push_back(v);
    h.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double q : {0.50, 0.90, 0.99}) {
    // Same nearest-rank convention as LatencyBuckets::quantile.
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(vals.size()));
    if (static_cast<double>(rank) < q * static_cast<double>(vals.size()))
      ++rank;
    const std::uint64_t exact = vals[rank - 1];
    const std::uint64_t approx = h.quantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, obs::latency_bucket_upper(obs::latency_bucket(exact)))
        << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), vals.back());
}

TEST(Latency, HistogramMergesAcrossThreads) {
  obs::LatencyHistogram shard_a, shard_b;
  ThreadPool pool(2);
  pool.parallel_for(1000, [&](std::size_t i) {
    (i % 2 == 0 ? shard_a : shard_b).observe(i);
  });
  obs::LatencyBuckets merged = shard_a.snapshot();
  merged.merge(shard_b.snapshot());
  EXPECT_EQ(merged.count, 1000u);
  EXPECT_EQ(merged.sum, 999u * 1000u / 2);
  EXPECT_EQ(merged.max, 999u);
}

TEST(Latency, WindowedRotationExpiresOldSlots) {
  obs::WindowedLatencyHistogram w(/*slot_width_us=*/1000);
  w.observe(500, 42);  // epoch 0
  EXPECT_EQ(w.window(500).count, 1u);
  // Still inside the trailing 8-slot window.
  EXPECT_EQ(w.window(7 * 1000 + 999).count, 1u);
  // 8 epochs later the slot has aged out.
  EXPECT_EQ(w.window(8 * 1000).count, 0u);
  // A new observation reclaims and resets the slot.
  w.observe(16 * 1000 + 1, 7);  // epoch 16 reuses slot 0
  const obs::LatencyBuckets win = w.window(16 * 1000 + 2);
  EXPECT_EQ(win.count, 1u);
  EXPECT_EQ(win.max, 7u);
}

TEST(Trace, WriteTraceEventsJsonHonorsLaneNames) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent e;
  e.name = "phase_x";
  e.cat = "test";
  e.ts = 10;
  e.dur = 5;
  e.tid = 3;
  events.push_back(e);

  std::ostringstream os;
  const std::size_t n = obs::write_trace_events_json(
      os, events, {{obs::kWallPid, "unit process"}},
      {{obs::kWallPid, 3, "custom lane"}});
  EXPECT_EQ(n, 1u);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"unit process\""), std::string::npos);
  EXPECT_NE(out.find("\"custom lane\""), std::string::npos);
  EXPECT_NE(out.find("\"phase_x\""), std::string::npos);
  // Unnamed lanes keep the default naming.
  EXPECT_EQ(out.find("thread 3"), std::string::npos);
}

TEST(Metrics, DeltaDropsUntouchedAndKeepsGaugeValue) {
  const obs::Counter touched = obs::counter("test.delta_touched");
  obs::counter("test.delta_untouched");  // registered but never bumped
  const obs::Gauge g = obs::gauge("test.delta_gauge");
  g.set(17);

  const obs::Snapshot before = obs::snapshot();
  touched.add(4);
  g.set(42);
  const obs::Snapshot d = obs::delta(before, obs::snapshot());

  EXPECT_EQ(d.get("test.delta_touched", -1), 4.0);
  // Monotonic metrics that saw no traffic during the window disappear.
  EXPECT_EQ(d.get("test.delta_untouched", -1), -1.0);
  // Gauges report their current value, not a difference.
  EXPECT_EQ(d.get("test.delta_gauge", -1), 42.0);
}

TEST(Metrics, SnapshotKeysAreSorted) {
  obs::counter("test.zz_order");
  obs::counter("test.aa_order");
  const obs::Snapshot s = obs::snapshot();
  for (std::size_t i = 1; i < s.entries.size(); ++i)
    EXPECT_LT(s.entries[i - 1].key, s.entries[i].key);
}

TEST(Trace, SpansProduceValidTraceEventsJson) {
  obs::trace_start();
  {
    obs::PhaseTimer outer("unit.outer", "test");
    obs::PhaseTimer inner("unit.inner", "test", "weight", 3);
  }
  obs::instant("unit.mark", "test");
  obs::sim_span("stall", "sim", 2, 100.0, 25.0, "barrier", 7);
  obs::sim_instant("fire", "sim", 2, 125.0);
  obs::trace_stop();

  std::ostringstream os;
  const std::size_t events = obs::trace_write_json(os);
  EXPECT_GE(events, 5u);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"unit.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"weight\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Both timelines are named for the viewer.
  EXPECT_NE(json.find("\"wall clock\""), std::string::npos);
  EXPECT_NE(json.find("\"simulated machine\""), std::string::npos);
  // The sim events landed on PE lane 2 of the simulated-machine pid.
  EXPECT_NE(json.find("\"pid\":2,\"tid\":2"), std::string::npos);
}

TEST(Trace, DisabledByDefaultAndClearedOnStart) {
  EXPECT_FALSE(obs::tracing_enabled());
  { obs::PhaseTimer t("unit.should_not_record", "test"); }

  obs::trace_start();  // clears anything buffered above
  obs::trace_stop();
  std::ostringstream os;
  obs::trace_write_json(os);
  EXPECT_EQ(os.str().find("unit.should_not_record"), std::string::npos);
}

TEST(Trace, PhaseSummaryAggregatesByName) {
  obs::trace_start();
  { obs::PhaseTimer t("unit.phase_a", "test"); }
  { obs::PhaseTimer t("unit.phase_a", "test"); }
  { obs::PhaseTimer t("unit.phase_b", "test"); }
  obs::trace_stop();

  bool saw_a = false;
  for (const obs::PhaseSummaryRow& r : obs::phase_summary()) {
    if (r.name == "unit.phase_a") {
      saw_a = true;
      EXPECT_EQ(r.count, 2u);
      EXPECT_GE(r.total_us, r.max_us);
    }
  }
  EXPECT_TRUE(saw_a);
}

#if BM_OBS_ENABLED
TEST(ObsMacros, CountAndObserveReachTheRegistry) {
  const obs::Snapshot before = obs::snapshot();
  BM_OBS_COUNT("test.macro_count");
  BM_OBS_COUNT_N("test.macro_count", 4);
  BM_OBS_OBSERVE("test.macro_hist", 9);
  BM_OBS_GAUGE_SET("test.macro_gauge", -5);
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.macro_count"), 5.0);
  EXPECT_EQ(counter_delta(before, after, "test.macro_hist.sum"), 9.0);
  EXPECT_EQ(after.get("test.macro_gauge", 0), -5.0);
}
#endif

}  // namespace
}  // namespace bm
