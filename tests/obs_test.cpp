// The observability core: sharded counter aggregation across pool threads
// (including shards retired by exited threads), snapshot/delta semantics,
// histograms, gauges, and the Chrome-trace JSON writer. Metric state is
// process-global, so every test uses its own metric names and asserts on
// before/after deltas, never absolute values.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace bm {
namespace {

double counter_delta(const obs::Snapshot& before, const obs::Snapshot& after,
                     std::string_view key) {
  return after.get(key, 0) - before.get(key, 0);
}

TEST(Metrics, CounterAggregatesAcrossPoolThreads) {
  const obs::Counter c = obs::counter("test.shard_sum");
  const obs::Snapshot before = obs::snapshot();

  ThreadPool pool(4);
  pool.parallel_for(1000, [&c](std::size_t i) { c.add(i % 3 + 1); });
  // sum over i in [0,1000) of (i % 3 + 1): 334*1 + 333*2 + 333*3 = 1999.
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.shard_sum"), 1999.0);
}

TEST(Metrics, RetiredThreadShardsFoldIntoSnapshot) {
  const obs::Counter c = obs::counter("test.retired");
  const obs::Snapshot before = obs::snapshot();
  {
    ThreadPool pool(3);
    pool.parallel_for(30, [&c](std::size_t) { c.add(2); });
  }  // workers join here; their shards retire into the global totals
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.retired"), 60.0);
}

TEST(Metrics, CounterByNameSharesOneSlot) {
  const obs::Counter a = obs::counter("test.same_name");
  const obs::Counter b = obs::counter("test.same_name");
  const obs::Snapshot before = obs::snapshot();
  a.add(1);
  b.add(2);
  EXPECT_EQ(counter_delta(before, obs::snapshot(), "test.same_name"), 3.0);
}

TEST(Metrics, HistogramExportsCountAndSum) {
  const obs::Histogram h = obs::histogram("test.hist");
  const obs::Snapshot before = obs::snapshot();
  h.observe(5);
  h.observe(7);
  h.observe(0);
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.hist.count"), 3.0);
  EXPECT_EQ(counter_delta(before, after, "test.hist.sum"), 12.0);
}

TEST(Metrics, DeltaDropsUntouchedAndKeepsGaugeValue) {
  const obs::Counter touched = obs::counter("test.delta_touched");
  obs::counter("test.delta_untouched");  // registered but never bumped
  const obs::Gauge g = obs::gauge("test.delta_gauge");
  g.set(17);

  const obs::Snapshot before = obs::snapshot();
  touched.add(4);
  g.set(42);
  const obs::Snapshot d = obs::delta(before, obs::snapshot());

  EXPECT_EQ(d.get("test.delta_touched", -1), 4.0);
  // Monotonic metrics that saw no traffic during the window disappear.
  EXPECT_EQ(d.get("test.delta_untouched", -1), -1.0);
  // Gauges report their current value, not a difference.
  EXPECT_EQ(d.get("test.delta_gauge", -1), 42.0);
}

TEST(Metrics, SnapshotKeysAreSorted) {
  obs::counter("test.zz_order");
  obs::counter("test.aa_order");
  const obs::Snapshot s = obs::snapshot();
  for (std::size_t i = 1; i < s.entries.size(); ++i)
    EXPECT_LT(s.entries[i - 1].key, s.entries[i].key);
}

TEST(Trace, SpansProduceValidTraceEventsJson) {
  obs::trace_start();
  {
    obs::PhaseTimer outer("unit.outer", "test");
    obs::PhaseTimer inner("unit.inner", "test", "weight", 3);
  }
  obs::instant("unit.mark", "test");
  obs::sim_span("stall", "sim", 2, 100.0, 25.0, "barrier", 7);
  obs::sim_instant("fire", "sim", 2, 125.0);
  obs::trace_stop();

  std::ostringstream os;
  const std::size_t events = obs::trace_write_json(os);
  EXPECT_GE(events, 5u);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"unit.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"weight\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Both timelines are named for the viewer.
  EXPECT_NE(json.find("\"wall clock\""), std::string::npos);
  EXPECT_NE(json.find("\"simulated machine\""), std::string::npos);
  // The sim events landed on PE lane 2 of the simulated-machine pid.
  EXPECT_NE(json.find("\"pid\":2,\"tid\":2"), std::string::npos);
}

TEST(Trace, DisabledByDefaultAndClearedOnStart) {
  EXPECT_FALSE(obs::tracing_enabled());
  { obs::PhaseTimer t("unit.should_not_record", "test"); }

  obs::trace_start();  // clears anything buffered above
  obs::trace_stop();
  std::ostringstream os;
  obs::trace_write_json(os);
  EXPECT_EQ(os.str().find("unit.should_not_record"), std::string::npos);
}

TEST(Trace, PhaseSummaryAggregatesByName) {
  obs::trace_start();
  { obs::PhaseTimer t("unit.phase_a", "test"); }
  { obs::PhaseTimer t("unit.phase_a", "test"); }
  { obs::PhaseTimer t("unit.phase_b", "test"); }
  obs::trace_stop();

  bool saw_a = false;
  for (const obs::PhaseSummaryRow& r : obs::phase_summary()) {
    if (r.name == "unit.phase_a") {
      saw_a = true;
      EXPECT_EQ(r.count, 2u);
      EXPECT_GE(r.total_us, r.max_us);
    }
  }
  EXPECT_TRUE(saw_a);
}

#if BM_OBS_ENABLED
TEST(ObsMacros, CountAndObserveReachTheRegistry) {
  const obs::Snapshot before = obs::snapshot();
  BM_OBS_COUNT("test.macro_count");
  BM_OBS_COUNT_N("test.macro_count", 4);
  BM_OBS_OBSERVE("test.macro_hist", 9);
  BM_OBS_GAUGE_SET("test.macro_gauge", -5);
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.macro_count"), 5.0);
  EXPECT_EQ(counter_delta(before, after, "test.macro_hist.sum"), 9.0);
  EXPECT_EQ(after.get("test.macro_gauge", 0), -5.0);
}
#endif

}  // namespace
}  // namespace bm
