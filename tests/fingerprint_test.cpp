// Canonical DAG fingerprint (serve/fingerprint.hpp):
//  - golden fixtures: fingerprints of the 100-schedule parity corpus
//    programs, committed in tests/golden/fingerprints.txt (regenerate with
//    BM_GOLDEN_REGEN=1 ./build/fingerprint_test after intentional changes);
//  - invariance: permuting instruction uids and valid reorderings of the
//    tuple list leave the fingerprint (and the canonical bytes) unchanged;
//  - sensitivity: any semantic edit — opcode, constant, operand wiring,
//    memory dependence — changes the fingerprint;
//  - the schedule-id rewriter round-trips through a permutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/synthesize.hpp"
#include "serve/fingerprint.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

using serve::CanonicalProgram;
using serve::canonicalize_program;
using serve::config_digest;
using serve::fingerprint_hex;
using serve::program_fingerprint;
using serve::rewrite_schedule_ids;

constexpr std::uint64_t kBaseSeed = 1990;
constexpr std::size_t kSeeds = 100;  // matches the golden parity corpus

Program corpus_program(std::size_t i) {
  GeneratorConfig gen;
  Rng rng = benchmark_rng(kBaseSeed, i);
  return synthesize_benchmark(gen, rng).program;
}

/// Reorders the tuple list by `order` (new index -> old index), rewriting
/// operand references. `order` must be a valid topological order of the
/// dataflow for the result to pass validate(). uids travel with tuples.
Program permute_program(const Program& in,
                        const std::vector<std::uint32_t>& order) {
  std::vector<std::uint32_t> new_index(in.size());
  for (std::uint32_t n = 0; n < order.size(); ++n) new_index[order[n]] = n;

  Program out(in.num_vars());
  for (std::uint32_t n = 0; n < order.size(); ++n) {
    Tuple t = in[order[n]];
    for (int k = 0; k < t.operand_count(); ++k)
      if (t.operand(k).is_tuple())
        t.operand(k) = Operand::tuple(new_index[t.operand(k).tuple_id()]);
    out.append(t);
  }
  return out;
}

/// A topological reorder that actually moves things: repeatedly picks the
/// *last* ready tuple instead of the first. Memory edges are respected by
/// keeping loads/stores of each variable in their original relative order.
std::vector<std::uint32_t> reversed_ready_order(const Program& prog) {
  const std::size_t n = prog.size();
  // prev_mem[i]: the latest earlier tuple touching the same variable with a
  // conflicting access (conservative: any same-var access). Coarser than
  // the real dependence rules, so any order it admits is dependence-valid.
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> succs(n);
  auto add_edge = [&](std::uint32_t a, std::uint32_t b) {
    succs[a].push_back(b);
    ++indegree[b];
  };
  std::vector<std::uint32_t> last_touch(prog.num_vars(), ~0u);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Tuple& t = prog[i];
    for (int k = 0; k < t.operand_count(); ++k)
      if (t.operand(k).is_tuple()) add_edge(t.operand(k).tuple_id(), i);
    if (t.is_load() || t.is_store()) {
      if (last_touch[t.var] != ~0u) add_edge(last_touch[t.var], i);
      last_touch[t.var] = i;
    }
  }
  std::vector<std::uint32_t> ready, order;
  for (std::uint32_t i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const std::uint32_t i = ready.back();  // last ready first
    ready.pop_back();
    order.push_back(i);
    for (std::uint32_t s : succs[i])
      if (--indegree[s] == 0) ready.push_back(s);
  }
  EXPECT_EQ(order.size(), n);
  return order;
}

TEST(Fingerprint, GoldenCorpusFixtures) {
  std::ostringstream os;
  os << "fingerprints v1 base_seed=" << kBaseSeed << " seeds=" << kSeeds
     << "\n";
  for (std::size_t i = 0; i < kSeeds; ++i)
    os << i << " " << fingerprint_hex(program_fingerprint(corpus_program(i)))
       << "\n";
  const std::string current = os.str();
  const std::string path = std::string(BM_GOLDEN_DIR) + "/fingerprints.txt";

  if (std::getenv("BM_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << current;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing " << path
                  << " — regenerate with: BM_GOLDEN_REGEN=1 "
                     "./build/fingerprint_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(current, expected.str())
      << "canonical fingerprints changed — renumbering-stable cache keys "
         "broke, or the hash was intentionally revised (then regenerate)";
}

TEST(Fingerprint, InvariantUnderUidRenumbering) {
  for (std::size_t i = 0; i < 10; ++i) {
    Program prog = corpus_program(i);
    const CanonicalProgram before = canonicalize_program(prog);
    // uids are display-only; scramble them hard.
    for (std::size_t t = 0; t < prog.size(); ++t)
      prog[t].uid = static_cast<std::uint32_t>(9000 + 7 * t);
    const CanonicalProgram after = canonicalize_program(prog);
    EXPECT_EQ(before.fingerprint, after.fingerprint) << "seed " << i;
    EXPECT_EQ(before.bytes, after.bytes) << "seed " << i;
  }
}

TEST(Fingerprint, InvariantUnderValidReordering) {
  std::size_t moved_programs = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const Program prog = corpus_program(i);
    const std::vector<std::uint32_t> order = reversed_ready_order(prog);
    bool moved = false;
    for (std::uint32_t n = 0; n < order.size(); ++n)
      if (order[n] != n) moved = true;
    if (moved) ++moved_programs;

    const Program shuffled = permute_program(prog, order);
    shuffled.validate();
    const CanonicalProgram a = canonicalize_program(prog);
    const CanonicalProgram b = canonicalize_program(shuffled);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << i;
    EXPECT_EQ(a.bytes, b.bytes) << "seed " << i;
    // (The perm/inv_perm pairs may legitimately differ on automorphic
    // nodes; equal canonical bytes is the contract the cache relies on.)
  }
  EXPECT_GT(moved_programs, 0u)
      << "reordering harness produced only identity permutations — the "
         "invariance claim was never exercised";
}

TEST(Fingerprint, SensitiveToSemanticEdits) {
  Program base = corpus_program(0);
  const std::uint64_t fp = program_fingerprint(base);

  // Opcode change on some binary tuple.
  {
    Program p = base;
    for (std::size_t t = 0; t < p.size(); ++t)
      if (p[t].is_binary()) {
        p[t].op = p[t].op == Opcode::kAdd ? Opcode::kSub : Opcode::kAdd;
        break;
      }
    EXPECT_NE(program_fingerprint(p), fp) << "opcode edit went unnoticed";
  }
  // Constant operand change.
  {
    Program p = base;
    bool edited = false;
    for (std::size_t t = 0; t < p.size() && !edited; ++t)
      for (int k = 0; k < p[t].operand_count(); ++k)
        if (p[t].operand(k).is_const()) {
          p[t].operand(k) =
              Operand::constant(p[t].operand(k).const_value() + 1);
          edited = true;
          break;
        }
    ASSERT_TRUE(edited);
    EXPECT_NE(program_fingerprint(p), fp) << "constant edit went unnoticed";
  }
  // Operand rewiring: point a consumer at a different producer.
  {
    Program p = base;
    bool edited = false;
    for (std::size_t t = 0; t < p.size() && !edited; ++t)
      for (int k = 0; k < p[t].operand_count(); ++k) {
        const Operand& o = p[t].operand(k);
        if (o.is_tuple() && o.tuple_id() > 0) {
          p[t].operand(k) = Operand::tuple(o.tuple_id() - 1);
          if (p[t].operand_count() == 2 && p[t].operand(0) == p[t].operand(1))
            continue;  // would hit the duplicate-edge rule, pick another
          edited = true;
          break;
        }
      }
    ASSERT_TRUE(edited);
    p.validate();
    EXPECT_NE(program_fingerprint(p), fp) << "rewiring went unnoticed";
  }
}

TEST(Fingerprint, ConfigDigestSeparatesParameters) {
  const TimingModel tm = TimingModel::table1();
  SchedulerConfig a;
  const std::uint64_t base = config_digest(a, tm, 1);

  SchedulerConfig b = a;
  b.num_procs = 16;
  EXPECT_NE(config_digest(b, tm, 1), base);
  b = a;
  b.machine = MachineKind::kDBM;
  EXPECT_NE(config_digest(b, tm, 1), base);
  b = a;
  b.insertion = InsertionPolicy::kOptimal;
  EXPECT_NE(config_digest(b, tm, 1), base);
  b = a;
  b.barrier_latency = 4;
  EXPECT_NE(config_digest(b, tm, 1), base);
  EXPECT_NE(config_digest(a, tm, 2), base) << "rng identity must key";
  EXPECT_NE(config_digest(a, TimingModel::table1_with_variation(4.0), 1),
            base)
      << "timing model must key";
  EXPECT_EQ(config_digest(a, tm, 1), base) << "digest must be deterministic";
}

TEST(Fingerprint, RewriteScheduleIdsMapsOnlyStreamTokens) {
  const std::string text =
      "schedule v1\n"
      "procs 2 instrs 3 barriers 1\n"
      "barrier 1 mask 0,1 final\n"
      "P0: n0 B1 n2\n"
      "P1: n1 B1\n";
  const std::vector<std::uint32_t> map = {10, 11, 12};
  const std::string out = rewrite_schedule_ids(text, map);
  EXPECT_EQ(out,
            "schedule v1\n"
            "procs 2 instrs 3 barriers 1\n"
            "barrier 1 mask 0,1 final\n"
            "P0: n10 B1 n12\n"
            "P1: n11 B1\n");
  // Round trip through the inverse permutation restores the input.
  std::vector<std::uint32_t> inv(13, 0);
  for (std::uint32_t i = 0; i < map.size(); ++i) inv[map[i]] = i;
  EXPECT_EQ(rewrite_schedule_ids(out, inv), text);
}

}  // namespace
}  // namespace bm
