// ThreadPool exception semantics: a throwing task must neither terminate
// the process (escaping exception on a worker thread) nor deadlock
// wait_idle (leaked in_flight_ tick). The first leaked exception surfaces
// on the caller at the next wait_idle, and the pool stays usable.
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "support/thread_pool.hpp"

namespace bm {
namespace {

TEST(ThreadPool, SubmitExceptionPropagatesToWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
}

TEST(ThreadPool, PoolStaysUsableAfterTaskThrows) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);

  // The error is cleared once delivered; later batches run normally.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, FirstOfManyExceptionsWins) {
  ThreadPool pool(4);
  // All tasks throw; exactly one exception reaches the caller and the rest
  // are dropped — wait_idle must still return (no deadlock, no terminate).
  for (int i = 0; i < 16; ++i)
    pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());  // delivered once, then cleared
}

TEST(ThreadPool, ThrowingTaskDoesNotBlockSiblings) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 32; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("index 7");
                        }),
      std::runtime_error);
  // parallel_for's own error path consumed the exception; the pool is idle
  // and clean for the next batch.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&sum](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, ParallelForJobsSerialPathPropagates) {
  // jobs <= 1 runs inline on the caller; the exception must surface there
  // too, with no pool involved.
  EXPECT_THROW(parallel_for_jobs(1, 5,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForJobsPooledPathPropagates) {
  EXPECT_THROW(parallel_for_jobs(4, 64,
                                 [](std::size_t i) {
                                   if (i == 40) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, CancelledTokenSkipsQueuedTask) {
  ThreadPool pool(1);
  std::mutex gate;
  gate.lock();  // hold the single worker so later submissions stay queued
  pool.submit([&gate] {
    gate.lock();
    gate.unlock();
  });

  std::atomic<int> ran{0};
  CancelToken keep, drop;
  pool.submit(keep, [&ran] { ++ran; });
  pool.submit(drop, [&ran] { ran += 100; });
  pool.submit(keep, [&ran] { ++ran; });
  drop.cancel();  // cancelled while still queued behind the gate

  gate.unlock();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(pool.cancelled_skips(), 1u);
}

TEST(ThreadPool, CancelAfterCompletionIsHarmless) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  CancelToken token;
  pool.submit(token, [&ran] { ++ran; });
  pool.wait_idle();
  token.cancel();  // too late to have any effect
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.cancelled_skips(), 0u);
}

TEST(ThreadPool, SkippedTaskReleasesItsClosure) {
  // A cancelled task's closure must be destroyed (captured resources
  // released) even though its body never runs.
  ThreadPool pool(1);
  std::mutex gate;
  gate.lock();
  pool.submit([&gate] {
    gate.lock();
    gate.unlock();
  });

  auto resource = std::make_shared<int>(42);
  std::weak_ptr<int> watch = resource;
  CancelToken token;
  pool.submit(token, [resource] { (void)*resource; });
  resource.reset();
  token.cancel();

  gate.unlock();
  pool.wait_idle();
  EXPECT_TRUE(watch.expired());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Shutdown must *drain*: every task submitted before destruction runs to
  // completion (unless its token was cancelled) — never silently dropped.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    std::mutex gate;
    gate.lock();
    pool.submit([&gate] {
      gate.lock();
      gate.unlock();
    });
    for (int i = 0; i < 16; ++i) pool.submit([&ran] { ++ran; });
    EXPECT_GT(pool.pending(), 0u);
    gate.unlock();
    // Destructor joins here with most tasks still queued.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, DestructorSkipsCancelledTasksWhileDraining) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    std::mutex gate;
    gate.lock();
    pool.submit([&gate] {
      gate.lock();
      gate.unlock();
    });
    CancelToken token;
    for (int i = 0; i < 8; ++i) pool.submit(token, [&ran] { ++ran; });
    for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
    token.cancel();
    gate.unlock();
  }
  EXPECT_EQ(ran.load(), 8);  // tokened tasks skipped, plain tasks drained
}

}  // namespace
}  // namespace bm
