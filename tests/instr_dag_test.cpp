#include <algorithm>
#include <functional>

#include <gtest/gtest.h>

#include "graph/instr_dag.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

/// The paper's example synthetic benchmark (Fig. 1), built through the
/// public API. Variables: i,a,b,f,d,j,c,h,e,g = 0..9. Tuple uids are the
/// paper's tuple numbers.
Program figure1_program() {
  Program p(10);
  p.append(Tuple::load(0, 0));                                 //  0 Load i
  p.append(Tuple::load(1, 1));                                 //  1 Load a
  p.append(Tuple::binary(2, Opcode::kAdd, T(0), T(1)));        //  2 Add 0,1
  p.append(Tuple::store(3, 2, T(2)));                          //  3 Store b,2
  p.append(Tuple::load(4, 3));                                 //  4 Load f
  p.append(Tuple::load(24, 4));                                // 24 Load d
  p.append(Tuple::load(5, 5));                                 //  5 Load j
  p.append(Tuple::load(12, 6));                                // 12 Load c
  p.append(Tuple::binary(26, Opcode::kAnd, T(4), T(5)));       // 26 And 4,24
  p.append(Tuple::binary(6, Opcode::kAdd, T(4), T(6)));        //  6 Add 4,5
  p.append(Tuple::binary(30, Opcode::kSub, T(8), T(4)));       // 30 Sub 26,4
  p.append(Tuple::binary(18, Opcode::kSub, T(9), T(0)));       // 18 Sub 6,0
  // Tuple 22 prints as "Add 1,2" in Fig. 1; its [2,5] finish column is only
  // consistent if the second operand is the constant 2, not tuple 2.
  p.append(Tuple::binary(22, Opcode::kAdd, T(1), C(2)));       // 22 Add 1,#2
  p.append(Tuple::binary(38, Opcode::kAdd, T(7), T(10)));      // 38 Add 12,30
  p.append(Tuple::store(19, 0, T(11)));                        // 19 Store i,18
  p.append(Tuple::store(23, 1, T(12)));                        // 23 Store a,22
  p.append(Tuple::store(27, 7, T(8)));                         // 27 Store h,26
  p.append(Tuple::store(31, 8, T(10)));                        // 31 Store e,30
  p.append(Tuple::store(39, 9, T(13)));                        // 39 Store g,38
  return p;
}

TEST(InstrDagFig1, AsapColumnsMatchThePaper) {
  const Program p = figure1_program();
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  // Expected min/max finish columns, in program order (Fig. 1).
  const std::vector<TimeRange> expected = {
      {1, 4}, {1, 4}, {2, 5}, {3, 6}, {1, 4}, {1, 4}, {1, 4},
      {1, 4}, {2, 5}, {2, 5}, {3, 6}, {3, 6}, {2, 5}, {4, 7},
      {4, 7}, {3, 6}, {3, 6}, {4, 7}, {5, 8}};
  const std::vector<TimeRange> actual = dag.asap_instruction_columns();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(actual[i], expected[i]) << "tuple uid " << p[i].uid;
}

TEST(InstrDagFig1, CriticalPathAndSyncCount) {
  const Program p = figure1_program();
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  EXPECT_EQ(dag.critical_path(), (TimeRange{5, 8}));
  // 19 dataflow edges + 2 anti edges (Load i → Store i, Load a → Store a).
  EXPECT_EQ(dag.implied_syncs(), 21u);
}

TEST(InstrDagFig1, AntiDependenceEdgesPresent) {
  const Program p = figure1_program();
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  EXPECT_TRUE(dag.graph().has_edge(0, 14));  // Load i → Store i,18
  EXPECT_TRUE(dag.graph().has_edge(1, 15));  // Load a → Store a,22
  EXPECT_FALSE(dag.graph().has_edge(14, 0));
}

TEST(InstrDagFig1, HeightsIncludeOwnTime) {
  const Program p = figure1_program();
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  // Load f (dense 4) heads the longest chain: Load→And→Sub→Add→Store.
  EXPECT_EQ(dag.h_max(4), 8);
  EXPECT_EQ(dag.h_min(4), 5);
  // A final store's height is its own execution time.
  EXPECT_EQ(dag.h_max(18), 1);
  EXPECT_EQ(dag.h_min(18), 1);
  // Exit dummy: zero.
  EXPECT_EQ(dag.h_max(dag.exit()), 0);
}

TEST(InstrDag, EntryExitWiring) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, T(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  EXPECT_TRUE(dag.graph().has_edge(dag.entry(), 0));
  EXPECT_TRUE(dag.graph().has_edge(1, dag.exit()));
  EXPECT_TRUE(dag.is_dummy(dag.entry()));
  EXPECT_TRUE(dag.is_dummy(dag.exit()));
  EXPECT_FALSE(dag.is_dummy(0));
  EXPECT_EQ(dag.time(dag.entry()), (TimeRange{0, 0}));
  // Dummy edges are not implied synchronizations.
  EXPECT_EQ(dag.implied_syncs(), 1u);
}

TEST(InstrDag, EmptyProgram) {
  Program p(0);
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  EXPECT_EQ(dag.num_instructions(), 0u);
  EXPECT_EQ(dag.implied_syncs(), 0u);
  EXPECT_EQ(dag.critical_path(), (TimeRange{0, 0}));
}

TEST(InstrDag, MemoryFlowAndOutputDependences) {
  // Hand-built (not generator-shaped) block: store, load, store on one var.
  Program p(2);
  p.append(Tuple::binary(0, Opcode::kAdd, C(1), C(2)));
  p.append(Tuple::store(1, 0, T(0)));   // store v0
  p.append(Tuple::load(2, 0));          // load v0  (flow from store 1)
  p.append(Tuple::binary(3, Opcode::kAdd, T(2), C(1)));
  p.append(Tuple::store(4, 0, T(3)));   // store v0 again
  p.append(Tuple::store(5, 1, T(3)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  EXPECT_TRUE(dag.graph().has_edge(1, 2));  // memory flow store→load
  EXPECT_TRUE(dag.graph().has_edge(2, 4));  // anti load→store
  EXPECT_TRUE(dag.graph().has_edge(1, 4));  // output store→store
}

TEST(InstrDag, DuplicateOperandYieldsSingleEdge) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kMul, T(0), T(0)));
  p.append(Tuple::store(2, 0, T(1)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  // Edge 0→1 counted once; plus 1→2 flow and 0→2 anti.
  EXPECT_EQ(dag.implied_syncs(), 3u);
}

TEST(InstrDag, HeightsMatchBruteForceOnRandomPrograms) {
  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    // Random layered program.
    Program p(4);
    std::vector<TupleId> values;
    for (int v = 0; v < 4; ++v) values.push_back(p.append(Tuple::load(
        static_cast<std::uint32_t>(v), static_cast<VarId>(v))));
    for (int k = 0; k < 12; ++k) {
      const Opcode op = rng.chance(0.2) ? Opcode::kMul : Opcode::kAdd;
      const Operand a = T(values[rng.index(values.size())]);
      const Operand b = T(values[rng.index(values.size())]);
      values.push_back(p.append(
          Tuple::binary(static_cast<std::uint32_t>(100 + k), op, a, b)));
    }
    p.append(Tuple::store(200, 0, T(values.back())));
    const InstrDag dag = InstrDag::build(p, TimingModel::table1());

    // Brute force: h(i) = t(i) + max over successors (0 at exit).
    std::vector<Time> hmax(dag.graph().size(), -1);
    std::function<Time(NodeId)> rec = [&](NodeId n) -> Time {
      if (hmax[n] >= 0) return hmax[n];
      Time best = 0;
      for (NodeId s : dag.graph().succs(n)) best = std::max(best, rec(s));
      return hmax[n] = dag.time(n).max + best;
    };
    for (NodeId n = 0; n < dag.num_instructions(); ++n)
      EXPECT_EQ(dag.h_max(n), rec(n));
  }
}

/// Forces the 64-bit offset layout and restores the production bound on
/// scope exit, so a failing EXPECT cannot leak the test bound into later
/// tests.
class ForceWideOffsets {
 public:
  ForceWideOffsets() : prev_(InstrDag::set_offset_width_bound_for_test(0)) {}
  ~ForceWideOffsets() { InstrDag::set_offset_width_bound_for_test(prev_); }

 private:
  std::uint64_t prev_;
};

TEST(InstrDag, WideOffsetColumnsMatchNarrowAtWidthBoundary) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    // Random layered program, same shape as the heights test.
    Program p(4);
    std::vector<TupleId> values;
    for (int v = 0; v < 4; ++v) values.push_back(p.append(Tuple::load(
        static_cast<std::uint32_t>(v), static_cast<VarId>(v))));
    for (int k = 0; k < 40; ++k) {
      const Opcode op = rng.chance(0.2) ? Opcode::kMul : Opcode::kAdd;
      const Operand a = T(values[rng.index(values.size())]);
      const Operand b = T(values[rng.index(values.size())]);
      values.push_back(p.append(
          Tuple::binary(static_cast<std::uint32_t>(100 + k), op, a, b)));
    }
    p.append(Tuple::store(200, 0, T(values.back())));

    const InstrDag narrow = InstrDag::build(p, TimingModel::table1());
    ASSERT_FALSE(narrow.offsets_wide());

    ForceWideOffsets guard;
    const InstrDag wide = InstrDag::build(p, TimingModel::table1());
    ASSERT_TRUE(wide.offsets_wide());

    // Every observable column must agree between the two index widths.
    ASSERT_EQ(wide.num_nodes(), narrow.num_nodes());
    EXPECT_EQ(wide.entry(), narrow.entry());
    EXPECT_EQ(wide.exit(), narrow.exit());
    EXPECT_EQ(wide.critical_path(), narrow.critical_path());
    EXPECT_EQ(wide.sync_edges(), narrow.sync_edges());
    for (NodeId n = 0; n < narrow.num_nodes(); ++n) {
      EXPECT_TRUE(std::ranges::equal(wide.preds(n), narrow.preds(n))) << n;
      EXPECT_TRUE(std::ranges::equal(wide.succs(n), narrow.succs(n))) << n;
      EXPECT_EQ(wide.indegree(n), narrow.indegree(n)) << n;
      EXPECT_EQ(wide.h_min(n), narrow.h_min(n)) << n;
      EXPECT_EQ(wide.h_max(n), narrow.h_max(n)) << n;
      EXPECT_EQ(wide.asap_finish(n), narrow.asap_finish(n)) << n;
    }
    for (NodeId n = 0; n < narrow.num_instructions(); ++n)
      EXPECT_TRUE(
          std::ranges::equal(wide.instr_preds(n), narrow.instr_preds(n)))
          << n;
  }
}

}  // namespace
}  // namespace bm
