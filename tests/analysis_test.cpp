#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "machine/presets.hpp"
#include "sched/scheduler.hpp"
#include "sim/analysis.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }

TEST(TraceAnalysis, DecomposesHandBuiltSchedule) {
  // P0: Load [4 in all-max]; P1: Add [1]; barrier; P1: Add [1].
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::binary(1, Opcode::kAdd, C(1), C(1)));
  p.append(Tuple::binary(2, Opcode::kAdd, C(2), C(2)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);
  sched.append_instr(1, 1);
  sched.insert_barrier({{0, 1}, {1, 1}});
  sched.append_instr(1, 2);
  Rng rng(1);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  const TraceAnalysis a = analyze_trace(sched, t);
  EXPECT_EQ(a.completion, 5);
  // P0: busy 4 (load), waits 0 at the barrier (it is the last to arrive),
  // idle 1 after the barrier.
  EXPECT_EQ(a.procs[0].busy, 4);
  EXPECT_EQ(a.procs[0].barrier_wait, 0);
  EXPECT_EQ(a.procs[0].idle, 1);
  // P1: busy 2, waits 3 for the load, no tail idle.
  EXPECT_EQ(a.procs[1].busy, 2);
  EXPECT_EQ(a.procs[1].barrier_wait, 3);
  EXPECT_EQ(a.procs[1].idle, 0);
  EXPECT_EQ(a.total_busy, 6);
  EXPECT_EQ(a.total_barrier_wait, 3);
  EXPECT_DOUBLE_EQ(a.machine_utilization(), 6.0 / 10.0);
  EXPECT_DOUBLE_EQ(a.wait_fraction(), 3.0 / 10.0);
}

TEST(TraceAnalysis, AccountsForEveryCycle) {
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 3 + 7);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const ExecTrace t =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
    const TraceAnalysis a = analyze_trace(*r.schedule, t);
    for (ProcId p = 0; p < r.schedule->num_procs(); ++p) {
      if (!a.procs[p].used) continue;
      EXPECT_EQ(a.procs[p].total(), a.completion) << "P" << p;
    }
    EXPECT_GE(a.machine_utilization(), 0.0);
    EXPECT_LE(a.machine_utilization(), 1.0);
    EXPECT_GE(a.wait_fraction(), 0.0);
    EXPECT_LE(a.wait_fraction(), 1.0);
  }
}

TEST(TraceAnalysis, UnusedProcessorsExcludedFromUtilization) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 8);
  sched.append_instr(0, 0);
  Rng rng(1);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  const TraceAnalysis a = analyze_trace(sched, t);
  EXPECT_DOUBLE_EQ(a.machine_utilization(), 1.0);  // the one used PE is busy
  EXPECT_FALSE(a.procs[3].used);
}

TEST(MachinePresets, AllPresetsAreUsable) {
  EXPECT_GE(machine_presets().size(), 4u);
  const GeneratorConfig gen{.num_statements = 20, .num_variables = 6,
                            .num_constants = 3, .const_max = 32};
  for (const MachineDescription& m : machine_presets()) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_FALSE(m.summary.empty());
    EXPECT_GE(m.default_procs, 1u);
    Rng rng(5);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, m.timing);
    SchedulerConfig cfg;
    cfg.num_procs = m.default_procs;
    cfg.barrier_latency = m.barrier_latency;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    const ExecTrace t =
        simulate(*r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
    EXPECT_TRUE(find_violations(dag, t).empty()) << m.name;
  }
}

TEST(MachinePresets, LookupByName) {
  EXPECT_EQ(machine_preset("paper-risc-node").barrier_latency, 0);
  EXPECT_EQ(machine_preset("network-cluster").barrier_latency, 4);
  EXPECT_EQ(machine_preset("bus-smp").timing.range(Opcode::kLoad),
            (TimeRange{1, 12}));
  EXPECT_TRUE(
      machine_preset("pipelined-fpu").timing.range(Opcode::kMul).is_fixed());
  EXPECT_THROW(machine_preset("does-not-exist"), Error);
}

}  // namespace
}  // namespace bm
