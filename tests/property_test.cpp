// Cross-module property suite: for random synthetic benchmarks across the
// whole configuration space, every schedule the system produces must be
// sound — no producer/consumer pair may ever be observed out of order, under
// any timing draw, on either machine model, with either insertion algorithm.
#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

struct SweepParam {
  std::size_t procs;
  std::uint32_t variables;
  std::uint32_t statements;
  MachineKind machine;
  InsertionPolicy insertion;
  AssignmentPolicy assignment;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << p.procs << "pe_" << p.variables << "v_" << p.statements
              << "s_" << to_string(p.machine) << '_' << to_string(p.insertion)
              << '_' << to_string(p.assignment);
  }
};

class ScheduleSoundness : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScheduleSoundness, NoDependenceViolationUnderAnyDraw) {
  const SweepParam param = GetParam();
  const GeneratorConfig gen{.num_statements = param.statements,
                            .num_variables = param.variables,
                            .num_constants = 4,
                            .const_max = 64};
  SchedulerConfig cfg;
  cfg.num_procs = param.procs;
  cfg.machine = param.machine;
  cfg.insertion = param.insertion;
  cfg.assignment = param.assignment;

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(0xC0FFEE ^ (seed * 7919));
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);

    for (SamplingMode mode :
         {SamplingMode::kAllMin, SamplingMode::kAllMax,
          SamplingMode::kBimodal, SamplingMode::kUniform,
          SamplingMode::kUniform, SamplingMode::kUniform,
          SamplingMode::kUniform, SamplingMode::kUniform}) {
      const ExecTrace t = simulate(*r.schedule, {param.machine, mode}, rng);
      const auto violations = find_violations(dag, t);
      EXPECT_TRUE(violations.empty())
          << violations.size() << " violations, first: " << violations[0].first
          << "→" << violations[0].second << " (seed " << seed << ")";

      // The static completion envelope bounds every draw.
      EXPECT_GE(t.completion, r.stats.completion.min);
      EXPECT_LE(t.completion, r.stats.completion.max);

      // Every observed barrier fire lies inside its static fire range (for
      // the SBM this relies on merging having removed overlapping unordered
      // barriers; for the DBM it follows from the dag semantics).
      const BarrierDag& bd = r.schedule->barrier_dag();
      for (BarrierId b = 0; b < r.schedule->barrier_id_bound(); ++b) {
        if (t.barrier_fire[b] == kNotExecuted) continue;
        const TimeRange fr = bd.fire_range(b);
        EXPECT_GE(t.barrier_fire[b], fr.min) << "barrier " << b;
        EXPECT_LE(t.barrier_fire[b], fr.max) << "barrier " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleSoundness,
    ::testing::Values(
        // Machine-size sweep, default policies.
        SweepParam{2, 8, 30, MachineKind::kSBM, InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize},
        SweepParam{4, 8, 30, MachineKind::kSBM, InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize},
        SweepParam{8, 15, 50, MachineKind::kSBM,
                   InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize},
        SweepParam{16, 10, 60, MachineKind::kSBM,
                   InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize},
        // DBM (no merging).
        SweepParam{4, 8, 30, MachineKind::kDBM, InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize},
        SweepParam{8, 15, 50, MachineKind::kDBM,
                   InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize},
        // Optimal insertion on both machines.
        SweepParam{4, 8, 30, MachineKind::kSBM, InsertionPolicy::kOptimal,
                   AssignmentPolicy::kListSerialize},
        SweepParam{8, 10, 40, MachineKind::kDBM, InsertionPolicy::kOptimal,
                   AssignmentPolicy::kListSerialize},
        // Ablation assignment policies.
        SweepParam{8, 10, 40, MachineKind::kSBM,
                   InsertionPolicy::kConservative,
                   AssignmentPolicy::kRoundRobin},
        SweepParam{8, 10, 40, MachineKind::kSBM,
                   InsertionPolicy::kConservative,
                   AssignmentPolicy::kLookahead},
        // Tiny and single-processor corners.
        SweepParam{1, 5, 20, MachineKind::kSBM, InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize},
        SweepParam{8, 2, 10, MachineKind::kSBM, InsertionPolicy::kConservative,
                   AssignmentPolicy::kListSerialize}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::ostringstream os;
      os << info.param;
      std::string name = os.str();
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

class TimingVariationSoundness
    : public ::testing::TestWithParam<double> {};

TEST_P(TimingVariationSoundness, WiderVariationStaysSound) {
  const double factor = GetParam();
  const TimingModel tm = TimingModel::table1_with_variation(factor);
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed * 31 + 1);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, tm);
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    for (int run = 0; run < 5; ++run) {
      const ExecTrace t = simulate(
          *r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
      EXPECT_TRUE(find_violations(dag, t).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VariationFactors, TimingVariationSoundness,
                         ::testing::Values(0.0, 0.5, 2.0, 5.0, 10.0));

TEST(RepairSweep, RepairRateIsSmall) {
  // Retroactive barrier placement (and, on the SBM, merging) can invalidate
  // a static resolution that was checked against an earlier barrier dag —
  // a corner the paper does not address. The repair sweep fixes those;
  // empirically it adds ≈0.5 barriers per 50-statement benchmark (≈1% of
  // implied synchronizations), so the reported fractions are unaffected at
  // the paper's precision. Guard against regression to a much higher rate.
  const GeneratorConfig gen{.num_statements = 50, .num_variables = 12,
                            .num_constants = 4, .const_max = 64};
  SchedulerConfig cfg;
  std::size_t repairs = 0, benchmarks = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 101 + 17);
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    repairs += r.stats.repair_barriers;
    ++benchmarks;
  }
  EXPECT_LE(repairs, benchmarks);
}

TEST(RepairSweep, FixesEverySeedTheBareAlgorithmsMiss) {
  // Run the identical benchmarks with and without the repair sweep. The
  // bare paper algorithms may leave rare latent races (retroactive
  // placement / merging invalidating earlier checks); with the sweep the
  // same seeds must be violation-free.
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  std::size_t bare_violations = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    for (bool repair : {false, true}) {
      Rng rng(seed * 13 + 5);
      const SynthesisResult s = synthesize_benchmark(gen, rng);
      const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
      SchedulerConfig cfg;
      cfg.repair_sweep = repair;
      const ScheduleResult r = schedule_program(dag, cfg, rng);
      for (int run = 0; run < 10; ++run) {
        const ExecTrace t = simulate(
            *r.schedule, {cfg.machine, SamplingMode::kBimodal}, rng);
        const std::size_t v = find_violations(dag, t).size();
        if (repair)
          EXPECT_EQ(v, 0u) << "seed " << seed;
        else
          bare_violations += v;
      }
    }
  }
  // Not asserted (seed-dependent), but recorded: how much the sweep matters.
  ::testing::Test::RecordProperty("bare_violations",
                                  static_cast<int>(bare_violations));
}

}  // namespace
}  // namespace bm
