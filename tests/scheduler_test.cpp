#include <gtest/gtest.h>

#include "codegen/synthesize.hpp"
#include "sched/labels.hpp"
#include "sched/scheduler.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

/// Serial dependence chain: Load, then k dependent Adds, then a Store.
Program chain_program(int k) {
  Program p(1);
  TupleId cur = p.append(Tuple::load(0, 0));
  for (int i = 0; i < k; ++i)
    cur = p.append(Tuple::binary(static_cast<std::uint32_t>(i + 1),
                                 Opcode::kAdd, T(cur), C(1)));
  p.append(Tuple::store(static_cast<std::uint32_t>(k + 1), 0, T(cur)));
  return p;
}

InstrDag table1_dag(const Program& p) {
  return InstrDag::build(p, TimingModel::table1());
}

// ------------------------------------------------------------ Ordering -----

TEST(ListOrder, ProducersPrecedeConsumers) {
  Rng rng(5);
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 10; ++trial) {
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = table1_dag(s.program);
    for (OrderingPolicy pol :
         {OrderingPolicy::kMaxThenMin, OrderingPolicy::kMinThenMax}) {
      const std::vector<NodeId> order = make_list_order(dag, pol);
      std::vector<std::size_t> pos(order.size());
      for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
      for (const auto& [g, i] : dag.sync_edges()) EXPECT_LT(pos[g], pos[i]);
    }
  }
}

TEST(ListOrder, SortsByMaxHeightThenMinHeight) {
  Rng rng(6);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 6,
                            .num_constants = 3, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = table1_dag(s.program);
  const std::vector<NodeId> order =
      make_list_order(dag, OrderingPolicy::kMaxThenMin);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const NodeId a = order[i], b = order[i + 1];
    EXPECT_GE(std::pair(dag.h_max(a), dag.h_min(a)),
              std::pair(dag.h_max(b), dag.h_min(b)));
  }
}

TEST(ListOrder, MinFirstPolicySwapsKeys) {
  Rng rng(6);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 6,
                            .num_constants = 3, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = table1_dag(s.program);
  const std::vector<NodeId> order =
      make_list_order(dag, OrderingPolicy::kMinThenMax);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const NodeId a = order[i], b = order[i + 1];
    EXPECT_GE(std::pair(dag.h_min(a), dag.h_max(a)),
              std::pair(dag.h_min(b), dag.h_max(b)));
  }
}

// ----------------------------------------------------------- Scheduler -----

TEST(Scheduler, ChainSerializesOntoOneProcessor) {
  const Program p = chain_program(10);
  const InstrDag dag = table1_dag(p);
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  Rng rng(1);
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  EXPECT_EQ(r.stats.procs_used, 1u);
  EXPECT_EQ(r.stats.barriers_final, 0u);
  EXPECT_EQ(r.stats.serialized_fraction(), 1.0);
}

TEST(Scheduler, FractionsPartitionUnity) {
  Rng seeds(77);
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = table1_dag(s.program);
    SchedulerConfig cfg;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    EXPECT_NEAR(r.stats.barrier_fraction() + r.stats.serialized_fraction() +
                    r.stats.static_fraction(),
                1.0, 1e-12);
    EXPECT_EQ(r.stats.serialized_edges + r.stats.cross_edges,
              r.stats.implied_syncs);
    EXPECT_LE(r.stats.barriers_final, r.stats.barriers_inserted +
                                          r.stats.repair_barriers);
  }
}

TEST(Scheduler, CompletionNeverBeatsCriticalPath) {
  Rng seeds(88);
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = table1_dag(s.program);
    SchedulerConfig cfg;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    EXPECT_GE(r.stats.completion.min, r.stats.critical_path.min);
    EXPECT_GE(r.stats.completion.max, r.stats.critical_path.max);
  }
}

TEST(Scheduler, DeterministicForSameRngSeed) {
  const GeneratorConfig gen{.num_statements = 30, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  Rng r1(9), r2(9);
  const SynthesisResult s1 = synthesize_benchmark(gen, r1);
  const SynthesisResult s2 = synthesize_benchmark(gen, r2);
  const InstrDag d1 = table1_dag(s1.program);
  const InstrDag d2 = table1_dag(s2.program);
  SchedulerConfig cfg;
  const ScheduleResult a = schedule_program(d1, cfg, r1);
  const ScheduleResult b = schedule_program(d2, cfg, r2);
  EXPECT_EQ(a.schedule->to_string(), b.schedule->to_string());
  EXPECT_EQ(a.stats.barriers_final, b.stats.barriers_final);
}

TEST(Scheduler, RoundRobinSpreadsNodes) {
  const Program p = chain_program(11);  // 13 instructions
  const InstrDag dag = table1_dag(p);
  SchedulerConfig cfg;
  cfg.num_procs = 4;
  cfg.assignment = AssignmentPolicy::kRoundRobin;
  Rng rng(3);
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  EXPECT_EQ(r.stats.procs_used, 4u);
  // Chain edges never stay on one PE; only the Load→Store anti edge can
  // (list positions 0 and 12 both map to processor 0).
  EXPECT_LE(r.stats.serialized_edges, 1u);
  // A fully serial chain spread over processors needs heavy barrier use.
  EXPECT_GT(r.stats.barriers_final, 0u);
}

TEST(Scheduler, RoundRobinNeverBeatsListHeuristicOnChains) {
  const Program p = chain_program(14);
  const InstrDag dag = table1_dag(p);
  SchedulerConfig list_cfg;
  list_cfg.num_procs = 4;
  SchedulerConfig rr_cfg = list_cfg;
  rr_cfg.assignment = AssignmentPolicy::kRoundRobin;
  Rng rng(3);
  const ScheduleResult list = schedule_program(dag, list_cfg, rng);
  const ScheduleResult rr = schedule_program(dag, rr_cfg, rng);
  EXPECT_LE(list.stats.completion.max, rr.stats.completion.max);
}

TEST(Scheduler, TwoVariablesUseFewProcessors) {
  // §5.3: with 2 variables the algorithm keeps almost everything on two
  // processors regardless of machine size.
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 2,
                            .num_constants = 3, .const_max = 64};
  Rng seeds(101);
  for (std::size_t procs : {4u, 16u, 64u}) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = table1_dag(s.program);
    SchedulerConfig cfg;
    cfg.num_procs = procs;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    EXPECT_LE(r.stats.procs_used, 4u);
  }
}

TEST(Scheduler, SingleProcessorMeansNoBarriers) {
  Rng rng(55);
  const GeneratorConfig gen{.num_statements = 25, .num_variables = 6,
                            .num_constants = 3, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = table1_dag(s.program);
  SchedulerConfig cfg;
  cfg.num_procs = 1;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  EXPECT_EQ(r.stats.barriers_final, 0u);
  EXPECT_EQ(r.stats.serialized_fraction(), 1.0);
}

TEST(Scheduler, AllInstructionsPlacedExactlyOnce) {
  Rng rng(66);
  const GeneratorConfig gen{.num_statements = 35, .num_variables = 8,
                            .num_constants = 4, .const_max = 64};
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  const InstrDag dag = table1_dag(s.program);
  SchedulerConfig cfg;
  const ScheduleResult r = schedule_program(dag, cfg, rng);
  std::size_t placed = 0;
  for (ProcId p = 0; p < r.schedule->num_procs(); ++p)
    placed += r.schedule->instr_count(p);
  EXPECT_EQ(placed, dag.num_instructions());
  for (NodeId n = 0; n < dag.num_instructions(); ++n)
    EXPECT_TRUE(r.schedule->placed(n));
}

TEST(Scheduler, DbmModeNeverMerges) {
  Rng seeds(12);
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(seeds.next());
    const SynthesisResult s = synthesize_benchmark(gen, rng);
    const InstrDag dag = table1_dag(s.program);
    SchedulerConfig cfg;
    cfg.machine = MachineKind::kDBM;
    const ScheduleResult r = schedule_program(dag, cfg, rng);
    EXPECT_EQ(r.stats.merges, 0u);
    EXPECT_EQ(r.stats.barriers_final,
              r.stats.barriers_inserted + r.stats.repair_barriers);
  }
}

TEST(Scheduler, LookaheadIncreasesSerialization) {
  // §5.4: averaged over benchmarks, lookahead should not reduce the
  // serialized fraction (it exists to protect serialization slots).
  const GeneratorConfig gen{.num_statements = 40, .num_variables = 10,
                            .num_constants = 4, .const_max = 64};
  double base_total = 0, look_total = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng1(seed), rng2(seed);
    const SynthesisResult s1 = synthesize_benchmark(gen, rng1);
    const SynthesisResult s2 = synthesize_benchmark(gen, rng2);
    const InstrDag d1 = table1_dag(s1.program);
    const InstrDag d2 = table1_dag(s2.program);
    SchedulerConfig base;
    base.num_procs = 4;
    SchedulerConfig look = base;
    look.assignment = AssignmentPolicy::kLookahead;
    look.lookahead_window = 4;
    base_total += schedule_program(d1, base, rng1).stats.serialized_fraction();
    look_total += schedule_program(d2, look, rng2).stats.serialized_fraction();
  }
  EXPECT_GE(look_total, base_total * 0.95);
}

}  // namespace
}  // namespace bm
