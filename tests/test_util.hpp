// Shared helpers for the barrier-mimd test suite.
#pragma once

#include <map>
#include <vector>

#include "codegen/statement.hpp"
#include "ir/interp.hpp"
#include "ir/program.hpp"

namespace bm::test {

/// Final-memory view of the library interpreter (bm::eval_program).
inline std::vector<std::int64_t> eval_program(
    const Program& prog, const std::vector<std::int64_t>& initial_memory) {
  return bm::eval_program(prog, initial_memory).memory;
}

/// Reference interpreter for statement lists (source-level semantics).
inline std::vector<std::int64_t> eval_statements(
    const StatementList& stmts, std::uint32_t num_vars,
    const std::vector<std::int64_t>& initial_memory) {
  std::vector<std::int64_t> memory = initial_memory;
  memory.resize(num_vars, 0);
  auto operand_value = [&](const StmtOperand& o) {
    return o.is_var() ? memory[o.var] : o.value;
  };
  for (const Assign& s : stmts)
    memory[s.lhs] = fold_binary(s.op, operand_value(s.a), operand_value(s.b));
  return memory;
}

}  // namespace bm::test
