// Tests for the presentation layer: Gantt rendering, the Fig. 14 scatter
// renderer, fraction-series tables, and named-variable listings.
#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "sim/gantt.hpp"
#include "sim/simulator.hpp"

namespace bm {
namespace {

Operand T(TupleId id) { return Operand::tuple(id); }

struct GanttFixture {
  GanttFixture() {
    prog.set_num_vars(2);
    prog.append(Tuple::load(0, 0));
    prog.append(Tuple::load(1, 1));
    dag = InstrDag::build(prog, TimingModel::table1());
    sched = std::make_unique<Schedule>(dag, 3);
    sched->append_instr(0, 0);
    sched->append_instr(1, 1);
    barrier = sched->insert_barrier({{0, 1}, {1, 1}});
  }
  Program prog;
  InstrDag dag;
  std::unique_ptr<Schedule> sched;
  BarrierId barrier = kInvalidBarrier;
};

TEST(Gantt, RendersSpansAndBarriers) {
  GanttFixture f;
  Rng rng(1);
  const ExecTrace t =
      simulate(*f.sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  const std::string out = render_gantt(*f.sched, t, {.max_width = 40});
  EXPECT_NE(out.find("P0 ["), std::string::npos);
  EXPECT_NE(out.find("P1 ["), std::string::npos);
  // Idle processor 2 is omitted.
  EXPECT_EQ(out.find("P2 ["), std::string::npos);
  EXPECT_NE(out.find("n0"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find("t=4"), std::string::npos);  // completion
}

TEST(Gantt, RejectsTinyWidth) {
  GanttFixture f;
  Rng rng(1);
  const ExecTrace t =
      simulate(*f.sched, {MachineKind::kSBM, SamplingMode::kAllMax}, rng);
  EXPECT_THROW(render_gantt(*f.sched, t, {.max_width = 4}), Error);
}

TEST(Gantt, HandlesZeroCompletion) {
  Program p(0);
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  Rng rng(1);
  const ExecTrace t =
      simulate(sched, {MachineKind::kSBM, SamplingMode::kUniform}, rng);
  EXPECT_NO_THROW(render_gantt(sched, t));
}

TEST(Scatter, PlacesPointsAndDiagonal) {
  const std::vector<std::pair<double, double>> pts = {{0.0, 1.0}, {1.0, 0.0},
                                                      {0.5, 0.5}};
  const std::string out = render_scatter(pts, 0.85, 21, 11);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
  EXPECT_NE(out.find("x+y=0.85"), std::string::npos);
  // Out-of-range points are dropped silently.
  const std::string out2 = render_scatter({{2.0, 2.0}}, 0.85, 21, 11);
  EXPECT_EQ(out2.find('*'), std::string::npos);
}

TEST(Scatter, OverlapMarksDensity) {
  std::vector<std::pair<double, double>> pts(3, {0.5, 0.5});
  const std::string out = render_scatter(pts, 2.0, 21, 11);  // diag off-grid
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(Report, FractionSeriesRendersRows) {
  ScheduleStats s;
  s.implied_syncs = 10;
  s.serialized_edges = 6;
  s.cross_edges = 4;
  s.barriers_final = 1;
  PointAggregate agg;
  agg.fractions.add(s);
  ::testing::internal::CaptureStdout();
  print_fraction_series("x", {{"row1", agg}}, nullptr);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("row1"), std::string::npos);
  EXPECT_NE(out.find("10.0%"), std::string::npos);  // barrier fraction
  EXPECT_NE(out.find("60.0%"), std::string::npos);  // serialized fraction
}

TEST(Program, NamedVariablesInListing) {
  Program p(2);
  p.set_var_name(0, "alpha");
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 1, T(0)));
  const std::string out = p.to_string();
  EXPECT_NE(out.find("Load alpha"), std::string::npos);
  EXPECT_NE(out.find("Store b,0"), std::string::npos);  // default name kept
  EXPECT_EQ(p.var_display_name(0), "alpha");
  EXPECT_EQ(p.var_display_name(1), "b");
  EXPECT_THROW(p.set_var_name(5, "x"), Error);
  EXPECT_THROW(p.set_var_name(0, ""), Error);
}

}  // namespace
}  // namespace bm
