#include <gtest/gtest.h>

#include "cfg/cfg_gen.hpp"
#include "cfg/cfg_sim.hpp"
#include "sim/trace.hpp"

namespace bm {
namespace {

Operand C(std::int64_t v) { return Operand::constant(v); }
Operand T(TupleId id) { return Operand::tuple(id); }

CfgGeneratorConfig small_cfg_config() {
  CfgGeneratorConfig cfg;
  cfg.block = GeneratorConfig{.num_statements = 8, .num_variables = 6,
                              .num_constants = 3, .const_max = 32};
  cfg.max_depth = 2;
  cfg.seq_length = 2;
  cfg.max_trip = 5;
  return cfg;
}

/// Hand-built loop: a = 0; do { a = a + 2 } 3 times (counter = var 1).
CfgProgram counted_loop() {
  CfgProgram cfg(2);
  // Block 0 (entry): a = 0; counter = 3; jump 1.
  BasicBlock init;
  {
    Program p(2);
    p.append(Tuple::store(0, 0, C(0)));
    p.append(Tuple::store(1, 1, C(3)));
    init.body = std::move(p);
  }
  init.term = BasicBlock::Terminator::kJump;
  init.taken = 1;

  // Block 1 (body+latch): a = a + 2; counter = counter - 1;
  //                       branch self if counter != 0 else block 2.
  BasicBlock body;
  TupleId cond;
  {
    Program p(2);
    const TupleId a = p.append(Tuple::load(0, 0));
    const TupleId sum = p.append(Tuple::binary(1, Opcode::kAdd, T(a), C(2)));
    p.append(Tuple::store(2, 0, T(sum)));
    const TupleId c = p.append(Tuple::load(3, 1));
    cond = p.append(Tuple::binary(4, Opcode::kSub, T(c), C(1)));
    p.append(Tuple::store(5, 1, T(cond)));
    body.body = std::move(p);
  }
  body.term = BasicBlock::Terminator::kBranch;
  body.cond = cond;
  body.taken = 1;
  body.not_taken = 2;
  body.max_executions = 3;

  BasicBlock done;
  done.term = BasicBlock::Terminator::kExit;

  cfg.append(std::move(init));
  cfg.append(std::move(body));
  cfg.append(std::move(done));
  return cfg;
}

// -------------------------------------------------------------- CFG IR -----

TEST(CfgIr, ValidateAcceptsCountedLoop) {
  EXPECT_NO_THROW(counted_loop().validate());
}

TEST(CfgIr, ValidateRejectsBadTargets) {
  CfgProgram cfg(1);
  BasicBlock b;
  b.term = BasicBlock::Terminator::kJump;
  b.taken = 7;
  cfg.append(std::move(b));
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(CfgIr, ValidateRejectsStoreCondition) {
  CfgProgram cfg(1);
  BasicBlock b;
  Program p(1);
  p.append(Tuple::store(0, 0, C(1)));
  b.body = std::move(p);
  b.term = BasicBlock::Terminator::kBranch;
  b.cond = 0;  // the store
  b.taken = b.not_taken = 0;
  cfg.append(std::move(b));
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(CfgIr, ValidateRejectsBadEntry) {
  CfgProgram cfg(1);
  BasicBlock b;
  cfg.append(std::move(b));
  EXPECT_THROW(cfg.set_entry(5), Error);
}

TEST(CfgIr, ToStringShowsStructure) {
  const std::string s = counted_loop().to_string();
  EXPECT_NE(s.find("entry: block 0"), std::string::npos);
  EXPECT_NE(s.find("jump -> 1"), std::string::npos);
  EXPECT_NE(s.find("if t4 != 0 -> 1 else -> 2"), std::string::npos);
  EXPECT_NE(s.find("worst-case x3"), std::string::npos);
}

// -------------------------------------------------------- Interpreter ------

TEST(CfgInterp, CountedLoopComputesExpectedValues) {
  const CfgProgram cfg = counted_loop();
  const CfgExecResult r = interpret_cfg(cfg, {});
  EXPECT_EQ(r.memory[0], 6);  // 3 iterations of a += 2
  EXPECT_EQ(r.memory[1], 0);  // counter exhausted
  EXPECT_EQ(r.block_counts[1], 3u);
  EXPECT_EQ(r.blocks_executed, 5u);  // init + 3 body + exit
}

TEST(CfgInterp, TransferBudgetGuardsAgainstRunaway) {
  CfgProgram cfg(1);
  BasicBlock b;
  b.term = BasicBlock::Terminator::kJump;
  b.taken = 0;  // self-loop forever
  cfg.append(std::move(b));
  EXPECT_THROW(interpret_cfg(cfg, {}, 100), Error);
}

// ----------------------------------------------------------- Generator -----

TEST(CfgGen, DeterministicAndValid) {
  const CfgGeneratorConfig cc = small_cfg_config();
  Rng a(5), b(5);
  const CfgProgram p1 = generate_cfg(cc, a);
  const CfgProgram p2 = generate_cfg(cc, b);
  EXPECT_EQ(p1.to_string(), p2.to_string());
  EXPECT_NO_THROW(p1.validate());
  EXPECT_GT(p1.size(), 1u);
}

TEST(CfgGen, ConfigValidation) {
  CfgGeneratorConfig cc = small_cfg_config();
  cc.if_prob = 0.8;
  cc.loop_prob = 0.8;  // sums beyond 1
  Rng rng(1);
  EXPECT_THROW(generate_cfg(cc, rng), Error);
  cc = small_cfg_config();
  cc.min_trip = 0;
  EXPECT_THROW(generate_cfg(cc, rng), Error);
}

TEST(CfgGen, GeneratedProgramsTerminate) {
  const CfgGeneratorConfig cc = small_cfg_config();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const CfgProgram cfg = generate_cfg(cc, rng);
    const CfgExecResult r = interpret_cfg(cfg, {});
    EXPECT_GT(r.blocks_executed, 0u);
  }
}

TEST(CfgGen, ExecutionCountsRespectWorstCaseAnnotation) {
  const CfgGeneratorConfig cc = small_cfg_config();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 7 + 1);
    const CfgProgram cfg = generate_cfg(cc, rng);
    std::vector<std::int64_t> memory(cfg.num_vars());
    for (auto& m : memory) m = rng.uniform(-50, 50);
    const CfgExecResult r = interpret_cfg(cfg, memory);
    for (BlockId b = 0; b < cfg.size(); ++b)
      EXPECT_LE(r.block_counts[b], cfg.block(b).max_executions)
          << "seed " << seed << " block " << b;
  }
}

// ----------------------------------------------------- Schedule + sim ------

TEST(CfgSched, AggregatesBlockAccounting) {
  Rng rng(3);
  const CfgProgram cfg = generate_cfg(small_cfg_config(), rng);
  SchedulerConfig sc;
  const CfgScheduleResult s =
      schedule_cfg(cfg, sc, TimingModel::table1(), rng);
  EXPECT_EQ(s.blocks.size(), cfg.size());
  std::size_t implied = 0;
  for (const auto& bs : s.blocks) implied += bs.result.stats.implied_syncs;
  EXPECT_EQ(s.implied_syncs, implied);
  EXPECT_GE(s.barrier_fraction(), 0.0);
  EXPECT_LE(s.barrier_fraction() + s.serialized_fraction(), 1.0 + 1e-12);
}

TEST(CfgSim, MatchesInterpreterSemantics) {
  const CfgGeneratorConfig cc = small_cfg_config();
  SchedulerConfig sc;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 13 + 7);
    const CfgProgram cfg = generate_cfg(cc, rng);
    const CfgScheduleResult s =
        schedule_cfg(cfg, sc, TimingModel::table1(), rng);
    std::vector<std::int64_t> memory(cfg.num_vars());
    for (auto& m : memory) m = rng.uniform(-50, 50);
    const CfgExecResult expect = interpret_cfg(cfg, memory);
    const CfgExecResult got = run_cfg(s, CfgSimConfig{}, memory, rng);
    EXPECT_EQ(got.memory, expect.memory) << "seed " << seed;
    EXPECT_EQ(got.block_counts, expect.block_counts);
    EXPECT_GT(got.completion, 0);
  }
}

TEST(CfgSim, CompletionEnvelopeOrdered) {
  Rng rng(9);
  const CfgProgram cfg = generate_cfg(small_cfg_config(), rng);
  SchedulerConfig sc;
  const CfgScheduleResult s =
      schedule_cfg(cfg, sc, TimingModel::table1(), rng);
  CfgSimConfig lo, hi;
  lo.sampling = SamplingMode::kAllMin;
  hi.sampling = SamplingMode::kAllMax;
  Rng r1(1), r2(1), r3(1);
  const Time t_lo = run_cfg(s, lo, {}, r1).completion;
  const Time t_hi = run_cfg(s, hi, {}, r2).completion;
  const Time t_mid = run_cfg(s, CfgSimConfig{}, {}, r3).completion;
  EXPECT_LE(t_lo, t_mid);
  EXPECT_LE(t_mid, t_hi);
}

TEST(CfgSim, ControlOverheadCharged) {
  const CfgProgram cfg = counted_loop();
  SchedulerConfig sc;
  Rng rng(2);
  const CfgScheduleResult s =
      schedule_cfg(cfg, sc, TimingModel::table1(), rng);
  CfgSimConfig free, costly;
  free.control_overhead = 0;
  free.sampling = SamplingMode::kAllMax;
  costly.control_overhead = 10;
  costly.sampling = SamplingMode::kAllMax;
  Rng r1(1), r2(1);
  const Time t0 = run_cfg(s, free, {}, r1).completion;
  const Time t10 = run_cfg(s, costly, {}, r2).completion;
  // init, 3×body transfers = 4 non-exit block executions.
  EXPECT_EQ(t10 - t0, 40);
}

TEST(CfgVliw, WorstCaseBoundDominatesActualWorstPath) {
  // The lockstep bound provisions every block at its static worst-case
  // count; the barrier machine pays only the actual path. With loops of
  // varying trip counts the bound must be at least the all-max execution.
  const CfgGeneratorConfig cc = small_cfg_config();
  SchedulerConfig sc;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 100);
    const CfgProgram cfg = generate_cfg(cc, rng);
    const CfgScheduleResult s =
        schedule_cfg(cfg, sc, TimingModel::table1(), rng);
    const Time bound =
        vliw_cfg_worst_case(cfg, sc.num_procs, TimingModel::table1(), 1);
    CfgSimConfig hi;
    hi.sampling = SamplingMode::kAllMax;
    Rng r1(1);
    const CfgExecResult run = run_cfg(s, hi, {}, r1);
    // Loose sanity: the lockstep bound is within a small factor of — and
    // on loopy programs typically far above — the actual path cost. The
    // barrier machine can exceed per-block VLIW makespans by a few percent
    // (Fig. 18), hence the 1.1 slack.
    EXPECT_GE(static_cast<double>(bound) * 1.1,
              static_cast<double>(run.completion))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace bm
