// ServeCore behavior (serve/core.hpp):
//  - cache-hit responses are byte-identical to cold-computed ones across
//    the 100-program golden-parity grid (all four policy/machine combos);
//  - synth responses reproduce the harness/golden schedules exactly;
//  - renumbered resubmissions of an explicit program hit the cache and
//    still receive schedules in their own numbering;
//  - overload degrades to bounded-queue fast rejections;
//  - per-request cancellation answers status=cancelled without running;
//  - drain() completes every admitted request (zero losses) and rejects
//    everything submitted afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"
#include "serve/core.hpp"
#include "support/rng.hpp"

namespace bm {
namespace {

using namespace bm::serve;

Request synth_request(std::uint64_t id, std::size_t index,
                      InsertionPolicy insertion, MachineKind machine) {
  Request req;
  req.id = id;
  req.verb = Verb::kSynth;
  req.base_seed = 1990;
  req.index = index;
  req.sched.insertion = insertion;
  req.sched.machine = machine;
  return req;
}

std::string response_key(const Response& r) {
  // Everything except the cache outcome itself must match hit vs cold.
  return encode_response([&] {
    Response c = r;
    c.cache = CacheOutcome::kBypass;
    return c;
  }());
}

TEST(ServeCore, CacheHitsAreByteIdenticalToColdAcrossGoldenGrid) {
  CoreConfig cfg;
  cfg.workers = 2;
  ServeCore core(cfg);

  const InsertionPolicy insertions[] = {InsertionPolicy::kConservative,
                                        InsertionPolicy::kOptimal};
  const MachineKind machines[] = {MachineKind::kSBM, MachineKind::kDBM};
  std::uint64_t id = 0;
  std::size_t checked = 0;
  for (InsertionPolicy ins : insertions)
    for (MachineKind mach : machines)
      for (std::size_t i = 0; i < 25; ++i) {
        const Request req = synth_request(++id, i, ins, mach);
        const Response cold = core.handle(req);
        ASSERT_EQ(cold.status, Status::kOk) << cold.error;
        ASSERT_EQ(cold.cache, CacheOutcome::kMiss);
        const Response hit = core.handle(req);
        ASSERT_EQ(hit.status, Status::kOk) << hit.error;
        ASSERT_EQ(hit.cache, CacheOutcome::kHit);
        ASSERT_EQ(response_key(cold), response_key(hit))
            << "insertion=" << static_cast<int>(ins)
            << " machine=" << static_cast<int>(mach) << " seed=" << i;
        ++checked;
      }
  EXPECT_EQ(checked, 100u);
  const CoreStats stats = core.stats();
  EXPECT_EQ(stats.cache.hits, 100u);
  EXPECT_EQ(stats.cache.misses, 100u);
  EXPECT_EQ(stats.cache.collisions, 0u);
}

TEST(ServeCore, SynthResponsesMatchDirectPipeline) {
  // The service must reproduce the harness pipeline bit-for-bit: same rng
  // stream, same schedule text as scheduling the program directly.
  CoreConfig cfg;
  cfg.workers = 1;
  ServeCore core(cfg);
  for (std::size_t i = 0; i < 5; ++i) {
    const Request req =
        synth_request(i, i, InsertionPolicy::kOptimal, MachineKind::kSBM);
    const Response resp = core.handle(req);
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;

    GeneratorConfig gen;
    Rng rng = benchmark_rng(1990, i);
    const SynthesisResult synth = synthesize_benchmark(gen, rng);
    const InstrDag dag =
        InstrDag::build(synth.program, TimingModel::table1());
    const ScheduleResult direct = schedule_program(dag, req.sched, rng);
    EXPECT_EQ(resp.body, schedule_to_text(*direct.schedule)) << "seed " << i;
    EXPECT_EQ(resp.stats.barriers_final, direct.stats.barriers_final);
    EXPECT_EQ(resp.stats.completion, direct.stats.completion);
  }
}

TEST(ServeCore, RenumberedProgramHitsCacheInOwnNumbering) {
  // Two .bm sources computing the same dataflow with different statement
  // order (independent chains swapped) must share one cache entry, and the
  // second response must reference the second program's instruction ids.
  CoreConfig cfg;
  cfg.workers = 1;
  ServeCore core(cfg);

  Request a;
  a.id = 1;
  a.verb = Verb::kSchedule;
  a.seed = 7;
  a.source =
      "c = a + b;\n"
      "f = d * e;\n"
      "g = c + f;\n";
  Request b = a;
  b.id = 2;
  b.source =
      "f = d * e;\n"
      "c = a + b;\n"
      "g = c + f;\n";

  const Response first = core.handle(a);
  ASSERT_EQ(first.status, Status::kOk) << first.error;
  ASSERT_EQ(first.cache, CacheOutcome::kMiss);
  const Response second = core.handle(b);
  ASSERT_EQ(second.status, Status::kOk) << second.error;
  EXPECT_EQ(second.cache, CacheOutcome::kHit)
      << "renumbering-stable fingerprint failed to unify the two programs";
  EXPECT_EQ(first.fingerprint, second.fingerprint);

  // The hit's schedule must be valid *for b's program*: re-parse it against
  // b's DAG (schedule_from_text throws on out-of-range/duplicate ids).
  SchedulerSession session;
  const Program prog_b = session.compile_source(b.source);
  const InstrDag dag_b = session.build_dag(prog_b, TimingModel::table1());
  EXPECT_NO_THROW(schedule_from_text(dag_b, second.body));
  // And verification must pass.
  const Schedule sched_b = schedule_from_text(dag_b, second.body);
  EXPECT_EQ(session.verify(dag_b, sched_b).error_count(), 0u);
}

TEST(ServeCore, OverloadDegradesToFastRejection) {
  // One worker, held at a gate; a tiny admission bound. Everything beyond
  // the bound must be rejected immediately (on the submitter), and the
  // backlog must never exceed max_queue.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;

  CoreConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 4;
  cfg.pre_handle = [&](const Request&) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  ServeCore core(cfg);

  std::mutex mu;
  std::vector<Response> responses;
  auto cb = [&](const Response& r) {
    std::unique_lock<std::mutex> lock(mu);
    responses.push_back(r);
  };

  for (std::uint64_t i = 0; i < 12; ++i)
    core.submit(synth_request(i, i % 3, InsertionPolicy::kConservative,
                              MachineKind::kSBM),
                cb);

  std::size_t rejected;
  {
    std::unique_lock<std::mutex> lock(mu);
    rejected = responses.size();  // rejections answered synchronously
  }
  EXPECT_EQ(rejected, 8u) << "max_queue=4 must bound admission";
  for (const Response& r : responses)
    EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_LE(core.stats().queued, 4u);

  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  core.drain();
  {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_EQ(responses.size(), 12u) << "every request answered exactly once";
  }
  const CoreStats stats = core.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected, 8u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(ServeCore, CancelledQueuedRequestAnswersWithoutRunning) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> processed{0};

  CoreConfig cfg;
  cfg.workers = 1;
  cfg.pre_handle = [&](const Request&) {
    ++processed;
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  ServeCore core(cfg);

  std::mutex mu;
  std::vector<Response> responses;
  auto cb = [&](const Response& r) {
    std::unique_lock<std::mutex> lock(mu);
    responses.push_back(r);
  };

  core.submit(synth_request(1, 0, InsertionPolicy::kConservative,
                            MachineKind::kSBM),
              cb);  // occupies the worker
  CancelToken token =
      core.submit(synth_request(2, 1, InsertionPolicy::kConservative,
                                MachineKind::kSBM),
                  cb);
  token.cancel();  // still queued behind the gated request

  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  core.drain();

  std::unique_lock<std::mutex> lock(mu);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(processed.load(), 1) << "cancelled request must never execute";
  bool saw_ok = false, saw_cancelled = false;
  for (const Response& r : responses) {
    if (r.id == 1) saw_ok = r.status == Status::kOk;
    if (r.id == 2) saw_cancelled = r.status == Status::kCancelled;
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_cancelled);
  EXPECT_EQ(core.stats().cancelled, 1u);
}

TEST(ServeCore, DrainCompletesAdmittedAndRejectsLate) {
  CoreConfig cfg;
  cfg.workers = 2;
  ServeCore core(cfg);

  std::atomic<std::size_t> answered{0};
  std::atomic<std::size_t> ok{0};
  auto cb = [&](const Response& r) {
    if (r.status == Status::kOk) ++ok;
    ++answered;
  };
  for (std::uint64_t i = 0; i < 16; ++i)
    core.submit(synth_request(i, i % 4, InsertionPolicy::kConservative,
                              MachineKind::kDBM),
                cb);
  core.drain();
  EXPECT_EQ(answered.load(), 16u) << "drain must lose nothing admitted";
  EXPECT_EQ(ok.load(), 16u);

  Response late;
  core.submit(synth_request(99, 0, InsertionPolicy::kConservative,
                            MachineKind::kDBM),
              [&](const Response& r) { late = r; });
  EXPECT_EQ(late.status, Status::kRejected);
  EXPECT_EQ(late.error, "server draining");
}

TEST(ServeCore, ProtocolRoundTripPreservesRequestsAndResponses) {
  Request req = synth_request(42, 7, InsertionPolicy::kOptimal,
                              MachineKind::kDBM);
  req.verify = true;
  req.no_cache = true;
  req.sched.num_procs = 16;
  const Request back = decode_request(encode_request(req));
  EXPECT_EQ(encode_request(back), encode_request(req));

  Request sreq;
  sreq.verb = Verb::kSchedule;
  sreq.seed = 11;
  sreq.source = "b = a + a;\nc = b * 3;\n";
  const Request sback = decode_request(encode_request(sreq));
  EXPECT_EQ(sback.source, sreq.source);
  EXPECT_EQ(encode_request(sback), encode_request(sreq));

  CoreConfig cfg;
  cfg.workers = 1;
  ServeCore core(cfg);
  const Response resp = core.handle(sreq);
  ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  const Response rback = decode_response(encode_response(resp));
  EXPECT_EQ(encode_response(rback), encode_response(resp));
  EXPECT_EQ(rback.body, resp.body);
  EXPECT_EQ(rback.stats.completion, resp.stats.completion);
}

}  // namespace
}  // namespace bm
