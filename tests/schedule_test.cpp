#include <gtest/gtest.h>

#include "sched/schedule.hpp"

namespace bm {
namespace {


/// Program of `n` independent loads of distinct variables (each [1,4]).
Program loads_program(std::uint32_t n) {
  Program p(n);
  for (std::uint32_t i = 0; i < n; ++i) p.append(Tuple::load(i, i));
  return p;
}

struct Fixture {
  explicit Fixture(std::uint32_t loads, std::size_t procs)
      : prog(loads_program(loads)),
        dag(InstrDag::build(prog, TimingModel::table1())),
        sched(dag, procs) {}
  Program prog;
  InstrDag dag;
  Schedule sched;
};

TEST(Schedule, InitialBarrierSpansAllProcessors) {
  Fixture f(2, 4);
  EXPECT_EQ(f.sched.barrier_id_bound(), 1u);
  EXPECT_TRUE(f.sched.barrier_alive(Schedule::kInitialBarrier));
  EXPECT_EQ(f.sched.barrier_mask(Schedule::kInitialBarrier).count(), 4u);
  EXPECT_EQ(f.sched.inserted_barrier_count(), 0u);
}

TEST(Schedule, AppendAndLocate) {
  Fixture f(3, 2);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(1, 1);
  f.sched.append_instr(0, 2);
  EXPECT_TRUE(f.sched.placed(0));
  EXPECT_TRUE(f.sched.placed(2));
  EXPECT_EQ(f.sched.loc(2).proc, 0u);
  EXPECT_EQ(f.sched.loc(2).pos, 1u);
  EXPECT_EQ(f.sched.last_instr(0), NodeId{2});
  EXPECT_EQ(f.sched.instr_count(0), 2u);
  EXPECT_EQ(f.sched.instr_count(1), 1u);
  EXPECT_THROW(f.sched.append_instr(0, 0), Error);  // double placement
}

TEST(Schedule, DeltaQueries) {
  Fixture f(3, 1);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(0, 1);
  f.sched.append_instr(0, 2);
  EXPECT_EQ(f.sched.delta_before(0, 0), (TimeRange{0, 0}));
  EXPECT_EQ(f.sched.delta_before(0, 2), (TimeRange{2, 8}));
  EXPECT_EQ(f.sched.delta_through(0, 2), (TimeRange{3, 12}));
  EXPECT_EQ(f.sched.delta_before(0, 3), (TimeRange{3, 12}));  // end of stream
}

TEST(Schedule, BarrierNeighborQueries) {
  Fixture f(4, 2);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(1, 1);
  const BarrierId b = f.sched.insert_barrier({{0, 1}, {1, 1}});
  f.sched.append_instr(0, 2);

  EXPECT_EQ(f.sched.last_barrier_before(0, 0), Schedule::kInitialBarrier);
  EXPECT_EQ(f.sched.last_barrier_before(0, 2), b);
  EXPECT_EQ(f.sched.next_barrier_after(0, 0), b);
  EXPECT_EQ(f.sched.next_barrier_after(0, 2), std::nullopt);
  // δ resets after the barrier.
  EXPECT_EQ(f.sched.delta_before(0, 2), (TimeRange{0, 0}));
  EXPECT_EQ(f.sched.delta_through(0, 2), (TimeRange{1, 4}));
}

TEST(Schedule, InsertBarrierShiftsAndReindexes) {
  Fixture f(3, 1);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(0, 1);
  f.sched.insert_barrier({{0, 1}});  // between the two
  EXPECT_EQ(f.sched.loc(0).pos, 0u);
  EXPECT_EQ(f.sched.loc(1).pos, 2u);
  EXPECT_TRUE(f.sched.stream(0)[1].is_barrier);
}

TEST(Schedule, InsertBarrierValidatesInput) {
  Fixture f(2, 2);
  EXPECT_THROW(f.sched.insert_barrier({}), Error);
  EXPECT_THROW(f.sched.insert_barrier({{0, 5}}), Error);
  EXPECT_THROW(f.sched.insert_barrier({{0, 0}, {0, 0}}), Error);  // dup proc
  EXPECT_THROW(f.sched.insert_barrier({{7, 0}}), Error);
}

TEST(Schedule, BarrierDagAggregatesAcrossProcessors) {
  Fixture f(2, 2);
  f.sched.append_instr(0, 0);  // [1,4]
  f.sched.append_instr(1, 1);  // [1,4]
  const BarrierId b = f.sched.insert_barrier(
      {{0, 1}, {1, 1}});
  const BarrierDag& bd = f.sched.barrier_dag();
  // Both processors traverse initial→b with [1,4]: join_max keeps [1,4].
  EXPECT_EQ(bd.edge_range(Schedule::kInitialBarrier, b), (TimeRange{1, 4}));
  EXPECT_EQ(bd.fire_range(b), (TimeRange{1, 4}));
}

TEST(Schedule, CompletionJoinsProcessorFinishTimes) {
  Fixture f(4, 2);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(0, 1);  // P0: [2,8]
  f.sched.append_instr(1, 2);  // P1: [1,4]
  EXPECT_EQ(f.sched.proc_finish(0), (TimeRange{2, 8}));
  EXPECT_EQ(f.sched.proc_finish(1), (TimeRange{1, 4}));
  EXPECT_EQ(f.sched.completion(), (TimeRange{2, 8}));
}

TEST(Schedule, CompletionAccountsForBarrierWaits) {
  Fixture f(3, 2);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(0, 1);  // P0 code [2,8] before barrier
  f.sched.append_instr(1, 2);  // P1 code [1,4] before barrier
  f.sched.insert_barrier({{0, 2}, {1, 1}});
  // Both resume at the barrier fire time [2,8]; nothing after.
  EXPECT_EQ(f.sched.completion(), (TimeRange{2, 8}));
  EXPECT_EQ(f.sched.proc_finish(1), (TimeRange{2, 8}));
}

TEST(Schedule, MergeUnorderedOverlappingBarriers) {
  Fixture f(4, 4);
  for (ProcId p = 0; p < 4; ++p) f.sched.append_instr(p, p);
  const BarrierId a = f.sched.insert_barrier({{0, 1}, {1, 1}});
  const BarrierId b = f.sched.insert_barrier({{2, 1}, {3, 1}});
  // Both fire in [1,4] and are unordered → one merge into the lower id.
  EXPECT_EQ(f.sched.merge_overlapping_all(), 1u);
  EXPECT_TRUE(f.sched.barrier_alive(a));
  EXPECT_FALSE(f.sched.barrier_alive(b));
  EXPECT_EQ(f.sched.barrier_mask(a).count(), 4u);
  EXPECT_EQ(f.sched.inserted_barrier_count(), 1u);
  // Stream entries relabeled.
  EXPECT_TRUE(f.sched.stream(2)[1].is_barrier);
  EXPECT_EQ(f.sched.stream(2)[1].id, a);
}

TEST(Schedule, MergeSkipsOrderedBarriers) {
  Fixture f(4, 2);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(1, 1);
  const BarrierId a = f.sched.insert_barrier({{0, 1}, {1, 1}});
  f.sched.append_instr(0, 2);
  const BarrierId b = f.sched.insert_barrier({{0, 3}, {1, 2}});
  // a <_b b on both processors: ordered, never merged even if ranges touch.
  EXPECT_EQ(f.sched.merge_overlapping_all(), 0u);
  EXPECT_TRUE(f.sched.barrier_alive(a));
  EXPECT_TRUE(f.sched.barrier_alive(b));
  EXPECT_EQ(f.sched.inserted_barrier_count(), 2u);
}

TEST(Schedule, MergeSkipsDisjointFireRanges) {
  Fixture f(7, 4);
  f.sched.append_instr(0, 0);  // [1,4]
  const BarrierId a = f.sched.insert_barrier({{0, 1}, {1, 0}});
  // P2 runs five loads first: fire range [5,20] — disjoint from a's [1,4].
  for (NodeId n = 1; n <= 5; ++n) f.sched.append_instr(2, n);
  const BarrierId b = f.sched.insert_barrier({{2, 5}, {3, 0}});
  const TimeRange fa = f.sched.barrier_dag().fire_range(a);
  const TimeRange fb = f.sched.barrier_dag().fire_range(b);
  ASSERT_FALSE(fa.overlaps(fb));
  EXPECT_EQ(f.sched.merge_overlapping_all(), 0u);
  EXPECT_TRUE(f.sched.barrier_alive(a));
  EXPECT_TRUE(f.sched.barrier_alive(b));
}

TEST(Schedule, FinalBarrierSpansUsedProcessorsOnly) {
  Fixture f(3, 4);
  f.sched.append_instr(0, 0);
  f.sched.append_instr(2, 1);
  f.sched.add_final_barrier();
  ASSERT_TRUE(f.sched.final_barrier().has_value());
  const BarrierId fb = *f.sched.final_barrier();
  EXPECT_EQ(f.sched.barrier_mask(fb).to_indices(),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(f.sched.inserted_barrier_count(), 0u);  // final not counted
  EXPECT_THROW(f.sched.add_final_barrier(), Error);
}

TEST(Schedule, FinalBarrierSkippedForSingleUsedProcessor) {
  Fixture f(2, 4);
  f.sched.append_instr(1, 0);
  f.sched.add_final_barrier();
  EXPECT_FALSE(f.sched.final_barrier().has_value());
}

TEST(Schedule, OrderFeasibleAcceptsConsistentPlacement) {
  // Program with a dependence 0 → 1.
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, Operand::tuple(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);  // producer on P0
  sched.append_instr(1, 1);  // consumer on P1
  // No candidate: current state feasible.
  EXPECT_TRUE(sched.order_feasible({}));
  // Barrier after producer, before consumer: fine.
  const std::vector<Schedule::Loc> good = {{0, 1}, {1, 0}};
  EXPECT_TRUE(sched.order_feasible(good));
}

TEST(Schedule, OrderFeasibleRejectsDependenceInversion) {
  Program p(1);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, Operand::tuple(0)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 2);
  sched.append_instr(0, 0);  // producer on P0
  sched.append_instr(1, 1);  // consumer on P1
  // Barrier BEFORE the producer and AFTER the consumer would force the
  // consumer to finish before the producer starts: infeasible.
  const std::vector<Schedule::Loc> bad = {{0, 0}, {1, 1}};
  EXPECT_FALSE(sched.order_feasible(bad));
}

TEST(Schedule, OrderFeasibleRejectsInvertingMerge) {
  // Dependences 0→1 (P0→P1) and 2→3 (P1→P0). Barrier x after consumer 1;
  // barrier y before producer 2... construct: merging a barrier after the
  // consumer of one edge with a barrier before the producer of the same
  // edge forces the inversion.
  Program p(2);
  p.append(Tuple::load(0, 0));
  p.append(Tuple::store(1, 0, Operand::tuple(0)));
  p.append(Tuple::load(2, 1));
  p.append(Tuple::store(3, 1, Operand::tuple(2)));
  const InstrDag dag = InstrDag::build(p, TimingModel::table1());
  Schedule sched(dag, 4);
  sched.append_instr(0, 0);  // producer edge A on P0
  sched.append_instr(1, 1);  // consumer edge A on P1
  // x: after consumer 1 on P1 (paired with idle P2).
  const BarrierId x = sched.insert_barrier({{1, 1}, {2, 0}});
  // y: before producer 0 on P0 (paired with idle P3).
  const BarrierId y = sched.insert_barrier({{0, 0}, {3, 0}});
  // Merging x and y orders consumer-1's region before producer-0: rejected.
  EXPECT_FALSE(sched.order_feasible({}, x, y));
  EXPECT_TRUE(sched.order_feasible({}));
}

TEST(Schedule, ToStringShowsStreams) {
  Fixture f(2, 2);
  f.sched.append_instr(0, 0);
  f.sched.insert_barrier({{0, 1}, {1, 0}});
  const std::string s = f.sched.to_string();
  EXPECT_NE(s.find("P0: n0 |B1|"), std::string::npos);
  EXPECT_NE(s.find("P1: |B1|"), std::string::npos);
}

}  // namespace
}  // namespace bm
