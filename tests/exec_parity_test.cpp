// Differential parity: native execution vs the reference semantics, over
// the same deterministic corpus the golden-schedule files pin down
// (kBaseSeed=1990, 25 seeds x {conservative,optimal} x {SBM,DBM}).
//
// For every corpus schedule the lowered program is executed on real
// threads with BOTH barrier primitives across a thread grid that includes
// oversubscription (one thread per PE on a small box, and cooperative
// carriers with fewer threads than PEs), and the final memory/value state
// must be bit-identical to two independent references:
//
//   - eval_program: the order-independent interpreter oracle;
//   - simulate_values: the value-accurate replay of a simulated trace's
//     start order (itself asserted against the oracle).
//
// Tier-1 runs a spot subset; the full 100-schedule sweep is the *Slow*
// tests, gated on BM_EXEC_SLOW (scripts/check.sh --exec-smoke sets it,
// and ctest exposes them under the `slow` label).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "codegen/synthesize.hpp"
#include "exec/jit.hpp"
#include "exec/lower.hpp"
#include "exec/runtime.hpp"
#include "harness/experiment.hpp"
#include "ir/interp.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/value_sim.hpp"

namespace bm {
namespace {

constexpr std::uint64_t kBaseSeed = 1990;  // matches golden_parity_test
constexpr std::size_t kSeedsPerCombo = 25;

struct Combo {
  const char* name;
  InsertionPolicy insertion;
  MachineKind machine;
};

constexpr Combo kCombos[] = {
    {"conservative_sbm", InsertionPolicy::kConservative, MachineKind::kSBM},
    {"conservative_dbm", InsertionPolicy::kConservative, MachineKind::kDBM},
    {"optimal_sbm", InsertionPolicy::kOptimal, MachineKind::kSBM},
    {"optimal_dbm", InsertionPolicy::kOptimal, MachineKind::kDBM},
};

bool slow_enabled() { return std::getenv("BM_EXEC_SLOW") != nullptr; }

/// A corpus case; the schedule holds pointers into the dag, so both live
/// together behind one allocation.
struct Built {
  Program prog{0};
  std::optional<InstrDag> dag;
  ScheduleResult sr;
};

std::unique_ptr<Built> build_case(const Combo& c, std::size_t index) {
  GeneratorConfig gen;  // defaults == the golden corpus block shape
  SchedulerConfig sc;
  sc.insertion = c.insertion;
  sc.machine = c.machine;

  auto b = std::make_unique<Built>();
  Rng rng = benchmark_rng(kBaseSeed, index);
  SynthesisResult synth = synthesize_benchmark(gen, rng);
  b->prog = std::move(synth.program);
  b->dag.emplace(InstrDag::build(b->prog, TimingModel::table1()));
  b->sr = schedule_program(*b->dag, sc, rng);
  return b;
}

/// Non-trivial initial memory so Load paths are distinguishable from the
/// all-zero default state.
std::vector<std::int64_t> initial_for(std::size_t num_vars) {
  std::vector<std::int64_t> init(num_vars);
  for (std::size_t i = 0; i < num_vars; ++i)
    init[i] = static_cast<std::int64_t>(i) * 13 - 7;
  return init;
}

/// Thread grid: one-per-PE blocking (0), single carrier, the hardware
/// width, and 2x the hardware width — oversubscription on any box.
std::vector<std::uint32_t> thread_grid() {
  const std::uint32_t hc = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::uint32_t> grid{0, 1, hc, 2 * hc};
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

void expect_parity(const Built& b, const Combo& c, std::size_t seed,
                   const std::vector<std::uint32_t>& threads) {
  const exec::LoweredProgram lp = exec::lower(b.prog, *b.sr.schedule);
  const std::vector<std::int64_t> init = initial_for(lp.num_vars);
  const EvalResult oracle = eval_program(b.prog, init);

  // Independent reference #2: value-accurate replay of a simulated order.
  Rng sim_rng(kBaseSeed ^ (seed * 2654435761u) ^ 0x5157u);
  SimConfig sim_cfg;
  sim_cfg.machine = c.machine;
  const ExecTrace trace = simulate(*b.sr.schedule, sim_cfg, sim_rng);
  const ValueSimResult vsim = simulate_values(b.prog, *b.sr.schedule, trace, init);
  ASSERT_EQ(vsim.memory, oracle.memory)
      << c.name << " seed " << seed << ": value simulator vs oracle";
  ASSERT_EQ(vsim.values, oracle.values)
      << c.name << " seed " << seed << ": value simulator vs oracle";

  for (const exec::BarrierKind kind : exec::kAllBarrierKinds) {
    for (const std::uint32_t t : threads) {
      exec::ExecOptions opts;
      opts.barrier = kind;
      opts.threads = t;
      opts.spin_iters = 64;  // small bound: force the yield path too
      opts.initial_memory = init;
      const exec::ExecResult r = exec::execute(lp, opts);
      ASSERT_EQ(r.memory, oracle.memory)
          << c.name << " seed " << seed << " barrier "
          << exec::barrier_kind_name(kind) << " threads " << t;
      ASSERT_EQ(r.values, oracle.values)
          << c.name << " seed " << seed << " barrier "
          << exec::barrier_kind_name(kind) << " threads " << t;
    }
  }
}

class ExecParityTest : public ::testing::TestWithParam<Combo> {};

// Tier-1 spot check: first and last corpus seed of each combo, both
// primitives, full thread grid (blocking, single-carrier, oversubscribed).
TEST_P(ExecParityTest, SpotSeedsMatchOracle) {
  const Combo& c = GetParam();
  const std::vector<std::uint32_t> grid = thread_grid();
  for (const std::size_t seed : {std::size_t{0}, kSeedsPerCombo - 1}) {
    const std::unique_ptr<Built> b = build_case(c, seed);
    expect_parity(*b, c, seed, grid);
    if (HasFatalFailure()) return;
  }
}

// The full 100-schedule corpus, both primitives, blocking + one-carrier
// cooperative. Gated: set BM_EXEC_SLOW=1 (check.sh --exec-smoke).
TEST_P(ExecParityTest, FullCorpusMatchesOracleSlow) {
  if (!slow_enabled())
    GTEST_SKIP() << "set BM_EXEC_SLOW=1 (or run check.sh --exec-smoke)";
  const Combo& c = GetParam();
  const std::vector<std::uint32_t> grid{0, 1};
  for (std::size_t seed = 0; seed < kSeedsPerCombo; ++seed) {
    const std::unique_ptr<Built> b = build_case(c, seed);
    expect_parity(*b, c, seed, grid);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, ExecParityTest,
                         ::testing::ValuesIn(kCombos),
                         [](const ::testing::TestParamInfo<Combo>& info) {
                           return std::string(info.param.name);
                         });

// The dlopen-compiled leg: the emitted TU must compute the same state as
// the interpreter runtime and the oracle. Skipped where the JIT is
// unavailable (sanitizer builds, no system compiler, BM_EXEC_NO_JIT).
TEST(ExecJitParityTest, CompiledModuleMatchesOracle) {
  if (!exec::JitModule::available())
    GTEST_SKIP() << "JIT backend unavailable (sanitizer build, "
                    "BM_EXEC_NO_JIT, or no system compiler)";
  const Combo& c = kCombos[0];
  const std::unique_ptr<Built> b = build_case(c, 7);
  const exec::LoweredProgram lp = exec::lower(b->prog, *b->sr.schedule);
  const std::vector<std::int64_t> init = initial_for(lp.num_vars);
  const EvalResult oracle = eval_program(b->prog, init);

  const exec::JitModule mod(lp);
  for (const exec::BarrierKind kind : exec::kAllBarrierKinds) {
    exec::ExecOptions opts;
    opts.barrier = kind;
    opts.spin_iters = 64;
    opts.initial_memory = init;
    const exec::ExecResult r = mod.run(opts);
    EXPECT_EQ(r.memory, oracle.memory)
        << "jit barrier " << exec::barrier_kind_name(kind);
    EXPECT_EQ(r.values, oracle.values)
        << "jit barrier " << exec::barrier_kind_name(kind);
  }
}

// Every combo through the compiled leg; slow because each case pays a
// system-compiler invocation.
TEST(ExecJitParityTest, AllCombosCompileSlow) {
  if (!slow_enabled())
    GTEST_SKIP() << "set BM_EXEC_SLOW=1 (or run check.sh --exec-smoke)";
  if (!exec::JitModule::available())
    GTEST_SKIP() << "JIT backend unavailable (sanitizer build, "
                    "BM_EXEC_NO_JIT, or no system compiler)";
  for (const Combo& c : kCombos) {
    const std::unique_ptr<Built> b = build_case(c, 3);
    const exec::LoweredProgram lp = exec::lower(b->prog, *b->sr.schedule);
    const std::vector<std::int64_t> init = initial_for(lp.num_vars);
    const EvalResult oracle = eval_program(b->prog, init);
    const exec::JitModule mod(lp);
    exec::ExecOptions opts;
    opts.initial_memory = init;
    const exec::ExecResult r = mod.run(opts);
    EXPECT_EQ(r.memory, oracle.memory) << c.name;
    EXPECT_EQ(r.values, oracle.values) << c.name;
  }
}

// The gate satellite: only verified schedules are runnable.
TEST(ExecLowerGateTest, UnverifiedScheduleIsRefused) {
  const std::unique_ptr<Built> b = build_case(kCombos[0], 0);

  // A hand-built schedule that places every instruction on one PE in
  // *reverse* id order: consumers run before their producers, which the
  // verifier flags and lower() must refuse.
  Schedule bad(*b->dag, 2);
  for (std::size_t n = b->dag->num_instructions(); n-- > 0;)
    bad.append_instr(0, static_cast<NodeId>(n));
  EXPECT_THROW(exec::lower(b->prog, bad), Error);

  // A schedule that never placed anything is refused before verification.
  const Schedule empty(*b->dag, 2);
  EXPECT_THROW(exec::lower(b->prog, empty), Error);

  // The corpus schedule itself passes the gate (and with the gate off).
  exec::LowerOptions off;
  off.verify = false;
  EXPECT_NO_THROW(exec::lower(b->prog, *b->sr.schedule, off));
  EXPECT_NO_THROW(exec::lower(b->prog, *b->sr.schedule));
}

}  // namespace
}  // namespace bm
