// §7 extension — control flow: barrier MIMD vs lockstep (VLIW) bound on
// structured programs with data-dependent loops. Not a figure in the paper;
// it quantifies the introduction's claim that barrier MIMDs extend static
// scheduling to "multiple flow-paths ... and variable-execution-time
// instructions" that VLIWs must provision for in the worst case.
#include <iostream>

#include "cfg/cfg_gen.hpp"
#include "cfg/cfg_sim.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 60));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  print_bench_header(
      "control flow — barrier MIMD vs lockstep worst-case bound",
      "§1/§7 (extension; no paper figure)",
      "structured programs, depth 2, loops with trip counts 1..T", opt);

  CfgGeneratorConfig gen;
  gen.block = GeneratorConfig{.num_statements = 10, .num_variables = 8,
                              .num_constants = 4, .const_max = 64};
  gen.max_depth = 2;

  SchedulerConfig sc;
  sc.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));

  TextTable table({"max trip T", "blocks", "barrier mean compl",
                   "barrier worst path", "VLIW lockstep bound",
                   "bound / mean", "barrier frac"});
  CsvWriter csv("control_flow.csv");
  csv.write_row({"max_trip", "mean_completion", "worst_path", "vliw_bound",
                 "ratio"});
  for (std::int64_t max_trip : {1, 2, 4, 8, 16}) {
    gen.max_trip = max_trip;
    RunningStats mean_compl, worst_path, vliw_bound, blocks, barrier_frac;
    for (std::size_t i = 0; i < opt.seeds; ++i) {
      Rng rng = benchmark_rng(opt.base_seed, i);
      const CfgProgram cfg = generate_cfg(gen, rng);
      const CfgScheduleResult s =
          schedule_cfg(cfg, sc, TimingModel::table1(), rng);
      blocks.add(static_cast<double>(cfg.size()));
      barrier_frac.add(s.barrier_fraction());
      vliw_bound.add(static_cast<double>(
          vliw_cfg_worst_case(cfg, sc.num_procs, TimingModel::table1(), 1)));
      double total = 0;
      Time worst = 0;
      for (int run = 0; run < 5; ++run) {
        std::vector<std::int64_t> memory(cfg.num_vars());
        for (auto& m : memory) m = rng.uniform(-100, 100);
        const CfgExecResult r = run_cfg(s, CfgSimConfig{}, memory, rng);
        total += static_cast<double>(r.completion);
        CfgSimConfig hi;
        hi.sampling = SamplingMode::kAllMax;
        worst = std::max(worst, run_cfg(s, hi, memory, rng).completion);
      }
      mean_compl.add(total / 5.0);
      worst_path.add(static_cast<double>(worst));
    }
    table.add_row({std::to_string(max_trip),
                   TextTable::num(blocks.mean(), 1),
                   TextTable::num(mean_compl.mean(), 1),
                   TextTable::num(worst_path.mean(), 1),
                   TextTable::num(vliw_bound.mean(), 1),
                   TextTable::num(vliw_bound.mean() / mean_compl.mean(), 2) +
                       "x",
                   TextTable::pct(barrier_frac.mean())});
    csv.write_row({std::to_string(max_trip),
                   std::to_string(mean_compl.mean()),
                   std::to_string(worst_path.mean()),
                   std::to_string(vliw_bound.mean()),
                   std::to_string(vliw_bound.mean() / mean_compl.mean())});
  }
  table.render(std::cout);
  std::cout << "(series written to control_flow.csv)\n"
            << "\nExpected shape: the lockstep bound stays 1.3–2x above the "
               "barrier machine's actual mean. At small T the gap comes "
               "from untaken if-arms (the VLIW provisions both); at large T "
               "from loop trip counts (the VLIW pays T where the actual "
               "draw averages (1+T)/2). Either way the barrier MIMD pays "
               "only the path taken.\n";
  return 0;
}
