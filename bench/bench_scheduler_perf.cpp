// google-benchmark microbenchmarks: throughput of the compiler-side
// pipeline (synthesis, DAG construction, scheduling with each insertion
// policy, VLIW baseline). Not a paper figure — engineering instrumentation.
#include <benchmark/benchmark.h>

#include "codegen/synthesize.hpp"
#include "harness/experiment.hpp"
#include "sched/scheduler.hpp"
#include "vliw/vliw.hpp"

namespace {

using namespace bm;

GeneratorConfig gen_for(std::int64_t statements) {
  GeneratorConfig g;
  g.num_statements = static_cast<std::uint32_t>(statements);
  g.num_variables = 10;
  return g;
}

void BM_Synthesize(benchmark::State& state) {
  const GeneratorConfig gen = gen_for(state.range(0));
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_benchmark(gen, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Synthesize)->Arg(20)->Arg(60)->Arg(120);

void BM_BuildInstrDag(benchmark::State& state) {
  Rng rng(42);
  const SynthesisResult s = synthesize_benchmark(gen_for(state.range(0)), rng);
  const TimingModel tm = TimingModel::table1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(InstrDag::build(s.program, tm));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildInstrDag)->Arg(20)->Arg(60)->Arg(120);

void BM_ScheduleConservative(benchmark::State& state) {
  Rng rng(42);
  const SynthesisResult s = synthesize_benchmark(gen_for(state.range(0)), rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  for (auto _ : state) {
    Rng tie_rng(7);
    benchmark::DoNotOptimize(schedule_program(dag, cfg, tie_rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScheduleConservative)->Arg(20)->Arg(60)->Arg(120);

void BM_ScheduleOptimal(benchmark::State& state) {
  Rng rng(42);
  const SynthesisResult s = synthesize_benchmark(gen_for(state.range(0)), rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  cfg.insertion = InsertionPolicy::kOptimal;
  for (auto _ : state) {
    Rng tie_rng(7);
    benchmark::DoNotOptimize(schedule_program(dag, cfg, tie_rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScheduleOptimal)->Arg(20)->Arg(60)->Arg(120);

void BM_ScheduleVliw(benchmark::State& state) {
  Rng rng(42);
  const SynthesisResult s = synthesize_benchmark(gen_for(state.range(0)), rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_vliw(dag, 8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScheduleVliw)->Arg(20)->Arg(60)->Arg(120);

void BM_ScheduleManyProcs(benchmark::State& state) {
  Rng rng(42);
  const SynthesisResult s = synthesize_benchmark(gen_for(100), rng);
  const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng tie_rng(7);
    benchmark::DoNotOptimize(schedule_program(dag, cfg, tie_rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScheduleManyProcs)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// Seed-level fan-out of the experiment harness (arg = worker count). One
// iteration = a full 16-seed parameter point; compare Jobs/1 vs Jobs/N for
// the harness scaling curve. Results are bit-identical across worker counts.
void BM_RunPointJobs(benchmark::State& state) {
  GeneratorConfig gen;
  gen.num_statements = 30;
  gen.num_variables = 10;
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  RunOptions opt;
  opt.seeds = 16;
  opt.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_point(gen, cfg, opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * opt.seeds));
}
BENCHMARK(BM_RunPointJobs)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
// main() is bench/bench_main.cpp (stamps bm_build_type for the bench gate).
