// §5.4 ablation — node-ordering priority swap: sort by minimum height first
// (ties broken by maximum height) instead of the default maximum-first.
//
// Paper findings: the minimum execution time decreases a little, the
// maximum increases a little; overall the changes are quite small.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("§5.4b — node ordering priority ablation", "§5.4",
                     "60 statements, 10 variables, 8 PEs; h_max-first vs "
                     "h_min-first",
                     opt);

  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  TextTable table({"ordering", "barrier", "serialized", "static", "compl min",
                   "compl max"});
  double min_time[2] = {0, 0}, max_time[2] = {0, 0};
  int idx = 0;
  for (OrderingPolicy policy :
       {OrderingPolicy::kMaxThenMin, OrderingPolicy::kMinThenMax}) {
    cfg.ordering = policy;
    const PointAggregate agg = run_point(gen, cfg, opt);
    const FractionAggregate& f = agg.fractions;
    table.add_row({std::string(to_string(policy)),
                   TextTable::pct(f.barrier_frac.mean()),
                   TextTable::pct(f.serialized_frac.mean()),
                   TextTable::pct(f.static_frac.mean()),
                   TextTable::num(f.completion_min.mean(), 2),
                   TextTable::num(f.completion_max.mean(), 2)});
    min_time[idx] = f.completion_min.mean();
    max_time[idx] = f.completion_max.mean();
    ++idx;
  }
  table.render(std::cout);
  std::cout << "\nΔ completion min (min-first − max-first): "
            << TextTable::num(min_time[1] - min_time[0], 3)
            << "; Δ completion max: "
            << TextTable::num(max_time[1] - max_time[0], 3) << '\n'
            << "Paper: min-first trades a slightly better best case for a "
               "slightly worse worst case; both changes are quite small.\n";
  return 0;
}
