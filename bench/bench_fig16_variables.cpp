// Figure 16: synchronization fractions vs number of variables
// (8 processors, 60 statements, variables swept 2..15).
//
// Paper shape: the barrier fraction first rises with the parallelism width,
// then stays constant once the width exceeds the machine size; the
// serialization fraction falls as width grows.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));

  print_bench_header("Figure 16 — sync fractions vs number of variables",
                     "Fig. 16 (§5.2)",
                     "8 PEs, 60 statements, variables 2..15", opt);

  std::vector<SeriesRow> rows;
  for (std::uint32_t vars = 2; vars <= 15; ++vars) {
    gen.num_variables = vars;
    rows.push_back({std::to_string(vars), run_point(gen, cfg, opt)});
  }
  print_fraction_series("#variables", rows, "fig16_variables.csv");
  std::cout << "\nPaper shape: barrier fraction rises then levels off once "
               "parallelism width exceeds the 8 PEs; serialization falls.\n";
  return 0;
}
