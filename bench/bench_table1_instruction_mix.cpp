// Table 1: instruction frequencies and execution-time ranges.
//
// Generates a large corpus of synthetic blocks and reports the observed
// operation mix of the *source statements* against the published
// Alexander–Wortman frequencies, plus the Load/Store rates that emerge from
// load-on-first-use / store-on-assignment and the optimizer (§2.2) — the
// paper leaves those blank in the table for exactly that reason.
#include <iostream>
#include <map>

#include "codegen/synthesize.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 2000));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 40));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("Table 1 — instruction mix and execution-time ranges",
                     "Table 1 (§2.1)",
                     std::to_string(gen.num_statements) + " statements, " +
                         std::to_string(gen.num_variables) + " variables",
                     opt);

  std::map<Opcode, std::size_t> source_ops;   // statement operations
  std::map<Opcode, std::size_t> emitted_ops;  // optimized tuple opcodes
  std::size_t source_total = 0, emitted_total = 0;
  for (std::size_t i = 0; i < opt.seeds; ++i) {
    Rng rng = benchmark_rng(opt.base_seed, i);
    const SynthesisResult r = synthesize_benchmark(gen, rng);
    for (const Assign& s : r.statements) {
      ++source_ops[s.op];
      ++source_total;
    }
    for (const Tuple& t : r.program.tuples()) {
      ++emitted_ops[t.op];
      ++emitted_total;
    }
  }

  const TimingModel tm = TimingModel::table1();
  TextTable table({"Instruction", "Table-1 freq", "source freq",
                   "optimized-tuple freq", "Min. Time", "Max. Time"});
  for (Opcode op : all_opcodes()) {
    const double expected = opcode_frequency_percent(op);
    const double source =
        100.0 * static_cast<double>(source_ops[op]) /
        static_cast<double>(source_total);
    const double emitted =
        100.0 * static_cast<double>(emitted_ops[op]) /
        static_cast<double>(emitted_total);
    table.add_row({std::string(opcode_name(op)),
                   is_binary_op(op) ? TextTable::num(expected, 1) + "%" : "—",
                   is_binary_op(op) ? TextTable::num(source, 1) + "%" : "—",
                   TextTable::num(emitted, 1) + "%",
                   std::to_string(tm.range(op).min),
                   std::to_string(tm.range(op).max)});
  }
  table.render(std::cout);
  std::cout << "\nSource operations drawn: " << source_total
            << "; optimized tuples: " << emitted_total << ".\n"
            << "Check: source frequencies must match Table 1 within "
               "sampling noise; Load/Store rates are emergent.\n";
  return 0;
}
