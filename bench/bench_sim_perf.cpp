// google-benchmark microbenchmarks: throughput of the SBM/DBM execution
// simulators. Not a paper figure — engineering instrumentation.
#include <memory>

#include <benchmark/benchmark.h>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace bm;

struct Prepared {
  // The schedule holds a pointer to the dag, so keep the dag's address
  // stable across the return-by-value move.
  std::unique_ptr<InstrDag> dag;
  ScheduleResult result;
};

Prepared prepare(std::size_t statements, MachineKind machine) {
  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(statements);
  gen.num_variables = 10;
  Rng rng(42);
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  Prepared p;
  p.dag = std::make_unique<InstrDag>(
      InstrDag::build(s.program, TimingModel::table1()));
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  cfg.machine = machine;
  p.result = schedule_program(*p.dag, cfg, rng);
  return p;
}

void BM_SimulateSbm(benchmark::State& state) {
  const Prepared p =
      prepare(static_cast<std::size_t>(state.range(0)), MachineKind::kSBM);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(
        *p.result.schedule, {MachineKind::kSBM, SamplingMode::kUniform}, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulateSbm)->Arg(20)->Arg(60)->Arg(120);

void BM_SimulateDbm(benchmark::State& state) {
  const Prepared p =
      prepare(static_cast<std::size_t>(state.range(0)), MachineKind::kDBM);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(
        *p.result.schedule, {MachineKind::kDBM, SamplingMode::kUniform}, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulateDbm)->Arg(20)->Arg(60)->Arg(120);

void BM_ValidateTrace(benchmark::State& state) {
  const Prepared p = prepare(100, MachineKind::kSBM);
  Rng rng(9);
  const ExecTrace trace = simulate(
      *p.result.schedule, {MachineKind::kSBM, SamplingMode::kUniform}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_violations(*p.dag, trace));
  }
}
BENCHMARK(BM_ValidateTrace);

}  // namespace
// main() is bench/bench_main.cpp (stamps bm_build_type for the bench gate).
