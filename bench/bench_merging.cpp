// §4.4.3 barrier merging: on the benchmark set the paper cites (10
// variables, 80 statements), merging produced ≈35% fewer barriers in SBM
// schedules, raised the static scheduling fraction, and cost a little
// completion time relative to the DBM.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();
  opt.sim_runs = static_cast<std::size_t>(flags.get_int("sim-runs", 10));

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 80));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("§4.4.3 — barrier merging (SBM) vs no merging (DBM)",
                     "§4.4.3",
                     "10 variables, 80 statements, 8 PEs", opt);

  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));

  TextTable table({"machine", "barriers/blk", "inserted/blk", "merges/blk",
                   "static frac", "compl max (mean)", "sim mean compl"});
  double barriers[2] = {0, 0};
  int idx = 0;
  for (MachineKind machine : {MachineKind::kDBM, MachineKind::kSBM}) {
    cfg.machine = machine;
    RunningStats sim_mean;
    const PointAggregate agg =
        run_point(gen, cfg, opt, [&](const BenchmarkOutcome& o) {
          sim_mean.add(o.barrier_completion.mean);
        });
    const FractionAggregate& f = agg.fractions;
    table.add_row({std::string(to_string(machine)),
                   TextTable::num(f.barriers.mean(), 2),
                   TextTable::num(f.barriers_inserted.mean(), 2),
                   TextTable::num(f.merges.mean(), 2),
                   TextTable::pct(f.static_frac.mean()),
                   TextTable::num(f.completion_max.mean(), 1),
                   TextTable::num(sim_mean.mean(), 1)});
    barriers[idx++] = f.barriers.mean();
  }
  table.render(std::cout);
  const double reduction = 100.0 * (1.0 - barriers[1] / barriers[0]);
  std::cout << "\nBarrier reduction from merging: "
            << TextTable::num(reduction, 1) << "% (paper: ≈35%).\n"
            << "Paper also reports: SBM completion slightly above DBM but "
               "close; static fraction higher with merging.\n";
  return 0;
}
