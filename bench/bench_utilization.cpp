// Machine-utilization decomposition (extension; no paper figure): where a
// barrier MIMD's cycles go — useful compute, barrier waiting, tail idle —
// across machine sizes and the shipped machine presets. The barrier-wait
// share is the runtime face of the barrier fraction the paper plots.
#include <iostream>

#include "harness/report.hpp"
#include "machine/presets.hpp"
#include "sim/analysis.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 60));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("machine utilization — compute vs barrier wait vs idle",
                     "extension (runtime view of §5's fractions)",
                     "60 statements, 10 variables; presets × machine sizes",
                     opt);

  TextTable table({"machine", "#PEs", "utilization", "busy", "barrier wait",
                   "idle", "mean compl"});
  CsvWriter csv("utilization.csv");
  csv.write_row({"machine", "procs", "utilization", "busy_frac", "wait_frac",
                 "idle_frac", "mean_completion"});
  for (const MachineDescription& m : machine_presets()) {
    for (std::size_t procs : {2u, 4u, 8u, 16u}) {
      RunningStats util, busy, wait, idle, completion_stats;
      for (std::size_t i = 0; i < opt.seeds; ++i) {
        Rng rng = benchmark_rng(opt.base_seed, i);
        const SynthesisResult s = synthesize_benchmark(gen, rng);
        const InstrDag dag = InstrDag::build(s.program, m.timing);
        SchedulerConfig cfg;
        cfg.num_procs = procs;
        cfg.barrier_latency = m.barrier_latency;
        const ScheduleResult r = schedule_program(dag, cfg, rng);
        for (int run = 0; run < 3; ++run) {
          const ExecTrace t = simulate(
              *r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
          const TraceAnalysis a = analyze_trace(*r.schedule, t);
          util.add(a.machine_utilization());
          const double total = static_cast<double>(
              a.total_busy + a.total_barrier_wait + a.total_idle);
          if (total > 0) {
            busy.add(static_cast<double>(a.total_busy) / total);
            wait.add(static_cast<double>(a.total_barrier_wait) / total);
            idle.add(static_cast<double>(a.total_idle) / total);
          }
          completion_stats.add(static_cast<double>(t.completion));
        }
      }
      table.add_row({m.name, std::to_string(procs),
                     TextTable::pct(util.mean()), TextTable::pct(busy.mean()),
                     TextTable::pct(wait.mean()), TextTable::pct(idle.mean()),
                     TextTable::num(completion_stats.mean(), 1)});
      csv.write_row({m.name, std::to_string(procs),
                     std::to_string(util.mean()), std::to_string(busy.mean()),
                     std::to_string(wait.mean()), std::to_string(idle.mean()),
                     std::to_string(completion_stats.mean())});
    }
  }
  table.render(std::cout);
  std::cout << "(series written to utilization.csv)\n"
            << "\nExpected shape: utilization falls as PEs grow past the "
               "parallelism width (more idle processors); barrier-wait share "
               "rises with wider timing variation and barrier latency.\n";
  return 0;
}
