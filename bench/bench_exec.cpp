// google-benchmark microbenchmarks for the native execution backend: raw
// per-primitive barrier crossing latency at several participant counts
// (manual time from the calibrate helper, so thread spawn/join is
// excluded), schedule lowering throughput, and the interpreter runtime
// end to end. Emit + system-compiler time is deliberately NOT benchmarked
// — the JIT's cost is the compiler's, not this repo's. Not a paper figure
// — engineering instrumentation; BENCH_exec.json is the gated baseline.
#include <cstddef>
#include <memory>

#include <benchmark/benchmark.h>

#include "codegen/synthesize.hpp"
#include "exec/calibrate.hpp"
#include "exec/lower.hpp"
#include "exec/runtime.hpp"
#include "sched/scheduler.hpp"
#include "support/rng.hpp"

namespace {

using namespace bm;

struct Prepared {
  // The schedule holds a pointer to the dag, so keep the dag's address
  // stable across the return-by-value move.
  Program prog{0};
  std::unique_ptr<InstrDag> dag;
  ScheduleResult result;
};

Prepared prepare(std::size_t statements) {
  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(statements);
  Rng rng(42);
  SynthesisResult s = synthesize_benchmark(gen, rng);
  Prepared p;
  p.prog = std::move(s.program);
  p.dag = std::make_unique<InstrDag>(
      InstrDag::build(p.prog, TimingModel::table1()));
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  p.result = schedule_program(*p.dag, cfg, rng);
  return p;
}

/// One full barrier crossing (all arrive, all released) on real threads.
/// Manual time: each benchmark iteration runs a batch of back-to-back
/// phases inside measure_barrier_overhead_ns and reports the per-batch
/// wall, so thread creation never pollutes the figure.
void barrier_crossing(benchmark::State& state, exec::BarrierKind kind) {
  constexpr std::uint32_t kRounds = 512;
  const auto participants = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const double per_crossing_ns =
        exec::measure_barrier_overhead_ns(kind, participants, kRounds, 64);
    state.SetIterationTime(per_crossing_ns * kRounds * 1e-9);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRounds);
}

void BM_ExecBarrierCentral(benchmark::State& state) {
  barrier_crossing(state, exec::BarrierKind::kCentral);
}
BENCHMARK(BM_ExecBarrierCentral)->Arg(2)->Arg(8)->UseManualTime();

void BM_ExecBarrierTree(benchmark::State& state) {
  barrier_crossing(state, exec::BarrierKind::kTree);
}
BENCHMARK(BM_ExecBarrierTree)->Arg(2)->Arg(8)->UseManualTime();

/// Lowering a verified schedule to the native form — includes the
/// re-verification gate and the timing-edge coverage scan, the pure-CPU
/// cost a caller pays once per schedule before any run.
void BM_ExecLower(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const exec::LoweredProgram lp = exec::lower(p.prog, *p.result.schedule);
    benchmark::DoNotOptimize(lp.total_ops);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExecLower)->Arg(24)->Arg(120);

/// Interpreter runtime end to end, one thread per PE, timeline off.
/// Dominated by thread spawn + barrier crossings on a small box, so it
/// rides in BENCH_exec.json for visibility but is not gated (run-to-run
/// scheduling spread on a loaded CI core exceeds the gate's noise model).
void BM_ExecRunBlocking(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)));
  const exec::LoweredProgram lp = exec::lower(p.prog, *p.result.schedule);
  exec::ExecOptions opts;
  opts.timeline = false;
  opts.spin_iters = 64;
  for (auto _ : state) {
    const exec::ExecResult r = exec::execute(lp, opts);
    benchmark::DoNotOptimize(r.memory.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lp.total_ops));
}
BENCHMARK(BM_ExecRunBlocking)->Arg(24);

}  // namespace
