// Figure 17: synchronization fractions vs number of processors
// (100 statements, 10 variables, PEs swept 2..128).
//
// Paper shape: the barrier fraction grows while the machine is smaller than
// the benchmark's parallelism width, then stays constant; the serialization
// fraction is nearly flat (two competing effects cancel, §5.3).
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 100));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("Figure 17 — sync fractions vs number of processors",
                     "Fig. 17 (§5.3)",
                     "100 statements, 10 variables, PEs 2..128", opt);

  std::vector<SeriesRow> rows;
  SchedulerConfig cfg;
  for (std::size_t procs : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    cfg.num_procs = procs;
    rows.push_back({std::to_string(procs), run_point(gen, cfg, opt)});
  }
  print_fraction_series("#PEs", rows, "fig17_processors.csv");
  std::cout << "\nPaper shape: barrier fraction increases up to the "
               "parallelism width, then is flat; serialization ~constant.\n";
  return 0;
}
