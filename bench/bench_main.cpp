// Shared benchmark main: stamps the project's CMAKE_BUILD_TYPE into the
// JSON context as `bm_build_type`. scripts/bench_gate.py keys its
// Release-only policy on this field (context.library_build_type describes
// the benchmark *library*, which distro packages often build as debug even
// when the project is optimized — it is not a trustworthy signal).
#include <benchmark/benchmark.h>

#ifndef BM_BUILD_TYPE
#define BM_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  benchmark::AddCustomContext("bm_build_type", BM_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
