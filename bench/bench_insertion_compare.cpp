// §4.4.1 vs §4.4.2 — conservative vs "optimal" barrier insertion.
//
// The paper implemented both but ran all experiments with the conservative
// algorithm ("much simpler and the results were very good", footnote 5).
// This bench quantifies what the optimal algorithm buys: barriers saved by
// examining overlapping longest paths (Fig. 13), and its cost in scheduling
// time.
#include <chrono>
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("§4.4 — conservative vs optimal barrier insertion",
                     "§4.4.1 / §4.4.2 (footnote 5)",
                     "60 statements, 10 variables; both machines", opt);

  TextTable table({"machine", "insertion", "barriers/blk", "inserted/blk",
                   "static frac", "compl max", "sched time/blk"});
  for (MachineKind machine : {MachineKind::kSBM, MachineKind::kDBM}) {
    for (InsertionPolicy insertion :
         {InsertionPolicy::kConservative, InsertionPolicy::kOptimal}) {
      SchedulerConfig cfg;
      cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
      cfg.machine = machine;
      cfg.insertion = insertion;
      const auto start = std::chrono::steady_clock::now();
      const PointAggregate agg = run_point(gen, cfg, opt);
      const auto elapsed = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count() /
                           static_cast<double>(opt.seeds);
      const FractionAggregate& f = agg.fractions;
      table.add_row({std::string(to_string(machine)),
                     std::string(to_string(insertion)),
                     TextTable::num(f.barriers.mean(), 2),
                     TextTable::num(f.barriers_inserted.mean(), 2),
                     TextTable::pct(f.static_frac.mean()),
                     TextTable::num(f.completion_max.mean(), 1),
                     TextTable::num(elapsed, 0) + "us"});
    }
  }
  table.render(std::cout);
  std::cout << "\nExpectation: the optimal check never inserts more "
               "barriers, at extra analysis cost (k-longest-path loop); the "
               "paper used the conservative algorithm for all experiments.\n";
  return 0;
}
