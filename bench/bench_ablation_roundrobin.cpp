// §5.4 ablation — round-robin node assignment: the i-th node in the sorted
// list goes to processor (i mod N).
//
// Paper findings: serialization nearly vanishes for large machines, the
// barrier fraction grows substantially (up to ≈50%), both min and max
// execution times increase, and the gap to list scheduling shrinks as the
// machine grows.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("§5.4a — round-robin assignment ablation", "§5.4",
                     "60 statements, 10 variables; list vs round-robin", opt);

  TextTable table({"#PEs", "policy", "barrier", "serialized", "static",
                   "compl min", "compl max"});
  CsvWriter csv("ablation_roundrobin.csv");
  csv.write_row({"procs", "policy", "barrier_frac", "serialized_frac",
                 "static_frac", "completion_min", "completion_max"});
  SchedulerConfig cfg;
  for (std::size_t procs : {2u, 4u, 8u, 16u, 32u}) {
    cfg.num_procs = procs;
    for (AssignmentPolicy policy :
         {AssignmentPolicy::kListSerialize, AssignmentPolicy::kRoundRobin}) {
      cfg.assignment = policy;
      const PointAggregate agg = run_point(gen, cfg, opt);
      const FractionAggregate& f = agg.fractions;
      table.add_row({std::to_string(procs), std::string(to_string(policy)),
                     TextTable::pct(f.barrier_frac.mean()),
                     TextTable::pct(f.serialized_frac.mean()),
                     TextTable::pct(f.static_frac.mean()),
                     TextTable::num(f.completion_min.mean(), 1),
                     TextTable::num(f.completion_max.mean(), 1)});
      csv.write_row({std::to_string(procs), std::string(to_string(policy)),
                     std::to_string(f.barrier_frac.mean()),
                     std::to_string(f.serialized_frac.mean()),
                     std::to_string(f.static_frac.mean()),
                     std::to_string(f.completion_min.mean()),
                     std::to_string(f.completion_max.mean())});
    }
  }
  table.render(std::cout);
  std::cout << "(series written to ablation_roundrobin.csv)\n"
            << "\nPaper: round-robin kills serialization, inflates the "
               "barrier fraction (toward 50%), and lengthens execution; the "
               "completion-time gap narrows on large machines.\n";
  return 0;
}
