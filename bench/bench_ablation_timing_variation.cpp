// §5.4 ablation — instruction timing variation: regenerate the benchmarks
// with much wider per-instruction [min,max] ranges (width scaled by a
// factor, minima preserved).
//
// Paper finding: the barrier fraction is not very sensitive to the timing
// variation, rising only slightly for very large variations.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("§5.4d — instruction timing variation ablation", "§5.4",
                     "60 statements, 10 variables, 8 PEs; range width × k",
                     opt);

  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  std::vector<SeriesRow> rows;
  for (double factor : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    RunOptions o = opt;
    o.timing = TimingModel::table1_with_variation(factor);
    rows.push_back({"width x " + TextTable::num(factor, 1),
                    run_point(gen, cfg, o)});
  }
  print_fraction_series("variation", rows, "ablation_timing_variation.csv");
  std::cout << "\nPaper: the barrier fraction increases only slightly even "
               "for large timing variations.\n";
  return 0;
}
