// §5 headline numbers, measured over the full parameter sweep the paper
// describes (>3500 benchmarks; 100 per parameter point):
//   - barrier fraction ranges 3%..23%
//   - serialization fraction ranges 50%..90%
//   - static fraction ranges 8%..40%
//   - >77% of synchronizations need no runtime synchronization
//   - ≈28% of cross-PE pairs resolved by earlier barriers (§3, Fig. 8)
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  print_bench_header(
      "§5 headline — fraction ranges over the full parameter sweep",
      "§5 (summary ranges)",
      "statements {5..60} × variables {2..15} × PEs {2..128}, 100 seeds/point",
      opt);

  RunningStats barrier_pts, serial_pts, static_pts, no_rt, cross_resolved,
      timing_avoid, repairs;
  std::size_t benchmarks = 0, points = 0;
  GeneratorConfig gen;
  SchedulerConfig cfg;
  for (std::uint32_t stmts : {5u, 15u, 30u, 60u}) {
    for (std::uint32_t vars : {2u, 5u, 10u, 15u}) {
      for (std::size_t procs : {2u, 8u, 32u, 128u}) {
        gen.num_statements = stmts;
        gen.num_variables = vars;
        cfg.num_procs = procs;
        const PointAggregate agg = run_point(gen, cfg, opt);
        const FractionAggregate& f = agg.fractions;
        barrier_pts.add(f.barrier_frac.mean());
        serial_pts.add(f.serialized_frac.mean());
        static_pts.add(f.static_frac.mean());
        no_rt.add(f.no_runtime_frac.mean());
        if (f.cross_resolved_frac.count() > 0)
          cross_resolved.add(f.cross_resolved_frac.mean());
        if (f.timing_avoidance_frac.count() > 0)
          timing_avoid.add(f.timing_avoidance_frac.mean());
        repairs.add(f.repairs.mean());
        benchmarks += opt.seeds;
        ++points;
      }
    }
  }

  TextTable table({"quantity", "min (point mean)", "max (point mean)",
                   "overall mean", "paper"});
  table.add_row({"barrier fraction", TextTable::pct(barrier_pts.min()),
                 TextTable::pct(barrier_pts.max()),
                 TextTable::pct(barrier_pts.mean()), "3%..23%"});
  table.add_row({"serialized fraction", TextTable::pct(serial_pts.min()),
                 TextTable::pct(serial_pts.max()),
                 TextTable::pct(serial_pts.mean()), "50%..90%"});
  table.add_row({"static fraction", TextTable::pct(static_pts.min()),
                 TextTable::pct(static_pts.max()),
                 TextTable::pct(static_pts.mean()), "8%..40%"});
  table.add_row({"no-runtime-sync fraction", TextTable::pct(no_rt.min()),
                 TextTable::pct(no_rt.max()), TextTable::pct(no_rt.mean()),
                 ">77%"});
  table.add_row({"cross-PE pairs resolved statically",
                 TextTable::pct(cross_resolved.min()),
                 TextTable::pct(cross_resolved.max()),
                 TextTable::pct(cross_resolved.mean()), "—"});
  table.add_row({"barriers avoided by earlier barriers' timing",
                 TextTable::pct(timing_avoid.min()),
                 TextTable::pct(timing_avoid.max()),
                 TextTable::pct(timing_avoid.mean()), "≈28%"});
  table.add_row({"repair barriers per block", TextTable::num(repairs.min(), 3),
                 TextTable::num(repairs.max(), 3),
                 TextTable::num(repairs.mean(), 3), "— (our guard)"});
  table.render(std::cout);
  std::cout << '\n'
            << points << " parameter points, " << benchmarks
            << " scheduled benchmarks total (paper: >3500).\n";
  return 0;
}
