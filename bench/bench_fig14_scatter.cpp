// Figure 14: scatter plot of serialized fraction (vertical) vs statically
// scheduled fraction (horizontal) for >2000 benchmarks containing 65–132
// implied synchronizations. The paper observes the center of mass near the
// 85% line: about 85% of synchronizations need no runtime synchronization.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 2600));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 70));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 15));
  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));

  print_bench_header(
      "Figure 14 — serialized vs static fraction scatter",
      "Fig. 14 (§5)",
      std::to_string(gen.num_statements) + " statements, " +
          std::to_string(gen.num_variables) + " variables, " +
          std::to_string(cfg.num_procs) + " PEs; keep blocks with 65–132 syncs",
      opt);

  std::vector<std::pair<double, double>> points;  // (static, serialized)
  RunningStats combined, syncs;
  run_point(gen, cfg, opt, [&](const BenchmarkOutcome& o) {
    if (o.stats.implied_syncs < 65 || o.stats.implied_syncs > 132) return;
    points.emplace_back(o.stats.static_fraction(),
                        o.stats.serialized_fraction());
    combined.add(o.stats.no_runtime_sync_fraction());
    syncs.add(static_cast<double>(o.stats.implied_syncs));
  });

  std::cout << render_scatter(points, /*diagonal_level=*/0.85);
  std::cout << "\nBenchmarks in the 65–132 sync band: " << points.size()
            << " (mean syncs " << TextTable::num(syncs.mean(), 1) << ")\n";
  std::cout << "serialized+static (center of mass): mean "
            << TextTable::pct(combined.mean()) << ", stddev "
            << TextTable::pct(combined.stddev()) << ", range ["
            << TextTable::pct(combined.min()) << ", "
            << TextTable::pct(combined.max()) << "]\n";
  std::cout << "Paper: center of mass near the 85% line.\n";

  CsvWriter csv("fig14_scatter.csv");
  csv.write_row({"static_fraction", "serialized_fraction"});
  for (const auto& [x, y] : points)
    csv.write_row({std::to_string(x), std::to_string(y)});
  std::cout << "(points written to fig14_scatter.csv)\n";
  return 0;
}
