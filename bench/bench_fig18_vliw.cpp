// Figure 18: VLIW vs barrier MIMD completion time, normalized to VLIW
// (60 statements, 10 variables, PEs swept).
//
// Paper shape: the barrier machine's worst-case (all-max) time is nearly
// identical to the VLIW's (slightly above it on small machines, where more
// barriers are needed); its best-case (all-min) time is about 25% below the
// VLIW; the average falls in between, set by the timing distributions.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();
  opt.with_vliw = true;
  opt.sim_runs = static_cast<std::size_t>(flags.get_int("sim-runs", 10));

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header(
      "Figure 18 — VLIW vs barrier architecture (normalized completion)",
      "Fig. 18 (§6)",
      "60 statements, 10 variables; barrier completion / VLIW makespan", opt);

  TextTable table({"#PEs", "barrier min/VLIW", "barrier mean/VLIW",
                   "barrier max/VLIW", "VLIW makespan", "critical path max",
                   "VLIW optimal"});
  CsvWriter csv("fig18_vliw.csv");
  csv.write_row({"procs", "norm_min", "norm_mean", "norm_max",
                 "vliw_makespan"});
  SchedulerConfig cfg;
  for (std::size_t procs : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    cfg.num_procs = procs;
    RunningStats crit;
    std::size_t optimal = 0, total = 0;
    const PointAggregate agg =
        run_point(gen, cfg, opt, [&](const BenchmarkOutcome& o) {
          crit.add(static_cast<double>(o.stats.critical_path.max));
          // §6: "an optimal schedule (completion time equal to the critical
          // path time) was determined for almost all the synthetic
          // benchmarks" — measured on the VLIW side of the comparison.
          optimal += (o.vliw_makespan == o.stats.critical_path.max);
          ++total;
        });
    table.add_row({std::to_string(procs),
                   TextTable::num(agg.norm_min.mean(), 3),
                   TextTable::num(agg.norm_mean.mean(), 3),
                   TextTable::num(agg.norm_max.mean(), 3),
                   TextTable::num(agg.vliw_makespan.mean(), 1),
                   TextTable::num(crit.mean(), 1),
                   TextTable::pct(static_cast<double>(optimal) /
                                  static_cast<double>(total))});
    csv.write_row({std::to_string(procs), std::to_string(agg.norm_min.mean()),
                   std::to_string(agg.norm_mean.mean()),
                   std::to_string(agg.norm_max.mean()),
                   std::to_string(agg.vliw_makespan.mean())});
  }
  table.render(std::cout);
  std::cout << "(series written to fig18_vliw.csv)\n"
            << "\nPaper shape: max ≈ VLIW (slightly above at few PEs); "
               "min ≈ 0.75× VLIW; mean in between.\n";
  return 0;
}
