// google-benchmark microbenchmarks: throughput of the seed-batched lockstep
// simulator at batch widths 1/4/8/16, against the serial baseline in
// bench_sim_perf. Items processed counts simulated *runs* (lanes), so
// items_per_second is directly comparable across widths. Not a paper
// figure — engineering instrumentation.
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "codegen/synthesize.hpp"
#include "sched/scheduler.hpp"
#include "sim/batch_sim.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace bm;

struct Prepared {
  // The schedule holds a pointer to the dag, so keep the dag's address
  // stable across the return-by-value move.
  std::unique_ptr<InstrDag> dag;
  ScheduleResult result;
};

Prepared prepare(std::size_t statements, MachineKind machine) {
  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(statements);
  gen.num_variables = 10;
  Rng rng(42);
  const SynthesisResult s = synthesize_benchmark(gen, rng);
  Prepared p;
  p.dag = std::make_unique<InstrDag>(
      InstrDag::build(s.program, TimingModel::table1()));
  SchedulerConfig cfg;
  cfg.num_procs = 8;
  cfg.machine = machine;
  p.result = schedule_program(*p.dag, cfg, rng);
  return p;
}

/// One batch dispatch of `width` lanes per iteration, single draw stream —
/// the summarize_completion inner loop.
void run_batch(benchmark::State& state, MachineKind machine) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const Prepared p = prepare(60, machine);
  Rng rng(9);
  BatchExecTrace trace;
  for (auto _ : state) {
    batch_simulate_runs_into(*p.result.schedule,
                             {machine, SamplingMode::kUniform}, width, rng,
                             trace);
    benchmark::DoNotOptimize(trace.completion.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * width));
}

void BM_BatchSimulateSbm(benchmark::State& state) {
  run_batch(state, MachineKind::kSBM);
}
BENCHMARK(BM_BatchSimulateSbm)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_BatchSimulateDbm(benchmark::State& state) {
  run_batch(state, MachineKind::kDBM);
}
BENCHMARK(BM_BatchSimulateDbm)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

/// End-to-end completion summary (min/max draws + batched uniform sweep) at
/// the production batch width — the quantity experiments actually compute.
void BM_SummarizeCompletion(benchmark::State& state) {
  const Prepared p = prepare(60, MachineKind::kSBM);
  Rng rng(9);
  const std::size_t runs = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarize_completion(
        *p.result.schedule, MachineKind::kSBM, runs, rng, kDefaultSimBatch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * runs));
}
BENCHMARK(BM_SummarizeCompletion);

}  // namespace
// main() is bench/bench_main.cpp (stamps bm_build_type for the bench gate).
