// §5.4 ablation — serialization lookahead: before assigning a node, a
// window of the sorted list is examined so the assignment does not steal a
// later node's serialization slot.
//
// Paper findings: serialization rises (but little on large machines, where
// the scheduler already keeps serial streams together); on small machines
// execution time increases 10–30% from the extra serialization; the effect
// disappears at large machine sizes.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));
  const auto window = static_cast<std::size_t>(flags.get_int("window", 4));

  print_bench_header(
      "§5.4c — serialization lookahead ablation", "§5.4",
      "60 statements, 10 variables; window p=" + std::to_string(window), opt);

  TextTable table({"#PEs", "policy", "serialized", "barrier", "compl min",
                   "compl max"});
  SchedulerConfig cfg;
  cfg.lookahead_window = window;
  for (std::size_t procs : {2u, 4u, 8u, 16u, 32u}) {
    cfg.num_procs = procs;
    for (AssignmentPolicy policy :
         {AssignmentPolicy::kListSerialize, AssignmentPolicy::kLookahead}) {
      cfg.assignment = policy;
      const PointAggregate agg = run_point(gen, cfg, opt);
      const FractionAggregate& f = agg.fractions;
      table.add_row({std::to_string(procs), std::string(to_string(policy)),
                     TextTable::pct(f.serialized_frac.mean()),
                     TextTable::pct(f.barrier_frac.mean()),
                     TextTable::num(f.completion_min.mean(), 1),
                     TextTable::num(f.completion_max.mean(), 1)});
    }
  }
  table.render(std::cout);

  // Window-size sweep at a fixed machine size.
  std::cout << "\nwindow-size sweep (4 PEs):\n";
  TextTable wtable({"window p", "serialized", "barrier", "compl min",
                    "compl max"});
  cfg.num_procs = 4;
  cfg.assignment = AssignmentPolicy::kLookahead;
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    cfg.lookahead_window = p;
    const PointAggregate agg = run_point(gen, cfg, opt);
    const FractionAggregate& f = agg.fractions;
    wtable.add_row({std::to_string(p),
                    TextTable::pct(f.serialized_frac.mean()),
                    TextTable::pct(f.barrier_frac.mean()),
                    TextTable::num(f.completion_min.mean(), 1),
                    TextTable::num(f.completion_max.mean(), 1)});
  }
  wtable.render(std::cout);
  std::cout << "\nPaper: lookahead raises serialization modestly; on few "
               "PEs it lengthens the critical path (+10..30% execution "
               "time); the effect vanishes on many PEs.\n";
  return 0;
}
