// google-benchmark microbenchmarks for the serving core: cold scheduling
// latency (full synthesize→schedule pipeline, cache bypassed), cache-hit
// latency (fingerprint + lookup + id rewrite), and the canonical-fingerprint
// hash itself. items_per_second on the serve benchmarks is the single-worker
// QPS figure quoted in docs/SERVING.md. Not a paper figure — engineering
// instrumentation; BENCH_serve.json is the gated baseline.
#include <cstddef>

#include <benchmark/benchmark.h>

#include "codegen/synthesize.hpp"
#include "serve/core.hpp"
#include "serve/fingerprint.hpp"
#include "support/rng.hpp"

namespace {

using namespace bm;
using namespace bm::serve;

Request synth_request(std::size_t index, std::size_t statements) {
  Request req;
  req.verb = Verb::kSynth;
  req.index = index;
  req.gen.num_statements = static_cast<std::uint32_t>(statements);
  return req;
}

/// Full request path with the cache bypassed: synthesize, build the DAG,
/// list-schedule, insert barriers — the cold-miss cost per request.
void BM_ServeScheduleCold(benchmark::State& state) {
  CoreConfig cfg;
  cfg.workers = 1;
  ServeCore core(cfg);
  Request req = synth_request(0, static_cast<std::size_t>(state.range(0)));
  req.no_cache = true;
  for (auto _ : state) {
    const Response resp = core.handle(req);
    if (resp.status != Status::kOk) state.SkipWithError(resp.error.c_str());
    benchmark::DoNotOptimize(resp.body.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeScheduleCold)->Arg(60)->Arg(120);

/// Steady-state hit path: canonicalize + fingerprint the program, look the
/// schedule up, rewrite ids back into request numbering. The latency a warm
/// server answers repeat DAGs with.
void BM_ServeCacheHit(benchmark::State& state) {
  CoreConfig cfg;
  cfg.workers = 1;
  ServeCore core(cfg);
  const Request req =
      synth_request(0, static_cast<std::size_t>(state.range(0)));
  const Response primed = core.handle(req);  // insert the entry
  if (primed.status != Status::kOk) state.SkipWithError(primed.error.c_str());
  for (auto _ : state) {
    const Response resp = core.handle(req);
    if (resp.cache != CacheOutcome::kHit)
      state.SkipWithError("expected a cache hit");
    benchmark::DoNotOptimize(resp.body.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeCacheHit)->Arg(60)->Arg(120);

/// Hit path with the full telemetry surface on: latency histograms (window
/// included) plus a JSONL access-log line per request. The delta against
/// BM_ServeCacheHit is the telemetry tax on the fastest path; a
/// `-DBM_OBS=OFF` build of this same benchmark isolates the histogram
/// share (the access log stays live in that build).
void BM_ServeCacheHitAccessLog(benchmark::State& state) {
  CoreConfig cfg;
  cfg.workers = 1;
  cfg.telemetry.access_log_path = "/dev/null";  // append cost, no disk growth
  ServeCore core(cfg);
  const Request req =
      synth_request(0, static_cast<std::size_t>(state.range(0)));
  const Response primed = core.handle(req);  // insert the entry
  if (primed.status != Status::kOk) state.SkipWithError(primed.error.c_str());
  for (auto _ : state) {
    const Response resp = core.handle(req);
    if (resp.cache != CacheOutcome::kHit)
      state.SkipWithError("expected a cache hit");
    benchmark::DoNotOptimize(resp.body.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeCacheHitAccessLog)->Arg(120);

/// Building one `stats v1` JSON snapshot (histogram merges + quantile
/// extraction + serialization) — the per-poll cost of a dashboard client.
void BM_ServeStatsSnapshot(benchmark::State& state) {
  CoreConfig cfg;
  cfg.workers = 1;
  ServeCore core(cfg);
  for (std::size_t i = 0; i < 64; ++i)  // populate the histograms
    core.handle(synth_request(i % 8, 60));
  for (auto _ : state) {
    const std::string snap = core.stats_json();
    benchmark::DoNotOptimize(snap.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeStatsSnapshot);

/// The canonical fingerprint alone (WL refinement + canonical bytes) — the
/// fixed overhead every request pays whether it hits or misses.
void BM_FingerprintCanonicalize(benchmark::State& state) {
  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(state.range(0));
  Rng rng = benchmark_rng(1990, 0);
  const Program prog = synthesize_benchmark(gen, rng).program;
  for (auto _ : state) {
    const CanonicalProgram canon = canonicalize_program(prog);
    benchmark::DoNotOptimize(canon.fingerprint);
    benchmark::DoNotOptimize(canon.bytes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FingerprintCanonicalize)->Arg(60)->Arg(120);

}  // namespace
// main() is bench/bench_main.cpp (stamps bm_build_type for the bench gate).
