// Conventional MIMD vs barrier MIMD (§1/§3 motivation): the paper's
// headline is that >77% of the synchronizations a conventional MIMD would
// execute at runtime are eliminated on a barrier MIMD. This bench runs the
// same placements under both machines: directed runtime synchronization
// (post + network latency per cross-PE edge) vs the barrier schedule, and
// reports runtime sync operations and completion times across latencies.
#include <iostream>

#include "harness/report.hpp"
#include "mimd/directed.hpp"
#include "mimd/reduce.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));
  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));

  print_bench_header(
      "§1/§3 — conventional MIMD (directed sync) vs barrier MIMD",
      "motivation (Fig. 3, >77% headline)",
      "60 statements, 10 variables, 8 PEs; same placement, two machines",
      opt);

  TextTable table({"sync latency", "MIMD syncs/blk", "Shaffer-reduced",
                   "barriers (SBM)", "MIMD compl", "reduced compl",
                   "SBM compl", "SBM speedup"});
  for (Time max_latency : {1, 4, 8, 16, 32}) {
    RunningStats mimd_syncs, reduced_syncs, barriers;
    RunningStats mimd_compl, reduced_compl, sbm_compl;
    DirectedSyncConfig mimd_cfg;
    mimd_cfg.latency = {1, max_latency};
    RunOptions o = opt;
    o.sim_runs = 5;
    run_point(gen, cfg, o, [&](const BenchmarkOutcome& outcome) {
      barriers.add(static_cast<double>(outcome.stats.barriers_final));
      sbm_compl.add(outcome.barrier_completion.mean);
    });
    // Re-run the same seeds for both conventional-MIMD executions: the full
    // directed-sync set, and the [Shaf89] transitive reduction the paper
    // compares its timing-based approach against (§3).
    for (std::size_t i = 0; i < opt.seeds; ++i) {
      Rng rng = benchmark_rng(opt.base_seed, i);
      const SynthesisResult s = synthesize_benchmark(gen, rng);
      const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
      const ScheduleResult r = schedule_program(dag, cfg, rng);
      const SyncReduction red = reduce_directed_syncs(*r.schedule);
      reduced_syncs.add(static_cast<double>(red.retained));
      double total_full = 0, total_reduced = 0;
      std::size_t syncs = 0;
      for (int run = 0; run < 5; ++run) {
        const DirectedSyncResult full =
            simulate_directed(*r.schedule, mimd_cfg, rng);
        total_full += static_cast<double>(full.trace.completion);
        syncs = full.runtime_syncs;
        const DirectedSyncResult reduced =
            simulate_directed(*r.schedule, mimd_cfg, rng, red.kept);
        total_reduced += static_cast<double>(reduced.trace.completion);
      }
      mimd_compl.add(total_full / 5.0);
      reduced_compl.add(total_reduced / 5.0);
      mimd_syncs.add(static_cast<double>(syncs));
    }
    table.add_row({"[1," + std::to_string(max_latency) + "]",
                   TextTable::num(mimd_syncs.mean(), 1),
                   TextTable::num(reduced_syncs.mean(), 1),
                   TextTable::num(barriers.mean(), 2),
                   TextTable::num(mimd_compl.mean(), 1),
                   TextTable::num(reduced_compl.mean(), 1),
                   TextTable::num(sbm_compl.mean(), 1),
                   TextTable::num(mimd_compl.mean() / sbm_compl.mean(), 2) +
                       "x"});
  }
  table.render(std::cout);
  std::cout << "\nPaper (§3): graph-structural reduction [Shaf89] removes "
               "some synchronizations; barrier scheduling's min/max timing "
               "analysis removes more (barriers < reduced syncs), and the "
               "barrier machine's completion advantage grows with network "
               "latency.\n";
  return 0;
}
