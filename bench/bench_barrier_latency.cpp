// Hardware ablation — barrier execution latency: the paper assumes barriers
// "execute immediately upon arrival of the last participating processor"
// (§5); its companion hardware paper studies the real cost. Sweeping the
// last-arrival→release latency shows how the scheduling results depend on
// that assumption: completion grows with every charged barrier hop, while
// the synchronization fractions barely move (latency delays producer and
// consumer bounds alike).
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();
  opt.with_vliw = true;
  opt.sim_runs = static_cast<std::size_t>(flags.get_int("sim-runs", 5));

  GeneratorConfig gen;
  gen.num_statements = static_cast<std::uint32_t>(flags.get_int("statements", 60));
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 10));

  print_bench_header("hardware ablation — barrier execution latency",
                     "§5 assumption / [OKDi90] companion",
                     "60 statements, 10 variables, 8 PEs; latency 0..16",
                     opt);

  TextTable table({"latency", "barrier", "serialized", "static",
                   "compl [min,max]", "mean/VLIW"});
  CsvWriter csv("barrier_latency.csv");
  csv.write_row({"latency", "barrier_frac", "completion_min",
                 "completion_max", "norm_mean"});
  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  for (long latency : {0L, 1L, 2L, 4L, 8L, 16L}) {
    cfg.barrier_latency = latency;
    const PointAggregate agg = run_point(gen, cfg, opt);
    const FractionAggregate& f = agg.fractions;
    table.add_row({std::to_string(latency),
                   TextTable::pct(f.barrier_frac.mean()),
                   TextTable::pct(f.serialized_frac.mean()),
                   TextTable::pct(f.static_frac.mean()),
                   "[" + TextTable::num(f.completion_min.mean(), 1) + "," +
                       TextTable::num(f.completion_max.mean(), 1) + "]",
                   TextTable::num(agg.norm_mean.mean(), 3)});
    csv.write_row({std::to_string(latency),
                   std::to_string(f.barrier_frac.mean()),
                   std::to_string(f.completion_min.mean()),
                   std::to_string(f.completion_max.mean()),
                   std::to_string(agg.norm_mean.mean())});
  }
  table.render(std::cout);
  std::cout << "(series written to barrier_latency.csv)\n"
            << "\nExpected shape: fractions nearly flat; completion and the "
               "VLIW-normalized mean grow with the latency — the barrier "
               "machine's advantage depends on cheap hardware barriers, "
               "which is exactly the companion paper's thesis.\n";
  return 0;
}
