// Figure 15: synchronization fractions vs number of statements
// (8 processors, 15 variables, statements swept 5..60).
//
// Paper shape: the barrier fraction falls steeply from 5 to 20 statements
// (early Load concentration), then flattens as Mul/Div/Mod appear; the
// serialization fraction declines slowly with block size.
#include <iostream>

#include "harness/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const CliFlags flags(argc, argv);
  RunOptions opt;
  opt.seeds = static_cast<std::size_t>(flags.get_int("seeds", 100));
  opt.base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 1990));
  opt.jobs = flags.get_jobs();

  SchedulerConfig cfg;
  cfg.num_procs = static_cast<std::size_t>(flags.get_int("procs", 8));
  GeneratorConfig gen;
  gen.num_variables = static_cast<std::uint32_t>(flags.get_int("variables", 15));

  print_bench_header("Figure 15 — sync fractions vs number of statements",
                     "Fig. 15 (§5.1)",
                     "8 PEs, 15 variables, statements 5..60", opt);

  std::vector<SeriesRow> rows;
  for (std::uint32_t stmts : {5u, 10u, 15u, 20u, 25u, 30u, 35u, 40u, 45u,
                              50u, 55u, 60u}) {
    gen.num_statements = stmts;
    rows.push_back({std::to_string(stmts), run_point(gen, cfg, opt)});
  }
  print_fraction_series("#statements", rows, "fig15_statements.csv");
  std::cout << "\nPaper shape: barrier fraction decreases with block size "
               "(steeply from 5 to 20), serialization declines slowly.\n";
  return 0;
}
