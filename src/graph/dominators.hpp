// Dominator tree over a rooted DAG (§4.4.1 step 2): the nearest common
// dominating barrier is the nearest common ancestor in this tree.
// Implemented with the Cooper–Harvey–Kennedy iterative algorithm.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace bm {

/// Flat CSR adjacency view of a rooted graph: `succ_off`/`pred_off` hold
/// `n + 1` offsets into the data arrays. Lets rebuild-hot callers (the
/// barrier dag, reconstructed per scheduler mutation) feed the dominator
/// computation without materializing a per-node-vector Digraph.
struct CsrAdjacency {
  std::span<const std::uint32_t> succ_off;
  std::span<const NodeId> succ_dat;
  std::span<const std::uint32_t> pred_off;
  std::span<const NodeId> pred_dat;
};

class DominatorTree {
 public:
  /// Empty tree; call rebuild() before any query.
  DominatorTree() = default;

  /// Builds the dominator tree of all nodes reachable from `root`.
  DominatorTree(const Digraph& g, NodeId root);

  /// Rebuilds in place from a flat adjacency view, reusing the idom/depth
  /// buffer capacities. The spans need only stay valid for this call.
  void rebuild(const CsrAdjacency& g, NodeId root);

  NodeId root() const { return root_; }

  /// Immediate dominator; root's idom is itself; kInvalidNode for nodes
  /// unreachable from root.
  NodeId idom(NodeId n) const { return idom_.at(n); }

  bool reachable(NodeId n) const { return idom_.at(n) != kInvalidNode; }

  /// True iff a dominates b (every path root→b passes through a).
  /// Both must be reachable. Reflexive: dominates(x, x) is true.
  bool dominates(NodeId a, NodeId b) const;

  /// Nearest common dominator of a and b (nearest common ancestor in the
  /// dominator tree). Both must be reachable.
  NodeId common_dominator(NodeId a, NodeId b) const;

  /// Depth in the dominator tree (root = 0).
  std::size_t depth(NodeId n) const;

 private:
  void init(const CsrAdjacency& g, NodeId root);

  NodeId root_ = kInvalidNode;
  std::vector<NodeId> idom_;
  std::vector<std::size_t> depth_;
};

}  // namespace bm
