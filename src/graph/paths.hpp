// Longest-path computations on DAGs — the workhorse of both the height
// labeling (§4.1) and the barrier-dag timing queries (§4.4).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "graph/digraph.hpp"
#include "ir/timing.hpp"
#include "support/scratch.hpp"

namespace bm {

/// Sentinel for "unreachable" in longest-path arrays.
inline constexpr Time kUnreachable = std::numeric_limits<Time>::min() / 4;

using EdgeWeightFn = std::function<Time(NodeId, NodeId)>;

/// Longest edge-weighted distance from `src` to every node (kUnreachable
/// where no path exists; 0 at src). Requires an acyclic graph.
std::vector<Time> longest_from(const Digraph& g, NodeId src,
                               const EdgeWeightFn& weight);

/// Longest edge-weighted distance from every node to `dst`.
std::vector<Time> longest_to(const Digraph& g, NodeId dst,
                             const EdgeWeightFn& weight);

/// A path as a node sequence (front = source, back = destination).
using Path = std::vector<NodeId>;

/// Enumerates u→v paths in non-increasing order of total edge weight.
/// Best-first search over path prefixes with the exact longest-remaining
/// distance as priority, so each next() is optimal among unreported paths.
///
/// Prefixes are stored as parent links into a shared arena rather than as
/// one node vector per heap entry, and every internal buffer is a pooled
/// ScratchVec — enumerations inside the per-seed scheduling loop allocate
/// nothing in steady state. Consequently non-copyable and non-movable;
/// construct it where it is used.
class PathEnumerator {
 public:
  PathEnumerator(const Digraph& g, NodeId from, NodeId to,
                 EdgeWeightFn weight);

  /// Returns the next-longest path, or false when exhausted. On success,
  /// `path` and `length` are filled.
  bool next(Path& path, Time& length);

 private:
  static constexpr std::uint32_t kNoParent = ~std::uint32_t{0};

  struct Partial {
    Time priority;  // prefix length + exact longest completion
    Time prefix_length;
    NodeId last;           // final node of the prefix
    std::uint32_t chain;   // arena index of the prefix's tail link
  };
  struct PartialLess {
    bool operator()(const Partial& a, const Partial& b) const {
      return a.priority < b.priority;
    }
  };
  struct ChainLink {
    NodeId node;
    std::uint32_t parent;  // kNoParent at the path source
  };

  const Digraph& g_;
  NodeId to_;
  EdgeWeightFn weight_;
  ScratchVec<Time> to_dist_;      // longest distance to `to_` per node
  ScratchVec<Partial> heap_;
  ScratchVec<ChainLink> arena_;   // shared prefix storage (parent links)
};

}  // namespace bm
