// Instruction DAG (§4.1): tuples as nodes, precedence constraints as edges,
// plus single entry/exit dummy nodes of zero execution time. Carries the
// scheduler's labeling data: min/max heights, ASAP finish ranges, and the
// critical-path bounds.
//
// Edges are:
//  - dataflow: producer tuple → consumer tuple (one per distinct operand),
//  - memory flow: Store v → later Load v,
//  - anti: Load v → next Store v,
//  - output: Store v → next Store v.
// On generator output (post-optimization) only dataflow and anti edges occur.
//
// Data layout: alongside the mutable Digraph used during construction, the
// dag carries a columnar core built once per block — contiguous h_min /
// h_max / indegree columns and CSR predecessor/successor arrays (plus a
// dummy-filtered instruction-producer CSR) — so the scheduler's inner loop
// reads spans out of flat arrays instead of chasing per-node vectors.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "ir/program.hpp"

namespace bm {

class InstrDag {
 public:
  /// Builds the DAG for an optimized basic block.
  static InstrDag build(const Program& prog, const TimingModel& tm);

  const Digraph& graph() const { return g_; }
  NodeId entry() const { return entry_; }
  NodeId exit() const { return exit_; }

  /// Number of instruction (non-dummy) nodes; their node ids equal their
  /// dense tuple ids in the program.
  std::size_t num_instructions() const { return num_instr_; }
  bool is_dummy(NodeId n) const { return n >= num_instr_; }

  const TimeRange& time(NodeId n) const { return time_.at(n); }

  /// CSR adjacency views (same per-node edge order as graph()).
  std::span<const NodeId> preds(NodeId n) const {
    return {pred_dat_.data() + pred_off_[n], pred_off_[n + 1] - pred_off_[n]};
  }
  std::span<const NodeId> succs(NodeId n) const {
    return {succ_dat_.data() + succ_off_[n], succ_off_[n + 1] - succ_off_[n]};
  }
  /// Producers of instruction `n` that are themselves instructions (the
  /// entry dummy filtered out) — the scheduler's per-node dependence scan.
  std::span<const NodeId> instr_preds(NodeId n) const {
    return {iprd_dat_.data() + iprd_off_[n], iprd_off_[n + 1] - iprd_off_[n]};
  }
  /// Full in-degree column (dummies included), one entry per node.
  std::uint32_t indegree(NodeId n) const { return indeg_[n]; }

  /// Heights (§4.1): length of the longest path from node n to the exit,
  /// summing node times including n's own.
  Time h_min(NodeId n) const { return h_min_.at(n); }
  Time h_max(NodeId n) const { return h_max_.at(n); }

  /// ASAP finish-time range on unbounded processors — the two rightmost
  /// columns of Fig. 1.
  const TimeRange& asap_finish(NodeId n) const { return asap_.at(n); }
  std::vector<TimeRange> asap_instruction_columns() const;

  /// Critical-path bounds t_cr: longest entry→exit path under min and max
  /// times respectively — a lower bound on any schedule's completion.
  const TimeRange& critical_path() const { return critical_; }

  /// Producer/consumer pairs between instruction nodes — the paper's "Total
  /// Implied Synchronizations" is sync_edges().size().
  const std::vector<std::pair<NodeId, NodeId>>& sync_edges() const {
    return sync_edges_;
  }
  std::size_t implied_syncs() const { return sync_edges_.size(); }

 private:
  void build_columns();

  Digraph g_;
  std::size_t num_instr_ = 0;
  NodeId entry_ = kInvalidNode;
  NodeId exit_ = kInvalidNode;
  std::vector<TimeRange> time_;
  std::vector<Time> h_min_, h_max_;
  std::vector<TimeRange> asap_;
  TimeRange critical_{0, 0};
  std::vector<std::pair<NodeId, NodeId>> sync_edges_;

  // Columnar core (CSR edges + indegree), frozen after build().
  std::vector<std::uint32_t> pred_off_, succ_off_, iprd_off_;
  std::vector<NodeId> pred_dat_, succ_dat_, iprd_dat_;
  std::vector<std::uint32_t> indeg_;
};

}  // namespace bm
