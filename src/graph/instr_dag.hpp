// Instruction DAG (§4.1): tuples as nodes, precedence constraints as edges,
// plus single entry/exit dummy nodes of zero execution time. Carries the
// scheduler's labeling data: min/max heights, ASAP finish ranges, and the
// critical-path bounds.
//
// Edges are:
//  - dataflow: producer tuple → consumer tuple (one per distinct operand),
//  - memory flow: Store v → later Load v,
//  - anti: Load v → next Store v,
//  - output: Store v → next Store v.
// On generator output (post-optimization) only dataflow and anti edges occur.
//
// Data layout: the dag is built as flat CSR columns directly from the tuple
// stream — one chronological edge list, two stable counting sorts, and fused
// min/max labeling sweeps — with no intermediate per-node adjacency ever
// materialized. Offset columns are 32-bit until the edge total crosses a
// width bound, then widen to 64-bit (see OffsetColumn); node-id payloads
// stay 32-bit throughout. A mutable Digraph view exists only behind the
// lazily built graph() accessor for diagnostic consumers.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "ir/program.hpp"

namespace bm {

/// CSR offset column with guarded index width: entries are 32-bit until the
/// running total exceeds the width bound (2^32-1 in production — offsets
/// count edges, so every real program fits), then 64-bit. The wide layout is
/// test-forcible through InstrDag::set_offset_width_bound_for_test so its
/// parity with the narrow one stays exercised.
class OffsetColumn {
 public:
  /// Exclusive prefix sums of `counts` plus a final total entry
  /// (counts.size() + 1 offsets). `bound` picks the width: totals above it
  /// are stored 64-bit.
  void build_from_counts(std::span<const std::uint32_t> counts,
                         std::uint64_t bound);

  std::uint64_t operator[](std::size_t i) const {
    return wide_.empty() ? narrow_[i] : wide_[i];
  }
  bool wide() const { return !wide_.empty(); }
  std::size_t size() const {
    return wide_.empty() ? narrow_.size() : wide_.size();
  }

 private:
  std::vector<std::uint32_t> narrow_;
  std::vector<std::uint64_t> wide_;
};

class InstrDag {
 public:
  /// Builds the DAG for an optimized basic block.
  static InstrDag build(const Program& prog, const TimingModel& tm);

  /// Node-keyed adjacency view, materialized on first use: only diagnostic
  /// consumers (dot rendering, tests) need it — the scheduler and the VLIW
  /// packer read the CSR spans below.
  const Digraph& graph() const;

  NodeId entry() const { return entry_; }
  NodeId exit() const { return exit_; }

  /// Number of instruction (non-dummy) nodes; their node ids equal their
  /// dense tuple ids in the program.
  std::size_t num_instructions() const { return num_instr_; }
  /// All nodes including the entry/exit dummies.
  std::size_t num_nodes() const { return num_instr_ + 2; }
  bool is_dummy(NodeId n) const { return n >= num_instr_; }

  const TimeRange& time(NodeId n) const { return time_.at(n); }

  /// CSR adjacency views (per-node edge order identical to the historical
  /// Digraph construction: successors and predecessors both list edges in
  /// insertion order).
  std::span<const NodeId> preds(NodeId n) const {
    const std::size_t b = pred_off_[n];
    return {pred_dat_.data() + b, static_cast<std::size_t>(pred_off_[n + 1]) - b};
  }
  std::span<const NodeId> succs(NodeId n) const {
    const std::size_t b = succ_off_[n];
    return {succ_dat_.data() + b, static_cast<std::size_t>(succ_off_[n + 1]) - b};
  }
  /// Producers of instruction `n` that are themselves instructions (the
  /// entry dummy filtered out) — the scheduler's per-node dependence scan.
  std::span<const NodeId> instr_preds(NodeId n) const {
    const std::size_t b = iprd_off_[n];
    return {iprd_dat_.data() + b, static_cast<std::size_t>(iprd_off_[n + 1]) - b};
  }
  /// Full in-degree column (dummies included), one entry per node.
  std::uint32_t indegree(NodeId n) const { return indeg_[n]; }

  /// Heights (§4.1): length of the longest path from node n to the exit,
  /// summing node times including n's own.
  Time h_min(NodeId n) const { return h_min_.at(n); }
  Time h_max(NodeId n) const { return h_max_.at(n); }

  /// ASAP finish-time range on unbounded processors — the two rightmost
  /// columns of Fig. 1.
  const TimeRange& asap_finish(NodeId n) const { return asap_.at(n); }
  std::vector<TimeRange> asap_instruction_columns() const;

  /// Critical-path bounds t_cr: longest entry→exit path under min and max
  /// times respectively — a lower bound on any schedule's completion.
  const TimeRange& critical_path() const { return critical_; }

  /// Producer/consumer pairs between instruction nodes — the paper's "Total
  /// Implied Synchronizations" is sync_edges().size().
  const std::vector<std::pair<NodeId, NodeId>>& sync_edges() const {
    return sync_edges_;
  }
  std::size_t implied_syncs() const { return sync_edges_.size(); }

  /// Test hook: offset columns widen to 64-bit when the edge total exceeds
  /// this bound. Returns the previous bound so tests can restore it.
  /// Production default: 2^32 - 1.
  static std::uint64_t set_offset_width_bound_for_test(std::uint64_t bound);

  /// True when every offset column took the 64-bit layout (all columns see
  /// the same width bound, so they widen together).
  bool offsets_wide() const {
    return pred_off_.wide() && succ_off_.wide() && iprd_off_.wide();
  }

 private:
  std::size_t num_instr_ = 0;
  NodeId entry_ = kInvalidNode;
  NodeId exit_ = kInvalidNode;
  std::vector<TimeRange> time_;
  std::vector<Time> h_min_, h_max_;
  std::vector<TimeRange> asap_;
  TimeRange critical_{0, 0};
  std::vector<std::pair<NodeId, NodeId>> sync_edges_;

  // Columnar core (CSR edges + indegree), frozen after build().
  OffsetColumn pred_off_, succ_off_, iprd_off_;
  std::vector<NodeId> pred_dat_, succ_dat_, iprd_dat_;
  std::vector<std::uint32_t> indeg_;

  mutable std::unique_ptr<Digraph> lazy_g_;
};

}  // namespace bm
