// Instruction DAG (§4.1): tuples as nodes, precedence constraints as edges,
// plus single entry/exit dummy nodes of zero execution time. Carries the
// scheduler's labeling data: min/max heights, ASAP finish ranges, and the
// critical-path bounds.
//
// Edges are:
//  - dataflow: producer tuple → consumer tuple (one per distinct operand),
//  - memory flow: Store v → later Load v,
//  - anti: Load v → next Store v,
//  - output: Store v → next Store v.
// On generator output (post-optimization) only dataflow and anti edges occur.
#pragma once

#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "ir/program.hpp"

namespace bm {

class InstrDag {
 public:
  /// Builds the DAG for an optimized basic block.
  static InstrDag build(const Program& prog, const TimingModel& tm);

  const Digraph& graph() const { return g_; }
  NodeId entry() const { return entry_; }
  NodeId exit() const { return exit_; }

  /// Number of instruction (non-dummy) nodes; their node ids equal their
  /// dense tuple ids in the program.
  std::size_t num_instructions() const { return num_instr_; }
  bool is_dummy(NodeId n) const { return n >= num_instr_; }

  const TimeRange& time(NodeId n) const { return time_.at(n); }

  /// Heights (§4.1): length of the longest path from node n to the exit,
  /// summing node times including n's own.
  Time h_min(NodeId n) const { return h_min_.at(n); }
  Time h_max(NodeId n) const { return h_max_.at(n); }

  /// ASAP finish-time range on unbounded processors — the two rightmost
  /// columns of Fig. 1.
  const TimeRange& asap_finish(NodeId n) const { return asap_.at(n); }
  std::vector<TimeRange> asap_instruction_columns() const;

  /// Critical-path bounds t_cr: longest entry→exit path under min and max
  /// times respectively — a lower bound on any schedule's completion.
  const TimeRange& critical_path() const { return critical_; }

  /// Producer/consumer pairs between instruction nodes — the paper's "Total
  /// Implied Synchronizations" is sync_edges().size().
  const std::vector<std::pair<NodeId, NodeId>>& sync_edges() const {
    return sync_edges_;
  }
  std::size_t implied_syncs() const { return sync_edges_.size(); }

 private:
  Digraph g_;
  std::size_t num_instr_ = 0;
  NodeId entry_ = kInvalidNode;
  NodeId exit_ = kInvalidNode;
  std::vector<TimeRange> time_;
  std::vector<Time> h_min_, h_max_;
  std::vector<TimeRange> asap_;
  TimeRange critical_{0, 0};
  std::vector<std::pair<NodeId, NodeId>> sync_edges_;
};

}  // namespace bm
