#include "graph/dominators.hpp"

#include <algorithm>

#include "support/scratch.hpp"

namespace bm {

DominatorTree::DominatorTree(const Digraph& g, NodeId root) {
  // Flatten the per-node adjacency into CSR scratch and run the shared
  // builder — one code path for both entry points.
  const std::size_t n = g.size();
  ScratchVec<std::uint32_t> soff_s, poff_s;
  ScratchVec<NodeId> sdat_s, pdat_s;
  auto& soff = *soff_s;
  auto& poff = *poff_s;
  auto& sdat = *sdat_s;
  auto& pdat = *pdat_s;
  soff.assign(n + 1, 0);
  poff.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    soff[v + 1] = soff[v] + static_cast<std::uint32_t>(g.succs(v).size());
    poff[v + 1] = poff[v] + static_cast<std::uint32_t>(g.preds(v).size());
  }
  sdat.clear();
  pdat.clear();
  sdat.reserve(soff[n]);
  pdat.reserve(poff[n]);
  for (NodeId v = 0; v < n; ++v) {
    sdat.insert(sdat.end(), g.succs(v).begin(), g.succs(v).end());
    pdat.insert(pdat.end(), g.preds(v).begin(), g.preds(v).end());
  }
  init(CsrAdjacency{{soff.data(), n + 1},
                    {sdat.data(), sdat.size()},
                    {poff.data(), n + 1},
                    {pdat.data(), pdat.size()}},
       root);
}

void DominatorTree::rebuild(const CsrAdjacency& g, NodeId root) {
  init(g, root);
}

void DominatorTree::init(const CsrAdjacency& g, NodeId root) {
  const std::size_t n = g.succ_off.size() - 1;
  BM_REQUIRE(root < n, "root out of range");
  root_ = root;
  idom_.assign(n, kInvalidNode);
  depth_.assign(n, 0);

  // Reverse postorder of nodes reachable from root (iterative DFS). All
  // traversal state lives in pooled scratch: this runs once per barrier-dag
  // generation that receives a dominator query.
  ScratchVec<NodeId> rpo_s;
  ScratchVec<std::uint8_t> state_s;  // 0=unseen 1=open 2=done
  ScratchVec<std::pair<NodeId, std::uint32_t>> stack_s;
  ScratchVec<std::size_t> rpo_index_s;
  auto& rpo = *rpo_s;
  auto& state = *state_s;
  auto& stack = *stack_s;
  auto& rpo_index = *rpo_index_s;
  rpo.clear();
  state.assign(n, 0);
  stack.clear();
  stack.emplace_back(root, 0);
  state[root] = 1;
  while (!stack.empty()) {
    auto& [v, next_child] = stack.back();
    if (g.succ_off[v] + next_child < g.succ_off[v + 1]) {
      const NodeId s = g.succ_dat[g.succ_off[v] + next_child++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[v] = 2;
      rpo.push_back(v);
      stack.pop_back();
    }
  }
  std::reverse(rpo.begin(), rpo.end());
  rpo_index.assign(n, ~std::size_t{0});
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  idom_[root] = root;

  auto intersect = [&](NodeId a, NodeId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v : rpo) {
      if (v == root) continue;
      NodeId new_idom = kInvalidNode;
      for (std::uint32_t e = g.pred_off[v]; e < g.pred_off[v + 1]; ++e) {
        const NodeId p = g.pred_dat[e];
        if (idom_[p] == kInvalidNode) continue;  // pred not processed yet
        new_idom = (new_idom == kInvalidNode) ? p : intersect(p, new_idom);
      }
      if (new_idom != kInvalidNode && idom_[v] != new_idom) {
        idom_[v] = new_idom;
        changed = true;
      }
    }
  }

  for (NodeId v : rpo) {
    if (v == root) continue;
    BM_ASSERT_INTERNAL(idom_[v] != kInvalidNode, "reachable node has no idom");
    depth_[v] = depth_[idom_[v]] + 1;
  }
}

bool DominatorTree::dominates(NodeId a, NodeId b) const {
  BM_REQUIRE(reachable(a) && reachable(b), "node unreachable from root");
  while (depth_[b] > depth_[a]) b = idom_[b];
  return a == b;
}

NodeId DominatorTree::common_dominator(NodeId a, NodeId b) const {
  BM_REQUIRE(reachable(a) && reachable(b), "node unreachable from root");
  while (a != b) {
    if (depth_[a] >= depth_[b])
      a = idom_[a];
    else
      b = idom_[b];
  }
  return a;
}

std::size_t DominatorTree::depth(NodeId n) const {
  BM_REQUIRE(reachable(n), "node unreachable from root");
  return depth_[n];
}

}  // namespace bm
