#include "graph/dominators.hpp"

#include <algorithm>

namespace bm {

namespace {
/// Reverse postorder of nodes reachable from root (iterative DFS).
std::vector<NodeId> reverse_postorder(const Digraph& g, NodeId root) {
  std::vector<NodeId> post;
  std::vector<std::uint8_t> state(g.size(), 0);  // 0=unseen 1=open 2=done
  std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
  state[root] = 1;
  while (!stack.empty()) {
    auto& [n, next_child] = stack.back();
    if (next_child < g.succs(n).size()) {
      const NodeId s = g.succs(n)[next_child++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[n] = 2;
      post.push_back(n);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}
}  // namespace

DominatorTree::DominatorTree(const Digraph& g, NodeId root)
    : root_(root),
      idom_(g.size(), kInvalidNode),
      depth_(g.size(), 0) {
  BM_REQUIRE(root < g.size(), "root out of range");
  const std::vector<NodeId> rpo = reverse_postorder(g, root);
  std::vector<std::size_t> rpo_index(g.size(), ~std::size_t{0});
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  idom_[root] = root;

  auto intersect = [&](NodeId a, NodeId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId n : rpo) {
      if (n == root) continue;
      NodeId new_idom = kInvalidNode;
      for (NodeId p : g.preds(n)) {
        if (idom_[p] == kInvalidNode) continue;  // pred not processed yet
        new_idom = (new_idom == kInvalidNode) ? p : intersect(p, new_idom);
      }
      if (new_idom != kInvalidNode && idom_[n] != new_idom) {
        idom_[n] = new_idom;
        changed = true;
      }
    }
  }

  for (NodeId n : rpo) {
    if (n == root) continue;
    BM_ASSERT_INTERNAL(idom_[n] != kInvalidNode, "reachable node has no idom");
    depth_[n] = depth_[idom_[n]] + 1;
  }
}

bool DominatorTree::dominates(NodeId a, NodeId b) const {
  BM_REQUIRE(reachable(a) && reachable(b), "node unreachable from root");
  while (depth_[b] > depth_[a]) b = idom_[b];
  return a == b;
}

NodeId DominatorTree::common_dominator(NodeId a, NodeId b) const {
  BM_REQUIRE(reachable(a) && reachable(b), "node unreachable from root");
  while (a != b) {
    if (depth_[a] >= depth_[b])
      a = idom_[a];
    else
      b = idom_[b];
  }
  return a;
}

std::size_t DominatorTree::depth(NodeId n) const {
  BM_REQUIRE(reachable(n), "node unreachable from root");
  return depth_[n];
}

}  // namespace bm
