#include "graph/paths.hpp"

#include <algorithm>

namespace bm {

std::vector<Time> longest_from(const Digraph& g, NodeId src,
                               const EdgeWeightFn& weight) {
  BM_REQUIRE(src < g.size(), "source out of range");
  std::vector<Time> dist(g.size(), kUnreachable);
  dist[src] = 0;
  for (NodeId n : topo_order(g)) {
    if (dist[n] == kUnreachable) continue;
    for (NodeId s : g.succs(n))
      dist[s] = std::max(dist[s], dist[n] + weight(n, s));
  }
  return dist;
}

std::vector<Time> longest_to(const Digraph& g, NodeId dst,
                             const EdgeWeightFn& weight) {
  BM_REQUIRE(dst < g.size(), "destination out of range");
  std::vector<Time> dist(g.size(), kUnreachable);
  dist[dst] = 0;
  const std::vector<NodeId> order = topo_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    for (NodeId s : g.succs(n)) {
      if (dist[s] == kUnreachable) continue;
      dist[n] = std::max(dist[n], weight(n, s) + dist[s]);
    }
  }
  return dist;
}

PathEnumerator::PathEnumerator(const Digraph& g, NodeId from, NodeId to,
                               EdgeWeightFn weight)
    : g_(g), to_(to), weight_(std::move(weight)) {
  BM_REQUIRE(from < g.size() && to < g.size(), "endpoint out of range");
  // Longest distance to `to_` per node, into the pooled buffer (same
  // fixpoint as longest_to; any topological order yields the same values).
  auto& dist = *to_dist_;
  dist.assign(g_.size(), kUnreachable);
  dist[to_] = 0;
  {
    ScratchVec<std::uint32_t> indeg_s;
    ScratchVec<NodeId> topo_s;
    auto& indeg = *indeg_s;
    auto& topo = *topo_s;
    indeg.resize(g_.size());
    topo.clear();
    for (NodeId n = 0; n < g_.size(); ++n) {
      indeg[n] = static_cast<std::uint32_t>(g_.preds(n).size());
      if (indeg[n] == 0) topo.push_back(n);
    }
    for (std::size_t k = 0; k < topo.size(); ++k)
      for (NodeId s : g_.succs(topo[k]))
        if (--indeg[s] == 0) topo.push_back(s);
    BM_REQUIRE(topo.size() == g_.size(), "graph has a cycle");
    for (std::size_t k = topo.size(); k-- > 0;) {
      const NodeId n = topo[k];
      for (NodeId s : g_.succs(n)) {
        if (dist[s] == kUnreachable) continue;
        dist[n] = std::max(dist[n], weight_(n, s) + dist[s]);
      }
    }
  }
  arena_->clear();
  heap_->clear();
  if (dist[from] != kUnreachable) {
    arena_->push_back({from, kNoParent});
    heap_->push_back({dist[from], 0, from, 0});
  }
}

bool PathEnumerator::next(Path& path, Time& length) {
  auto& heap = *heap_;
  auto& arena = *arena_;
  const auto& dist = *to_dist_;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), PartialLess{});
    const Partial cur = heap.back();
    heap.pop_back();

    if (cur.last == to_) {
      path.clear();
      for (std::uint32_t link = cur.chain; link != kNoParent;
           link = arena[link].parent)
        path.push_back(arena[link].node);
      std::reverse(path.begin(), path.end());
      length = cur.prefix_length;
      return true;
    }
    for (NodeId s : g_.succs(cur.last)) {
      if (dist[s] == kUnreachable) continue;  // cannot complete
      const Time prefix = cur.prefix_length + weight_(cur.last, s);
      arena.push_back({s, cur.chain});
      heap.push_back({prefix + dist[s], prefix, s,
                      static_cast<std::uint32_t>(arena.size() - 1)});
      std::push_heap(heap.begin(), heap.end(), PartialLess{});
    }
  }
  return false;
}

}  // namespace bm
