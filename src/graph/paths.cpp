#include "graph/paths.hpp"

#include <algorithm>

namespace bm {

std::vector<Time> longest_from(const Digraph& g, NodeId src,
                               const EdgeWeightFn& weight) {
  BM_REQUIRE(src < g.size(), "source out of range");
  std::vector<Time> dist(g.size(), kUnreachable);
  dist[src] = 0;
  for (NodeId n : topo_order(g)) {
    if (dist[n] == kUnreachable) continue;
    for (NodeId s : g.succs(n))
      dist[s] = std::max(dist[s], dist[n] + weight(n, s));
  }
  return dist;
}

std::vector<Time> longest_to(const Digraph& g, NodeId dst,
                             const EdgeWeightFn& weight) {
  BM_REQUIRE(dst < g.size(), "destination out of range");
  std::vector<Time> dist(g.size(), kUnreachable);
  dist[dst] = 0;
  const std::vector<NodeId> order = topo_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    for (NodeId s : g.succs(n)) {
      if (dist[s] == kUnreachable) continue;
      dist[n] = std::max(dist[n], weight(n, s) + dist[s]);
    }
  }
  return dist;
}

PathEnumerator::PathEnumerator(const Digraph& g, NodeId from, NodeId to,
                               EdgeWeightFn weight)
    : g_(g), to_(to), weight_(std::move(weight)) {
  BM_REQUIRE(from < g.size() && to < g.size(), "endpoint out of range");
  to_dist_ = longest_to(g_, to_, weight_);
  if (to_dist_[from] != kUnreachable) {
    Partial p;
    p.prefix_length = 0;
    p.priority = to_dist_[from];
    p.nodes = {from};
    heap_.push_back(std::move(p));
  }
}

bool PathEnumerator::next(Path& path, Time& length) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), PartialLess{});
    Partial cur = std::move(heap_.back());
    heap_.pop_back();

    const NodeId last = cur.nodes.back();
    if (last == to_) {
      path = std::move(cur.nodes);
      length = cur.prefix_length;
      return true;
    }
    for (NodeId s : g_.succs(last)) {
      if (to_dist_[s] == kUnreachable) continue;  // cannot complete
      Partial ext;
      ext.prefix_length = cur.prefix_length + weight_(last, s);
      ext.priority = ext.prefix_length + to_dist_[s];
      ext.nodes = cur.nodes;
      ext.nodes.push_back(s);
      heap_.push_back(std::move(ext));
      std::push_heap(heap_.begin(), heap_.end(), PartialLess{});
    }
  }
  return false;
}

}  // namespace bm
