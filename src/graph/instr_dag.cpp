#include "graph/instr_dag.hpp"

#include <optional>

#include "graph/paths.hpp"

namespace bm {

InstrDag InstrDag::build(const Program& prog, const TimingModel& tm) {
  prog.validate();
  InstrDag dag;
  const std::size_t n = prog.size();
  dag.num_instr_ = n;
  dag.g_ = Digraph(n + 2);
  dag.entry_ = static_cast<NodeId>(n);
  dag.exit_ = static_cast<NodeId>(n + 1);

  dag.time_.resize(n + 2, TimeRange{0, 0});
  for (std::size_t i = 0; i < n; ++i) dag.time_[i] = tm.range(prog[i].op);

  // Dataflow edges.
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = prog[i];
    for (int k = 0; k < t.operand_count(); ++k)
      if (t.operand(k).is_tuple())
        dag.g_.add_edge(t.operand(k).tuple_id(), static_cast<NodeId>(i));
  }

  // Memory dependences per variable: flow (store→load), anti (load→store),
  // output (store→store).
  std::vector<std::optional<NodeId>> last_store(prog.num_vars());
  std::vector<std::vector<NodeId>> loads_since(prog.num_vars());
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = prog[i];
    const auto node = static_cast<NodeId>(i);
    if (t.is_load()) {
      if (last_store[t.var]) dag.g_.add_edge(*last_store[t.var], node);
      loads_since[t.var].push_back(node);
    } else if (t.is_store()) {
      for (NodeId l : loads_since[t.var]) dag.g_.add_edge(l, node);
      if (last_store[t.var]) dag.g_.add_edge(*last_store[t.var], node);
      last_store[t.var] = node;
      loads_since[t.var].clear();
    }
  }

  // Record implied synchronizations before wiring the dummy nodes.
  for (NodeId from = 0; from < n; ++from)
    for (NodeId to : dag.g_.succs(from)) dag.sync_edges_.emplace_back(from, to);

  // Entry/exit dummies.
  for (NodeId i = 0; i < n; ++i) {
    if (dag.g_.preds(i).empty()) dag.g_.add_edge(dag.entry_, i);
    if (dag.g_.succs(i).empty()) dag.g_.add_edge(i, dag.exit_);
  }
  if (n == 0) dag.g_.add_edge(dag.entry_, dag.exit_);

  // Heights: h(i) = t(i) + max over successors of h(s); h(exit) = 0.
  // Realized as a longest path to exit with edge weight = source node time.
  auto min_w = [&](NodeId a, NodeId) { return dag.time_[a].min; };
  auto max_w = [&](NodeId a, NodeId) { return dag.time_[a].max; };
  dag.h_min_ = longest_to(dag.g_, dag.exit_, min_w);
  dag.h_max_ = longest_to(dag.g_, dag.exit_, max_w);

  // ASAP finish: f(i) = t(i) + max over predecessors of f(p); f(entry) = 0.
  auto min_in = [&](NodeId, NodeId b) { return dag.time_[b].min; };
  auto max_in = [&](NodeId, NodeId b) { return dag.time_[b].max; };
  const std::vector<Time> fmin = longest_from(dag.g_, dag.entry_, min_in);
  const std::vector<Time> fmax = longest_from(dag.g_, dag.entry_, max_in);
  dag.asap_.resize(n + 2, TimeRange{0, 0});
  for (NodeId i = 0; i < n + 2; ++i) {
    BM_ASSERT_INTERNAL(fmin[i] != kUnreachable, "node unreachable from entry");
    dag.asap_[i] = TimeRange{fmin[i], fmax[i]};
  }
  dag.critical_ = dag.asap_[dag.exit_];
  dag.build_columns();
  return dag;
}

void InstrDag::build_columns() {
  const std::size_t total = g_.size();
  pred_off_.assign(total + 1, 0);
  succ_off_.assign(total + 1, 0);
  indeg_.assign(total, 0);
  for (NodeId n = 0; n < total; ++n) {
    pred_off_[n + 1] =
        pred_off_[n] + static_cast<std::uint32_t>(g_.preds(n).size());
    succ_off_[n + 1] =
        succ_off_[n] + static_cast<std::uint32_t>(g_.succs(n).size());
    indeg_[n] = static_cast<std::uint32_t>(g_.preds(n).size());
  }
  pred_dat_.resize(pred_off_[total]);
  succ_dat_.resize(succ_off_[total]);
  for (NodeId n = 0; n < total; ++n) {
    std::uint32_t kp = pred_off_[n];
    for (NodeId p : g_.preds(n)) pred_dat_[kp++] = p;
    std::uint32_t ks = succ_off_[n];
    for (NodeId s : g_.succs(n)) succ_dat_[ks++] = s;
  }
  // Instruction-producer CSR: per instruction node, its predecessors with
  // the entry dummy filtered out (dummies only ever precede instructions
  // via the entry node).
  iprd_off_.assign(num_instr_ + 1, 0);
  for (NodeId n = 0; n < num_instr_; ++n) {
    std::uint32_t cnt = 0;
    for (NodeId p : g_.preds(n))
      if (!is_dummy(p)) ++cnt;
    iprd_off_[n + 1] = iprd_off_[n] + cnt;
  }
  iprd_dat_.resize(iprd_off_[num_instr_]);
  for (NodeId n = 0; n < num_instr_; ++n) {
    std::uint32_t k = iprd_off_[n];
    for (NodeId p : g_.preds(n))
      if (!is_dummy(p)) iprd_dat_[k++] = p;
  }
}

std::vector<TimeRange> InstrDag::asap_instruction_columns() const {
  return {asap_.begin(), asap_.begin() + static_cast<std::ptrdiff_t>(num_instr_)};
}

}  // namespace bm
