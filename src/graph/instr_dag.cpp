#include "graph/instr_dag.hpp"

#include "graph/paths.hpp"
#include "support/scratch.hpp"

namespace bm {

namespace {

/// Offset columns widen past this edge total. Production: every total that
/// fits in 32 bits stays narrow; tests lower the bound to force the wide
/// layout on small dags.
std::uint64_t g_offset_width_bound = 0xFFFFFFFFull;

/// True if `t` has a value operand referencing tuple `u` — exactly the
/// condition under which a memory-dependence edge u→t duplicates a dataflow
/// edge already emitted for t's operands (loads have no value operands, so
/// only store targets can ever coincide).
bool has_tuple_operand(const Tuple& t, NodeId u) {
  for (int k = 0; k < t.operand_count(); ++k)
    if (t.operand(k).is_tuple() && t.operand(k).tuple_id() == u) return true;
  return false;
}

}  // namespace

void OffsetColumn::build_from_counts(std::span<const std::uint32_t> counts,
                                     std::uint64_t bound) {
  std::uint64_t total = 0;
  for (std::uint32_t c : counts) total += c;
  narrow_.clear();
  wide_.clear();
  if (total > bound) {
    wide_.resize(counts.size() + 1);
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      wide_[i] = run;
      run += counts[i];
    }
    wide_[counts.size()] = run;
  } else {
    narrow_.resize(counts.size() + 1);
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      narrow_[i] = static_cast<std::uint32_t>(run);
      run += counts[i];
    }
    narrow_[counts.size()] = static_cast<std::uint32_t>(run);
  }
}

std::uint64_t InstrDag::set_offset_width_bound_for_test(std::uint64_t bound) {
  const std::uint64_t prev = g_offset_width_bound;
  g_offset_width_bound = bound;
  return prev;
}

InstrDag InstrDag::build(const Program& prog, const TimingModel& tm) {
  prog.validate();
  InstrDag dag;
  const std::size_t n = prog.size();
  BM_REQUIRE(n + 2 < kInvalidNode, "program too large for 32-bit node ids");
  dag.num_instr_ = n;
  dag.entry_ = static_cast<NodeId>(n);
  dag.exit_ = static_cast<NodeId>(n + 1);
  const std::size_t total = n + 2;

  dag.time_.resize(total, TimeRange{0, 0});
  for (std::size_t i = 0; i < n; ++i) dag.time_[i] = tm.range(prog[i].op);

  // --- edge emission ------------------------------------------------------
  // One chronological, duplicate-free edge list, in the exact order the
  // former per-node Digraph saw add_edge calls: downstream output (sync-edge
  // order, per-node adjacency order) depends on it. Duplicates can only
  // arise (a) from a binary op whose two operands name the same producer and
  // (b) from a memory-dependence edge whose target already consumes the
  // source as an operand — both are caught by local operand checks, so no
  // membership structure is needed.
  ScratchVec<std::uint64_t> edges_s;
  ScratchVec<std::uint32_t> outdeg_s, indeg_s;
  auto& edges = *edges_s;
  auto& outdeg = *outdeg_s;
  auto& indeg = *indeg_s;
  edges.clear();
  outdeg.assign(total, 0);
  indeg.assign(total, 0);
  auto emit = [&](NodeId from, NodeId to) {
    edges.push_back((static_cast<std::uint64_t>(from) << 32) | to);
    ++outdeg[from];
    ++indeg[to];
  };

  // Dataflow edges.
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = prog[i];
    for (int k = 0; k < t.operand_count(); ++k) {
      if (!t.operand(k).is_tuple()) continue;
      if (k == 1 && t.operand(0) == t.operand(1)) continue;  // same producer
      emit(t.operand(k).tuple_id(), static_cast<NodeId>(i));
    }
  }

  // Memory dependences per variable: flow (store→load), anti (load→store),
  // output (store→store).
  ScratchVec<NodeId> last_store_s;
  auto& last_store = *last_store_s;
  last_store.assign(prog.num_vars(), kInvalidNode);
  std::vector<std::vector<NodeId>> loads_since(prog.num_vars());
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = prog[i];
    const auto node = static_cast<NodeId>(i);
    if (t.is_load()) {
      if (last_store[t.var] != kInvalidNode) emit(last_store[t.var], node);
      loads_since[t.var].push_back(node);
    } else if (t.is_store()) {
      for (NodeId l : loads_since[t.var])
        if (!has_tuple_operand(t, l)) emit(l, node);
      if (last_store[t.var] != kInvalidNode &&
          !has_tuple_operand(t, last_store[t.var]))
        emit(last_store[t.var], node);
      last_store[t.var] = node;
      loads_since[t.var].clear();
    }
  }

  // Entry/exit dummies. Degrees are read before the corresponding emit, so
  // the decisions see only the dependence edges above.
  for (NodeId i = 0; i < n; ++i) {
    if (indeg[i] == 0) emit(dag.entry_, i);
    if (outdeg[i] == 0) emit(i, dag.exit_);
  }
  if (n == 0) emit(dag.entry_, dag.exit_);

  // --- CSR columns --------------------------------------------------------
  // Two stable counting sorts of the chronological list: grouping by source
  // preserves per-source emission order (successor lists), grouping by
  // target preserves per-target emission order (predecessor lists) — both
  // match the historical push_back order exactly.
  const std::uint64_t bound = g_offset_width_bound;
  dag.succ_off_.build_from_counts({outdeg.data(), total}, bound);
  dag.pred_off_.build_from_counts({indeg.data(), total}, bound);
  dag.succ_dat_.resize(edges.size());
  dag.pred_dat_.resize(edges.size());
  {
    ScratchVec<std::uint64_t> cur_s;
    auto& cur = *cur_s;
    cur.resize(total);
    for (std::size_t v = 0; v < total; ++v) cur[v] = dag.succ_off_[v];
    for (const std::uint64_t key : edges)
      dag.succ_dat_[cur[key >> 32]++] = static_cast<NodeId>(key);
    for (std::size_t v = 0; v < total; ++v) cur[v] = dag.pred_off_[v];
    for (const std::uint64_t key : edges)
      dag.pred_dat_[cur[static_cast<NodeId>(key)]++] =
          static_cast<NodeId>(key >> 32);
  }
  dag.indeg_.assign(indeg.begin(), indeg.end());

  // Implied synchronizations: instruction→instruction edges, grouped by
  // producer (the exit edge filtered per source).
  dag.sync_edges_.reserve(edges.size());
  for (NodeId from = 0; from < n; ++from)
    for (NodeId to : dag.succs(from))
      if (to < n) dag.sync_edges_.emplace_back(from, to);

  // Instruction-producer CSR: per instruction node, its predecessors with
  // the entry dummy filtered out (dummies only ever precede instructions
  // via the entry node).
  {
    ScratchVec<std::uint32_t> icnt_s;
    auto& icnt = *icnt_s;
    icnt.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      std::uint32_t c = 0;
      for (NodeId p : dag.preds(v))
        if (!dag.is_dummy(p)) ++c;
      icnt[v] = c;
    }
    dag.iprd_off_.build_from_counts({icnt.data(), n}, bound);
    dag.iprd_dat_.resize(dag.iprd_off_[n]);
    std::size_t k = 0;
    for (NodeId v = 0; v < n; ++v)
      for (NodeId p : dag.preds(v))
        if (!dag.is_dummy(p)) dag.iprd_dat_[k++] = p;
  }

  // --- labeling sweeps ----------------------------------------------------
  // The id sequence [entry, 0..n-1, exit] is itself a topological order:
  // every dependence edge points id-upward (operands and memory sources
  // reference earlier tuples), the entry dummy only emits and the exit dummy
  // only absorbs. Both label pairs are computed in fused min/max sweeps over
  // that order — straight-line passes over the CSR with no sort, no
  // per-edge callback, and sequential column access.

  // Heights: h(i) = t(i) + max over successors of h(s); h(exit) = 0.
  dag.h_min_.assign(total, kUnreachable);
  dag.h_max_.assign(total, kUnreachable);
  dag.h_min_[dag.exit_] = 0;
  dag.h_max_[dag.exit_] = 0;
  auto relax_heights = [&](NodeId v) {
    const Time wmin = dag.time_[v].min, wmax = dag.time_[v].max;
    for (NodeId s : dag.succs(v)) {
      if (dag.h_min_[s] != kUnreachable)
        dag.h_min_[v] = std::max(dag.h_min_[v], wmin + dag.h_min_[s]);
      if (dag.h_max_[s] != kUnreachable)
        dag.h_max_[v] = std::max(dag.h_max_[v], wmax + dag.h_max_[s]);
    }
  };
  for (NodeId v = n; v-- > 0;) relax_heights(v);
  relax_heights(dag.entry_);

  // ASAP finish: f(i) = t(i) + max over predecessors of f(p); f(entry) = 0.
  ScratchVec<Time> fmin_s, fmax_s;
  auto& fmin = *fmin_s;
  auto& fmax = *fmax_s;
  fmin.assign(total, kUnreachable);
  fmax.assign(total, kUnreachable);
  fmin[dag.entry_] = 0;
  fmax[dag.entry_] = 0;
  auto relax_asap = [&](NodeId v) {
    if (fmin[v] == kUnreachable) return;
    for (NodeId s : dag.succs(v)) {
      fmin[s] = std::max(fmin[s], fmin[v] + dag.time_[s].min);
      fmax[s] = std::max(fmax[s], fmax[v] + dag.time_[s].max);
    }
  };
  relax_asap(dag.entry_);
  for (NodeId v = 0; v < n; ++v) relax_asap(v);
  dag.asap_.resize(total, TimeRange{0, 0});
  for (NodeId i = 0; i < total; ++i) {
    BM_ASSERT_INTERNAL(fmin[i] != kUnreachable, "node unreachable from entry");
    dag.asap_[i] = TimeRange{fmin[i], fmax[i]};
  }
  dag.critical_ = dag.asap_[dag.exit_];
  return dag;
}

const Digraph& InstrDag::graph() const {
  if (!lazy_g_) {
    auto g = std::make_unique<Digraph>(num_nodes());
    for (NodeId v = 0; v < num_nodes(); ++v)
      for (NodeId s : succs(v)) g->add_edge(v, s);
    lazy_g_ = std::move(g);
  }
  return *lazy_g_;
}

std::vector<TimeRange> InstrDag::asap_instruction_columns() const {
  return {asap_.begin(), asap_.begin() + static_cast<std::ptrdiff_t>(num_instr_)};
}

}  // namespace bm
