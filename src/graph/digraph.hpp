// Small dense directed-graph container shared by the instruction DAG and the
// barrier dag. Nodes are integer ids 0..size()-1; parallel edges are
// coalesced.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace bm {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t num_nodes)
      : succs_(num_nodes), preds_(num_nodes) {}

  std::size_t size() const { return succs_.size(); }

  /// Appends a node; returns its id.
  NodeId add_node();

  /// Adds edge from→to (no-op if already present). Self-edges are rejected.
  void add_edge(NodeId from, NodeId to);

  bool has_edge(NodeId from, NodeId to) const;

  const std::vector<NodeId>& succs(NodeId n) const { return succs_.at(n); }
  const std::vector<NodeId>& preds(NodeId n) const { return preds_.at(n); }

  std::size_t edge_count() const;

 private:
  std::vector<std::vector<NodeId>> succs_;
  std::vector<std::vector<NodeId>> preds_;
};

/// Topological order (Kahn). Throws bm::Error if the graph has a cycle.
std::vector<NodeId> topo_order(const Digraph& g);

/// True if the graph is acyclic.
bool is_dag(const Digraph& g);

}  // namespace bm
