#include "graph/digraph.hpp"

#include <algorithm>

namespace bm {

NodeId Digraph::add_node() {
  succs_.emplace_back();
  preds_.emplace_back();
  return static_cast<NodeId>(succs_.size() - 1);
}

void Digraph::add_edge(NodeId from, NodeId to) {
  BM_REQUIRE(from < size() && to < size(), "edge endpoint out of range");
  BM_REQUIRE(from != to, "self-edges are not allowed");
  auto& out = succs_[from];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  preds_[to].push_back(from);
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  BM_REQUIRE(from < size() && to < size(), "edge endpoint out of range");
  const auto& out = succs_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

std::size_t Digraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : succs_) n += out.size();
  return n;
}

std::vector<NodeId> topo_order(const Digraph& g) {
  std::vector<std::size_t> indegree(g.size());
  for (NodeId n = 0; n < g.size(); ++n) indegree[n] = g.preds(n).size();
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < g.size(); ++n)
    if (indegree[n] == 0) ready.push_back(n);
  std::vector<NodeId> order;
  order.reserve(g.size());
  while (!ready.empty()) {
    const NodeId n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (NodeId s : g.succs(n))
      if (--indegree[s] == 0) ready.push_back(s);
  }
  BM_REQUIRE(order.size() == g.size(), "graph has a cycle");
  return order;
}

bool is_dag(const Digraph& g) {
  try {
    topo_order(g);
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace bm
