// Native execution of a lowered schedule on real hardware threads.
//
// execute() runs a LoweredProgram's PE streams concurrently, with the
// schedule's barriers lowered to real primitives (exec/barrier.hpp), and
// returns the final memory/value state plus a measured timeline — the raw
// material the differential tests compare value-for-value against the
// value-accurate simulator, and `bmexec calibrate` compares against the
// predicted [min,max] envelopes.
//
// Two thread mappings, chosen by ExecOptions::threads:
//
//   - blocking (threads == 0 or >= num_procs): one OS thread per PE, each
//     blocking in Barrier::wait() — the faithful model of a barrier MIMD
//     node, exercising the primitives' real contended waits;
//   - cooperative (0 < threads < num_procs): `threads` carrier threads
//     multiplex the PE streams. A carrier never blocks on a barrier — it
//     parks the PE after a non-blocking arrive() and keeps polling between
//     running its other PEs — so oversubscribed runs (the CI box has one
//     core) cannot deadlock even though several PEs of one barrier share a
//     carrier.
//
// Shared instruction state (the memory/value arrays) is accessed with *no*
// synchronization beyond the lowered barriers; the verifier gate in
// lower() is what makes that sound, and TSan over the differential suite
// is what checks it.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/barrier.hpp"
#include "exec/lower.hpp"
#include "obs/trace.hpp"

namespace bm::exec {

struct ExecOptions {
  BarrierKind barrier = BarrierKind::kCentral;
  /// 0 = one thread per PE (blocking waits); 1..num_procs-1 = that many
  /// cooperative carrier threads; >= num_procs behaves like 0.
  std::uint32_t threads = 0;
  /// Busy-spin bound before each yield inside a barrier wait/poll loop.
  std::uint32_t spin_iters = 128;
  /// Pin PE/carrier thread k to CPU k (mod configured CPUs).
  bool pin = false;
  /// Record barrier-fire and PE-finish timestamps (a few extra stores on
  /// the release path; benchmarks turn it off).
  bool timeline = true;
  /// Initial variable values; zero-padded (or truncated) to num_vars.
  std::vector<std::int64_t> initial_memory;
};

struct ExecResult {
  std::vector<std::int64_t> memory;  ///< final variables [num_vars]
  std::vector<std::int64_t> values;  ///< final tuple results [num_values]
  /// Measured fire instants per dense barrier, ns since the start line
  /// released (timeline only; 0 when disabled).
  std::vector<std::uint64_t> barrier_fire_ns;
  /// Measured per-PE stream completion, ns since the start line released.
  std::vector<std::uint64_t> pe_finish_ns;
  std::uint64_t wall_ns = 0;  ///< start-line release -> last join
  std::uint64_t spins = 0;    ///< summed across all waiters
  std::uint64_t yields = 0;
  std::uint32_t carrier_threads = 0;  ///< OS threads actually used
  bool blocking = false;              ///< one-thread-per-PE mode?
};

/// Executes the lowered program. Deterministic in values (any interleaving
/// of a verified schedule computes the same state); timings vary run to
/// run. Throws bm::Error on malformed input.
ExecResult execute(const LoweredProgram& lp, const ExecOptions& opts = {});

/// Trace-event process id for measured native-execution lanes (pid 1 and 2
/// are the wall-clock and simulated-machine timelines; see obs/trace.hpp).
inline constexpr std::uint32_t kExecPid = 3;

/// Renders a timeline-enabled result as trace events: one 'X' span per PE
/// stream (lane = PE id) and one 'i' instant per barrier fire, all on
/// kExecPid with timestamps in microseconds since the start line. Feed to
/// obs::write_trace_events_json for a standalone Perfetto file.
std::vector<obs::TraceEvent> exec_trace_events(const LoweredProgram& lp,
                                               const ExecResult& r);

}  // namespace bm::exec
