// Lowering a verified barrier-MIMD schedule to native form.
//
// A Schedule is lowered once into a LoweredProgram — per-PE straight-line
// instruction segments separated by barrier waits, with every operand
// resolved to a value slot or an immediate — which two backends consume:
//
//   - the in-process runtime (exec/runtime.hpp) interprets the decoded ops
//     on real hardware threads with real barrier primitives;
//   - emit_cpp() renders the same lowering as a standalone, dependency-free
//     C++ translation unit — one function per PE stream of straight-line
//     code, barriers lowered to an indirect runtime call — which
//     exec/jit.hpp compiles with the system compiler and runs via dlopen.
//
// Only verified schedules are runnable: lower() re-derives the safety
// argument with the static verifier (src/verify) and throws on any error
// diagnostic.
//
// Timing-proven edges become handshakes. The model's machine has a common
// clock, so the verifier accepts two kinds of proof for a cross-PE
// dependence: a separating barrier chain, or a §4.4 [min,max] timing
// window ("the producer's worst finish precedes the consumer's best
// start"). Commodity threads have no static timing — a window proof means
// nothing when a core gets descheduled — so lower() re-derives which
// cross-PE dependence edges are *structurally* covered (NextBar(u) reaches
// LastBar(v) in the barrier dag, whose acquire/release chains carry real
// happens-before) and materializes every remaining edge as a per-
// instruction ready flag: release-published by the producer, acquire-
// awaited by the consumer just before it needs the result. Value and
// ordering semantics are preserved exactly; the handshake count is
// reported (LoweredProgram::timing_edges) because it is the honest price
// of running a clock-synchronous schedule on asynchronous silicon.
//
// Value semantics are exactly the repo's reference semantics (ir/interp,
// fold_binary): 64-bit two's-complement wrap for Add/Sub/Mul, division and
// modulo by zero yield 0, INT64_MIN/-1 guarded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "sched/schedule.hpp"
#include "verify/verify.hpp"

namespace bm::exec {

/// One decoded straight-line instruction. `dst` is the value slot (== the
/// tuple's dense id); operands are a value slot or an immediate.
struct ExecOp {
  Opcode op = Opcode::kAdd;
  std::uint32_t dst = 0;
  std::uint32_t var = 0;  ///< Load/Store only
  bool lhs_imm = false;
  bool rhs_imm = false;
  /// Release-publish this instruction's ready flag after executing (set
  /// when some timing-proven cross-PE edge leaves this node).
  bool publish = false;
  std::int64_t lhs = 0;  ///< slot index or immediate (Store: value stored)
  std::int64_t rhs = 0;
  /// [await_begin, await_end) into PeStream::awaits: producer instruction
  /// ids whose ready flags must be acquire-observed before this op runs —
  /// the timing-proven in-edges no barrier chain covers.
  std::uint32_t await_begin = 0;
  std::uint32_t await_end = 0;
};

/// One entry of a lowered PE stream: either a run of ops (straight-line
/// segment) or a barrier wait.
struct LoweredStep {
  enum class Kind : std::uint8_t { kSegment, kBarrier };
  Kind kind = Kind::kSegment;
  std::uint32_t a = 0;  ///< segment: first op index; barrier: dense index
  std::uint32_t b = 0;  ///< segment: one-past-last op index; barrier: slot
};

struct PeStream {
  std::vector<ExecOp> ops;        ///< all ops of this PE, stream order
  std::vector<LoweredStep> steps;
  /// Flattened await lists (producer instruction ids); see ExecOp.
  std::vector<std::uint32_t> awaits;
};

/// One lowered barrier (dense renumbering of the schedule's alive barriers
/// that appear in any stream; the implicit initial barrier is the runtime's
/// start line and is not lowered).
struct LoweredBarrier {
  BarrierId schedule_id = 0;
  std::vector<ProcId> participants;  ///< mask order; a PE's slot = its index
  TimeRange predicted_fire{0, 0};    ///< model cycles after the initial barrier
};

struct LoweredProgram {
  std::uint32_t num_procs = 0;
  std::uint32_t num_vars = 0;
  std::uint32_t num_values = 0;
  std::vector<PeStream> pes;
  std::vector<LoweredBarrier> barriers;
  /// Predicted per-PE completion envelope (Schedule::proc_finish), model
  /// cycles — what `bmexec calibrate` compares measured wall-clock against.
  std::vector<TimeRange> pe_envelope;
  /// Dense barrier index for each schedule BarrierId (kNoBarrier if dead /
  /// initial).
  std::vector<std::uint32_t> dense_of_barrier;
  std::size_t total_ops = 0;
  /// Cross-PE dependence edges enforced by ready-flag handshakes because
  /// only a timing window proves them in the model (total await entries).
  std::size_t timing_edges = 0;

  static constexpr std::uint32_t kNoBarrier = ~std::uint32_t{0};
};

struct LowerOptions {
  /// Re-verify the schedule and refuse (throw bm::Error) on any error
  /// diagnostic. Only tests of the gate itself turn this off.
  bool verify = true;
  VerifyOptions verify_options;
};

/// Lowers `sched` (built over InstrDag::build(prog, ...)) for native
/// execution. Throws bm::Error if the schedule fails verification or does
/// not place every instruction of `prog`.
LoweredProgram lower(const Program& prog, const Schedule& sched,
                     const LowerOptions& options = {});

/// Renders the lowering as a standalone C++17 translation unit: the
/// `bm_exec_ctx` ABI struct (memory, values, ready flags, runtime handle,
/// barrier callback), value-semantics + handshake helpers, one
/// `extern "C" void bm_pe<K>(bm_exec_ctx*)` function of straight-line code
/// per PE, and exported tables (`bm_pes`, `bm_num_pes`, `bm_num_vars`,
/// `bm_num_vals`, `bm_num_barriers`). Compiles with just a C++ compiler —
/// no repo headers.
std::string emit_cpp(const LoweredProgram& lp);

}  // namespace bm::exec
