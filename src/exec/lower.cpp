#include "exec/lower.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>

#include "support/assert.hpp"

namespace bm::exec {

namespace {

ExecOp decode(const Tuple& t, NodeId id) {
  ExecOp op;
  op.op = t.op;
  op.dst = id;
  if (t.is_load()) {
    op.var = t.var;
    return op;
  }
  const auto operand = [](const Operand& o, bool& imm, std::int64_t& out) {
    imm = o.is_const();
    out = imm ? o.const_value() : static_cast<std::int64_t>(o.tuple_id());
  };
  if (t.is_store()) {
    op.var = t.var;
    operand(t.lhs, op.lhs_imm, op.lhs);
    return op;
  }
  operand(t.lhs, op.lhs_imm, op.lhs);
  operand(t.rhs, op.rhs_imm, op.rhs);
  return op;
}

}  // namespace

LoweredProgram lower(const Program& prog, const Schedule& sched,
                     const LowerOptions& options) {
  const InstrDag& dag = sched.instr_dag();
  BM_REQUIRE(dag.num_instructions() == prog.size(),
             "schedule was not built over this program");
  for (NodeId i = 0; i < prog.size(); ++i)
    BM_REQUIRE(sched.placed(i), "unplaced instruction; schedule is partial");

  if (options.verify) {
    const VerifyReport report =
        verify_schedule(dag, sched, options.verify_options);
    if (!report.clean())
      throw Error(
          "refusing to lower an unverified schedule: " +
          std::to_string(report.error_count()) + " verifier error(s); first: " +
          (report.diagnostics().empty() ? std::string("<none>")
                                        : report.diagnostics().front().code +
                                              " " +
                                              report.diagnostics().front()
                                                  .message));
  }

  LoweredProgram lp;
  lp.num_procs = static_cast<std::uint32_t>(sched.num_procs());
  lp.num_vars = prog.num_vars();
  lp.num_values = static_cast<std::uint32_t>(prog.size());

  // Dense-number every alive non-initial barrier that appears in a stream,
  // in schedule-id order (deterministic, stable across runs).
  lp.dense_of_barrier.assign(sched.barrier_id_bound(),
                             LoweredProgram::kNoBarrier);
  const BarrierDag& bdag = sched.barrier_dag();
  for (BarrierId b = 0; b < sched.barrier_id_bound(); ++b) {
    if (b == Schedule::kInitialBarrier || !sched.barrier_alive(b)) continue;
    bool in_stream = false;
    for (ProcId p = 0; p < sched.num_procs() && !in_stream; ++p)
      for (const ScheduleEntry& e : sched.stream(p))
        if (e.is_barrier && e.id == b) {
          in_stream = true;
          break;
        }
    if (!in_stream) continue;
    lp.dense_of_barrier[b] = static_cast<std::uint32_t>(lp.barriers.size());
    LoweredBarrier lb;
    lb.schedule_id = b;
    sched.barrier_mask(b).for_each(
        [&](std::size_t p) { lb.participants.push_back(static_cast<ProcId>(p)); });
    lb.predicted_fire = bdag.known(b) ? bdag.fire_range(b) : TimeRange{0, 0};
    lp.barriers.push_back(std::move(lb));
  }

  // Structural-coverage context for the handshake pass: which PE each
  // instruction runs on, the last barrier before it and the first barrier
  // after it in its stream. A cross-PE edge u→v is covered by barriers iff
  // NextBar(u) reaches LastBar(v) in the barrier dag — real happens-before
  // on silicon. Everything else was proven by a §4.4 timing window, which
  // asynchronous threads do not honor, and becomes a ready-flag handshake.
  constexpr BarrierId kNoBar = ~BarrierId{0};
  std::vector<ProcId> proc_of(prog.size(), 0);
  std::vector<BarrierId> last_bar_before(prog.size(), Schedule::kInitialBarrier);
  std::vector<BarrierId> next_bar_after(prog.size(), kNoBar);
  for (ProcId p = 0; p < lp.num_procs; ++p) {
    BarrierId last = Schedule::kInitialBarrier;
    std::vector<NodeId> pending;
    for (const ScheduleEntry& e : sched.stream(p)) {
      if (e.is_barrier) {
        for (const NodeId id : pending) next_bar_after[id] = e.id;
        pending.clear();
        last = e.id;
      } else {
        proc_of[e.id] = p;
        last_bar_before[e.id] = last;
        pending.push_back(e.id);
      }
    }
  }
  const auto covered = [&](NodeId u, NodeId v) {
    const BarrierId a = next_bar_after[u];
    const BarrierId b = last_bar_before[v];
    if (a == kNoBar) return false;
    return a == b || bdag.path_exists(a, b);
  };
  std::vector<bool> publish(prog.size(), false);

  lp.pes.resize(lp.num_procs);
  lp.pe_envelope.resize(lp.num_procs);
  for (ProcId p = 0; p < lp.num_procs; ++p) {
    PeStream& pe = lp.pes[p];
    std::uint32_t seg_begin = 0;
    const auto flush_segment = [&] {
      const auto end = static_cast<std::uint32_t>(pe.ops.size());
      if (end > seg_begin)
        pe.steps.push_back({LoweredStep::Kind::kSegment, seg_begin, end});
      seg_begin = end;
    };
    for (const ScheduleEntry& e : sched.stream(p)) {
      if (e.is_barrier) {
        const std::uint32_t dense = lp.dense_of_barrier[e.id];
        BM_ASSERT_INTERNAL(dense != LoweredProgram::kNoBarrier,
                           "stream references an unlowered barrier");
        flush_segment();
        const auto& parts = lp.barriers[dense].participants;
        std::uint32_t slot = 0;
        while (slot < parts.size() && parts[slot] != p) ++slot;
        BM_REQUIRE(slot < parts.size(),
                   "stream barrier whose mask excludes this PE");
        pe.steps.push_back({LoweredStep::Kind::kBarrier, dense, slot});
      } else {
        ExecOp op = decode(prog[e.id], e.id);
        op.await_begin = static_cast<std::uint32_t>(pe.awaits.size());
        for (const NodeId u : dag.instr_preds(e.id)) {
          if (proc_of[u] == p || covered(u, e.id)) continue;
          pe.awaits.push_back(u);
          publish[u] = true;
        }
        const auto beg = pe.awaits.begin() + op.await_begin;
        std::sort(beg, pe.awaits.end());
        pe.awaits.erase(std::unique(beg, pe.awaits.end()), pe.awaits.end());
        op.await_end = static_cast<std::uint32_t>(pe.awaits.size());
        pe.ops.push_back(op);
      }
    }
    flush_segment();
    lp.total_ops += pe.ops.size();
    lp.timing_edges += pe.awaits.size();
    lp.pe_envelope[p] = sched.proc_finish(p);
  }
  for (PeStream& pe : lp.pes)
    for (ExecOp& op : pe.ops) op.publish = publish[op.dst];
  return lp;
}

namespace {

/// Renders an int64 immediate as a C++ expression (INT64_MIN has no
/// negative literal form).
std::string imm(std::int64_t v) {
  if (v == std::numeric_limits<std::int64_t>::min())
    return "(-9223372036854775807LL - 1)";
  return std::to_string(v) + "LL";
}

std::string operand(bool is_imm, std::int64_t v) {
  return is_imm ? imm(v) : "v[" + std::to_string(v) + "]";
}

}  // namespace

std::string emit_cpp(const LoweredProgram& lp) {
  std::ostringstream os;
  os << "// Generated by bmexec emit — native lowering of a verified\n"
        "// barrier-MIMD schedule. One function per PE stream; barriers are\n"
        "// indirect calls into the host runtime; timing-proven cross-PE\n"
        "// dependences are pairwise ready-flag handshakes (bm_await /\n"
        "// bm_done). Standalone: compiles with any C++17 compiler, no\n"
        "// repo headers needed.\n"
        "#include <cstdint>\n"
        "#include <thread>\n"
        "\n"
        "extern \"C\" {\n"
        "struct bm_exec_ctx {\n"
        "  int64_t* mem;         // variables\n"
        "  int64_t* val;         // per-tuple results\n"
        "  unsigned char* ready; // per-instruction done flags\n"
        "  void* rt;             // host runtime state\n"
        "  void (*barrier_wait)(void* rt, uint32_t barrier, uint32_t slot);\n"
        "};\n"
        "typedef void (*bm_pe_fn)(bm_exec_ctx*);\n"
        "}\n"
        "\n"
        "namespace {\n"
        "// Ready-flag handshake for dependences the model proved only by a\n"
        "// timing window: release by the producer, bounded-spin acquire by\n"
        "// the consumer.\n"
        "inline void bm_done(unsigned char* f, uint32_t i) {\n"
        "  __atomic_store_n(&f[i], (unsigned char)1, __ATOMIC_RELEASE);\n"
        "}\n"
        "inline void bm_await(unsigned char* f, uint32_t i) {\n"
        "  uint32_t k = 0;\n"
        "  while (!__atomic_load_n(&f[i], __ATOMIC_ACQUIRE)) {\n"
        "    if (++k > 4096u) { k = 0; std::this_thread::yield(); }\n"
        "  }\n"
        "}\n"
        "// Value semantics mirror the scheduler's constant folder: wrap on\n"
        "// Add/Sub/Mul, div/mod by zero -> 0, INT64_MIN / -1 guarded.\n"
        "inline int64_t bm_add(int64_t a, int64_t b) {\n"
        "  return (int64_t)((uint64_t)a + (uint64_t)b);\n"
        "}\n"
        "inline int64_t bm_sub(int64_t a, int64_t b) {\n"
        "  return (int64_t)((uint64_t)a - (uint64_t)b);\n"
        "}\n"
        "inline int64_t bm_mul(int64_t a, int64_t b) {\n"
        "  return (int64_t)((uint64_t)a * (uint64_t)b);\n"
        "}\n"
        "inline int64_t bm_div(int64_t a, int64_t b) {\n"
        "  if (b == 0) return 0;\n"
        "  if (a == (-9223372036854775807LL - 1) && b == -1) return a;\n"
        "  return a / b;\n"
        "}\n"
        "inline int64_t bm_mod(int64_t a, int64_t b) {\n"
        "  if (b == 0) return 0;\n"
        "  if (a == (-9223372036854775807LL - 1) && b == -1) return 0;\n"
        "  return a % b;\n"
        "}\n"
        "}  // namespace\n";

  for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
    const PeStream& pe = lp.pes[p];
    os << "\nextern \"C\" void bm_pe" << p << "(bm_exec_ctx* c) {\n";
    if (pe.ops.empty() &&
        pe.steps.empty()) {  // idle PE: nothing but the implicit start line
      os << "  (void)c;\n}\n";
      continue;
    }
    os << "  int64_t* m = c->mem;\n  int64_t* v = c->val;\n";
    if (pe.ops.empty()) os << "  (void)m;\n  (void)v;\n";
    for (const LoweredStep& st : pe.steps) {
      if (st.kind == LoweredStep::Kind::kBarrier) {
        os << "  c->barrier_wait(c->rt, " << st.a << "u, " << st.b << "u);\n";
        continue;
      }
      for (std::uint32_t i = st.a; i < st.b; ++i) {
        const ExecOp& op = pe.ops[i];
        for (std::uint32_t a = op.await_begin; a < op.await_end; ++a)
          os << "  bm_await(c->ready, " << pe.awaits[a] << "u);\n";
        const std::string dst = "v[" + std::to_string(op.dst) + "]";
        switch (op.op) {
          case Opcode::kLoad:
            os << "  " << dst << " = m[" << op.var << "];\n";
            break;
          case Opcode::kStore:
            os << "  m[" << op.var << "] = " << operand(op.lhs_imm, op.lhs)
               << ";\n";
            break;
          case Opcode::kAdd:
          case Opcode::kSub:
          case Opcode::kMul:
          case Opcode::kDiv:
          case Opcode::kMod: {
            const char* fn = op.op == Opcode::kAdd   ? "bm_add"
                             : op.op == Opcode::kSub ? "bm_sub"
                             : op.op == Opcode::kMul ? "bm_mul"
                             : op.op == Opcode::kDiv ? "bm_div"
                                                     : "bm_mod";
            os << "  " << dst << " = " << fn << "("
               << operand(op.lhs_imm, op.lhs) << ", "
               << operand(op.rhs_imm, op.rhs) << ");\n";
            break;
          }
          case Opcode::kAnd:
            os << "  " << dst << " = " << operand(op.lhs_imm, op.lhs) << " & "
               << operand(op.rhs_imm, op.rhs) << ";\n";
            break;
          case Opcode::kOr:
            os << "  " << dst << " = " << operand(op.lhs_imm, op.lhs) << " | "
               << operand(op.rhs_imm, op.rhs) << ";\n";
            break;
        }
        if (op.publish)
          os << "  bm_done(c->ready, " << op.dst << "u);\n";
      }
    }
    os << "}\n";
  }

  // `extern` spelled out: a namespace-scope const has internal linkage in
  // C++ even inside an extern "C" block, and dlsym needs these exported.
  os << "\nextern \"C\" {\n"
     << "extern const uint32_t bm_num_pes = " << lp.num_procs << "u;\n"
     << "extern const uint32_t bm_num_vars = " << lp.num_vars << "u;\n"
     << "extern const uint32_t bm_num_vals = " << lp.num_values << "u;\n"
     << "extern const uint32_t bm_num_barriers = " << lp.barriers.size()
     << "u;\n"
     << "extern bm_pe_fn const bm_pes[] = {\n";
  for (std::uint32_t p = 0; p < lp.num_procs; ++p)
    os << "  bm_pe" << p << ",\n";
  os << "};\n}\n";
  return os.str();
}

}  // namespace bm::exec
