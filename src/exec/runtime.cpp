#include "exec/runtime.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "ir/opcode.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/ordered_mutex.hpp"

namespace bm::exec {

namespace {

/// Everything the worker threads share for one execute() call.
struct Run {
  const LoweredProgram* lp = nullptr;
  std::vector<std::unique_ptr<Barrier>> bars;  ///< dense barrier index
  std::unique_ptr<Barrier> start;              ///< aligns the measured origin
  std::vector<std::atomic<std::uint64_t>> fire_raw_ns;  ///< per dense barrier
  std::atomic<std::uint64_t> start_raw_ns{0};
  /// Per-instruction ready flags backing the timing-edge handshakes
  /// (release by producer, acquire by consumer; see exec/lower.hpp).
  std::unique_ptr<std::atomic<std::uint8_t>[]> ready;
  std::vector<std::int64_t> mem;
  std::vector<std::int64_t> val;
  std::vector<std::uint64_t> pe_finish_raw_ns;  ///< one writer per slot
  std::uint32_t spin_iters = 0;
  bool timeline = false;
  bool pin = false;

  // Aggregated wait accounting, merged once per worker at stream end.
  OrderedMutex stats_mu{LockLevel::kExecRuntime, "exec_runtime_stats"};
  WaitStats total;
  std::uint64_t barrier_waits = 0;

  void merge(const WaitStats& s, std::uint64_t waits) {
    OrderedLock lk(stats_mu);
    total.spins += s.spins;
    total.yields += s.yields;
    barrier_waits += waits;
  }
};

bool flag_set(const Run& run, std::uint32_t id) {
  return run.ready[id].load(std::memory_order_acquire) != 0;
}

/// Blocking acquire-wait on one producer flag (bounded spin, then yield —
/// same policy as Barrier::wait).
void await_flag(const Run& run, std::uint32_t id, WaitStats& stats) {
  std::uint32_t since_yield = 0;
  while (!flag_set(run, id)) {
    ++stats.spins;
    if (++since_yield > run.spin_iters) {
      since_yield = 0;
      ++stats.yields;
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
}

/// Executes one decoded op against the shared state (awaits NOT included —
/// callers handle them, blocking or parking as their mode requires).
void exec_op(Run& run, const ExecOp& op) {
  std::int64_t* m = run.mem.data();
  std::int64_t* v = run.val.data();
  // Operands are read inside each case: a Load carries no lhs, and an eager
  // v[op.lhs] here would touch slot 0 of the value array without any
  // happens-before edge to its producer (a racing read, even if unused).
  switch (op.op) {
    case Opcode::kLoad:
      v[op.dst] = m[op.var];
      break;
    case Opcode::kStore:
      m[op.var] = op.lhs_imm ? op.lhs : v[op.lhs];
      break;
    default:
      v[op.dst] = fold_binary(op.op, op.lhs_imm ? op.lhs : v[op.lhs],
                              op.rhs_imm ? op.rhs : v[op.rhs]);
      break;
  }
  if (op.publish)
    run.ready[op.dst].store(1, std::memory_order_release);
}

void note_pe_finish(Run& run, std::uint32_t pe) {
  if (run.timeline) run.pe_finish_raw_ns[pe] = steady_now_ns();
}

/// Blocking worker: PE `p` on its own OS thread; real barrier waits,
/// blocking flag awaits.
void run_pe_blocking(Run& run, std::uint32_t p) {
  if (run.pin) pin_current_thread_to_cpu(p);
  WaitStats stats;
  std::uint64_t waits = 0;
  run.start->arrive_and_wait(p);
  const PeStream& pe = run.lp->pes[p];
  for (const LoweredStep& st : pe.steps) {
    if (st.kind == LoweredStep::Kind::kSegment) {
      for (std::uint32_t i = st.a; i < st.b; ++i) {
        const ExecOp& op = pe.ops[i];
        for (std::uint32_t a = op.await_begin; a < op.await_end; ++a)
          await_flag(run, pe.awaits[a], stats);
        exec_op(run, op);
      }
    } else {
      run.bars[st.a]->arrive_and_wait(st.b, &stats);
      ++waits;
    }
  }
  note_pe_finish(run, p);
  run.merge(stats, waits);
}

/// One PE stream's progress inside a cooperative carrier. A PE can be
/// parked on a barrier it arrived at, or mid-segment on a producer flag —
/// both non-blocking for the carrier, which keeps running its other PEs.
/// (A blocking flag wait would deadlock the moment a producer and its
/// consumer share a carrier and the consumer is scheduled first.)
struct PeTask {
  std::uint32_t pe = 0;
  std::size_t step = 0;   ///< next LoweredStep
  std::uint32_t op = 0;   ///< next op within the current segment
  std::uint32_t aw = 0;   ///< next await of that op
  bool in_segment = false;
  enum class Park : std::uint8_t { kNone, kBarrier, kFlag } park = Park::kNone;
  std::uint32_t bar = 0;  ///< Park::kBarrier: dense barrier index
  Barrier::Ticket ticket = 0;
  std::uint32_t flag = 0;  ///< Park::kFlag: producer instruction id
  bool done = false;
};

/// Cooperative carrier: round-robins its PE tasks; a full no-progress pass
/// yields the core. Deadlock-free for any assignment of PEs to carriers
/// because neither barriers (split arrive/poll) nor flag handshakes ever
/// block a carrier.
void run_carrier(Run& run, std::uint32_t tid, std::uint32_t num_carriers) {
  if (run.pin) pin_current_thread_to_cpu(tid);
  std::vector<PeTask> tasks;
  for (std::uint32_t p = tid; p < run.lp->num_procs; p += num_carriers)
    tasks.push_back(PeTask{.pe = p});
  WaitStats stats;
  std::uint64_t waits = 0;
  run.start->arrive_and_wait(tid);
  std::size_t remaining = tasks.size();
  while (remaining > 0) {
    bool progressed = false;
    for (PeTask& t : tasks) {
      if (t.done) continue;
      const PeStream& pe = run.lp->pes[t.pe];
      if (t.park == PeTask::Park::kBarrier) {
        if (!run.bars[t.bar]->poll(t.ticket)) {
          ++stats.spins;
          continue;
        }
        t.park = PeTask::Park::kNone;
        ++t.step;
      } else if (t.park == PeTask::Park::kFlag) {
        if (!flag_set(run, t.flag)) {
          ++stats.spins;
          continue;
        }
        t.park = PeTask::Park::kNone;  // aw still points at this await;
                                       // the loop below re-checks and passes
      }
      progressed = true;  // unparked, or free to run at least one step
      while (t.step < pe.steps.size() && t.park == PeTask::Park::kNone) {
        const LoweredStep& st = pe.steps[t.step];
        if (st.kind == LoweredStep::Kind::kSegment) {
          if (!t.in_segment) {
            t.in_segment = true;
            t.op = st.a;
            t.aw = st.a < st.b ? pe.ops[st.a].await_begin : 0;
          }
          while (t.op < st.b) {
            const ExecOp& op = pe.ops[t.op];
            while (t.aw < op.await_end) {
              if (!flag_set(run, pe.awaits[t.aw])) {
                t.park = PeTask::Park::kFlag;
                t.flag = pe.awaits[t.aw];
                break;
              }
              ++t.aw;
            }
            if (t.park != PeTask::Park::kNone) break;
            exec_op(run, op);
            ++t.op;
            if (t.op < st.b) t.aw = pe.ops[t.op].await_begin;
          }
          if (t.park != PeTask::Park::kNone) break;
          t.in_segment = false;
          ++t.step;
        } else {
          ++waits;
          t.ticket = run.bars[st.a]->arrive(st.b);
          if (run.bars[st.a]->poll(t.ticket)) {
            ++t.step;  // released already (last arrival, or a fast race)
          } else {
            t.park = PeTask::Park::kBarrier;
            t.bar = st.a;
          }
        }
      }
      if (t.park == PeTask::Park::kNone && t.step == pe.steps.size()) {
        t.done = true;
        --remaining;
        note_pe_finish(run, t.pe);
      }
    }
    if (!progressed) {
      // Every live task is parked on something another carrier must
      // release; hand the core over (essential on the one-core CI box).
      ++stats.yields;
      std::this_thread::yield();
    }
  }
  run.merge(stats, waits);
}

}  // namespace

ExecResult execute(const LoweredProgram& lp, const ExecOptions& opts) {
  BM_REQUIRE(lp.num_procs >= 1, "lowered program has no PEs");
  BM_OBS_COUNT("exec.runs");
  BM_OBS_COUNT_N("exec.ops", lp.total_ops);
  BM_OBS_COUNT_N("exec.timing_edge_waits", lp.timing_edges);

  Run run;
  run.lp = &lp;
  run.timeline = opts.timeline;
  run.pin = opts.pin;
  run.spin_iters = opts.spin_iters;
  run.mem.assign(lp.num_vars, 0);
  for (std::size_t i = 0; i < opts.initial_memory.size() && i < run.mem.size();
       ++i)
    run.mem[i] = opts.initial_memory[i];
  run.val.assign(lp.num_values, 0);
  run.ready = std::make_unique<std::atomic<std::uint8_t>[]>(lp.num_values);
  for (std::uint32_t i = 0; i < lp.num_values; ++i)
    // mo: pre-spawn initialization; published to workers by thread creation.
    run.ready[i].store(0, std::memory_order_relaxed);
  run.pe_finish_raw_ns.assign(lp.num_procs, 0);

  const bool blocking = opts.threads == 0 || opts.threads >= lp.num_procs;
  const std::uint32_t workers = blocking ? lp.num_procs : opts.threads;

  run.bars.reserve(lp.barriers.size());
  std::vector<std::atomic<std::uint64_t>> fire(lp.barriers.size());
  run.fire_raw_ns = std::move(fire);
  for (std::size_t b = 0; b < lp.barriers.size(); ++b) {
    run.bars.push_back(make_barrier(
        opts.barrier,
        static_cast<std::uint32_t>(lp.barriers[b].participants.size()),
        opts.spin_iters));
    if (opts.timeline) run.bars[b]->set_fire_ns_sink(&run.fire_raw_ns[b]);
  }
  // The start line is the runtime's realization of the schedule's implicit
  // initial barrier: all workers released together, and its fire instant
  // is the measured timeline's origin.
  run.start = make_barrier(opts.barrier, workers, opts.spin_iters);
  run.start->set_fire_ns_sink(&run.start_raw_ns);

  {
    BM_OBS_SPAN(span, "exec.execute", "exec");
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::uint32_t t = 0; t < workers; ++t) {
      if (blocking)
        threads.emplace_back([&run, t] { run_pe_blocking(run, t); });
      else
        threads.emplace_back(
            [&run, t, workers] { run_carrier(run, t, workers); });
    }
    for (std::thread& th : threads) th.join();
  }
  const std::uint64_t end_ns = steady_now_ns();

  ExecResult r;
  r.memory = std::move(run.mem);
  r.values = std::move(run.val);
  r.carrier_threads = workers;
  r.blocking = blocking;
  r.spins = run.total.spins;
  r.yields = run.total.yields;
  // mo: all workers are joined; these loads are ordered after every store
  // by the join itself.
  const std::uint64_t base = run.start_raw_ns.load(std::memory_order_relaxed);
  r.wall_ns = end_ns > base ? end_ns - base : 0;
  r.barrier_fire_ns.assign(lp.barriers.size(), 0);
  r.pe_finish_ns.assign(lp.num_procs, 0);
  if (opts.timeline) {
    for (std::size_t b = 0; b < lp.barriers.size(); ++b) {
      // mo: same join-ordered post-mortem read as above.
      const std::uint64_t f =
          run.fire_raw_ns[b].load(std::memory_order_relaxed);
      r.barrier_fire_ns[b] = f > base ? f - base : 0;
    }
    for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
      const std::uint64_t f = run.pe_finish_raw_ns[p];
      r.pe_finish_ns[p] = f > base ? f - base : 0;
    }
  }
  BM_OBS_COUNT_N("exec.barrier_waits", run.barrier_waits);
  BM_OBS_COUNT_N("exec.spins", r.spins);
  BM_OBS_COUNT_N("exec.yields", r.yields);
  if (!blocking) BM_OBS_COUNT("exec.oversubscribed_runs");
  BM_OBS_OBSERVE("exec.wall_ns", static_cast<double>(r.wall_ns));
  return r;
}

std::vector<obs::TraceEvent> exec_trace_events(const LoweredProgram& lp,
                                               const ExecResult& r) {
  std::vector<obs::TraceEvent> events;
  events.reserve(lp.num_procs + lp.barriers.size());
  for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
    obs::TraceEvent e;
    e.name = "pe stream";
    e.cat = "exec";
    e.ph = 'X';
    e.ts = 0.0;
    e.dur = static_cast<double>(r.pe_finish_ns[p]) / 1000.0;
    e.pid = kExecPid;
    e.tid = p;
    e.arg_key = "ops";
    e.arg_val = static_cast<double>(lp.pes[p].ops.size());
    events.push_back(std::move(e));
  }
  for (std::size_t b = 0; b < lp.barriers.size(); ++b) {
    obs::TraceEvent e;
    e.name = "fire b" + std::to_string(lp.barriers[b].schedule_id);
    e.cat = "exec";
    e.ph = 'i';
    e.ts = static_cast<double>(r.barrier_fire_ns[b]) / 1000.0;
    e.pid = kExecPid;
    e.tid = lp.barriers[b].participants.empty()
                ? 0
                : lp.barriers[b].participants.front();
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace bm::exec
