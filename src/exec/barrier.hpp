// Real barrier primitives for the native execution backend — the hardware
// counterpart of the simulated SBM/DBM barrier (§3.2), shaped after tuned
// software barriers (sense-reversing counter, static combining tree).
//
// Both primitives share one split interface:
//
//   Ticket t = bar.arrive(slot);   // non-blocking: register this PE's arrival
//   bar.poll(t)                    // true once the phase has been released
//   bar.wait(t, &stats)            // bounded spin, then sched_yield loop
//
// The split matters: the one-thread-per-PE runtime blocks in wait() (a real
// barrier wait on real threads), while the cooperative runtime — which
// multiplexes several PE streams onto fewer carrier threads, the
// oversubscription scenario — must never block a carrier on one PE's
// barrier, so it parks the PE after arrive() and keeps polling between
// running its other PEs. A blocking-only primitive would deadlock there by
// construction.
//
// Memory semantics (the contract the TSan-clean differential tests lean
// on): every arrival chains through an acq_rel RMW (on the central counter
// or up the combining tree), so the releasing store of the phase flag
// carries happens-before from *every* participant's pre-barrier code; a
// successful poll()/wait() acquire-loads that flag. Post-barrier code on
// any participant therefore happens-after pre-barrier code on all of them
// — exactly the ordering the verified schedule's dependence proofs assume.
//
// Reuse: both barriers are phase barriers (sense-reversing), safe for any
// number of consecutive phases by the same participant set. Counters are
// reset by the phase winner *before* the release store, and no participant
// can re-arrive until it has observed that release, so the reset never
// races the next phase.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace bm::exec {

/// Spin/yield accounting for one waiter (summed per PE by the runtime and
/// exported as exec.spin_iters / exec.yields).
struct WaitStats {
  std::uint64_t spins = 0;
  std::uint64_t yields = 0;
};

/// One pause/yield-hint iteration of a spin loop.
void cpu_relax();

class Barrier {
 public:
  /// The phase a waiter is waiting for; returned by arrive().
  using Ticket = std::uint32_t;

  /// `spin_iters` bounds the busy-spin in wait() before each yield; 0
  /// yields immediately (the right choice when PEs outnumber cores).
  Barrier(std::uint32_t participants, std::uint32_t spin_iters)
      : n_(participants), spin_iters_(spin_iters) {}
  virtual ~Barrier() = default;
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  std::uint32_t participants() const { return n_; }

  /// Registers participant `slot` (0..participants-1) as arrived at the
  /// current phase. Non-blocking; the last arrival releases the phase.
  /// Each slot must arrive exactly once per phase.
  virtual Ticket arrive(std::uint32_t slot) = 0;

  /// True once the phase `t` was arrived at has been released. Acquire on
  /// success: post-poll code happens-after every participant's arrival.
  virtual bool poll(Ticket t) const = 0;

  /// Bounded spin on poll(), then a spin-then-yield loop. Safe even when
  /// waiters outnumber hardware threads (the yield bound guarantees the
  /// releasing thread gets scheduled).
  void wait(Ticket t, WaitStats* stats = nullptr) const;

  Ticket arrive_and_wait(std::uint32_t slot, WaitStats* stats = nullptr) {
    const Ticket t = arrive(slot);
    wait(t, stats);
    return t;
  }

  /// Optional fire-timestamp sink: when set, the releasing arrival stores
  /// a raw steady-clock nanosecond reading into `*out` immediately before
  /// publishing the phase. The runtime uses this for the measured barrier
  /// timeline; benchmarks leave it null so the primitive stays bare.
  void set_fire_ns_sink(std::atomic<std::uint64_t>* out) { fire_ns_ = out; }

 protected:
  /// Called by implementations at the release point (phase winner only).
  void record_fire() const;

  const std::uint32_t n_;
  const std::uint32_t spin_iters_;
  std::atomic<std::uint64_t>* fire_ns_ = nullptr;
};

/// Centralized sense-reversing barrier: one shared arrival counter, one
/// shared sense word, each on its own cache line. The classic primitive —
/// O(n) contention on one line, unbeatable instruction count for small n.
class CentralBarrier final : public Barrier {
 public:
  CentralBarrier(std::uint32_t participants, std::uint32_t spin_iters);

  Ticket arrive(std::uint32_t slot) override;
  bool poll(Ticket t) const override;

 private:
  alignas(64) std::atomic<std::uint32_t> remaining_;
  alignas(64) std::atomic<std::uint32_t> sense_{0};
};

/// Static combining tree: participants are statically assigned to leaf
/// groups of `kArity`; the last arrival at each node propagates to the
/// parent, and the last arrival at the root reverses the shared sense.
/// Each node's counter lives on its own cache line, so arrival contention
/// is spread across the tree instead of one hot line.
class TreeBarrier final : public Barrier {
 public:
  static constexpr std::uint32_t kArity = 4;

  TreeBarrier(std::uint32_t participants, std::uint32_t spin_iters);

  Ticket arrive(std::uint32_t slot) override;
  bool poll(Ticket t) const override;

  /// Internal-node count (test hook: 1 for n <= kArity, log_arity depth).
  std::size_t node_count() const { return num_nodes_; }

 private:
  struct alignas(64) Node {
    std::atomic<std::uint32_t> remaining{0};
    std::uint32_t fanin = 0;
    std::uint32_t parent = 0;  ///< own index for the root
  };

  std::unique_ptr<Node[]> nodes_;
  std::size_t num_nodes_ = 0;
  std::vector<std::uint32_t> leaf_of_slot_;
  alignas(64) std::atomic<std::uint32_t> sense_{0};
};

enum class BarrierKind { kCentral, kTree };

inline constexpr BarrierKind kAllBarrierKinds[] = {BarrierKind::kCentral,
                                                   BarrierKind::kTree};

const char* barrier_kind_name(BarrierKind k);
/// Parses "central" / "tree"; throws bm::Error otherwise.
BarrierKind barrier_kind_from_name(std::string_view name);

std::unique_ptr<Barrier> make_barrier(BarrierKind kind,
                                      std::uint32_t participants,
                                      std::uint32_t spin_iters);

/// Pins the calling thread to one CPU (Linux affinity); returns false when
/// unsupported or refused by the kernel. `cpu` is taken modulo the number
/// of configured CPUs.
bool pin_current_thread_to_cpu(unsigned cpu);

/// Raw steady-clock reading in nanoseconds (the runtime's clock).
std::uint64_t steady_now_ns();

}  // namespace bm::exec
