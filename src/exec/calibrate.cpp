#include "exec/calibrate.hpp"

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "exec/runtime.hpp"
#include "support/assert.hpp"

namespace bm::exec {

double measure_barrier_overhead_ns(BarrierKind kind,
                                   std::uint32_t participants,
                                   std::uint32_t rounds,
                                   std::uint32_t spin_iters) {
  BM_REQUIRE(participants >= 1 && rounds >= 1,
             "barrier measurement needs participants and rounds");
  const auto bar = make_barrier(kind, participants, spin_iters);
  const auto start = make_barrier(kind, participants, spin_iters);
  std::atomic<std::uint64_t> start_ns{0};
  start->set_fire_ns_sink(&start_ns);

  std::vector<std::thread> threads;
  threads.reserve(participants);
  for (std::uint32_t slot = 0; slot < participants; ++slot) {
    threads.emplace_back([&, slot] {
      start->arrive_and_wait(slot);
      for (std::uint32_t i = 0; i < rounds; ++i) bar->arrive_and_wait(slot);
    });
  }
  for (std::thread& th : threads) th.join();
  const std::uint64_t end_ns = steady_now_ns();
  // mo: workers joined; post-mortem read.
  const std::uint64_t base = start_ns.load(std::memory_order_relaxed);
  const std::uint64_t wall = end_ns > base ? end_ns - base : 0;
  return static_cast<double>(wall) / static_cast<double>(rounds);
}

CalibrationReport calibrate(const LoweredProgram& lp,
                            const CalibrateOptions& opts) {
  BM_REQUIRE(opts.repeats >= 1, "calibrate needs at least one repeat");
  CalibrationReport report;
  report.participants = lp.num_procs;
  report.repeats = opts.repeats;
  report.barrier_rounds = opts.barrier_rounds;

  for (const BarrierKind kind : kAllBarrierKinds) {
    PrimitiveCalibration prim;
    prim.kind = kind;
    prim.barrier_overhead_ns = measure_barrier_overhead_ns(
        kind, lp.num_procs, opts.barrier_rounds, opts.spin_iters);

    // Best-of-repeats per-PE completion: the minimum is the least
    // scheduler-perturbed observation of the same deterministic work.
    ExecOptions eo;
    eo.barrier = kind;
    eo.threads = 0;  // one thread per PE: the faithful machine model
    eo.spin_iters = opts.spin_iters;
    eo.pin = opts.pin;
    std::vector<std::uint64_t> best(lp.num_procs,
                                    ~std::uint64_t{0});
    prim.best_wall_ns = ~std::uint64_t{0};
    for (std::uint32_t rep = 0; rep < opts.repeats; ++rep) {
      const ExecResult r = execute(lp, eo);
      prim.best_wall_ns = std::min(prim.best_wall_ns, r.wall_ns);
      for (std::uint32_t p = 0; p < lp.num_procs; ++p)
        best[p] = std::min(best[p], r.pe_finish_ns[p]);
    }

    // ns-per-cycle: least squares through the origin over (midpoint
    // predicted cycles, measured ns).
    double num = 0, den = 0;
    for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
      const TimeRange env = lp.pe_envelope[p];
      const double mid =
          (static_cast<double>(env.min) + static_cast<double>(env.max)) / 2.0;
      num += mid * static_cast<double>(best[p]);
      den += mid * mid;
    }
    prim.ns_per_cycle = den > 0 ? num / den : 0;

    prim.pes.resize(lp.num_procs);
    for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
      PeCalibration& pc = prim.pes[p];
      pc.predicted = lp.pe_envelope[p];
      pc.measured_ns = static_cast<double>(best[p]);
      pc.scaled_min_ns =
          static_cast<double>(pc.predicted.min) * prim.ns_per_cycle;
      pc.scaled_max_ns =
          static_cast<double>(pc.predicted.max) * prim.ns_per_cycle;
      pc.within = pc.measured_ns >= pc.scaled_min_ns &&
                  pc.measured_ns <= pc.scaled_max_ns;
    }
    report.primitives.push_back(std::move(prim));
  }
  return report;
}

std::string format_calibration(const CalibrationReport& report) {
  std::ostringstream os;
  os << "calibration: " << report.participants << " PEs, best of "
     << report.repeats << " runs, barrier overhead over "
     << report.barrier_rounds << " rounds\n"
     << "(informational only — wall-clock is noisy; CI asserts ordering "
        "structure, never these numbers)\n";
  for (const PrimitiveCalibration& prim : report.primitives) {
    os << "\n[" << barrier_kind_name(prim.kind) << "]\n"
       << "  barrier crossing: " << prim.barrier_overhead_ns << " ns ("
       << report.participants << " participants)\n"
       << "  fitted ns/cycle:  " << prim.ns_per_cycle << "\n"
       << "  best wall:        " << prim.best_wall_ns << " ns\n"
       << "  pe  predicted[cyc]      scaled[ns]            measured[ns]  "
          "in-envelope\n";
    for (std::size_t p = 0; p < prim.pes.size(); ++p) {
      const PeCalibration& pc = prim.pes[p];
      os << "  " << p << "   [" << pc.predicted.min << ", "
         << pc.predicted.max << "]  [" << pc.scaled_min_ns << ", "
         << pc.scaled_max_ns << "]  " << pc.measured_ns << "  "
         << (pc.within ? "yes" : "no") << "\n";
    }
  }
  return os.str();
}

}  // namespace bm::exec
