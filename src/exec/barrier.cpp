#include "exec/barrier.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "support/assert.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace bm::exec {

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Barrier::wait(Ticket t, WaitStats* stats) const {
  std::uint32_t spins_since_yield = 0;
  std::uint64_t spins = 0, yields = 0;
  while (!poll(t)) {
    ++spins;
    if (++spins_since_yield > spin_iters_) {
      // Past the spin bound the releaser is likely descheduled (typical
      // when PE threads outnumber cores); hand the core back instead of
      // burning it.
      spins_since_yield = 0;
      ++yields;
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
  if (stats != nullptr) {
    stats->spins += spins;
    stats->yields += yields;
  }
}

void Barrier::record_fire() const {
  if (fire_ns_ != nullptr)
    // mo: pure timestamp payload read back only after the runtime joined
    // (or otherwise synchronized with) the releasing thread.
    fire_ns_->store(steady_now_ns(), std::memory_order_relaxed);
}

// --- centralized sense-reversing --------------------------------------------

CentralBarrier::CentralBarrier(std::uint32_t participants,
                               std::uint32_t spin_iters)
    : Barrier(participants, spin_iters), remaining_(participants) {
  BM_REQUIRE(participants >= 1, "barrier needs at least one participant");
}

Barrier::Ticket CentralBarrier::arrive(std::uint32_t slot) {
  BM_REQUIRE(slot < n_, "barrier slot out of range");
  // mo: sense_ cannot change during this phase (it only flips after all n_
  // arrivals, and this call *is* one of them), so the target read needs no
  // ordering; the release chain runs through remaining_ below.
  const Ticket target = 1u - sense_.load(std::memory_order_relaxed);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Phase winner. Reset before publishing: no participant can start the
    // next phase until it observes the sense flip below, so the relaxed
    // reset is never concurrent with next-phase arrivals.
    // mo: reset ordered before the release store that gates all readers.
    remaining_.store(n_, std::memory_order_relaxed);
    record_fire();
    sense_.store(target, std::memory_order_release);
  }
  return target;
}

bool CentralBarrier::poll(Ticket t) const {
  return sense_.load(std::memory_order_acquire) == t;
}

// --- static combining tree ---------------------------------------------------

TreeBarrier::TreeBarrier(std::uint32_t participants, std::uint32_t spin_iters)
    : Barrier(participants, spin_iters) {
  BM_REQUIRE(participants >= 1, "barrier needs at least one participant");
  // Build bottom-up: level 0 groups the participant slots kArity at a time;
  // each higher level groups the nodes below it until one root remains.
  leaf_of_slot_.resize(participants);
  std::vector<std::uint32_t> fanin;
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> level;  // node indices of the level being built
  const auto groups = [](std::uint32_t k) { return (k + kArity - 1) / kArity; };
  for (std::uint32_t g = 0; g < groups(participants); ++g) {
    const std::uint32_t lo = g * kArity;
    const std::uint32_t hi =
        lo + kArity < participants ? lo + kArity : participants;
    const auto node = static_cast<std::uint32_t>(fanin.size());
    fanin.push_back(hi - lo);
    parent.push_back(node);  // fixed up when the level above is built
    level.push_back(node);
    for (std::uint32_t s = lo; s < hi; ++s) leaf_of_slot_[s] = node;
  }
  while (level.size() > 1) {
    std::vector<std::uint32_t> above;
    for (std::uint32_t g = 0; g < groups(static_cast<std::uint32_t>(level.size()));
         ++g) {
      const std::size_t lo = static_cast<std::size_t>(g) * kArity;
      const std::size_t hi = std::min(lo + kArity, level.size());
      const auto node = static_cast<std::uint32_t>(fanin.size());
      fanin.push_back(static_cast<std::uint32_t>(hi - lo));
      parent.push_back(node);
      for (std::size_t c = lo; c < hi; ++c) parent[level[c]] = node;
      above.push_back(node);
    }
    level = std::move(above);
  }
  num_nodes_ = fanin.size();
  nodes_ = std::make_unique<Node[]>(num_nodes_);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    nodes_[i].fanin = fanin[i];
    // mo: construction publishes via the caller's handoff to the PE
    // threads (thread creation / start barrier), not via this store.
    nodes_[i].remaining.store(fanin[i], std::memory_order_relaxed);
    nodes_[i].parent = parent[i];
  }
}

Barrier::Ticket TreeBarrier::arrive(std::uint32_t slot) {
  BM_REQUIRE(slot < n_, "barrier slot out of range");
  // mo: as in CentralBarrier::arrive — sense_ is stable until the phase's
  // last arrival, and this call is one of the phase's arrivals.
  const Ticket target = 1u - sense_.load(std::memory_order_relaxed);
  std::uint32_t node = leaf_of_slot_[slot];
  for (;;) {
    Node& nd = nodes_[node];
    // The acq_rel RMW chains happens-before up the tree: the winner of a
    // node has absorbed every child subtree's arrivals.
    if (nd.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) break;
    // mo: reset gated by the phase's release store, as in CentralBarrier.
    nd.remaining.store(nd.fanin, std::memory_order_relaxed);
    if (nd.parent == node) {  // root winner: release the whole phase
      record_fire();
      sense_.store(target, std::memory_order_release);
      break;
    }
    node = nd.parent;
  }
  return target;
}

bool TreeBarrier::poll(Ticket t) const {
  return sense_.load(std::memory_order_acquire) == t;
}

// --- factory / naming / platform --------------------------------------------

const char* barrier_kind_name(BarrierKind k) {
  switch (k) {
    case BarrierKind::kCentral: return "central";
    case BarrierKind::kTree: return "tree";
  }
  return "?";
}

BarrierKind barrier_kind_from_name(std::string_view name) {
  if (name == "central") return BarrierKind::kCentral;
  if (name == "tree") return BarrierKind::kTree;
  throw Error("unknown barrier primitive: '" + std::string(name) +
              "' (expected central|tree)");
}

std::unique_ptr<Barrier> make_barrier(BarrierKind kind,
                                      std::uint32_t participants,
                                      std::uint32_t spin_iters) {
  switch (kind) {
    case BarrierKind::kCentral:
      return std::make_unique<CentralBarrier>(participants, spin_iters);
    case BarrierKind::kTree:
      return std::make_unique<TreeBarrier>(participants, spin_iters);
  }
  throw Error("unknown BarrierKind");
}

bool pin_current_thread_to_cpu(unsigned cpu) {
#if defined(__linux__)
  const long ncpu = sysconf(_SC_NPROCESSORS_CONF);
  if (ncpu <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % static_cast<unsigned>(ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace bm::exec
