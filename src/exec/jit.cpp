#include "exec/jit.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "support/assert.hpp"
#include "support/ordered_mutex.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <dlfcn.h>
#define BM_JIT_HAVE_DLOPEN 1
#endif

// Uninstrumented generated code would blind TSan (missed synchronization →
// false races) and confuse ASan interceptors; the JIT leg simply reports
// unavailable there and tests fall back to the interpreter.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define BM_JIT_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define BM_JIT_SANITIZED 1
#endif
#endif

namespace bm::exec {

namespace {

// Matches the extern "C" ABI of emit_cpp().
struct AbiCtx {
  std::int64_t* mem;
  std::int64_t* val;
  unsigned char* ready;
  void* rt;
  void (*barrier_wait)(void* rt, std::uint32_t barrier, std::uint32_t slot);
};
using AbiPeFn = void (*)(AbiCtx*);

std::string pick_compiler(const JitOptions& opts) {
  if (!opts.compiler.empty()) return opts.compiler;
  if (const char* cxx = std::getenv("CXX"); cxx != nullptr && *cxx != '\0')
    return cxx;
  return "c++";
}

#if defined(BM_JIT_HAVE_DLOPEN) && !defined(BM_JIT_SANITIZED)
// Only referenced by the available() probe, which sanitized builds
// compile out entirely.
bool compiler_answers(const std::string& cxx) {
  const std::string probe = cxx + " --version >/dev/null 2>&1";
  return std::system(probe.c_str()) == 0;  // NOLINT
}
#endif

struct JitRun {
  std::vector<std::unique_ptr<Barrier>> bars;
  std::vector<std::atomic<std::uint64_t>>* fire = nullptr;
  OrderedMutex stats_mu{LockLevel::kExecRuntime, "exec_jit_stats"};
  WaitStats total;
};

thread_local WaitStats* tls_wait_stats = nullptr;

void barrier_trampoline(void* rt, std::uint32_t barrier, std::uint32_t slot) {
  auto* run = static_cast<JitRun*>(rt);
  run->bars[barrier]->arrive_and_wait(slot, tls_wait_stats);
}

}  // namespace

struct JitModule::Impl {
  LoweredProgram lp;
  std::string dir;
  bool keep = false;
  void* handle = nullptr;
  std::vector<AbiPeFn> fns;

  ~Impl() {
#if defined(BM_JIT_HAVE_DLOPEN)
    if (handle != nullptr) dlclose(handle);
#endif
    if (!keep && !dir.empty()) {
      std::error_code ec;  // best-effort cleanup; never throw from a dtor
      std::filesystem::remove_all(dir, ec);
    }
  }
};

bool JitModule::available() {
#if !defined(BM_JIT_HAVE_DLOPEN) || defined(BM_JIT_SANITIZED)
  return false;
#else
  if (const char* off = std::getenv("BM_EXEC_NO_JIT");
      off != nullptr && *off != '\0')
    return false;
  static const bool ok = compiler_answers(pick_compiler(JitOptions{}));
  return ok;
#endif
}

JitModule::JitModule(const LoweredProgram& lp, const JitOptions& opts)
    : impl_(std::make_unique<Impl>()) {
#if !defined(BM_JIT_HAVE_DLOPEN)
  throw Error("JIT backend not supported on this platform (no dlopen)");
#else
#if defined(BM_JIT_SANITIZED)
  throw Error(
      "JIT backend disabled under sanitizers; use the interpreter runtime");
#endif
  impl_->lp = lp;
  impl_->keep = opts.keep;
  if (!opts.work_dir.empty()) {
    impl_->dir = opts.work_dir;
    std::filesystem::create_directories(impl_->dir);
    impl_->keep = true;  // caller owns an explicit directory
  } else {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "bmexec.XXXXXX").string();
    if (mkdtemp(tmpl.data()) == nullptr)
      throw Error("mkdtemp failed for JIT work dir: " + tmpl);
    impl_->dir = tmpl;
  }

  const std::string cpp = impl_->dir + "/schedule.cpp";
  const std::string so = impl_->dir + "/schedule.so";
  {
    std::ofstream out(cpp);
    out << emit_cpp(lp);
    if (!out) throw Error("cannot write generated source: " + cpp);
  }
  const std::string cxx = pick_compiler(opts);
  const std::string log = impl_->dir + "/compile.log";
  const std::string cmd = cxx + " -std=c++17 -O2 -fPIC -shared -o " + so +
                          " " + cpp + " >" + log + " 2>&1";
  if (std::system(cmd.c_str()) != 0)  // NOLINT
    throw Error("JIT compile failed (" + cxx + "); log: " + log);

  impl_->handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (impl_->handle == nullptr)
    throw Error(std::string("dlopen failed: ") + dlerror());

  const auto sym = [&](const char* name) {
    void* s = dlsym(impl_->handle, name);
    if (s == nullptr)
      throw Error(std::string("generated module lacks symbol ") + name);
    return s;
  };
  const auto expect = [&](const char* name, std::uint32_t want) {
    const auto got = *static_cast<const std::uint32_t*>(sym(name));
    if (got != want)
      throw Error(std::string("generated module shape mismatch: ") + name +
                  " is " + std::to_string(got) + ", lowering says " +
                  std::to_string(want));
  };
  expect("bm_num_pes", lp.num_procs);
  expect("bm_num_vars", lp.num_vars);
  expect("bm_num_vals", lp.num_values);
  expect("bm_num_barriers", static_cast<std::uint32_t>(lp.barriers.size()));
  const auto* table = static_cast<AbiPeFn const*>(sym("bm_pes"));
  impl_->fns.assign(table, table + lp.num_procs);
#endif
}

JitModule::~JitModule() = default;

const std::string& JitModule::artifact_dir() const { return impl_->dir; }

ExecResult JitModule::run(const ExecOptions& opts) const {
  const LoweredProgram& lp = impl_->lp;
  JitRun run;
  std::vector<std::atomic<std::uint64_t>> fire(lp.barriers.size());
  std::atomic<std::uint64_t> start_raw{0};
  run.bars.reserve(lp.barriers.size());
  for (std::size_t b = 0; b < lp.barriers.size(); ++b) {
    run.bars.push_back(make_barrier(
        opts.barrier,
        static_cast<std::uint32_t>(lp.barriers[b].participants.size()),
        opts.spin_iters));
    if (opts.timeline) run.bars[b]->set_fire_ns_sink(&fire[b]);
  }
  const auto start =
      make_barrier(opts.barrier, lp.num_procs, opts.spin_iters);
  start->set_fire_ns_sink(&start_raw);

  std::vector<std::int64_t> mem(lp.num_vars, 0);
  for (std::size_t i = 0; i < opts.initial_memory.size() && i < mem.size();
       ++i)
    mem[i] = opts.initial_memory[i];
  std::vector<std::int64_t> val(lp.num_values, 0);
  // Ready flags for the generated code's bm_await/bm_done handshakes; the
  // host only zero-fills before spawning, the TU's __atomic builtins do
  // the release/acquire during the run.
  std::vector<unsigned char> ready(lp.num_values, 0);
  std::vector<std::uint64_t> finish_raw(lp.num_procs, 0);

  AbiCtx ctx{mem.data(), val.data(), ready.data(), &run, &barrier_trampoline};
  std::vector<std::thread> threads;
  threads.reserve(lp.num_procs);
  for (std::uint32_t p = 0; p < lp.num_procs; ++p) {
    threads.emplace_back([&, p] {
      if (opts.pin) pin_current_thread_to_cpu(p);
      WaitStats stats;
      tls_wait_stats = &stats;
      start->arrive_and_wait(p);
      impl_->fns[p](&ctx);
      if (opts.timeline) finish_raw[p] = steady_now_ns();
      tls_wait_stats = nullptr;
      OrderedLock lk(run.stats_mu);
      run.total.spins += stats.spins;
      run.total.yields += stats.yields;
    });
  }
  for (std::thread& th : threads) th.join();
  const std::uint64_t end_ns = steady_now_ns();

  ExecResult r;
  r.memory = std::move(mem);
  r.values = std::move(val);
  r.carrier_threads = lp.num_procs;
  r.blocking = true;
  r.spins = run.total.spins;
  r.yields = run.total.yields;
  // mo: workers joined above; plain post-mortem reads.
  const std::uint64_t base = start_raw.load(std::memory_order_relaxed);
  r.wall_ns = end_ns > base ? end_ns - base : 0;
  r.barrier_fire_ns.assign(lp.barriers.size(), 0);
  r.pe_finish_ns.assign(lp.num_procs, 0);
  if (opts.timeline) {
    for (std::size_t b = 0; b < lp.barriers.size(); ++b) {
      // mo: same join-ordered read.
      const std::uint64_t f = fire[b].load(std::memory_order_relaxed);
      r.barrier_fire_ns[b] = f > base ? f - base : 0;
    }
    for (std::uint32_t p = 0; p < lp.num_procs; ++p)
      r.pe_finish_ns[p] = finish_raw[p] > base ? finish_raw[p] - base : 0;
  }
  return r;
}

}  // namespace bm::exec
