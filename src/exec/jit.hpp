// Compile-and-load backend: emit_cpp() output built with the system
// compiler into a shared object, loaded with dlopen, and run with one OS
// thread per PE. This is the "run the schedule as real machine code" leg —
// the interpreter in exec/runtime.hpp is the portable reference, the JIT
// leg checks that the *emitted* code computes the same state.
//
// Scope: blocking mode only (an emitted PE function runs straight through
// its stream; it cannot be parked mid-barrier the way the interpreter's
// cooperative carriers park a PE), and unavailable under sanitizers
// (uninstrumented code in a TSan/ASan process would poison the analysis).
// Callers must check JitModule::available() and fall back to the
// interpreter — the differential tests do exactly that, so the TSan leg
// still covers the barriers and the runtime.
#pragma once

#include <memory>
#include <string>

#include "exec/lower.hpp"
#include "exec/runtime.hpp"

namespace bm::exec {

struct JitOptions {
  /// C++ compiler to invoke; empty = $CXX, then "c++".
  std::string compiler;
  /// Directory for generated .cpp/.so; empty = fresh mkdtemp under the
  /// system temp dir, removed on destruction unless `keep`.
  std::string work_dir;
  bool keep = false;
};

/// One compiled schedule. Construction emits, compiles and dlopens;
/// throws bm::Error on any failure (missing compiler, compile error,
/// symbol/shape mismatch with the lowering).
class JitModule {
 public:
  explicit JitModule(const LoweredProgram& lp, const JitOptions& opts = {});
  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  /// Runs the compiled PE functions, one OS thread per PE (blocking
  /// barrier waits). `opts.threads` is ignored; barrier kind, spin_iters,
  /// pin, timeline and initial_memory are honored.
  ExecResult run(const ExecOptions& opts = {}) const;

  /// Where the generated .cpp and .so live (valid until destruction).
  const std::string& artifact_dir() const;

  /// False when no system compiler answers, when dlopen is unsupported,
  /// when built under ASan/TSan, or when BM_EXEC_NO_JIT is set in the
  /// environment.
  static bool available();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bm::exec
