// Calibration: compare measured native timings against the model's
// predicted [min,max] envelopes, and measure raw per-primitive barrier
// overhead.
//
// The timing model speaks in abstract cycles (Table 1 instruction
// weights); silicon speaks in nanoseconds. calibrate() bridges them by
// fitting one scale factor per primitive — least squares through the
// origin over per-PE (predicted midpoint cycles, measured ns) pairs — and
// reporting each PE's measured completion against its scaled envelope.
//
// This is explicitly *informational*: wall-clock on a shared, possibly
// one-core CI box is noisy, so nothing here is asserted in tests or gated
// in CI (the envelope property test checks ordering structure instead;
// see docs/EXECUTION.md). The numbers surface through `bmexec calibrate`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/barrier.hpp"
#include "exec/lower.hpp"

namespace bm::exec {

/// Raw cost of one full barrier crossing (all participants arrive, all
/// released), measured as wall time of `rounds` back-to-back phases on
/// `participants` real threads divided by `rounds`. Includes spin/yield
/// and scheduling effects — that is the point.
double measure_barrier_overhead_ns(BarrierKind kind,
                                   std::uint32_t participants,
                                   std::uint32_t rounds,
                                   std::uint32_t spin_iters);

struct PeCalibration {
  TimeRange predicted{0, 0};  ///< model cycles (Schedule::proc_finish)
  double measured_ns = 0;     ///< best-of-repeats stream completion
  double scaled_min_ns = 0;   ///< predicted * ns_per_cycle
  double scaled_max_ns = 0;
  bool within = false;  ///< measured inside the scaled envelope
};

struct PrimitiveCalibration {
  BarrierKind kind = BarrierKind::kCentral;
  double barrier_overhead_ns = 0;
  double ns_per_cycle = 0;
  std::uint64_t best_wall_ns = 0;
  std::vector<PeCalibration> pes;
};

struct CalibrationReport {
  std::uint32_t participants = 0;
  std::uint32_t repeats = 0;
  std::uint32_t barrier_rounds = 0;
  std::vector<PrimitiveCalibration> primitives;
};

struct CalibrateOptions {
  std::uint32_t repeats = 5;         ///< program runs per primitive (min taken)
  std::uint32_t barrier_rounds = 2000;
  std::uint32_t spin_iters = 128;
  bool pin = false;
};

/// Runs the lowered program under every barrier primitive (one thread per
/// PE, blocking waits) and measures both primitives' raw overhead.
CalibrationReport calibrate(const LoweredProgram& lp,
                            const CalibrateOptions& opts = {});

/// Human-readable report (the `bmexec calibrate` output).
std::string format_calibration(const CalibrationReport& report);

}  // namespace bm::exec
