#include "sched/policies.hpp"

namespace bm {

std::string_view to_string(MachineKind k) {
  return k == MachineKind::kSBM ? "SBM" : "DBM";
}

std::string_view to_string(InsertionPolicy p) {
  return p == InsertionPolicy::kConservative ? "conservative" : "optimal";
}

std::string_view to_string(OrderingPolicy p) {
  return p == OrderingPolicy::kMaxThenMin ? "hmax-then-hmin"
                                          : "hmin-then-hmax";
}

std::string_view to_string(AssignmentPolicy p) {
  switch (p) {
    case AssignmentPolicy::kListSerialize: return "list-serialize";
    case AssignmentPolicy::kRoundRobin: return "round-robin";
    case AssignmentPolicy::kLookahead: return "lookahead";
  }
  return "?";
}

}  // namespace bm
