// §4.2 node ordering: sort instruction nodes by descending maximum height,
// ties broken by descending minimum height (or the swapped §5.4 ablation).
// Stable final tie-break on node id keeps runs deterministic.
#pragma once

#include <vector>

#include "graph/instr_dag.hpp"
#include "sched/policies.hpp"

namespace bm {

/// Priority-ordered instruction list for the list scheduler. Producers
/// always precede their consumers (heights strictly decrease along edges for
/// positive-time instructions).
///
/// Implemented as a bucketed two-pass counting sort over the dag's columnar
/// (h_max, h_min) height arrays — stable and byte-identical in output to a
/// stable comparison sort descending on the policy's key pair.
std::vector<NodeId> make_list_order(const InstrDag& dag,
                                    OrderingPolicy policy);

/// Same, filling a caller-owned (typically pooled) buffer.
void make_list_order_into(const InstrDag& dag, OrderingPolicy policy,
                          std::vector<NodeId>& order);

}  // namespace bm
