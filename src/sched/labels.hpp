// §4.2 node ordering: sort instruction nodes by descending maximum height,
// ties broken by descending minimum height (or the swapped §5.4 ablation).
// Stable final tie-break on node id keeps runs deterministic.
#pragma once

#include <vector>

#include "graph/instr_dag.hpp"
#include "sched/policies.hpp"

namespace bm {

/// Priority-ordered instruction list for the list scheduler. Producers
/// always precede their consumers (heights strictly decrease along edges for
/// positive-time instructions).
std::vector<NodeId> make_list_order(const InstrDag& dag,
                                    OrderingPolicy policy);

}  // namespace bm
