#include "sched/serialize.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/assert.hpp"

namespace bm {

std::string schedule_to_text(const Schedule& sched) {
  std::ostringstream os;
  os << "schedule v1\n";
  std::size_t alive = 0;
  for (BarrierId b = 1; b < sched.barrier_id_bound(); ++b)
    if (sched.barrier_alive(b)) ++alive;
  os << "procs " << sched.num_procs() << " instrs "
     << sched.instr_dag().num_instructions() << " barriers " << alive
     << " latency " << sched.barrier_latency() << '\n';
  for (BarrierId b = 1; b < sched.barrier_id_bound(); ++b) {
    if (!sched.barrier_alive(b)) continue;
    os << "barrier " << b << " mask ";
    bool first = true;
    sched.barrier_mask(b).for_each([&](std::size_t p) {
      if (!first) os << ',';
      first = false;
      os << p;
    });
    if (sched.final_barrier() && *sched.final_barrier() == b) os << " final";
    os << '\n';
  }
  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    os << 'P' << p << ':';
    for (const ScheduleEntry& e : sched.stream(p))
      os << ' ' << (e.is_barrier ? 'B' : 'n') << e.id;
    os << '\n';
  }
  return os.str();
}

namespace {

struct ParsedEntry {
  bool is_barrier;
  std::uint32_t id;
};

std::uint64_t parse_number(const std::string& token, const char* what) {
  BM_REQUIRE(!token.empty(), std::string("missing ") + what);
  std::uint64_t value = 0;
  for (char ch : token) {
    BM_REQUIRE(ch >= '0' && ch <= '9',
               std::string("malformed ") + what + ": " + token);
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return value;
}

}  // namespace

Schedule schedule_from_text(const InstrDag& dag, const std::string& text) {
  std::istringstream in(text);
  std::string line;

  BM_REQUIRE(std::getline(in, line) && line == "schedule v1",
             "missing schedule header");
  std::size_t procs = 0, instrs = 0, barriers = 0;
  Time latency = 0;
  {
    BM_REQUIRE(!!std::getline(in, line), "missing size line");
    std::istringstream ls(line);
    std::string k1, k2, k3, k4;
    ls >> k1 >> procs >> k2 >> instrs >> k3 >> barriers;
    BM_REQUIRE(k1 == "procs" && k2 == "instrs" && k3 == "barriers" && ls,
               "malformed size line");
    if (ls >> k4) {  // optional (older dumps omit it)
      BM_REQUIRE(k4 == "latency" && (ls >> latency),
                 "malformed latency field");
    }
  }
  BM_REQUIRE(instrs == dag.num_instructions(),
             "instruction count does not match the DAG");

  struct ParsedBarrier {
    std::vector<std::size_t> mask;
    bool final = false;
  };
  std::map<std::uint32_t, ParsedBarrier> parsed_barriers;
  std::vector<std::vector<ParsedEntry>> parsed_streams(procs);

  for (std::size_t k = 0; k < barriers; ++k) {
    BM_REQUIRE(!!std::getline(in, line), "missing barrier line");
    std::istringstream ls(line);
    std::string kw, mask_kw, mask_str, final_kw;
    std::uint64_t id = 0;
    ls >> kw >> id >> mask_kw >> mask_str;
    BM_REQUIRE(kw == "barrier" && mask_kw == "mask" && ls,
               "malformed barrier line: " + line);
    ParsedBarrier pb;
    if (ls >> final_kw) {
      BM_REQUIRE(final_kw == "final", "unexpected token: " + final_kw);
      pb.final = true;
    }
    std::istringstream ms(mask_str);
    std::string part;
    while (std::getline(ms, part, ','))
      pb.mask.push_back(parse_number(part, "mask processor"));
    BM_REQUIRE(id >= 1, "barrier id 0 is reserved for the initial barrier");
    BM_REQUIRE(parsed_barriers.emplace(static_cast<std::uint32_t>(id), pb).second,
               "duplicate barrier id");
  }

  for (ProcId p = 0; p < procs; ++p) {
    BM_REQUIRE(!!std::getline(in, line), "missing stream line");
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    BM_REQUIRE(head == "P" + std::to_string(p) + ":",
               "unexpected stream header: " + head);
    std::string token;
    while (ls >> token) {
      BM_REQUIRE(token.size() >= 2 && (token[0] == 'n' || token[0] == 'B'),
                 "malformed stream entry: " + token);
      parsed_streams[p].push_back(
          {token[0] == 'B',
           static_cast<std::uint32_t>(parse_number(token.substr(1), "id"))});
    }
  }

  // Every stream barrier reference must have a declaration.
  for (ProcId p = 0; p < procs; ++p)
    for (const ParsedEntry& e : parsed_streams[p])
      BM_REQUIRE(!e.is_barrier || parsed_barriers.contains(e.id),
                 "stream references undeclared barrier");

  // Rebuild: instructions first (streams keep their relative order), then
  // barriers in ascending parsed id, splicing at the recorded positions.
  Schedule sched(dag, procs, latency);
  for (ProcId p = 0; p < procs; ++p)
    for (const ParsedEntry& e : parsed_streams[p])
      if (!e.is_barrier) sched.append_instr(p, e.id);

  std::map<std::uint32_t, BarrierId> remap;
  for (const auto& [old_id, pb] : parsed_barriers) {
    std::vector<Schedule::Loc> at;
    for (ProcId p = 0; p < procs; ++p) {
      std::uint32_t pos = 0;
      bool found = false;
      for (const ParsedEntry& e : parsed_streams[p]) {
        if (e.is_barrier && e.id == old_id) {
          BM_REQUIRE(!found, "barrier appears twice in one stream");
          found = true;
          at.push_back({p, pos});
          continue;
        }
        // Count entries already materialized: instructions and barriers
        // with a smaller parsed id (inserted earlier).
        if (!e.is_barrier || remap.contains(e.id)) ++pos;
      }
      const bool in_mask =
          std::find(pb.mask.begin(), pb.mask.end(), p) != pb.mask.end();
      BM_REQUIRE(found == in_mask,
                 "barrier mask inconsistent with stream occurrences");
    }
    BM_REQUIRE(!at.empty(), "barrier participates in no stream");
    remap[old_id] = sched.insert_barrier(at);
  }
  for (const auto& [old_id, pb] : parsed_barriers)
    if (pb.final) sched.set_final_barrier(remap.at(old_id));

  BM_REQUIRE(sched.order_feasible({}), "schedule order is infeasible");
  return sched;
}

}  // namespace bm
