#include "sched/labels.hpp"

#include <algorithm>
#include <cstdint>

#include "support/scratch.hpp"

namespace bm {

namespace {

/// One stable counting-sort pass over `order` by `key`, descending —
/// equivalent to std::stable_sort with `key(a) > key(b)`. `lo`/`hi` bound
/// the key values; `tmp` and `count` are pooled scratch.
template <typename KeyFn>
void bucket_pass(std::vector<NodeId>& order, std::vector<NodeId>& tmp,
                 std::vector<std::uint32_t>& count, Time lo, Time hi,
                 KeyFn&& key) {
  const std::size_t buckets = static_cast<std::size_t>(hi - lo) + 1;
  count.assign(buckets, 0);
  for (NodeId v : order) ++count[static_cast<std::size_t>(hi - key(v))];
  std::uint32_t run = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint32_t c = count[b];
    count[b] = run;
    run += c;
  }
  tmp.resize(order.size());
  for (NodeId v : order)
    tmp[count[static_cast<std::size_t>(hi - key(v))]++] = v;
  order.swap(tmp);
}

}  // namespace

void make_list_order_into(const InstrDag& dag, OrderingPolicy policy,
                          std::vector<NodeId>& order) {
  const std::size_t n = dag.num_instructions();
  order.resize(n);
  for (NodeId i = 0; i < order.size(); ++i) order[i] = i;
  if (n < 2) return;

  const bool max_first = policy == OrderingPolicy::kMaxThenMin;
  auto primary = [&](NodeId v) {
    return max_first ? dag.h_max(v) : dag.h_min(v);
  };
  auto secondary = [&](NodeId v) {
    return max_first ? dag.h_min(v) : dag.h_max(v);
  };

  Time plo = primary(0), phi = plo;
  Time slo = secondary(0), shi = slo;
  for (NodeId v = 1; v < order.size(); ++v) {
    plo = std::min(plo, primary(v));
    phi = std::max(phi, primary(v));
    slo = std::min(slo, secondary(v));
    shi = std::max(shi, secondary(v));
  }

  // Heights span at most the critical path, so the bucket tables stay small
  // for every generator block; an adversarially wide height range (huge
  // instruction times) falls back to the comparison sort, which produces
  // the exact same ordering.
  const Time cap = static_cast<Time>(16 * n + 4096);
  if (phi - plo > cap || shi - slo > cap) {
    auto key = [&](NodeId v) {
      return std::pair<Time, Time>{primary(v), secondary(v)};
    };
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return key(a) > key(b);  // descending
    });
    return;
  }

  // Two stable bucket passes, least-significant key first: by secondary
  // height, then by primary — a lexicographic descending order identical to
  // the stable comparison sort on (primary, secondary).
  ScratchVec<NodeId> tmp_s;
  ScratchVec<std::uint32_t> count_s;
  bucket_pass(order, *tmp_s, *count_s, slo, shi, secondary);
  bucket_pass(order, *tmp_s, *count_s, plo, phi, primary);
}

std::vector<NodeId> make_list_order(const InstrDag& dag,
                                    OrderingPolicy policy) {
  std::vector<NodeId> order;
  make_list_order_into(dag, policy, order);
  return order;
}

}  // namespace bm
