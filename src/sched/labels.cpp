#include "sched/labels.hpp"

#include <algorithm>

namespace bm {

std::vector<NodeId> make_list_order(const InstrDag& dag,
                                    OrderingPolicy policy) {
  std::vector<NodeId> order(dag.num_instructions());
  for (NodeId i = 0; i < order.size(); ++i) order[i] = i;

  auto key = [&](NodeId n) {
    if (policy == OrderingPolicy::kMaxThenMin)
      return std::pair<Time, Time>{dag.h_max(n), dag.h_min(n)};
    return std::pair<Time, Time>{dag.h_min(n), dag.h_max(n)};
  };
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return key(a) > key(b);  // descending
  });
  return order;
}

}  // namespace bm
