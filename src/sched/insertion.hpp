// Barrier insertion (§4.4): given a producer/consumer pair scheduled on
// different processors, decide whether static timing already guarantees the
// ordering and, if not, insert a barrier — placed just before the consumer
// and after the producer (possibly after some g⁺, step 6).
#pragma once

#include "graph/instr_dag.hpp"
#include "sched/policies.hpp"
#include "sched/schedule.hpp"

namespace bm {

/// How a producer/consumer synchronization was handled.
struct SyncOutcome {
  enum class Kind {
    kSerialized,      ///< same processor — program order suffices
    kPathSatisfied,   ///< §4.4.1 step 1: barrier chain already orders them
    kTimingSatisfied, ///< steps 2–5 (or the §4.4.2 loop) resolved it
    kBarrierInserted, ///< a new barrier was required
  };
  Kind kind = Kind::kSerialized;
  BarrierId barrier = kInvalidBarrier;  ///< when kBarrierInserted
  std::size_t merges = 0;               ///< §4.4.3 merges triggered
};

/// Pure check: is edge g→i statically satisfied by the current schedule?
/// Both nodes must be placed; same-processor pairs are satisfied by
/// serialization (requires producer earlier in the stream).
bool sync_satisfied(const Schedule& sched, NodeId g, NodeId i,
                    InsertionPolicy policy);

/// Ensures the g→i ordering, inserting (and for SBM merging) a barrier if
/// the static analysis cannot resolve it.
SyncOutcome ensure_sync(Schedule& sched, NodeId g, NodeId i,
                        InsertionPolicy policy, bool merge_barriers);

}  // namespace bm
