// Schedule: the authoritative barrier-MIMD schedule representation.
//
// Each processor owns a stream of entries (instructions and barrier waits) in
// execution order. Barriers are registered with participation masks; the
// initial barrier (id 0) implicitly precedes every stream (§3.1). All timing
// analysis — fire ranges, dominators, ψ-paths — is derived lazily through a
// BarrierDag rebuilt only when the barrier structure changes (insertion,
// merging); appending tail instructions keeps the cached dag valid.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "barrier/barrier_dag.hpp"
#include "graph/instr_dag.hpp"
#include "support/bitset.hpp"

namespace bm {

using ProcId = std::uint32_t;

struct ScheduleEntry {
  bool is_barrier = false;
  std::uint32_t id = 0;  ///< NodeId (instruction) or BarrierId

  static ScheduleEntry instr(NodeId n) { return {false, n}; }
  static ScheduleEntry barrier(BarrierId b) { return {true, b}; }
};

class Schedule {
 public:
  /// The InstrDag must outlive the schedule (supplies instruction times).
  /// `barrier_latency` is the hardware cost from last arrival to release,
  /// charged per barrier in all static analysis and by the simulators.
  Schedule(const InstrDag& dag, std::size_t num_procs,
           Time barrier_latency = 0);

  std::size_t num_procs() const { return streams_.size(); }
  const InstrDag& instr_dag() const { return *dag_; }
  Time barrier_latency() const { return barrier_latency_; }
  const std::vector<ScheduleEntry>& stream(ProcId p) const;

  // --- barriers ------------------------------------------------------------
  static constexpr BarrierId kInitialBarrier = 0;
  std::size_t barrier_id_bound() const { return masks_.size(); }
  bool barrier_alive(BarrierId b) const { return alive_.at(b); }
  const DynBitset& barrier_mask(BarrierId b) const;
  /// The final rejoin barrier, if add_final_barrier() was called.
  std::optional<BarrierId> final_barrier() const;
  /// Alive barriers excluding the initial barrier and the final rejoin —
  /// the count the Barrier Synchronization Fraction is computed from.
  std::size_t inserted_barrier_count() const;

  // --- instruction placement ------------------------------------------------
  struct Loc {
    ProcId proc = 0;
    std::uint32_t pos = 0;  ///< index into the processor's stream
  };
  bool placed(NodeId instr) const;
  Loc loc(NodeId instr) const;
  void append_instr(ProcId p, NodeId instr);
  /// Last instruction entry on p (ignoring barriers), if any.
  std::optional<NodeId> last_instr(ProcId p) const;
  std::size_t instr_count(ProcId p) const;

  // --- stream-relative queries (all positions index the proc's stream) -----
  /// LastBar: last barrier entry strictly before pos (initial if none).
  BarrierId last_barrier_before(ProcId p, std::uint32_t pos) const;
  /// NextBar: first barrier entry strictly after pos, if any.
  std::optional<BarrierId> next_barrier_after(ProcId p,
                                              std::uint32_t pos) const;
  /// δ including pos: summed time of instruction entries in
  /// (LastBar(pos), pos]. pos must hold an instruction.
  TimeRange delta_through(ProcId p, std::uint32_t pos) const;
  /// δ excluding pos: summed time of instruction entries after the last
  /// barrier before pos, up to but not including pos. pos may equal the
  /// stream size (end).
  TimeRange delta_before(ProcId p, std::uint32_t pos) const;

  // --- analysis -------------------------------------------------------------
  /// Lazily (re)built barrier dag over the current streams. Queried millions
  /// of times per run, so the cached-hit path is inline.
  const BarrierDag& barrier_dag() const {
    if (analysis_valid_) return *analysis_;
    return build_analysis();
  }
  /// When this processor has retired its whole stream: fire range of its
  /// last barrier plus the tail code.
  TimeRange proc_finish(ProcId p) const;
  /// All processors finished (achieved by the all-min / all-max draws).
  TimeRange completion() const;

  // --- mutation ---------------------------------------------------------
  /// Inserts a new barrier entry at each given position (one Loc per
  /// distinct processor; existing entries at >= pos shift right). Returns
  /// the new barrier's id. Participation mask = the given processors.
  BarrierId insert_barrier(std::span<const Loc> at);
  BarrierId insert_barrier(std::initializer_list<Loc> at) {
    return insert_barrier(std::span<const Loc>(at.begin(), at.size()));
  }

  /// §4.4.3 SBM merging, run to a global fixpoint: while any two alive
  /// unordered barriers have overlapping fire ranges, merge them (union
  /// masks; the higher-id barrier's stream entries are relabeled to the
  /// lower id). Returns the number of merges performed.
  ///
  /// The paper merges only the newly inserted barrier; we extend this to a
  /// global fixpoint because a later insertion can shift fire ranges and
  /// create a *stale* unordered overlap, which would let the SBM's FIFO
  /// delay a barrier past its static fire window and silently invalidate
  /// earlier timing-based resolutions. After the fixpoint, all unordered
  /// barrier pairs have disjoint ranges, so the SBM queue (loaded in
  /// fire-min order) never delays any barrier beyond the dag semantics.
  ///
  /// A merge is skipped as *illegal* when unioning the pair would create a
  /// path NextBar(i) →* LastBar(g) for some placed cross-processor
  /// dependence edge g→i: such an ordering forces the consumer to finish
  /// before its producer starts and no later barrier could repair it (the
  /// paper's merge rule lacks this guard). Skipped pairs are counted in
  /// merges_skipped().
  std::size_t merge_overlapping_all();

  /// Unordered-overlapping pairs left unmerged by the legality guard since
  /// construction (diagnostic; ≈0 in practice).
  std::size_t merges_skipped() const { return merges_skipped_; }

  /// The joint-order feasibility check behind both legality guards: the
  /// combined graph of per-processor stream order, barrier orderings, and
  /// *all* placed dependence edges must stay acyclic — otherwise some
  /// dependence could never be enforced by any future barrier. Evaluates
  /// the graph as if `virtual_barrier` entries were inserted (empty = none)
  /// and/or barriers `merge_keep`/`merge_victim` were unified
  /// (kInvalidBarrier = no merge).
  bool order_feasible(std::span<const Loc> virtual_barrier,
                      BarrierId merge_keep = kInvalidBarrier,
                      BarrierId merge_victim = kInvalidBarrier) const;

  /// Reference implementation of order_feasible(): materializes the whole
  /// joint graph and runs Kahn's algorithm. order_feasible() delegates here
  /// for the no-probe full check (deserialized schedules carry no
  /// acyclicity invariant) and for probe shapes the reachability fast path
  /// does not cover; it is also the differential-testing oracle for that
  /// fast path (see schedule_feasibility_test).
  bool order_feasible_ref(std::span<const Loc> virtual_barrier,
                          BarrierId merge_keep = kInvalidBarrier,
                          BarrierId merge_victim = kInvalidBarrier) const;

  /// Deletes an alive barrier outright: kills its mask, erases its stream
  /// entries, and forgets it as the final rejoin if it was one. The initial
  /// barrier cannot be removed. Primarily a mutation hook for the verifier's
  /// self-test (src/verify/selftest) — deleting an arbitrary barrier from a
  /// verified schedule generally *breaks* its safety argument, which is
  /// exactly what the detector must notice.
  void remove_barrier(BarrierId b);

  /// Appends a rejoin barrier across every processor that has at least one
  /// instruction (no-op if fewer than two). Excluded from barrier counts.
  void add_final_barrier();

  /// Marks an existing barrier as the final rejoin (deserialization
  /// support): it must be the last entry of every stream it appears in.
  void set_final_barrier(BarrierId b);

  /// Multi-line ASCII rendering of all streams (diagnostics, examples).
  std::string to_string() const;

 private:
  void invalidate() {
    analysis_valid_ = false;
    sidx_valid_ = false;
  }
  const BarrierDag& build_analysis() const;
  void reindex(ProcId p);
  /// Rescans every stream into bar_pos_ (only remove_barrier needs it; all
  /// other mutations patch the index in place).
  void rebuild_barrier_positions();
  /// In-place stream-index update for a barrier inserted at (p, pos) —
  /// insert_barrier's alternative to wholesale invalidation.
  void patch_stream_index(ProcId p, std::uint32_t pos, BarrierId id) const;
  TimeRange instr_time(NodeId n) const { return dag_->time(n); }

  /// Columnar per-stream position index, the backing store of every
  /// stream-relative query (δ prefix sums, LastBar/NextBar, segment bases).
  /// Each array has one entry per position 0..size (cum/last_bar/base) or
  /// per entry 0..size-1 (next_bar), so the former O(segment) backwards
  /// walks are O(1) lookups. Rebuilt lazily after barrier mutations;
  /// append_instr extends it in place (appending never changes the barrier
  /// structure, only the tail).
  struct StreamIndex {
    std::vector<TimeRange> cum;       ///< cum[k]: instr time summed over [0,k)
    std::vector<TimeRange> base;      ///< cum value at k's segment start
    std::vector<BarrierId> last_bar;  ///< last barrier strictly before k
    std::vector<BarrierId> next_bar;  ///< first barrier after k (kInvalid: none)
  };
  const StreamIndex& sidx(ProcId p) const;
  void rebuild_stream_index() const;

  const InstrDag* dag_;
  Time barrier_latency_ = 0;
  std::vector<std::vector<ScheduleEntry>> streams_;
  std::vector<DynBitset> masks_;  ///< indexed by BarrierId
  std::vector<bool> alive_;
  std::optional<BarrierId> final_barrier_;
  std::vector<Loc> instr_loc_;
  std::vector<bool> instr_placed_;
  /// Stream position of barrier b on processor p at [b * num_procs + p],
  /// stored as pos + 1 (0 = b has no entry on p). The barrier-side analogue
  /// of instr_loc_, maintained by every mutation; order_feasible()'s
  /// reachability probes use it to enumerate a barrier node's stream
  /// successors without scanning streams.
  std::vector<std::uint32_t> bar_pos_;
  /// Visited stamps for order_feasible()'s reachability probes, epoch-keyed
  /// so the ~10^5 probes per schedule never clear the array.
  mutable std::vector<std::uint64_t> probe_stamp_;
  mutable std::uint64_t probe_epoch_ = 0;
  std::vector<NodeId> last_instr_;        ///< per proc; kInvalidNode if none
  std::vector<std::uint32_t> instr_cnt_;  ///< per proc instruction count
  std::size_t merges_skipped_ = 0;
  /// Merge pairs proven order-infeasible. Monotone: list-scheduler
  /// mutations only add joint-order constraints, so entries stay valid for
  /// the schedule's lifetime — except remove_barrier, which deletes
  /// constraints and clears the memo.
  std::vector<std::pair<BarrierId, BarrierId>> merge_infeasible_;
  /// The dag object outlives invalidations: a stale dag is rebuilt in
  /// place (BarrierDag::rebuild) so its buffer capacities carry across the
  /// mutation loop's hundreds of rebuilds. `analysis_valid_` is the
  /// staleness flag; the optional is empty only before the first query.
  mutable std::optional<BarrierDag> analysis_;
  mutable bool analysis_valid_ = false;
  mutable std::vector<StreamIndex> sidx_;
  mutable bool sidx_valid_ = false;
  /// Chain inputs for barrier_dag() rebuilds; member scratch so the ~10
  /// rebuilds per schedule reuse one allocation's capacity.
  mutable std::vector<BarrierChainInput> chains_scratch_;
};

}  // namespace bm
