#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace bm {

Schedule::Schedule(const InstrDag& dag, std::size_t num_procs,
                   Time barrier_latency)
    : dag_(&dag),
      barrier_latency_(barrier_latency),
      streams_(num_procs),
      instr_loc_(dag.num_instructions()),
      instr_placed_(dag.num_instructions(), false) {
  BM_REQUIRE(num_procs >= 1, "need at least one processor");
  BM_REQUIRE(barrier_latency >= 0, "barrier latency must be >= 0");
  // Barrier 0: the initial barrier across all processors (§3.1).
  DynBitset all(num_procs);
  all.set_all();
  masks_.push_back(std::move(all));
  alive_.push_back(true);
}

const std::vector<ScheduleEntry>& Schedule::stream(ProcId p) const {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  return streams_[p];
}

const DynBitset& Schedule::barrier_mask(BarrierId b) const {
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  return masks_[b];
}

std::optional<BarrierId> Schedule::final_barrier() const {
  return final_barrier_;
}

std::size_t Schedule::inserted_barrier_count() const {
  std::size_t n = 0;
  for (BarrierId b = 1; b < alive_.size(); ++b)
    if (alive_[b] && (!final_barrier_ || b != *final_barrier_)) ++n;
  return n;
}

bool Schedule::placed(NodeId instr) const {
  BM_REQUIRE(instr < instr_placed_.size(), "not an instruction node");
  return instr_placed_[instr];
}

Schedule::Loc Schedule::loc(NodeId instr) const {
  BM_REQUIRE(placed(instr), "instruction not placed");
  return instr_loc_[instr];
}

void Schedule::append_instr(ProcId p, NodeId instr) {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  BM_REQUIRE(instr < instr_placed_.size() && !instr_placed_[instr],
             "instruction already placed or not an instruction");
  instr_loc_[instr] = {p, static_cast<std::uint32_t>(streams_[p].size())};
  instr_placed_[instr] = true;
  streams_[p].push_back(ScheduleEntry::instr(instr));
  // No invalidate(): the entry lands after the stream's last barrier, i.e.
  // in the tail code that barrier_dag() excludes from its chains, so the
  // cached analysis (and its ψ memo) stays exact. Only barrier insertion
  // and merging change the dag.
}

std::optional<NodeId> Schedule::last_instr(ProcId p) const {
  const auto& s = stream(p);
  for (auto it = s.rbegin(); it != s.rend(); ++it)
    if (!it->is_barrier) return it->id;
  return std::nullopt;
}

std::size_t Schedule::instr_count(ProcId p) const {
  const auto& s = stream(p);
  std::size_t n = 0;
  for (const auto& e : s)
    if (!e.is_barrier) ++n;
  return n;
}

BarrierId Schedule::last_barrier_before(ProcId p, std::uint32_t pos) const {
  const auto& s = stream(p);
  BM_REQUIRE(pos <= s.size(), "position out of range");
  for (std::uint32_t i = pos; i-- > 0;)
    if (s[i].is_barrier) return s[i].id;
  return kInitialBarrier;
}

std::optional<BarrierId> Schedule::next_barrier_after(
    ProcId p, std::uint32_t pos) const {
  const auto& s = stream(p);
  BM_REQUIRE(pos < s.size(), "position out of range");
  for (std::uint32_t i = pos + 1; i < s.size(); ++i)
    if (s[i].is_barrier) return s[i].id;
  return std::nullopt;
}

TimeRange Schedule::delta_through(ProcId p, std::uint32_t pos) const {
  const auto& s = stream(p);
  BM_REQUIRE(pos < s.size() && !s[pos].is_barrier,
             "delta_through requires an instruction position");
  return delta_before(p, pos) + instr_time(s[pos].id);
}

TimeRange Schedule::delta_before(ProcId p, std::uint32_t pos) const {
  const auto& s = stream(p);
  BM_REQUIRE(pos <= s.size(), "position out of range");
  TimeRange total{0, 0};
  for (std::uint32_t i = pos; i-- > 0;) {
    if (s[i].is_barrier) break;
    total += instr_time(s[i].id);
  }
  return total;
}

const BarrierDag& Schedule::barrier_dag() const {
  if (!analysis_) {
    std::vector<BarrierChainInput> chains(streams_.size());
    for (ProcId p = 0; p < streams_.size(); ++p) {
      BarrierChainInput& chain = chains[p];
      chain.barriers.push_back(kInitialBarrier);
      TimeRange seg{0, 0};
      for (const ScheduleEntry& e : streams_[p]) {
        if (e.is_barrier) {
          chain.segments.push_back(seg);
          chain.barriers.push_back(e.id);
          seg = TimeRange{0, 0};
        } else {
          seg += instr_time(e.id);
        }
      }
      // Tail code after the last barrier is not part of the dag.
    }
    analysis_.emplace(masks_.size(), kInitialBarrier, chains,
                      barrier_latency_);
  }
  return *analysis_;
}

TimeRange Schedule::proc_finish(ProcId p) const {
  const BarrierDag& bd = barrier_dag();
  const auto& s = stream(p);
  const BarrierId last = last_barrier_before(p, static_cast<std::uint32_t>(s.size()));
  return bd.fire_range(last) +
         delta_before(p, static_cast<std::uint32_t>(s.size()));
}

TimeRange Schedule::completion() const {
  TimeRange total{0, 0};
  for (ProcId p = 0; p < streams_.size(); ++p)
    total = total.join_max(proc_finish(p));
  return total;
}

void Schedule::reindex(ProcId p) {
  const auto& s = streams_[p];
  for (std::uint32_t i = 0; i < s.size(); ++i)
    if (!s[i].is_barrier) instr_loc_[s[i].id] = {p, i};
}

BarrierId Schedule::insert_barrier(const std::vector<Loc>& at) {
  BM_REQUIRE(!at.empty(), "barrier needs at least one participant");
  DynBitset mask(num_procs());
  for (const Loc& l : at) {
    BM_REQUIRE(l.proc < num_procs(), "processor id out of range");
    BM_REQUIRE(!mask.test(l.proc), "duplicate processor in barrier insertion");
    BM_REQUIRE(l.pos <= streams_[l.proc].size(), "position out of range");
    mask.set(l.proc);
  }
  const auto id = static_cast<BarrierId>(masks_.size());
  masks_.push_back(std::move(mask));
  alive_.push_back(true);
  for (const Loc& l : at) {
    auto& s = streams_[l.proc];
    s.insert(s.begin() + l.pos, ScheduleEntry::barrier(id));
    reindex(l.proc);
  }
  invalidate();
  return id;
}

bool Schedule::order_feasible(std::span<const Loc> virtual_barrier,
                              BarrierId merge_keep,
                              BarrierId merge_victim) const {
  // Node layout: [0, n) instructions, [n, n + id_bound) barriers,
  // n + id_bound = the virtual barrier.
  const std::size_t n = instr_placed_.size();
  const std::size_t barrier_node = n + masks_.size();
  const std::size_t num_nodes = barrier_node + 1;

  auto barrier_index = [&](BarrierId b) -> std::size_t {
    if (merge_victim != kInvalidBarrier && b == merge_victim)
      b = merge_keep;  // unified node
    return n + b;
  };

  std::vector<std::vector<std::uint32_t>> succs(num_nodes);
  std::vector<std::size_t> indegree(num_nodes, 0);
  auto add_edge = [&](std::size_t from, std::size_t to) {
    if (from == to) return;  // merged barriers adjacent on a chain
    succs[from].push_back(static_cast<std::uint32_t>(to));
    ++indegree[to];
  };
  auto entry_node = [&](const ScheduleEntry& e) {
    return e.is_barrier ? barrier_index(e.id) : e.id;
  };

  // Stream order (with the virtual barrier spliced in).
  for (ProcId p = 0; p < streams_.size(); ++p) {
    std::optional<std::uint32_t> splice;
    for (const Loc& l : virtual_barrier)
      if (l.proc == p) splice = l.pos;
    std::size_t prev = barrier_index(kInitialBarrier);
    const auto& s = streams_[p];
    for (std::uint32_t k = 0; k <= s.size(); ++k) {
      if (splice && *splice == k) {
        add_edge(prev, barrier_node);
        prev = barrier_node;
      }
      if (k == s.size()) break;
      const std::size_t node = entry_node(s[k]);
      add_edge(prev, node);
      prev = node;
    }
  }

  // Every placed dependence edge must remain jointly enforceable.
  for (const auto& [g, i] : dag_->sync_edges())
    if (instr_placed_[g] && instr_placed_[i]) add_edge(g, i);

  // Kahn acyclicity check.
  std::vector<std::uint32_t> ready;
  for (std::size_t v = 0; v < num_nodes; ++v)
    if (indegree[v] == 0) ready.push_back(static_cast<std::uint32_t>(v));
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::uint32_t v = ready.back();
    ready.pop_back();
    ++seen;
    for (std::uint32_t s : succs[v])
      if (--indegree[s] == 0) ready.push_back(s);
  }
  return seen == num_nodes;
}

std::size_t Schedule::merge_overlapping_all() {
  std::size_t merges = 0;
  std::vector<std::pair<BarrierId, BarrierId>> rejected;
  for (;;) {
    const BarrierDag& bd = barrier_dag();
    BarrierId keep = kInvalidBarrier, victim = kInvalidBarrier;
    for (BarrierId a = 1; a < masks_.size() && keep == kInvalidBarrier; ++a) {
      if (!alive_[a]) continue;
      if (final_barrier_ && a == *final_barrier_) continue;
      for (BarrierId b = a + 1; b < masks_.size(); ++b) {
        if (!alive_[b]) continue;
        if (final_barrier_ && b == *final_barrier_) continue;
        if (!bd.fire_range(a).overlaps(bd.fire_range(b)) || bd.ordered(a, b))
          continue;
        if (std::find(rejected.begin(), rejected.end(),
                      std::pair{a, b}) != rejected.end())
          continue;
        if (!order_feasible({}, a, b)) {
          rejected.emplace_back(a, b);
          ++merges_skipped_;
          continue;
        }
        keep = a;
        victim = b;
        break;
      }
    }
    if (keep == kInvalidBarrier) return merges;
    // Merge: relabel the victim's stream entries, union the masks.
    BM_ASSERT_INTERNAL(!masks_[keep].intersects(masks_[victim]),
                       "unordered barriers cannot share a processor");
    masks_[keep] |= masks_[victim];
    alive_[victim] = false;
    masks_[victim].clear();
    for (auto& s : streams_)
      for (auto& e : s)
        if (e.is_barrier && e.id == victim) e.id = keep;
    invalidate();
    ++merges;
  }
}

void Schedule::remove_barrier(BarrierId b) {
  BM_REQUIRE(b != kInitialBarrier, "cannot remove the initial barrier");
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  if (final_barrier_ && *final_barrier_ == b) final_barrier_.reset();
  alive_[b] = false;
  masks_[b].clear();
  for (ProcId p = 0; p < num_procs(); ++p) {
    auto& s = streams_[p];
    const std::size_t before = s.size();
    s.erase(std::remove_if(s.begin(), s.end(),
                           [&](const ScheduleEntry& e) {
                             return e.is_barrier && e.id == b;
                           }),
            s.end());
    if (s.size() != before) reindex(p);
  }
  invalidate();
}

void Schedule::add_final_barrier() {
  BM_REQUIRE(!final_barrier_, "final barrier already added");
  std::vector<Loc> at;
  for (ProcId p = 0; p < num_procs(); ++p)
    if (instr_count(p) > 0)
      at.push_back({p, static_cast<std::uint32_t>(streams_[p].size())});
  if (at.size() < 2) return;
  final_barrier_ = insert_barrier(at);
}

void Schedule::set_final_barrier(BarrierId b) {
  BM_REQUIRE(!final_barrier_, "final barrier already set");
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  for (ProcId p = 0; p < num_procs(); ++p) {
    if (!masks_[b].test(p)) continue;
    const auto& s = streams_[p];
    BM_REQUIRE(!s.empty() && s.back().is_barrier && s.back().id == b,
               "final barrier must end every participating stream");
  }
  final_barrier_ = b;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  for (ProcId p = 0; p < num_procs(); ++p) {
    os << "P" << p << ':';
    for (const ScheduleEntry& e : streams_[p]) {
      if (e.is_barrier)
        os << " |B" << e.id << '|';
      else
        os << " n" << e.id;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace bm
