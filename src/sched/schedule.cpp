#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"
#include "support/scratch.hpp"

namespace bm {

namespace {

/// Componentwise interval difference of two prefix sums (valid because both
/// are sums of the same leading segment plus a common base).
constexpr TimeRange prefix_diff(const TimeRange& a, const TimeRange& b) {
  return {a.min - b.min, a.max - b.max};
}

}  // namespace

Schedule::Schedule(const InstrDag& dag, std::size_t num_procs,
                   Time barrier_latency)
    : dag_(&dag),
      barrier_latency_(barrier_latency),
      streams_(num_procs),
      instr_loc_(dag.num_instructions()),
      instr_placed_(dag.num_instructions(), false),
      last_instr_(num_procs, kInvalidNode),
      instr_cnt_(num_procs, 0) {
  BM_REQUIRE(num_procs >= 1, "need at least one processor");
  BM_REQUIRE(barrier_latency >= 0, "barrier latency must be >= 0");
  // Barrier 0: the initial barrier across all processors (§3.1).
  DynBitset all(num_procs);
  all.set_all();
  masks_.push_back(std::move(all));
  alive_.push_back(true);
  bar_pos_.assign(num_procs, 0);  // the initial barrier has no stream entry
}

const std::vector<ScheduleEntry>& Schedule::stream(ProcId p) const {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  return streams_[p];
}

const DynBitset& Schedule::barrier_mask(BarrierId b) const {
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  return masks_[b];
}

std::optional<BarrierId> Schedule::final_barrier() const {
  return final_barrier_;
}

std::size_t Schedule::inserted_barrier_count() const {
  std::size_t n = 0;
  for (BarrierId b = 1; b < alive_.size(); ++b)
    if (alive_[b] && (!final_barrier_ || b != *final_barrier_)) ++n;
  return n;
}

bool Schedule::placed(NodeId instr) const {
  BM_REQUIRE(instr < instr_placed_.size(), "not an instruction node");
  return instr_placed_[instr];
}

Schedule::Loc Schedule::loc(NodeId instr) const {
  BM_REQUIRE(placed(instr), "instruction not placed");
  return instr_loc_[instr];
}

void Schedule::rebuild_stream_index() const {
  sidx_.resize(streams_.size());
  for (ProcId p = 0; p < streams_.size(); ++p) {
    const auto& s = streams_[p];
    StreamIndex& ix = sidx_[p];
    ix.cum.resize(s.size() + 1);
    ix.base.resize(s.size() + 1);
    ix.last_bar.resize(s.size() + 1);
    ix.next_bar.resize(s.size());
    TimeRange cum{0, 0}, base{0, 0};
    BarrierId last = kInitialBarrier;
    for (std::uint32_t k = 0; k < s.size(); ++k) {
      ix.cum[k] = cum;
      ix.base[k] = base;
      ix.last_bar[k] = last;
      if (s[k].is_barrier) {
        last = s[k].id;
        base = cum;  // new segment starts after this barrier
      } else {
        cum += instr_time(s[k].id);
      }
    }
    ix.cum[s.size()] = cum;
    ix.base[s.size()] = base;
    ix.last_bar[s.size()] = last;
    BarrierId next = kInvalidBarrier;
    for (std::uint32_t k = static_cast<std::uint32_t>(s.size()); k-- > 0;) {
      ix.next_bar[k] = next;
      if (s[k].is_barrier) next = s[k].id;
    }
  }
  sidx_valid_ = true;
}

const Schedule::StreamIndex& Schedule::sidx(ProcId p) const {
  if (!sidx_valid_) rebuild_stream_index();
  return sidx_[p];
}

void Schedule::append_instr(ProcId p, NodeId instr) {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  BM_REQUIRE(instr < instr_placed_.size() && !instr_placed_[instr],
             "instruction already placed or not an instruction");
  instr_loc_[instr] = {p, static_cast<std::uint32_t>(streams_[p].size())};
  instr_placed_[instr] = true;
  streams_[p].push_back(ScheduleEntry::instr(instr));
  last_instr_[p] = instr;
  ++instr_cnt_[p];
  if (sidx_valid_) {
    // Extend the positional index in place: an appended instruction adds one
    // tail position with the same segment base and last barrier.
    StreamIndex& ix = sidx_[p];
    ix.cum.push_back(ix.cum.back() + instr_time(instr));
    ix.base.push_back(ix.base.back());
    ix.last_bar.push_back(ix.last_bar.back());
    ix.next_bar.push_back(kInvalidBarrier);
  }
  // No invalidate(): the entry lands after the stream's last barrier, i.e.
  // in the tail code that barrier_dag() excludes from its chains, so the
  // cached analysis (and its ψ memo) stays exact. Only barrier insertion
  // and merging change the dag.
}

std::optional<NodeId> Schedule::last_instr(ProcId p) const {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  if (last_instr_[p] == kInvalidNode) return std::nullopt;
  return last_instr_[p];
}

std::size_t Schedule::instr_count(ProcId p) const {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  return instr_cnt_[p];
}

BarrierId Schedule::last_barrier_before(ProcId p, std::uint32_t pos) const {
  const StreamIndex& ix = sidx(p);
  BM_REQUIRE(pos < ix.last_bar.size(), "position out of range");
  return ix.last_bar[pos];
}

std::optional<BarrierId> Schedule::next_barrier_after(
    ProcId p, std::uint32_t pos) const {
  const StreamIndex& ix = sidx(p);
  BM_REQUIRE(pos < ix.next_bar.size(), "position out of range");
  if (ix.next_bar[pos] == kInvalidBarrier) return std::nullopt;
  return ix.next_bar[pos];
}

TimeRange Schedule::delta_through(ProcId p, std::uint32_t pos) const {
  const auto& s = stream(p);
  BM_REQUIRE(pos < s.size() && !s[pos].is_barrier,
             "delta_through requires an instruction position");
  return delta_before(p, pos) + instr_time(s[pos].id);
}

TimeRange Schedule::delta_before(ProcId p, std::uint32_t pos) const {
  const StreamIndex& ix = sidx(p);
  BM_REQUIRE(pos < ix.cum.size(), "position out of range");
  return prefix_diff(ix.cum[pos], ix.base[pos]);
}

const BarrierDag& Schedule::build_analysis() const {
  chains_scratch_.resize(streams_.size());
  for (ProcId p = 0; p < streams_.size(); ++p) {
    BarrierChainInput& chain = chains_scratch_[p];
    chain.barriers.clear();
    chain.segments.clear();
    chain.barriers.push_back(kInitialBarrier);
    TimeRange seg{0, 0};
    for (const ScheduleEntry& e : streams_[p]) {
      if (e.is_barrier) {
        chain.segments.push_back(seg);
        chain.barriers.push_back(e.id);
        seg = TimeRange{0, 0};
      } else {
        seg += instr_time(e.id);
      }
    }
    // Tail code after the last barrier is not part of the dag.
  }
  if (analysis_)
    analysis_->rebuild(masks_.size(), kInitialBarrier, chains_scratch_,
                       barrier_latency_);
  else
    analysis_.emplace(masks_.size(), kInitialBarrier, chains_scratch_,
                      barrier_latency_);
  analysis_valid_ = true;
  return *analysis_;
}

TimeRange Schedule::proc_finish(ProcId p) const {
  const BarrierDag& bd = barrier_dag();
  const StreamIndex& ix = sidx(p);
  const std::size_t end = ix.cum.size() - 1;
  return bd.fire_range(ix.last_bar[end]) +
         prefix_diff(ix.cum[end], ix.base[end]);
}

TimeRange Schedule::completion() const {
  TimeRange total{0, 0};
  for (ProcId p = 0; p < streams_.size(); ++p)
    total = total.join_max(proc_finish(p));
  return total;
}

void Schedule::reindex(ProcId p) {
  const auto& s = streams_[p];
  for (std::uint32_t i = 0; i < s.size(); ++i)
    if (!s[i].is_barrier) instr_loc_[s[i].id] = {p, i};
}

BarrierId Schedule::insert_barrier(std::span<const Loc> at) {
  BM_REQUIRE(!at.empty(), "barrier needs at least one participant");
  DynBitset mask(num_procs());
  for (const Loc& l : at) {
    BM_REQUIRE(l.proc < num_procs(), "processor id out of range");
    BM_REQUIRE(!mask.test(l.proc), "duplicate processor in barrier insertion");
    BM_REQUIRE(l.pos <= streams_[l.proc].size(), "position out of range");
    mask.set(l.proc);
  }
  const auto id = static_cast<BarrierId>(masks_.size());
  masks_.push_back(std::move(mask));
  alive_.push_back(true);
  bar_pos_.resize(masks_.size() * num_procs(), 0);
  // The dag analysis must rebuild, but the stream index can be patched in
  // place: only the participating processors change, and within each only
  // the tail shifts and the split segment's base/last-bar entries move to
  // the new barrier. A full rebuild_stream_index() would rescan every
  // stream of every processor on each of the scheduler's ~10^5 insertions.
  const bool patch_sidx = sidx_valid_;
  for (const Loc& l : at) {
    auto& s = streams_[l.proc];
    s.insert(s.begin() + l.pos, ScheduleEntry::barrier(id));
    bar_pos_[id * num_procs() + l.proc] = l.pos + 1;
    for (auto i = static_cast<std::uint32_t>(l.pos + 1); i < s.size(); ++i)
      if (!s[i].is_barrier)
        instr_loc_[s[i].id] = {l.proc, i};
      else
        bar_pos_[s[i].id * num_procs() + l.proc] = i + 1;
    if (patch_sidx) patch_stream_index(l.proc, l.pos, id);
  }
  analysis_valid_ = false;
  return id;
}

void Schedule::patch_stream_index(ProcId p, std::uint32_t pos,
                                  BarrierId id) const {
  // `streams_[p]` already contains the new barrier entry at `pos`.
  const auto& s = streams_[p];
  StreamIndex& ix = sidx_[p];
  // Positions <= pos are untouched; the barrier adds a zero-time position
  // whose prefix equals cum[pos], and opens a segment based there.
  const TimeRange cum_at = ix.cum[pos];
  ix.cum.insert(ix.cum.begin() + pos + 1, cum_at);
  ix.base.insert(ix.base.begin() + pos + 1, cum_at);
  ix.last_bar.insert(ix.last_bar.begin() + pos + 1, id);
  // The rest of the split segment (up to the next barrier entry) now bases
  // at the new barrier; positions beyond it are shifted but unchanged.
  for (std::uint32_t k = pos + 2; k < ix.cum.size(); ++k) {
    if (s[k - 1].is_barrier) break;
    ix.base[k] = cum_at;
    ix.last_bar[k] = id;
  }
  // next_bar: the new entry's next barrier is the first one at or after the
  // old `pos`; earlier entries in the split segment now point at `id`.
  BarrierId nb = kInvalidBarrier;
  if (pos + 1 < s.size())
    nb = s[pos + 1].is_barrier ? s[pos + 1].id : ix.next_bar[pos];
  ix.next_bar.insert(ix.next_bar.begin() + pos, nb);
  for (std::uint32_t k = pos; k-- > 0;) {
    ix.next_bar[k] = id;
    if (s[k].is_barrier) break;
  }
}

bool Schedule::order_feasible(std::span<const Loc> virtual_barrier,
                              BarrierId merge_keep,
                              BarrierId merge_victim) const {
  // The full-graph check (no probe) has no acyclicity invariant to lean on
  // — deserialized schedules land here — so it stays on the Kahn reference.
  // Probe shapes outside the scheduler's two hot forms (a two-sided virtual
  // barrier, or a pure merge) also fall through to it.
  const bool merging = merge_victim != kInvalidBarrier;
  if (virtual_barrier.empty() ? !merging
                              : (merging || virtual_barrier.size() > 2))
    return order_feasible_ref(virtual_barrier, merge_keep, merge_victim);

  // Fast path: the scheduler only mutates after a feasible probe, appended
  // instructions have all their dag predecessors already placed, and
  // remove_barrier only deletes constraints — so the CURRENT joint graph is
  // always acyclic here. Any new cycle must therefore pass through the
  // probed mutation, which turns the acyclicity check into a targeted
  // reachability question on the existing graph:
  //
  //  * merge(a, b): contracting two barriers creates a cycle iff some
  //    successor of the contracted node reaches it again, i.e. iff a path
  //    a ⇝ b or b ⇝ a runs through at least one intermediate node (the
  //    direct stream edge would contract to a self-loop, which the
  //    reference drops too).
  //  * virtual barrier at {(p, pos_p)}: the splice replaces each stream
  //    edge prev_p → next_p by prev_p → v → next_p, so a cycle through v
  //    exists iff some next entry reaches some prev entry. The search runs
  //    on the unspliced graph; that is sound because it stops the moment it
  //    reaches any prev (never traversing the replaced prev → next edge),
  //    and an initial-barrier prev (pos 0) has no in-edges to reach.
  //
  // Visiting enumerates successors in place — stream successor via
  // instr_loc_ / bar_pos_, dependence successors via the dag's CSR — so a
  // probe touches only the reachable frontier instead of materializing and
  // Kahn-sorting the whole joint graph.
  const std::size_t n = instr_placed_.size();
  const std::size_t procs = streams_.size();
  auto relabel = [&](BarrierId b) {
    return (merging && b == merge_victim) ? merge_keep : b;
  };
  auto entry_node = [&](const ScheduleEntry& e) -> std::uint32_t {
    return e.is_barrier ? static_cast<std::uint32_t>(n + relabel(e.id))
                        : e.id;
  };

  const std::size_t num_nodes = n + masks_.size();
  if (probe_stamp_.size() < num_nodes) probe_stamp_.resize(num_nodes, 0);
  const std::uint64_t epoch = ++probe_epoch_;

  ScratchVec<std::uint32_t> stack_s;
  auto& stack = *stack_s;
  stack.clear();

  constexpr std::uint32_t kNoTarget = 0xffffffffu;
  std::uint32_t tgt0 = kNoTarget, tgt1 = kNoTarget;
  // Returns true when the probe is infeasible (a target was reached).
  auto visit = [&](std::uint32_t v) {
    if (v == tgt0 || v == tgt1) return true;
    if (probe_stamp_[v] != epoch) {
      probe_stamp_[v] = epoch;
      stack.push_back(v);
    }
    return false;
  };

  if (merging) {
    tgt0 = static_cast<std::uint32_t>(n + merge_keep);
    for (const BarrierId b : {merge_keep, merge_victim}) {
      for (ProcId p = 0; p < procs; ++p) {
        const std::uint32_t bp = bar_pos_[b * procs + p];
        if (bp == 0 || bp >= streams_[p].size()) continue;
        const std::uint32_t succ = entry_node(streams_[p][bp]);
        if (succ == tgt0) continue;  // contracts to a dropped self-loop
        if (probe_stamp_[succ] != epoch) {
          probe_stamp_[succ] = epoch;
          stack.push_back(succ);
        }
      }
    }
  } else {
    for (const Loc& l : virtual_barrier)
      if (l.pos > 0)
        (tgt0 == kNoTarget ? tgt0 : tgt1) =
            entry_node(streams_[l.proc][l.pos - 1]);
    // Every prev is the (unreachable) initial barrier: nothing to cycle to.
    if (tgt0 == kNoTarget) return true;
    // A next entry that is itself some prev entry is the immediate cycle
    // v → x → v; visit() reports it before any expansion.
    for (const Loc& l : virtual_barrier)
      if (l.pos < streams_[l.proc].size())
        if (visit(entry_node(streams_[l.proc][l.pos]))) return false;
  }

  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    if (v < n) {
      const Loc l = instr_loc_[v];
      const auto& s = streams_[l.proc];
      if (l.pos + 1 < s.size() && visit(entry_node(s[l.pos + 1])))
        return false;
      for (const NodeId d : dag_->succs(v))
        if (d < n && instr_placed_[d] &&
            visit(static_cast<std::uint32_t>(d)))
          return false;
    } else {
      const auto b = static_cast<BarrierId>(v - n);
      for (ProcId p = 0; p < procs; ++p) {
        const std::uint32_t bp = bar_pos_[b * procs + p];
        if (bp == 0 || bp >= streams_[p].size()) continue;
        if (visit(entry_node(streams_[p][bp]))) return false;
      }
    }
  }
  return true;  // no path back through the probed mutation
}

bool Schedule::order_feasible_ref(std::span<const Loc> virtual_barrier,
                                  BarrierId merge_keep,
                                  BarrierId merge_victim) const {
  // Node layout: [0, n) instructions, [n, n + id_bound) barriers,
  // n + id_bound = the virtual barrier.
  const std::size_t n = instr_placed_.size();
  const std::size_t barrier_node = n + masks_.size();
  const std::size_t num_nodes = barrier_node + 1;

  auto barrier_index = [&](BarrierId b) -> std::size_t {
    if (merge_victim != kInvalidBarrier && b == merge_victim)
      b = merge_keep;  // unified node
    return n + b;
  };
  auto entry_node = [&](const ScheduleEntry& e) {
    return e.is_barrier ? barrier_index(e.id) : e.id;
  };
  // One pass collects the joint edge set (stream order with the virtual
  // barrier spliced in, plus every placed dependence edge) into a pooled
  // flat list; degrees and the CSR are then filled from the list. All
  // buffers are pooled, so the thousands of feasibility probes per schedule
  // allocate nothing.
  ScratchVec<std::pair<std::uint32_t, std::uint32_t>> edges_s;
  auto& edges = *edges_s;
  edges.clear();
  auto sink = [&](std::size_t from, std::size_t to) {
    if (from == to) return;  // merged barriers adjacent on a chain
    edges.emplace_back(static_cast<std::uint32_t>(from),
                       static_cast<std::uint32_t>(to));
  };
  for (ProcId p = 0; p < streams_.size(); ++p) {
    std::optional<std::uint32_t> splice;
    for (const Loc& l : virtual_barrier)
      if (l.proc == p) splice = l.pos;
    std::size_t prev = barrier_index(kInitialBarrier);
    const auto& s = streams_[p];
    for (std::uint32_t k = 0; k <= s.size(); ++k) {
      if (splice && *splice == k) {
        sink(prev, barrier_node);
        prev = barrier_node;
      }
      if (k == s.size()) break;
      const std::size_t node = entry_node(s[k]);
      sink(prev, node);
      prev = node;
    }
  }
  // Every placed dependence edge must remain jointly enforceable.
  for (const auto& [g, i] : dag_->sync_edges())
    if (instr_placed_[g] && instr_placed_[i])
      sink(static_cast<std::size_t>(g), static_cast<std::size_t>(i));

  ScratchVec<std::uint32_t> off_s, cursor_s, dat_s, indeg_s, ready_s;
  auto& off = *off_s;
  auto& indeg = *indeg_s;
  off.assign(num_nodes + 1, 0);
  indeg.assign(num_nodes, 0);
  for (const auto& [from, to] : edges) {
    ++off[from + 1];
    ++indeg[to];
  }
  for (std::size_t v = 1; v <= num_nodes; ++v) off[v] += off[v - 1];
  auto& cursor = *cursor_s;
  cursor.assign(off.begin(), off.end() - 1);
  auto& dat = *dat_s;
  dat.resize(off[num_nodes]);
  for (const auto& [from, to] : edges) dat[cursor[from]++] = to;

  // Kahn acyclicity check.
  auto& ready = *ready_s;
  ready.clear();
  for (std::size_t v = 0; v < num_nodes; ++v)
    if (indeg[v] == 0) ready.push_back(static_cast<std::uint32_t>(v));
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::uint32_t v = ready.back();
    ready.pop_back();
    ++seen;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e)
      if (--indeg[dat[e]] == 0) ready.push_back(dat[e]);
  }
  return seen == num_nodes;
}

std::size_t Schedule::merge_overlapping_all() {
  std::size_t merges = 0;
  // Pairs already counted as skipped by THIS sweep; the per-call analogue
  // of the persistent memo below, preserving the historical one-count-per-
  // sweep accounting of merges_skipped().
  ScratchVec<std::pair<BarrierId, BarrierId>> counted_s;
  auto& counted = *counted_s;
  counted.clear();
  auto in = [](const std::vector<std::pair<BarrierId, BarrierId>>& v,
               BarrierId a, BarrierId b) {
    return std::find(v.begin(), v.end(), std::pair{a, b}) != v.end();
  };
  for (;;) {
    const BarrierDag& bd = barrier_dag();
    BarrierId keep = kInvalidBarrier, victim = kInvalidBarrier;
    for (BarrierId a = 1; a < masks_.size() && keep == kInvalidBarrier; ++a) {
      if (!alive_[a]) continue;
      if (final_barrier_ && a == *final_barrier_) continue;
      for (BarrierId b = a + 1; b < masks_.size(); ++b) {
        if (!alive_[b]) continue;
        if (final_barrier_ && b == *final_barrier_) continue;
        if (!bd.fire_range(a).overlaps(bd.fire_range(b)) || bd.ordered(a, b))
          continue;
        if (in(counted, a, b)) continue;
        // Infeasibility is monotone across this schedule's lifetime: every
        // mutation the list scheduler performs (append, insertion, merge)
        // only ADDs constraints to the joint order graph, so a pair that
        // once formed a cycle forms one forever. The memo turns the
        // repeated re-probe of known-bad pairs on every sweep into a list
        // hit (remove_barrier, which deletes constraints, clears it).
        if (in(merge_infeasible_, a, b) || !order_feasible({}, a, b)) {
          if (!in(merge_infeasible_, a, b)) merge_infeasible_.emplace_back(a, b);
          counted.emplace_back(a, b);
          ++merges_skipped_;
          continue;
        }
        keep = a;
        victim = b;
        break;
      }
    }
    if (keep == kInvalidBarrier) return merges;
    // Merge: relabel the victim's stream entries, union the masks.
    BM_ASSERT_INTERNAL(!masks_[keep].intersects(masks_[victim]),
                       "unordered barriers cannot share a processor");
    masks_[keep] |= masks_[victim];
    alive_[victim] = false;
    masks_[victim].clear();
    for (ProcId p = 0; p < num_procs(); ++p) {
      std::uint32_t& vp = bar_pos_[victim * num_procs() + p];
      if (vp != 0) {
        bar_pos_[keep * num_procs() + p] = vp;  // masks are disjoint
        vp = 0;
      }
    }
    for (auto& s : streams_)
      for (auto& e : s)
        if (e.is_barrier && e.id == victim) e.id = keep;
    // A merge relabels barrier ids but moves no entry: positions, prefix
    // sums, and segment bases are untouched, so the stream index survives
    // with the same relabel; only the dag analysis must rebuild.
    if (sidx_valid_) {
      for (StreamIndex& ix : sidx_) {
        for (BarrierId& lb : ix.last_bar)
          if (lb == victim) lb = keep;
        for (BarrierId& nb : ix.next_bar)
          if (nb == victim) nb = keep;
      }
    }
    analysis_valid_ = false;
    ++merges;
  }
}

void Schedule::remove_barrier(BarrierId b) {
  BM_REQUIRE(b != kInitialBarrier, "cannot remove the initial barrier");
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  // Removal deletes joint-order constraints, so infeasibility proofs
  // recorded by the merge sweep no longer hold.
  merge_infeasible_.clear();
  if (final_barrier_ && *final_barrier_ == b) final_barrier_.reset();
  alive_[b] = false;
  masks_[b].clear();
  for (ProcId p = 0; p < num_procs(); ++p) {
    auto& s = streams_[p];
    const std::size_t before = s.size();
    s.erase(std::remove_if(s.begin(), s.end(),
                           [&](const ScheduleEntry& e) {
                             return e.is_barrier && e.id == b;
                           }),
            s.end());
    if (s.size() != before) reindex(p);
  }
  rebuild_barrier_positions();
  invalidate();
}

void Schedule::rebuild_barrier_positions() {
  std::fill(bar_pos_.begin(), bar_pos_.end(), 0);
  for (ProcId p = 0; p < num_procs(); ++p) {
    const auto& s = streams_[p];
    for (std::uint32_t i = 0; i < s.size(); ++i)
      if (s[i].is_barrier) bar_pos_[s[i].id * num_procs() + p] = i + 1;
  }
}

void Schedule::add_final_barrier() {
  BM_REQUIRE(!final_barrier_, "final barrier already added");
  std::vector<Loc> at;
  for (ProcId p = 0; p < num_procs(); ++p)
    if (instr_count(p) > 0)
      at.push_back({p, static_cast<std::uint32_t>(streams_[p].size())});
  if (at.size() < 2) return;
  final_barrier_ = insert_barrier(at);
}

void Schedule::set_final_barrier(BarrierId b) {
  BM_REQUIRE(!final_barrier_, "final barrier already set");
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  for (ProcId p = 0; p < num_procs(); ++p) {
    if (!masks_[b].test(p)) continue;
    const auto& s = streams_[p];
    BM_REQUIRE(!s.empty() && s.back().is_barrier && s.back().id == b,
               "final barrier must end every participating stream");
  }
  final_barrier_ = b;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  for (ProcId p = 0; p < num_procs(); ++p) {
    os << "P" << p << ':';
    for (const ScheduleEntry& e : streams_[p]) {
      if (e.is_barrier)
        os << " |B" << e.id << '|';
      else
        os << " n" << e.id;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace bm
