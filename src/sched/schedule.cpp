#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"
#include "support/scratch.hpp"

namespace bm {

namespace {

/// Componentwise interval difference of two prefix sums (valid because both
/// are sums of the same leading segment plus a common base).
constexpr TimeRange prefix_diff(const TimeRange& a, const TimeRange& b) {
  return {a.min - b.min, a.max - b.max};
}

}  // namespace

Schedule::Schedule(const InstrDag& dag, std::size_t num_procs,
                   Time barrier_latency)
    : dag_(&dag),
      barrier_latency_(barrier_latency),
      streams_(num_procs),
      instr_loc_(dag.num_instructions()),
      instr_placed_(dag.num_instructions(), false),
      last_instr_(num_procs, kInvalidNode),
      instr_cnt_(num_procs, 0) {
  BM_REQUIRE(num_procs >= 1, "need at least one processor");
  BM_REQUIRE(barrier_latency >= 0, "barrier latency must be >= 0");
  // Barrier 0: the initial barrier across all processors (§3.1).
  DynBitset all(num_procs);
  all.set_all();
  masks_.push_back(std::move(all));
  alive_.push_back(true);
}

const std::vector<ScheduleEntry>& Schedule::stream(ProcId p) const {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  return streams_[p];
}

const DynBitset& Schedule::barrier_mask(BarrierId b) const {
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  return masks_[b];
}

std::optional<BarrierId> Schedule::final_barrier() const {
  return final_barrier_;
}

std::size_t Schedule::inserted_barrier_count() const {
  std::size_t n = 0;
  for (BarrierId b = 1; b < alive_.size(); ++b)
    if (alive_[b] && (!final_barrier_ || b != *final_barrier_)) ++n;
  return n;
}

bool Schedule::placed(NodeId instr) const {
  BM_REQUIRE(instr < instr_placed_.size(), "not an instruction node");
  return instr_placed_[instr];
}

Schedule::Loc Schedule::loc(NodeId instr) const {
  BM_REQUIRE(placed(instr), "instruction not placed");
  return instr_loc_[instr];
}

void Schedule::rebuild_stream_index() const {
  sidx_.resize(streams_.size());
  for (ProcId p = 0; p < streams_.size(); ++p) {
    const auto& s = streams_[p];
    StreamIndex& ix = sidx_[p];
    ix.cum.resize(s.size() + 1);
    ix.base.resize(s.size() + 1);
    ix.last_bar.resize(s.size() + 1);
    ix.next_bar.resize(s.size());
    TimeRange cum{0, 0}, base{0, 0};
    BarrierId last = kInitialBarrier;
    for (std::uint32_t k = 0; k < s.size(); ++k) {
      ix.cum[k] = cum;
      ix.base[k] = base;
      ix.last_bar[k] = last;
      if (s[k].is_barrier) {
        last = s[k].id;
        base = cum;  // new segment starts after this barrier
      } else {
        cum += instr_time(s[k].id);
      }
    }
    ix.cum[s.size()] = cum;
    ix.base[s.size()] = base;
    ix.last_bar[s.size()] = last;
    BarrierId next = kInvalidBarrier;
    for (std::uint32_t k = static_cast<std::uint32_t>(s.size()); k-- > 0;) {
      ix.next_bar[k] = next;
      if (s[k].is_barrier) next = s[k].id;
    }
  }
  sidx_valid_ = true;
}

const Schedule::StreamIndex& Schedule::sidx(ProcId p) const {
  if (!sidx_valid_) rebuild_stream_index();
  return sidx_[p];
}

void Schedule::append_instr(ProcId p, NodeId instr) {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  BM_REQUIRE(instr < instr_placed_.size() && !instr_placed_[instr],
             "instruction already placed or not an instruction");
  instr_loc_[instr] = {p, static_cast<std::uint32_t>(streams_[p].size())};
  instr_placed_[instr] = true;
  streams_[p].push_back(ScheduleEntry::instr(instr));
  last_instr_[p] = instr;
  ++instr_cnt_[p];
  if (sidx_valid_) {
    // Extend the positional index in place: an appended instruction adds one
    // tail position with the same segment base and last barrier.
    StreamIndex& ix = sidx_[p];
    ix.cum.push_back(ix.cum.back() + instr_time(instr));
    ix.base.push_back(ix.base.back());
    ix.last_bar.push_back(ix.last_bar.back());
    ix.next_bar.push_back(kInvalidBarrier);
  }
  // No invalidate(): the entry lands after the stream's last barrier, i.e.
  // in the tail code that barrier_dag() excludes from its chains, so the
  // cached analysis (and its ψ memo) stays exact. Only barrier insertion
  // and merging change the dag.
}

std::optional<NodeId> Schedule::last_instr(ProcId p) const {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  if (last_instr_[p] == kInvalidNode) return std::nullopt;
  return last_instr_[p];
}

std::size_t Schedule::instr_count(ProcId p) const {
  BM_REQUIRE(p < streams_.size(), "processor id out of range");
  return instr_cnt_[p];
}

BarrierId Schedule::last_barrier_before(ProcId p, std::uint32_t pos) const {
  const StreamIndex& ix = sidx(p);
  BM_REQUIRE(pos < ix.last_bar.size(), "position out of range");
  return ix.last_bar[pos];
}

std::optional<BarrierId> Schedule::next_barrier_after(
    ProcId p, std::uint32_t pos) const {
  const StreamIndex& ix = sidx(p);
  BM_REQUIRE(pos < ix.next_bar.size(), "position out of range");
  if (ix.next_bar[pos] == kInvalidBarrier) return std::nullopt;
  return ix.next_bar[pos];
}

TimeRange Schedule::delta_through(ProcId p, std::uint32_t pos) const {
  const auto& s = stream(p);
  BM_REQUIRE(pos < s.size() && !s[pos].is_barrier,
             "delta_through requires an instruction position");
  return delta_before(p, pos) + instr_time(s[pos].id);
}

TimeRange Schedule::delta_before(ProcId p, std::uint32_t pos) const {
  const StreamIndex& ix = sidx(p);
  BM_REQUIRE(pos < ix.cum.size(), "position out of range");
  return prefix_diff(ix.cum[pos], ix.base[pos]);
}

const BarrierDag& Schedule::build_analysis() const {
  chains_scratch_.resize(streams_.size());
  for (ProcId p = 0; p < streams_.size(); ++p) {
    BarrierChainInput& chain = chains_scratch_[p];
    chain.barriers.clear();
    chain.segments.clear();
    chain.barriers.push_back(kInitialBarrier);
    TimeRange seg{0, 0};
    for (const ScheduleEntry& e : streams_[p]) {
      if (e.is_barrier) {
        chain.segments.push_back(seg);
        chain.barriers.push_back(e.id);
        seg = TimeRange{0, 0};
      } else {
        seg += instr_time(e.id);
      }
    }
    // Tail code after the last barrier is not part of the dag.
  }
  analysis_.emplace(masks_.size(), kInitialBarrier, chains_scratch_,
                    barrier_latency_);
  return *analysis_;
}

TimeRange Schedule::proc_finish(ProcId p) const {
  const BarrierDag& bd = barrier_dag();
  const StreamIndex& ix = sidx(p);
  const std::size_t end = ix.cum.size() - 1;
  return bd.fire_range(ix.last_bar[end]) +
         prefix_diff(ix.cum[end], ix.base[end]);
}

TimeRange Schedule::completion() const {
  TimeRange total{0, 0};
  for (ProcId p = 0; p < streams_.size(); ++p)
    total = total.join_max(proc_finish(p));
  return total;
}

void Schedule::reindex(ProcId p) {
  const auto& s = streams_[p];
  for (std::uint32_t i = 0; i < s.size(); ++i)
    if (!s[i].is_barrier) instr_loc_[s[i].id] = {p, i};
}

BarrierId Schedule::insert_barrier(std::span<const Loc> at) {
  BM_REQUIRE(!at.empty(), "barrier needs at least one participant");
  DynBitset mask(num_procs());
  for (const Loc& l : at) {
    BM_REQUIRE(l.proc < num_procs(), "processor id out of range");
    BM_REQUIRE(!mask.test(l.proc), "duplicate processor in barrier insertion");
    BM_REQUIRE(l.pos <= streams_[l.proc].size(), "position out of range");
    mask.set(l.proc);
  }
  const auto id = static_cast<BarrierId>(masks_.size());
  masks_.push_back(std::move(mask));
  alive_.push_back(true);
  for (const Loc& l : at) {
    auto& s = streams_[l.proc];
    s.insert(s.begin() + l.pos, ScheduleEntry::barrier(id));
    reindex(l.proc);
  }
  invalidate();
  return id;
}

bool Schedule::order_feasible(std::span<const Loc> virtual_barrier,
                              BarrierId merge_keep,
                              BarrierId merge_victim) const {
  // Node layout: [0, n) instructions, [n, n + id_bound) barriers,
  // n + id_bound = the virtual barrier.
  const std::size_t n = instr_placed_.size();
  const std::size_t barrier_node = n + masks_.size();
  const std::size_t num_nodes = barrier_node + 1;

  auto barrier_index = [&](BarrierId b) -> std::size_t {
    if (merge_victim != kInvalidBarrier && b == merge_victim)
      b = merge_keep;  // unified node
    return n + b;
  };
  auto entry_node = [&](const ScheduleEntry& e) {
    return e.is_barrier ? barrier_index(e.id) : e.id;
  };
  // One pass collects the joint edge set (stream order with the virtual
  // barrier spliced in, plus every placed dependence edge) into a pooled
  // flat list; degrees and the CSR are then filled from the list. All
  // buffers are pooled, so the thousands of feasibility probes per schedule
  // allocate nothing.
  ScratchVec<std::pair<std::uint32_t, std::uint32_t>> edges_s;
  auto& edges = *edges_s;
  edges.clear();
  auto sink = [&](std::size_t from, std::size_t to) {
    if (from == to) return;  // merged barriers adjacent on a chain
    edges.emplace_back(static_cast<std::uint32_t>(from),
                       static_cast<std::uint32_t>(to));
  };
  for (ProcId p = 0; p < streams_.size(); ++p) {
    std::optional<std::uint32_t> splice;
    for (const Loc& l : virtual_barrier)
      if (l.proc == p) splice = l.pos;
    std::size_t prev = barrier_index(kInitialBarrier);
    const auto& s = streams_[p];
    for (std::uint32_t k = 0; k <= s.size(); ++k) {
      if (splice && *splice == k) {
        sink(prev, barrier_node);
        prev = barrier_node;
      }
      if (k == s.size()) break;
      const std::size_t node = entry_node(s[k]);
      sink(prev, node);
      prev = node;
    }
  }
  // Every placed dependence edge must remain jointly enforceable.
  for (const auto& [g, i] : dag_->sync_edges())
    if (instr_placed_[g] && instr_placed_[i])
      sink(static_cast<std::size_t>(g), static_cast<std::size_t>(i));

  ScratchVec<std::uint32_t> off_s, cursor_s, dat_s, indeg_s, ready_s;
  auto& off = *off_s;
  auto& indeg = *indeg_s;
  off.assign(num_nodes + 1, 0);
  indeg.assign(num_nodes, 0);
  for (const auto& [from, to] : edges) {
    ++off[from + 1];
    ++indeg[to];
  }
  for (std::size_t v = 1; v <= num_nodes; ++v) off[v] += off[v - 1];
  auto& cursor = *cursor_s;
  cursor.assign(off.begin(), off.end() - 1);
  auto& dat = *dat_s;
  dat.resize(off[num_nodes]);
  for (const auto& [from, to] : edges) dat[cursor[from]++] = to;

  // Kahn acyclicity check.
  auto& ready = *ready_s;
  ready.clear();
  for (std::size_t v = 0; v < num_nodes; ++v)
    if (indeg[v] == 0) ready.push_back(static_cast<std::uint32_t>(v));
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::uint32_t v = ready.back();
    ready.pop_back();
    ++seen;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e)
      if (--indeg[dat[e]] == 0) ready.push_back(dat[e]);
  }
  return seen == num_nodes;
}

std::size_t Schedule::merge_overlapping_all() {
  std::size_t merges = 0;
  ScratchVec<std::pair<BarrierId, BarrierId>> rejected_s;
  auto& rejected = *rejected_s;
  rejected.clear();
  for (;;) {
    const BarrierDag& bd = barrier_dag();
    BarrierId keep = kInvalidBarrier, victim = kInvalidBarrier;
    for (BarrierId a = 1; a < masks_.size() && keep == kInvalidBarrier; ++a) {
      if (!alive_[a]) continue;
      if (final_barrier_ && a == *final_barrier_) continue;
      for (BarrierId b = a + 1; b < masks_.size(); ++b) {
        if (!alive_[b]) continue;
        if (final_barrier_ && b == *final_barrier_) continue;
        if (!bd.fire_range(a).overlaps(bd.fire_range(b)) || bd.ordered(a, b))
          continue;
        if (std::find(rejected.begin(), rejected.end(),
                      std::pair{a, b}) != rejected.end())
          continue;
        if (!order_feasible({}, a, b)) {
          rejected.emplace_back(a, b);
          ++merges_skipped_;
          continue;
        }
        keep = a;
        victim = b;
        break;
      }
    }
    if (keep == kInvalidBarrier) return merges;
    // Merge: relabel the victim's stream entries, union the masks.
    BM_ASSERT_INTERNAL(!masks_[keep].intersects(masks_[victim]),
                       "unordered barriers cannot share a processor");
    masks_[keep] |= masks_[victim];
    alive_[victim] = false;
    masks_[victim].clear();
    for (auto& s : streams_)
      for (auto& e : s)
        if (e.is_barrier && e.id == victim) e.id = keep;
    invalidate();
    ++merges;
  }
}

void Schedule::remove_barrier(BarrierId b) {
  BM_REQUIRE(b != kInitialBarrier, "cannot remove the initial barrier");
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  if (final_barrier_ && *final_barrier_ == b) final_barrier_.reset();
  alive_[b] = false;
  masks_[b].clear();
  for (ProcId p = 0; p < num_procs(); ++p) {
    auto& s = streams_[p];
    const std::size_t before = s.size();
    s.erase(std::remove_if(s.begin(), s.end(),
                           [&](const ScheduleEntry& e) {
                             return e.is_barrier && e.id == b;
                           }),
            s.end());
    if (s.size() != before) reindex(p);
  }
  invalidate();
}

void Schedule::add_final_barrier() {
  BM_REQUIRE(!final_barrier_, "final barrier already added");
  std::vector<Loc> at;
  for (ProcId p = 0; p < num_procs(); ++p)
    if (instr_count(p) > 0)
      at.push_back({p, static_cast<std::uint32_t>(streams_[p].size())});
  if (at.size() < 2) return;
  final_barrier_ = insert_barrier(at);
}

void Schedule::set_final_barrier(BarrierId b) {
  BM_REQUIRE(!final_barrier_, "final barrier already set");
  BM_REQUIRE(b < masks_.size() && alive_[b], "barrier not alive");
  for (ProcId p = 0; p < num_procs(); ++p) {
    if (!masks_[b].test(p)) continue;
    const auto& s = streams_[p];
    BM_REQUIRE(!s.empty() && s.back().is_barrier && s.back().id == b,
               "final barrier must end every participating stream");
  }
  final_barrier_ = b;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  for (ProcId p = 0; p < num_procs(); ++p) {
    os << "P" << p << ':';
    for (const ScheduleEntry& e : streams_[p]) {
      if (e.is_barrier)
        os << " |B" << e.id << '|';
      else
        os << " n" << e.id;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace bm
