// The list scheduler for barrier MIMDs (§4): label, order, assign, and
// insert barriers. Produces the schedule plus the synchronization accounting
// the paper's evaluation (§5) is built on.
#pragma once

#include <memory>

#include "graph/instr_dag.hpp"
#include "sched/policies.hpp"
#include "sched/schedule.hpp"
#include "support/rng.hpp"

namespace bm {

/// Per-schedule synchronization accounting (§3.1 definitions).
struct ScheduleStats {
  std::size_t implied_syncs = 0;      ///< DAG edges (producer/consumer pairs)
  std::size_t serialized_edges = 0;   ///< producer and consumer share a PE
  std::size_t cross_edges = 0;        ///< implied - serialized
  std::size_t barriers_inserted = 0;  ///< insertions before merging
  std::size_t barriers_final = 0;     ///< alive barriers (excl. initial/final)
  std::size_t merges = 0;             ///< §4.4.3 merges
  std::size_t merges_skipped = 0;     ///< inversion-guard rejections (≈0)
  std::size_t repair_barriers = 0;    ///< soundness-sweep insertions (≈0)

  /// Cross-PE pairs resolved statically at check time — path- or
  /// timing-satisfied thanks to earlier barriers (the ≈28% effect, §3).
  std::size_t cross_path_satisfied = 0;
  std::size_t cross_timing_satisfied = 0;

  std::size_t procs_used = 0;
  TimeRange completion{0, 0};
  TimeRange critical_path{0, 0};

  // §3.1 fractions (0 when implied_syncs == 0).
  double barrier_fraction() const;
  double serialized_fraction() const;
  double static_fraction() const;
  /// Fraction of all implied syncs needing no run-time synchronization
  /// (serialized or static) — the paper's ">77%" headline.
  double no_runtime_sync_fraction() const {
    return serialized_fraction() + static_fraction();
  }
};

struct ScheduleResult {
  std::unique_ptr<Schedule> schedule;  ///< stable address; owns streams
  ScheduleStats stats;
};

/// Runs the full §4 pipeline on an instruction DAG. Tie-breaks consume
/// `rng`; the DAG must outlive the returned schedule.
ScheduleResult schedule_program(const InstrDag& dag,
                                const SchedulerConfig& config, Rng& rng);

}  // namespace bm
