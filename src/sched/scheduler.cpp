#include "sched/scheduler.hpp"

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "sched/insertion.hpp"
#include "sched/labels.hpp"
#include "support/assert.hpp"
#include "support/scratch.hpp"

namespace bm {

double ScheduleStats::barrier_fraction() const {
  if (implied_syncs == 0) return 0.0;
  return static_cast<double>(barriers_final) /
         static_cast<double>(implied_syncs);
}

double ScheduleStats::serialized_fraction() const {
  if (implied_syncs == 0) return 0.0;
  return static_cast<double>(serialized_edges) /
         static_cast<double>(implied_syncs);
}

double ScheduleStats::static_fraction() const {
  if (implied_syncs == 0) return 0.0;
  return 1.0 - barrier_fraction() - serialized_fraction();
}

namespace {

/// §4.3 step 1: processors where some producer of `node` is the last
/// instruction (serialization slot open). Fills a caller-owned buffer.
void serialization_candidates(const Schedule& sched,
                              std::span<const NodeId> preds,
                              std::vector<ProcId>& out) {
  out.clear();
  for (NodeId p : preds) {
    const ProcId proc = sched.loc(p).proc;
    const auto last = sched.last_instr(proc);
    if (!last || *last != p) continue;
    if (std::find(out.begin(), out.end(), proc) == out.end())
      out.push_back(proc);
  }
}

template <typename Key>
ProcId pick_best(const std::vector<ProcId>& procs, Rng& rng, Key&& key,
                 bool want_max, std::vector<ProcId>& ties) {
  BM_ASSERT_INTERNAL(!procs.empty(), "no processors to pick from");
  auto best = key(procs.front());
  ties.clear();
  ties.push_back(procs.front());
  for (std::size_t k = 1; k < procs.size(); ++k) {
    const auto v = key(procs[k]);
    const bool better = want_max ? v > best : v < best;
    if (better) {
      best = v;
      ties.clear();
      ties.push_back(procs[k]);
    } else if (v == best) {
      ties.push_back(procs[k]);
    }
  }
  return ties[rng.index(ties.size())];
}

class AssignmentEngine {
 public:
  AssignmentEngine(const InstrDag& dag, Schedule& sched,
                   const SchedulerConfig& cfg, Rng& rng,
                   const std::vector<NodeId>& order)
      : dag_(dag), sched_(sched), cfg_(cfg), rng_(rng), order_(order) {
    all_procs_.resize(sched.num_procs());
    for (ProcId p = 0; p < all_procs_.size(); ++p) all_procs_[p] = p;
    serial_.reserve(all_procs_.size());
    filtered_.reserve(all_procs_.size());
    ties_.reserve(all_procs_.size());
  }

  ProcId choose(std::size_t list_index, NodeId node) {
    if (cfg_.assignment == AssignmentPolicy::kRoundRobin)
      return static_cast<ProcId>(list_index % sched_.num_procs());

    serialization_candidates(sched_, dag_.instr_preds(node), serial_);
    if (serial_.size() == 1) {
      ++choice_serialize_;
      return serial_.front();
    }
    if (serial_.size() > 1) {
      // Largest current maximum time, "to possibly avoid inserting a
      // barrier"; full ties resolved randomly (§4.3 step 1).
      ++choice_serialize_;
      return pick_best(
          serial_, rng_,
          [&](ProcId p) { return sched_.proc_finish(p).max; },
          /*want_max=*/true, ties_);
    }
    // Step 2: schedule as early as possible; ties random (load balance).
    ++choice_earliest_;
    if (cfg_.assignment == AssignmentPolicy::kLookahead) {
      filter_lookahead(all_procs_, list_index, filtered_);
      if (!filtered_.empty()) {
        if (filtered_.size() < all_procs_.size())
          ++choice_lookahead_filtered_;
        return pick_best(
            filtered_, rng_,
            [&](ProcId p) { return sched_.proc_finish(p).min; },
            /*want_max=*/false, ties_);
      }
    }
    return pick_best(
        all_procs_, rng_,
        [&](ProcId p) { return sched_.proc_finish(p).min; },
        /*want_max=*/false, ties_);
  }

  /// Folds the per-choice tallies into the registry — called once per
  /// schedule; totals match the former bump-per-choose() exactly.
  void flush_choice_counts() const {
    if (choice_serialize_ > 0)
      BM_OBS_COUNT_N("sched.choice.serialize", choice_serialize_);
    if (choice_earliest_ > 0)
      BM_OBS_COUNT_N("sched.choice.earliest", choice_earliest_);
    if (choice_lookahead_filtered_ > 0)
      BM_OBS_COUNT_N("sched.choice.lookahead_filtered",
                     choice_lookahead_filtered_);
  }

 private:
  /// §5.4 lookahead: avoid processors whose open serialization slot (last
  /// instruction) is a producer of a node within the next `window` list
  /// entries — placing here would preclude that later serialization.
  void filter_lookahead(const std::vector<ProcId>& procs,
                        std::size_t list_index, std::vector<ProcId>& out) {
    out.clear();
    for (ProcId p : procs)
      if (!blocks_window_serialization(p, list_index)) out.push_back(p);
  }

  bool blocks_window_serialization(ProcId p, std::size_t list_index) {
    const auto last = sched_.last_instr(p);
    if (!last) return false;
    const std::size_t end =
        std::min(order_.size(), list_index + 1 + cfg_.lookahead_window);
    for (std::size_t k = list_index + 1; k < end; ++k)
      for (NodeId pred : dag_.instr_preds(order_[k]))
        if (pred == *last) return true;
    return false;
  }

  const InstrDag& dag_;
  Schedule& sched_;
  const SchedulerConfig& cfg_;
  Rng& rng_;
  const std::vector<NodeId>& order_;

  // Scratch buffers reused across choose() calls (identical contents and
  // rng draw sequence to the allocate-per-call version).
  std::vector<ProcId> all_procs_;   ///< 0..num_procs-1, fixed
  std::vector<ProcId> serial_, filtered_, ties_;

  // Per-schedule choice tallies, registry-folded by flush_choice_counts().
  std::uint64_t choice_serialize_ = 0;
  std::uint64_t choice_earliest_ = 0;
  std::uint64_t choice_lookahead_filtered_ = 0;
};

}  // namespace

ScheduleResult schedule_program(const InstrDag& dag,
                                const SchedulerConfig& config, Rng& rng) {
  BM_REQUIRE(config.num_procs >= 1, "need at least one processor");
  // Gauge, not counter: the target machine width of the most recent
  // schedule (last write wins; deterministic because sweeps set the same
  // value from every worker of a point and points run in order).
  BM_OBS_GAUGE_SET("sched.procs", config.num_procs);
  ScheduleResult result;
  result.schedule = std::make_unique<Schedule>(
      dag, config.num_procs, static_cast<Time>(config.barrier_latency));
  Schedule& sched = *result.schedule;
  ScheduleStats& stats = result.stats;

  const bool merge = config.machine == MachineKind::kSBM;
  ScratchVec<NodeId> order_s;  // pooled: schedule_program runs per seed
  std::vector<NodeId>& order = *order_s;
  {
    BM_OBS_SPAN(span, "sched.label_order", "sched");
    make_list_order_into(dag, config.ordering, order);
  }
  AssignmentEngine engine(dag, sched, config, rng, order);

  BM_OBS_SPAN_ARG(sched_span, "sched.list_schedule", "sched", "nodes",
                  static_cast<double>(order.size()));
  for (std::size_t k = 0; k < order.size(); ++k) {
    const NodeId node = order[k];
    const ProcId proc = engine.choose(k, node);
    sched.append_instr(proc, node);

    // Check every producer on another processor (§4.4); producers are
    // always already placed because heights order them first.
    for (NodeId p : dag.instr_preds(node)) {
      if (sched.loc(p).proc == proc) continue;
      const SyncOutcome outcome =
          ensure_sync(sched, p, node, config.insertion, merge);
      switch (outcome.kind) {
        case SyncOutcome::Kind::kPathSatisfied:
          ++stats.cross_path_satisfied;
          break;
        case SyncOutcome::Kind::kTimingSatisfied:
          ++stats.cross_timing_satisfied;
          break;
        case SyncOutcome::Kind::kBarrierInserted:
          ++stats.barriers_inserted;
          stats.merges += outcome.merges;
          break;
        case SyncOutcome::Kind::kSerialized:
          BM_ASSERT_INTERNAL(false, "cross-proc pair reported serialized");
      }
    }
  }

  // Soundness sweep: retroactive placement and merging can, in rare corner
  // cases, disturb an earlier static resolution; re-verify every cross-PE
  // edge against the final dag and repair until a fixpoint.
  if (config.repair_sweep) {
    BM_OBS_SPAN(repair_span, "sched.repair_sweep", "sched");
    bool changed = true;
    std::size_t rounds = 0;
    while (changed) {
      changed = false;
      BM_REQUIRE(++rounds <= dag.sync_edges().size() + 2,
                 "repair sweep failed to converge");
      for (const auto& [g, i] : dag.sync_edges()) {
        if (sched.loc(g).proc == sched.loc(i).proc) continue;
        if (sync_satisfied(sched, g, i, config.insertion)) continue;
        const SyncOutcome outcome =
            ensure_sync(sched, g, i, config.insertion, merge);
        BM_ASSERT_INTERNAL(
            outcome.kind == SyncOutcome::Kind::kBarrierInserted,
            "unsatisfied edge produced no barrier");
        ++stats.repair_barriers;
        stats.merges += outcome.merges;
        changed = true;
      }
    }
  }

  if (config.add_final_barrier) sched.add_final_barrier();

  // §3.1 accounting.
  stats.implied_syncs = dag.implied_syncs();
  for (const auto& [g, i] : dag.sync_edges())
    if (sched.loc(g).proc == sched.loc(i).proc) ++stats.serialized_edges;
  stats.cross_edges = stats.implied_syncs - stats.serialized_edges;
  stats.barriers_final = sched.inserted_barrier_count();
  stats.merges_skipped = sched.merges_skipped();
  for (ProcId p = 0; p < sched.num_procs(); ++p)
    if (sched.instr_count(p) > 0) ++stats.procs_used;
  stats.completion = sched.completion();
  stats.critical_path = dag.critical_path();

  // Bulk-fold the per-schedule accounting into the global registry once per
  // benchmark (cheaper than counting inside the hot loop, and the totals
  // are identical).
  BM_OBS_COUNT("sched.schedules");
  engine.flush_choice_counts();
  BM_OBS_COUNT_N("sched.implied_syncs", stats.implied_syncs);
  BM_OBS_COUNT_N("sched.serialized_edges", stats.serialized_edges);
  BM_OBS_COUNT_N("sched.barriers_inserted",
                 stats.barriers_inserted + stats.repair_barriers);
  BM_OBS_COUNT_N("sched.barriers_final", stats.barriers_final);
  BM_OBS_COUNT_N("sched.barriers_merged", stats.merges);
  BM_OBS_COUNT_N("sched.merges_skipped", stats.merges_skipped);
  BM_OBS_COUNT_N("sched.repair_barriers", stats.repair_barriers);
  BM_OBS_COUNT_N("sched.path_satisfied", stats.cross_path_satisfied);
  BM_OBS_COUNT_N("sched.timing_satisfied", stats.cross_timing_satisfied);
  return result;
}

}  // namespace bm
