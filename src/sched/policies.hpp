// Scheduler configuration: machine kind (SBM/DBM), barrier-insertion
// algorithm, node-ordering priority, and node-assignment heuristic —
// including the §5.4 ablation variants.
#pragma once

#include <cstddef>
#include <string_view>

namespace bm {

/// §3.2: the static barrier MIMD orders barriers at compile time (mask FIFO)
/// and therefore merges unordered overlapping barriers (§4.4.3); the dynamic
/// barrier MIMD matches associatively and needs no merging.
enum class MachineKind { kSBM, kDBM };

/// §4.4.1 conservative vs §4.4.2 "optimal" barrier insertion.
enum class InsertionPolicy { kConservative, kOptimal };

/// §4.2 node ordering: maximum height first (default) or the §5.4 ablation
/// with minimum height as the primary key.
enum class OrderingPolicy { kMaxThenMin, kMinThenMax };

/// §4.3 node assignment: the serialize-or-earliest list heuristic (default),
/// the §5.4 round-robin ablation, or list assignment with a serialization
/// lookahead window.
enum class AssignmentPolicy { kListSerialize, kRoundRobin, kLookahead };

struct SchedulerConfig {
  std::size_t num_procs = 8;
  MachineKind machine = MachineKind::kSBM;

  /// Hardware barrier cost: cycles from the last participant's arrival to
  /// the synchronized release. The paper's experiments assume 0 ("barriers
  /// were assumed to always execute immediately", §5); the companion
  /// hardware paper motivates small values. Charged in the static analysis
  /// and by the simulators.
  long barrier_latency = 0;
  InsertionPolicy insertion = InsertionPolicy::kConservative;
  OrderingPolicy ordering = OrderingPolicy::kMaxThenMin;
  AssignmentPolicy assignment = AssignmentPolicy::kListSerialize;
  std::size_t lookahead_window = 4;  ///< used when assignment == kLookahead

  /// Append a barrier across all used processors after the last instruction
  /// (machine rejoin). Never counted in the barrier fraction.
  bool add_final_barrier = true;

  /// Post-scheduling fixpoint re-verification of every cross-processor edge,
  /// inserting repair barriers where retroactive placement or merging
  /// disturbed an earlier static resolution. The paper does not describe
  /// this guard; with its algorithms repairs are empirically (near) zero,
  /// and the sweep guarantees soundness by construction.
  bool repair_sweep = true;
};

std::string_view to_string(MachineKind k);
std::string_view to_string(InsertionPolicy p);
std::string_view to_string(OrderingPolicy p);
std::string_view to_string(AssignmentPolicy p);

}  // namespace bm
