// Plain-text schedule serialization: lets tools dump a schedule, diff it,
// and reload it against the same program for simulation or inspection.
//
// Format (line oriented):
//   schedule v1
//   procs <N> instrs <M> barriers <K>
//   barrier <id> mask <p0,p1,...> [final]
//   P<p>: n<i> B<b> ...
// Only alive barriers are listed; the initial barrier (id 0, all
// processors) is implicit and never appears in streams.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace bm {

/// Serializes the schedule (streams + alive barrier masks).
std::string schedule_to_text(const Schedule& sched);

/// Parses a schedule against `dag` (which supplies instruction count and
/// execution times). Throws bm::Error on malformed input, out-of-range ids,
/// duplicate placements, masks inconsistent with stream occurrences, or an
/// infeasible barrier order.
Schedule schedule_from_text(const InstrDag& dag, const std::string& text);

}  // namespace bm
