#include "sched/insertion.hpp"

#include <array>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/scratch.hpp"

namespace bm {

namespace {

/// Bound on the §4.4.2 path enumeration; if exceeded we fall back to the
/// conservative answer (insert a barrier). Never reached on block-sized
/// barrier dags in practice.
constexpr std::size_t kMaxEnumeratedPaths = 4096;

struct PairContext {
  ProcId producer_proc, consumer_proc;
  std::uint32_t producer_pos, consumer_pos;
  BarrierId last_bar_g, last_bar_i;
  BarrierId common_dom;
  Time delta_max_g;   ///< max time from after LastBar(g) through g
  Time delta_min_i;   ///< min time from after LastBar(i) up to (not incl.) i
};

PairContext make_context(const Schedule& sched, NodeId g, NodeId i) {
  const Schedule::Loc lg = sched.loc(g);
  const Schedule::Loc li = sched.loc(i);
  PairContext ctx;
  ctx.producer_proc = lg.proc;
  ctx.consumer_proc = li.proc;
  ctx.producer_pos = lg.pos;
  ctx.consumer_pos = li.pos;
  ctx.last_bar_g = sched.last_barrier_before(lg.proc, lg.pos);
  ctx.last_bar_i = sched.last_barrier_before(li.proc, li.pos);
  ctx.common_dom =
      sched.barrier_dag().common_dominator(ctx.last_bar_g, ctx.last_bar_i);
  ctx.delta_max_g = sched.delta_through(lg.proc, lg.pos).max;
  ctx.delta_min_i = sched.delta_before(li.proc, li.pos).min;
  return ctx;
}

/// §4.4.1 step 1 (PathFind): a barrier chain NextBar(g) →* LastBar(i)
/// already orders g before i.
bool path_satisfied(const Schedule& sched, const PairContext& ctx) {
  const auto next_bar_g =
      sched.next_barrier_after(ctx.producer_proc, ctx.producer_pos);
  return next_bar_g &&
         sched.barrier_dag().path_exists(*next_bar_g, ctx.last_bar_i);
}

/// §4.4.1 steps 2–5: single longest-path timing check.
bool conservative_timing_satisfied(const Schedule& sched,
                                   const PairContext& ctx) {
  const BarrierDag& bd = sched.barrier_dag();
  const Time t_max_g =
      bd.psi_max(ctx.common_dom, ctx.last_bar_g) + ctx.delta_max_g;
  const Time t_min_i =
      bd.psi_min(ctx.common_dom, ctx.last_bar_i) + ctx.delta_min_i;
  return t_min_i >= t_max_g;
}

/// §4.4.2: walk the k-longest producer-side paths; for each, recompute the
/// consumer-side longest path with overlapping edges forced to their max.
bool optimal_timing_satisfied(const Schedule& sched, const PairContext& ctx) {
  const BarrierDag& bd = sched.barrier_dag();
  const Time base_min =
      bd.psi_min(ctx.common_dom, ctx.last_bar_i) + ctx.delta_min_i;

  auto paths = bd.max_paths(ctx.common_dom, ctx.last_bar_g);
  ScratchVec<BarrierId> path_s;
  ScratchVec<std::pair<BarrierId, BarrierId>> overlap_s;
  std::vector<BarrierId>& path = *path_s;
  std::vector<std::pair<BarrierId, BarrierId>>& overlap_edges = *overlap_s;
  Time length = 0;
  std::size_t enumerated = 0;
  while (paths.next(path, length)) {
    if (length + ctx.delta_max_g <= base_min) return true;  // rest is shorter
    if (++enumerated > kMaxEnumeratedPaths) return false;   // give up safely
    overlap_edges.clear();
    for (std::size_t k = 0; k + 1 < path.size(); ++k)
      overlap_edges.emplace_back(path[k], path[k + 1]);
    const Time adjusted =
        bd.psi_min_star(ctx.common_dom, ctx.last_bar_i, overlap_edges) +
        ctx.delta_min_i;
    if (length + ctx.delta_max_g > adjusted) return false;
  }
  return true;  // every producer-side path individually dominated
}

bool timing_satisfied(const Schedule& sched, const PairContext& ctx,
                      InsertionPolicy policy) {
  return policy == InsertionPolicy::kConservative
             ? conservative_timing_satisfied(sched, ctx)
             : optimal_timing_satisfied(sched, ctx);
}

/// §4.4.1 step 6 producer-side placement: right after g, unless the
/// consumer side's worst case extends past g — then after the g⁺ whose
/// max-time execution window covers T_max(i⁻) (or at the segment end).
std::uint32_t producer_side_position(const Schedule& sched,
                                     const PairContext& ctx) {
  const BarrierDag& bd = sched.barrier_dag();
  const Time t_max_i_minus =
      bd.psi_max(ctx.common_dom, ctx.last_bar_i) +
      sched.delta_before(ctx.consumer_proc, ctx.consumer_pos).max;
  Time t_max_end =
      bd.psi_max(ctx.common_dom, ctx.last_bar_g) + ctx.delta_max_g;

  std::uint32_t pos = ctx.producer_pos + 1;
  const auto& stream = sched.stream(ctx.producer_proc);
  while (t_max_end < t_max_i_minus && pos < stream.size() &&
         !stream[pos].is_barrier) {
    t_max_end += sched.instr_dag().time(stream[pos].id).max;
    ++pos;  // barrier goes after this g⁺
  }
  if (pos > ctx.producer_pos + 1) BM_OBS_COUNT("sched.gplus_placements");
  return pos;
}

}  // namespace

bool sync_satisfied(const Schedule& sched, NodeId g, NodeId i,
                    InsertionPolicy policy) {
  BM_REQUIRE(sched.placed(g) && sched.placed(i), "both nodes must be placed");
  const Schedule::Loc lg = sched.loc(g);
  const Schedule::Loc li = sched.loc(i);
  if (lg.proc == li.proc) {
    BM_REQUIRE(lg.pos < li.pos, "producer must precede consumer in stream");
    return true;
  }
  const PairContext ctx = make_context(sched, g, i);
  return path_satisfied(sched, ctx) || timing_satisfied(sched, ctx, policy);
}

namespace {

/// Inserts a barrier enforcing g→i: the consumer side goes just before i;
/// the producer side prefers the paper's g⁺ position, but any position
/// after g is tried until one keeps the joint order feasible (no placement
/// may force some other consumer's region to complete before its producer —
/// see Schedule::order_feasible). Given the feasibility invariant, a
/// feasible position always exists: the candidate range (after g, before
/// the first producer-processor entry reachable from i) is non-empty, or a
/// cycle would already exist.
void insert_barrier_guarded(Schedule& sched, const PairContext& ctx) {
  std::array<Schedule::Loc, 2> locs{{{ctx.producer_proc, 0},
                                     {ctx.consumer_proc, ctx.consumer_pos}}};
  const std::uint32_t paper_pos = producer_side_position(sched, ctx);
  locs[0].pos = paper_pos;
  if (sched.order_feasible(locs)) {
    sched.insert_barrier(locs);
    return;
  }
  const auto stream_size =
      static_cast<std::uint32_t>(sched.stream(ctx.producer_proc).size());
  for (std::uint32_t pos = ctx.producer_pos + 1; pos <= stream_size; ++pos) {
    if (pos == paper_pos) continue;
    locs[0].pos = pos;
    if (sched.order_feasible(locs)) {
      sched.insert_barrier(locs);
      return;
    }
  }
  BM_ASSERT_INTERNAL(false,
                     "no feasible barrier placement: order invariant broken");
}

}  // namespace

SyncOutcome ensure_sync(Schedule& sched, NodeId g, NodeId i,
                        InsertionPolicy policy, bool merge_barriers) {
  BM_REQUIRE(sched.placed(g) && sched.placed(i), "both nodes must be placed");
  SyncOutcome outcome;
  const Schedule::Loc lg = sched.loc(g);
  const Schedule::Loc li = sched.loc(i);
  if (lg.proc == li.proc) {
    BM_REQUIRE(lg.pos < li.pos, "producer must precede consumer in stream");
    outcome.kind = SyncOutcome::Kind::kSerialized;
    return outcome;
  }

  const PairContext ctx = make_context(sched, g, i);
  if (path_satisfied(sched, ctx)) {
    outcome.kind = SyncOutcome::Kind::kPathSatisfied;
    return outcome;
  }
  if (timing_satisfied(sched, ctx, policy)) {
    outcome.kind = SyncOutcome::Kind::kTimingSatisfied;
    return outcome;
  }

  insert_barrier_guarded(sched, ctx);
  outcome.kind = SyncOutcome::Kind::kBarrierInserted;
  // Attribute every insertion to the timing analysis that failed to prove
  // the ordering; conservative (§4.4.1) can only over-insert relative to
  // the per-path §4.4.2 analysis on identical schedule states.
  if (policy == InsertionPolicy::kConservative)
    BM_OBS_COUNT("sched.insert.conservative");
  else
    BM_OBS_COUNT("sched.insert.optimal");
  if (merge_barriers) outcome.merges = sched.merge_overlapping_all();
  // Merging may have replaced the barrier we just inserted; report the
  // surviving barrier now guarding the consumer.
  outcome.barrier = sched.last_barrier_before(ctx.consumer_proc,
                                              sched.loc(i).pos);
  return outcome;
}

}  // namespace bm
