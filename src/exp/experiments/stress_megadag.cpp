// Scale extension — mega-DAG stress: drives the streaming CSR dag build,
// the fused labeling sweeps, the bucket list-order passes, and the VLIW
// packer on a million-statement block, three orders of magnitude past any
// paper workload. Artifact metrics are deterministic (structure sums and
// digests); wall-clock phase timings print to the console only, so reruns
// and --jobs variations stay byte-identical.
#include <chrono>

#include "exp/registry.hpp"
#include "graph/instr_dag.hpp"
#include "harness/report.hpp"
#include "sched/labels.hpp"
#include "support/rng.hpp"
#include "vliw/vliw.hpp"

namespace bm {
namespace {

/// Deterministic mega-block builder. A direct tuple stream rather than the
/// §2.2 expression generator (whose statement trees would dominate the
/// runtime): operands are drawn from a 64-tuple recency window so the dag
/// stays deep with bounded degree, and stores recycle a small variable set
/// so memory edges (flow/anti/output) appear at scale too.
Program build_mega_program(std::size_t stmts, std::uint32_t vars, Rng& rng) {
  Program p(vars);
  std::uint32_t uid = 0;
  auto var = [&] {
    return static_cast<VarId>(
        rng.uniform(0, static_cast<std::int64_t>(vars) - 1));
  };
  for (std::size_t i = 0; i < stmts; ++i) {
    const std::int64_t roll = i < 2 ? 0 : rng.uniform(0, 9);
    if (roll < 2) {
      p.append(Tuple::load(uid++, var()));
    } else if (roll < 9) {
      auto recent = [&] {
        const auto hi = static_cast<std::int64_t>(i) - 1;
        const std::int64_t lo = hi >= 64 ? hi - 63 : 0;
        return Operand::tuple(static_cast<TupleId>(rng.uniform(lo, hi)));
      };
      const Opcode op = roll % 2 == 0 ? Opcode::kAdd : Opcode::kMul;
      p.append(Tuple::binary(uid++, op, recent(), recent()));
    } else {
      const auto hi = static_cast<std::int64_t>(i) - 1;
      const std::int64_t lo = hi >= 64 ? hi - 63 : 0;
      p.append(Tuple::store(
          uid++, var(),
          Operand::tuple(static_cast<TupleId>(rng.uniform(lo, hi)))));
    }
  }
  return p;
}

Experiment make_stress_megadag() {
  Experiment e;
  e.name = "stress_megadag";
  e.title = "mega-DAG stress — streaming CSR build and labeling at scale";
  e.paper_ref = "§4.1 (scale extension; no paper figure)";
  e.workload = "one directly built block of --stmts tuples (default 10^6)";
  e.expected =
      "Expected shape: build, labeling, and both list orders complete in "
      "seconds on a million-statement block — the dag core is streaming "
      "CSR construction plus fused straight-line label sweeps, so the cost "
      "is linear in edges. Structure metrics (sync edges, critical path, "
      "digests) are deterministic per seed.";
  e.flags = common_flags(1);
  e.flags.push_back(int_flag("stmts", 1000000, "tuples in the block"));
  e.flags.push_back(int_flag("vars", 64, "variables the stores recycle"));
  e.flags.push_back(int_flag("procs", 8, "VLIW functional units"));
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const std::size_t stmts = ctx.get_size("stmts");
    const std::uint32_t vars = ctx.get_u32("vars");
    const std::size_t procs = ctx.get_size("procs");
    BM_REQUIRE(stmts >= 2 && vars >= 1, "need at least 2 stmts and 1 var");

    using Clock = std::chrono::steady_clock;
    auto ms = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };

    TextTable table({"seed", "stmts", "sync edges", "t_cr", "vliw makespan",
                     "gen ms", "dag ms", "order ms", "vliw ms"});
    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"seed", "stmts", "sync_edges", "tcr_min", "tcr_max",
                   "h_max_sum", "order_digest", "vliw_makespan"});
    for (std::size_t i = 0; i < opt.seeds; ++i) {
      Rng rng = benchmark_rng(opt.base_seed, i);
      const auto t0 = Clock::now();
      const Program prog = build_mega_program(stmts, vars, rng);
      const auto t1 = Clock::now();
      const InstrDag dag = InstrDag::build(prog, TimingModel::table1());
      const auto t2 = Clock::now();
      // Both ordering policies, digested positionally so any reordering or
      // dropped node changes the value.
      std::uint64_t digest = 1469598103934665603ull;  // FNV-1a
      double h_max_sum = 0;
      std::vector<NodeId> order;
      for (const OrderingPolicy pol :
           {OrderingPolicy::kMaxThenMin, OrderingPolicy::kMinThenMax}) {
        make_list_order_into(dag, pol, order);
        for (const NodeId v : order) {
          digest = (digest ^ v) * 1099511628211ull;
        }
      }
      for (NodeId v = 0; v < dag.num_instructions(); ++v)
        h_max_sum += static_cast<double>(dag.h_max(v));
      const auto t3 = Clock::now();
      const VliwSchedule vliw =
          schedule_vliw(dag, procs, OrderingPolicy::kMaxThenMin);
      const auto t4 = Clock::now();

      const std::string seed = std::to_string(i);
      table.add_row({seed, std::to_string(stmts),
                     std::to_string(dag.implied_syncs()),
                     dag.critical_path().to_string(),
                     std::to_string(vliw.makespan), TextTable::num(ms(t0, t1), 1),
                     TextTable::num(ms(t1, t2), 1), TextTable::num(ms(t2, t3), 1),
                     TextTable::num(ms(t3, t4), 1)});
      // Digest folded to 32 bits: metric values are doubles, and 2^32 keeps
      // the integer exactly representable.
      const double digest32 = static_cast<double>(digest & 0xFFFFFFFFull);
      csv.write_row({seed, std::to_string(stmts),
                     std::to_string(dag.implied_syncs()),
                     std::to_string(dag.critical_path().min),
                     std::to_string(dag.critical_path().max),
                     std::to_string(h_max_sum), std::to_string(digest32),
                     std::to_string(vliw.makespan)});
      ctx.artifacts().metric("seed" + seed + ".sync_edges",
                             static_cast<double>(dag.implied_syncs()));
      ctx.artifacts().metric("seed" + seed + ".tcr_max",
                             static_cast<double>(dag.critical_path().max));
      ctx.artifacts().metric("seed" + seed + ".order_digest", digest32);
      ctx.artifacts().metric("seed" + seed + ".vliw_makespan",
                             static_cast<double>(vliw.makespan));
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_stress_megadag)

}  // namespace
}  // namespace bm
