// §5.4c ablation — serialization lookahead window.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_ablation_lookahead() {
  Experiment e;
  e.name = "ablation_lookahead";
  e.title = "§5.4c — serialization lookahead ablation";
  e.paper_ref = "§5.4";
  e.workload = "60 statements, 10 variables; lookahead window p";
  e.expected =
      "Paper: lookahead raises serialization modestly; on few PEs it "
      "lengthens the critical path (+10..30% execution time); the effect "
      "vanishes on many PEs.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.flags.push_back(int_flag("window", 4, "lookahead window p"));
  e.sweeps = {{"procs", {2, 4, 8, 16, 32}}, {"window", {1, 2, 4, 8, 16}}};
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    const auto window = ctx.get_size("window");
    const Sweep& procs_sweep = ctx.sweep("procs");

    TextTable table({"#PEs", "policy", "serialized", "barrier", "compl min",
                     "compl max"});
    const std::string path = ctx.artifacts().csv_path();
    CsvWriter csv(path);
    csv.write_row({"procs", "policy", "serialized_frac", "barrier_frac",
                   "completion_min", "completion_max"});
    SchedulerConfig cfg;
    cfg.lookahead_window = window;
    for (std::size_t i = 0; i < procs_sweep.values.size(); ++i) {
      cfg.num_procs = static_cast<std::size_t>(procs_sweep.values[i]);
      for (AssignmentPolicy policy :
           {AssignmentPolicy::kListSerialize, AssignmentPolicy::kLookahead}) {
        cfg.assignment = policy;
        const PointAggregate agg = run_point(gen, cfg, opt);
        const FractionAggregate& f = agg.fractions;
        table.add_row({procs_sweep.label(i), std::string(to_string(policy)),
                       TextTable::pct(f.serialized_frac.mean()),
                       TextTable::pct(f.barrier_frac.mean()),
                       TextTable::num(f.completion_min.mean(), 1),
                       TextTable::num(f.completion_max.mean(), 1)});
        csv.write_row({procs_sweep.label(i), std::string(to_string(policy)),
                       std::to_string(f.serialized_frac.mean()),
                       std::to_string(f.barrier_frac.mean()),
                       std::to_string(f.completion_min.mean()),
                       std::to_string(f.completion_max.mean())});
      }
    }
    table.render(ctx.out());

    // Window-size sweep at a fixed machine size.
    ctx.out() << "\nwindow-size sweep (4 PEs):\n";
    const Sweep& window_sweep = ctx.sweep("window");
    TextTable wtable(
        {"window p", "serialized", "barrier", "compl min", "compl max"});
    const std::string wpath = ctx.artifacts().csv_path("ablation_lookahead_window");
    CsvWriter wcsv(wpath);
    wcsv.write_row({"window", "serialized_frac", "barrier_frac",
                    "completion_min", "completion_max"});
    cfg.num_procs = 4;
    cfg.assignment = AssignmentPolicy::kLookahead;
    for (std::size_t i = 0; i < window_sweep.values.size(); ++i) {
      cfg.lookahead_window = static_cast<std::size_t>(window_sweep.values[i]);
      const PointAggregate agg = run_point(gen, cfg, opt);
      const FractionAggregate& f = agg.fractions;
      wtable.add_row({window_sweep.label(i),
                      TextTable::pct(f.serialized_frac.mean()),
                      TextTable::pct(f.barrier_frac.mean()),
                      TextTable::num(f.completion_min.mean(), 1),
                      TextTable::num(f.completion_max.mean(), 1)});
      wcsv.write_row({window_sweep.label(i),
                      std::to_string(f.serialized_frac.mean()),
                      std::to_string(f.barrier_frac.mean()),
                      std::to_string(f.completion_min.mean()),
                      std::to_string(f.completion_max.mean())});
      ctx.artifacts().metric("window=" + window_sweep.label(i) +
                                 ".serialized_frac",
                             f.serialized_frac.mean());
    }
    wtable.render(ctx.out());
    ctx.out() << "(series written to " << path << " and " << wpath << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_ablation_lookahead)

}  // namespace
}  // namespace bm
