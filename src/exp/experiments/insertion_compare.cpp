// §4.4.1 vs §4.4.2 — conservative vs "optimal" barrier insertion, on both
// machines. Wall-clock scheduling time is printed but deliberately kept out
// of the artifacts so reruns stay byte-identical.
#include <chrono>

#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_insertion_compare() {
  Experiment e;
  e.name = "insertion_compare";
  e.title = "§4.4 — conservative vs optimal barrier insertion";
  e.paper_ref = "§4.4.1 / §4.4.2 (footnote 5)";
  e.workload = "60 statements, 10 variables; both machines";
  e.expected =
      "Expectation: the optimal check never inserts more barriers, at extra "
      "analysis cost (k-longest-path loop); the paper used the conservative "
      "algorithm for all experiments.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();

    TextTable table({"machine", "insertion", "barriers/blk", "inserted/blk",
                     "static frac", "compl max", "sched time/blk"});
    const std::string path = ctx.artifacts().csv_path();
    CsvWriter csv(path);
    csv.write_row({"machine", "insertion", "barriers", "inserted",
                   "static_frac", "completion_max"});
    for (MachineKind machine : {MachineKind::kSBM, MachineKind::kDBM}) {
      for (InsertionPolicy insertion :
           {InsertionPolicy::kConservative, InsertionPolicy::kOptimal}) {
        SchedulerConfig cfg = ctx.scheduler_config();
        cfg.machine = machine;
        cfg.insertion = insertion;
        const auto start = std::chrono::steady_clock::now();
        const PointAggregate agg = run_point(gen, cfg, opt);
        const auto elapsed = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - start)
                                 .count() /
                             static_cast<double>(opt.seeds);
        const FractionAggregate& f = agg.fractions;
        table.add_row({std::string(to_string(machine)),
                       std::string(to_string(insertion)),
                       TextTable::num(f.barriers.mean(), 2),
                       TextTable::num(f.barriers_inserted.mean(), 2),
                       TextTable::pct(f.static_frac.mean()),
                       TextTable::num(f.completion_max.mean(), 1),
                       TextTable::num(elapsed, 0) + "us"});
        csv.write_row({std::string(to_string(machine)),
                       std::string(to_string(insertion)),
                       std::to_string(f.barriers.mean()),
                       std::to_string(f.barriers_inserted.mean()),
                       std::to_string(f.static_frac.mean()),
                       std::to_string(f.completion_max.mean())});
        ctx.artifacts().metric(std::string(to_string(machine)) + "." +
                                   std::string(to_string(insertion)) +
                                   ".barriers",
                               f.barriers.mean());
      }
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_insertion_compare)

}  // namespace
}  // namespace bm
