// Table 1: instruction frequencies and execution-time ranges, measured on
// a large corpus of synthetic blocks against the published
// Alexander–Wortman frequencies.
#include <map>

#include "codegen/synthesize.hpp"
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_table1() {
  Experiment e;
  e.name = "table1";
  e.title = "Table 1 — instruction mix and execution-time ranges";
  e.paper_ref = "Table 1 (§2.1)";
  e.workload = "40 statements, 10 variables, large corpus";
  e.expected =
      "Check: source frequencies must match Table 1 within sampling noise; "
      "Load/Store rates are emergent.";
  e.flags = common_flags(2000);
  e.flags.push_back(int_flag("statements", 40, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.csv_stem = "table1_instruction_mix";
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();

    std::map<Opcode, std::size_t> source_ops;   // statement operations
    std::map<Opcode, std::size_t> emitted_ops;  // optimized tuple opcodes
    std::size_t source_total = 0, emitted_total = 0;
    for (std::size_t i = 0; i < opt.seeds; ++i) {
      Rng rng = benchmark_rng(opt.base_seed, i);
      const SynthesisResult r = synthesize_benchmark(gen, rng);
      for (const Assign& s : r.statements) {
        ++source_ops[s.op];
        ++source_total;
      }
      for (const Tuple& t : r.program.tuples()) {
        ++emitted_ops[t.op];
        ++emitted_total;
      }
    }

    const TimingModel tm = TimingModel::table1();
    TextTable table({"Instruction", "Table-1 freq", "source freq",
                     "optimized-tuple freq", "Min. Time", "Max. Time"});
    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"instruction", "table1_freq_pct", "source_freq_pct",
                   "tuple_freq_pct", "min_time", "max_time"});
    for (Opcode op : all_opcodes()) {
      const double expected = opcode_frequency_percent(op);
      const double source = 100.0 * static_cast<double>(source_ops[op]) /
                            static_cast<double>(source_total);
      const double emitted = 100.0 * static_cast<double>(emitted_ops[op]) /
                             static_cast<double>(emitted_total);
      table.add_row(
          {std::string(opcode_name(op)),
           is_binary_op(op) ? TextTable::num(expected, 1) + "%" : "—",
           is_binary_op(op) ? TextTable::num(source, 1) + "%" : "—",
           TextTable::num(emitted, 1) + "%", std::to_string(tm.range(op).min),
           std::to_string(tm.range(op).max)});
      csv.write_row({std::string(opcode_name(op)),
                     is_binary_op(op) ? std::to_string(expected) : "",
                     is_binary_op(op) ? std::to_string(source) : "",
                     std::to_string(emitted), std::to_string(tm.range(op).min),
                     std::to_string(tm.range(op).max)});
      if (is_binary_op(op))
        ctx.artifacts().metric("source_freq_pct." +
                                   std::string(opcode_name(op)),
                               source);
    }
    table.render(ctx.out());
    ctx.out() << "(mix written to " << path << ")\n"
              << "\nSource operations drawn: " << source_total
              << "; optimized tuples: " << emitted_total << ".\n";
    ctx.artifacts().metric("source_operations",
                           static_cast<double>(source_total));
    ctx.artifacts().metric("optimized_tuples",
                           static_cast<double>(emitted_total));
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_table1)

}  // namespace
}  // namespace bm
