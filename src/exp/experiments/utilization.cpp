// Machine-utilization decomposition across machine presets and sizes
// (extension; runtime view of §5's fractions).
#include "exp/registry.hpp"
#include "harness/report.hpp"
#include "machine/presets.hpp"
#include "sim/analysis.hpp"

namespace bm {
namespace {

Experiment make_utilization() {
  Experiment e;
  e.name = "utilization";
  e.title = "machine utilization — compute vs barrier wait vs idle";
  e.paper_ref = "extension (runtime view of §5's fractions)";
  e.workload = "60 statements, 10 variables; presets × machine sizes";
  e.expected =
      "Expected shape: utilization falls as PEs grow past the parallelism "
      "width (more idle processors); barrier-wait share rises with wider "
      "timing variation and barrier latency.";
  e.flags = common_flags(60);
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.sweeps = {{"procs", {2, 4, 8, 16}}};
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    const Sweep& sweep = ctx.sweep("procs");

    TextTable table({"machine", "#PEs", "utilization", "busy", "barrier wait",
                     "idle", "mean compl"});
    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"machine", "procs", "utilization", "busy_frac",
                   "wait_frac", "idle_frac", "mean_completion"});
    for (const MachineDescription& m : machine_presets()) {
      for (std::size_t pi = 0; pi < sweep.values.size(); ++pi) {
        const std::size_t procs = static_cast<std::size_t>(sweep.values[pi]);
        RunningStats util, busy, wait, idle, completion_stats;
        for (std::size_t i = 0; i < opt.seeds; ++i) {
          Rng rng = benchmark_rng(opt.base_seed, i);
          const SynthesisResult s = synthesize_benchmark(gen, rng);
          const InstrDag dag = InstrDag::build(s.program, m.timing);
          SchedulerConfig cfg;
          cfg.num_procs = procs;
          cfg.barrier_latency = m.barrier_latency;
          const ScheduleResult r = schedule_program(dag, cfg, rng);
          for (int run = 0; run < 3; ++run) {
            const ExecTrace t = simulate(
                *r.schedule, {cfg.machine, SamplingMode::kUniform}, rng);
            const TraceAnalysis a = analyze_trace(*r.schedule, t);
            util.add(a.machine_utilization());
            const double total = static_cast<double>(
                a.total_busy + a.total_barrier_wait + a.total_idle);
            if (total > 0) {
              busy.add(static_cast<double>(a.total_busy) / total);
              wait.add(static_cast<double>(a.total_barrier_wait) / total);
              idle.add(static_cast<double>(a.total_idle) / total);
            }
            completion_stats.add(static_cast<double>(t.completion));
          }
        }
        table.add_row({m.name, sweep.label(pi), TextTable::pct(util.mean()),
                       TextTable::pct(busy.mean()),
                       TextTable::pct(wait.mean()),
                       TextTable::pct(idle.mean()),
                       TextTable::num(completion_stats.mean(), 1)});
        csv.write_row({m.name, sweep.label(pi), std::to_string(util.mean()),
                       std::to_string(busy.mean()),
                       std::to_string(wait.mean()),
                       std::to_string(idle.mean()),
                       std::to_string(completion_stats.mean())});
        ctx.artifacts().metric(m.name + ".procs=" + sweep.label(pi) +
                                   ".utilization",
                               util.mean());
      }
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_utilization)

}  // namespace
}  // namespace bm
