// Figure 16: synchronization fractions vs number of variables.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_fig16() {
  Experiment e;
  e.name = "fig16";
  e.title = "Figure 16 — sync fractions vs number of variables";
  e.paper_ref = "Fig. 16 (§5.2)";
  e.workload = "8 PEs, 60 statements, variables 2..15";
  e.expected =
      "Paper shape: barrier fraction rises then levels off once parallelism "
      "width exceeds the 8 PEs; serialization falls.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.sweeps = {
      {"variables", {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}}};
  e.csv_stem = "fig16_variables";
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    SchedulerConfig cfg = ctx.scheduler_config();
    GeneratorConfig gen = ctx.generator_config();
    const Sweep& sweep = ctx.sweep("variables");
    std::vector<SeriesRow> rows;
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
      gen.num_variables = static_cast<std::uint32_t>(sweep.values[i]);
      rows.push_back({sweep.label(i), run_point(gen, cfg, opt)});
    }
    print_fraction_series("#variables", rows, &ctx.artifacts(),
                          ctx.exp().csv_stem);
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_fig16)

}  // namespace
}  // namespace bm
