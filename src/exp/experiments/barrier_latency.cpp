// Hardware ablation — barrier execution latency sweep: how the scheduling
// results depend on the paper's free-barrier assumption (§5, [OKDi90]).
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_barrier_latency() {
  Experiment e;
  e.name = "barrier_latency";
  e.title = "hardware ablation — barrier execution latency";
  e.paper_ref = "§5 assumption / [OKDi90] companion";
  e.workload = "60 statements, 10 variables, 8 PEs; latency 0..16";
  e.expected =
      "Expected shape: fractions nearly flat; completion and the "
      "VLIW-normalized mean grow with the latency — the barrier machine's "
      "advantage depends on cheap hardware barriers, which is exactly the "
      "companion paper's thesis.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.flags.push_back(int_flag("sim-runs", 5, "uniform draws per benchmark"));
  e.flags.push_back(int_flag(
      "sim-batch", 8, "lanes per batched simulation (bit-identical for all)"));
  e.sweeps = {{"latency", {0, 1, 2, 4, 8, 16}}};
  e.run = [](ExpContext& ctx) {
    RunOptions opt = ctx.run_options();
    opt.with_vliw = true;
    const GeneratorConfig gen = ctx.generator_config();
    const Sweep& sweep = ctx.sweep("latency");

    TextTable table({"latency", "barrier", "serialized", "static",
                     "compl [min,max]", "mean/VLIW"});
    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"latency", "barrier_frac", "completion_min",
                   "completion_max", "norm_mean"});
    SchedulerConfig cfg = ctx.scheduler_config();
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
      cfg.barrier_latency = static_cast<Time>(sweep.values[i]);
      const PointAggregate agg = run_point(gen, cfg, opt);
      const FractionAggregate& f = agg.fractions;
      table.add_row({sweep.label(i), TextTable::pct(f.barrier_frac.mean()),
                     TextTable::pct(f.serialized_frac.mean()),
                     TextTable::pct(f.static_frac.mean()),
                     "[" + TextTable::num(f.completion_min.mean(), 1) + "," +
                         TextTable::num(f.completion_max.mean(), 1) + "]",
                     TextTable::num(agg.norm_mean.mean(), 3)});
      csv.write_row({sweep.label(i), std::to_string(f.barrier_frac.mean()),
                     std::to_string(f.completion_min.mean()),
                     std::to_string(f.completion_max.mean()),
                     std::to_string(agg.norm_mean.mean())});
      ctx.artifacts().metric("latency=" + sweep.label(i) + ".norm_mean",
                             agg.norm_mean.mean());
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_barrier_latency)

}  // namespace
}  // namespace bm
