// §5.4d ablation — instruction timing variation (range width × k).
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_ablation_timing() {
  Experiment e;
  e.name = "ablation_timing";
  e.title = "§5.4d — instruction timing variation ablation";
  e.paper_ref = "§5.4";
  e.workload = "60 statements, 10 variables, 8 PEs; range width × k";
  e.expected =
      "Paper: the barrier fraction increases only slightly even for large "
      "timing variations.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.sweeps = {{"width-factor", {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}}};
  e.csv_stem = "ablation_timing_variation";
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    const SchedulerConfig cfg = ctx.scheduler_config();
    std::vector<SeriesRow> rows;
    for (double factor : ctx.sweep("width-factor").values) {
      RunOptions o = opt;
      o.timing = TimingModel::table1_with_variation(factor);
      rows.push_back(
          {"width x " + TextTable::num(factor, 1), run_point(gen, cfg, o)});
    }
    print_fraction_series("variation", rows, &ctx.artifacts(),
                          ctx.exp().csv_stem);
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_ablation_timing)

}  // namespace
}  // namespace bm
