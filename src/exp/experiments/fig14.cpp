// Figure 14: scatter plot of serialized fraction vs statically scheduled
// fraction for the >2000 benchmarks containing 65–132 implied syncs.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_fig14() {
  Experiment e;
  e.name = "fig14";
  e.title = "Figure 14 — serialized vs static fraction scatter";
  e.paper_ref = "Fig. 14 (§5)";
  e.workload =
      "70 statements, 15 variables, 8 PEs; keep blocks with 65–132 syncs";
  e.expected = "Paper: center of mass near the 85% line.";
  e.flags = common_flags(2600);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 70, "statements per block"));
  e.flags.push_back(int_flag("variables", 15, "variables per block"));
  e.csv_stem = "fig14_scatter";
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    const SchedulerConfig cfg = ctx.scheduler_config();

    std::vector<std::pair<double, double>> points;  // (static, serialized)
    RunningStats combined, syncs;
    run_point(gen, cfg, opt, [&](const BenchmarkOutcome& o) {
      if (o.stats.implied_syncs < 65 || o.stats.implied_syncs > 132) return;
      points.emplace_back(o.stats.static_fraction(),
                          o.stats.serialized_fraction());
      combined.add(o.stats.no_runtime_sync_fraction());
      syncs.add(static_cast<double>(o.stats.implied_syncs));
    });

    ctx.out() << render_scatter(points, /*diagonal_level=*/0.85);
    ctx.out() << "\nBenchmarks in the 65–132 sync band: " << points.size()
              << " (mean syncs " << TextTable::num(syncs.mean(), 1) << ")\n";
    ctx.out() << "serialized+static (center of mass): mean "
              << TextTable::pct(combined.mean()) << ", stddev "
              << TextTable::pct(combined.stddev()) << ", range ["
              << TextTable::pct(combined.min()) << ", "
              << TextTable::pct(combined.max()) << "]\n";

    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"static_fraction", "serialized_fraction"});
    for (const auto& [x, y] : points)
      csv.write_row({std::to_string(x), std::to_string(y)});
    ctx.out() << "(points written to " << path << ")\n";

    ctx.artifacts().metric("band_benchmarks",
                           static_cast<double>(points.size()));
    ctx.artifacts().metric("mean_syncs", syncs.mean());
    ctx.artifacts().metric("no_runtime_sync_mean", combined.mean());
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_fig14)

}  // namespace
}  // namespace bm
