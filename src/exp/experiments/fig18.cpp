// Figure 18: VLIW vs barrier MIMD completion time, normalized to VLIW.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_fig18() {
  Experiment e;
  e.name = "fig18";
  e.title = "Figure 18 — VLIW vs barrier architecture (normalized completion)";
  e.paper_ref = "Fig. 18 (§6)";
  e.workload = "60 statements, 10 variables; barrier completion / VLIW makespan";
  e.expected =
      "Paper shape: max ≈ VLIW (slightly above at few PEs); min ≈ 0.75× "
      "VLIW; mean in between.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.flags.push_back(int_flag("sim-runs", 10, "uniform draws per benchmark"));
  e.flags.push_back(int_flag(
      "sim-batch", 8, "lanes per batched simulation (bit-identical for all)"));
  e.sweeps = {{"procs", {2, 4, 8, 16, 32, 64, 128}}};
  e.csv_stem = "fig18_vliw";
  e.run = [](ExpContext& ctx) {
    RunOptions opt = ctx.run_options();
    opt.with_vliw = true;
    const GeneratorConfig gen = ctx.generator_config();
    const Sweep& sweep = ctx.sweep("procs");

    TextTable table({"#PEs", "barrier min/VLIW", "barrier mean/VLIW",
                     "barrier max/VLIW", "VLIW makespan", "critical path max",
                     "VLIW optimal"});
    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"procs", "norm_min", "norm_mean", "norm_max",
                   "vliw_makespan"});
    SchedulerConfig cfg;
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
      cfg.num_procs = static_cast<std::size_t>(sweep.values[i]);
      RunningStats crit;
      std::size_t optimal = 0, total = 0;
      const PointAggregate agg =
          run_point(gen, cfg, opt, [&](const BenchmarkOutcome& o) {
            crit.add(static_cast<double>(o.stats.critical_path.max));
            // §6: "an optimal schedule (completion time equal to the
            // critical path time) was determined for almost all the
            // synthetic benchmarks" — measured on the VLIW side.
            optimal += (o.vliw_makespan == o.stats.critical_path.max);
            ++total;
          });
      table.add_row({sweep.label(i), TextTable::num(agg.norm_min.mean(), 3),
                     TextTable::num(agg.norm_mean.mean(), 3),
                     TextTable::num(agg.norm_max.mean(), 3),
                     TextTable::num(agg.vliw_makespan.mean(), 1),
                     TextTable::num(crit.mean(), 1),
                     TextTable::pct(static_cast<double>(optimal) /
                                    static_cast<double>(total))});
      csv.write_row({sweep.label(i), std::to_string(agg.norm_min.mean()),
                     std::to_string(agg.norm_mean.mean()),
                     std::to_string(agg.norm_max.mean()),
                     std::to_string(agg.vliw_makespan.mean())});
      ctx.artifacts().metric("procs=" + sweep.label(i) + ".norm_mean",
                             agg.norm_mean.mean());
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_fig18)

}  // namespace
}  // namespace bm
