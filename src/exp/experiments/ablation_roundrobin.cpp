// §5.4a ablation — round-robin node assignment vs list scheduling.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_ablation_roundrobin() {
  Experiment e;
  e.name = "ablation_roundrobin";
  e.title = "§5.4a — round-robin assignment ablation";
  e.paper_ref = "§5.4";
  e.workload = "60 statements, 10 variables; list vs round-robin";
  e.expected =
      "Paper: round-robin kills serialization, inflates the barrier "
      "fraction (toward 50%), and lengthens execution; the completion-time "
      "gap narrows on large machines.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.sweeps = {{"procs", {2, 4, 8, 16, 32}}};
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    const Sweep& sweep = ctx.sweep("procs");

    TextTable table({"#PEs", "policy", "barrier", "serialized", "static",
                     "compl min", "compl max"});
    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"procs", "policy", "barrier_frac", "serialized_frac",
                   "static_frac", "completion_min", "completion_max"});
    SchedulerConfig cfg;
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
      cfg.num_procs = static_cast<std::size_t>(sweep.values[i]);
      for (AssignmentPolicy policy :
           {AssignmentPolicy::kListSerialize, AssignmentPolicy::kRoundRobin}) {
        cfg.assignment = policy;
        const PointAggregate agg = run_point(gen, cfg, opt);
        const FractionAggregate& f = agg.fractions;
        table.add_row({sweep.label(i), std::string(to_string(policy)),
                       TextTable::pct(f.barrier_frac.mean()),
                       TextTable::pct(f.serialized_frac.mean()),
                       TextTable::pct(f.static_frac.mean()),
                       TextTable::num(f.completion_min.mean(), 1),
                       TextTable::num(f.completion_max.mean(), 1)});
        csv.write_row({sweep.label(i), std::string(to_string(policy)),
                       std::to_string(f.barrier_frac.mean()),
                       std::to_string(f.serialized_frac.mean()),
                       std::to_string(f.static_frac.mean()),
                       std::to_string(f.completion_min.mean()),
                       std::to_string(f.completion_max.mean())});
        ctx.artifacts().metric("procs=" + sweep.label(i) + "." +
                                   std::string(to_string(policy)) +
                                   ".barrier_frac",
                               f.barrier_frac.mean());
      }
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_ablation_roundrobin)

}  // namespace
}  // namespace bm
