// §1/§3 motivation — conventional MIMD (directed runtime sync) vs barrier
// MIMD on the same placements, across network latencies.
#include "exp/registry.hpp"
#include "harness/report.hpp"
#include "mimd/directed.hpp"
#include "mimd/reduce.hpp"

namespace bm {
namespace {

Experiment make_conventional_mimd() {
  Experiment e;
  e.name = "conventional_mimd";
  e.title = "§1/§3 — conventional MIMD (directed sync) vs barrier MIMD";
  e.paper_ref = "motivation (Fig. 3, >77% headline)";
  e.workload = "60 statements, 10 variables, 8 PEs; same placement, two machines";
  e.expected =
      "Paper (§3): graph-structural reduction [Shaf89] removes some "
      "synchronizations; barrier scheduling's min/max timing analysis "
      "removes more (barriers < reduced syncs), and the barrier machine's "
      "completion advantage grows with network latency.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.sweeps = {{"max-latency", {1, 4, 8, 16, 32}}};
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    const SchedulerConfig cfg = ctx.scheduler_config();
    const Sweep& sweep = ctx.sweep("max-latency");

    TextTable table({"sync latency", "MIMD syncs/blk", "Shaffer-reduced",
                     "barriers (SBM)", "MIMD compl", "reduced compl",
                     "SBM compl", "SBM speedup"});
    const std::string path = ctx.artifacts().csv_path();
    CsvWriter csv(path);
    csv.write_row({"max_latency", "mimd_syncs", "reduced_syncs", "barriers",
                   "mimd_completion", "reduced_completion", "sbm_completion",
                   "sbm_speedup"});
    for (std::size_t li = 0; li < sweep.values.size(); ++li) {
      const Time max_latency = static_cast<Time>(sweep.values[li]);
      RunningStats mimd_syncs, reduced_syncs, barriers;
      RunningStats mimd_compl, reduced_compl, sbm_compl;
      DirectedSyncConfig mimd_cfg;
      mimd_cfg.latency = {1, max_latency};
      RunOptions o = opt;
      o.sim_runs = 5;
      run_point(gen, cfg, o, [&](const BenchmarkOutcome& outcome) {
        barriers.add(static_cast<double>(outcome.stats.barriers_final));
        sbm_compl.add(outcome.barrier_completion.mean);
      });
      // Re-run the same seeds for both conventional-MIMD executions: the
      // full directed-sync set, and the [Shaf89] transitive reduction the
      // paper compares its timing-based approach against (§3).
      for (std::size_t i = 0; i < opt.seeds; ++i) {
        Rng rng = benchmark_rng(opt.base_seed, i);
        const SynthesisResult s = synthesize_benchmark(gen, rng);
        const InstrDag dag = InstrDag::build(s.program, TimingModel::table1());
        const ScheduleResult r = schedule_program(dag, cfg, rng);
        const SyncReduction red = reduce_directed_syncs(*r.schedule);
        reduced_syncs.add(static_cast<double>(red.retained));
        double total_full = 0, total_reduced = 0;
        std::size_t syncs = 0;
        for (int run = 0; run < 5; ++run) {
          const DirectedSyncResult full =
              simulate_directed(*r.schedule, mimd_cfg, rng);
          total_full += static_cast<double>(full.trace.completion);
          syncs = full.runtime_syncs;
          const DirectedSyncResult reduced =
              simulate_directed(*r.schedule, mimd_cfg, rng, red.kept);
          total_reduced += static_cast<double>(reduced.trace.completion);
        }
        mimd_compl.add(total_full / 5.0);
        reduced_compl.add(total_reduced / 5.0);
        mimd_syncs.add(static_cast<double>(syncs));
      }
      const double speedup = mimd_compl.mean() / sbm_compl.mean();
      table.add_row({"[1," + sweep.label(li) + "]",
                     TextTable::num(mimd_syncs.mean(), 1),
                     TextTable::num(reduced_syncs.mean(), 1),
                     TextTable::num(barriers.mean(), 2),
                     TextTable::num(mimd_compl.mean(), 1),
                     TextTable::num(reduced_compl.mean(), 1),
                     TextTable::num(sbm_compl.mean(), 1),
                     TextTable::num(speedup, 2) + "x"});
      csv.write_row({sweep.label(li), std::to_string(mimd_syncs.mean()),
                     std::to_string(reduced_syncs.mean()),
                     std::to_string(barriers.mean()),
                     std::to_string(mimd_compl.mean()),
                     std::to_string(reduced_compl.mean()),
                     std::to_string(sbm_compl.mean()),
                     std::to_string(speedup)});
      ctx.artifacts().metric("max_latency=" + sweep.label(li) + ".sbm_speedup",
                             speedup);
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_conventional_mimd)

}  // namespace
}  // namespace bm
