// §7 extension — control flow: barrier MIMD vs lockstep (VLIW) bound on
// structured programs with data-dependent loops.
#include "cfg/cfg_gen.hpp"
#include "cfg/cfg_sim.hpp"
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_control_flow() {
  Experiment e;
  e.name = "control_flow";
  e.title = "control flow — barrier MIMD vs lockstep worst-case bound";
  e.paper_ref = "§1/§7 (extension; no paper figure)";
  e.workload = "structured programs, depth 2, loops with trip counts 1..T";
  e.expected =
      "Expected shape: the lockstep bound stays 1.3–2x above the barrier "
      "machine's actual mean. At small T the gap comes from untaken if-arms "
      "(the VLIW provisions both); at large T from loop trip counts (the "
      "VLIW pays T where the actual draw averages (1+T)/2). Either way the "
      "barrier MIMD pays only the path taken.";
  e.flags = common_flags(60);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.sweeps = {{"max-trip", {1, 2, 4, 8, 16}}};
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const Sweep& sweep = ctx.sweep("max-trip");

    CfgGeneratorConfig gen;
    gen.block = GeneratorConfig{.num_statements = 10, .num_variables = 8,
                                .num_constants = 4, .const_max = 64};
    gen.max_depth = 2;
    const SchedulerConfig sc = ctx.scheduler_config();

    TextTable table({"max trip T", "blocks", "barrier mean compl",
                     "barrier worst path", "VLIW lockstep bound",
                     "bound / mean", "barrier frac"});
    const std::string path = ctx.artifacts().csv_path(ctx.exp().csv_stem);
    CsvWriter csv(path);
    csv.write_row({"max_trip", "mean_completion", "worst_path", "vliw_bound",
                   "ratio"});
    for (std::size_t ti = 0; ti < sweep.values.size(); ++ti) {
      gen.max_trip = static_cast<std::int64_t>(sweep.values[ti]);
      RunningStats mean_compl, worst_path, vliw_bound, blocks, barrier_frac;
      for (std::size_t i = 0; i < opt.seeds; ++i) {
        Rng rng = benchmark_rng(opt.base_seed, i);
        const CfgProgram cfg = generate_cfg(gen, rng);
        const CfgScheduleResult s =
            schedule_cfg(cfg, sc, TimingModel::table1(), rng);
        blocks.add(static_cast<double>(cfg.size()));
        barrier_frac.add(s.barrier_fraction());
        vliw_bound.add(static_cast<double>(
            vliw_cfg_worst_case(cfg, sc.num_procs, TimingModel::table1(), 1)));
        double total = 0;
        Time worst = 0;
        for (int run = 0; run < 5; ++run) {
          std::vector<std::int64_t> memory(cfg.num_vars());
          for (auto& m : memory) m = rng.uniform(-100, 100);
          const CfgExecResult r = run_cfg(s, CfgSimConfig{}, memory, rng);
          total += static_cast<double>(r.completion);
          CfgSimConfig hi;
          hi.sampling = SamplingMode::kAllMax;
          worst = std::max(worst, run_cfg(s, hi, memory, rng).completion);
        }
        mean_compl.add(total / 5.0);
        worst_path.add(static_cast<double>(worst));
      }
      const double ratio = vliw_bound.mean() / mean_compl.mean();
      table.add_row({sweep.label(ti), TextTable::num(blocks.mean(), 1),
                     TextTable::num(mean_compl.mean(), 1),
                     TextTable::num(worst_path.mean(), 1),
                     TextTable::num(vliw_bound.mean(), 1),
                     TextTable::num(ratio, 2) + "x",
                     TextTable::pct(barrier_frac.mean())});
      csv.write_row({sweep.label(ti), std::to_string(mean_compl.mean()),
                     std::to_string(worst_path.mean()),
                     std::to_string(vliw_bound.mean()),
                     std::to_string(ratio)});
      ctx.artifacts().metric("max_trip=" + sweep.label(ti) + ".bound_ratio",
                             ratio);
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_control_flow)

}  // namespace
}  // namespace bm
