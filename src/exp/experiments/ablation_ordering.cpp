// §5.4b ablation — node-ordering priority swap (h_min-first vs h_max-first).
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_ablation_ordering() {
  Experiment e;
  e.name = "ablation_ordering";
  e.title = "§5.4b — node ordering priority ablation";
  e.paper_ref = "§5.4";
  e.workload = "60 statements, 10 variables, 8 PEs; h_max-first vs h_min-first";
  e.expected =
      "Paper: min-first trades a slightly better best case for a slightly "
      "worse worst case; both changes are quite small.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 60, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    SchedulerConfig cfg = ctx.scheduler_config();

    TextTable table({"ordering", "barrier", "serialized", "static",
                     "compl min", "compl max"});
    const std::string path = ctx.artifacts().csv_path();
    CsvWriter csv(path);
    csv.write_row({"ordering", "barrier_frac", "serialized_frac",
                   "static_frac", "completion_min", "completion_max"});
    double min_time[2] = {0, 0}, max_time[2] = {0, 0};
    int idx = 0;
    for (OrderingPolicy policy :
         {OrderingPolicy::kMaxThenMin, OrderingPolicy::kMinThenMax}) {
      cfg.ordering = policy;
      const PointAggregate agg = run_point(gen, cfg, opt);
      const FractionAggregate& f = agg.fractions;
      table.add_row({std::string(to_string(policy)),
                     TextTable::pct(f.barrier_frac.mean()),
                     TextTable::pct(f.serialized_frac.mean()),
                     TextTable::pct(f.static_frac.mean()),
                     TextTable::num(f.completion_min.mean(), 2),
                     TextTable::num(f.completion_max.mean(), 2)});
      csv.write_row({std::string(to_string(policy)),
                     std::to_string(f.barrier_frac.mean()),
                     std::to_string(f.serialized_frac.mean()),
                     std::to_string(f.static_frac.mean()),
                     std::to_string(f.completion_min.mean()),
                     std::to_string(f.completion_max.mean())});
      min_time[idx] = f.completion_min.mean();
      max_time[idx] = f.completion_max.mean();
      ++idx;
    }
    table.render(ctx.out());
    ctx.out() << "(series written to " << path << ")\n"
              << "\nΔ completion min (min-first − max-first): "
              << TextTable::num(min_time[1] - min_time[0], 3)
              << "; Δ completion max: "
              << TextTable::num(max_time[1] - max_time[0], 3) << '\n';
    ctx.artifacts().metric("delta_completion_min", min_time[1] - min_time[0]);
    ctx.artifacts().metric("delta_completion_max", max_time[1] - max_time[0]);
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_ablation_ordering)

}  // namespace
}  // namespace bm
