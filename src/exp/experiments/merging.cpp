// §4.4.3 barrier merging: SBM vs DBM on the paper's cited benchmark set.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_merging() {
  Experiment e;
  e.name = "merging";
  e.title = "§4.4.3 — barrier merging (SBM) vs no merging (DBM)";
  e.paper_ref = "§4.4.3";
  e.workload = "10 variables, 80 statements, 8 PEs";
  e.expected =
      "Paper: ≈35% fewer barriers from merging; SBM completion slightly "
      "above DBM but close; static fraction higher with merging.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("statements", 80, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.flags.push_back(int_flag("sim-runs", 10, "uniform draws per benchmark"));
  e.flags.push_back(int_flag(
      "sim-batch", 8, "lanes per batched simulation (bit-identical for all)"));
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    SchedulerConfig cfg = ctx.scheduler_config();

    TextTable table({"machine", "barriers/blk", "inserted/blk", "merges/blk",
                     "static frac", "compl max (mean)", "sim mean compl"});
    const std::string path = ctx.artifacts().csv_path("merging");
    CsvWriter csv(path);
    csv.write_row({"machine", "barriers", "inserted", "merges", "static_frac",
                   "completion_max", "sim_mean_completion"});
    double barriers[2] = {0, 0};
    int idx = 0;
    for (MachineKind machine : {MachineKind::kDBM, MachineKind::kSBM}) {
      cfg.machine = machine;
      RunningStats sim_mean;
      const PointAggregate agg =
          run_point(gen, cfg, opt, [&](const BenchmarkOutcome& o) {
            sim_mean.add(o.barrier_completion.mean);
          });
      const FractionAggregate& f = agg.fractions;
      table.add_row({std::string(to_string(machine)),
                     TextTable::num(f.barriers.mean(), 2),
                     TextTable::num(f.barriers_inserted.mean(), 2),
                     TextTable::num(f.merges.mean(), 2),
                     TextTable::pct(f.static_frac.mean()),
                     TextTable::num(f.completion_max.mean(), 1),
                     TextTable::num(sim_mean.mean(), 1)});
      csv.write_row({std::string(to_string(machine)),
                     std::to_string(f.barriers.mean()),
                     std::to_string(f.barriers_inserted.mean()),
                     std::to_string(f.merges.mean()),
                     std::to_string(f.static_frac.mean()),
                     std::to_string(f.completion_max.mean()),
                     std::to_string(sim_mean.mean())});
      barriers[idx++] = f.barriers.mean();
    }
    table.render(ctx.out());
    const double reduction = 100.0 * (1.0 - barriers[1] / barriers[0]);
    ctx.out() << "(series written to " << path << ")\n"
              << "\nBarrier reduction from merging: "
              << TextTable::num(reduction, 1) << "% (paper: ≈35%).\n";
    ctx.artifacts().metric("barriers_dbm", barriers[0]);
    ctx.artifacts().metric("barriers_sbm", barriers[1]);
    ctx.artifacts().metric("reduction_pct", reduction);
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_merging)

}  // namespace
}  // namespace bm
