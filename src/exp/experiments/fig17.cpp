// Figure 17: synchronization fractions vs number of processors.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_fig17() {
  Experiment e;
  e.name = "fig17";
  e.title = "Figure 17 — sync fractions vs number of processors";
  e.paper_ref = "Fig. 17 (§5.3)";
  e.workload = "100 statements, 10 variables, PEs 2..128";
  e.expected =
      "Paper shape: barrier fraction increases up to the parallelism width, "
      "then is flat; serialization ~constant.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("statements", 100, "statements per block"));
  e.flags.push_back(int_flag("variables", 10, "variables per block"));
  e.sweeps = {{"procs", {2, 4, 8, 16, 32, 64, 128}}};
  e.csv_stem = "fig17_processors";
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    const GeneratorConfig gen = ctx.generator_config();
    const Sweep& sweep = ctx.sweep("procs");
    SchedulerConfig cfg;
    std::vector<SeriesRow> rows;
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
      cfg.num_procs = static_cast<std::size_t>(sweep.values[i]);
      rows.push_back({sweep.label(i), run_point(gen, cfg, opt)});
    }
    print_fraction_series("#PEs", rows, &ctx.artifacts(), ctx.exp().csv_stem);
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_fig17)

}  // namespace
}  // namespace bm
