// §5 headline numbers over the full parameter sweep the paper describes.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_headline() {
  Experiment e;
  e.name = "headline";
  e.title = "§5 headline — fraction ranges over the full parameter sweep";
  e.paper_ref = "§5 (summary ranges)";
  e.workload =
      "statements {5..60} × variables {2..15} × PEs {2..128}, 100 seeds/point";
  e.expected =
      "Paper ranges: barrier 3%..23%, serialized 50%..90%, static 8%..40%, "
      ">77% need no runtime synchronization, ≈28% of barriers avoided by "
      "earlier barriers' timing.";
  e.flags = common_flags(100);
  e.sweeps = {{"statements", {5, 15, 30, 60}},
              {"variables", {2, 5, 10, 15}},
              {"procs", {2, 8, 32, 128}}};
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    RunningStats barrier_pts, serial_pts, static_pts, no_rt, cross_resolved,
        timing_avoid, repairs;
    std::size_t benchmarks = 0, points = 0;
    GeneratorConfig gen;
    SchedulerConfig cfg;
    for (double stmts : ctx.sweep("statements").values) {
      for (double vars : ctx.sweep("variables").values) {
        for (double procs : ctx.sweep("procs").values) {
          gen.num_statements = static_cast<std::uint32_t>(stmts);
          gen.num_variables = static_cast<std::uint32_t>(vars);
          cfg.num_procs = static_cast<std::size_t>(procs);
          const PointAggregate agg = run_point(gen, cfg, opt);
          const FractionAggregate& f = agg.fractions;
          barrier_pts.add(f.barrier_frac.mean());
          serial_pts.add(f.serialized_frac.mean());
          static_pts.add(f.static_frac.mean());
          no_rt.add(f.no_runtime_frac.mean());
          if (f.cross_resolved_frac.count() > 0)
            cross_resolved.add(f.cross_resolved_frac.mean());
          if (f.timing_avoidance_frac.count() > 0)
            timing_avoid.add(f.timing_avoidance_frac.mean());
          repairs.add(f.repairs.mean());
          benchmarks += opt.seeds;
          ++points;
        }
      }
    }

    TextTable table({"quantity", "min (point mean)", "max (point mean)",
                     "overall mean", "paper"});
    const std::string path = ctx.artifacts().csv_path("headline");
    CsvWriter csv(path);
    csv.write_row({"quantity", "min_point_mean", "max_point_mean",
                   "overall_mean"});
    auto emit = [&](const std::string& label, const std::string& key,
                    const RunningStats& s, const std::string& paper,
                    bool as_pct) {
      table.add_row({label, as_pct ? TextTable::pct(s.min())
                                   : TextTable::num(s.min(), 3),
                     as_pct ? TextTable::pct(s.max())
                            : TextTable::num(s.max(), 3),
                     as_pct ? TextTable::pct(s.mean())
                            : TextTable::num(s.mean(), 3),
                     paper});
      csv.write_row({key, std::to_string(s.min()), std::to_string(s.max()),
                     std::to_string(s.mean())});
      ctx.artifacts().metric(key + ".min", s.min());
      ctx.artifacts().metric(key + ".max", s.max());
      ctx.artifacts().metric(key + ".mean", s.mean());
    };
    emit("barrier fraction", "barrier_frac", barrier_pts, "3%..23%", true);
    emit("serialized fraction", "serialized_frac", serial_pts, "50%..90%",
         true);
    emit("static fraction", "static_frac", static_pts, "8%..40%", true);
    emit("no-runtime-sync fraction", "no_runtime_frac", no_rt, ">77%", true);
    emit("cross-PE pairs resolved statically", "cross_resolved_frac",
         cross_resolved, "—", true);
    emit("barriers avoided by earlier barriers' timing",
         "timing_avoidance_frac", timing_avoid, "≈28%", true);
    emit("repair barriers per block", "repairs", repairs, "— (our guard)",
         false);
    table.render(ctx.out());
    ctx.out() << '\n'
              << points << " parameter points, " << benchmarks
              << " scheduled benchmarks total (paper: >3500).\n"
              << "(summary written to " << path << ")\n";
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_headline)

}  // namespace
}  // namespace bm
