// Figure 15: synchronization fractions vs number of statements.
#include "exp/registry.hpp"
#include "harness/report.hpp"

namespace bm {
namespace {

Experiment make_fig15() {
  Experiment e;
  e.name = "fig15";
  e.title = "Figure 15 — sync fractions vs number of statements";
  e.paper_ref = "Fig. 15 (§5.1)";
  e.workload = "8 PEs, 15 variables, statements 5..60";
  e.expected =
      "Paper shape: barrier fraction decreases with block size (steeply "
      "from 5 to 20), serialization declines slowly.";
  e.flags = common_flags(100);
  e.flags.push_back(int_flag("procs", 8, "number of PEs"));
  e.flags.push_back(int_flag("variables", 15, "variables per block"));
  e.sweeps = {{"statements", {5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}}};
  e.csv_stem = "fig15_statements";
  e.run = [](ExpContext& ctx) {
    const RunOptions opt = ctx.run_options();
    SchedulerConfig cfg = ctx.scheduler_config();
    GeneratorConfig gen;
    gen.num_variables = ctx.get_u32("variables");
    const Sweep& sweep = ctx.sweep("statements");
    std::vector<SeriesRow> rows;
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
      gen.num_statements = static_cast<std::uint32_t>(sweep.values[i]);
      rows.push_back({sweep.label(i), run_point(gen, cfg, opt)});
    }
    print_fraction_series("#statements", rows, &ctx.artifacts(),
                          ctx.exp().csv_stem);
  };
  return e;
}

BM_REGISTER_EXPERIMENT(make_fig15)

}  // namespace
}  // namespace bm
