#include "exp/registry.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace bm {

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment exp) {
  BM_REQUIRE(!exp.name.empty(), "experiment name must not be empty");
  BM_REQUIRE(find(exp.name) == nullptr,
             "duplicate experiment registration: " + exp.name);
  exps_.push_back(std::move(exp));
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  for (const Experiment& e : exps_)
    if (e.name == name) return &e;
  return nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(exps_.size());
  for (const Experiment& e : exps_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  for (const Experiment* e : all()) out.push_back(e->name);
  return out;
}

ExperimentRegistrar::ExperimentRegistrar(Experiment (*make)()) {
  ExperimentRegistry::instance().add(make());
}

}  // namespace bm
