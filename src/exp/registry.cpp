#include "exp/registry.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace bm {

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment exp) {
  BM_REQUIRE(!exp.name.empty(), "experiment name must not be empty");
  BM_REQUIRE(find(exp.name) == nullptr,
             "duplicate experiment registration: " + exp.name);
  exps_.push_back(std::move(exp));
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  for (const Experiment& e : exps_)
    if (e.name == name) return &e;
  return nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(exps_.size());
  for (const Experiment& e : exps_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  for (const Experiment* e : all()) out.push_back(e->name);
  return out;
}

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Classic two-row Levenshtein DP.
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string ExperimentRegistry::closest_name(const std::string& name) const {
  std::string best;
  std::size_t best_dist = 0;
  for (const std::string& candidate : names()) {
    const std::size_t d = edit_distance(name, candidate);
    if (best.empty() || d < best_dist) {
      best = candidate;
      best_dist = d;
    }
  }
  return best;
}

ExperimentRegistrar::ExperimentRegistrar(Experiment (*make)()) {
  ExperimentRegistry::instance().add(make());
}

}  // namespace bm
