// Declarative experiment descriptors: each paper figure / table / ablation
// is one `Experiment` value (name, paper reference, flag schema, sweeps as
// data, expected-shape note) plus a run body. The `bmrun` CLI and the
// registry test both drive experiments exclusively through this interface,
// so `bmrun describe`, the docs, and the run behavior share one source of
// truth and cannot drift apart.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/artifacts.hpp"
#include "harness/experiment.hpp"
#include "support/cli.hpp"

namespace bm {

/// One sweep axis expressed as data instead of a hand-rolled loop; `bmrun
/// describe` prints it and the run body iterates it.
struct Sweep {
  std::string axis;
  std::vector<double> values;

  /// Renders values[i] without a trailing ".000000" when integral.
  std::string label(std::size_t i) const;
};

class ExpContext;

struct Experiment {
  std::string name;       ///< registry key, e.g. "fig15"
  std::string title;      ///< banner line, e.g. "Figure 15 — ..."
  std::string paper_ref;  ///< e.g. "Fig. 15 (§5.1)"
  std::string workload;   ///< one-line workload description
  std::string expected;   ///< expected-shape note (printed after the run)
  std::vector<FlagSpec> flags;  ///< full schema incl. the common flags
  std::vector<Sweep> sweeps;    ///< sweep axes, as data
  std::string csv_stem;   ///< primary CSV stem ("" = experiment name)
  std::function<void(ExpContext&)> run;

  const FlagSpec& flag(const std::string& name) const;
  const Sweep& sweep(const std::string& axis) const;
};

/// The common flag block (seeds, base-seed, jobs, out-dir) every experiment
/// declares alongside its own flags. The per-flag builders (int_flag, ...)
/// live in support/cli.hpp next to FlagSpec itself.
std::vector<FlagSpec> common_flags(std::size_t default_seeds);

/// The single flag→config binding layer shared by every experiment: typed
/// accessors fall back to the *declared* default (reading an undeclared
/// flag is a hard error — schema and body cannot drift), and the config
/// builders map the conventional flag names onto the library structs.
class ExpContext {
 public:
  ExpContext(const Experiment& exp, const CliFlags& flags,
             ArtifactWriter& artifacts, std::ostream& os);

  const Experiment& exp() const { return exp_; }
  const CliFlags& flags() const { return flags_; }
  ArtifactWriter& artifacts() { return artifacts_; }
  std::ostream& out() { return os_; }

  std::int64_t get_int(const std::string& name) const;
  std::size_t get_size(const std::string& name) const;
  std::uint32_t get_u32(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  std::string get(const std::string& name) const;

  /// seeds / base-seed / jobs (+ sim-runs when declared) → RunOptions.
  RunOptions run_options() const;
  /// statements / variables (when declared) → GeneratorConfig.
  GeneratorConfig generator_config() const;
  /// procs (when declared) → SchedulerConfig.
  SchedulerConfig scheduler_config() const;

  const Sweep& sweep(const std::string& axis) const { return exp_.sweep(axis); }

 private:
  const FlagSpec& spec(const std::string& name) const;
  bool declared(const std::string& name) const;

  const Experiment& exp_;
  const CliFlags& flags_;
  ArtifactWriter& artifacts_;
  std::ostream& os_;
};

/// Runs `exp` end to end: banner, body, expected-shape note, JSON result
/// file. `flags` must already be schema-validated. Shared by bmrun and the
/// registry test so both exercise the same code path.
void run_experiment(const Experiment& exp, const CliFlags& flags,
                    const std::string& out_dir, std::ostream& os);

}  // namespace bm
