// Self-registering experiment registry: each experiments/*.cpp file
// registers its descriptor at static-initialization time, so adding a new
// experiment is one new file plus one CMake line — no driver edits, no new
// main(). Link bm_exp (an OBJECT library, so no registration is stripped)
// to get the full set.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace bm {

class ExperimentRegistry {
 public:
  static ExperimentRegistry& instance();

  /// Registers an experiment; throws bm::Error on a duplicate name.
  void add(Experiment exp);

  /// nullptr when `name` is unknown.
  const Experiment* find(const std::string& name) const;

  /// All experiments, sorted by name (stable across link order).
  std::vector<const Experiment*> all() const;

  std::vector<std::string> names() const;

  /// Registered name closest to `name` by Levenshtein distance (ties break
  /// lexicographically); empty when the registry is empty. Used by bmrun's
  /// "did you mean" diagnostics for unknown experiment names.
  std::string closest_name(const std::string& name) const;

 private:
  ExperimentRegistry() = default;
  std::vector<Experiment> exps_;
};

struct ExperimentRegistrar {
  explicit ExperimentRegistrar(Experiment (*make)());
};

/// Registers the Experiment returned by factory function `fn` (file scope).
#define BM_REGISTER_EXPERIMENT(fn) \
  static const ::bm::ExperimentRegistrar bm_registrar_##fn{fn};

}  // namespace bm
