#include "exp/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <ostream>

#include "harness/report.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace bm {

std::string Sweep::label(std::size_t i) const {
  BM_REQUIRE(i < values.size(), "sweep index out of range");
  const double v = values[i];
  if (v == std::floor(v) && std::abs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  return TextTable::num(v, 1);
}

const FlagSpec& Experiment::flag(const std::string& flag_name) const {
  for (const FlagSpec& s : flags)
    if (s.name == flag_name) return s;
  throw Error("experiment " + name + " does not declare flag --" + flag_name);
}

const Sweep& Experiment::sweep(const std::string& axis) const {
  for (const Sweep& s : sweeps)
    if (s.axis == axis) return s;
  throw Error("experiment " + name + " has no sweep axis '" + axis + "'");
}

std::vector<FlagSpec> common_flags(std::size_t default_seeds) {
  return {
      int_flag("seeds", static_cast<std::int64_t>(default_seeds),
               "benchmarks per parameter point"),
      int_flag("base-seed", 1990, "root of the per-benchmark RNG streams"),
      string_flag("jobs", "1",
                  "seed fan-out workers (0/auto = hardware threads); "
                  "results are bit-identical for every value"),
      string_flag("out-dir", "out", "artifact directory (CSV + JSON)"),
  };
}

ExpContext::ExpContext(const Experiment& exp, const CliFlags& flags,
                       ArtifactWriter& artifacts, std::ostream& os)
    : exp_(exp), flags_(flags), artifacts_(artifacts), os_(os) {}

const FlagSpec& ExpContext::spec(const std::string& name) const {
  return exp_.flag(name);
}

bool ExpContext::declared(const std::string& name) const {
  for (const FlagSpec& s : exp_.flags)
    if (s.name == name) return true;
  return false;
}

std::int64_t ExpContext::get_int(const std::string& name) const {
  const FlagSpec& s = spec(name);
  return flags_.get_int(name, std::strtoll(s.def.c_str(), nullptr, 10));
}

std::size_t ExpContext::get_size(const std::string& name) const {
  const std::int64_t v = get_int(name);
  BM_REQUIRE(v >= 0, "flag --" + name + " must be >= 0");
  return static_cast<std::size_t>(v);
}

std::uint32_t ExpContext::get_u32(const std::string& name) const {
  const std::int64_t v = get_int(name);
  BM_REQUIRE(v >= 0, "flag --" + name + " must be >= 0");
  return static_cast<std::uint32_t>(v);
}

double ExpContext::get_double(const std::string& name) const {
  const FlagSpec& s = spec(name);
  return flags_.get_double(name, std::strtod(s.def.c_str(), nullptr));
}

bool ExpContext::get_bool(const std::string& name) const {
  const FlagSpec& s = spec(name);
  return flags_.get_bool(name, s.def == "true");
}

std::string ExpContext::get(const std::string& name) const {
  return flags_.get(name, spec(name).def);
}

RunOptions ExpContext::run_options() const {
  RunOptions opt;
  opt.seeds = get_size("seeds");
  opt.base_seed = static_cast<std::uint64_t>(get_int("base-seed"));
  opt.jobs = flags_.get_jobs(1);
  if (declared("sim-runs")) opt.sim_runs = get_size("sim-runs");
  if (declared("sim-batch")) opt.sim_batch = get_size("sim-batch");
  // --verify is a driver flag (validated by bmrun, not per-experiment
  // schemas), so it is read directly rather than through the declared specs.
  opt.verify = flags_.get_bool("verify", false);
  return opt;
}

GeneratorConfig ExpContext::generator_config() const {
  GeneratorConfig gen;
  if (declared("statements")) gen.num_statements = get_u32("statements");
  if (declared("variables")) gen.num_variables = get_u32("variables");
  return gen;
}

SchedulerConfig ExpContext::scheduler_config() const {
  SchedulerConfig cfg;
  if (declared("procs")) cfg.num_procs = get_size("procs");
  return cfg;
}

void run_experiment(const Experiment& exp, const CliFlags& flags,
                    const std::string& out_dir, std::ostream& os) {
  BM_REQUIRE(exp.run != nullptr, "experiment " + exp.name + " has no body");
  ArtifactWriter artifacts(out_dir, exp.name);
  ExpContext ctx(exp, flags, artifacts, os);
  const RunOptions opt = ctx.run_options();
  print_bench_header(exp.title, exp.paper_ref, exp.workload, opt);
  // Attribute registry deltas to this run: everything the body's pipeline
  // counts (insertion decisions, ψ-cache traffic, simulator stalls) lands
  // in the manifest's metrics block under an "obs." prefix. Counters hold
  // only deterministic quantities, so the manifest stays byte-identical
  // across --jobs values (wall time goes to the trace, never in here).
  // "mem."-prefixed counters (scratch-pool misses/grows) are excluded: pools
  // are thread-local, so their totals depend on the worker count. The
  // "serve-metrics." gauge namespace (bmserve wall-clock telemetry,
  // serve/telemetry.hpp) is excluded for the same reason.
  const obs::Snapshot before = obs::snapshot();
  {
    BM_OBS_SPAN(exp_span, "exp:" + exp.name, "exp");
    exp.run(ctx);
  }
  const obs::Snapshot used = obs::delta(before, obs::snapshot());
  for (const obs::Snapshot::Entry& e : used.entries) {
    if (e.key.rfind("mem.", 0) == 0) continue;
    if (e.key.rfind("serve-metrics.", 0) == 0) continue;
    artifacts.metric("obs." + e.key, e.value);
  }
  if (!exp.expected.empty()) os << '\n' << exp.expected << '\n';
  // The JSON result deliberately omits the worker count: a rerun with a
  // different --jobs must be byte-identical.
  artifacts.write_json({
      {"title", exp.title},
      {"paper_ref", exp.paper_ref},
      {"workload", exp.workload},
      {"seeds", std::to_string(opt.seeds)},
      {"base_seed", std::to_string(opt.base_seed)},
  });
  os << "(result written to " << out_dir << '/' << exp.name << ".json)\n";
}

}  // namespace bm
