#include "barrier/dot.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace bm {

std::string instr_dag_to_dot(const InstrDag& dag, const Program& prog) {
  BM_REQUIRE(prog.size() == dag.num_instructions(),
             "program does not match the DAG");
  std::ostringstream os;
  os << "digraph instr_dag {\n  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId n = 0; n < dag.num_instructions(); ++n) {
    os << "  n" << n << " [label=\"" << prog[n].uid << ": "
       << tuple_to_string(prog[n]) << "\\n" << dag.time(n).to_string()
       << "\"];\n";
  }
  os << "  entry [shape=point];\n  exit [shape=point];\n";
  auto name = [&](NodeId n) -> std::string {
    if (n == dag.entry()) return "entry";
    if (n == dag.exit()) return "exit";
    return "n" + std::to_string(n);
  };
  for (NodeId n = 0; n < dag.num_nodes(); ++n)
    for (NodeId s : dag.succs(n))
      os << "  " << name(n) << " -> " << name(s) << ";\n";
  os << "}\n";
  return os.str();
}

std::string barrier_dag_to_dot(const BarrierDag& dag) {
  std::ostringstream os;
  os << "digraph barrier_dag {\n  rankdir=TB;\n  node [shape=ellipse];\n";
  for (BarrierId b : dag.barrier_ids()) {
    os << "  b" << b << " [label=\"B" << b << "\\nfires "
       << dag.fire_range(b).to_string() << "\"";
    if (b == dag.initial()) os << ", style=bold";
    os << "];\n";
  }
  for (BarrierId u : dag.barrier_ids())
    for (BarrierId v : dag.barrier_ids())
      if (u != v && dag.has_edge(u, v))
        os << "  b" << u << " -> b" << v << " [label=\""
           << dag.edge_range(u, v).to_string() << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace bm
