// The barrier dag (B, <_b) of §3.1/§4.4, built from per-processor barrier
// chains. Provides every static-timing query the insertion algorithms need:
//
//  - edge ranges with the Fig. 13 aggregation rule (a barrier edge traversed
//    by several processors takes the max of the segment minima AND the max of
//    the segment maxima — no processor proceeds until all arrive),
//  - barrier fire-time ranges [B_min, B_max] from the initial barrier,
//  - reachability (PathFind, §4.4.1 step 1),
//  - the dominator tree / nearest common dominating barrier (step 2),
//  - longest-path queries ψ_max, ψ_min, the overlap-adjusted ψ*_min, and
//    ordered enumeration of k-longest max-paths (§4.4.2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/dominators.hpp"
#include "graph/paths.hpp"
#include "ir/timing.hpp"
#include "support/bitset.hpp"

namespace bm {

using BarrierId = std::uint32_t;
inline constexpr BarrierId kInvalidBarrier = ~BarrierId{0};

/// One processor's view: the barriers it participates in, in stream order
/// (starting with the initial barrier), and the execution-time range of the
/// code between each consecutive pair.
struct BarrierChainInput {
  std::vector<BarrierId> barriers;  ///< size >= 1; barriers[0] == initial
  std::vector<TimeRange> segments;  ///< size == barriers.size() - 1
};

class BarrierDag {
 public:
  /// `num_barrier_ids` bounds the id space; ids not appearing in any chain
  /// are unknown. Every chain must begin with `initial`. `barrier_latency`
  /// is the hardware cost from the last arrival to the synchronized release
  /// (the paper's experiments assume 0, §5; the companion hardware paper
  /// motivates small nonzero values) — it is charged once per barrier hop
  /// in every fire-range and ψ-path computation.
  BarrierDag(std::size_t num_barrier_ids, BarrierId initial,
             std::span<const BarrierChainInput> chains,
             Time barrier_latency = 0);

  /// Rebuilds this dag in place for a mutated schedule, reusing every
  /// internal buffer's capacity (the scheduler rebuilds after each of its
  /// hundreds of thousands of mutations; a fresh construction would pay a
  /// dozen allocations each time). Observationally identical to destroying
  /// and re-constructing: the previous generation's ψ tallies are folded
  /// into the metric registry exactly as the destructor would have.
  void rebuild(std::size_t num_barrier_ids, BarrierId initial,
               std::span<const BarrierChainInput> chains,
               Time barrier_latency = 0);

  /// The destructor folds the ψ-cache hit/miss tallies into the global
  /// metric registry (`barrier.psi_cache_{hits,misses}`). Moves stay
  /// defaulted: PsiTally transfers its counts and zeroes the source, so a
  /// moved-from dag folds nothing and the tallies are counted exactly once.
  ~BarrierDag();
  BarrierDag(BarrierDag&&) = default;
  BarrierDag& operator=(BarrierDag&&) = default;

  Time barrier_latency() const { return latency_; }

  BarrierId initial() const { return initial_; }
  bool known(BarrierId b) const;
  std::size_t barrier_count() const { return ids_.size(); }
  const std::vector<BarrierId>& barrier_ids() const { return ids_; }

  /// Aggregated code range on edge u→v; edge must exist.
  TimeRange edge_range(BarrierId u, BarrierId v) const;
  bool has_edge(BarrierId u, BarrierId v) const;

  /// Fire-time interval relative to the initial barrier: B_min achieved in
  /// the all-min draw, B_max in the all-max draw.
  TimeRange fire_range(BarrierId b) const;

  /// True iff u == v or a directed path u → v exists (u <_b v).
  bool path_exists(BarrierId u, BarrierId v) const;
  /// True iff the two barriers are comparable under <_b (or equal).
  bool ordered(BarrierId u, BarrierId v) const {
    return path_exists(u, v) || path_exists(v, u);
  }

  /// Nearest common dominating barrier (nearest common ancestor in the
  /// dominator tree rooted at the initial barrier).
  BarrierId common_dominator(BarrierId a, BarrierId b) const;

  /// Longest u→v path length under max edge times; kUnreachable if no path;
  /// 0 when u == v.
  ///
  /// ψ queries are memoized per source: the first query from `u` runs one
  /// O(V+E) sweep and every later query from `u` is an O(1) array lookup.
  /// The scheduler issues thousands of ψ queries from a handful of sources
  /// (the common dominators of the pairs under test) between mutations, and
  /// Schedule rebuilds this object on every barrier insertion/merge, so the
  /// memo is invalidated exactly when the answers could change. The caches
  /// are not synchronized: a BarrierDag must be confined to one thread
  /// (each parallel-harness worker owns its Schedule outright).
  Time psi_max(BarrierId u, BarrierId v) const;
  /// Longest u→v path length under min edge times (same memoization).
  Time psi_min(BarrierId u, BarrierId v) const;

  /// ψ*_min (§4.4.2): longest u→w path under min edge times, except the
  /// given edges take their max time (the overlap adjustment).
  Time psi_min_star(
      BarrierId u, BarrierId w,
      std::span<const std::pair<BarrierId, BarrierId>> forced_max) const;

  /// Deterministic linear extension of <_b, starting with the initial
  /// barrier: Kahn's algorithm preferring the earliest min fire time (ties
  /// by id). This is the order the SBM hardware queue is loaded in — a
  /// linear extension can delay but never deadlock the mask FIFO.
  std::vector<BarrierId> linear_extension() const;
  /// Same, filling a caller-owned buffer (the SBM simulator's pooled queue).
  /// The extension is a pure function of this immutable dag, so it is
  /// computed once and memoized: completion summaries replay the same
  /// queue order for every draw (and every batch lane).
  void linear_extension_into(std::vector<BarrierId>& out) const;

  /// Enumerates u→v paths in non-increasing max-time length. Wraps
  /// PathEnumerator, translating to public barrier ids.
  class MaxPathRange {
   public:
    bool next(std::vector<BarrierId>& path, Time& length);

   private:
    friend class BarrierDag;
    MaxPathRange(const BarrierDag& dag, NodeId from, NodeId to);
    const BarrierDag& dag_;
    PathEnumerator inner_;
  };
  MaxPathRange max_paths(BarrierId u, BarrierId v) const;

  /// ψ memo effectiveness for this dag instance (a "miss" is one O(V+E)
  /// sweep; a "hit" is an O(1) lookup). Single-thread confined like the
  /// caches themselves, so plain counters suffice.
  std::uint64_t psi_cache_hits() const { return tally_.hits; }
  std::uint64_t psi_cache_misses() const { return tally_.misses; }

 private:
  /// Shared constructor/rebuild body; assumes tallies are already settled.
  void init(std::size_t num_barrier_ids, BarrierId initial,
            std::span<const BarrierChainInput> chains, Time barrier_latency);
  /// Folds the current tallies into the metric registry (one dag build plus
  /// the ψ hit/miss counts) — the destructor's accounting, also run by
  /// rebuild() on the generation it replaces.
  void fold_tally() const;

  NodeId index_of(BarrierId b) const;  // throws if unknown
  static std::uint64_t edge_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  /// Binary search in the sorted flat edge table; nullptr if absent.
  const TimeRange* find_edge(NodeId a, NodeId b) const;

  /// Memoized longest-path frontier from `src` (min or max edge weights):
  /// one topological sweep on first use filling the flat ψ cache row, then
  /// O(1) lookups. Sweeps walk the precomputed `topo_` order and the CSR
  /// adjacency, touching only nodes the closure marks reachable from `src`.
  const Time* psi_row(NodeId src, bool use_max) const;

  bool reach_test(NodeId u, NodeId v) const {
    return (reach_[u * reach_stride_ + (v >> 6)] >> (v & 63)) & 1u;
  }

  std::size_t size() const { return ids_.size(); }
  /// Node-keyed Digraph view, built on demand: only the dominator tree and
  /// path enumeration need it. Everything else (ψ sweeps, closure, Kahn)
  /// runs on the flat CSR, so the rebuilt-per-mutation constructor never
  /// pays for per-node adjacency vectors.
  const Digraph& lazy_digraph() const;

  BarrierId initial_;
  Time latency_ = 0;
  std::vector<BarrierId> ids_;        ///< dense index -> barrier id
  std::vector<NodeId> index_;         ///< barrier id -> dense index
  mutable std::unique_ptr<Digraph> lazy_g_;
  /// Aggregated edge ranges keyed by (from,to), sorted — a flat stand-in
  /// for the former std::map (one allocation, binary-search lookups).
  std::vector<std::pair<std::uint64_t, TimeRange>> edges_;
  std::vector<std::uint32_t> indeg_;  ///< per node, from the unique edges
  std::vector<TimeRange> fire_;
  /// Reflexive-transitive closure as contiguous bit rows of `reach_stride_`
  /// words each: bit v of row u set iff a path u→v exists.
  std::size_t reach_stride_ = 0;
  std::vector<std::uint64_t> reach_;
  /// Lazily built on the first common_dominator query (many rebuilds never
  /// issue one before the next mutation discards the dag), directly from
  /// the flat edge table — no Digraph. The tree object itself survives
  /// rebuilds so its buffers keep their capacity; `dom_valid_` gates it.
  mutable std::optional<DominatorTree> dom_;
  mutable bool dom_valid_ = false;

  /// Weighted adjacency (succ, latency-charged edge range), CSR layout —
  /// the edge-table lookup hoisted out of every sweep.
  struct WeightedEdge {
    NodeId to;
    TimeRange w;  ///< edge range + latency on both bounds
  };
  std::vector<std::uint32_t> adj_off_;  ///< size() + 1 offsets
  std::vector<WeightedEdge> adj_dat_;
  std::vector<NodeId> topo_;  ///< topological order, computed once

  /// Flat B×B ψ memo (row per source) with per-row filled flags. The
  /// buffers are deliberately left uninitialized (psi_row overwrites a row
  /// before reading it), so a rebuild never pays two O(B²) zero-fills; the
  /// power-of-two capacity survives rebuilds, so the insertion loop's
  /// one-barrier-at-a-time growth reallocates only logarithmically often.
  mutable std::unique_ptr<Time[]> psi_min_cache_, psi_max_cache_;
  mutable std::size_t psi_cap_ = 0;  ///< elements per cache buffer
  mutable std::vector<std::uint8_t> psi_min_filled_, psi_max_filled_;

  /// ψ-cache hit/miss tallies plus a liveness marker for dtor folding.
  /// Moving transfers the counts and disarms the source, so defaulted
  /// BarrierDag moves never double-fold (and a moved-from dag does not
  /// count as a dag build).
  struct PsiTally {
    std::uint64_t hits = 0, misses = 0;
    bool live = true;
    PsiTally() = default;
    PsiTally(PsiTally&& o) noexcept
        : hits(o.hits), misses(o.misses), live(o.live) {
      o.hits = o.misses = 0;
      o.live = false;
    }
    PsiTally& operator=(PsiTally&& o) noexcept {
      hits = o.hits;
      misses = o.misses;
      live = o.live;
      o.hits = o.misses = 0;
      o.live = false;
      return *this;
    }
  };
  mutable PsiTally tally_;

  /// Memoized SBM queue order (non-empty once computed: every dag has at
  /// least the initial barrier). Single-thread confined like the ψ caches.
  mutable std::vector<BarrierId> linext_;
};

}  // namespace bm
