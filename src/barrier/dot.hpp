// Graphviz DOT export for the two graphs the paper draws: the instruction
// DAG (Fig. 2) and the barrier dag (Fig. 10). Feed the output to `dot -Tpng`
// to recreate the figures for any block.
#pragma once

#include <string>

#include "barrier/barrier_dag.hpp"
#include "graph/instr_dag.hpp"
#include "ir/program.hpp"

namespace bm {

/// Instruction DAG with tuple labels (uid + mnemonic) and the min/max
/// execution-time range on each node; dummy entry/exit shown as points.
std::string instr_dag_to_dot(const InstrDag& dag, const Program& prog);

/// Barrier dag with fire ranges on nodes and code ranges on edges.
std::string barrier_dag_to_dot(const BarrierDag& dag);

}  // namespace bm
