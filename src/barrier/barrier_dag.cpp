#include "barrier/barrier_dag.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace bm {

BarrierDag::BarrierDag(std::size_t num_barrier_ids, BarrierId initial,
                       std::span<const BarrierChainInput> chains,
                       Time barrier_latency)
    : initial_(initial),
      latency_(barrier_latency),
      index_(num_barrier_ids, kInvalidNode) {
  BM_REQUIRE(initial < num_barrier_ids, "initial barrier id out of range");
  BM_REQUIRE(barrier_latency >= 0, "barrier latency must be >= 0");

  auto intern = [&](BarrierId b) -> NodeId {
    BM_REQUIRE(b < index_.size(), "barrier id out of range");
    if (index_[b] == kInvalidNode) {
      index_[b] = g_.add_node();
      ids_.push_back(b);
    }
    return index_[b];
  };
  intern(initial_);

  for (const BarrierChainInput& chain : chains) {
    BM_REQUIRE(!chain.barriers.empty() && chain.barriers.front() == initial_,
               "every chain must start at the initial barrier");
    BM_REQUIRE(chain.segments.size() + 1 == chain.barriers.size(),
               "chain segment count mismatch");
    for (std::size_t i = 0; i + 1 < chain.barriers.size(); ++i) {
      const NodeId u = intern(chain.barriers[i]);
      const NodeId v = intern(chain.barriers[i + 1]);
      BM_REQUIRE(u != v, "consecutive chain barriers must differ");
      g_.add_edge(u, v);
      const auto key = edge_key(u, v);
      const auto it = edges_.find(key);
      if (it == edges_.end())
        edges_.emplace(key, chain.segments[i]);
      else
        it->second = it->second.join_max(chain.segments[i]);  // Fig. 13 rule
    }
  }
  BM_REQUIRE(is_dag(g_), "barrier ordering contains a cycle");

  // Flat weighted adjacency and the topological order, computed once and
  // reused by every ψ sweep (hoists the std::map lookup out of the hot path).
  topo_ = topo_order(g_);
  adj_.resize(g_.size());
  for (NodeId n = 0; n < g_.size(); ++n) {
    adj_[n].reserve(g_.succs(n).size());
    for (NodeId s : g_.succs(n)) {
      const TimeRange r = edges_.at(edge_key(n, s));
      adj_[n].push_back({s, TimeRange{r.min + latency_, r.max + latency_}});
    }
  }
  psi_min_cache_.resize(g_.size());
  psi_max_cache_.resize(g_.size());

  // Reflexive-transitive closure, in reverse topological order. (Built
  // before the fire ranges: the ψ sweeps prune on it.)
  reach_.assign(g_.size(), DynBitset(g_.size()));
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const NodeId n = *it;
    reach_[n].set(n);
    for (NodeId s : g_.succs(n)) reach_[n] |= reach_[s];
  }

  // Fire ranges: longest paths from the initial barrier under min and max
  // edge times (achieved by the all-min / all-max draws respectively).
  const NodeId root = index_[initial_];
  const std::vector<Time>& fmin = psi_from(root, /*use_max=*/false);
  const std::vector<Time>& fmax = psi_from(root, /*use_max=*/true);
  fire_.resize(g_.size());
  for (NodeId n = 0; n < g_.size(); ++n) {
    BM_REQUIRE(fmin[n] != kUnreachable,
               "barrier not reachable from the initial barrier");
    fire_[n] = TimeRange{fmin[n], fmax[n]};
  }

  dom_ = std::make_unique<DominatorTree>(g_, root);
}

BarrierDag::~BarrierDag() {
  if (!tally_.live) return;  // moved-from shell: tallies were transferred
  BM_OBS_COUNT("barrier.dag_builds");
  if (tally_.hits > 0) BM_OBS_COUNT_N("barrier.psi_cache_hits", tally_.hits);
  if (tally_.misses > 0)
    BM_OBS_COUNT_N("barrier.psi_cache_misses", tally_.misses);
}

const std::vector<Time>& BarrierDag::psi_from(NodeId src, bool use_max) const {
  std::vector<Time>& dist =
      use_max ? psi_max_cache_[src] : psi_min_cache_[src];
  if (!dist.empty()) {
    ++tally_.hits;  // memo hit: O(1) amortized queries
    return dist;
  }
  ++tally_.misses;
  dist.assign(g_.size(), kUnreachable);
  dist[src] = 0;
  const DynBitset& reachable = reach_[src];
  for (NodeId n : topo_) {
    if (!reachable.test(n) || dist[n] == kUnreachable) continue;
    for (const WeightedEdge& e : adj_[n]) {
      const Time d = dist[n] + (use_max ? e.w.max : e.w.min);
      if (d > dist[e.to]) dist[e.to] = d;
    }
  }
  return dist;
}

bool BarrierDag::known(BarrierId b) const {
  return b < index_.size() && index_[b] != kInvalidNode;
}

NodeId BarrierDag::index_of(BarrierId b) const {
  BM_REQUIRE(known(b), "unknown barrier id");
  return index_[b];
}

bool BarrierDag::has_edge(BarrierId u, BarrierId v) const {
  return edges_.contains(edge_key(index_of(u), index_of(v)));
}

TimeRange BarrierDag::edge_range(BarrierId u, BarrierId v) const {
  const auto it = edges_.find(edge_key(index_of(u), index_of(v)));
  BM_REQUIRE(it != edges_.end(), "no such barrier edge");
  return it->second;
}

TimeRange BarrierDag::fire_range(BarrierId b) const {
  return fire_[index_of(b)];
}

bool BarrierDag::path_exists(BarrierId u, BarrierId v) const {
  return reach_[index_of(u)].test(index_of(v));
}

BarrierId BarrierDag::common_dominator(BarrierId a, BarrierId b) const {
  return ids_[dom_->common_dominator(index_of(a), index_of(b))];
}

Time BarrierDag::psi_max(BarrierId u, BarrierId v) const {
  return psi_from(index_of(u), /*use_max=*/true)[index_of(v)];
}

Time BarrierDag::psi_min(BarrierId u, BarrierId v) const {
  return psi_from(index_of(u), /*use_max=*/false)[index_of(v)];
}

Time BarrierDag::psi_min_star(
    BarrierId u, BarrierId w,
    std::span<const std::pair<BarrierId, BarrierId>> forced_max) const {
  if (forced_max.empty()) return psi_min(u, w);  // plain ψ_min: memo hit
  std::vector<std::uint64_t> forced;
  forced.reserve(forced_max.size());
  for (const auto& [a, b] : forced_max)
    forced.push_back(edge_key(index_of(a), index_of(b)));
  std::sort(forced.begin(), forced.end());
  // The forced-edge set differs per query, so this sweep is not memoizable;
  // it still reuses the precomputed topo order, weighted adjacency, and
  // reachability pruning.
  const NodeId src = index_of(u);
  std::vector<Time> dist(g_.size(), kUnreachable);
  dist[src] = 0;
  const DynBitset& reachable = reach_[src];
  for (NodeId n : topo_) {
    if (!reachable.test(n) || dist[n] == kUnreachable) continue;
    for (const WeightedEdge& e : adj_[n]) {
      const bool force =
          std::binary_search(forced.begin(), forced.end(), edge_key(n, e.to));
      const Time d = dist[n] + (force ? e.w.max : e.w.min);
      if (d > dist[e.to]) dist[e.to] = d;
    }
  }
  return dist[index_of(w)];
}

std::vector<BarrierId> BarrierDag::linear_extension() const {
  std::vector<std::size_t> indegree(g_.size());
  for (NodeId n = 0; n < g_.size(); ++n) indegree[n] = g_.preds(n).size();

  auto better = [&](NodeId a, NodeId b) {  // true if a should fire before b
    const auto ka = std::pair<Time, BarrierId>{fire_[a].min, ids_[a]};
    const auto kb = std::pair<Time, BarrierId>{fire_[b].min, ids_[b]};
    return ka < kb;
  };
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < g_.size(); ++n)
    if (indegree[n] == 0) ready.push_back(n);

  std::vector<BarrierId> out;
  out.reserve(g_.size());
  while (!ready.empty()) {
    const auto it = std::min_element(ready.begin(), ready.end(), better);
    const NodeId n = *it;
    ready.erase(it);
    out.push_back(ids_[n]);
    for (NodeId s : g_.succs(n))
      if (--indegree[s] == 0) ready.push_back(s);
  }
  BM_ASSERT_INTERNAL(out.size() == g_.size(), "linear extension incomplete");
  return out;
}

BarrierDag::MaxPathRange::MaxPathRange(const BarrierDag& dag, NodeId from,
                                       NodeId to)
    : dag_(dag),
      inner_(dag.g_, from, to, [&dag](NodeId a, NodeId b) {
        return dag.edges_.at(edge_key(a, b)).max + dag.latency_;
      }) {}

bool BarrierDag::MaxPathRange::next(std::vector<BarrierId>& path,
                                    Time& length) {
  Path internal;
  if (!inner_.next(internal, length)) return false;
  path.clear();
  path.reserve(internal.size());
  for (NodeId n : internal) path.push_back(dag_.ids_[n]);
  return true;
}

BarrierDag::MaxPathRange BarrierDag::max_paths(BarrierId u,
                                               BarrierId v) const {
  return MaxPathRange(*this, index_of(u), index_of(v));
}

}  // namespace bm
