#include "barrier/barrier_dag.hpp"

#include <algorithm>
#include <bit>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/scratch.hpp"

namespace bm {

BarrierDag::BarrierDag(std::size_t num_barrier_ids, BarrierId initial,
                       std::span<const BarrierChainInput> chains,
                       Time barrier_latency) {
  init(num_barrier_ids, initial, chains, barrier_latency);
}

void BarrierDag::rebuild(std::size_t num_barrier_ids, BarrierId initial,
                         std::span<const BarrierChainInput> chains,
                         Time barrier_latency) {
  // Settle the generation being replaced exactly as its destructor would
  // have, then start a fresh tally for the new one.
  fold_tally();
  tally_.hits = tally_.misses = 0;
  tally_.live = true;
  init(num_barrier_ids, initial, chains, barrier_latency);
}

void BarrierDag::init(std::size_t num_barrier_ids, BarrierId initial,
                      std::span<const BarrierChainInput> chains,
                      Time barrier_latency) {
  BM_REQUIRE(initial < num_barrier_ids, "initial barrier id out of range");
  BM_REQUIRE(barrier_latency >= 0, "barrier latency must be >= 0");
  initial_ = initial;
  latency_ = barrier_latency;
  index_.assign(num_barrier_ids, kInvalidNode);
  ids_.clear();
  edges_.clear();
  lazy_g_.reset();
  dom_valid_ = false;
  linext_.clear();

  auto intern = [&](BarrierId b) -> NodeId {
    BM_REQUIRE(b < index_.size(), "barrier id out of range");
    if (index_[b] == kInvalidNode) {
      index_[b] = static_cast<NodeId>(ids_.size());
      ids_.push_back(b);
    }
    return index_[b];
  };
  intern(initial_);

  for (const BarrierChainInput& chain : chains) {
    BM_REQUIRE(!chain.barriers.empty() && chain.barriers.front() == initial_,
               "every chain must start at the initial barrier");
    BM_REQUIRE(chain.segments.size() + 1 == chain.barriers.size(),
               "chain segment count mismatch");
    for (std::size_t i = 0; i + 1 < chain.barriers.size(); ++i) {
      const NodeId u = intern(chain.barriers[i]);
      const NodeId v = intern(chain.barriers[i + 1]);
      BM_REQUIRE(u != v, "consecutive chain barriers must differ");
      edges_.emplace_back(edge_key(u, v), chain.segments[i]);
    }
  }
  const std::size_t n_nodes = ids_.size();

  // Aggregate parallel chain traversals of one edge with the Fig. 13 rule
  // (join_max), collapsing the raw list into a sorted unique-key table.
  // Keys are (source<<32)|target with both halves < n_nodes, so two stable
  // counting passes (by target, then by source) produce the full key order
  // in O(E + B) — cheaper than a comparison sort for the short, re-sorted-
  // per-rebuild chain edge lists.
  {
    ScratchVec<std::pair<std::uint64_t, TimeRange>> tmp_s;
    ScratchVec<std::uint32_t> cnt_s;
    auto& tmp = *tmp_s;
    auto& cnt = *cnt_s;
    tmp.resize(edges_.size());
    cnt.assign(n_nodes + 1, 0);
    for (const auto& e : edges_) ++cnt[static_cast<NodeId>(e.first) + 1];
    for (std::size_t v = 1; v <= n_nodes; ++v) cnt[v] += cnt[v - 1];
    for (const auto& e : edges_) tmp[cnt[static_cast<NodeId>(e.first)]++] = e;
    cnt.assign(n_nodes + 1, 0);
    for (const auto& e : tmp) ++cnt[(e.first >> 32) + 1];
    for (std::size_t v = 1; v <= n_nodes; ++v) cnt[v] += cnt[v - 1];
    for (const auto& e : tmp) edges_[cnt[e.first >> 32]++] = e;
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].first == edges_[i].first)
      edges_[out - 1].second = edges_[out - 1].second.join_max(edges_[i].second);
    else
      edges_[out++] = edges_[i];
  }
  edges_.resize(out);

  // Flat weighted adjacency straight from the sorted unique edge table (its
  // key order groups edges by source node), reused with `topo_` by every ψ
  // sweep. No per-node Digraph is materialized here — see lazy_digraph().
  adj_off_.assign(n_nodes + 1, 0);
  indeg_.assign(n_nodes, 0);
  for (const auto& [key, w] : edges_) {
    ++adj_off_[(key >> 32) + 1];
    ++indeg_[static_cast<NodeId>(key)];
  }
  for (std::size_t v = 1; v <= n_nodes; ++v) adj_off_[v] += adj_off_[v - 1];
  adj_dat_.resize(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const auto& [key, w] = edges_[i];
    adj_dat_[i] = {static_cast<NodeId>(key),
                   TimeRange{w.min + latency_, w.max + latency_}};
  }

  // Kahn order over the CSR; completing it doubles as the acyclicity check,
  // saving a separate is_dag sweep in this rebuilt-per-mutation constructor.
  topo_.clear();
  topo_.reserve(n_nodes);
  {
    ScratchVec<std::uint32_t> indeg_scratch;
    auto& indeg = *indeg_scratch;
    indeg.assign(indeg_.begin(), indeg_.end());
    for (NodeId n = 0; n < n_nodes; ++n)
      if (indeg[n] == 0) topo_.push_back(n);
    for (std::size_t k = 0; k < topo_.size(); ++k) {
      const NodeId n = topo_[k];
      for (std::uint32_t e = adj_off_[n]; e < adj_off_[n + 1]; ++e)
        if (--indeg[adj_dat_[e].to] == 0) topo_.push_back(adj_dat_[e].to);
    }
  }
  BM_REQUIRE(topo_.size() == n_nodes, "graph has a cycle");

  // ψ caches: flat B×B rows, uninitialized (`new Time[...]` without parens
  // skips the value-init zero-fill; psi_row overwrites a row before reading
  // it). The fire-range computation below always fills the root rows, so
  // the buffers are never allocated in vain; a power-of-two capacity is
  // kept across rebuilds so the scheduler's one-barrier-at-a-time growth
  // reallocates only logarithmically often.
  const std::size_t psi_need = n_nodes * n_nodes;
  if (psi_cap_ < psi_need || !psi_min_cache_) {
    const std::size_t cap = std::bit_ceil(psi_need);
    psi_cap_ = 0;  // stay consistent if an allocation throws
    psi_min_cache_.reset(new Time[cap]);
    psi_max_cache_.reset(new Time[cap]);
    psi_cap_ = cap;
  }
  psi_min_filled_.assign(n_nodes, 0);
  psi_max_filled_.assign(n_nodes, 0);

  // Reflexive-transitive closure as flat bit rows, in reverse topological
  // order. (Built before the fire ranges: the ψ sweeps prune on it.)
  reach_stride_ = (n_nodes + 63) / 64;
  reach_.assign(n_nodes * reach_stride_, 0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const NodeId n = *it;
    std::uint64_t* row = reach_.data() + n * reach_stride_;
    row[n >> 6] |= std::uint64_t{1} << (n & 63);
    for (std::uint32_t e = adj_off_[n]; e < adj_off_[n + 1]; ++e) {
      const std::uint64_t* src = reach_.data() + adj_dat_[e].to * reach_stride_;
      for (std::size_t w = 0; w < reach_stride_; ++w) row[w] |= src[w];
    }
  }

  // Fire ranges: longest paths from the initial barrier under min and max
  // edge times (achieved by the all-min / all-max draws respectively).
  const NodeId root = index_[initial_];
  const Time* fmin = psi_row(root, /*use_max=*/false);
  const Time* fmax = psi_row(root, /*use_max=*/true);
  fire_.resize(n_nodes);
  for (NodeId n = 0; n < n_nodes; ++n) {
    BM_REQUIRE(fmin[n] != kUnreachable,
               "barrier not reachable from the initial barrier");
    fire_[n] = TimeRange{fmin[n], fmax[n]};
  }
}

const Digraph& BarrierDag::lazy_digraph() const {
  if (!lazy_g_) {
    auto g = std::make_unique<Digraph>();
    for (std::size_t n = 0; n < size(); ++n) g->add_node();
    for (const auto& [key, w] : edges_)
      g->add_edge(static_cast<NodeId>(key >> 32), static_cast<NodeId>(key));
    lazy_g_ = std::move(g);
  }
  return *lazy_g_;
}

void BarrierDag::fold_tally() const {
  if (!tally_.live) return;  // moved-from shell: tallies were transferred
  BM_OBS_COUNT("barrier.dag_builds");
  if (tally_.hits > 0) BM_OBS_COUNT_N("barrier.psi_cache_hits", tally_.hits);
  if (tally_.misses > 0)
    BM_OBS_COUNT_N("barrier.psi_cache_misses", tally_.misses);
}

BarrierDag::~BarrierDag() { fold_tally(); }

const TimeRange* BarrierDag::find_edge(NodeId a, NodeId b) const {
  const std::uint64_t key = edge_key(a, b);
  const auto it = std::lower_bound(
      edges_.begin(), edges_.end(), key,
      [](const auto& e, std::uint64_t k) { return e.first < k; });
  if (it == edges_.end() || it->first != key) return nullptr;
  return &it->second;
}

const Time* BarrierDag::psi_row(NodeId src, bool use_max) const {
  std::uint8_t& filled = use_max ? psi_max_filled_[src] : psi_min_filled_[src];
  Time* const cache = (use_max ? psi_max_cache_ : psi_min_cache_).get();
  if (filled) {
    ++tally_.hits;  // memo hit: O(1) amortized queries
    return cache + src * size();
  }
  ++tally_.misses;
  Time* dist = cache + src * size();
  filled = 1;
  std::fill(dist, dist + size(), kUnreachable);
  dist[src] = 0;
  for (NodeId n : topo_) {
    if (!reach_test(src, n) || dist[n] == kUnreachable) continue;
    for (std::uint32_t e = adj_off_[n]; e < adj_off_[n + 1]; ++e) {
      const WeightedEdge& we = adj_dat_[e];
      const Time d = dist[n] + (use_max ? we.w.max : we.w.min);
      if (d > dist[we.to]) dist[we.to] = d;
    }
  }
  return dist;
}

bool BarrierDag::known(BarrierId b) const {
  return b < index_.size() && index_[b] != kInvalidNode;
}

NodeId BarrierDag::index_of(BarrierId b) const {
  BM_REQUIRE(known(b), "unknown barrier id");
  return index_[b];
}

bool BarrierDag::has_edge(BarrierId u, BarrierId v) const {
  return find_edge(index_of(u), index_of(v)) != nullptr;
}

TimeRange BarrierDag::edge_range(BarrierId u, BarrierId v) const {
  const TimeRange* r = find_edge(index_of(u), index_of(v));
  BM_REQUIRE(r != nullptr, "no such barrier edge");
  return *r;
}

TimeRange BarrierDag::fire_range(BarrierId b) const {
  return fire_[index_of(b)];
}

bool BarrierDag::path_exists(BarrierId u, BarrierId v) const {
  return reach_test(index_of(u), index_of(v));
}

BarrierId BarrierDag::common_dominator(BarrierId a, BarrierId b) const {
  // Built on first use: rebuilds triggered by merge sweeps often never ask
  // for a dominator before the next mutation invalidates the dag. The CSR
  // views are assembled in pooled scratch straight from the sorted edge
  // table (succ offsets are adj_off_; predecessors via one counting pass),
  // so no Digraph and no per-node vectors are materialized.
  if (!dom_valid_) {
    const std::size_t n = size();
    ScratchVec<NodeId> sdat_s, pdat_s;
    ScratchVec<std::uint32_t> poff_s, cur_s;
    auto& sdat = *sdat_s;
    auto& pdat = *pdat_s;
    auto& poff = *poff_s;
    auto& cur = *cur_s;
    sdat.resize(edges_.size());
    for (std::size_t i = 0; i < edges_.size(); ++i)
      sdat[i] = static_cast<NodeId>(edges_[i].first);
    poff.resize(n + 1);
    poff[0] = 0;
    for (std::size_t v = 0; v < n; ++v) poff[v + 1] = poff[v] + indeg_[v];
    pdat.resize(edges_.size());
    cur.assign(poff.begin(), poff.end());
    for (const auto& [key, w] : edges_)
      pdat[cur[static_cast<NodeId>(key)]++] = static_cast<NodeId>(key >> 32);
    if (!dom_) dom_.emplace();
    dom_->rebuild(CsrAdjacency{{adj_off_.data(), n + 1},
                               {sdat.data(), sdat.size()},
                               {poff.data(), n + 1},
                               {pdat.data(), pdat.size()}},
                  index_[initial_]);
    dom_valid_ = true;
  }
  return ids_[dom_->common_dominator(index_of(a), index_of(b))];
}

Time BarrierDag::psi_max(BarrierId u, BarrierId v) const {
  return psi_row(index_of(u), /*use_max=*/true)[index_of(v)];
}

Time BarrierDag::psi_min(BarrierId u, BarrierId v) const {
  return psi_row(index_of(u), /*use_max=*/false)[index_of(v)];
}

Time BarrierDag::psi_min_star(
    BarrierId u, BarrierId w,
    std::span<const std::pair<BarrierId, BarrierId>> forced_max) const {
  if (forced_max.empty()) return psi_min(u, w);  // plain ψ_min: memo hit
  ScratchVec<std::uint64_t> forced_s;
  auto& forced = *forced_s;
  forced.clear();
  forced.reserve(forced_max.size());
  for (const auto& [a, b] : forced_max)
    forced.push_back(edge_key(index_of(a), index_of(b)));
  std::sort(forced.begin(), forced.end());
  // The forced-edge set differs per query, so this sweep is not memoizable;
  // it still reuses the precomputed topo order, CSR adjacency, and
  // reachability pruning.
  const NodeId src = index_of(u);
  ScratchVec<Time> dist_s;
  auto& dist = *dist_s;
  dist.assign(size(), kUnreachable);
  dist[src] = 0;
  for (NodeId n : topo_) {
    if (!reach_test(src, n) || dist[n] == kUnreachable) continue;
    for (std::uint32_t e = adj_off_[n]; e < adj_off_[n + 1]; ++e) {
      const WeightedEdge& we = adj_dat_[e];
      const bool force =
          std::binary_search(forced.begin(), forced.end(), edge_key(n, we.to));
      const Time d = dist[n] + (force ? we.w.max : we.w.min);
      if (d > dist[we.to]) dist[we.to] = d;
    }
  }
  return dist[index_of(w)];
}

std::vector<BarrierId> BarrierDag::linear_extension() const {
  std::vector<BarrierId> out;
  linear_extension_into(out);
  return out;
}

void BarrierDag::linear_extension_into(std::vector<BarrierId>& out) const {
  if (!linext_.empty()) {
    out.assign(linext_.begin(), linext_.end());
    return;
  }
  ScratchVec<std::uint32_t> indegree_s;
  ScratchVec<NodeId> ready_s;
  auto& indegree = *indegree_s;
  auto& ready = *ready_s;
  indegree.assign(indeg_.begin(), indeg_.end());

  auto better = [&](NodeId a, NodeId b) {  // true if a should fire before b
    const auto ka = std::pair<Time, BarrierId>{fire_[a].min, ids_[a]};
    const auto kb = std::pair<Time, BarrierId>{fire_[b].min, ids_[b]};
    return ka < kb;
  };
  ready.clear();
  for (NodeId n = 0; n < size(); ++n)
    if (indegree[n] == 0) ready.push_back(n);

  out.clear();
  out.reserve(size());
  while (!ready.empty()) {
    const auto it = std::min_element(ready.begin(), ready.end(), better);
    const NodeId n = *it;
    ready.erase(it);
    out.push_back(ids_[n]);
    for (std::uint32_t e = adj_off_[n]; e < adj_off_[n + 1]; ++e)
      if (--indegree[adj_dat_[e].to] == 0) ready.push_back(adj_dat_[e].to);
  }
  BM_ASSERT_INTERNAL(out.size() == size(), "linear extension incomplete");
  linext_ = out;
}

BarrierDag::MaxPathRange::MaxPathRange(const BarrierDag& dag, NodeId from,
                                       NodeId to)
    : dag_(dag),
      inner_(dag.lazy_digraph(), from, to, [&dag](NodeId a, NodeId b) {
        const TimeRange* r = dag.find_edge(a, b);
        BM_ASSERT_INTERNAL(r != nullptr, "missing edge in path enumeration");
        return r->max + dag.latency_;
      }) {}

bool BarrierDag::MaxPathRange::next(std::vector<BarrierId>& path,
                                    Time& length) {
  Path internal;
  if (!inner_.next(internal, length)) return false;
  path.clear();
  path.reserve(internal.size());
  for (NodeId n : internal) path.push_back(dag_.ids_[n]);
  return true;
}

BarrierDag::MaxPathRange BarrierDag::max_paths(BarrierId u,
                                               BarrierId v) const {
  return MaxPathRange(*this, index_of(u), index_of(v));
}

}  // namespace bm
