#include "serve/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <condition_variable>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "support/assert.hpp"
#include "support/ordered_mutex.hpp"

namespace bm::serve {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

int make_uds_listener(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  BM_REQUIRE(fd >= 0, "socket(AF_UNIX): " + errno_string(errno));
  ::unlink(path.c_str());  // stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BM_REQUIRE(path.size() < sizeof(addr.sun_path), "socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = errno_string(errno);
    close_quiet(fd);
    throw Error("bind(" + path + "): " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = errno_string(errno);
    close_quiet(fd);
    throw Error("listen(" + path + "): " + err);
  }
  return fd;
}

int make_tcp_listener(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BM_REQUIRE(fd >= 0, "socket(AF_INET): " + errno_string(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = errno_string(errno);
    close_quiet(fd);
    throw Error("tcp bind/listen on port " + std::to_string(port) + ": " +
                err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port = ntohs(bound.sin_port);
  return fd;
}

/// Per-connection state shared with in-flight response callbacks. The
/// connection thread only closes the fd after `outstanding` drops to zero,
/// so a callback never writes to a dead descriptor.
struct ConnState {
  int fd = -1;
  /// Serializes response frames. Ordered before `mu`: the response path
  /// may finish a frame write and then bump the outstanding count down.
  OrderedMutex write_mu{LockLevel::kConnWrite, "ConnState.write_mu"};

  OrderedMutex mu{LockLevel::kConnState, "ConnState.mu"};
  std::condition_variable_any cv;
  std::size_t outstanding = 0;
  bool write_failed = false;

  void begin_request() {
    OrderedLock lock(mu);
    ++outstanding;
  }
  void end_request() {
    OrderedLock lock(mu);
    --outstanding;
    if (outstanding == 0) cv.notify_all();
  }
  void wait_quiesced() {
    OrderedLock lock(mu);
    cv.wait(lock, [this] { return outstanding == 0; });
  }
};

}  // namespace

struct Server::Impl {
  NetConfig cfg;
  int uds_fd = -1;
  int tcp_fd = -1;
  int stop_pipe[2] = {-1, -1};

  OrderedMutex conn_mu{LockLevel::kServerConns, "Server.conn_mu"};
  std::vector<std::shared_ptr<ConnState>> conns;
  std::vector<std::thread> conn_threads;

  ServeCore* core = nullptr;

  void serve_connection(const std::shared_ptr<ConnState>& conn) {
    std::vector<CancelToken> tokens;
    for (;;) {
      std::optional<std::string> payload;
      try {
        payload = read_frame(conn->fd);
      } catch (const std::exception&) {
        break;  // truncated frame / reset: treat as disconnect
      }
      if (!payload) break;  // clean EOF

      Request req;
      try {
        req = decode_request(*payload);
      } catch (const std::exception& e) {
        Response resp;
        resp.status = Status::kError;
        resp.error = e.what();
        OrderedLock lock(conn->write_mu);
        if (!write_frame(conn->fd, encode_response(resp))) break;
        continue;
      }

      conn->begin_request();
      CancelToken token = core->submit(std::move(req), [conn](
                                                          const Response& r) {
        {
          OrderedLock lock(conn->write_mu);
          if (!conn->write_failed &&
              !write_frame(conn->fd, encode_response(r)))
            conn->write_failed = true;
        }
        conn->end_request();
      });
      tokens.push_back(std::move(token));
    }

    // Disconnect: whatever is still queued for this connection is torn up;
    // running requests finish and their responses are written (harmlessly
    // failing if the peer is truly gone) before the fd closes.
    for (CancelToken& t : tokens) t.cancel();
    conn->wait_quiesced();
    // conn_mu also guards the drain path's shutdown(fd) against this close
    // recycling the descriptor number under it.
    OrderedLock lock(conn_mu);
    ::shutdown(conn->fd, SHUT_RDWR);
    close_quiet(conn->fd);
    conn->fd = -1;
  }
};

Server::Server(NetConfig cfg) : impl_(std::make_unique<Impl>()) {
  // A peer vanishing mid-response must surface as a write error on that
  // connection, not a process-wide SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  impl_->cfg = std::move(cfg);
  core_ = std::make_unique<ServeCore>(impl_->cfg.core);
  impl_->core = core_.get();

  BM_REQUIRE(::pipe(impl_->stop_pipe) == 0, "pipe: " + errno_string(errno));
  // Self-pipe hygiene: never leak into exec'd children, and never let the
  // event loop block on the pipe itself — commands arrive via poll(), and
  // a full pipe on the write side just means a wakeup is already pending.
  for (const int fd : impl_->stop_pipe) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
  }
  if (!impl_->cfg.uds_path.empty())
    impl_->uds_fd = make_uds_listener(impl_->cfg.uds_path);
  if (impl_->cfg.tcp_port >= 0)
    impl_->tcp_fd = make_tcp_listener(impl_->cfg.tcp_port, tcp_port_);
  BM_REQUIRE(impl_->uds_fd >= 0 || impl_->tcp_fd >= 0,
             "server needs at least one listener (socket path or port)");
}

Server::~Server() {
  close_quiet(impl_->uds_fd);
  close_quiet(impl_->tcp_fd);
  close_quiet(impl_->stop_pipe[0]);
  close_quiet(impl_->stop_pipe[1]);
  if (!impl_->cfg.uds_path.empty()) ::unlink(impl_->cfg.uds_path.c_str());
}

void Server::request_stop() {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(impl_->stop_pipe[1], &byte, 1);
}

void Server::request_dump() {
  const char byte = 'd';
  [[maybe_unused]] ssize_t n = ::write(impl_->stop_pipe[1], &byte, 1);
}

void Server::run() {
  for (;;) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {impl_->stop_pipe[0], POLLIN, 0};
    if (impl_->uds_fd >= 0) fds[nfds++] = {impl_->uds_fd, POLLIN, 0};
    if (impl_->tcp_fd >= 0) fds[nfds++] = {impl_->tcp_fd, POLLIN, 0};

    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error("poll: " + errno_string(errno));
    }
    if (fds[0].revents & POLLIN) {
      // One command byte per wakeup: 's' = graceful stop, 'd' = dump the
      // stats snapshot to stderr (the SIGUSR1 path) and keep serving. A
      // signal landing between poll() and read() must not be mistaken for
      // a stop command: retry on EINTR, and treat a drained pipe (EAGAIN —
      // another wakeup already consumed the byte) as a no-op. Only a dead
      // pipe degrades to stop.
      char cmd = 0;
      for (;;) {
        const ssize_t n = ::read(impl_->stop_pipe[0], &cmd, 1);
        if (n == 1) break;
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          cmd = 0;
          break;
        }
        cmd = 's';  // EOF or hard error: the pipe is gone, shut down
        break;
      }
      if (cmd == 0) continue;
      if (cmd == 's') break;
      if (cmd == 'd') {
        const std::string snap = core_->stats_json() + "\n";
        [[maybe_unused]] ssize_t n =
            ::write(STDERR_FILENO, snap.data(), snap.size());
      }
      continue;
    }

    for (nfds_t i = 1; i < nfds; ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;  // transient accept failure
      auto conn = std::make_shared<ConnState>();
      conn->fd = client;
      OrderedLock lock(impl_->conn_mu);
      impl_->conns.push_back(conn);
      impl_->conn_threads.emplace_back(
          [impl = impl_.get(), conn] { impl->serve_connection(conn); });
    }
  }

  // Graceful drain: stop accepting (listeners stay bound but unpolled),
  // complete every admitted request — responses reach their connections
  // because connection teardown waits for its outstanding count — then
  // unblock the reader threads and join them.
  core_->drain();
  {
    OrderedLock lock(impl_->conn_mu);
    for (const auto& conn : impl_->conns)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (std::thread& t : impl_->conn_threads) t.join();
  impl_->conn_threads.clear();
  impl_->conns.clear();
}

}  // namespace bm::serve
