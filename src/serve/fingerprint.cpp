#include "serve/fingerprint.hpp"

#include <algorithm>
#include <array>

#include "ir/timing.hpp"
#include "support/assert.hpp"

namespace bm::serve {

namespace {

/// SplitMix64 finalizer — the avalanche core used for all label mixing.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b * 0xD6E8FEB86659FD93ull));
}

/// Edge kinds; dataflow kinds encode the consumer's operand slot so
/// non-commutative operand order is structural.
enum EdgeKind : std::uint32_t {
  kDataflowSlot0 = 1,
  kDataflowSlot1 = 2,
  kMemFlow = 3,   // store → later load
  kMemAnti = 4,   // load → next store
  kMemOutput = 5  // store → next store
};

struct TypedEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t kind = 0;
};

bool has_tuple_operand(const Tuple& t, std::uint32_t u) {
  for (int k = 0; k < t.operand_count(); ++k)
    if (t.operand(k).is_tuple() && t.operand(k).tuple_id() == u) return true;
  return false;
}

/// The typed dependence edges of the scheduling DAG — same edge set and
/// suppression rules as InstrDag::build (dummies excluded), plus kinds.
std::vector<TypedEdge> typed_edges(const Program& prog) {
  const std::size_t n = prog.size();
  std::vector<TypedEdge> edges;
  edges.reserve(n * 2);

  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = prog[i];
    for (int k = 0; k < t.operand_count(); ++k) {
      if (!t.operand(k).is_tuple()) continue;
      if (k == 1 && t.operand(0) == t.operand(1)) continue;  // same producer
      edges.push_back({t.operand(k).tuple_id(), static_cast<std::uint32_t>(i),
                       k == 0 ? kDataflowSlot0 : kDataflowSlot1});
    }
  }

  std::vector<std::uint32_t> last_store(prog.num_vars(), ~0u);
  std::vector<std::vector<std::uint32_t>> loads_since(prog.num_vars());
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = prog[i];
    const auto node = static_cast<std::uint32_t>(i);
    if (t.is_load()) {
      if (last_store[t.var] != ~0u)
        edges.push_back({last_store[t.var], node, kMemFlow});
      loads_since[t.var].push_back(node);
    } else if (t.is_store()) {
      for (std::uint32_t l : loads_since[t.var])
        if (!has_tuple_operand(t, l)) edges.push_back({l, node, kMemAnti});
      if (last_store[t.var] != ~0u && !has_tuple_operand(t, last_store[t.var]))
        edges.push_back({last_store[t.var], node, kMemOutput});
      last_store[t.var] = node;
      loads_since[t.var].clear();
    }
  }
  return edges;
}

/// Base label: opcode + constant-operand signature. No uids, no var ids,
/// no program position — those are exactly the renumbering axes.
std::uint64_t base_label(const Tuple& t) {
  std::uint64_t h = mix64(0xB0A5E11Full + static_cast<std::uint64_t>(t.op));
  for (int k = 0; k < t.operand_count(); ++k) {
    if (!t.operand(k).is_const()) continue;
    h = mix2(h, mix2(static_cast<std::uint64_t>(k) + 17,
                     static_cast<std::uint64_t>(t.operand(k).const_value())));
  }
  return h;
}

std::size_t distinct_count(std::vector<std::uint64_t> labels) {
  std::sort(labels.begin(), labels.end());
  return static_cast<std::size_t>(
      std::unique(labels.begin(), labels.end()) - labels.begin());
}

}  // namespace

CanonicalProgram canonicalize_program(const Program& prog) {
  prog.validate();
  const std::size_t n = prog.size();
  const std::vector<TypedEdge> edges = typed_edges(prog);

  std::vector<std::uint64_t> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = base_label(prog[i]);

  // Weisfeiler–Lehman refinement with typed directed edges. Each round a
  // node absorbs the sorted multiset of (kind, neighbor label) over its
  // in-edges and (separately keyed) out-edges; sorting makes the round —
  // and therefore the final labels — independent of node numbering.
  // Rounds continue until the partition stops refining (checked twice to
  // ride out plateaus), bounded by n rounds (each strict refinement grows
  // the class count, which is capped by n).
  std::vector<std::vector<std::uint64_t>> contrib(n);
  std::vector<std::uint64_t> next(n);
  std::size_t classes = distinct_count(label);
  for (std::size_t round = 0; round < n && classes < n; ++round) {
    for (auto& c : contrib) c.clear();
    for (const TypedEdge& e : edges) {
      contrib[e.to].push_back(
          mix2(0xD0C0FEEDull + e.kind, label[e.from]) | 1ull);
      contrib[e.from].push_back(
          mix2(0x07C0DE50ull + e.kind, label[e.to]) & ~1ull);
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::sort(contrib[i].begin(), contrib[i].end());
      std::uint64_t h = mix2(0x5EEDF00Dull, label[i]);
      for (std::uint64_t c : contrib[i]) h = mix2(h, c);
      next[i] = h;
    }
    label.swap(next);
    const std::size_t refined = distinct_count(label);
    if (refined == classes) break;  // stable partition
    classes = refined;
  }

  CanonicalProgram out;

  // Order-independent combine: invariant under any renumbering by
  // construction (sum and xor over the label multiset plus edge triples).
  std::uint64_t acc_sum = mix64(n);
  std::uint64_t acc_xor = 0;
  for (std::uint64_t l : label) {
    const std::uint64_t m = mix64(l);
    acc_sum += m;
    acc_xor ^= m;
  }
  for (const TypedEdge& e : edges) {
    const std::uint64_t m =
        mix2(mix2(label[e.from], label[e.to]), 0xE06EULL + e.kind);
    acc_sum += m;
    acc_xor ^= m;
  }
  out.fingerprint = mix2(mix2(acc_sum, acc_xor), mix64(edges.size()));

  // Canonical order: stabilized label, ties by original index. Ties are
  // either true automorphisms (any choice yields identical bytes) or rare
  // WL-unresolved pairs (bytes may then differ between numberings of the
  // same program — the cache treats that as a miss, never a wrong hit).
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (label[a] != label[b]) return label[a] < label[b];
              return a < b;
            });
  out.inv_perm = order;
  out.perm.resize(n);
  for (std::size_t c = 0; c < n; ++c) out.perm[order[c]] = c;

  // Canonical bytes: nodes in canonical order with opcode, constant
  // operands, and every typed edge expressed in canonical indices. Equal
  // bytes <=> identical scheduling DAG (labels, kinds, and shape).
  std::vector<std::vector<std::uint64_t>> in_edges(n);
  for (const TypedEdge& e : edges)
    in_edges[e.to].push_back(static_cast<std::uint64_t>(e.kind) << 32 |
                             out.perm[e.from]);
  std::string& b = out.bytes;
  b.reserve(n * 24);
  b += "canon v1 n=" + std::to_string(n) +
       " m=" + std::to_string(edges.size()) + "\n";
  for (std::size_t c = 0; c < n; ++c) {
    const Tuple& t = prog[order[c]];
    b += std::to_string(static_cast<int>(t.op));
    for (int k = 0; k < t.operand_count(); ++k)
      if (t.operand(k).is_const())
        b += " c" + std::to_string(k) + ":" +
             std::to_string(t.operand(k).const_value());
    auto& ins = in_edges[order[c]];
    std::sort(ins.begin(), ins.end());
    for (std::uint64_t e : ins)
      b += " e" + std::to_string(e >> 32) + ":" +
           std::to_string(static_cast<std::uint32_t>(e));
    b += '\n';
  }
  return out;
}

std::uint64_t program_fingerprint(const Program& prog) {
  return canonicalize_program(prog).fingerprint;
}

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* kHex = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, fp >>= 4) s[i] = kHex[fp & 0xF];
  return s;
}

std::uint64_t config_digest(const SchedulerConfig& cfg, const TimingModel& tm,
                            std::uint64_t rng_key) {
  std::uint64_t h = mix64(0xC0FFEEull);
  h = mix2(h, cfg.num_procs);
  h = mix2(h, static_cast<std::uint64_t>(cfg.machine));
  h = mix2(h, static_cast<std::uint64_t>(cfg.barrier_latency));
  h = mix2(h, static_cast<std::uint64_t>(cfg.insertion));
  h = mix2(h, static_cast<std::uint64_t>(cfg.ordering));
  h = mix2(h, static_cast<std::uint64_t>(cfg.assignment));
  h = mix2(h, cfg.lookahead_window);
  h = mix2(h, (cfg.add_final_barrier ? 2u : 0u) | (cfg.repair_sweep ? 1u : 0u));
  for (int op = 0; op < static_cast<int>(kNumOpcodes); ++op) {
    const TimeRange& r = tm.range(static_cast<Opcode>(op));
    h = mix2(h, static_cast<std::uint64_t>(r.min));
    h = mix2(h, static_cast<std::uint64_t>(r.max));
  }
  return mix2(h, rng_key);
}

std::string rewrite_schedule_ids(const std::string& text,
                                 std::span<const std::uint32_t> map) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    // Instruction tokens appear only on stream lines ("P<p>: n<i> B<b> ...").
    if (!line.empty() && line[0] == 'P' &&
        line.find(':') != std::string_view::npos) {
      std::size_t i = 0;
      while (i < line.size()) {
        if (line[i] == ' ' && i + 1 < line.size() && line[i + 1] == 'n' &&
            i + 2 < line.size() && line[i + 2] >= '0' && line[i + 2] <= '9') {
          std::size_t j = i + 2;
          std::uint64_t id = 0;
          while (j < line.size() && line[j] >= '0' && line[j] <= '9')
            id = id * 10 + static_cast<std::uint64_t>(line[j++] - '0');
          BM_REQUIRE(id < map.size(), "schedule id out of range for rewrite");
          out += " n" + std::to_string(map[id]);
          i = j;
        } else {
          out += line[i++];
        }
      }
    } else {
      out.append(line);
    }
    if (eol < text.size()) out += '\n';
    pos = eol + 1;
  }
  return out;
}

}  // namespace bm::serve
