#include "serve/cache.hpp"

#include "obs/obs.hpp"
#include "serve/fingerprint.hpp"

namespace bm::serve {

ScheduleCache::ScheduleCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {}

ScheduleCache::Hit ScheduleCache::lookup(
    std::uint64_t fingerprint, std::uint64_t config_digest,
    const std::string& canonical_bytes,
    std::span<const std::uint32_t> canon_to_request) {
  const Key key{fingerprint, config_digest};
  std::string text_canonical;
  ScheduleStats stats;
  {
    OrderedLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      BM_OBS_COUNT("cache.miss");
      return {};
    }
    if (it->second->canonical_bytes != canonical_bytes) {
      // Same 64-bit fingerprint, different canonical program: either a hash
      // collision or a WL-unresolved automorphism tie. Correctness demands
      // a miss; the caller recomputes and insert() replaces this entry.
      ++stats_.misses;
      ++stats_.collisions;
      BM_OBS_COUNT("cache.miss");
      BM_OBS_COUNT("cache.collision");
      return {};
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    ++stats_.hits;
    BM_OBS_COUNT("cache.hit");
    text_canonical = it->second->schedule_text;
    stats = it->second->stats;
  }
  // Rewrite outside the lock: O(text) work that needs no cache state.
  Hit hit;
  hit.found = true;
  hit.schedule_text = rewrite_schedule_ids(text_canonical, canon_to_request);
  hit.stats = stats;
  return hit;
}

void ScheduleCache::insert(std::uint64_t fingerprint,
                           std::uint64_t config_digest,
                           std::string canonical_bytes,
                           std::string schedule_text_canonical,
                           const ScheduleStats& stats) {
  if (max_entries_ == 0) return;
  Entry e;
  e.key = Key{fingerprint, config_digest};
  e.footprint = sizeof(Entry) + canonical_bytes.size() +
                schedule_text_canonical.size();
  e.canonical_bytes = std::move(canonical_bytes);
  e.schedule_text = std::move(schedule_text_canonical);
  e.stats = stats;

  OrderedLock lock(mu_);
  auto it = index_.find(e.key);
  if (it != index_.end()) {
    // Colliding or racing insert: keep the newest computation.
    stats_.bytes -= it->second->footprint;
    --stats_.entries;
    lru_.erase(it->second);
    index_.erase(it);
  }
  stats_.bytes += e.footprint;
  ++stats_.entries;
  ++stats_.insertions;
  BM_OBS_COUNT("cache.insert");
  lru_.push_front(std::move(e));
  index_.emplace(lru_.front().key, lru_.begin());
  evict_overflow_locked();
}

void ScheduleCache::evict_overflow_locked() {
  while (stats_.entries > max_entries_ ||
         (max_bytes_ > 0 && stats_.bytes > max_bytes_ && stats_.entries > 1)) {
    Entry& victim = lru_.back();
    stats_.bytes -= victim.footprint;
    --stats_.entries;
    ++stats_.evictions;
    BM_OBS_COUNT("cache.evict");
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

CacheStats ScheduleCache::stats() const {
  OrderedLock lock(mu_);
  return stats_;
}

void ScheduleCache::clear() {
  OrderedLock lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

}  // namespace bm::serve
