// Bounded, thread-safe LRU cache of computed schedules, keyed by canonical
// program fingerprint + configuration digest (serve/fingerprint.hpp).
//
// Entries store the schedule *in canonical instruction numbering* plus the
// canonical byte serialization that produced them. A lookup therefore
// serves requests whose programs are arbitrary renumberings of a cached
// one: the caller canonicalizes its program, probes with the fingerprint,
// and the cache (a) verifies the request's canonical bytes equal the
// entry's — a WL hash collision or unresolved automorphism tie degrades to
// a miss, never a wrong schedule — and (b) returns the schedule text
// rewritten into the request's own numbering via its inverse permutation.
//
// Capacity is bounded both by entry count and by total byte footprint
// (canonical bytes + schedule text); eviction is strict LRU. All methods
// are safe to call from any worker thread.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <unordered_map>

#include "sched/scheduler.hpp"
#include "support/ordered_mutex.hpp"

namespace bm::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t collisions = 0;  ///< fingerprint matched, bytes differed
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  ///< current
  std::uint64_t bytes = 0;    ///< current footprint
};

class ScheduleCache {
 public:
  /// `max_entries` == 0 disables the cache (every probe misses, inserts
  /// are dropped); `max_bytes` bounds the summed entry footprints.
  ScheduleCache(std::size_t max_entries, std::size_t max_bytes);

  struct Hit {
    bool found = false;
    std::string schedule_text;  ///< in the *request's* numbering
    ScheduleStats stats;
  };

  /// Probes for (fingerprint, config_digest). `canonical_bytes` is the
  /// request program's canonical serialization; `canon_to_request` maps
  /// canonical index -> request instruction id (CanonicalProgram::inv_perm).
  Hit lookup(std::uint64_t fingerprint, std::uint64_t config_digest,
             const std::string& canonical_bytes,
             std::span<const std::uint32_t> canon_to_request);

  /// Inserts a freshly computed schedule. `schedule_text_canonical` must
  /// already be in canonical numbering (rewrite_schedule_ids with
  /// CanonicalProgram::perm). Replaces any colliding entry.
  void insert(std::uint64_t fingerprint, std::uint64_t config_digest,
              std::string canonical_bytes, std::string schedule_text_canonical,
              const ScheduleStats& stats);

  CacheStats stats() const;
  void clear();

 private:
  struct Key {
    std::uint64_t fp = 0;
    std::uint64_t cfg = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.fp ^ (k.cfg * 0x9E3779B97F4A7C15ull));
    }
  };
  struct Entry {
    Key key;
    std::string canonical_bytes;
    std::string schedule_text;  ///< canonical numbering
    ScheduleStats stats;
    std::size_t footprint = 0;
  };

  void evict_overflow_locked();

  const std::size_t max_entries_;
  const std::size_t max_bytes_;

  mutable OrderedMutex mu_{LockLevel::kScheduleCache, "ScheduleCache.mu"};
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  CacheStats stats_;
};

}  // namespace bm::serve
