// Live telemetry for the serving stack: per-request phase timings, latency
// histograms (since-boot and trailing-window), a JSONL access log with
// size-based rotation, and threshold-triggered per-request Perfetto traces.
//
// Everything here measures *wall-clock* quantities, which is exactly what
// the registry counters must never hold (experiment manifests embed
// counter deltas and stay byte-identical across `--jobs`). Telemetry
// therefore lives beside the registry, not in it: latencies go into
// obs::LatencyHistogram cells owned by this layer, and the on-demand
// snapshot additionally publishes a few headline numbers as gauges in the
// `serve-metrics.*` namespace, which the experiment harness excludes from
// manifests exactly like `mem.*` (src/exp/experiment.cpp).
//
// Request lifecycle instrumentation:
//   - every request entering ServeCore is stamped with a monotonic
//     server-side request id (rid) and its admission timestamp;
//   - the processing pipeline attributes time to phases (queue-wait,
//     fingerprint, cache lookup, cold schedule, verify, serialize,
//     write-back) via PhaseScope RAII marks on a per-request
//     RequestTiming;
//   - record() — called exactly once per request, after the response
//     callback ran — folds the timing into the histograms, appends one
//     access-log line, and emits a standalone trace if the request was
//     slower than the configured threshold.
//
// Histogram recording compiles out under `-DBM_OBS=OFF` (quantiles in the
// stats snapshot read 0); rid stamping, the access log, and slow-request
// traces are explicit operator features and stay live in every build.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/latency.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "support/ordered_mutex.hpp"

namespace bm::serve {

/// Where a request's wall time went. kQueueWait is admission → worker
/// pickup; kWriteBack is the response callback (the frame write on the
/// network path). The scheduling phases mirror ServeCore::process_scheduling.
enum class Phase : std::size_t {
  kQueueWait = 0,
  kFingerprint,
  kCacheLookup,
  kColdSchedule,
  kVerify,
  kSerialize,
  kWriteBack,
};
inline constexpr std::size_t kNumPhases = 7;

/// Snake-case phase name, as used in stats JSON keys and access-log lines.
const char* phase_name(Phase p);

/// Per-request timing record, filled in as the request moves through the
/// core and consumed exactly once by ServeTelemetry::record().
struct RequestTiming {
  std::uint64_t rid = 0;        ///< server-stamped, monotonic from 1
  std::uint64_t client_id = 0;  ///< the id the client sent (echoed back)
  Verb verb = Verb::kPing;
  Status status = Status::kOk;
  CacheOutcome cache = CacheOutcome::kBypass;
  std::string fingerprint;      ///< response fingerprint (maybe empty)

  std::uint64_t admit_us = 0;   ///< ServeTelemetry::now_us() at admission
  std::uint64_t total_us = 0;   ///< admission → answered

  struct Slice {
    std::uint64_t start_us = 0;  ///< first entry into the phase
    std::uint64_t dur_us = 0;    ///< accumulated across entries
    std::uint64_t entries = 0;
  };
  std::array<Slice, kNumPhases> phases{};

  void add_phase(Phase p, std::uint64_t start_us, std::uint64_t dur_us) {
    Slice& s = phases[static_cast<std::size_t>(p)];
    if (s.entries == 0) s.start_us = start_us;
    s.dur_us += dur_us;
    ++s.entries;
  }
};

struct TelemetryConfig {
  /// JSONL access log (one line per answered request); empty = off.
  std::string access_log_path;
  /// Rotate when the current file exceeds this; the previous generation is
  /// kept as `<path>.1` (one generation, bounded disk).
  std::size_t access_log_rotate_bytes = 64u << 20;

  /// Emit a standalone Perfetto trace for any request whose wall time
  /// meets this threshold (microseconds; 0 = off). Requires trace_dir.
  std::uint64_t slow_trace_us = 0;
  std::string slow_trace_dir;
  /// Emission stops after this many traces (bounded disk under a
  /// mis-tuned threshold); the stats snapshot reports the suppressions.
  std::size_t slow_trace_max = 256;

  /// Trailing-window histogram slot width (window = 8 slots).
  std::uint64_t window_slot_us = 1'000'000;
};

/// The core-level totals folded into a stats snapshot. Mirrors
/// core.hpp's CoreStats (kept separate so telemetry does not depend on the
/// core layer above it).
struct CoreTotals {
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t errors = 0;
  std::uint64_t queued = 0;
  std::uint64_t workers = 0;
  CacheStats cache;
};

class ServeTelemetry {
 public:
  explicit ServeTelemetry(TelemetryConfig cfg);
  ~ServeTelemetry();

  ServeTelemetry(const ServeTelemetry&) = delete;
  ServeTelemetry& operator=(const ServeTelemetry&) = delete;

  /// Microseconds since telemetry construction (daemon start) — the time
  /// base for every RequestTiming field and slow-trace timestamp.
  std::uint64_t now_us() const;

  std::uint64_t next_rid() { return rid_.fetch_add(1) + 1; }

  /// Requests currently executing on a worker (vs waiting in the queue).
  // mo: standalone inflight gauge — read only by the stats snapshot, which
  // tolerates a momentarily stale value; nothing is published through it.
  void worker_begin() { running_.fetch_add(1, std::memory_order_relaxed); }
  void worker_end() { running_.fetch_sub(1, std::memory_order_relaxed); }
  std::uint64_t running() const {
    // mo: same gauge contract as worker_begin/worker_end above.
    return running_.load(std::memory_order_relaxed);
  }

  /// Folds one finished request into the histograms, appends its
  /// access-log line, and emits a slow trace when over threshold. Called
  /// exactly once per request (answered or rejected).
  void record(const RequestTiming& t);

  /// The `stats v1` snapshot: one JSON object with uptime, inflight,
  /// queue depth, totals, cache effectiveness, latency quantiles overall /
  /// per phase / over the trailing window, and access-log + slow-trace
  /// state. Also publishes headline values as `serve-metrics.*` gauges.
  std::string stats_json(const CoreTotals& totals) const;

  const TelemetryConfig& config() const { return cfg_; }

 private:
  void append_access_log(const RequestTiming& t);
  void maybe_emit_slow_trace(const RequestTiming& t);

  TelemetryConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> rid_{0};
  std::atomic<std::uint64_t> running_{0};

  obs::LatencyHistogram total_;
  obs::WindowedLatencyHistogram window_;
  std::array<obs::LatencyHistogram, kNumPhases> phase_;

  /// Guards the access-log stream + tallies. Leaf in the hierarchy: held
  /// only around fwrite/rotate and the stats snapshot's tally read.
  mutable OrderedMutex log_mu_{LockLevel::kTelemetryLog,
                               "ServeTelemetry.log_mu"};
  std::FILE* log_ = nullptr;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t log_lines_ = 0;
  std::uint64_t log_rotations_ = 0;

  std::atomic<std::uint64_t> slow_emitted_{0};
  std::atomic<std::uint64_t> slow_suppressed_{0};
};

/// RAII phase attribution: adds [construction, destruction) to `timing`'s
/// slice for `p` on the telemetry time base. Re-entering a phase (the cold
/// path passes through kColdSchedule twice: synthesis, then scheduling)
/// accumulates durations and keeps the first start.
class PhaseScope {
 public:
  PhaseScope(const ServeTelemetry& tel, RequestTiming& timing, Phase p)
      : tel_(tel), timing_(timing), p_(p), start_(tel.now_us()) {}
  ~PhaseScope() { timing_.add_phase(p_, start_, tel_.now_us() - start_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const ServeTelemetry& tel_;
  RequestTiming& timing_;
  Phase p_;
  std::uint64_t start_;
};

}  // namespace bm::serve
