#include "serve/core.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "sched/serialize.hpp"
#include "serve/fingerprint.hpp"
#include "support/assert.hpp"

namespace bm::serve {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b * 0xD6E8FEB86659FD93ull));
}

/// Everything that shapes synthesis output, folded into the RNG identity:
/// the synthesis draws advance the stream the scheduler then continues, so
/// the cache key must distinguish generator configurations even for the
/// (fingerprint-identical) programs they might coincide on.
std::uint64_t gen_digest(const GeneratorConfig& g) {
  std::uint64_t h = mix64(0x6E6Eull);
  h = mix2(h, g.num_statements);
  h = mix2(h, g.num_variables);
  h = mix2(h, g.num_constants);
  std::uint64_t prob_bits = 0;
  static_assert(sizeof(prob_bits) == sizeof(g.const_operand_prob));
  __builtin_memcpy(&prob_bits, &g.const_operand_prob, sizeof(prob_bits));
  h = mix2(h, prob_bits);
  return mix2(h, static_cast<std::uint64_t>(g.const_max));
}

}  // namespace

/// Checks a session out of the shared idle pool (or creates one: the pool
/// grows to the worker count and no further, since leases are per-request).
class ServeCore::SessionLease {
 public:
  explicit SessionLease(ServeCore& core) : core_(core) {
    std::unique_lock<std::mutex> lock(core_.mu_);
    if (!core_.idle_sessions_.empty()) {
      session_ = std::move(core_.idle_sessions_.back());
      core_.idle_sessions_.pop_back();
      return;
    }
    lock.unlock();
    session_ = std::make_unique<SchedulerSession>(
        SchedulerSession::ArenaMode::kOwned);
  }
  ~SessionLease() {
    std::unique_lock<std::mutex> lock(core_.mu_);
    core_.idle_sessions_.push_back(std::move(session_));
  }

  SchedulerSession* operator->() { return session_.get(); }
  SchedulerSession& operator*() { return *session_; }

 private:
  ServeCore& core_;
  std::unique_ptr<SchedulerSession> session_;
};

/// One admitted request. Guarantees the exactly-once answer: workers call
/// answer() with the computed response; if the closure is destroyed unrun
/// (token cancelled at dequeue, a drain racing a cancel, ...) the
/// destructor answers status=cancelled. Shared between the queue closure
/// and nothing else, so the destructor runs where the closure dies.
struct ServeCore::PendingReq {
  ServeCore* core;
  Request req;
  Callback cb;
  std::atomic<bool> answered{false};

  PendingReq(ServeCore* c, Request r, Callback f)
      : core(c), req(std::move(r)), cb(std::move(f)) {}

  void answer(const Response& resp) {
    if (answered.exchange(true)) return;
    try {
      cb(resp);
    } catch (...) {
      // Transport failures are the transport's problem; the request is
      // accounted as answered either way.
    }
    core->note_outcome(resp);
  }

  ~PendingReq() {
    if (answered.load()) return;
    Response resp;
    resp.id = req.id;
    resp.status = Status::kCancelled;
    resp.error = "cancelled before execution";
    answer(resp);
  }
};

ServeCore::ServeCore(CoreConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_entries, cfg_.cache_bytes),
      pool_(std::make_unique<ThreadPool>(cfg_.workers)) {}

ServeCore::~ServeCore() {
  drain();
  // pool_ (last member) is destroyed first; its drain contract answers any
  // stragglers through their PendingReq destructors while `this` is whole.
}

CancelToken ServeCore::submit(Request req, Callback cb) {
  CancelToken token;
  bool reject = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.received;
    if (draining_ || stats_.queued >= cfg_.max_queue) {
      ++stats_.rejected;
      reject = true;
    } else {
      ++stats_.queued;
    }
  }
  BM_OBS_COUNT("serve.request");
  if (reject) {
    BM_OBS_COUNT("serve.reject");
    Response resp;
    resp.id = req.id;
    resp.status = Status::kRejected;
    resp.error = draining() ? "server draining" : "queue full";
    cb(resp);
    return token;
  }

  auto pending = std::make_shared<PendingReq>(this, std::move(req), std::move(cb));
  pool_->submit(token, [pending] {
    ServeCore& core = *pending->core;
    if (core.cfg_.pre_handle) core.cfg_.pre_handle(pending->req);
    if (pending->answered.load()) return;
    Response resp;
    try {
      resp = core.process(pending->req);
    } catch (const std::exception& e) {
      resp.id = pending->req.id;
      resp.status = Status::kError;
      resp.error = e.what();
    }
    pending->answer(resp);
  });
  return token;
}

Response ServeCore::handle(const Request& req) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.received;
  }
  BM_OBS_COUNT("serve.request");
  Response resp;
  try {
    resp = process(req);
  } catch (const std::exception& e) {
    resp.id = req.id;
    resp.status = Status::kError;
    resp.error = e.what();
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.queued;  // note_outcome's pairing decrement
  lock.unlock();
  note_outcome(resp);
  return resp;
}

void ServeCore::drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
  }
  pool_->wait_idle();
}

bool ServeCore::draining() const {
  std::unique_lock<std::mutex> lock(mu_);
  return draining_;
}

CoreStats ServeCore::stats() const {
  CoreStats out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    out = stats_;
  }
  out.cache = cache_.stats();
  return out;
}

void ServeCore::note_outcome(const Response& resp) {
  std::unique_lock<std::mutex> lock(mu_);
  BM_ASSERT_INTERNAL(stats_.queued > 0, "response without admission");
  --stats_.queued;
  switch (resp.status) {
    case Status::kOk:
      ++stats_.completed;
      break;
    case Status::kCancelled:
      ++stats_.cancelled;
      break;
    case Status::kError:
      ++stats_.errors;
      break;
    case Status::kRejected:
      ++stats_.rejected;  // unreachable: rejections never admit
      break;
  }
  lock.unlock();
  switch (resp.status) {
    case Status::kOk: BM_OBS_COUNT("serve.ok"); break;
    case Status::kCancelled: BM_OBS_COUNT("serve.cancel"); break;
    case Status::kError: BM_OBS_COUNT("serve.error"); break;
    case Status::kRejected: break;
  }
}

Response ServeCore::process(const Request& req) {
  switch (req.verb) {
    case Verb::kPing: {
      Response resp;
      resp.id = req.id;
      resp.body = "pong";
      return resp;
    }
    case Verb::kStats: {
      Response resp;
      resp.id = req.id;
      resp.body = stats().to_text();
      return resp;
    }
    case Verb::kSynth:
    case Verb::kSchedule:
      return process_scheduling(req);
  }
  throw Error("unhandled verb");
}

Response ServeCore::process_scheduling(const Request& req) {
  Response resp;
  resp.id = req.id;

  SessionLease session(*this);
  const TimingModel timing = TimingModel::table1();

  // Stage 1: obtain the program and the scheduler's RNG stream. For synth
  // requests the scheduler continues the synthesis stream — the exact
  // sequence the experiment harness uses, so a synth request for
  // (base_seed, index) reproduces the harness schedule bit-for-bit.
  Program program;
  Rng rng = benchmark_rng(req.base_seed, req.index);
  std::uint64_t rng_key = 0;
  if (req.verb == Verb::kSynth) {
    const SynthesisResult synth = session->synthesize(req.gen, rng);
    program = synth.program;
    rng_key = mix2(mix2(req.base_seed, req.index), gen_digest(req.gen));
  } else {
    program = session->compile_source(req.source);
    rng = Rng(req.seed);
    rng_key = mix2(0x5C4Ed01Eull, req.seed);
  }
  BM_REQUIRE(!program.empty(), "program optimized to an empty block");

  // Stage 2: cache probe under the canonical fingerprint.
  const CanonicalProgram canon = canonicalize_program(program);
  const std::uint64_t digest = config_digest(req.sched, timing, rng_key);
  resp.fingerprint = fingerprint_hex(canon.fingerprint);

  if (!req.no_cache) {
    ScheduleCache::Hit hit =
        cache_.lookup(canon.fingerprint, digest, canon.bytes, canon.inv_perm);
    if (hit.found) {
      resp.cache = CacheOutcome::kHit;
      resp.stats = hit.stats;
      resp.body = std::move(hit.schedule_text);
      if (req.verify) {
        const InstrDag dag = session->build_dag(program, timing);
        const Schedule sched = schedule_from_text(dag, resp.body);
        resp.verify_errors = session->verify(dag, sched).error_count();
      }
      return resp;
    }
  }

  // Stage 3: cold path — the ordinary pipeline.
  const InstrDag dag = session->build_dag(program, timing);
  const ScheduleResult scheduled = session->schedule(dag, req.sched, rng);
  resp.stats = scheduled.stats;
  resp.body = schedule_to_text(*scheduled.schedule);
  if (req.verify)
    resp.verify_errors =
        session->verify(dag, *scheduled.schedule).error_count();

  if (req.no_cache) {
    resp.cache = CacheOutcome::kBypass;
  } else {
    resp.cache = CacheOutcome::kMiss;
    cache_.insert(canon.fingerprint, digest, canon.bytes,
                  rewrite_schedule_ids(resp.body, canon.perm),
                  scheduled.stats);
  }
  return resp;
}

std::string CoreStats::to_text() const {
  std::string t;
  t += "received " + std::to_string(received) + "\n";
  t += "completed " + std::to_string(completed) + "\n";
  t += "rejected " + std::to_string(rejected) + "\n";
  t += "cancelled " + std::to_string(cancelled) + "\n";
  t += "errors " + std::to_string(errors) + "\n";
  t += "queued " + std::to_string(queued) + "\n";
  t += "cache-hits " + std::to_string(cache.hits) + "\n";
  t += "cache-misses " + std::to_string(cache.misses) + "\n";
  t += "cache-collisions " + std::to_string(cache.collisions) + "\n";
  t += "cache-insertions " + std::to_string(cache.insertions) + "\n";
  t += "cache-evictions " + std::to_string(cache.evictions) + "\n";
  t += "cache-entries " + std::to_string(cache.entries) + "\n";
  t += "cache-bytes " + std::to_string(cache.bytes) + "\n";
  return t;
}

}  // namespace bm::serve
