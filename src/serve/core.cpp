#include "serve/core.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "sched/serialize.hpp"
#include "serve/fingerprint.hpp"
#include "support/assert.hpp"

namespace bm::serve {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b * 0xD6E8FEB86659FD93ull));
}

/// Everything that shapes synthesis output, folded into the RNG identity:
/// the synthesis draws advance the stream the scheduler then continues, so
/// the cache key must distinguish generator configurations even for the
/// (fingerprint-identical) programs they might coincide on.
std::uint64_t gen_digest(const GeneratorConfig& g) {
  std::uint64_t h = mix64(0x6E6Eull);
  h = mix2(h, g.num_statements);
  h = mix2(h, g.num_variables);
  h = mix2(h, g.num_constants);
  std::uint64_t prob_bits = 0;
  static_assert(sizeof(prob_bits) == sizeof(g.const_operand_prob));
  __builtin_memcpy(&prob_bits, &g.const_operand_prob, sizeof(prob_bits));
  h = mix2(h, prob_bits);
  return mix2(h, static_cast<std::uint64_t>(g.const_max));
}

}  // namespace

/// Checks a session out of the shared idle pool (or creates one: the pool
/// grows to the worker count and no further, since leases are per-request).
class ServeCore::SessionLease {
 public:
  explicit SessionLease(ServeCore& core) : core_(core) {
    OrderedLock lock(core_.mu_);
    if (!core_.idle_sessions_.empty()) {
      session_ = std::move(core_.idle_sessions_.back());
      core_.idle_sessions_.pop_back();
      return;
    }
    lock.unlock();
    session_ = std::make_unique<SchedulerSession>(
        SchedulerSession::ArenaMode::kOwned);
  }
  ~SessionLease() {
    OrderedLock lock(core_.mu_);
    core_.idle_sessions_.push_back(std::move(session_));
  }

  SchedulerSession* operator->() { return session_.get(); }
  SchedulerSession& operator*() { return *session_; }

 private:
  ServeCore& core_;
  std::unique_ptr<SchedulerSession> session_;
};

/// One admitted request. Guarantees the exactly-once answer: workers call
/// answer() with the computed response; if the closure is destroyed unrun
/// (token cancelled at dequeue, a drain racing a cancel, ...) the
/// destructor answers status=cancelled. Shared between the queue closure
/// and nothing else, so the destructor runs where the closure dies.
struct ServeCore::PendingReq {
  ServeCore* core;
  Request req;
  Callback cb;
  RequestTiming timing;
  std::atomic<bool> answered{false};

  PendingReq(ServeCore* c, Request r, Callback f, RequestTiming t)
      : core(c), req(std::move(r)), cb(std::move(f)), timing(std::move(t)) {}

  void answer(const Response& resp) {
    if (answered.exchange(true)) return;
    ServeTelemetry& tel = core->telemetry_;
    {
      PhaseScope write_back(tel, timing, Phase::kWriteBack);
      try {
        cb(resp);
      } catch (...) {
        // Transport failures are the transport's problem; the request is
        // accounted as answered either way.
      }
    }
    timing.status = resp.status;
    timing.cache = resp.cache;
    timing.fingerprint = resp.fingerprint;
    timing.total_us = tel.now_us() - timing.admit_us;
    core->note_outcome(resp);
    tel.record(timing);
  }

  ~PendingReq() {
    if (answered.load()) return;
    Response resp;
    resp.id = req.id;
    resp.status = Status::kCancelled;
    resp.error = "cancelled before execution";
    answer(resp);
  }
};

ServeCore::ServeCore(CoreConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_entries, cfg_.cache_bytes),
      telemetry_(cfg_.telemetry),
      pool_(std::make_unique<ThreadPool>(cfg_.workers)) {}

ServeCore::~ServeCore() {
  drain();
  // pool_ (last member) is destroyed first; its drain contract answers any
  // stragglers through their PendingReq destructors while `this` is whole.
}

CancelToken ServeCore::submit(Request req, Callback cb) {
  CancelToken token;
  RequestTiming timing;
  timing.rid = telemetry_.next_rid();
  timing.client_id = req.id;
  timing.verb = req.verb;
  timing.admit_us = telemetry_.now_us();
  bool reject = false;
  {
    OrderedLock lock(mu_);
    ++stats_.received;
    if (draining_ || stats_.queued >= cfg_.max_queue) {
      ++stats_.rejected;
      reject = true;
    } else {
      ++stats_.queued;
    }
  }
  BM_OBS_COUNT("serve.request");
  if (reject) {
    BM_OBS_COUNT("serve.reject");
    Response resp;
    resp.id = req.id;
    resp.status = Status::kRejected;
    resp.error = draining() ? "server draining" : "queue full";
    {
      PhaseScope write_back(telemetry_, timing, Phase::kWriteBack);
      cb(resp);
    }
    timing.status = Status::kRejected;
    timing.total_us = telemetry_.now_us() - timing.admit_us;
    telemetry_.record(timing);
    return token;
  }

  auto pending = std::make_shared<PendingReq>(this, std::move(req),
                                              std::move(cb), std::move(timing));
  pool_->submit(token, [pending] {
    ServeCore& core = *pending->core;
    ServeTelemetry& tel = core.telemetry_;
    pending->timing.add_phase(Phase::kQueueWait, pending->timing.admit_us,
                              tel.now_us() - pending->timing.admit_us);
    if (core.cfg_.pre_handle) core.cfg_.pre_handle(pending->req);
    if (pending->answered.load()) return;
    tel.worker_begin();
    Response resp;
    try {
      resp = core.process(pending->req, pending->timing);
    } catch (const std::exception& e) {
      resp.id = pending->req.id;
      resp.status = Status::kError;
      resp.error = e.what();
    }
    pending->answer(resp);
    tel.worker_end();
  });
  return token;
}

Response ServeCore::handle(const Request& req) {
  RequestTiming timing;
  timing.rid = telemetry_.next_rid();
  timing.client_id = req.id;
  timing.verb = req.verb;
  timing.admit_us = telemetry_.now_us();
  {
    // Both counters in one critical section: a concurrent stats snapshot
    // must never see this request received but neither queued nor resolved.
    OrderedLock lock(mu_);
    ++stats_.received;
    ++stats_.queued;  // note_outcome's pairing decrement
  }
  BM_OBS_COUNT("serve.request");
  telemetry_.worker_begin();
  Response resp;
  try {
    resp = process(req, timing);
  } catch (const std::exception& e) {
    resp.id = req.id;
    resp.status = Status::kError;
    resp.error = e.what();
  }
  telemetry_.worker_end();
  timing.status = resp.status;
  timing.cache = resp.cache;
  timing.fingerprint = resp.fingerprint;
  timing.total_us = telemetry_.now_us() - timing.admit_us;
  note_outcome(resp);
  telemetry_.record(timing);
  return resp;
}

void ServeCore::drain() {
  {
    OrderedLock lock(mu_);
    draining_ = true;
  }
  pool_->wait_idle();
}

bool ServeCore::draining() const {
  OrderedLock lock(mu_);
  return draining_;
}

CoreStats ServeCore::stats() const {
  CoreStats out;
  {
    OrderedLock lock(mu_);
    out = stats_;
  }
  out.cache = cache_.stats();
  return out;
}

CoreTotals ServeCore::totals() const {
  const CoreStats s = stats();
  CoreTotals t;
  t.received = s.received;
  t.completed = s.completed;
  t.rejected = s.rejected;
  t.cancelled = s.cancelled;
  t.errors = s.errors;
  t.queued = s.queued;
  t.workers = cfg_.workers;
  t.cache = s.cache;
  return t;
}

std::string ServeCore::stats_json() const {
  return telemetry_.stats_json(totals());
}

void ServeCore::note_outcome(const Response& resp) {
  OrderedLock lock(mu_);
  BM_ASSERT_INTERNAL(stats_.queued > 0, "response without admission");
  --stats_.queued;
  switch (resp.status) {
    case Status::kOk:
      ++stats_.completed;
      break;
    case Status::kCancelled:
      ++stats_.cancelled;
      break;
    case Status::kError:
      ++stats_.errors;
      break;
    case Status::kRejected:
      ++stats_.rejected;  // unreachable: rejections never admit
      break;
  }
  lock.unlock();
  switch (resp.status) {
    case Status::kOk: BM_OBS_COUNT("serve.ok"); break;
    case Status::kCancelled: BM_OBS_COUNT("serve.cancel"); break;
    case Status::kError: BM_OBS_COUNT("serve.error"); break;
    case Status::kRejected: break;
  }
}

Response ServeCore::process(const Request& req, RequestTiming& rt) {
  switch (req.verb) {
    case Verb::kPing: {
      Response resp;
      resp.id = req.id;
      resp.body = "pong";
      return resp;
    }
    case Verb::kStats: {
      Response resp;
      resp.id = req.id;
      resp.body = stats_json();
      return resp;
    }
    case Verb::kSynth:
    case Verb::kSchedule:
      return process_scheduling(req, rt);
  }
  throw Error("unhandled verb");
}

Response ServeCore::process_scheduling(const Request& req, RequestTiming& rt) {
  Response resp;
  resp.id = req.id;

  SessionLease session(*this);
  const TimingModel timing = TimingModel::table1();

  // Stage 1: obtain the program and the scheduler's RNG stream. For synth
  // requests the scheduler continues the synthesis stream — the exact
  // sequence the experiment harness uses, so a synth request for
  // (base_seed, index) reproduces the harness schedule bit-for-bit.
  // Attributed to kColdSchedule: synthesis/compilation runs even on the
  // hit path (the fingerprint needs the program), and it is the same
  // compute the cold path spends.
  Program program;
  Rng rng = benchmark_rng(req.base_seed, req.index);
  std::uint64_t rng_key = 0;
  {
    PhaseScope ps(telemetry_, rt, Phase::kColdSchedule);
    if (req.verb == Verb::kSynth) {
      const SynthesisResult synth = session->synthesize(req.gen, rng);
      program = synth.program;
      rng_key = mix2(mix2(req.base_seed, req.index), gen_digest(req.gen));
    } else {
      program = session->compile_source(req.source);
      rng = Rng(req.seed);
      rng_key = mix2(0x5C4Ed01Eull, req.seed);
    }
  }
  BM_REQUIRE(!program.empty(), "program optimized to an empty block");

  // Stage 2: cache probe under the canonical fingerprint.
  CanonicalProgram canon;
  std::uint64_t digest = 0;
  {
    PhaseScope ps(telemetry_, rt, Phase::kFingerprint);
    canon = canonicalize_program(program);
    digest = config_digest(req.sched, timing, rng_key);
    resp.fingerprint = fingerprint_hex(canon.fingerprint);
  }

  if (!req.no_cache) {
    ScheduleCache::Hit hit;
    {
      PhaseScope ps(telemetry_, rt, Phase::kCacheLookup);
      hit = cache_.lookup(canon.fingerprint, digest, canon.bytes,
                          canon.inv_perm);
    }
    if (hit.found) {
      resp.cache = CacheOutcome::kHit;
      resp.stats = hit.stats;
      resp.body = std::move(hit.schedule_text);
      if (req.verify) {
        PhaseScope ps(telemetry_, rt, Phase::kVerify);
        const InstrDag dag = session->build_dag(program, timing);
        const Schedule sched = schedule_from_text(dag, resp.body);
        resp.verify_errors = session->verify(dag, sched).error_count();
      }
      return resp;
    }
  }

  // Stage 3: cold path — the ordinary pipeline.
  const InstrDag dag = [&] {
    PhaseScope ps(telemetry_, rt, Phase::kColdSchedule);
    return session->build_dag(program, timing);
  }();
  ScheduleResult scheduled;
  {
    PhaseScope ps(telemetry_, rt, Phase::kColdSchedule);
    scheduled = session->schedule(dag, req.sched, rng);
  }
  resp.stats = scheduled.stats;
  {
    PhaseScope ps(telemetry_, rt, Phase::kSerialize);
    resp.body = schedule_to_text(*scheduled.schedule);
  }
  if (req.verify) {
    PhaseScope ps(telemetry_, rt, Phase::kVerify);
    resp.verify_errors =
        session->verify(dag, *scheduled.schedule).error_count();
  }

  if (req.no_cache) {
    resp.cache = CacheOutcome::kBypass;
  } else {
    resp.cache = CacheOutcome::kMiss;
    PhaseScope ps(telemetry_, rt, Phase::kSerialize);
    cache_.insert(canon.fingerprint, digest, canon.bytes,
                  rewrite_schedule_ids(resp.body, canon.perm),
                  scheduled.stats);
  }
  return resp;
}

std::string CoreStats::to_text() const {
  std::string t;
  t += "received " + std::to_string(received) + "\n";
  t += "completed " + std::to_string(completed) + "\n";
  t += "rejected " + std::to_string(rejected) + "\n";
  t += "cancelled " + std::to_string(cancelled) + "\n";
  t += "errors " + std::to_string(errors) + "\n";
  t += "queued " + std::to_string(queued) + "\n";
  t += "cache-hits " + std::to_string(cache.hits) + "\n";
  t += "cache-misses " + std::to_string(cache.misses) + "\n";
  t += "cache-collisions " + std::to_string(cache.collisions) + "\n";
  t += "cache-insertions " + std::to_string(cache.insertions) + "\n";
  t += "cache-evictions " + std::to_string(cache.evictions) + "\n";
  t += "cache-entries " + std::to_string(cache.entries) + "\n";
  t += "cache-bytes " + std::to_string(cache.bytes) + "\n";
  return t;
}

}  // namespace bm::serve
