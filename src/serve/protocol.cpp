#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include "support/assert.hpp"

namespace bm::serve {

std::string errno_string(int err) {
  char buf[128];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r may return a pointer into libc's immutable table
  // instead of filling buf; either way the result is thread-safe.
  return strerror_r(err, buf, sizeof buf);
#else
  if (strerror_r(err, buf, sizeof buf) != 0)
    return "errno " + std::to_string(err);
  return buf;
#endif
}

namespace {

const char* verb_name(Verb v) {
  switch (v) {
    case Verb::kPing: return "ping";
    case Verb::kSynth: return "synth";
    case Verb::kSchedule: return "schedule";
    case Verb::kStats: return "stats";
  }
  return "ping";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kCancelled: return "cancelled";
    case Status::kError: return "error";
  }
  return "error";
}

const char* cache_name(CacheOutcome c) {
  switch (c) {
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kBypass: return "bypass";
  }
  return "bypass";
}

std::uint64_t parse_u64(const std::string& v, const std::string& key) {
  BM_REQUIRE(!v.empty(), "empty value for header '" + key + "'");
  std::uint64_t out = 0;
  for (char c : v) {
    BM_REQUIRE(c >= '0' && c <= '9',
               "non-numeric value '" + v + "' for header '" + key + "'");
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

double parse_double(const std::string& v, const std::string& key) {
  BM_REQUIRE(!v.empty(), "empty value for header '" + key + "'");
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  BM_REQUIRE(errno == 0 && end == v.c_str() + v.size(),
             "bad numeric value '" + v + "' for header '" + key + "'");
  return out;
}

/// Splits the payload into "key value" header lines and the body after the
/// first blank line; calls on_header for each header.
template <typename F>
std::string parse_payload(const std::string& payload,
                          const std::string& magic, F&& on_header) {
  std::size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    if (pos >= payload.size()) return std::nullopt;
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) eol = payload.size();
    std::string line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    return line;
  };

  auto first = next_line();
  BM_REQUIRE(first && *first == magic,
             "bad frame magic (expected '" + magic + "')");
  while (auto line = next_line()) {
    if (line->empty()) break;  // header/body separator
    const std::size_t sp = line->find(' ');
    BM_REQUIRE(sp != std::string::npos && sp > 0,
               "malformed header line '" + *line + "'");
    on_header(line->substr(0, sp), line->substr(sp + 1));
  }
  return pos >= payload.size() ? std::string() : payload.substr(pos);
}

void append_stats(std::string& p, const ScheduleStats& s) {
  p += "implied " + std::to_string(s.implied_syncs) + "\n";
  p += "serialized " + std::to_string(s.serialized_edges) + "\n";
  p += "cross " + std::to_string(s.cross_edges) + "\n";
  p += "path-sat " + std::to_string(s.cross_path_satisfied) + "\n";
  p += "timing-sat " + std::to_string(s.cross_timing_satisfied) + "\n";
  p += "barriers-inserted " + std::to_string(s.barriers_inserted) + "\n";
  p += "barriers-final " + std::to_string(s.barriers_final) + "\n";
  p += "merges " + std::to_string(s.merges) + "\n";
  p += "repairs " + std::to_string(s.repair_barriers) + "\n";
  p += "procs-used " + std::to_string(s.procs_used) + "\n";
  p += "completion " + std::to_string(s.completion.min) + "," +
       std::to_string(s.completion.max) + "\n";
  p += "critical " + std::to_string(s.critical_path.min) + "," +
       std::to_string(s.critical_path.max) + "\n";
}

void parse_range(const std::string& v, const std::string& key, TimeRange& r) {
  const std::size_t comma = v.find(',');
  BM_REQUIRE(comma != std::string::npos, "bad range for header '" + key + "'");
  r.min = static_cast<Time>(parse_u64(v.substr(0, comma), key));
  r.max = static_cast<Time>(parse_u64(v.substr(comma + 1), key));
}

}  // namespace

std::string encode_request(const Request& req) {
  std::string p = "req v1\n";
  p += "id " + std::to_string(req.id) + "\n";
  p += std::string("verb ") + verb_name(req.verb) + "\n";
  p += "procs " + std::to_string(req.sched.num_procs) + "\n";
  p += std::string("machine ") +
       (req.sched.machine == MachineKind::kSBM ? "sbm" : "dbm") + "\n";
  p += std::string("insertion ") +
       (req.sched.insertion == InsertionPolicy::kConservative ? "conservative"
                                                              : "optimal") +
       "\n";
  p += std::string("ordering ") +
       (req.sched.ordering == OrderingPolicy::kMaxThenMin ? "maxmin"
                                                          : "minmax") +
       "\n";
  p += std::string("assignment ");
  switch (req.sched.assignment) {
    case AssignmentPolicy::kListSerialize: p += "list"; break;
    case AssignmentPolicy::kRoundRobin: p += "rr"; break;
    case AssignmentPolicy::kLookahead: p += "lookahead"; break;
  }
  p += "\n";
  p += "lookahead-window " + std::to_string(req.sched.lookahead_window) + "\n";
  p += "latency " + std::to_string(req.sched.barrier_latency) + "\n";
  p += std::string("final-barrier ") +
       (req.sched.add_final_barrier ? "1" : "0") + "\n";
  p += std::string("repair ") + (req.sched.repair_sweep ? "1" : "0") + "\n";
  if (req.verb == Verb::kSynth) {
    p += "seed " + std::to_string(req.base_seed) + "\n";
    p += "index " + std::to_string(req.index) + "\n";
    p += "statements " + std::to_string(req.gen.num_statements) + "\n";
    p += "variables " + std::to_string(req.gen.num_variables) + "\n";
    p += "constants " + std::to_string(req.gen.num_constants) + "\n";
    p += "const-prob " + std::to_string(req.gen.const_operand_prob) + "\n";
    p += "const-max " + std::to_string(req.gen.const_max) + "\n";
  }
  if (req.verb == Verb::kSchedule)
    p += "seed " + std::to_string(req.seed) + "\n";
  p += std::string("verify ") + (req.verify ? "1" : "0") + "\n";
  p += std::string("no-cache ") + (req.no_cache ? "1" : "0") + "\n";
  p += "\n";
  p += req.source;
  return p;
}

Request decode_request(const std::string& payload) {
  Request req;
  req.source = parse_payload(
      payload, "req v1", [&](const std::string& k, const std::string& v) {
        if (k == "id") {
          req.id = parse_u64(v, k);
        } else if (k == "verb") {
          if (v == "ping") req.verb = Verb::kPing;
          else if (v == "synth") req.verb = Verb::kSynth;
          else if (v == "schedule") req.verb = Verb::kSchedule;
          else if (v == "stats") req.verb = Verb::kStats;
          else throw Error("unknown verb '" + v + "'");
        } else if (k == "procs") {
          req.sched.num_procs = parse_u64(v, k);
        } else if (k == "machine") {
          if (v == "sbm") req.sched.machine = MachineKind::kSBM;
          else if (v == "dbm") req.sched.machine = MachineKind::kDBM;
          else throw Error("unknown machine '" + v + "'");
        } else if (k == "insertion") {
          if (v == "conservative")
            req.sched.insertion = InsertionPolicy::kConservative;
          else if (v == "optimal")
            req.sched.insertion = InsertionPolicy::kOptimal;
          else throw Error("unknown insertion policy '" + v + "'");
        } else if (k == "ordering") {
          if (v == "maxmin") req.sched.ordering = OrderingPolicy::kMaxThenMin;
          else if (v == "minmax")
            req.sched.ordering = OrderingPolicy::kMinThenMax;
          else throw Error("unknown ordering policy '" + v + "'");
        } else if (k == "assignment") {
          if (v == "list")
            req.sched.assignment = AssignmentPolicy::kListSerialize;
          else if (v == "rr")
            req.sched.assignment = AssignmentPolicy::kRoundRobin;
          else if (v == "lookahead")
            req.sched.assignment = AssignmentPolicy::kLookahead;
          else throw Error("unknown assignment policy '" + v + "'");
        } else if (k == "lookahead-window") {
          req.sched.lookahead_window = parse_u64(v, k);
        } else if (k == "latency") {
          req.sched.barrier_latency = static_cast<long>(parse_u64(v, k));
        } else if (k == "final-barrier") {
          req.sched.add_final_barrier = v == "1";
        } else if (k == "repair") {
          req.sched.repair_sweep = v == "1";
        } else if (k == "seed") {
          req.base_seed = parse_u64(v, k);
          req.seed = req.base_seed;
        } else if (k == "index") {
          req.index = parse_u64(v, k);
        } else if (k == "statements") {
          req.gen.num_statements = static_cast<std::uint32_t>(parse_u64(v, k));
        } else if (k == "variables") {
          req.gen.num_variables = static_cast<std::uint32_t>(parse_u64(v, k));
        } else if (k == "constants") {
          req.gen.num_constants = static_cast<std::uint32_t>(parse_u64(v, k));
        } else if (k == "const-prob") {
          req.gen.const_operand_prob = parse_double(v, k);
        } else if (k == "const-max") {
          req.gen.const_max = static_cast<std::int64_t>(parse_u64(v, k));
        } else if (k == "verify") {
          req.verify = v == "1";
        } else if (k == "no-cache") {
          req.no_cache = v == "1";
        }
        // Unknown headers are ignored: forward compatibility.
      });
  return req;
}

std::string encode_response(const Response& resp) {
  std::string p = "resp v1\n";
  p += "id " + std::to_string(resp.id) + "\n";
  p += std::string("status ") + status_name(resp.status) + "\n";
  p += std::string("cache ") + cache_name(resp.cache) + "\n";
  if (!resp.fingerprint.empty()) p += "fingerprint " + resp.fingerprint + "\n";
  if (!resp.error.empty()) {
    // Errors are single-line by construction (first line wins on decode).
    std::string one_line = resp.error;
    for (char& c : one_line)
      if (c == '\n') c = ' ';
    p += "error " + one_line + "\n";
  }
  if (resp.status == Status::kOk &&
      (resp.stats.implied_syncs || resp.stats.procs_used))
    append_stats(p, resp.stats);
  p += "verify-errors " + std::to_string(resp.verify_errors) + "\n";
  p += "\n";
  p += resp.body;
  return p;
}

Response decode_response(const std::string& payload) {
  Response resp;
  resp.body = parse_payload(
      payload, "resp v1", [&](const std::string& k, const std::string& v) {
        if (k == "id") {
          resp.id = parse_u64(v, k);
        } else if (k == "status") {
          if (v == "ok") resp.status = Status::kOk;
          else if (v == "rejected") resp.status = Status::kRejected;
          else if (v == "cancelled") resp.status = Status::kCancelled;
          else if (v == "error") resp.status = Status::kError;
          else throw Error("unknown status '" + v + "'");
        } else if (k == "cache") {
          if (v == "hit") resp.cache = CacheOutcome::kHit;
          else if (v == "miss") resp.cache = CacheOutcome::kMiss;
          else if (v == "bypass") resp.cache = CacheOutcome::kBypass;
          else throw Error("unknown cache outcome '" + v + "'");
        } else if (k == "fingerprint") {
          resp.fingerprint = v;
        } else if (k == "error") {
          resp.error = v;
        } else if (k == "implied") {
          resp.stats.implied_syncs = parse_u64(v, k);
        } else if (k == "serialized") {
          resp.stats.serialized_edges = parse_u64(v, k);
        } else if (k == "cross") {
          resp.stats.cross_edges = parse_u64(v, k);
        } else if (k == "path-sat") {
          resp.stats.cross_path_satisfied = parse_u64(v, k);
        } else if (k == "timing-sat") {
          resp.stats.cross_timing_satisfied = parse_u64(v, k);
        } else if (k == "barriers-inserted") {
          resp.stats.barriers_inserted = parse_u64(v, k);
        } else if (k == "barriers-final") {
          resp.stats.barriers_final = parse_u64(v, k);
        } else if (k == "merges") {
          resp.stats.merges = parse_u64(v, k);
        } else if (k == "repairs") {
          resp.stats.repair_barriers = parse_u64(v, k);
        } else if (k == "procs-used") {
          resp.stats.procs_used = parse_u64(v, k);
        } else if (k == "completion") {
          parse_range(v, k, resp.stats.completion);
        } else if (k == "critical") {
          parse_range(v, k, resp.stats.critical_path);
        } else if (k == "verify-errors") {
          resp.verify_errors = parse_u64(v, k);
        }
      });
  return resp;
}

bool write_frame(int fd, const std::string& payload) {
  BM_REQUIRE(payload.size() <= kMaxFrameBytes, "frame payload too large");
  unsigned char header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(len & 0xFF);
  header[1] = static_cast<unsigned char>((len >> 8) & 0xFF);
  header[2] = static_cast<unsigned char>((len >> 16) & 0xFF);
  header[3] = static_cast<unsigned char>((len >> 24) & 0xFF);

  std::string buf(reinterpret_cast<const char*>(header), 4);
  buf += payload;
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw Error("frame write failed: " + errno_string(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> read_frame(int fd) {
  auto read_exact = [&](char* dst, std::size_t want,
                        bool eof_ok) -> std::size_t {
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n = ::read(fd, dst + got, want - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error("frame read failed: " + errno_string(errno));
      }
      if (n == 0) {
        BM_REQUIRE(eof_ok && got == 0, "connection closed mid-frame");
        return got;
      }
      got += static_cast<std::size_t>(n);
    }
    return got;
  };

  unsigned char header[4];
  if (read_exact(reinterpret_cast<char*>(header), 4, /*eof_ok=*/true) == 0)
    return std::nullopt;  // clean EOF between frames
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            static_cast<std::uint32_t>(header[1]) << 8 |
                            static_cast<std::uint32_t>(header[2]) << 16 |
                            static_cast<std::uint32_t>(header[3]) << 24;
  BM_REQUIRE(len <= kMaxFrameBytes, "oversized frame (" +
                                        std::to_string(len) + " bytes)");
  std::string payload(len, '\0');
  if (len > 0) read_exact(payload.data(), len, /*eof_ok=*/false);
  return payload;
}

}  // namespace bm::serve
