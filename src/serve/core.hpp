// ServeCore: the transport-free heart of bmserve. Owns the worker pool,
// the schedule cache, and the admission queue; the socket layer
// (serve/net.hpp) and the in-process tests/benchmarks drive the same code.
//
// Life of a request:
//   submit() — admission control. If the core is draining or the number of
//     admitted-but-unfinished requests has reached max_queue, the request
//     is answered immediately with status=rejected (overload degrades to a
//     fast, bounded rejection — never an unbounded queue). Otherwise the
//     request is enqueued on the shared ThreadPool with its own
//     CancelToken, which submit() returns for the caller to cancel on
//     client disconnect.
//   handle() — the same processing, synchronously on the caller.
//
// Every admitted request is answered exactly once: the callback is invoked
// with the computed response, with status=cancelled when its token fired
// before a worker picked it up, or with status=error if processing threw.
// drain() stops admission and blocks until all in-flight work finishes —
// the SIGTERM path loses nothing that was admitted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/telemetry.hpp"
#include "support/ordered_mutex.hpp"
#include "support/thread_pool.hpp"

namespace bm::serve {

struct CoreConfig {
  std::size_t workers = 4;
  /// Maximum admitted-but-unfinished requests (queued + running). Further
  /// submits are rejected until the backlog shrinks.
  std::size_t max_queue = 128;
  std::size_t cache_entries = 4096;
  std::size_t cache_bytes = 64u << 20;
  /// Test hook: runs on the worker just before a request is processed.
  /// Lets tests hold workers to force queue buildup; never set in prod.
  std::function<void(const Request&)> pre_handle;

  /// Access log, slow-request traces, latency window (serve/telemetry.hpp).
  TelemetryConfig telemetry;
};

struct CoreStats {
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t errors = 0;
  std::uint64_t queued = 0;  ///< current backlog (admitted, unfinished)
  CacheStats cache;

  std::string to_text() const;
};

class ServeCore {
 public:
  using Callback = std::function<void(const Response&)>;

  explicit ServeCore(CoreConfig cfg);
  ~ServeCore();  ///< drains: admitted work completes before teardown

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Asynchronous entry: admission check, then worker-pool execution. The
  /// callback fires exactly once, possibly before submit() returns (on
  /// rejection) and possibly on a worker thread. The returned token
  /// cancels the request if it is still queued.
  CancelToken submit(Request req, Callback cb);

  /// Synchronous entry (tests, benchmarks): processes on the caller,
  /// bypassing admission and the queue but sharing cache and sessions.
  Response handle(const Request& req);

  /// Stops admission (subsequent submits are rejected) and waits until
  /// every admitted request has been answered.
  void drain();
  bool draining() const;

  CoreStats stats() const;

  /// The `stats v1` JSON snapshot (what the kStats verb answers with and
  /// what the SIGUSR1 dump prints): core totals + telemetry quantiles.
  std::string stats_json() const;

  const ServeTelemetry& telemetry() const { return telemetry_; }

 private:
  class SessionLease;
  struct PendingReq;

  Response process(const Request& req, RequestTiming& timing);
  Response process_scheduling(const Request& req, RequestTiming& timing);
  void note_outcome(const Response& resp);
  CoreTotals totals() const;

  CoreConfig cfg_;
  ScheduleCache cache_;

  mutable OrderedMutex mu_{LockLevel::kServeCore, "ServeCore.mu"};
  std::vector<std::unique_ptr<SchedulerSession>> idle_sessions_;
  CoreStats stats_;
  bool draining_ = false;

  /// Declared before pool_: straggler requests answered while the pool
  /// drains in ~ServeCore still record into live telemetry.
  ServeTelemetry telemetry_;

  /// Last member: destroyed first, so queued tasks still see a live core
  /// while the pool drains in the destructor.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace bm::serve
