// Socket front end for bmserve: accepts connections on a Unix-domain
// socket and/or a loopback TCP port, speaks the length-prefixed frame
// protocol (serve/protocol.hpp), and feeds requests into a ServeCore.
//
// Threading model: one accept loop (run() on the caller), one thread per
// connection reading frames and submitting them; responses are written by
// whichever worker finishes the request, serialized per connection.
// Requests from one connection may therefore complete out of order —
// clients correlate by the echoed request id.
//
// Disconnect cancels that connection's still-queued requests (their
// cancelled responses go nowhere). request_stop() — safe from a signal
// handler — makes run() stop accepting, drain the core (every admitted
// request is answered and written before its connection is torn down),
// and return. That is the whole SIGTERM story: zero admitted requests
// are ever dropped.
#pragma once

#include <memory>
#include <string>

#include "serve/core.hpp"

namespace bm::serve {

struct NetConfig {
  std::string uds_path;  ///< empty = no Unix-domain listener
  int tcp_port = -1;     ///< <0 = no TCP listener; 0 = ephemeral
  CoreConfig core;
};

class Server {
 public:
  explicit Server(NetConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound TCP port (after construction; useful with tcp_port = 0).
  int tcp_port() const { return tcp_port_; }

  ServeCore& core() { return *core_; }

  /// Accept-and-serve loop; returns after request_stop() completes the
  /// graceful drain. Call from the main thread.
  void run();

  /// Async-signal-safe stop request (writes one byte to a self-pipe).
  void request_stop();

  /// Async-signal-safe stats-dump request (the SIGUSR1 handler): the
  /// accept loop prints the `stats v1` JSON snapshot to stderr and keeps
  /// serving.
  void request_dump();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<ServeCore> core_;
  int tcp_port_ = -1;
};

}  // namespace bm::serve
