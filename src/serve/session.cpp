#include "serve/session.hpp"

#include <optional>

#include "codegen/emitter.hpp"
#include "codegen/parser.hpp"
#include "obs/obs.hpp"
#include "opt/passes.hpp"
#include "support/assert.hpp"
#include "vliw/vliw.hpp"

namespace bm::serve {

/// Flags the session busy for the duration of one API call and, in owned
/// mode, installs the session arena on the calling thread. Thread-shared
/// mode leaves the thread-default arena in place, which is what keeps the
/// harness's warm per-thread pools (and its zero steady-state allocation
/// guarantee) intact after the pipeline moved in here.
class SchedulerSession::Enter {
 public:
  explicit Enter(SchedulerSession& s) : session_(s) {
    const bool was_busy = session_.in_use_.exchange(true);
    BM_REQUIRE(!was_busy,
               "SchedulerSession used concurrently; sessions are "
               "one-request-at-a-time — use one session per worker");
    if (session_.mode_ == ArenaMode::kOwned)
      scope_.emplace(session_.arena_);
  }
  ~Enter() {
    scope_.reset();  // restore the previous arena before going idle
    session_.in_use_.store(false);
  }

  Enter(const Enter&) = delete;
  Enter& operator=(const Enter&) = delete;

 private:
  SchedulerSession& session_;
  std::optional<ScratchArenaScope> scope_;
};

SchedulerSession::SchedulerSession(ArenaMode mode) : mode_(mode) {}

BenchmarkResult SchedulerSession::run_benchmark(const BenchmarkRequest& req) {
  Enter guard(*this);
  BM_OBS_SPAN_ARG(seed_span, "harness.seed", "harness", "seed",
                  static_cast<double>(req.index));
  Rng rng = benchmark_rng(req.base_seed, req.index);
  const SynthesisResult synth = synthesize_benchmark(req.gen, rng);
  const InstrDag dag = [&] {
    BM_OBS_SPAN(span, "dag.build", "graph");
    return InstrDag::build(synth.program, req.timing);
  }();

  BenchmarkResult r;
  r.seed_index = req.index;
  r.program_size = synth.program.size();

  ScheduleResult scheduled = schedule_program(dag, req.sched, rng);
  r.stats = scheduled.stats;

  if (req.with_vliw) {
    BM_OBS_SPAN(span, "vliw.schedule", "vliw");
    const VliwSchedule vliw = schedule_vliw(dag, req.sched.num_procs);
    r.vliw_makespan = vliw.makespan;
  }

  if (req.verify) {
    BM_OBS_SPAN(span, "verify.schedule", "verify");
    // Redundancy linting is advisory and O(B·(V+E)); the harness check is
    // about soundness, so skip it to stay within the throughput budget.
    VerifyOptions vopt;
    vopt.lint_redundant = false;
    const VerifyReport report =
        verify_schedule(dag, *scheduled.schedule, vopt);
    r.verify_errors = report.error_count();
    if (!report.clean()) {
      for (const VerifyDiagnostic& d : report.diagnostics()) {
        if (d.severity != VerifySeverity::kError) continue;
        r.verify_first = "[seed " + std::to_string(req.index) + "] " + d.code +
                         ": " + d.message;
        break;
      }
    }
  }

  if (req.sim_runs > 0 || req.validate_draws) {
    BM_OBS_SPAN(span, "sim.summarize", "sim");
    const std::size_t runs = req.sim_runs > 0 ? req.sim_runs : 1;
    if (req.validate_draws) {
      // trace_ is resized in place per draw: one allocation per session
      // lifetime, not per draw (the former static thread_local, now owned).
      for (std::size_t k = 0; k < runs; ++k) {
        simulate_into(*scheduled.schedule,
                      {req.sched.machine, SamplingMode::kUniform}, rng,
                      trace_);
        r.violations += find_violations(dag, trace_).size();
      }
    }
    r.barrier_completion =
        summarize_completion(*scheduled.schedule, req.sched.machine,
                             req.sim_runs, rng, req.sim_batch);
  }
  return r;
}

SynthesisResult SchedulerSession::synthesize(const GeneratorConfig& gen,
                                             Rng& rng) {
  Enter guard(*this);
  return synthesize_benchmark(gen, rng);
}

Program SchedulerSession::compile_source(const std::string& source) {
  Enter guard(*this);
  ParsedBlock block = parse_statements(source);
  Program prog = emit_tuples(block.statements, block.num_vars);
  for (std::uint32_t v = 0; v < block.num_vars; ++v)
    prog.set_var_name(v, block.var_names[v]);
  optimize(prog);
  return prog;
}

InstrDag SchedulerSession::build_dag(const Program& prog,
                                     const TimingModel& timing) {
  Enter guard(*this);
  BM_OBS_SPAN(span, "dag.build", "graph");
  return InstrDag::build(prog, timing);
}

ScheduleResult SchedulerSession::schedule(const InstrDag& dag,
                                          const SchedulerConfig& cfg,
                                          Rng& rng) {
  Enter guard(*this);
  return schedule_program(dag, cfg, rng);
}

VerifyReport SchedulerSession::verify(const InstrDag& dag,
                                      const Schedule& sched,
                                      const VerifyOptions& opt) {
  Enter guard(*this);
  BM_OBS_SPAN(span, "verify.schedule", "verify");
  return verify_schedule(dag, sched, opt);
}

}  // namespace bm::serve
