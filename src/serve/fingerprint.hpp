// Canonical DAG fingerprinting for the scheduling service (bmserve).
//
// Two requests whose tuple programs pose the *same scheduling problem* —
// identical dependence DAG shape, opcodes (hence execution-time ranges),
// and constant operands — must key the same schedule-cache entry even when
// their instructions are numbered or ordered differently. The fingerprint
// is a 64-bit hash of a Weisfeiler–Lehman-style canonical form:
//
//   1. Build the typed dependence edges exactly as InstrDag::build does
//      (dataflow per operand slot, memory flow store→load, anti
//      load→store, output store→store, duplicates suppressed the same
//      way), annotated with the edge kind.
//   2. Seed every node with a label hashing its opcode and constant
//      operands (tuple uids and variable ids never participate: uids are
//      display-only and variables matter only through the memory edges).
//   3. Refine labels iteratively — each round mixes in the sorted
//      multisets of (edge kind, neighbor label) over in- and out-edges —
//      until the label partition stabilizes.
//   4. fingerprint = order-independent combine of the stabilized labels
//      and edge triples; *guaranteed* invariant under instruction
//      renumbering and semantics-preserving input reordering.
//
// WL refinement is not a perfect graph canonizer, so the cache never
// trusts the hash alone: canonicalize_program also emits a canonical byte
// serialization (nodes in canonical order, edges as canonical indices).
// A cache hit is only served when the request's canonical bytes equal the
// entry's — a hash collision or an unresolved automorphism tie degrades to
// a correct cache miss, never to a wrong schedule (cache.collision counts
// them; see docs/SERVING.md).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "sched/policies.hpp"

namespace bm::serve {

struct CanonicalProgram {
  std::uint64_t fingerprint = 0;
  /// Original dense tuple id -> canonical index.
  std::vector<std::uint32_t> perm;
  /// Canonical index -> original dense tuple id.
  std::vector<std::uint32_t> inv_perm;
  /// Canonical serialization: exact equality certifies that two programs
  /// pose the identical scheduling problem under their respective perms.
  std::string bytes;
};

/// Canonicalizes a (validated) program. Deterministic; O(E · rounds).
CanonicalProgram canonicalize_program(const Program& prog);

/// Fingerprint only (no permutation / bytes needed by the caller).
std::uint64_t program_fingerprint(const Program& prog);

/// 16-digit lowercase hex rendering used in the protocol and fixtures.
std::string fingerprint_hex(std::uint64_t fp);

/// Digest of everything besides the program that determines the schedule
/// bytes: scheduler config, timing model, and the tie-break RNG identity.
/// The schedule cache key is (program fingerprint, config digest) — any
/// machine/policy/timing change invalidates by construction.
std::uint64_t config_digest(const SchedulerConfig& cfg, const TimingModel& tm,
                            std::uint64_t rng_key);

/// Rewrites every instruction token `n<id>` in a serialized schedule
/// (sched/serialize.hpp text format) through `map` (old id -> new id).
/// Barrier tokens, masks, and headers are untouched. Used to store cached
/// schedules in canonical numbering and serve them in request numbering.
std::string rewrite_schedule_ids(const std::string& text,
                                 std::span<const std::uint32_t> map);

}  // namespace bm::serve
