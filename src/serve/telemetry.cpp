#include "serve/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace bm::serve {

namespace {

const char* verb_word(Verb v) {
  switch (v) {
    case Verb::kPing: return "ping";
    case Verb::kSynth: return "synth";
    case Verb::kSchedule: return "schedule";
    case Verb::kStats: return "stats";
  }
  return "ping";
}

const char* status_word(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kCancelled: return "cancelled";
    case Status::kError: return "error";
  }
  return "error";
}

const char* cache_word(CacheOutcome c) {
  switch (c) {
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kBypass: return "bypass";
  }
  return "bypass";
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_fixed(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

/// `"key":` — every key this layer emits is a plain identifier, so no
/// escaping is ever needed on the key side.
void key(std::string& out, const char* k) {
  out += '"';
  out += k;
  out += "\":";
}

/// One `{count, sum_us, mean_us, p50/p90/p99/max_us}` quantile object.
void append_quantiles(std::string& out, const obs::LatencyBuckets& b) {
  out += '{';
  key(out, "count");
  append_u64(out, b.count);
  out += ',';
  key(out, "sum_us");
  append_u64(out, b.sum);
  out += ',';
  key(out, "mean_us");
  append_fixed(out, b.mean());
  out += ',';
  key(out, "p50_us");
  append_u64(out, b.quantile(0.50));
  out += ',';
  key(out, "p90_us");
  append_u64(out, b.quantile(0.90));
  out += ',';
  key(out, "p99_us");
  append_u64(out, b.quantile(0.99));
  out += ',';
  key(out, "max_us");
  append_u64(out, b.max);
  out += '}';
}

}  // namespace

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kFingerprint: return "fingerprint";
    case Phase::kCacheLookup: return "cache_lookup";
    case Phase::kColdSchedule: return "cold_schedule";
    case Phase::kVerify: return "verify";
    case Phase::kSerialize: return "serialize";
    case Phase::kWriteBack: return "write_back";
  }
  return "unknown";
}

ServeTelemetry::ServeTelemetry(TelemetryConfig cfg)
    : cfg_(std::move(cfg)),
      epoch_(std::chrono::steady_clock::now()),
      window_(cfg_.window_slot_us) {
  if (!cfg_.access_log_path.empty()) {
    log_ = std::fopen(cfg_.access_log_path.c_str(), "ab");
    BM_REQUIRE(log_ != nullptr,
               "cannot open access log " + cfg_.access_log_path);
    const long at = std::ftell(log_);
    log_bytes_ = at > 0 ? static_cast<std::uint64_t>(at) : 0;
  }
}

ServeTelemetry::~ServeTelemetry() {
  if (log_ != nullptr) std::fclose(log_);
}

std::uint64_t ServeTelemetry::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ServeTelemetry::record(const RequestTiming& t) {
#if BM_OBS_ENABLED
  total_.observe(t.total_us);
  window_.observe(t.admit_us + t.total_us, t.total_us);
  for (std::size_t p = 0; p < kNumPhases; ++p)
    if (t.phases[p].entries > 0) phase_[p].observe(t.phases[p].dur_us);
#endif
  if (log_ != nullptr) append_access_log(t);
  maybe_emit_slow_trace(t);
}

/// One JSONL line per answered request. Fingerprints are truncated to an
/// 8-hex-digit prefix: enough to join against slow traces and server logs,
/// short enough that the log stays grep-friendly.
void ServeTelemetry::append_access_log(const RequestTiming& t) {
  std::string line;
  line.reserve(256);
  line += '{';
  key(line, "rid");
  append_u64(line, t.rid);
  line += ',';
  key(line, "id");
  append_u64(line, t.client_id);
  line += ',';
  key(line, "ts_us");
  append_u64(line, t.admit_us);
  line += ',';
  key(line, "verb");
  line += '"';
  line += verb_word(t.verb);
  line += "\",";
  key(line, "status");
  line += '"';
  line += status_word(t.status);
  line += "\",";
  key(line, "cache");
  line += '"';
  line += cache_word(t.cache);
  line += "\",";
  key(line, "fp");
  line += '"';
  line += t.fingerprint.substr(0, 8);  // hex digits only: no escaping
  line += "\",";
  key(line, "total_us");
  append_u64(line, t.total_us);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (t.phases[p].entries == 0) continue;
    line += ',';
    key(line, phase_name(static_cast<Phase>(p)));
    append_u64(line, t.phases[p].dur_us);
  }
  line += "}\n";

  OrderedLock lock(log_mu_);
  if (log_bytes_ + line.size() > cfg_.access_log_rotate_bytes &&
      log_bytes_ > 0) {
    std::fclose(log_);
    const std::string old = cfg_.access_log_path + ".1";
    std::rename(cfg_.access_log_path.c_str(), old.c_str());
    log_ = std::fopen(cfg_.access_log_path.c_str(), "wb");
    BM_REQUIRE(log_ != nullptr,
               "cannot reopen access log " + cfg_.access_log_path);
    log_bytes_ = 0;
    ++log_rotations_;
  }
  std::fwrite(line.data(), 1, line.size(), log_);
  std::fflush(log_);
  log_bytes_ += line.size();
  ++log_lines_;
}

/// Standalone Perfetto trace for one slow request: a parent `request` span
/// on lane 0 plus one span per touched phase, each on its own named lane
/// so overlapping attribution (cold_schedule accumulates around the
/// fingerprint/cache phases) renders cleanly. Timestamps are daemon-uptime
/// microseconds, so traces from one run are mutually comparable.
void ServeTelemetry::maybe_emit_slow_trace(const RequestTiming& t) {
  if (cfg_.slow_trace_us == 0 || cfg_.slow_trace_dir.empty()) return;
  if (t.total_us < cfg_.slow_trace_us) return;
  // mo: fast-path pre-check and suppression tally; the authoritative slot
  // claim is the seq_cst fetch_add below, these counters order nothing.
  if (slow_emitted_.load(std::memory_order_relaxed) >= cfg_.slow_trace_max) {
    slow_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Claim a slot first so concurrent slow requests cannot overshoot.
  const std::uint64_t n = slow_emitted_.fetch_add(1);
  if (n >= cfg_.slow_trace_max) {
    slow_emitted_.fetch_sub(1);
    // mo: suppression tally only (see above).
    slow_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  std::vector<obs::TraceEvent> events;
  std::vector<obs::TraceLaneName> lanes;
  obs::TraceEvent root;
  root.name = std::string("request ") + status_word(t.status) + " (" +
              verb_word(t.verb) + ", cache " + cache_word(t.cache) + ")";
  root.cat = "serve";
  root.ts = static_cast<double>(t.admit_us);
  root.dur = static_cast<double>(t.total_us);
  root.tid = 0;
  root.arg_key = "rid";
  root.arg_val = static_cast<double>(t.rid);
  events.push_back(std::move(root));
  lanes.push_back({obs::kWallPid, 0, "request"});
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const RequestTiming::Slice& s = t.phases[p];
    if (s.entries == 0) continue;
    obs::TraceEvent e;
    e.name = phase_name(static_cast<Phase>(p));
    e.cat = "serve";
    e.ts = static_cast<double>(s.start_us);
    e.dur = static_cast<double>(s.dur_us);
    e.tid = static_cast<std::uint32_t>(p) + 1;
    e.arg_key = "entries";
    e.arg_val = static_cast<double>(s.entries);
    events.push_back(std::move(e));
    lanes.push_back({obs::kWallPid, static_cast<std::uint32_t>(p) + 1,
                     phase_name(static_cast<Phase>(p))});
  }

  const std::string path =
      cfg_.slow_trace_dir + "/slow-req-" + std::to_string(t.rid) +
      ".trace.json";
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) return;  // an unwritable dir must not fail the request
  obs::write_trace_events_json(
      os, std::move(events),
      {{obs::kWallPid, "bmserve slow request " + std::to_string(t.rid)}},
      lanes);
}

std::string ServeTelemetry::stats_json(const CoreTotals& totals) const {
  const std::uint64_t now = now_us();
  const obs::LatencyBuckets all = total_.snapshot();
  const obs::LatencyBuckets win = window_.window(now);
  // mo: inflight gauge; the snapshot is allowed to be momentarily stale.
  const std::uint64_t running = running_.load(std::memory_order_relaxed);
  const std::uint64_t waiting =
      totals.queued > running ? totals.queued - running : 0;
  const std::uint64_t cache_probes = totals.cache.hits + totals.cache.misses;
  const double hit_ratio =
      cache_probes == 0 ? 0.0
                        : static_cast<double>(totals.cache.hits) /
                              static_cast<double>(cache_probes);

  std::string out;
  out.reserve(2048);
  out += "{";
  key(out, "stats");
  out += "\"v1\",";
  key(out, "uptime_us");
  append_u64(out, now);
  out += ',';
  key(out, "workers");
  append_u64(out, totals.workers);
  out += ',';
  key(out, "inflight");
  append_u64(out, totals.queued);
  out += ',';
  key(out, "running");
  append_u64(out, running);
  out += ',';
  key(out, "queue_depth");
  append_u64(out, waiting);
  out += ',';

  key(out, "totals");
  out += '{';
  key(out, "received");
  append_u64(out, totals.received);
  out += ',';
  key(out, "ok");
  append_u64(out, totals.completed);
  out += ',';
  key(out, "rejected");
  append_u64(out, totals.rejected);
  out += ',';
  key(out, "cancelled");
  append_u64(out, totals.cancelled);
  out += ',';
  key(out, "errors");
  append_u64(out, totals.errors);
  out += "},";

  key(out, "cache");
  out += '{';
  key(out, "hits");
  append_u64(out, totals.cache.hits);
  out += ',';
  key(out, "misses");
  append_u64(out, totals.cache.misses);
  out += ',';
  key(out, "collisions");
  append_u64(out, totals.cache.collisions);
  out += ',';
  key(out, "insertions");
  append_u64(out, totals.cache.insertions);
  out += ',';
  key(out, "evictions");
  append_u64(out, totals.cache.evictions);
  out += ',';
  key(out, "entries");
  append_u64(out, totals.cache.entries);
  out += ',';
  key(out, "bytes");
  append_u64(out, totals.cache.bytes);
  out += ',';
  key(out, "hit_ratio");
  append_fixed(out, hit_ratio);
  out += "},";

  key(out, "latency");
  append_quantiles(out, all);
  out += ',';

  key(out, "window");
  out += '{';
  key(out, "span_us");
  append_u64(out, std::min(window_.span_us(), now));
  out += ',';
  key(out, "quantiles");
  append_quantiles(out, win);
  out += "},";

  key(out, "phases");
  out += '{';
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (p > 0) out += ',';
    key(out, phase_name(static_cast<Phase>(p)));
    append_quantiles(out, phase_[p].snapshot());
  }
  out += "},";

  key(out, "access_log");
  out += '{';
  {
    OrderedLock lock(log_mu_);
    key(out, "enabled");
    out += log_ != nullptr ? "true" : "false";
    out += ',';
    key(out, "lines");
    append_u64(out, log_lines_);
    out += ',';
    key(out, "bytes");
    append_u64(out, log_bytes_);
    out += ',';
    key(out, "rotations");
    append_u64(out, log_rotations_);
  }
  out += "},";

  key(out, "slow_traces");
  out += '{';
  key(out, "threshold_us");
  append_u64(out, cfg_.slow_trace_us);
  out += ',';
  key(out, "emitted");
  // mo: stats-snapshot reads of tally counters; staleness is acceptable.
  append_u64(out, slow_emitted_.load(std::memory_order_relaxed));
  out += ',';
  key(out, "suppressed");
  // mo: stats-snapshot tally read (see above).
  append_u64(out, slow_suppressed_.load(std::memory_order_relaxed));
  out += '}';
  out += "}";

  // Publish the headline numbers as gauges too, in the serve-metrics
  // namespace the experiment harness excludes from manifests (wall-clock
  // values must never reach a byte-identity surface).
  BM_OBS_GAUGE_SET("serve-metrics.uptime_us", now);
  BM_OBS_GAUGE_SET("serve-metrics.inflight", totals.queued);
  BM_OBS_GAUGE_SET("serve-metrics.queue_depth", waiting);
  BM_OBS_GAUGE_SET("serve-metrics.p50_us", all.quantile(0.50));
  BM_OBS_GAUGE_SET("serve-metrics.p99_us", all.quantile(0.99));
  BM_OBS_GAUGE_SET("serve-metrics.window_p99_us", win.quantile(0.99));
  BM_OBS_GAUGE_SET("serve-metrics.hit_permille", hit_ratio * 1000.0);

  return out;
}

}  // namespace bm::serve
