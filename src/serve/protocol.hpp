// Wire protocol for bmserve: length-prefixed frames carrying a line-
// oriented text payload (human-debuggable with xxd, trivially parsed).
//
// Framing: a 4-byte little-endian payload length, then the payload. The
// length is capped (kMaxFrameBytes) so a corrupt or hostile peer cannot
// make the server allocate unboundedly.
//
// Request payload:
//   req v1
//   <key> <value>          # one header per line, order free
//   <blank line>
//   <body: .bm statement source for verb=schedule; empty otherwise>
//
// Keys: id, verb (ping|synth|schedule|stats), procs, machine (sbm|dbm),
// insertion (conservative|optimal), ordering (maxmin|minmax), assignment
// (list|rr|lookahead), lookahead-window, latency, final-barrier, repair,
// seed, index, statements, variables, constants, const-prob, const-max,
// verify (0|1), no-cache (0|1).
//
// Response payload mirrors the shape: "resp v1", headers (id, status
// (ok|rejected|cancelled|error), cache (hit|miss|bypass), fingerprint,
// schedule-stats fields, error), blank line, body (schedule text for ok
// scheduling responses; stats text for verb=stats).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "codegen/generator.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace bm::serve {

inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

enum class Verb { kPing, kSynth, kSchedule, kStats };

struct Request {
  std::uint64_t id = 0;
  Verb verb = Verb::kPing;

  SchedulerConfig sched;
  GeneratorConfig gen;            ///< verb=synth
  std::uint64_t base_seed = 1990; ///< verb=synth: stream identity...
  std::size_t index = 0;          ///< ...benchmark_rng(base_seed, index)
  std::string source;             ///< verb=schedule: .bm statement block
  std::uint64_t seed = 1;         ///< verb=schedule: scheduler tie-break seed

  bool verify = false;
  bool no_cache = false;
};

enum class Status { kOk, kRejected, kCancelled, kError };
enum class CacheOutcome { kMiss, kHit, kBypass };

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  CacheOutcome cache = CacheOutcome::kBypass;
  std::string fingerprint;  ///< 16-digit hex; empty for ping/stats
  std::string error;        ///< status=error/rejected: diagnostic
  ScheduleStats stats;      ///< scheduling verbs, status=ok
  std::uint64_t verify_errors = 0;
  std::string body;         ///< schedule text / stats text / pong
};

/// Thread-safe strerror: the serving stack formats errno from concurrent
/// connection/worker threads, where std::strerror's shared buffer is a
/// race (and a concurrency-mt-unsafe tidy finding).
std::string errno_string(int err);

// -- text payload codec ----------------------------------------------------

std::string encode_request(const Request& req);
/// Throws bm::Error on malformed payloads (bad verb, non-numeric field...).
Request decode_request(const std::string& payload);

std::string encode_response(const Response& resp);
Response decode_response(const std::string& payload);

// -- frame I/O over a file descriptor --------------------------------------

/// Writes one length-prefixed frame; retries short writes. Returns false on
/// EPIPE/connection loss, throws bm::Error on other I/O errors.
bool write_frame(int fd, const std::string& payload);

/// Reads one frame. Empty optional = clean EOF at a frame boundary; throws
/// bm::Error on truncation, oversized frames, or I/O errors.
std::optional<std::string> read_frame(int fd);

}  // namespace bm::serve
