// SchedulerSession: the reentrant scheduling-pipeline facade.
//
// Historically the pipeline stages (synthesize → InstrDag::build →
// schedule_program → verify → simulate) were free functions glued together
// inside the experiment harness, with the per-seed working state hiding in
// thread-locals (scratch arenas, the validate-draws trace). A session makes
// that state explicit and owned: each SchedulerSession carries its own
// scratch arena (or borrows the thread-default one), its own reusable
// simulation trace, and nothing else — two sessions never share mutable
// state, so a server can run many concurrently while the single-threaded
// harness drives one per worker thread with identical results.
//
// Arena modes:
//   kOwned        — the session owns a ScratchArena and installs it around
//                   every pipeline call. Isolation for serving: request
//                   working memory lives and dies with the session.
//   kThreadShared — pipeline calls use the calling thread's default arena
//                   (the pre-session behavior). The harness uses this so
//                   warm per-thread pools persist across seeds and points
//                   (tests/scratch_arena_test.cpp pins that steady state).
//
// A session is strictly one-request-at-a-time: concurrent calls on one
// session are API misuse and trip a guard. Use one session per worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/scratch.hpp"
#include "verify/verify.hpp"

namespace bm::serve {

/// One seeded synthetic-benchmark evaluation — the unit of work the
/// experiment harness fans out and the serving core batches.
struct BenchmarkRequest {
  GeneratorConfig gen;
  SchedulerConfig sched;
  TimingModel timing = TimingModel::table1();
  std::uint64_t base_seed = 1990;
  std::size_t index = 0;  ///< seed index; stream = benchmark_rng(base, index)

  bool with_vliw = false;
  std::size_t sim_runs = 0;
  std::size_t sim_batch = kDefaultSimBatch;
  bool validate_draws = false;
  bool verify = false;
};

struct BenchmarkResult {
  std::size_t seed_index = 0;
  std::size_t program_size = 0;  ///< optimized tuple count
  ScheduleStats stats;
  Time vliw_makespan = 0;                ///< when with_vliw
  CompletionSummary barrier_completion;  ///< when sim_runs > 0
  std::size_t violations = 0;     ///< across validated draws (expect 0)
  std::size_t verify_errors = 0;  ///< when verify
  std::string verify_first;       ///< first verifier error diagnostic
};

class SchedulerSession {
 public:
  enum class ArenaMode { kOwned, kThreadShared };

  explicit SchedulerSession(ArenaMode mode = ArenaMode::kOwned);

  SchedulerSession(const SchedulerSession&) = delete;
  SchedulerSession& operator=(const SchedulerSession&) = delete;

  /// The full seeded-benchmark pipeline, byte-identical to the historical
  /// harness inner loop: synthesis and scheduling consume the same
  /// benchmark_rng(base_seed, index) stream in order, spans keep their
  /// names, and verify/sim stages run under the same conditions.
  BenchmarkResult run_benchmark(const BenchmarkRequest& req);

  // -- individual pipeline stages (serving path) --------------------------

  /// §2.2 synthesis: generate + lower + optimize. Consumes `rng`.
  SynthesisResult synthesize(const GeneratorConfig& gen, Rng& rng);

  /// Parses `.bm` statement source, lowers, and optimizes — the explicit-
  /// program analog of synthesize(). Throws bm::Error on syntax errors.
  Program compile_source(const std::string& source);

  InstrDag build_dag(const Program& prog, const TimingModel& timing);

  ScheduleResult schedule(const InstrDag& dag, const SchedulerConfig& cfg,
                          Rng& rng);

  VerifyReport verify(const InstrDag& dag, const Schedule& sched,
                      const VerifyOptions& opt = {});

 private:
  /// RAII: guards against concurrent use and installs the owned arena.
  class Enter;

  ArenaMode mode_;
  ScratchArena arena_;        ///< used only in kOwned mode
  ExecTrace trace_;           ///< reused across validate-draws simulations
  std::atomic<bool> in_use_{false};
};

}  // namespace bm::serve
