#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/dominators.hpp"
#include "graph/paths.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace bm {
namespace {

/// Per-processor re-derivation of the stream-relative queries (LastBar,
/// NextBar, δ) straight from the raw entry stream — the verifier must not
/// trust Schedule's own helpers for the quantities it is checking.
struct StreamFacts {
  std::vector<BarrierId> last_bar;   ///< last barrier strictly before pos
  std::vector<BarrierId> next_bar;   ///< first strictly after; kInvalidBarrier
  std::vector<TimeRange> before;     ///< Σ instr time in (last_bar(pos), pos)
};

StreamFacts derive_stream_facts(const InstrDag& dag,
                                const std::vector<ScheduleEntry>& stream) {
  StreamFacts f;
  const std::size_t n = stream.size();
  f.last_bar.resize(n);
  f.next_bar.resize(n, kInvalidBarrier);
  f.before.resize(n);
  BarrierId cur = Schedule::kInitialBarrier;
  TimeRange acc{0, 0};
  for (std::size_t pos = 0; pos < n; ++pos) {
    f.last_bar[pos] = cur;
    f.before[pos] = acc;
    if (stream[pos].is_barrier) {
      cur = stream[pos].id;
      acc = {0, 0};
    } else {
      acc += dag.time(stream[pos].id);
    }
  }
  BarrierId next = kInvalidBarrier;
  for (std::size_t pos = n; pos-- > 0;) {
    f.next_bar[pos] = next;
    if (stream[pos].is_barrier) next = stream[pos].id;
  }
  return f;
}

/// The verifier's own barrier graph, rebuilt from the schedule streams with
/// its own sweeps for every timing/structure query the proofs need. Mirrors
/// the BarrierDag *semantics* (Fig. 13 join_max aggregation, latency charged
/// per hop) but shares no state with it — only the generic graph utilities.
class FreshAnalysis {
 public:
  FreshAnalysis(const InstrDag& dag, const Schedule& sched) {
    latency_ = sched.barrier_latency();
    // Dense ids: the initial barrier first, then every barrier appearing in
    // some stream, ascending (deterministic).
    std::vector<BarrierId> seen;
    for (ProcId p = 0; p < sched.num_procs(); ++p)
      for (const ScheduleEntry& e : sched.stream(p))
        if (e.is_barrier) seen.push_back(e.id);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    ids_.push_back(Schedule::kInitialBarrier);
    for (BarrierId b : seen)
      if (b != Schedule::kInitialBarrier) ids_.push_back(b);
    for (NodeId k = 0; k < ids_.size(); ++k) index_[ids_[k]] = k;

    g_ = Digraph(ids_.size());
    for (ProcId p = 0; p < sched.num_procs(); ++p) {
      NodeId prev = 0;  // dense index of the initial barrier
      TimeRange seg{0, 0};
      for (const ScheduleEntry& e : sched.stream(p)) {
        if (!e.is_barrier) {
          seg += dag.time(e.id);
          continue;
        }
        const NodeId b = index_.at(e.id);
        if (b != prev) {  // an adjacent duplicate is flagged by the lints
          const std::uint64_t key = edge_key(prev, b);
          auto [it, inserted] = edges_.try_emplace(key, seg);
          if (!inserted) it->second = it->second.join_max(seg);
          g_.add_edge(prev, b);
        }
        prev = b;
        seg = {0, 0};
      }
      // Tail code after the last barrier creates no edge (it delays the
      // processor's finish, not any barrier's fire time).
    }

    cyclic_ = !is_dag(g_);
    if (cyclic_) return;
    topo_ = topo_order(g_);
    const auto fire_min = longest_from(g_, 0, weight_fn(/*use_max=*/false));
    const auto fire_max = longest_from(g_, 0, weight_fn(/*use_max=*/true));
    fire_.resize(ids_.size());
    for (NodeId k = 0; k < ids_.size(); ++k)
      fire_[k] = {fire_min[k], fire_max[k]};

    reach_.assign(ids_.size(), DynBitset(ids_.size()));
    for (std::size_t t = topo_.size(); t-- > 0;) {
      const NodeId n = topo_[t];
      reach_[n].set(n);
      for (NodeId s : g_.succs(n)) reach_[n] |= reach_[s];
    }
    dom_ = std::make_unique<DominatorTree>(g_, 0);
    psi_min_cache_.resize(ids_.size());
    psi_max_cache_.resize(ids_.size());
  }

  bool cyclic() const { return cyclic_; }
  const std::vector<BarrierId>& ids() const { return ids_; }
  const Digraph& graph() const { return g_; }
  NodeId index_of(BarrierId b) const { return index_.at(b); }
  BarrierId id_of(NodeId k) const { return ids_[k]; }
  TimeRange fire(BarrierId b) const { return fire_[index_of(b)]; }
  bool path_exists(BarrierId u, BarrierId v) const {  // reflexive, like <_b
    return reach_[index_of(u)].test(index_of(v));
  }
  BarrierId common_dominator(BarrierId a, BarrierId b) const {
    return ids_[dom_->common_dominator(index_of(a), index_of(b))];
  }
  const DominatorTree& dom() const { return *dom_; }

  Time psi(BarrierId u, BarrierId v, bool use_max) const {
    auto& cache = use_max ? psi_max_cache_ : psi_min_cache_;
    const NodeId src = index_of(u);
    if (cache[src].empty())
      cache[src] = longest_from(g_, src, weight_fn(use_max));
    return cache[src][index_of(v)];
  }

  /// ψ*_min re-derivation: longest u→w path under min weights with the
  /// given (dense-index) edges forced to their max weight.
  Time psi_min_star(
      BarrierId u, BarrierId w,
      const std::vector<std::pair<NodeId, NodeId>>& forced_max) const {
    std::vector<Time> dist(ids_.size(), kUnreachable);
    dist[index_of(u)] = 0;
    for (NodeId n : topo_) {
      if (dist[n] == kUnreachable) continue;
      for (NodeId s : g_.succs(n)) {
        const TimeRange w_ns = hop_weight(n, s);
        const bool forced =
            std::find(forced_max.begin(), forced_max.end(),
                      std::make_pair(n, s)) != forced_max.end();
        const Time step = forced ? w_ns.max : w_ns.min;
        dist[s] = std::max(dist[s], dist[n] + step);
      }
    }
    return dist[index_of(w)];
  }

  /// Latency-charged edge weight between dense indices; edge must exist.
  TimeRange hop_weight(NodeId u, NodeId v) const {
    const TimeRange seg = edges_.at(edge_key(u, v));
    return {seg.min + latency_, seg.max + latency_};
  }

  EdgeWeightFn weight_fn(bool use_max) const {
    return [this, use_max](NodeId a, NodeId b) {
      const TimeRange w = hop_weight(a, b);
      return use_max ? w.max : w.min;
    };
  }

 private:
  static std::uint64_t edge_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  Time latency_ = 0;
  std::vector<BarrierId> ids_;
  std::map<BarrierId, NodeId> index_;
  Digraph g_;
  std::map<std::uint64_t, TimeRange> edges_;  ///< raw segment, no latency
  bool cyclic_ = false;
  std::vector<NodeId> topo_;
  std::vector<TimeRange> fire_;
  std::vector<DynBitset> reach_;
  std::unique_ptr<DominatorTree> dom_;
  mutable std::vector<std::vector<Time>> psi_min_cache_, psi_max_cache_;
};

// ---------------------------------------------------------------------------
// Family 2: structural lints over streams, masks, and the fresh graph.
// ---------------------------------------------------------------------------

void lint_streams(const Schedule& sched, VerifyReport& report) {
  const std::size_t bound = sched.barrier_id_bound();
  // procs_with[b]: processors whose stream contains barrier b.
  std::vector<DynBitset> procs_with(bound, DynBitset(sched.num_procs()));
  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    std::vector<bool> seen(bound, false);
    for (const ScheduleEntry& e : sched.stream(p)) {
      if (!e.is_barrier) continue;
      if (e.id >= bound || !sched.barrier_alive(e.id)) {
        std::ostringstream os;
        os << "stream P" << p << " references dead or unknown barrier B"
           << e.id;
        report.add(verify_code::kMaskMismatch, VerifySeverity::kError,
                   os.str(), e.id);
        continue;
      }
      if (seen[e.id]) {
        std::ostringstream os;
        os << "barrier B" << e.id << " appears more than once in stream P"
           << p;
        report.add(verify_code::kDuplicateEntry, VerifySeverity::kError,
                   os.str(), e.id);
      }
      seen[e.id] = true;
      procs_with[e.id].set(p);
    }
  }

  for (BarrierId b = 0; b < bound; ++b) {
    if (!sched.barrier_alive(b) || b == Schedule::kInitialBarrier) continue;
    if (procs_with[b].none()) {
      std::ostringstream os;
      os << "barrier B" << b
         << " is alive but appears in no stream (unreachable from entry)";
      report.add(verify_code::kOrphanBarrier, VerifySeverity::kWarning,
                 os.str(), b);
      continue;
    }
    if (!(procs_with[b] == sched.barrier_mask(b))) {
      std::ostringstream os;
      os << "barrier B" << b << " mask " << sched.barrier_mask(b).to_string()
         << " disagrees with stream participation "
         << procs_with[b].to_string();
      report.add(verify_code::kMaskMismatch, VerifySeverity::kError,
                 os.str(), b);
    }
  }

  if (const auto fb = sched.final_barrier()) {
    for (ProcId p = 0; p < sched.num_procs(); ++p) {
      const auto& stream = sched.stream(p);
      for (std::size_t pos = 0; pos < stream.size(); ++pos) {
        if (!stream[pos].is_barrier || stream[pos].id != *fb) continue;
        if (pos + 1 != stream.size()) {
          std::ostringstream os;
          os << "final rejoin barrier B" << *fb
             << " is not the last entry of stream P" << p;
          report.add(verify_code::kFinalNotLast, VerifySeverity::kError,
                     os.str(), *fb);
        }
      }
    }
  }
}

/// BV205: barrier b is transitively redundant when it has both barrier
/// predecessors and successors and every pred→succ pair stays connected by
/// a path avoiding b. Structural only — removal can still widen timing
/// windows — hence a warning, not an error.
void lint_redundant_barriers(const Schedule& sched, const FreshAnalysis& fa,
                             VerifyReport& report) {
  const std::size_t n = fa.ids().size();
  std::vector<NodeId> stack;
  std::vector<bool> visited(n);
  for (NodeId bi = 1; bi < n; ++bi) {  // 0 = initial, never redundant
    const BarrierId b = fa.id_of(bi);
    if (sched.final_barrier() && *sched.final_barrier() == b) continue;
    const auto& preds = fa.graph().preds(bi);
    const auto& succs = fa.graph().succs(bi);
    if (preds.empty() || succs.empty()) continue;
    bool redundant = true;
    for (NodeId u : preds) {
      // DFS from u skipping bi; every successor of bi must still be reached.
      std::fill(visited.begin(), visited.end(), false);
      stack.assign(1, u);
      visited[u] = true;
      while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        for (NodeId s : fa.graph().succs(cur)) {
          if (s == bi || visited[s]) continue;
          visited[s] = true;
          stack.push_back(s);
        }
      }
      for (NodeId v : succs)
        if (!visited[v]) {
          redundant = false;
          break;
        }
      if (!redundant) break;
    }
    if (redundant) {
      ++report.stats().redundant_barriers;
      std::ostringstream os;
      os << "barrier B" << b
         << " is transitively redundant: every predecessor already reaches "
            "every successor without it";
      report.add(verify_code::kRedundantBarrier, VerifySeverity::kWarning,
                 os.str(), b);
    }
  }
}

// ---------------------------------------------------------------------------
// Family 3: the lazily cached BarrierDag must agree with the fresh sweeps.
// ---------------------------------------------------------------------------

void check_cached_analysis(const Schedule& sched, const FreshAnalysis& fa,
                           VerifyReport& report) {
  auto mismatch = [&](const char* code, std::string msg) {
    ++report.stats().cache_mismatches;
    report.add(code, VerifySeverity::kError, std::move(msg));
  };
  try {
    const BarrierDag& bd = sched.barrier_dag();
    for (BarrierId b : fa.ids()) {
      if (!bd.known(b)) {
        std::ostringstream os;
        os << "barrier B" << b << " is in the streams but unknown to the "
           << "cached barrier dag";
        mismatch(verify_code::kCachedReach, os.str());
        return;  // id spaces disagree; pairwise checks would just cascade
      }
      if (bd.fire_range(b) != fa.fire(b)) {
        std::ostringstream os;
        os << "cached fire range of B" << b << " "
           << bd.fire_range(b).to_string() << " != fresh "
           << fa.fire(b).to_string();
        mismatch(verify_code::kCachedFire, os.str());
      }
    }
    for (BarrierId u : fa.ids()) {
      for (BarrierId v : fa.ids()) {
        if (bd.path_exists(u, v) != fa.path_exists(u, v)) {
          std::ostringstream os;
          os << "cached reachability B" << u << " ->* B" << v << " = "
             << (bd.path_exists(u, v) ? "true" : "false")
             << " disagrees with the fresh closure";
          mismatch(verify_code::kCachedReach, os.str());
        }
        if (bd.common_dominator(u, v) != fa.common_dominator(u, v)) {
          std::ostringstream os;
          os << "cached common dominator of (B" << u << ", B" << v << ") = B"
             << bd.common_dominator(u, v) << " != fresh B"
             << fa.common_dominator(u, v);
          mismatch(verify_code::kCachedDom, os.str());
        }
      }
    }
  } catch (const Error& e) {
    mismatch(verify_code::kCachedFire,
             std::string("cached barrier dag construction failed: ") +
                 e.what());
  }
}

// ---------------------------------------------------------------------------
// Family 1: dependence coverage (the race detector proper).
// ---------------------------------------------------------------------------

struct EdgeContext {
  BarrierId last_bar_g, last_bar_i, next_bar_g;  // next may be invalid
  BarrierId common_dom;
  TimeRange delta_through_g;  ///< (LastBar(g), g], both bounds
  TimeRange delta_before_i;   ///< (LastBar(i), i), both bounds
};

/// §4.4.1 steps 2–5 re-derived: single longest-path window relative to the
/// common dominating barrier.
bool conservative_proof(const FreshAnalysis& fa, const EdgeContext& ctx) {
  const Time t_max_g = fa.psi(ctx.common_dom, ctx.last_bar_g, true) +
                       ctx.delta_through_g.max;
  const Time t_min_i = fa.psi(ctx.common_dom, ctx.last_bar_i, false) +
                       ctx.delta_before_i.min;
  return t_min_i >= t_max_g;
}

/// §4.4.2 re-derived: per-producer-path analysis with the ψ*_min overlap
/// adjustment. Exceeding the enumeration cap means "unproven", never
/// "accepted".
bool refined_proof(const FreshAnalysis& fa, const EdgeContext& ctx,
                   std::size_t max_paths) {
  const Time base_min = fa.psi(ctx.common_dom, ctx.last_bar_i, false) +
                        ctx.delta_before_i.min;
  PathEnumerator paths(fa.graph(), fa.index_of(ctx.common_dom),
                       fa.index_of(ctx.last_bar_g),
                       fa.weight_fn(/*use_max=*/true));
  Path path;
  Time length = 0;
  std::size_t enumerated = 0;
  while (paths.next(path, length)) {
    if (length + ctx.delta_through_g.max <= base_min) return true;
    if (++enumerated > max_paths) return false;
    std::vector<std::pair<NodeId, NodeId>> overlap_edges;
    overlap_edges.reserve(path.size());
    for (std::size_t k = 0; k + 1 < path.size(); ++k)
      overlap_edges.emplace_back(path[k], path[k + 1]);
    const Time adjusted =
        fa.psi_min_star(ctx.common_dom, ctx.last_bar_i, overlap_edges) +
        ctx.delta_before_i.min;
    if (length + ctx.delta_through_g.max > adjusted) return false;
  }
  return true;
}

void check_dependences(const InstrDag& dag, const Schedule& sched,
                       const FreshAnalysis& fa,
                       const std::vector<StreamFacts>& facts,
                       const VerifyOptions& opt, VerifyReport& report) {
  VerifyStats& st = report.stats();
  for (NodeId n = 0; n < dag.num_instructions(); ++n) {
    if (!sched.placed(n)) {
      std::ostringstream os;
      os << "instruction n" << n << " is not placed on any processor";
      report.add(verify_code::kUnplaced, VerifySeverity::kError, os.str());
    }
  }

  for (const auto& [g, i] : dag.sync_edges()) {
    ++st.edges_checked;
    if (!sched.placed(g) || !sched.placed(i)) continue;  // BV103 above
    const Schedule::Loc lg = sched.loc(g);
    const Schedule::Loc li = sched.loc(i);
    if (lg.proc == li.proc) {
      if (lg.pos < li.pos) {
        ++st.proved_serialized;
      } else {
        std::ostringstream os;
        os << "dependence n" << g << " -> n" << i << " inverted on P"
           << lg.proc << ": producer at pos " << lg.pos
           << ", consumer at pos " << li.pos;
        report.add(verify_code::kSamePeOrder, VerifySeverity::kError,
                   os.str());
      }
      continue;
    }

    EdgeContext ctx;
    ctx.last_bar_g = facts[lg.proc].last_bar[lg.pos];
    ctx.last_bar_i = facts[li.proc].last_bar[li.pos];
    ctx.next_bar_g = facts[lg.proc].next_bar[lg.pos];
    ctx.delta_through_g = facts[lg.proc].before[lg.pos] + dag.time(g);
    ctx.delta_before_i = facts[li.proc].before[li.pos];

    // Step 1 (PathFind): a barrier chain NextBar(g) →* LastBar(i).
    if (ctx.next_bar_g != kInvalidBarrier &&
        fa.path_exists(ctx.next_bar_g, ctx.last_bar_i)) {
      ++st.proved_path;
      continue;
    }

    ctx.common_dom = fa.common_dominator(ctx.last_bar_g, ctx.last_bar_i);
    if (conservative_proof(fa, ctx)) {
      ++st.proved_timing;
      continue;
    }
    if (refined_proof(fa, ctx, opt.max_enumerated_paths)) {
      ++st.proved_timing_refined;
      continue;
    }

    // Unprovable: report with the absolute-interval witness. A failed
    // conservative proof implies the absolute windows overlap (the ψ
    // decomposition through the common dominator is exact), so the window
    // below is always non-empty.
    ++st.races;
    RaceWitness w;
    w.producer = g;
    w.consumer = i;
    w.producer_proc = lg.proc;
    w.consumer_proc = li.proc;
    w.producer_pos = lg.pos;
    w.consumer_pos = li.pos;
    w.producer_guard = ctx.last_bar_g;
    w.consumer_guard = ctx.last_bar_i;
    w.producer_finish = fa.fire(ctx.last_bar_g) + ctx.delta_through_g;
    w.consumer_start = fa.fire(ctx.last_bar_i) + ctx.delta_before_i;
    w.overlap = {w.consumer_start.min, w.producer_finish.max};
    std::ostringstream os;
    os << "unprovable dependence n" << g << " -> n" << i
       << ": no program order, no separating barrier chain, and the timing "
          "windows admit an inversion";
    report.add(VerifyDiagnostic{verify_code::kRace, VerifySeverity::kError,
                                os.str(), w});
  }
}

}  // namespace

VerifyReport verify_schedule(const InstrDag& dag, const Schedule& sched,
                             const VerifyOptions& options) {
  BM_REQUIRE(&sched.instr_dag() == &dag,
             "schedule was not built over the given instruction dag");
  BM_OBS_SPAN(span, "verify.run", "verify");
  VerifyReport report;

  if (options.lint_structure) lint_streams(sched, report);

  FreshAnalysis fa(dag, sched);
  report.stats().barriers_checked = fa.ids().size();
  if (fa.cyclic()) {
    report.add(verify_code::kCycle, VerifySeverity::kError,
               "barrier graph derived from the streams contains a cycle; "
               "timing analysis skipped");
    // Same-PE order and placement are still checkable without timing.
    for (NodeId n = 0; n < dag.num_instructions(); ++n) {
      if (!sched.placed(n)) {
        std::ostringstream os;
        os << "instruction n" << n << " is not placed on any processor";
        report.add(verify_code::kUnplaced, VerifySeverity::kError, os.str());
      }
    }
    for (const auto& [g, i] : dag.sync_edges()) {
      ++report.stats().edges_checked;
      if (!sched.placed(g) || !sched.placed(i)) continue;
      const Schedule::Loc lg = sched.loc(g);
      const Schedule::Loc li = sched.loc(i);
      if (lg.proc == li.proc && lg.pos >= li.pos) {
        std::ostringstream os;
        os << "dependence n" << g << " -> n" << i << " inverted on P"
           << lg.proc;
        report.add(verify_code::kSamePeOrder, VerifySeverity::kError,
                   os.str());
      }
    }
  } else {
    std::vector<StreamFacts> facts;
    facts.reserve(sched.num_procs());
    for (ProcId p = 0; p < sched.num_procs(); ++p)
      facts.push_back(derive_stream_facts(dag, sched.stream(p)));

    check_dependences(dag, sched, fa, facts, options, report);
    if (options.lint_redundant) lint_redundant_barriers(sched, fa, report);
    if (options.check_cached_analysis)
      check_cached_analysis(sched, fa, report);
  }

  const VerifyStats& st = report.stats();
  BM_OBS_COUNT("verify.schedules");
  BM_OBS_COUNT_N("verify.edges_checked", st.edges_checked);
  BM_OBS_COUNT_N("verify.proved_serialized", st.proved_serialized);
  BM_OBS_COUNT_N("verify.proved_path", st.proved_path);
  BM_OBS_COUNT_N("verify.proved_timing", st.proved_timing);
  BM_OBS_COUNT_N("verify.proved_timing_refined", st.proved_timing_refined);
  BM_OBS_COUNT_N("verify.races", st.races);
  BM_OBS_COUNT_N("verify.errors", report.error_count());
  BM_OBS_COUNT_N("verify.warnings", report.warning_count());
  BM_OBS_COUNT_N("verify.redundant_barriers", st.redundant_barriers);
  BM_OBS_COUNT_N("verify.cache_mismatches", st.cache_mismatches);
  return report;
}

}  // namespace bm
