// Static schedule verifier: independently re-derives the safety argument of
// a barrier-MIMD schedule from first principles and reports anything it
// cannot prove.
//
// The verifier deliberately does NOT reuse the scheduler's cached analysis
// (Schedule::barrier_dag()): it rebuilds the barrier graph directly from the
// raw per-processor streams, recomputes fire ranges / reachability /
// dominators / ψ-paths with its own sweeps, and only *compares* against the
// cached BarrierDag as one of its lint families. A bug in labeling, g⁺
// placement, or ψ aggregation therefore cannot vouch for itself.
//
// Three analysis families (docs/VERIFIER.md has the diagnostic catalog):
//  1. Dependence coverage: every InstrDag sync edge must be proved by
//     same-PE program order, a separating barrier chain (<_b reachability),
//     or — re-deriving §4.4.1/§4.4.2 from scratch — a [min,max] timing
//     window. Unprovable edges are races (BV101) with a concrete witness.
//  2. Barrier-graph structure: cycle-freeness, orphan barriers, mask/stream
//     consistency, final-rejoin placement, transitively-redundant barriers.
//  3. Cached-analysis consistency: fire ranges, reachability, and common
//     dominators of the lazily cached BarrierDag vs the fresh recomputation.
#pragma once

#include "graph/instr_dag.hpp"
#include "sched/schedule.hpp"
#include "verify/diagnostics.hpp"

namespace bm {

struct VerifyOptions {
  /// Family 2: stream/mask structural lints (cheap; rarely worth skipping).
  bool lint_structure = true;
  /// BV205 transitive-redundancy scan — O(B·(V+E)); off in hot harness runs.
  bool lint_redundant = true;
  /// Family 3: compare Schedule::barrier_dag() against the fresh analysis.
  bool check_cached_analysis = true;
  /// Bound on the §4.4.2 per-path re-proof; mirrors the inserter's own cap.
  /// Exceeding it makes the edge *unproven* (reported as a race), never
  /// silently accepted.
  std::size_t max_enumerated_paths = 4096;
};

/// Runs all enabled analyses and returns the full report. Never throws on a
/// bad schedule — badness is what the report is for; throws bm::Error only
/// on API misuse (schedule not built over `dag`).
VerifyReport verify_schedule(const InstrDag& dag, const Schedule& sched,
                             const VerifyOptions& options = {});

}  // namespace bm
