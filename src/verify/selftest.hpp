// Mutation self-test of the race detector (the third analysis family):
// synthesize → schedule → verify clean, then injure the schedule by deleting
// or shifting a random barrier and check the detector flags the injected
// race. This measures *sensitivity* — a detector that proves everything
// "safe" passes every soundness test and is still useless.
//
// A mutant the detector accepts is cross-checked by simulation: if any
// execution draw exhibits a dependence violation the detector missed a real
// race (`missed`, a soundness bug); if no draw does, the mutant is
// *equivalent* — the barrier was pure overhead — and accepting it is correct
// (`benign`). Equivalent mutants are excluded from the score (the campaign
// retries another victim on the same schedule), per standard mutation-testing
// practice; they are still reported so a detector that only ever sees
// equivalent mutants cannot silently pass.
#pragma once

#include <cstdint>
#include <string>

#include "codegen/generator.hpp"
#include "verify/verify.hpp"

namespace bm {

struct MutationConfig {
  /// Number of schedule mutations to perform (the acceptance bar is ≥95%
  /// of these flagged).
  std::size_t mutations = 200;
  std::uint64_t base_seed = 0xB1D5;
  GeneratorConfig gen;
  std::size_t num_procs = 8;
  /// Shift (reorder) instead of delete every `shift_period`-th mutation.
  std::size_t shift_period = 4;
  /// Uniform-draw simulations used to classify an unflagged mutant.
  std::size_t sim_cross_checks = 24;
};

struct MutationReport {
  std::size_t attempted = 0;  ///< scored (non-equivalent) mutations
  std::size_t deleted = 0;    ///< barrier-deletion mutations
  std::size_t shifted = 0;    ///< barrier-shift (reorder) mutations
  std::size_t flagged = 0;    ///< detector reported an error on the mutant
  std::size_t benign = 0;     ///< accepted, and no draw violates: redundant
  std::size_t missed = 0;     ///< accepted, but simulation found a violation
  /// Unmutated schedules the verifier rejected (must be 0: every scheduler
  /// output verifies clean before mutation).
  std::size_t baseline_dirty = 0;
  /// Schedules skipped because they had no removable barrier.
  std::size_t skipped = 0;

  /// Fraction of performed mutations the detector flagged.
  double flagged_fraction() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(flagged) /
                                static_cast<double>(attempted);
  }
  /// Detector sensitivity among mutants that actually race: benign mutants
  /// (provably redundant barriers) are excluded from the denominator.
  double sensitivity() const {
    const std::size_t racy = flagged + missed;
    return racy == 0 ? 1.0
                     : static_cast<double>(flagged) /
                           static_cast<double>(racy);
  }

  std::string to_text() const;
  std::string to_json() const;
};

/// Runs the whole campaign; deterministic in `config`.
MutationReport run_mutation_selftest(const MutationConfig& config);

}  // namespace bm
