// Diagnostic model of the static schedule verifier: typed findings with
// stable codes (catalogued in docs/VERIFIER.md), severities, and — for
// races — a concrete witness (the dependence edge, the PEs involved, and
// the overlapping absolute time intervals that allow the inversion).
//
// The report renders as human-readable text and as machine-readable JSON;
// both orderings are deterministic (diagnostics appear in discovery order,
// which is fixed by the schedule contents).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "barrier/barrier_dag.hpp"
#include "graph/digraph.hpp"
#include "ir/timing.hpp"
#include "sched/schedule.hpp"

namespace bm {

enum class VerifySeverity { kWarning, kError };

std::string_view to_string(VerifySeverity s);

/// Stable diagnostic codes. BV1xx = dependence races, BV2xx = barrier-dag
/// structure, BV3xx = cached-analysis consistency.
namespace verify_code {
inline constexpr const char* kRace = "BV101";           ///< unprovable edge
inline constexpr const char* kSamePeOrder = "BV102";    ///< consumer first
inline constexpr const char* kUnplaced = "BV103";       ///< instr not placed
inline constexpr const char* kCycle = "BV201";          ///< barrier cycle
inline constexpr const char* kOrphanBarrier = "BV202";  ///< in no stream
inline constexpr const char* kMaskMismatch = "BV203";   ///< mask vs streams
inline constexpr const char* kDuplicateEntry = "BV204";   ///< twice in stream
inline constexpr const char* kRedundantBarrier = "BV205"; ///< transitively so
inline constexpr const char* kFinalNotLast = "BV206";   ///< rejoin misplaced
inline constexpr const char* kCachedFire = "BV301";     ///< fire-range drift
inline constexpr const char* kCachedReach = "BV302";    ///< <_b drift
inline constexpr const char* kCachedDom = "BV303";      ///< dominator drift
}  // namespace verify_code

/// Concrete race witness: the interleaving in which, under per-segment
/// execution-time draws consistent with the opcode [min,max] model, the
/// consumer's region reaches instruction `consumer` before the producer's
/// region has retired instruction `producer`. All times are absolute
/// (cycles after the initial barrier fires).
struct RaceWitness {
  NodeId producer = kInvalidNode;
  NodeId consumer = kInvalidNode;
  ProcId producer_proc = 0;
  ProcId consumer_proc = 0;
  std::uint32_t producer_pos = 0;  ///< stream position of the producer
  std::uint32_t consumer_pos = 0;
  BarrierId producer_guard = kInvalidBarrier;  ///< LastBar(producer)
  BarrierId consumer_guard = kInvalidBarrier;  ///< LastBar(consumer)
  TimeRange producer_finish{0, 0};  ///< possible finish times of producer
  TimeRange consumer_start{0, 0};   ///< possible start times of consumer
  /// The inversion window [consumer_start.min, producer_finish.max]: any
  /// instant in it admits a draw where the consumer has started while the
  /// producer is still in flight.
  TimeRange overlap{0, 0};

  std::string to_string() const;
  std::string to_json() const;
};

struct VerifyDiagnostic {
  std::string code;
  VerifySeverity severity = VerifySeverity::kError;
  std::string message;
  std::optional<RaceWitness> witness;
  /// The barrier a BV2xx structural finding is about, when there is exactly
  /// one (lets tools act on the finding without parsing the message).
  std::optional<BarrierId> barrier;
};

/// Per-verification accounting. Every dependence edge lands in exactly one
/// of the proved_* buckets or in races.
struct VerifyStats {
  std::size_t edges_checked = 0;
  std::size_t proved_serialized = 0;  ///< same-PE program order
  std::size_t proved_path = 0;        ///< NextBar →* LastBar chain
  std::size_t proved_timing = 0;      ///< single longest-path window
  std::size_t proved_timing_refined = 0;  ///< §4.4.2 per-path analysis
  std::size_t races = 0;
  std::size_t barriers_checked = 0;
  std::size_t redundant_barriers = 0;
  std::size_t cache_mismatches = 0;
};

class VerifyReport {
 public:
  void add(VerifyDiagnostic d);
  void add(const char* code, VerifySeverity sev, std::string message);
  /// Structural finding about one specific barrier.
  void add(const char* code, VerifySeverity sev, std::string message,
           BarrierId barrier);

  const std::vector<VerifyDiagnostic>& diagnostics() const { return diags_; }
  VerifyStats& stats() { return stats_; }
  const VerifyStats& stats() const { return stats_; }

  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  /// No errors (warnings allowed): the schedule is proven race-free.
  bool clean() const { return errors_ == 0; }

  /// "<code> <severity>: <message>" lines plus a one-line summary.
  std::string to_text() const;
  /// Stable machine-readable form; schema documented in docs/VERIFIER.md.
  std::string to_json() const;

 private:
  std::vector<VerifyDiagnostic> diags_;
  VerifyStats stats_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

}  // namespace bm
