#include "verify/diagnostics.hpp"

#include <cstdio>
#include <sstream>

namespace bm {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string range_json(const TimeRange& r) {
  std::ostringstream os;
  os << "{\"min\": " << r.min << ", \"max\": " << r.max << "}";
  return os.str();
}

}  // namespace

std::string_view to_string(VerifySeverity s) {
  return s == VerifySeverity::kError ? "error" : "warning";
}

std::string RaceWitness::to_string() const {
  std::ostringstream os;
  os << "edge n" << producer << " -> n" << consumer << ": producer on P"
     << producer_proc << " pos " << producer_pos << " (guard B"
     << producer_guard << ") finishes in [" << producer_finish.min << ","
     << producer_finish.max << "]; consumer on P" << consumer_proc << " pos "
     << consumer_pos << " (guard B" << consumer_guard << ") starts in ["
     << consumer_start.min << "," << consumer_start.max
     << "]; inversion window [" << overlap.min << "," << overlap.max << "]";
  return os.str();
}

std::string RaceWitness::to_json() const {
  std::ostringstream os;
  os << "{\"producer\": " << producer << ", \"consumer\": " << consumer
     << ", \"producer_proc\": " << producer_proc
     << ", \"consumer_proc\": " << consumer_proc
     << ", \"producer_pos\": " << producer_pos
     << ", \"consumer_pos\": " << consumer_pos
     << ", \"producer_guard\": " << producer_guard
     << ", \"consumer_guard\": " << consumer_guard
     << ", \"producer_finish\": " << range_json(producer_finish)
     << ", \"consumer_start\": " << range_json(consumer_start)
     << ", \"overlap\": " << range_json(overlap) << "}";
  return os.str();
}

void VerifyReport::add(VerifyDiagnostic d) {
  if (d.severity == VerifySeverity::kError)
    ++errors_;
  else
    ++warnings_;
  diags_.push_back(std::move(d));
}

void VerifyReport::add(const char* code, VerifySeverity sev,
                       std::string message) {
  add(VerifyDiagnostic{code, sev, std::move(message), std::nullopt,
                       std::nullopt});
}

void VerifyReport::add(const char* code, VerifySeverity sev,
                       std::string message, BarrierId barrier) {
  add(VerifyDiagnostic{code, sev, std::move(message), std::nullopt, barrier});
}

std::string VerifyReport::to_text() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << d.code << ' ' << to_string(d.severity) << ": " << d.message << '\n';
    if (d.witness) os << "    witness: " << d.witness->to_string() << '\n';
  }
  os << "verify: " << (clean() ? "CLEAN" : "DIRTY") << " — " << errors_
     << " error(s), " << warnings_ << " warning(s); " << stats_.edges_checked
     << " edge(s) checked (" << stats_.proved_serialized << " serialized, "
     << stats_.proved_path << " path, " << stats_.proved_timing << " timing, "
     << stats_.proved_timing_refined << " refined), " << stats_.races
     << " race(s), " << stats_.barriers_checked << " barrier(s)\n";
  return os.str();
}

std::string VerifyReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"clean\": " << (clean() ? "true" : "false")
     << ",\n  \"errors\": " << errors_ << ",\n  \"warnings\": " << warnings_
     << ",\n  \"stats\": {"
     << "\"edges_checked\": " << stats_.edges_checked
     << ", \"proved_serialized\": " << stats_.proved_serialized
     << ", \"proved_path\": " << stats_.proved_path
     << ", \"proved_timing\": " << stats_.proved_timing
     << ", \"proved_timing_refined\": " << stats_.proved_timing_refined
     << ", \"races\": " << stats_.races
     << ", \"barriers_checked\": " << stats_.barriers_checked
     << ", \"redundant_barriers\": " << stats_.redundant_barriers
     << ", \"cache_mismatches\": " << stats_.cache_mismatches
     << "},\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const auto& d = diags_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"code\": " << quote(d.code)
       << ", \"severity\": " << quote(std::string(to_string(d.severity)))
       << ", \"message\": " << quote(d.message);
    if (d.barrier) os << ", \"barrier\": " << *d.barrier;
    if (d.witness) os << ", \"witness\": " << d.witness->to_json();
    os << "}";
  }
  os << (diags_.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace bm
