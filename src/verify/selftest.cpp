#include "verify/selftest.hpp"

#include <sstream>
#include <vector>

#include "codegen/synthesize.hpp"
#include "graph/instr_dag.hpp"
#include "obs/obs.hpp"
#include "sched/scheduler.hpp"
#include "sched/serialize.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace bm {

namespace {

/// Barriers eligible for mutation: alive, not the initial, not the final
/// rejoin (deleting the rejoin never races — it only un-joins completion),
/// and not transitively redundant (deleting a redundant barrier is the one
/// mutation that is *supposed* to be accepted, so it would only dilute the
/// sensitivity measurement; the baseline lint identifies them as BV205).
std::vector<BarrierId> mutation_candidates(const Schedule& sched,
                                           const VerifyReport& baseline) {
  std::vector<bool> redundant(sched.barrier_id_bound(), false);
  for (const VerifyDiagnostic& d : baseline.diagnostics())
    if (d.code == verify_code::kRedundantBarrier && d.barrier)
      redundant[*d.barrier] = true;
  std::vector<BarrierId> out;
  for (BarrierId b = 1; b < sched.barrier_id_bound(); ++b) {
    if (!sched.barrier_alive(b) || redundant[b]) continue;
    if (sched.final_barrier() && *sched.final_barrier() == b) continue;
    out.push_back(b);
  }
  return out;
}

/// Shift mutation: move barrier `b` one slot earlier on one participating
/// processor whose preceding entry is an instruction (that instruction
/// escapes past the barrier). Returns false when no stream allows it.
bool shift_barrier_earlier(Schedule& sched, BarrierId b, Rng& rng) {
  std::vector<Schedule::Loc> locs;
  std::vector<std::size_t> shiftable;  // indices into locs
  for (ProcId p = 0; p < sched.num_procs(); ++p) {
    const auto& s = sched.stream(p);
    for (std::uint32_t pos = 0; pos < s.size(); ++pos) {
      if (!s[pos].is_barrier || s[pos].id != b) continue;
      locs.push_back({p, pos});
      if (pos > 0 && !s[pos - 1].is_barrier)
        shiftable.push_back(locs.size() - 1);
    }
  }
  if (locs.empty() || shiftable.empty()) return false;
  locs[shiftable[rng.index(shiftable.size())]].pos -= 1;
  // Re-inserting under a fresh id keeps the mask bookkeeping exact; the
  // verifier's fresh analysis is id-agnostic.
  sched.remove_barrier(b);
  sched.insert_barrier(locs);
  return true;
}

/// True when any of the cross-check draws exhibits a dependence violation.
bool simulation_races(const InstrDag& dag, const Schedule& sched,
                      MachineKind machine, std::size_t draws, Rng& rng) {
  const SamplingMode modes[] = {SamplingMode::kAllMin, SamplingMode::kAllMax};
  for (SamplingMode m : modes) {
    const ExecTrace t = simulate(sched, {machine, m}, rng);
    if (!find_violations(dag, t).empty()) return true;
  }
  for (std::size_t k = 0; k < draws; ++k) {
    const ExecTrace t =
        simulate(sched, {machine, SamplingMode::kUniform}, rng);
    if (!find_violations(dag, t).empty()) return true;
  }
  return false;
}

}  // namespace

MutationReport run_mutation_selftest(const MutationConfig& config) {
  BM_OBS_SPAN(span, "verify.selftest", "verify");
  MutationReport report;
  // Baselines keep the redundancy lint ON (it feeds victim selection);
  // post-mutation re-verification drops it — only soundness matters there.
  VerifyOptions baseline_opt;
  baseline_opt.check_cached_analysis = false;
  VerifyOptions vopt;
  vopt.lint_redundant = false;
  vopt.check_cached_analysis = false;

  // Hard bound so a pathological config (every schedule barrier-free)
  // terminates; in practice nearly every iteration yields a mutation.
  const std::size_t max_iters = config.mutations * 10 + 10;
  std::uint64_t seq = config.base_seed;
  for (std::size_t iter = 0;
       iter < max_iters && report.attempted < config.mutations; ++iter) {
    Rng rng(split_mix64(seq));
    const SynthesisResult synth = synthesize_benchmark(config.gen, rng);
    const InstrDag dag = InstrDag::build(synth.program, TimingModel::table1());

    SchedulerConfig sc;
    sc.num_procs = config.num_procs;
    sc.insertion = (iter % 2 == 0) ? InsertionPolicy::kConservative
                                   : InsertionPolicy::kOptimal;
    sc.machine = ((iter / 2) % 2 == 0) ? MachineKind::kSBM : MachineKind::kDBM;
    ScheduleResult sr = schedule_program(dag, sc, rng);
    // Canonicalize through one text round-trip: reloading compacts barrier
    // ids, and mutant copies below are made the same way, so victim ids
    // picked here stay valid in every copy (reload is idempotent on ids).
    const Schedule sched =
        schedule_from_text(dag, schedule_to_text(*sr.schedule));

    const VerifyReport baseline = verify_schedule(dag, sched, baseline_opt);
    if (!baseline.clean()) {
      ++report.baseline_dirty;
      continue;
    }
    std::vector<BarrierId> candidates = mutation_candidates(sched, baseline);
    if (candidates.empty()) {
      ++report.skipped;
      continue;
    }
    for (std::size_t k = candidates.size(); k > 1; --k)
      std::swap(candidates[k - 1], candidates[rng.index(k)]);

    // Try victims until one yields a non-equivalent mutant. A mutant the
    // verifier accepts AND simulation cannot distinguish from the original
    // is an equivalent mutant (the deleted barrier was pure overhead): it
    // is recorded as benign but excluded from the sensitivity score, per
    // standard mutation-testing practice.
    const std::string baseline_text = schedule_to_text(sched);
    const bool want_shift = config.shift_period != 0 &&
                            (report.attempted + 1) % config.shift_period == 0;
    for (const BarrierId victim : candidates) {
      Schedule mutant = schedule_from_text(dag, baseline_text);
      bool shifted = false;
      if (want_shift && shift_barrier_earlier(mutant, victim, rng))
        shifted = true;
      else
        mutant.remove_barrier(victim);

      if (!verify_schedule(dag, mutant, vopt).clean()) {
        ++report.attempted;
        ++report.flagged;
        ++(shifted ? report.shifted : report.deleted);
        break;
      }
      if (simulation_races(dag, mutant, sc.machine, config.sim_cross_checks,
                           rng)) {
        ++report.attempted;
        ++report.missed;  // accepted a mutant that demonstrably races
        ++(shifted ? report.shifted : report.deleted);
        break;
      }
      ++report.benign;  // equivalent mutant; accepting it is correct
    }
  }

  BM_OBS_COUNT_N("verify.selftest.mutations", report.attempted);
  BM_OBS_COUNT_N("verify.selftest.flagged", report.flagged);
  BM_OBS_COUNT_N("verify.selftest.missed", report.missed);
  BM_OBS_COUNT_N("verify.selftest.benign", report.benign);
  return report;
}

std::string MutationReport::to_text() const {
  std::ostringstream os;
  os << "mutation self-test: " << attempted << " mutation(s) (" << deleted
     << " deleted, " << shifted << " shifted): " << flagged << " flagged, "
     << benign << " benign, " << missed << " missed; flagged fraction "
     << flagged_fraction() << ", sensitivity " << sensitivity()
     << ", baseline dirty " << baseline_dirty << ", skipped " << skipped
     << "\n";
  return os.str();
}

std::string MutationReport::to_json() const {
  std::ostringstream os;
  os << "{\"attempted\": " << attempted << ", \"deleted\": " << deleted
     << ", \"shifted\": " << shifted << ", \"flagged\": " << flagged
     << ", \"benign\": " << benign << ", \"missed\": " << missed
     << ", \"baseline_dirty\": " << baseline_dirty
     << ", \"skipped\": " << skipped << ", \"flagged_fraction\": "
     << flagged_fraction() << ", \"sensitivity\": " << sensitivity()
     << "}\n";
  return os.str();
}

}  // namespace bm
