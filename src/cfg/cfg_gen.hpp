// Structured random program generator for the control-flow extension:
// nested sequences of plain blocks, if/else regions, and counted while
// loops (do-while form, data-dependent trip counters), lowered to a
// CfgProgram. Every generated program terminates: loops decrement a
// dedicated counter variable initialized to a bounded trip count.
#pragma once

#include "cfg/cfg_ir.hpp"
#include "codegen/generator.hpp"

namespace bm {

struct CfgGeneratorConfig {
  GeneratorConfig block;          ///< per-block statement parameters
  std::uint32_t max_depth = 2;    ///< nesting depth of if/while regions
  std::uint32_t seq_length = 3;   ///< constructs per sequence
  double if_prob = 0.30;          ///< P(construct is an if/else region)
  double loop_prob = 0.30;        ///< P(construct is a while loop)
  std::int64_t min_trip = 1;      ///< loop trip count range (inclusive)
  std::int64_t max_trip = 6;

  void validate() const;
};

/// Generates one structured program. Auxiliary variables (loop counters,
/// branch-condition temporaries) are appended after the base variables.
CfgProgram generate_cfg(const CfgGeneratorConfig& config, Rng& rng);

}  // namespace bm
