#include "cfg/cfg_sched.hpp"

#include "vliw/vliw.hpp"

namespace bm {

double CfgScheduleResult::barrier_fraction() const {
  if (implied_syncs == 0) return 0.0;
  return static_cast<double>(barriers) / static_cast<double>(implied_syncs);
}

double CfgScheduleResult::serialized_fraction() const {
  if (implied_syncs == 0) return 0.0;
  return static_cast<double>(serialized_edges) /
         static_cast<double>(implied_syncs);
}

CfgScheduleResult schedule_cfg(const CfgProgram& cfg,
                               const SchedulerConfig& config,
                               const TimingModel& timing, Rng& rng) {
  cfg.validate();
  CfgScheduleResult out;
  out.cfg = &cfg;
  out.blocks.reserve(cfg.size());
  SchedulerConfig block_config = config;
  block_config.add_final_barrier = true;  // block boundary = machine rejoin
  for (BlockId id = 0; id < cfg.size(); ++id) {
    CfgBlockSchedule bs;
    bs.dag = std::make_unique<InstrDag>(
        InstrDag::build(cfg.block(id).body, timing));
    bs.result = schedule_program(*bs.dag, block_config, rng);
    out.implied_syncs += bs.result.stats.implied_syncs;
    out.serialized_edges += bs.result.stats.serialized_edges;
    out.barriers += bs.result.stats.barriers_final;
    out.blocks.push_back(std::move(bs));
  }
  return out;
}

Time vliw_cfg_worst_case(const CfgProgram& cfg, std::size_t procs,
                         const TimingModel& timing, Time control_overhead) {
  cfg.validate();
  Time total = 0;
  std::size_t worst_case_transfers = 0;
  for (BlockId id = 0; id < cfg.size(); ++id) {
    const BasicBlock& b = cfg.block(id);
    const InstrDag dag = InstrDag::build(b.body, timing);
    const VliwSchedule v = schedule_vliw(dag, procs);
    total += v.makespan * static_cast<Time>(b.max_executions);
    if (b.term != BasicBlock::Terminator::kExit)
      worst_case_transfers += b.max_executions;
  }
  return total + control_overhead * static_cast<Time>(worst_case_transfers);
}

}  // namespace bm
